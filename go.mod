module prefetchsim

go 1.22
