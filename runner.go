package prefetchsim

import (
	"errors"
	"sync"
	"time"

	"prefetchsim/internal/runner"
)

// This file is the public face of the parallel experiment engine
// (internal/runner): independent simulations fan out across worker
// goroutines with submission-ordered results, per-job error capture and
// a singleflight cache for the shared baseline runs that every
// relative-metric sweep repeats per scheme.

// DefaultWorkers is the worker count used when a sweep does not set
// one: GOMAXPROCS.
func DefaultWorkers() int { return runner.DefaultWorkers() }

// RunMany executes every configuration with Run, fanning the
// simulations across up to workers goroutines (0 means DefaultWorkers,
// 1 forces the serial path). Results and errors come back in
// submission order, one slot per configuration; a failed configuration
// occupies its error slot without stopping the rest. progress, when
// non-nil, is called after each simulation with (done, total).
//
// Each simulation is fully isolated — Run builds a fresh machine,
// workload and RNG per call — so a parallel sweep is deterministic: it
// produces exactly the results of running the configurations one by
// one.
func RunMany(cfgs []Config, workers int, progress func(done, total int)) ([]*Result, []error) {
	return runner.Map(workers, cfgs, func(_ int, c Config) (*Result, error) {
		return Run(c)
	}, progress)
}

// RunManyRecorded is RunMany with a manifest recorder attached: every
// configuration runs with metric collection forced, and rec receives
// one provenance manifest per completed simulation (in completion
// order) while the results come back in submission order as usual.
func RunManyRecorded(cfgs []Config, workers int, rec *ManifestRecorder, progress func(done, total int)) ([]*Result, []error) {
	o := ExpOptions{Record: rec}
	return runner.Map(workers, cfgs, func(_ int, c Config) (*Result, error) {
		return o.run(c)
	}, progress)
}

// baselineKey identifies one shareable baseline simulation: every
// field of Config that shapes a Baseline run's result. Two sweep jobs
// whose keys are equal may share one simulation; any difference in the
// tuple must produce distinct keys.
type baselineKey struct {
	app      string
	slcBytes int
	slcWays  int
	procs    int
	scale    int
	seed     uint64
	bw       int
	seqCons  bool
	chars    bool
}

// baselineKeyFor derives the cache key for the baseline run that cfg
// (with defaults applied) shares.
func baselineKeyFor(cfg Config) baselineKey {
	cfg = cfg.withDefaults()
	return baselineKey{
		app:      cfg.App,
		slcBytes: cfg.SLCBytes,
		slcWays:  cfg.SLCWays,
		procs:    cfg.Processors,
		scale:    cfg.Scale,
		seed:     cfg.Seed,
		bw:       cfg.BandwidthFactor,
		seqCons:  cfg.SequentialConsistency,
		chars:    cfg.CollectCharacteristics,
	}
}

// baselineCache memoizes baseline runs for the duration of one sweep,
// so the shared baseline per (app, slc, procs, scale, seed, ...) tuple
// executes once instead of once per scheme. Concurrent jobs needing
// the same baseline block on the first one running it (singleflight).
type baselineCache struct {
	cache runner.Cache[baselineKey, *Result]
}

// get returns the baseline result for cfg, which must describe a
// Baseline-scheme run (built-in app, no custom Program). The run
// executes through o, so a sweep's manifest recorder sees each shared
// baseline exactly once.
func (b *baselineCache) get(o ExpOptions, cfg Config) (*Result, error) {
	return b.cache.Do(baselineKeyFor(cfg), func() (*Result, error) {
		return o.run(cfg)
	})
}

// ManifestRecorder collects one provenance manifest per simulation a
// sweep executes, in completion order. Attach one with
// ExpOptions.Record; it is safe for concurrent use, so one recorder
// can span a whole parallel sweep (or several sweeps, as the tables
// CLI does). Recording forces metric collection, so every manifest
// carries the run's machine-wide metric totals.
type ManifestRecorder struct {
	mu   sync.Mutex
	runs []Manifest
}

// record appends the manifest of one completed run.
func (r *ManifestRecorder) record(cfg Config, res *Result, wall time.Duration) {
	m := NewManifest(cfg, res, wall)
	r.mu.Lock()
	r.runs = append(r.runs, *m)
	r.mu.Unlock()
}

// Len reports how many runs have completed so far — a live progress
// signal during a sweep.
func (r *ManifestRecorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.runs)
}

// Runs returns a copy of the recorded manifests, in completion order.
func (r *ManifestRecorder) Runs() []Manifest {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Manifest(nil), r.runs...)
}

// Totals sums the metric totals across every recorded run — a live,
// sweep-wide metric snapshot that may be read while the sweep is still
// running.
func (r *ManifestRecorder) Totals() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	t := make(map[string]int64)
	for i := range r.runs {
		for k, v := range r.runs[i].Metrics {
			t[k] += v
		}
	}
	return t
}

// Status returns the completed-run count and the summed metric totals
// in one lock acquisition — the payload a live status endpoint polls
// while a sweep is running (see cmd/sweep's -http flag).
func (r *ManifestRecorder) Status() (runs int, totals map[string]int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	totals = make(map[string]int64)
	for i := range r.runs {
		for k, v := range r.runs[i].Metrics {
			totals[k] += v
		}
	}
	return len(r.runs), totals
}

// Sweep wraps the recorded runs into one sweep manifest for the given
// invocation: the tool name and arguments, the rendered result rows
// (digested so the sweep's output is pinned the way run stats are),
// and the per-run manifests.
func (r *ManifestRecorder) Sweep(tool string, args []string, rows []string, wall time.Duration) *SweepManifest {
	m := &SweepManifest{
		Schema:        ManifestSchemaVersion,
		GoVersion:     goVersion(),
		GitSHA:        gitSHA(),
		CreatedUnixNS: time.Now().UnixNano(),
		Tool:          tool,
		Args:          args,
		WallNS:        wall.Nanoseconds(),
		Rows:          len(rows),
		RowsDigest:    DigestRows(rows),
		Runs:          r.Runs(),
	}
	return m
}

// gather collapses runner.Map's parallel (results, errs) slices into
// the experiment API's ([]Row, error) shape: rows of the successful
// jobs in submission order, plus every failure joined into one error.
// A sweep with one bad configuration still returns the rows of all the
// others.
func gather[R any](results []R, errs []error) ([]R, error) {
	var rows []R
	var bad []error
	for i, err := range errs {
		if err != nil {
			bad = append(bad, err)
			continue
		}
		rows = append(rows, results[i])
	}
	return rows, errors.Join(bad...)
}
