package prefetchsim

import (
	"errors"

	"prefetchsim/internal/runner"
)

// This file is the public face of the parallel experiment engine
// (internal/runner): independent simulations fan out across worker
// goroutines with submission-ordered results, per-job error capture and
// a singleflight cache for the shared baseline runs that every
// relative-metric sweep repeats per scheme.

// DefaultWorkers is the worker count used when a sweep does not set
// one: GOMAXPROCS.
func DefaultWorkers() int { return runner.DefaultWorkers() }

// RunMany executes every configuration with Run, fanning the
// simulations across up to workers goroutines (0 means DefaultWorkers,
// 1 forces the serial path). Results and errors come back in
// submission order, one slot per configuration; a failed configuration
// occupies its error slot without stopping the rest. progress, when
// non-nil, is called after each simulation with (done, total).
//
// Each simulation is fully isolated — Run builds a fresh machine,
// workload and RNG per call — so a parallel sweep is deterministic: it
// produces exactly the results of running the configurations one by
// one.
func RunMany(cfgs []Config, workers int, progress func(done, total int)) ([]*Result, []error) {
	return runner.Map(workers, cfgs, func(_ int, c Config) (*Result, error) {
		return Run(c)
	}, progress)
}

// baselineKey identifies one shareable baseline simulation: every
// field of Config that shapes a Baseline run's result. Two sweep jobs
// whose keys are equal may share one simulation; any difference in the
// tuple must produce distinct keys.
type baselineKey struct {
	app      string
	slcBytes int
	slcWays  int
	procs    int
	scale    int
	seed     uint64
	bw       int
	seqCons  bool
	chars    bool
}

// baselineKeyFor derives the cache key for the baseline run that cfg
// (with defaults applied) shares.
func baselineKeyFor(cfg Config) baselineKey {
	cfg = cfg.withDefaults()
	return baselineKey{
		app:      cfg.App,
		slcBytes: cfg.SLCBytes,
		slcWays:  cfg.SLCWays,
		procs:    cfg.Processors,
		scale:    cfg.Scale,
		seed:     cfg.Seed,
		bw:       cfg.BandwidthFactor,
		seqCons:  cfg.SequentialConsistency,
		chars:    cfg.CollectCharacteristics,
	}
}

// baselineCache memoizes baseline runs for the duration of one sweep,
// so the shared baseline per (app, slc, procs, scale, seed, ...) tuple
// executes once instead of once per scheme. Concurrent jobs needing
// the same baseline block on the first one running it (singleflight).
type baselineCache struct {
	cache runner.Cache[baselineKey, *Result]
}

// get returns the baseline result for cfg, which must describe a
// Baseline-scheme run (built-in app, no custom Program).
func (b *baselineCache) get(cfg Config) (*Result, error) {
	return b.cache.Do(baselineKeyFor(cfg), func() (*Result, error) {
		return Run(cfg)
	})
}

// gather collapses runner.Map's parallel (results, errs) slices into
// the experiment API's ([]Row, error) shape: rows of the successful
// jobs in submission order, plus every failure joined into one error.
// A sweep with one bad configuration still returns the rows of all the
// others.
func gather[R any](results []R, errs []error) ([]R, error) {
	var rows []R
	var bad []error
	for i, err := range errs {
		if err != nil {
			bad = append(bad, err)
			continue
		}
		rows = append(rows, results[i])
	}
	return rows, errors.Join(bad...)
}
