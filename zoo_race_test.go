package prefetchsim_test

// Race-detector coverage for the prefetcher zoo and the pointer
// kernels. The zoo schemes keep per-node learning state (Markov's
// correlation table, the perceptron weight banks, BestOffset's recent
// ring) and the pointer kernels drive the batched streaming path with
// chase orders built at program construction; this test keeps several
// such simulations in flight at once so `go test -race` would surface
// any state accidentally shared across runner workers or machine
// nodes. Iteration counts follow the racecheck budget: the full suite
// soaks every scheme x kernel pair several times, the instrumented
// suite runs each pair once.

import (
	"reflect"
	"testing"

	"prefetchsim"
	"prefetchsim/internal/racecheck"
)

func TestZooParallelRaceCoverage(t *testing.T) {
	kernels := []string{"listchase", "hashjoin", "bfs"}
	reps := racecheck.Scale(3, 1)

	var cfgs []prefetchsim.Config
	for r := 0; r < reps; r++ {
		for _, app := range kernels {
			for _, s := range prefetchsim.ZooSchemes() {
				cfgs = append(cfgs, prefetchsim.Config{
					App: app, Scheme: s, Processors: 4, Seed: 12345,
					SLCBytes: prefetchsim.FiniteSLCBytes,
				})
			}
		}
	}

	results, errs := prefetchsim.RunMany(cfgs, 8, nil)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("%s/%s: %v", cfgs[i].App, cfgs[i].Scheme, err)
		}
	}

	// Concurrency must not perturb results: every repetition of a
	// (kernel, scheme) pair ran from an identical config, so all its
	// stats must be identical too.
	byPair := map[string]*prefetchsim.Result{}
	for i, res := range results {
		key := cfgs[i].App + "/" + string(cfgs[i].Scheme)
		if first, ok := byPair[key]; ok {
			if !reflect.DeepEqual(first.Stats, res.Stats) {
				t.Errorf("%s: concurrent identical runs diverge", key)
			}
			continue
		}
		byPair[key] = res
	}

	// And the learning schemes must actually have fired on their home
	// workloads, so the race detector saw the learning paths, not idle
	// ones: Markov on every kernel (all are re-traversals), and at least
	// one scheme issuing on each kernel.
	for _, app := range kernels {
		issued := false
		for _, s := range prefetchsim.ZooSchemes() {
			res := byPair[app+"/"+string(s)]
			n := res.Stats.TotalPrefetchesIssued()
			if n > 0 {
				issued = true
			}
			if s == prefetchsim.Markov && n == 0 {
				t.Errorf("Markov issued no prefetches on %s under the finite SLC", app)
			}
		}
		if !issued {
			t.Errorf("no zoo scheme issued a single prefetch on %s", app)
		}
	}
}
