//go:build race

package prefetchsim_test

// raceEnabled reports whether the race detector is compiled into the
// test binary. Race instrumentation slows the simulator ~5x, so the
// equivalence tests trim their application set to stay inside go
// test's default 10-minute package timeout; the full six-application
// sweep runs in the uninstrumented suite.

import (
	"testing"

	"prefetchsim/internal/racecheck"
)

const raceEnabled = true

// TestStressIterationsScaleDownUnderRace pins the race-budget contract:
// when -race is compiled in, racecheck must report it and Scale must
// pick the reduced iteration counts the stress suites pass it (the
// protocol stress sweep runs Scale(6, 2) seeds per configuration, the
// trace recycling test Scale(400, 50) batches). Without this scaling
// the machine package alone overruns the single-core 10-minute
// per-package timeout.
func TestStressIterationsScaleDownUnderRace(t *testing.T) {
	if !racecheck.Enabled {
		t.Fatal("built with -race but racecheck.Enabled is false")
	}
	if got := racecheck.Scale(6, 2); got != 2 {
		t.Fatalf("Scale(6, 2) = %d under race, want the reduced count 2", got)
	}
	if got := racecheck.Scale(400, 50); got != 50 {
		t.Fatalf("Scale(400, 50) = %d under race, want the reduced count 50", got)
	}
}
