//go:build race

package prefetchsim_test

// raceEnabled reports whether the race detector is compiled into the
// test binary. Race instrumentation slows the simulator ~5x, so the
// equivalence tests trim their application set to stay inside go
// test's default 10-minute package timeout; the full six-application
// sweep runs in the uninstrumented suite.
const raceEnabled = true
