package prefetchsim_test

// One benchmark per table and figure of the paper. Each benchmark runs
// the corresponding experiment on a reduced 4-processor machine (so the
// whole suite completes in minutes; the cmd/tables and cmd/figure6
// tools regenerate the full 16-processor configurations) and reports
// the experiment's headline numbers as custom metrics:
//
//	go test -bench=. -benchmem
//	go test -bench 'Figure6' -benchtime 1x
//
// Micro-benchmarks for the substrate components sit at the end.

import (
	"bytes"
	"fmt"
	"testing"

	"prefetchsim"
)

const benchProcs = 4

func benchOpts() prefetchsim.ExpOptions {
	return prefetchsim.ExpOptions{Procs: benchProcs}
}

// benchTable runs one application's Table 2/3 column and reports the
// characteristics the paper tabulates.
func benchTable(b *testing.B, app string, finite bool) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		opt := benchOpts()
		opt.Apps = []string{app}
		var rows []prefetchsim.CharRow
		var err error
		if finite {
			rows, err = prefetchsim.Table3(opt)
		} else {
			rows, err = prefetchsim.Table2(opt)
		}
		if err != nil {
			b.Fatal(err)
		}
		r := rows[0]
		b.ReportMetric(100*r.InStrideFrac, "in-stride-%")
		b.ReportMetric(r.AvgSeqLen, "avg-seq-len")
		if len(r.Dominant) > 0 {
			b.ReportMetric(float64(r.Dominant[0].Stride), "dominant-stride")
		}
		if finite {
			b.ReportMetric(100*r.ReplacementFrac, "repl-miss-%")
		}
	}
}

func BenchmarkTable2_MP3D(b *testing.B)     { benchTable(b, "mp3d", false) }
func BenchmarkTable2_Cholesky(b *testing.B) { benchTable(b, "cholesky", false) }
func BenchmarkTable2_Water(b *testing.B)    { benchTable(b, "water", false) }
func BenchmarkTable2_LU(b *testing.B)       { benchTable(b, "lu", false) }
func BenchmarkTable2_Ocean(b *testing.B)    { benchTable(b, "ocean", false) }
func BenchmarkTable2_PTHOR(b *testing.B)    { benchTable(b, "pthor", false) }

func BenchmarkTable3_MP3D(b *testing.B)     { benchTable(b, "mp3d", true) }
func BenchmarkTable3_Cholesky(b *testing.B) { benchTable(b, "cholesky", true) }
func BenchmarkTable3_Water(b *testing.B)    { benchTable(b, "water", true) }
func BenchmarkTable3_LU(b *testing.B)       { benchTable(b, "lu", true) }
func BenchmarkTable3_Ocean(b *testing.B)    { benchTable(b, "ocean", true) }
func BenchmarkTable3_PTHOR(b *testing.B)    { benchTable(b, "pthor", true) }

// BenchmarkTable4 regenerates the larger-data-set trend study on the
// lighter applications (the full five-application version is
// `cmd/tables -table 4`).
func BenchmarkTable4(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		opt := benchOpts()
		opt.Apps = []string{"mp3d", "water", "ocean"}
		rows, err := prefetchsim.Table4(opt)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(100*(r.Large.InStrideFrac-r.Small.InStrideFrac),
				r.App+"-in-stride-delta-%")
		}
	}
}

// benchFigure6 runs one application's Figure 6 column (baseline + the
// three schemes) and reports all three panels per scheme.
func benchFigure6(b *testing.B, app string) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		opt := benchOpts()
		opt.Apps = []string{app}
		rows, err := prefetchsim.Figure6(opt)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(100*r.RelMisses, fmt.Sprintf("%s-misses-%%", r.Scheme))
			b.ReportMetric(100*r.Efficiency, fmt.Sprintf("%s-efficiency-%%", r.Scheme))
			b.ReportMetric(100*r.RelStall, fmt.Sprintf("%s-stall-%%", r.Scheme))
		}
	}
}

// benchFigure6Workers runs the full six-application Figure 6 sweep
// through the experiment engine with the given worker count. The
// Serial/Parallel pair makes the engine's speedup visible in the bench
// trajectory; their reported rows are identical by construction (see
// TestFigure6ParallelMatchesSerial).
func benchFigure6Workers(b *testing.B, workers int) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		opt := benchOpts()
		opt.Workers = workers
		rows, err := prefetchsim.Figure6(opt)
		if err != nil {
			b.Fatal(err)
		}
		if want := len(prefetchsim.Apps()) * len(prefetchsim.Schemes()); len(rows) != want {
			b.Fatalf("%d rows, want %d", len(rows), want)
		}
	}
}

// BenchmarkFigure6Serial is the single-worker reference path.
func BenchmarkFigure6Serial(b *testing.B) { benchFigure6Workers(b, 1) }

// BenchmarkFigure6Parallel fans the same sweep across all cores.
func BenchmarkFigure6Parallel(b *testing.B) { benchFigure6Workers(b, 0) }

func BenchmarkFigure6_MP3D(b *testing.B)     { benchFigure6(b, "mp3d") }
func BenchmarkFigure6_Cholesky(b *testing.B) { benchFigure6(b, "cholesky") }
func BenchmarkFigure6_Water(b *testing.B)    { benchFigure6(b, "water") }
func BenchmarkFigure6_LU(b *testing.B)       { benchFigure6(b, "lu") }
func BenchmarkFigure6_Ocean(b *testing.B)    { benchFigure6(b, "ocean") }
func BenchmarkFigure6_PTHOR(b *testing.B)    { benchFigure6(b, "pthor") }

// BenchmarkAblationDegree sweeps the degree of prefetching (the §6
// observation: with this prefetching phase, d makes little difference).
func BenchmarkAblationDegree(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := prefetchsim.DegreeSweep("water", prefetchsim.Seq,
			[]int{1, 2, 4, 8}, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(100*r.RelMisses, string(r.Scheme)+"-misses-%")
		}
	}
}

// BenchmarkAblationAdaptive compares fixed and adaptive sequential
// prefetching on Ocean, where fixed sequential wastes the most
// bandwidth (the §6 discussion of Dahlgren et al.'s adaptive scheme).
func BenchmarkAblationAdaptive(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		opt := benchOpts()
		opt.Apps = []string{"ocean"}
		rows, err := prefetchsim.Figure6(opt, prefetchsim.Seq, prefetchsim.Adaptive)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(100*r.RelTraffic, string(r.Scheme)+"-traffic-%")
			b.ReportMetric(100*r.RelMisses, string(r.Scheme)+"-misses-%")
		}
	}
}

// BenchmarkAblationSLCSize extends §5.3: I-detection across SLC sizes.
func BenchmarkAblationSLCSize(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := prefetchsim.SLCSweep("ocean", prefetchsim.IDet,
			[]int{8192, 16384, 65536}, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(100*r.RelMisses, string(r.Scheme)+"-misses-%")
		}
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed: simulated
// memory references per second on a stride-heavy custom workload.
func BenchmarkSimulatorThroughput(b *testing.B) {
	const refs = 200_000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		space := prefetchsim.NewSpace()
		arr := prefetchsim.NewArray(space, refs/benchProcs, 64, 64)
		prog := prefetchsim.NewProgram("throughput", benchProcs,
			func(p int, g *prefetchsim.Gen) {
				for r := 0; r < refs/benchProcs; r++ {
					g.Read(prefetchsim.PC(1), arr.Elem(r), 2)
				}
			})
		res, err := prefetchsim.Run(prefetchsim.Config{
			Program: prog, Processors: benchProcs, Scheme: prefetchsim.Seq,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Stats.TotalReads() != refs/benchProcs*benchProcs {
			b.Fatal("lost references")
		}
	}
	b.ReportMetric(float64(refs*b.N)/b.Elapsed().Seconds(), "refs/s")
}

// BenchmarkAblationLookahead compares the paper's fixed-degree schemes
// with the §6 lookahead variants (Baer–Chen's lookahead-PC, Hagersten's
// adaptive distance) and the hybrid software-assisted scheme on LU,
// whose tight inner loop makes d=1 prefetches chronically late.
func BenchmarkAblationLookahead(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := prefetchsim.ExtensionCompare("lu", benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(100*r.RelStall, string(r.Scheme)+"-stall-%")
		}
	}
}

// BenchmarkAblationConsistency quantifies the release-consistency
// assumption: how much slower the write-heavy applications run when
// writes block (sequential consistency).
func BenchmarkAblationConsistency(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		opt := benchOpts()
		opt.Apps = []string{"mp3d", "ocean"}
		rows, err := prefetchsim.ConsistencyCompare(opt)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(100*r.RelExecTime, r.App+"-SC-exec-%")
		}
	}
}

// BenchmarkAblationBandwidth tests the paper's §7 closing claim:
// sequential prefetching's advantage erodes when the memory-system
// bandwidth is limited, because of its useless prefetches.
func BenchmarkAblationBandwidth(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := prefetchsim.BandwidthSweep("mp3d", []int{1, 2, 4}, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(100*r.SeqRelStall, fmt.Sprintf("bw%d-Seq-stall-%%", r.Factor))
			b.ReportMetric(100*r.StrideRelStall, fmt.Sprintf("bw%d-Idet-stall-%%", r.Factor))
		}
	}
}

// BenchmarkAblationAssociativity extends §5.3 with SLC associativity.
func BenchmarkAblationAssociativity(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := prefetchsim.AssocSweep("mp3d", []int{1, 2, 4}, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(100*r.RelMissesVsDM, fmt.Sprintf("%dway-misses-%%", r.Ways))
		}
	}
}

// BenchmarkTraceRecordReplay measures trace-file serialization
// throughput (ops recorded+replayed per second).
func BenchmarkTraceRecordReplay(b *testing.B) {
	b.ReportAllocs()
	var bytesPerOp float64
	for i := 0; i < b.N; i++ {
		prog, err := prefetchsim.BuildApp("matmul", prefetchsim.Params{Procs: benchProcs})
		if err != nil {
			b.Fatal(err)
		}
		var buf bytes.Buffer
		if err := prefetchsim.WriteProgram(&buf, prog); err != nil {
			b.Fatal(err)
		}
		bytesPerOp = float64(buf.Len()) // before ReadProgram drains the buffer
		replayed, err := prefetchsim.ReadProgram(&buf)
		if err != nil {
			b.Fatal(err)
		}
		replayed.Stop()
	}
	b.ReportMetric(bytesPerOp, "trace-bytes")
}
