package prefetchsim_test

// Runnable godoc examples for the public API. Each doubles as a test:
// the simulator is deterministic, so the printed output is exact.

import (
	"fmt"

	"prefetchsim"
)

// ExampleRun simulates the paper's §3.1 matrix multiply under
// sequential prefetching and reports how many of the baseline's misses
// it removed.
func ExampleRun() {
	base, err := prefetchsim.Run(prefetchsim.Config{
		App: "matmul", Processors: 4,
	})
	if err != nil {
		panic(err)
	}
	seq, err := prefetchsim.Run(prefetchsim.Config{
		App: "matmul", Scheme: prefetchsim.Seq, Processors: 4,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("sequential prefetching removed %.0f%% of matmul's read misses\n",
		100*(1-float64(seq.Stats.TotalReadMisses())/float64(base.Stats.TotalReadMisses())))
	// Output:
	// sequential prefetching removed 95% of matmul's read misses
}

// ExampleNewProgram builds a tiny custom workload — one processor
// striding through 96-byte records — and shows the Table 2 analysis
// detecting the 3-block stride.
func ExampleNewProgram() {
	space := prefetchsim.NewSpace()
	records := prefetchsim.NewArray(space, 64, 96, 96)
	prog := prefetchsim.NewProgram("records", 1, func(p int, g *prefetchsim.Gen) {
		for i := 0; i < 64; i++ {
			g.Read(prefetchsim.PC(1), records.Elem(i), 10)
		}
	})
	res, err := prefetchsim.Run(prefetchsim.Config{
		Program: prog, Processors: 1, CollectCharacteristics: true,
	})
	if err != nil {
		panic(err)
	}
	d := res.Chars.Dominant()
	fmt.Printf("dominant stride: %d blocks (%.0f%% of stride misses)\n", d.Stride, 100*d.Share)
	// Output:
	// dominant stride: 3 blocks (100% of stride misses)
}

// ExampleConfig_strideHints runs the hybrid software-assisted scheme on
// a custom workload by supplying the load site's stride up front, as a
// compiler would (§6, Bianchini & LeBlanc).
func ExampleConfig_strideHints() {
	build := func() *prefetchsim.Program {
		space := prefetchsim.NewSpace()
		records := prefetchsim.NewArray(space, 64, 96, 96)
		return prefetchsim.NewProgram("hinted", 1, func(p int, g *prefetchsim.Gen) {
			for i := 0; i < 64; i++ {
				g.Read(prefetchsim.PC(1), records.Elem(i), 60)
			}
		})
	}
	base, err := prefetchsim.Run(prefetchsim.Config{Program: build(), Processors: 1})
	if err != nil {
		panic(err)
	}
	hybrid, err := prefetchsim.Run(prefetchsim.Config{
		Program: build(), Processors: 1, Scheme: prefetchsim.Hybrid,
		StrideHints: map[prefetchsim.PC]int64{1: 96},
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("baseline %d misses, hybrid %d\n",
		base.Stats.TotalReadMisses(), hybrid.Stats.TotalReadMisses())
	// Output:
	// baseline 64 misses, hybrid 2
}
