// Command charstats prints the detailed stride-sequence analysis of
// one application's SLC read-miss stream (the methodology behind the
// paper's Tables 2 and 3), including the full stride distribution.
//
// Usage:
//
//	charstats -app water
//	charstats -app ocean -slc 16384
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"prefetchsim"
)

func main() {
	app := flag.String("app", "lu", "application: "+strings.Join(prefetchsim.Apps(), ", "))
	procs := flag.Int("procs", 16, "processor count")
	slc := flag.Int("slc", 0, "SLC size in bytes (0 = infinite)")
	scale := flag.Int("scale", 1, "data-set scale")
	seed := flag.Uint64("seed", 0, "workload seed")
	repr := flag.Bool("representativeness", false, "compare the Table 2 metrics across all processors (§5.1 check)")
	flag.Parse()

	if *repr {
		row, err := prefetchsim.Representativeness(*app, prefetchsim.ExpOptions{
			Procs: *procs, Scale: *scale, Seed: *seed,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "charstats:", err)
			os.Exit(1)
		}
		fmt.Println(row)
		return
	}

	res, err := prefetchsim.Run(prefetchsim.Config{
		App: *app, Scheme: prefetchsim.Baseline, Processors: *procs,
		SLCBytes: *slc, Scale: *scale, Seed: *seed,
		CollectCharacteristics: true,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "charstats:", err)
		os.Exit(1)
	}

	c := res.Chars
	fmt.Printf("%s: processor-0 read-miss characteristics\n", res.App)
	fmt.Printf("  total read misses:            %d\n", c.TotalMisses)
	fmt.Printf("  within stride sequences:      %.1f%%\n", 100*c.FracInSequences())
	fmt.Printf("  stride sequences:             %d\n", c.Sequences)
	fmt.Printf("  average sequence length:      %.1f references\n", c.AvgSeqLen())
	fmt.Println("  stride distribution (blocks, share of stride-sequence misses):")
	for i, s := range c.Strides() {
		if i == 10 || s.Share < 0.01 {
			break
		}
		fmt.Printf("    %6d  %5.1f%%\n", s.Stride, 100*s.Share)
	}
	fmt.Println("  top load sites (PC, misses, in-stride, dominant stride):")
	for i, site := range res.Sites {
		if i == 8 {
			break
		}
		fmt.Printf("    pc=%-5d %7d misses  %5.1f%% in-stride  stride %d\n",
			site.PC, site.Misses,
			100*float64(site.StrideMisses)/float64(site.Misses), site.Dominant)
	}
	fmt.Println()
	fmt.Print(res.Stats)
}
