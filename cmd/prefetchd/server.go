package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"prefetchsim"
	"prefetchsim/internal/obs"
	"prefetchsim/internal/resultcache"
	"prefetchsim/internal/runner"
	"prefetchsim/internal/webstatus"
)

// server owns the job table, the admission semaphore, the in-flight
// dedup and the persistent result cache. Request handlers only read
// and enqueue; simulations run on per-job goroutines accounted by wg
// so shutdown can drain them.
type server struct {
	store   *resultcache.Store
	workers int           // simulation workers per job
	sem     chan struct{} // admission: at most cap(sem) jobs computing
	start   time.Time
	log     *slog.Logger

	version, sha string // build info surfaced on /status

	// reg binds every serving-path instrument; webstatus serves its
	// Prometheus exposition at /metrics.
	reg *obs.Registry
	// rm instruments the admission pipeline: queue depth, in-flight,
	// and the wait/run latency histograms job spans reconcile against.
	rm *runner.Metrics
	// cm mirrors the result cache's state (hit/miss/eviction counters,
	// object and byte gauges).
	cm resultcache.Metrics

	// jobState holds one gauge per lifecycle state; job.onState moves
	// each job between them on every status transition.
	jobState map[string]*obs.AtomicGauge
	// rejected counts submissions refused while draining; badSpec
	// counts specs that failed to decode or normalize.
	rejected, badSpec *obs.AtomicCounter
	// streamRows and streamBytes count NDJSON lines (and bytes) written
	// to streaming clients; sseSubs gauges live /events watchers.
	streamRows, streamBytes *obs.AtomicCounter
	sseSubs                 *obs.AtomicGauge

	// Submission-level cache dispositions (distinct from the store's
	// own counters: a coalesced job never touches the store).
	hits, misses, coalesced *obs.AtomicCounter

	// flight dedups concurrent identical submissions: the first owns
	// the computation, the rest share its payload. Keys are forgotten
	// once the payload is durably in store, so flight never grows.
	flight runner.Cache[string, []byte]

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string // submission order, for listing
	seq      int
	draining bool

	wg sync.WaitGroup // in-flight job goroutines

	// aggMu guards agg, the per-class (cache disposition) span
	// aggregate folded in as jobs settle.
	aggMu sync.Mutex
	agg   map[string]*classAgg
}

// classAgg accumulates settled jobs' span values for one cache class.
// waitUS and runUS sum the exact values the runner histograms observed,
// so per-class sums reconcile with those histograms by construction.
type classAgg struct {
	count, waitUS, runUS, totalUS int64
}

func newServer(store *resultcache.Store, workers, maxJobs int) *server {
	if maxJobs < 1 {
		maxJobs = 1
	}
	reg := obs.NewRegistry()
	s := &server{
		store:   store,
		workers: workers,
		sem:     make(chan struct{}, maxJobs),
		start:   time.Now(),
		log:     slog.New(slog.NewTextHandler(io.Discard, nil)),
		reg:     reg,
		rm:      new(runner.Metrics),
		jobs:    make(map[string]*job),
		agg:     make(map[string]*classAgg),
	}
	s.rm.Bind(reg, "runner")
	s.cm.Bind(reg, "resultcache")
	store.Instrument(&s.cm)
	s.jobState = make(map[string]*obs.AtomicGauge)
	for _, st := range []string{statusQueued, statusRunning, statusDone, statusFailed, statusCancelled} {
		s.jobState[st] = reg.AtomicGauge("jobs." + st)
	}
	s.rejected = reg.AtomicCounter("jobs.rejected")
	s.badSpec = reg.AtomicCounter("jobs.spec.invalid")
	s.streamRows = reg.AtomicCounter("stream.rows")
	s.streamBytes = reg.AtomicCounter("stream.bytes")
	s.sseSubs = reg.AtomicGauge("sse.subscribers")
	s.hits = reg.AtomicCounter("jobs.cache.hits")
	s.misses = reg.AtomicCounter("jobs.cache.misses")
	s.coalesced = reg.AtomicCounter("jobs.cache.coalesced")
	return s
}

// errDraining rejects submissions during shutdown.
var errDraining = errors.New("server is draining")

// onJobState mirrors a job's status transition into the per-state
// gauges. Called under j.mu — it only touches atomics.
func (s *server) onJobState(old, new string) {
	if g := s.jobState[old]; g != nil {
		g.Add(-1)
	}
	if g := s.jobState[new]; g != nil {
		g.Add(1)
	}
}

// submit registers a normalized spec as a job. Cache hits are born
// terminal with the stored payload; misses start computing on their
// own goroutine.
func (s *server) submit(spec jobSpec) (*job, error) {
	digest := spec.digest()
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, errDraining
	}
	s.seq++
	id := fmt.Sprintf("j%d", s.seq)
	j := newJob(id, spec, digest)
	j.onState = s.onJobState
	s.jobState[statusQueued].Add(1)
	s.jobs[id] = j
	s.order = append(s.order, id)

	readStart := time.Now()
	payload, hit := s.store.Get(digest)
	if hit {
		s.hits.Inc()
		j.completeCached(payload, time.Since(readStart))
		s.mu.Unlock()
		s.log.Info("job submitted", "job", j.id, "kind", spec.Kind, "digest", digest)
		s.recordSettled(j)
		return j, nil
	}
	s.misses.Inc()
	ctx, cancel := context.WithCancel(context.Background())
	j.cancel = cancel
	s.wg.Add(1)
	s.mu.Unlock()

	s.log.Info("job submitted", "job", j.id, "kind", spec.Kind, "digest", digest)
	j.setCache("miss")
	s.rm.Enqueue()
	j.enqueued()
	go s.runJob(ctx, j, time.Now())
	return j, nil
}

// runJob takes the job through admission, computes (or coalesces onto
// an identical in-flight computation), persists the payload and
// settles the job's terminal state. enq anchors the queue-wait
// measurement.
func (s *server) runJob(ctx context.Context, j *job, enq time.Time) {
	defer s.wg.Done()
	defer j.cancel()

	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	case <-ctx.Done():
		// Cancelled while queued: the job leaves the queue without
		// admission, so the wait histogram never sees it.
		s.rm.Abandon()
		s.settle(j, statusCancelled, 0, ctx.Err(), 0)
		return
	}
	waitUS := s.rm.Admit(time.Since(enq))
	j.admitted(waitUS)
	if err := ctx.Err(); err != nil {
		s.settle(j, statusCancelled, 0, err, s.rm.Finish(0, false))
		return
	}

	j.start()
	start := time.Now()
	owned := false
	payload, err := s.flight.DoCtx(ctx, j.digest, func(ctx context.Context) ([]byte, error) {
		owned = true
		return s.compute(ctx, j)
	})
	wall := time.Since(start)
	switch {
	case err == nil:
		if owned {
			if perr := s.store.Put(j.digest, payload); perr != nil {
				s.log.Warn("cache put failed", "digest", j.digest, "err", perr)
			}
			s.flight.Forget(j.digest)
		} else {
			// Coalesced onto another job's computation: the payload
			// arrives whole, not streamed row by row.
			s.coalesced.Inc()
			j.setCache("coalesced")
			j.appendPayload(splitLines(payload)...)
		}
		s.settle(j, statusDone, wall, nil, s.rm.Finish(wall, true))
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		s.settle(j, statusCancelled, wall, err, s.rm.Finish(wall, false))
	default:
		s.settle(j, statusFailed, wall, err, s.rm.Finish(wall, false))
	}
}

// settle drives the job terminal and folds its span into the per-class
// aggregate. runUS is the value Finish observed into the run histogram
// (0 when the job was never admitted) — passing the identical value
// into the span record is what makes the aggregate reconcile with the
// histograms exactly.
func (s *server) settle(j *job, status string, wall time.Duration, err error, runUS int64) {
	j.finish(status, wall, err, runUS)
	s.recordSettled(j)
}

// recordSettled folds a terminal job's span into the per-class
// aggregate (keyed by cache disposition) and emits the settle log line.
func (s *server) recordSettled(j *job) {
	rec := j.record()
	class := rec.Cache
	if class == "" {
		class = "miss"
	}
	totalUS := (rec.Spans.DoneUnixNS - rec.Spans.SubmitUnixNS) / 1000
	s.aggMu.Lock()
	a := s.agg[class]
	if a == nil {
		a = new(classAgg)
		s.agg[class] = a
	}
	a.count++
	a.waitUS += rec.Spans.WaitUS
	a.runUS += rec.Spans.RunUS
	a.totalUS += totalUS
	s.aggMu.Unlock()
	s.log.Info("job settled",
		"job", rec.ID, "kind", rec.Kind, "digest", rec.Digest,
		"status", rec.Status, "cache", class, "rows", rec.Rows,
		"wait_us", rec.Spans.WaitUS, "run_us", rec.Spans.RunUS,
		"wall_ns", rec.WallNS, "err", rec.Error)
}

// spanAggs snapshots the per-class span aggregate for /status.
func (s *server) spanAggs() map[string]webstatus.JobSpanAgg {
	s.aggMu.Lock()
	defer s.aggMu.Unlock()
	if len(s.agg) == 0 {
		return nil
	}
	m := make(map[string]webstatus.JobSpanAgg, len(s.agg))
	for class, a := range s.agg {
		m[class] = webstatus.JobSpanAgg{
			Count: a.count, WaitUS: a.waitUS, RunUS: a.runUS, TotalUS: a.totalUS,
		}
	}
	return m
}

// ready backs /readyz: the server is ready once its cache index is
// loaded (a *server only exists with an open store) and it is not
// draining.
func (s *server) ready() (bool, string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false, "draining"
	}
	return true, ""
}

// compute runs the simulation(s) and returns the deterministic payload
// blob, streaming each payload line into j as it is produced.
func (s *server) compute(ctx context.Context, j *job) ([]byte, error) {
	if j.spec.Kind == kindRun {
		return s.computeRun(ctx, j)
	}
	return s.computeFig6(ctx, j)
}

func (s *server) computeRun(ctx context.Context, j *job) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rc := *j.spec.Config
	cfg := prefetchsim.Config{
		App:                   rc.App,
		Scheme:                prefetchsim.Scheme(rc.Scheme),
		Degree:                rc.Degree,
		Processors:            rc.Processors,
		SLCBytes:              rc.SLCBytes,
		SLCWays:               rc.SLCWays,
		Scale:                 rc.Scale,
		Seed:                  rc.Seed,
		SequentialConsistency: rc.SequentialConsistency,
		BandwidthFactor:       rc.BandwidthFactor,
		CollectMetrics:        j.spec.Metrics,
	}
	if j.spec.Spans {
		cfg.Spans = &prefetchsim.SpanConfig{}
	}
	res, err := prefetchsim.Run(cfg)
	if err != nil {
		return nil, err
	}
	j.setProgress(1, 1)

	texts := prefetchsim.StatsLines(res.Stats)
	var lines [][]byte
	for i, t := range texts {
		lines = append(lines, mustJSON(rowLine{Type: "row", I: i, Total: len(texts), Text: t}))
	}
	if j.spec.Metrics {
		lines = append(lines, mustJSON(metricsLine{Type: "metrics", Totals: res.Metrics.Totals()}))
	}
	if j.spec.Spans && res.Spans != nil && res.SpanTrace != nil {
		sum := obs.SummarizeSpanStats(res.Spans, *res.SpanTrace)
		lines = append(lines, mustJSON(spansLine{Type: "spans", Summary: sum}))
	}
	lines = append(lines, mustJSON(resultLine{
		Type: "result", Kind: kindRun, Rows: len(texts),
		RowsDigest:   prefetchsim.DigestRows(texts),
		StatsDigest:  prefetchsim.StatsDigest(res.Stats),
		ConfigDigest: rc.Digest(),
		VirtualTime:  int64(res.Stats.ExecTime),
	}))
	j.appendPayload(lines...)
	return joinLines(lines), nil
}

func (s *server) computeFig6(ctx context.Context, j *job) ([]byte, error) {
	spec := j.spec
	schemes := make([]prefetchsim.Scheme, len(spec.Schemes))
	for i, sc := range spec.Schemes {
		schemes[i] = prefetchsim.Scheme(sc)
	}

	// Rows are streamed in submission order as their contiguous prefix
	// completes, so the live stream is byte-identical to the cached
	// payload no matter how many workers race. Callbacks are
	// serialized by the pool, so pending/next need no lock.
	var all [][]byte
	total := spec.totalSims()
	var texts []string
	pending := make(map[int]string)
	next := 0
	onRow := func(i, tot int, row fmt.Stringer) {
		pending[i] = row.String()
		var emit [][]byte
		for {
			text, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			texts = append(texts, text)
			emit = append(emit, mustJSON(rowLine{Type: "row", I: next, Total: tot, Text: text}))
			next++
		}
		if len(emit) > 0 {
			all = append(all, emit...)
			j.appendPayload(emit...)
		}
	}

	opt := prefetchsim.ExpOptions{
		Ctx:          ctx,
		Procs:        spec.Procs,
		Scale:        spec.Scale,
		Seed:         spec.Seed,
		Apps:         spec.Apps,
		Workers:      s.workers,
		OnRowIndexed: onRow,
		Progress:     j.setProgress,
	}
	var rec *prefetchsim.ManifestRecorder
	if spec.Metrics {
		rec = new(prefetchsim.ManifestRecorder)
		opt.Record = rec
	}
	var err error
	if spec.Finite {
		_, err = prefetchsim.Figure6Finite(opt, schemes...)
	} else {
		_, err = prefetchsim.Figure6(opt, schemes...)
	}
	if err != nil {
		return nil, err
	}
	if len(texts) != total {
		return nil, fmt.Errorf("streamed %d of %d rows", len(texts), total)
	}

	var tail [][]byte
	if rec != nil {
		tail = append(tail, mustJSON(metricsLine{Type: "metrics", Totals: rec.Totals()}))
	}
	tail = append(tail, mustJSON(resultLine{
		Type: "result", Kind: kindFig6, Rows: len(texts),
		RowsDigest: prefetchsim.DigestRows(texts),
	}))
	all = append(all, tail...)
	j.appendPayload(tail...)
	return joinLines(all), nil
}

// getJob looks a job up by id.
func (s *server) getJob(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// cancelJob requests cancellation; the job settles to its terminal
// state asynchronously (an in-flight simulation completes first).
// Reports whether the job exists.
func (s *server) cancelJob(id string) (*job, bool) {
	j := s.getJob(id)
	if j == nil {
		return nil, false
	}
	if j.cancel != nil {
		j.cancel()
	}
	return j, true
}

// drain stops admitting jobs, waits up to timeout for in-flight ones,
// then cancels the stragglers and waits for them to settle.
func (s *server) drain(timeout time.Duration) {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()

	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		return
	case <-time.After(timeout):
	}
	s.log.Warn("drain timeout, cancelling in-flight jobs", "timeout", timeout.String())
	s.mu.Lock()
	for _, j := range s.jobs {
		if j.cancel != nil {
			j.cancel()
		}
	}
	s.mu.Unlock()
	<-done
}

// status is the webstatus snapshot: job counts by state, cache
// counters, build info and the per-class job-span aggregate.
func (s *server) status() webstatus.Status {
	s.mu.Lock()
	counts := map[string]int64{}
	finished, rows := 0, 0
	for _, j := range s.jobs {
		rec := j.record()
		counts["jobs."+rec.Status]++
		if terminal(rec.Status) {
			finished++
		}
		rows += rec.Rows
	}
	total := len(s.jobs)
	s.mu.Unlock()

	counts["cache.objects"] = int64(s.store.Len())
	counts["cache.bytes"] = s.store.Bytes()
	counts["cache.evictions"] = s.store.Evictions()
	counts["cache.hits"] = s.hits.Value()
	counts["cache.misses"] = s.misses.Value()
	counts["cache.coalesced"] = s.coalesced.Value()
	return webstatus.Status{
		Tool: "prefetchd", Done: finished, Total: total, Rows: rows,
		Metrics:     counts,
		Version:     s.version,
		GitSHA:      s.sha,
		JobSpans:    s.spanAggs(),
		StartUnixNS: s.start.UnixNano(),
		UptimeNS:    time.Since(s.start).Nanoseconds(),
	}
}

// register mounts the job API on the webstatus mux (which already
// serves /status, /healthz and the telemetry surfaces).
func (s *server) register(mux *http.ServeMux) {
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleGet)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	buf := mustJSON(v)
	w.Write(append(buf, '\n'))
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var spec jobSpec
	if err := dec.Decode(&spec); err != nil {
		s.badSpec.Inc()
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decode job spec: %w", err))
		return
	}
	spec, err := spec.normalize()
	if err != nil {
		s.badSpec.Inc()
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	j, err := s.submit(spec)
	if err != nil {
		s.rejected.Inc()
		s.log.Info("submission rejected", "err", err)
		writeErr(w, http.StatusServiceUnavailable, err)
		return
	}
	if r.URL.Query().Get("stream") != "" {
		s.streamJob(w, r, j)
		return
	}
	code := http.StatusAccepted
	if rec := j.record(); terminal(rec.Status) {
		code = http.StatusOK
	}
	writeJSON(w, code, j.record())
}

func (s *server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	recs := make([]jobRecord, 0, len(s.order))
	for _, id := range s.order {
		recs = append(recs, s.jobs[id].record())
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, recs)
}

func (s *server) handleGet(w http.ResponseWriter, r *http.Request) {
	j := s.getJob(r.PathValue("id"))
	if j == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no such job"))
		return
	}
	writeJSON(w, http.StatusOK, j.record())
}

func (s *server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.cancelJob(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no such job"))
		return
	}
	writeJSON(w, http.StatusOK, j.record())
}

func (s *server) handleStream(w http.ResponseWriter, r *http.Request) {
	j := s.getJob(r.PathValue("id"))
	if j == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no such job"))
		return
	}
	s.streamJob(w, r, j)
}

// streamJob writes the job's NDJSON stream: a per-request job header,
// the (cached or live) payload lines, and a per-request done trailer.
// The payload lines between header and trailer are byte-identical
// across requests for the same spec — that is the cache contract.
func (s *server) streamJob(w http.ResponseWriter, r *http.Request, j *job) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	fl, _ := w.(http.Flusher)
	flush := func() {
		if fl != nil {
			fl.Flush()
		}
	}
	writeLine := func(line []byte) {
		w.Write(line)
		w.Write([]byte{'\n'})
		s.streamRows.Inc()
		s.streamBytes.Add(int64(len(line)) + 1)
	}

	writeLine(mustJSON(jobLine{Type: "job", jobRecord: j.record()}))
	flush()

	seen := 0
	for {
		lines, rec, finished, ok := j.next(r.Context().Done(), seen)
		if !ok {
			return // client went away
		}
		for _, l := range lines {
			writeLine(l)
		}
		seen += len(lines)
		flush()
		if finished {
			writeLine(mustJSON(doneLine{
				Type: "done", Status: rec.Status, Cache: rec.Cache,
				Rows: rec.Rows, WallNS: rec.WallNS, Error: rec.Error,
			}))
			flush()
			return
		}
	}
}

// handleEvents serves job progress as server-sent events: one
// "progress" event per state change, a final "done" event, then EOF.
// The subscriber gauge tracks live watchers; it returns to its prior
// level however the watcher leaves (done event or disconnect).
func (s *server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.getJob(r.PathValue("id"))
	if j == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no such job"))
		return
	}
	s.sseSubs.Add(1)
	defer s.sseSubs.Add(-1)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	fl, _ := w.(http.Flusher)

	var last jobRecord
	first := true
	for {
		j.mu.Lock()
		rec := j.recordLocked()
		ch := j.notify
		j.mu.Unlock()
		if first || rec != last {
			event := "progress"
			if terminal(rec.Status) {
				event = "done"
			}
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, mustJSON(rec))
			if fl != nil {
				fl.Flush()
			}
			last, first = rec, false
		}
		if terminal(rec.Status) {
			return
		}
		select {
		case <-ch:
		case <-r.Context().Done():
			return
		}
	}
}
