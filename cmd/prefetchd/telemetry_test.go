package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"prefetchsim/internal/obs"
)

// postJob submits a spec without streaming and returns the accepted
// record.
func postJob(t *testing.T, base, spec string) jobRecord {
	t.Helper()
	resp, err := http.Post(base+"/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatalf("POST /jobs: %v", err)
	}
	defer resp.Body.Close()
	var rec jobRecord
	if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
		t.Fatalf("decode job record: %v", err)
	}
	return rec
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// waitTerminal polls until the job settles and returns its final
// record.
func waitTerminal(t *testing.T, s *server, id string) jobRecord {
	t.Helper()
	var rec jobRecord
	waitFor(t, "job "+id+" to settle", func() bool {
		j := s.getJob(id)
		if j == nil {
			return false
		}
		rec = j.record()
		return terminal(rec.Status)
	})
	return rec
}

// TestJobSpanReconcile is the tentpole's accounting check: one job per
// cache class (miss, coalesced, hit), and the per-class span aggregate
// sums to exactly what the runner latency histograms observed — the
// same microsecond values flow into both, so the equality is exact,
// not approximate.
func TestJobSpanReconcile(t *testing.T) {
	s, base := startTestServer(t, 2)

	// Two identical submissions back to back: the store is empty when
	// both submit, so the first to enter the flight group owns the
	// computation and the other coalesces onto it.
	spec := `{"kind":"figure6","apps":["lu"],"schemes":["Seq"],"procs":4}`
	ra := postJob(t, base, spec)
	rb := postJob(t, base, spec)
	reca := waitTerminal(t, s, ra.ID)
	recb := waitTerminal(t, s, rb.ID)

	// A third submission is a cache hit, born terminal.
	rech := waitTerminal(t, s, postJob(t, base, spec).ID)
	if rech.Cache != "hit" {
		t.Fatalf("third submission cache %q, want hit", rech.Cache)
	}

	byClass := map[string]jobRecord{reca.Cache: reca, recb.Cache: recb}
	miss, ok := byClass["miss"]
	if !ok {
		t.Fatalf("no miss among %q/%q", reca.Cache, recb.Cache)
	}
	if _, ok := byClass["coalesced"]; !ok {
		t.Fatalf("no coalesced job among %q/%q", reca.Cache, recb.Cache)
	}

	// The miss walked every lifecycle state in order.
	sp := miss.Spans
	stamps := []int64{sp.SubmitUnixNS, sp.QueuedUnixNS, sp.AdmittedUnixNS,
		sp.RunningUnixNS, sp.StreamingUnixNS, sp.DoneUnixNS}
	for i, v := range stamps {
		if v <= 0 {
			t.Fatalf("miss span stamp %d missing: %+v", i, sp)
		}
		if i > 0 && v < stamps[i-1] {
			t.Fatalf("miss span stamps out of order: %+v", sp)
		}
	}
	// The hit never queued or ran; it only streamed and settled.
	hsp := rech.Spans
	if hsp.QueuedUnixNS != 0 || hsp.AdmittedUnixNS != 0 || hsp.RunningUnixNS != 0 ||
		hsp.WaitUS != 0 || hsp.RunUS != 0 {
		t.Fatalf("hit span has pipeline stamps: %+v", hsp)
	}
	if hsp.SubmitUnixNS <= 0 || hsp.StreamingUnixNS <= 0 || hsp.DoneUnixNS < hsp.StreamingUnixNS {
		t.Fatalf("hit span incomplete: %+v", hsp)
	}

	// The spans travel the HTTP surface: GET /jobs/{id} carries them.
	resp, err := http.Get(base + "/jobs/" + miss.ID)
	if err != nil {
		t.Fatalf("GET job: %v", err)
	}
	var got jobRecord
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatalf("decode job: %v", err)
	}
	resp.Body.Close()
	if got.Spans != miss.Spans {
		t.Fatalf("HTTP spans %+v != recorded %+v", got.Spans, miss.Spans)
	}

	// recordSettled folds the aggregate just after the job turns
	// terminal; wait for all three classes to land.
	waitFor(t, "three settled spans", func() bool {
		n := int64(0)
		for _, a := range s.spanAggs() {
			n += a.Count
		}
		return n == 3
	})
	aggs := s.spanAggs()
	if a := aggs["hit"]; a.Count != 1 || a.WaitUS != 0 || a.RunUS != 0 {
		t.Fatalf("hit aggregate = %+v", a)
	}

	// Reconciliation: only admitted jobs (miss + coalesced) feed the
	// runner histograms, and they carry the histogram's own values.
	admitted := aggs["miss"].Count + aggs["coalesced"].Count
	wantWait := aggs["miss"].WaitUS + aggs["coalesced"].WaitUS
	wantRun := aggs["miss"].RunUS + aggs["coalesced"].RunUS
	if n, sum := s.rm.Wait.Count(), s.rm.Wait.Sum(); n != admitted || sum != wantWait {
		t.Errorf("wait histogram count=%d sum=%d, spans say %d/%d", n, sum, admitted, wantWait)
	}
	if n, sum := s.rm.Run.Count(), s.rm.Run.Sum(); n != admitted || sum != wantRun {
		t.Errorf("run histogram count=%d sum=%d, spans say %d/%d", n, sum, admitted, wantRun)
	}
	if v := s.rm.QueueDepth.Value(); v != 0 {
		t.Errorf("queue depth %d after all jobs settled", v)
	}
	if v := s.rm.InFlight.Value(); v != 0 {
		t.Errorf("inflight %d after all jobs settled", v)
	}

	// /status carries the same aggregate.
	st := s.status()
	if st.JobSpans["miss"] != aggs["miss"] || st.JobSpans["hit"] != aggs["hit"] {
		t.Errorf("/status job_spans %+v != aggregate %+v", st.JobSpans, aggs)
	}
}

// TestSSESubscriberLifecycle: a client disconnecting mid-stream
// releases its subscriber slot (gauge back down) without disturbing a
// concurrent watcher, which still receives the final done event.
func TestSSESubscriberLifecycle(t *testing.T) {
	s, base := startTestServer(t, 1)

	// A multi-scheme sweep holds the only slot long enough for
	// watchers to attach and detach while it runs.
	spec := `{"kind":"figure6","apps":["lu"],"schemes":["I-det","D-det","Seq"],"procs":4}`
	rec := postJob(t, base, spec)
	events := fmt.Sprintf("%s/jobs/%s/events", base, rec.ID)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, events, nil)
	resp1, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET events (1): %v", err)
	}
	defer resp1.Body.Close()

	resp2, err := http.Get(events)
	if err != nil {
		t.Fatalf("GET events (2): %v", err)
	}
	defer resp2.Body.Close()

	waitFor(t, "two SSE subscribers", func() bool { return s.sseSubs.Value() == 2 })

	// Sever the first watcher mid-stream: its handler must notice the
	// disconnect and release the slot while the job is still running.
	cancel()
	waitFor(t, "disconnect to release a subscriber", func() bool { return s.sseSubs.Value() == 1 })

	// Settle the job (cancel is its fastest terminal state); the
	// surviving watcher still gets the done event, then EOF.
	delReq, _ := http.NewRequest(http.MethodDelete, base+"/jobs/"+rec.ID, nil)
	delResp, err := http.DefaultClient.Do(delReq)
	if err != nil {
		t.Fatalf("DELETE job: %v", err)
	}
	delResp.Body.Close()

	sawDone := false
	sc := bufio.NewScanner(resp2.Body)
	for sc.Scan() {
		if sc.Text() == "event: done" {
			sawDone = true
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scan surviving watcher: %v", err)
	}
	if !sawDone {
		t.Fatal("surviving watcher ended without a done event")
	}
	waitFor(t, "all subscribers released", func() bool { return s.sseSubs.Value() == 0 })
}

// TestMetricsEndpoint scrapes /metrics after a miss + hit pair and
// checks the exposition end to end: the resultcache counters moved,
// the runner pipeline drained back to zero, and the histograms are
// valid Prometheus (typed, with +Inf buckets).
func TestMetricsEndpoint(t *testing.T) {
	_, base := startTestServer(t, 2)

	spec := `{"kind":"figure6","apps":["matmul"],"schemes":["Seq"],"procs":4}`
	_, _, done1 := submitStream(t, base, spec)
	_, _, done2 := submitStream(t, base, spec)
	if done1.Cache != "miss" || done2.Cache != "hit" {
		t.Fatalf("cache dispositions %q/%q, want miss/hit", done1.Cache, done2.Cache)
	}

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	raw := new(strings.Builder)
	if _, err := fmt.Fprint(raw, readAll(t, resp)); err != nil {
		t.Fatal(err)
	}
	body := raw.String()
	if ct := resp.Header.Get("Content-Type"); ct != obs.PromContentType {
		t.Fatalf("/metrics content type %q", ct)
	}
	for _, want := range []string{
		"resultcache_hits_total 1\n",
		"resultcache_misses_total 1\n",
		"jobs_cache_hits_total 1\n",
		"jobs_cache_misses_total 1\n",
		"jobs_done 2\n",
		"runner_queue_depth 0\n",
		"runner_inflight 0\n",
		"runner_completed_total 1\n",
		"# TYPE runner_wait_us histogram\n",
		"# TYPE runner_run_us histogram\n",
		"runner_wait_us_bucket{le=\"+Inf\"} 1\n",
		"runner_run_us_count 1\n",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", strings.TrimSpace(want))
		}
	}
	// Streaming counters saw both transcripts (header + payload +
	// trailer per request), so at least two lines per submission.
	if !strings.Contains(body, "# TYPE stream_rows_total counter\n") {
		t.Errorf("/metrics missing stream_rows_total")
	}
	if t.Failed() {
		t.Logf("exposition:\n%s", body)
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	var sb strings.Builder
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(nil, 1<<20)
	for sc.Scan() {
		sb.Write(sc.Bytes())
		sb.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("read body: %v", err)
	}
	return sb.String()
}
