// Command prefetchd serves the simulator as a long-lived HTTP job
// service: POST a job spec (a single run config or a Figure-6 sweep),
// follow its rows as NDJSON or its progress as server-sent events, and
// repeated submissions of the same spec are answered from a persistent
// content-addressed result cache without re-simulating — the simulator
// is deterministic, so equal spec digests mean byte-identical rows.
//
//	prefetchd -http 127.0.0.1:8080 -cache-dir /var/cache/prefetchd
//
// API (plus webstatus's /status, /healthz, /readyz and /metrics):
//
//	POST   /jobs            submit a spec; ?stream=1 streams NDJSON
//	GET    /jobs            list jobs
//	GET    /jobs/{id}       one job's record (with lifecycle spans)
//	GET    /jobs/{id}/stream  replay + follow the job's NDJSON
//	GET    /jobs/{id}/events  progress as server-sent events
//	DELETE /jobs/{id}       cancel
//
// Operational logs are structured (JSON on stderr, level via
// -log-level); the protocol lines the smoke script parses stay on
// stdout. -pprof mounts net/http/pprof under /debug/pprof/.
//
// SIGINT/SIGTERM drains: /readyz flips to 503, new submissions get
// 503, in-flight jobs get -drain-timeout to finish (then are
// cancelled), the cache index is persisted, and only then does the
// listener close.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"prefetchsim/internal/obs"
	"prefetchsim/internal/resultcache"
	"prefetchsim/internal/webstatus"
)

// version identifies the build; override with
//
//	go build -ldflags "-X main.version=v1.2.3" ./cmd/prefetchd
var version = "dev"

func main() {
	var (
		httpAddr = flag.String("http", "127.0.0.1:8080", "listen address (host:port, port 0 = ephemeral)")
		cacheDir = flag.String("cache-dir", "prefetchd-cache", "result cache directory")
		cacheMax = flag.Int64("cache-max-bytes", 256<<20, "result cache size budget in bytes")
		maxJobs  = flag.Int("max-jobs", 2, "jobs computing concurrently (queued beyond that)")
		workers  = flag.Int("j", 0, "simulation workers per job (0 = GOMAXPROCS)")
		drainT   = flag.Duration("drain-timeout", 30*time.Second, "shutdown: grace for in-flight jobs before cancelling them")
		pprofOn  = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		logLevel = flag.String("log-level", "info", "structured log level: debug, info, warn, error")
		showVer  = flag.Bool("version", false, "print version and git SHA, then exit")
	)
	flag.Parse()

	sha := obs.RepoSHA()
	if *showVer {
		fmt.Printf("prefetchd %s %s\n", version, sha)
		return
	}

	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "prefetchd: bad -log-level %q: %v\n", *logLevel, err)
		os.Exit(2)
	}
	logger := slog.New(slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: lvl}))

	store, err := resultcache.Open(*cacheDir, *cacheMax)
	if err != nil {
		logger.Error("open cache", "dir", *cacheDir, "err", err)
		os.Exit(1)
	}
	s := newServer(store, *workers, *maxJobs)
	s.log = logger
	s.version = version
	s.sha = sha

	srv, err := webstatus.ServeOpts(*httpAddr, s.status, webstatus.Options{
		Register: s.register,
		Metrics:  s.reg,
		Ready:    s.ready,
		Pprof:    *pprofOn,
	})
	if err != nil {
		logger.Error("listen", "addr", *httpAddr, "err", err)
		os.Exit(1)
	}
	// The smoke script and tests parse this line for the bound address
	// (meaningful with -http :0).
	fmt.Printf("prefetchd: serving on http://%s\n", srv.Addr())
	logger.Info("serving", "addr", srv.Addr(), "version", version,
		"git_sha", sha, "pprof", *pprofOn, "max_jobs", *maxJobs)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("prefetchd: draining")
	logger.Info("draining", "timeout", drainT.String())

	// Drain order: stop admitting jobs and settle the in-flight ones,
	// close the listener gracefully (in-flight status requests finish),
	// then persist the cache index.
	s.drain(*drainT)
	ctx, cancel := context.WithTimeout(context.Background(), webstatus.CloseTimeout)
	if err := srv.Shutdown(ctx); err != nil {
		logger.Warn("http shutdown", "err", err)
	}
	cancel()
	if err := store.Close(); err != nil {
		logger.Warn("close cache", "err", err)
	}
	fmt.Println("prefetchd: stopped")
}
