// Command prefetchd serves the simulator as a long-lived HTTP job
// service: POST a job spec (a single run config or a Figure-6 sweep),
// follow its rows as NDJSON or its progress as server-sent events, and
// repeated submissions of the same spec are answered from a persistent
// content-addressed result cache without re-simulating — the simulator
// is deterministic, so equal spec digests mean byte-identical rows.
//
//	prefetchd -http 127.0.0.1:8080 -cache-dir /var/cache/prefetchd
//
// API (plus webstatus's /status and /healthz):
//
//	POST   /jobs            submit a spec; ?stream=1 streams NDJSON
//	GET    /jobs            list jobs
//	GET    /jobs/{id}       one job's record
//	GET    /jobs/{id}/stream  replay + follow the job's NDJSON
//	GET    /jobs/{id}/events  progress as server-sent events
//	DELETE /jobs/{id}       cancel
//
// SIGINT/SIGTERM drains: new submissions get 503, in-flight jobs get
// -drain-timeout to finish (then are cancelled), the cache index is
// persisted, and only then does the listener close.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"prefetchsim/internal/resultcache"
	"prefetchsim/internal/webstatus"
)

func main() {
	var (
		httpAddr = flag.String("http", "127.0.0.1:8080", "listen address (host:port, port 0 = ephemeral)")
		cacheDir = flag.String("cache-dir", "prefetchd-cache", "result cache directory")
		cacheMax = flag.Int64("cache-max-bytes", 256<<20, "result cache size budget in bytes")
		maxJobs  = flag.Int("max-jobs", 2, "jobs computing concurrently (queued beyond that)")
		workers  = flag.Int("j", 0, "simulation workers per job (0 = GOMAXPROCS)")
		drainT   = flag.Duration("drain-timeout", 30*time.Second, "shutdown: grace for in-flight jobs before cancelling them")
	)
	flag.Parse()
	log.SetFlags(0)

	store, err := resultcache.Open(*cacheDir, *cacheMax)
	if err != nil {
		log.Fatalf("prefetchd: open cache: %v", err)
	}
	s := newServer(store, *workers, *maxJobs)

	srv, err := webstatus.ServeMux(*httpAddr, s.status, s.register)
	if err != nil {
		log.Fatalf("prefetchd: listen: %v", err)
	}
	// The smoke script and tests parse this line for the bound address
	// (meaningful with -http :0).
	fmt.Printf("prefetchd: serving on http://%s\n", srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("prefetchd: draining")

	// Drain order: stop admissions and settle jobs, close the listener
	// gracefully (in-flight status requests finish), then persist the
	// cache index.
	s.drain(*drainT)
	ctx, cancel := context.WithTimeout(context.Background(), webstatus.CloseTimeout)
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("prefetchd: http shutdown: %v", err)
	}
	cancel()
	if err := store.Close(); err != nil {
		log.Printf("prefetchd: close cache: %v", err)
	}
	fmt.Println("prefetchd: stopped")
}
