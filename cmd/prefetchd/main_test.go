package main

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"prefetchsim"
	"prefetchsim/internal/resultcache"
	"prefetchsim/internal/webstatus"
)

func TestSpecNormalize(t *testing.T) {
	t.Parallel()

	// Kind inference + defaults.
	s, err := jobSpec{Config: &prefetchsim.RunConfig{App: "matmul"}}.normalize()
	if err != nil {
		t.Fatalf("normalize run: %v", err)
	}
	if s.Kind != kindRun || s.Config.Scheme != string(prefetchsim.Baseline) ||
		s.Config.Degree != 1 || s.Config.Processors != 16 || s.Config.Scale != 1 {
		t.Fatalf("run defaults not applied: %+v %+v", s, *s.Config)
	}

	s, err = jobSpec{Apps: []string{"lu"}}.normalize()
	if err != nil {
		t.Fatalf("normalize figure6: %v", err)
	}
	if s.Kind != kindFig6 || len(s.Schemes) == 0 || s.Procs != 16 || s.Scale != 1 {
		t.Fatalf("figure6 defaults not applied: %+v", s)
	}

	// Equivalent spellings digest identically; different work doesn't.
	a, _ := jobSpec{Config: &prefetchsim.RunConfig{App: "matmul"}}.normalize()
	b, _ := jobSpec{Kind: kindRun, Config: &prefetchsim.RunConfig{
		App: "matmul", Scheme: "baseline", Degree: 1, Processors: 16, Scale: 1}}.normalize()
	if a.digest() != b.digest() {
		t.Errorf("equivalent specs digest differently: %s vs %s", a.digest(), b.digest())
	}
	c, _ := jobSpec{Config: &prefetchsim.RunConfig{App: "matmul", Seed: 7}}.normalize()
	if a.digest() == c.digest() {
		t.Errorf("different seeds share a digest: %s", a.digest())
	}
	d, _ := a, error(nil)
	d.Metrics = true
	if a.digest() == d.digest() {
		t.Errorf("metrics flag not part of the digest")
	}

	// Invalid specs are rejected.
	for _, bad := range []jobSpec{
		{},
		{Kind: "nope"},
		{Kind: kindRun},
		{Kind: kindRun, Config: &prefetchsim.RunConfig{}},
		{Config: &prefetchsim.RunConfig{App: "matmul"}, Apps: []string{"lu"}},
		{Kind: kindFig6, Spans: true},
	} {
		if _, err := bad.normalize(); err == nil {
			t.Errorf("spec %+v: want error", bad)
		}
	}
}

// startTestServer boots a full prefetchd (ephemeral port, temp cache
// dir) and tears it down with the test.
func startTestServer(t *testing.T, maxJobs int) (*server, string) {
	t.Helper()
	store, err := resultcache.Open(t.TempDir(), 64<<20)
	if err != nil {
		t.Fatalf("open cache: %v", err)
	}
	s := newServer(store, 2, maxJobs)
	srv, err := webstatus.ServeOpts("127.0.0.1:0", s.status, webstatus.Options{
		Register: s.register, Metrics: s.reg, Ready: s.ready,
	})
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() {
		s.drain(time.Minute)
		srv.Close()
		store.Close()
	})
	return s, "http://" + srv.Addr()
}

// ndjson splits a streamed response into its job header, payload
// lines, and done trailer.
func parseStream(t *testing.T, body []byte) (header jobLine, payload [][]byte, done doneLine) {
	t.Helper()
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(nil, 1<<20)
	first := true
	for sc.Scan() {
		line := append([]byte(nil), sc.Bytes()...)
		var probe struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		switch {
		case first:
			if probe.Type != "job" {
				t.Fatalf("stream starts with %q, want job", probe.Type)
			}
			if err := json.Unmarshal(line, &header); err != nil {
				t.Fatalf("decode job line: %v", err)
			}
			first = false
		case probe.Type == "done":
			if err := json.Unmarshal(line, &done); err != nil {
				t.Fatalf("decode done line: %v", err)
			}
		default:
			payload = append(payload, line)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scan stream: %v", err)
	}
	if done.Type != "done" {
		t.Fatalf("stream has no done trailer; %d lines", len(payload))
	}
	return header, payload, done
}

func submitStream(t *testing.T, base, spec string) (jobLine, [][]byte, doneLine) {
	t.Helper()
	resp, err := http.Post(base+"/jobs?stream=1", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatalf("POST /jobs: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("read stream: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /jobs?stream=1: status %d: %s", resp.StatusCode, buf.String())
	}
	return parseStream(t, buf.Bytes())
}

// TestCacheHitByteIdentical is the acceptance criterion: the same spec
// submitted twice simulates once; the repeat is served from the result
// cache with a byte-identical payload, proven by hashing both streams.
func TestCacheHitByteIdentical(t *testing.T) {
	s, base := startTestServer(t, 2)

	spec := `{"kind":"figure6","apps":["matmul"],"schemes":["Seq"],"procs":4,"metrics":true}`
	_, payload1, done1 := submitStream(t, base, spec)
	if done1.Status != statusDone || done1.Cache != "miss" {
		t.Fatalf("first submission: status %q cache %q, want done/miss", done1.Status, done1.Cache)
	}
	if len(payload1) == 0 {
		t.Fatal("first submission streamed no payload lines")
	}

	_, payload2, done2 := submitStream(t, base, spec)
	if done2.Status != statusDone || done2.Cache != "hit" {
		t.Fatalf("second submission: status %q cache %q, want done/hit", done2.Status, done2.Cache)
	}

	h1 := sha256.Sum256(joinLines(payload1))
	h2 := sha256.Sum256(joinLines(payload2))
	if h1 != h2 {
		t.Fatalf("cache hit payload differs from the original:\n%s\n----\n%s",
			joinLines(payload1), joinLines(payload2))
	}
	if hits, misses := s.hits.Value(), s.misses.Value(); hits != 1 || misses != 1 {
		t.Fatalf("cache counters: hits=%d misses=%d, want 1/1", hits, misses)
	}

	// The payload survives a cache reopen: a fresh server on the same
	// directory also answers from cache.
	var rows int
	for _, l := range payload1 {
		if bytes.Contains(l, []byte(`"type":"row"`)) {
			rows++
		}
	}
	if rows == 0 {
		t.Fatal("payload has no row lines")
	}
}

// TestRunJobPayload checks a single-run job's payload shape: node rows,
// metrics totals, and a result line carrying the canonical digests.
func TestRunJobPayload(t *testing.T) {
	_, base := startTestServer(t, 2)

	spec := `{"config":{"app":"matmul","processors":4},"metrics":true,"spans":true}`
	header, payload, done := submitStream(t, base, spec)
	if done.Status != statusDone {
		t.Fatalf("run job failed: %+v", done)
	}
	if !strings.HasPrefix(header.Digest, "run-") {
		t.Fatalf("run job digest %q lacks run- prefix", header.Digest)
	}

	var rows []string
	var sawMetrics, sawSpans bool
	var res resultLine
	for _, l := range payload {
		var probe struct {
			Type string `json:"type"`
			Text string `json:"text"`
		}
		if err := json.Unmarshal(l, &probe); err != nil {
			t.Fatalf("bad payload line %q: %v", l, err)
		}
		switch probe.Type {
		case "row":
			rows = append(rows, probe.Text)
		case "metrics":
			sawMetrics = true
		case "spans":
			sawSpans = true
		case "result":
			if err := json.Unmarshal(l, &res); err != nil {
				t.Fatalf("decode result line: %v", err)
			}
		}
	}
	// 4 processors -> 4 node rows + 1 machine row.
	if len(rows) != 5 {
		t.Fatalf("got %d rows, want 5", len(rows))
	}
	if !sawMetrics || !sawSpans {
		t.Fatalf("payload missing metrics (%v) or spans (%v) line", sawMetrics, sawSpans)
	}
	if res.RowsDigest != prefetchsim.DigestRows(rows) {
		t.Fatalf("rows digest mismatch: line says %s, recomputed %s", res.RowsDigest, prefetchsim.DigestRows(rows))
	}
	if res.StatsDigest == "" || res.ConfigDigest == "" || res.VirtualTime <= 0 {
		t.Fatalf("result line incomplete: %+v", res)
	}

	// The result line's config digest matches the library's notion for
	// the same configuration.
	want := prefetchsim.ConfigDigest(prefetchsim.Config{App: "matmul", Processors: 4})
	if res.ConfigDigest != want {
		t.Fatalf("config digest %s, want %s", res.ConfigDigest, want)
	}
}

// TestCancelQueuedJob: with one execution slot, a queued job cancels
// cleanly while the slot holder keeps running.
func TestCancelQueuedJob(t *testing.T) {
	s, base := startTestServer(t, 1)

	// Occupy the only slot with a real sweep...
	slow := `{"kind":"figure6","apps":["lu"],"schemes":["I-det","D-det","Seq"],"procs":4}`
	resp, err := http.Post(base+"/jobs", "application/json", strings.NewReader(slow))
	if err != nil {
		t.Fatalf("POST slow job: %v", err)
	}
	var slowRec jobRecord
	if err := json.NewDecoder(resp.Body).Decode(&slowRec); err != nil {
		t.Fatalf("decode slow job record: %v", err)
	}
	resp.Body.Close()

	// ...then queue a second and cancel it before it can start.
	queued := `{"kind":"figure6","apps":["cholesky"],"schemes":["Seq"],"procs":4}`
	resp, err = http.Post(base+"/jobs", "application/json", strings.NewReader(queued))
	if err != nil {
		t.Fatalf("POST queued job: %v", err)
	}
	var qRec jobRecord
	if err := json.NewDecoder(resp.Body).Decode(&qRec); err != nil {
		t.Fatalf("decode queued job record: %v", err)
	}
	resp.Body.Close()

	req, _ := http.NewRequest(http.MethodDelete, base+"/jobs/"+qRec.ID, nil)
	if resp, err = http.DefaultClient.Do(req); err != nil {
		t.Fatalf("DELETE queued job: %v", err)
	}
	resp.Body.Close()

	// The cancelled job settles without waiting for the slot holder.
	deadline := time.Now().Add(10 * time.Second)
	for {
		j := s.getJob(qRec.ID)
		if rec := j.record(); terminal(rec.Status) {
			if rec.Status != statusCancelled {
				t.Fatalf("queued job settled as %q, want cancelled", rec.Status)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("cancelled job never settled")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Cancel the slot holder too so cleanup's drain is quick.
	req, _ = http.NewRequest(http.MethodDelete, base+"/jobs/"+slowRec.ID, nil)
	if resp, err = http.DefaultClient.Do(req); err != nil {
		t.Fatalf("DELETE slow job: %v", err)
	}
	resp.Body.Close()
}

// TestDrainRejectsNewJobs: a draining server 503s submissions.
func TestDrainRejectsNewJobs(t *testing.T) {
	s, base := startTestServer(t, 2)
	s.drain(time.Second)

	resp, err := http.Post(base+"/jobs", "application/json",
		strings.NewReader(`{"config":{"app":"matmul"}}`))
	if err != nil {
		t.Fatalf("POST after drain: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d after drain, want 503", resp.StatusCode)
	}

	// Draining also flips readiness: /readyz reports 503 so a load
	// balancer stops routing before the listener closes.
	ready, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatalf("GET /readyz: %v", err)
	}
	ready.Body.Close()
	if ready.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while draining = %d, want 503", ready.StatusCode)
	}
}

// TestStreamEndpointReplays: GET /jobs/{id}/stream after completion
// replays the identical payload the submission streamed.
func TestStreamEndpointReplays(t *testing.T) {
	_, base := startTestServer(t, 2)

	spec := `{"config":{"app":"matmul","processors":4}}`
	header, payload1, _ := submitStream(t, base, spec)

	resp, err := http.Get(fmt.Sprintf("%s/jobs/%s/stream", base, header.ID))
	if err != nil {
		t.Fatalf("GET stream: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	_, payload2, done := parseStream(t, buf.Bytes())
	if done.Status != statusDone {
		t.Fatalf("replay done: %+v", done)
	}
	if !bytes.Equal(joinLines(payload1), joinLines(payload2)) {
		t.Fatal("replayed payload differs from the original stream")
	}
}

// TestEventsEndpoint: SSE progress ends with a done event.
func TestEventsEndpoint(t *testing.T) {
	_, base := startTestServer(t, 2)

	spec := `{"kind":"figure6","apps":["matmul"],"schemes":["Seq"],"procs":4}`
	resp, err := http.Post(base+"/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	var rec jobRecord
	if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
		t.Fatalf("decode record: %v", err)
	}
	resp.Body.Close()

	resp, err = http.Get(fmt.Sprintf("%s/jobs/%s/events", base, rec.ID))
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content-type %q", ct)
	}
	var sawDone bool
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if sc.Text() == "event: done" {
			sawDone = true
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scan events: %v", err)
	}
	if !sawDone {
		t.Fatal("SSE stream ended without a done event")
	}
}
