package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"prefetchsim"
)

// Job kinds: a single simulation or a Figure-6 sweep.
const (
	kindRun  = "run"
	kindFig6 = "figure6"
)

// Job lifecycle states.
const (
	statusQueued    = "queued"
	statusRunning   = "running"
	statusDone      = "done"
	statusFailed    = "failed"
	statusCancelled = "cancelled"
)

// jobSpec is the POSTed description of one job: either a single
// simulation (kind "run", via the manifest's flat RunConfig) or a
// Figure-6 sweep (kind "figure6"). The normalized spec — defaults
// applied — is the unit the result cache keys on, so equivalent
// spellings of the same job share one cache entry.
type jobSpec struct {
	Kind string `json:"kind,omitempty"`

	// Single-run jobs.
	Config *prefetchsim.RunConfig `json:"config,omitempty"`
	// Spans adds the per-class span aggregate to a run job's payload.
	Spans bool `json:"spans,omitempty"`

	// Figure-6 sweep jobs.
	Apps    []string `json:"apps,omitempty"`
	Schemes []string `json:"schemes,omitempty"`
	Procs   int      `json:"procs,omitempty"`
	Scale   int      `json:"scale,omitempty"`
	Seed    uint64   `json:"seed,omitempty"`
	Finite  bool     `json:"finite,omitempty"`

	// Metrics adds machine-wide metric totals to the payload (both
	// kinds).
	Metrics bool `json:"metrics,omitempty"`
}

// normalize validates the spec and applies the simulator's defaults,
// so the digest of two equivalent submissions collides.
func (s jobSpec) normalize() (jobSpec, error) {
	if s.Kind == "" {
		switch {
		case s.Config != nil:
			s.Kind = kindRun
		case len(s.Apps) > 0 || len(s.Schemes) > 0:
			s.Kind = kindFig6
		default:
			return s, fmt.Errorf("empty job spec: set kind, config or apps")
		}
	}
	switch s.Kind {
	case kindRun:
		if s.Config == nil {
			return s, fmt.Errorf("run job needs a config")
		}
		if len(s.Apps) > 0 || len(s.Schemes) > 0 || s.Procs != 0 || s.Scale != 0 || s.Seed != 0 || s.Finite {
			return s, fmt.Errorf("run job: sweep fields (apps/schemes/procs/scale/seed/finite) belong in config")
		}
		c := *s.Config
		if c.App == "" {
			return s, fmt.Errorf("run job: config.app is required")
		}
		if c.Scheme == "" {
			c.Scheme = string(prefetchsim.Baseline)
		}
		if c.Degree == 0 {
			c.Degree = 1
		}
		if c.Processors == 0 {
			c.Processors = 16
		}
		if c.Scale == 0 {
			c.Scale = 1
		}
		s.Config = &c
	case kindFig6:
		if s.Config != nil || s.Spans {
			return s, fmt.Errorf("figure6 job: config/spans are run-job fields")
		}
		if len(s.Apps) == 0 {
			s.Apps = prefetchsim.Apps()
		}
		if len(s.Schemes) == 0 {
			for _, sc := range prefetchsim.Schemes() {
				s.Schemes = append(s.Schemes, string(sc))
			}
		}
		if s.Procs == 0 {
			s.Procs = 16
		}
		if s.Scale == 0 {
			s.Scale = 1
		}
	default:
		return s, fmt.Errorf("unknown job kind %q", s.Kind)
	}
	return s, nil
}

// digest is the normalized spec's content address — the result-cache
// key. Run jobs lead with the manifest's config+seed digest (the same
// address obs manifests record), suffixed with the payload options;
// sweeps hash the whole normalized spec.
func (s jobSpec) digest() string {
	if s.Kind == kindRun {
		d := "run-" + s.Config.Digest()
		if s.Metrics {
			d += "-m"
		}
		if s.Spans {
			d += "-s"
		}
		return d
	}
	buf, err := json.Marshal(s)
	if err != nil {
		panic("prefetchd: marshal jobSpec: " + err.Error())
	}
	sum := sha256.Sum256(buf)
	return "fig6-" + hex.EncodeToString(sum[:])
}

// totalSims is the job's progress denominator (sweep baselines are
// cached per app, so they are not counted as separate progress units).
func (s jobSpec) totalSims() int {
	if s.Kind == kindRun {
		return 1
	}
	return len(s.Apps) * len(s.Schemes)
}

// jobSpans is one job's lifecycle span record: the wall-clock stamp of
// every state the job passed through, mirroring the simulator's
// per-hop transaction spans (issue/req/home/...) at the service layer.
// Zero stamps mean the job never reached that state (a cache hit is
// born terminal and never queues; a job cancelled in the queue never
// runs). WaitUS and RunUS carry the exact microsecond values the
// server observed into the runner latency histograms, so per-class
// sums over job spans reconcile with those histograms by construction.
type jobSpans struct {
	// SubmitUnixNS is when the server accepted the spec.
	SubmitUnixNS int64 `json:"submit_unix_ns"`
	// QueuedUnixNS is when the job entered the admission queue.
	QueuedUnixNS int64 `json:"queued_unix_ns,omitempty"`
	// AdmittedUnixNS is when the job won an execution slot.
	AdmittedUnixNS int64 `json:"admitted_unix_ns,omitempty"`
	// RunningUnixNS is when computation (or coalescing) began.
	RunningUnixNS int64 `json:"running_unix_ns,omitempty"`
	// StreamingUnixNS is when the first payload line landed.
	StreamingUnixNS int64 `json:"streaming_unix_ns,omitempty"`
	// DoneUnixNS is when the job settled to a terminal state.
	DoneUnixNS int64 `json:"done_unix_ns,omitempty"`
	// WaitUS is the queued→admitted latency in microseconds — the
	// value observed into the runner wait histogram (0 for jobs that
	// never queued).
	WaitUS int64 `json:"wait_us"`
	// RunUS is the admitted→settled latency in microseconds — the
	// value observed into the runner run histogram.
	RunUS int64 `json:"run_us"`
}

// jobRecord is the JSON view of a job's state.
type jobRecord struct {
	ID            string   `json:"id"`
	Kind          string   `json:"kind"`
	Digest        string   `json:"digest"`
	Status        string   `json:"status"`
	Cache         string   `json:"cache,omitempty"` // hit, miss, coalesced
	Done          int      `json:"done"`
	Total         int      `json:"total"`
	Rows          int      `json:"rows"`
	Error         string   `json:"error,omitempty"`
	CreatedUnixNS int64    `json:"created_unix_ns"`
	WallNS        int64    `json:"wall_ns,omitempty"`
	Spans         jobSpans `json:"spans"`
}

func terminal(status string) bool {
	return status == statusDone || status == statusFailed || status == statusCancelled
}

// The NDJSON line shapes. Row, metrics, spans and result lines are the
// cached payload — everything in them is deterministic for a given
// spec, which is what makes a cache hit byte-identical to the first
// run. Job and done lines frame the stream per request and carry the
// per-request facts (id, cache disposition, wall time).
type jobLine struct {
	Type string `json:"type"` // "job"
	jobRecord
}

type rowLine struct {
	Type  string `json:"type"` // "row"
	I     int    `json:"i"`
	Total int    `json:"total"`
	Text  string `json:"text"`
}

type metricsLine struct {
	Type   string           `json:"type"` // "metrics"
	Totals map[string]int64 `json:"totals"`
}

type spansLine struct {
	Type    string                   `json:"type"` // "spans"
	Summary *prefetchsim.SpanSummary `json:"summary"`
}

type resultLine struct {
	Type         string `json:"type"` // "result"
	Kind         string `json:"kind"`
	Rows         int    `json:"rows"`
	RowsDigest   string `json:"rows_digest"`
	StatsDigest  string `json:"stats_digest,omitempty"`  // run jobs
	ConfigDigest string `json:"config_digest,omitempty"` // run jobs
	VirtualTime  int64  `json:"virtual_time,omitempty"`  // run jobs
}

type doneLine struct {
	Type   string `json:"type"` // "done"
	Status string `json:"status"`
	Cache  string `json:"cache,omitempty"`
	Rows   int    `json:"rows"`
	WallNS int64  `json:"wall_ns"`
	Error  string `json:"error,omitempty"`
}

// mustJSON marshals one NDJSON line (no trailing newline). The line
// structs contain nothing unmarshalable.
func mustJSON(v any) []byte {
	buf, err := json.Marshal(v)
	if err != nil {
		panic("prefetchd: marshal line: " + err.Error())
	}
	return buf
}

// joinLines renders payload lines as the cached byte blob; splitLines
// inverts it. The blob is newline-terminated NDJSON, so the cached
// bytes are exactly what streams to the client.
func joinLines(lines [][]byte) []byte {
	var buf bytes.Buffer
	for _, l := range lines {
		buf.Write(l)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

func splitLines(data []byte) [][]byte {
	var lines [][]byte
	for _, l := range bytes.Split(data, []byte{'\n'}) {
		if len(l) > 0 {
			lines = append(lines, l)
		}
	}
	return lines
}

// job is one submitted job's live state. The mutex guards everything
// below it; notify is closed and replaced on every observable change,
// which is what lets any number of stream/SSE watchers follow along
// without the job ever blocking on a slow client.
type job struct {
	id      string
	spec    jobSpec
	digest  string
	created time.Time
	cancel  func() // nil for jobs born terminal (cache hits)

	// onState, when set (before the job is shared), observes every
	// status transition as (old, new); the server mirrors it into its
	// jobs-by-state gauges. Called under j.mu: it must only touch
	// atomics.
	onState func(old, new string)

	mu     sync.Mutex
	notify chan struct{}
	status string
	cache  string
	spans  jobSpans
	lines  [][]byte // payload lines emitted so far
	done   int
	total  int
	wallNS int64
	errMsg string
}

func newJob(id string, spec jobSpec, digest string) *job {
	j := &job{
		id: id, spec: spec, digest: digest, created: time.Now(),
		notify: make(chan struct{}), status: statusQueued,
		total: spec.totalSims(),
	}
	j.spans.SubmitUnixNS = j.created.UnixNano()
	return j
}

// setStatusLocked transitions the job's state, notifying the state
// observer. Callers hold j.mu.
func (j *job) setStatusLocked(st string) {
	if st == j.status {
		return
	}
	if j.onState != nil {
		j.onState(j.status, st)
	}
	j.status = st
}

// signalLocked wakes every watcher. Callers hold j.mu.
func (j *job) signalLocked() {
	close(j.notify)
	j.notify = make(chan struct{})
}

func (j *job) setCache(c string) {
	j.mu.Lock()
	j.cache = c
	j.signalLocked()
	j.mu.Unlock()
}

// enqueued stamps the job's entry into the admission queue.
func (j *job) enqueued() {
	j.mu.Lock()
	j.spans.QueuedUnixNS = time.Now().UnixNano()
	j.signalLocked()
	j.mu.Unlock()
}

// admitted stamps the job winning an execution slot, carrying the
// microsecond wait the server observed into the runner wait histogram.
func (j *job) admitted(waitUS int64) {
	j.mu.Lock()
	j.spans.AdmittedUnixNS = time.Now().UnixNano()
	j.spans.WaitUS = waitUS
	j.signalLocked()
	j.mu.Unlock()
}

func (j *job) start() {
	j.mu.Lock()
	j.setStatusLocked(statusRunning)
	j.spans.RunningUnixNS = time.Now().UnixNano()
	j.signalLocked()
	j.mu.Unlock()
}

func (j *job) setProgress(done, total int) {
	j.mu.Lock()
	j.done, j.total = done, total
	j.signalLocked()
	j.mu.Unlock()
}

func (j *job) appendPayload(lines ...[]byte) {
	if len(lines) == 0 {
		return
	}
	j.mu.Lock()
	if j.spans.StreamingUnixNS == 0 {
		j.spans.StreamingUnixNS = time.Now().UnixNano()
	}
	j.lines = append(j.lines, lines...)
	j.signalLocked()
	j.mu.Unlock()
}

// finish settles the job to a terminal state. runUS is the
// admitted→settled microsecond value the server observed into the
// runner run histogram (0 for jobs that were never admitted).
func (j *job) finish(status string, wall time.Duration, err error, runUS int64) {
	j.mu.Lock()
	j.setStatusLocked(status)
	j.spans.DoneUnixNS = time.Now().UnixNano()
	j.spans.RunUS = runUS
	j.wallNS = wall.Nanoseconds()
	if err != nil {
		j.errMsg = err.Error()
	}
	if status == statusDone {
		j.done = j.total
	}
	j.signalLocked()
	j.mu.Unlock()
}

// completeCached makes the job terminal with the cached payload: born
// done, served from the store, wall = the time the cache read took.
// Its span never queues or runs — submit, streaming and done are the
// only stamps.
func (j *job) completeCached(payload []byte, wall time.Duration) {
	j.mu.Lock()
	j.cache = "hit"
	j.setStatusLocked(statusDone)
	j.lines = splitLines(payload)
	now := time.Now().UnixNano()
	j.spans.StreamingUnixNS = now
	j.spans.DoneUnixNS = now
	j.done = j.total
	j.wallNS = wall.Nanoseconds()
	j.signalLocked()
	j.mu.Unlock()
}

func (j *job) recordLocked() jobRecord {
	return jobRecord{
		ID: j.id, Kind: j.spec.Kind, Digest: j.digest, Status: j.status,
		Cache: j.cache, Done: j.done, Total: j.total, Rows: len(j.lines),
		Error: j.errMsg, CreatedUnixNS: j.created.UnixNano(), WallNS: j.wallNS,
		Spans: j.spans,
	}
}

func (j *job) record() jobRecord {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.recordLocked()
}

// next blocks until the watcher at offset seen has something new:
// payload lines past seen, or the job reaching a terminal state. ok is
// false when done ended first. When finished is true the returned
// lines complete the payload.
func (j *job) next(done <-chan struct{}, seen int) (lines [][]byte, rec jobRecord, finished, ok bool) {
	for {
		j.mu.Lock()
		if len(j.lines) > seen {
			out := make([][]byte, len(j.lines)-seen)
			copy(out, j.lines[seen:])
			rec = j.recordLocked()
			fin := terminal(j.status)
			j.mu.Unlock()
			return out, rec, fin, true
		}
		if terminal(j.status) {
			rec = j.recordLocked()
			j.mu.Unlock()
			return nil, rec, true, true
		}
		ch := j.notify
		j.mu.Unlock()
		select {
		case <-ch:
		case <-done:
			return nil, jobRecord{}, false, false
		}
	}
}
