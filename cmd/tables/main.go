// Command tables regenerates the paper's Tables 2, 3 and 4: the
// application characteristics that predict the relative performance of
// stride and sequential prefetching.
//
// Usage:
//
//	tables -table 2            # infinite SLC characteristics
//	tables -table 3            # finite 16 KB SLC characteristics
//	tables -table 4            # larger-data-set trends
//	tables -table 2 -j 4       # fan the per-app runs across 4 workers
//	tables -table 3 -manifest t3.json -metrics
//
// The applications' runs fan out across -j worker goroutines (default:
// all cores); the rows are identical to a serial run regardless of -j.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"prefetchsim"
	"prefetchsim/internal/webstatus"
)

func main() {
	table := flag.Int("table", 2, "table to regenerate: 2, 3 or 4")
	procs := flag.Int("procs", 16, "processor count")
	scale := flag.Int("scale", 1, "data-set scale")
	seed := flag.Uint64("seed", 0, "workload seed")
	workers := flag.Int("j", 0, "simulations to run concurrently (0 = all cores, 1 = serial)")
	manifest := flag.String("manifest", "", "write the table's provenance manifest (JSON) to this file")
	metrics := flag.Bool("metrics", false, "print table-wide metric totals")
	httpAddr := flag.String("http", "", "serve a live JSON status endpoint on this address while the runs execute")
	flag.Parse()

	opt := prefetchsim.ExpOptions{Procs: *procs, Scale: *scale, Seed: *seed, Workers: *workers}
	if args := flag.Args(); len(args) > 0 {
		opt.Apps = args
	}
	var rec *prefetchsim.ManifestRecorder
	if *manifest != "" || *metrics || *httpAddr != "" {
		rec = &prefetchsim.ManifestRecorder{}
		opt.Record = rec
	}
	if *httpAddr != "" {
		var prog webstatus.Progress
		opt.Progress = prog.Set
		srv, err := webstatus.Serve(*httpAddr, func() webstatus.Status {
			done, total, _ := prog.Snapshot()
			runs, totals := rec.Status()
			return webstatus.Status{
				Tool: "tables", Done: done, Total: total,
				Rows: done, Runs: runs, Metrics: totals,
			}
		})
		exitOn(err)
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "tables: status endpoint on http://%s/status\n", srv.Addr())
	}
	start := time.Now()
	var rendered []string

	switch *table {
	case 2:
		fmt.Println("Table 2: application characteristics, infinite second-level cache")
		rows, err := prefetchsim.Table2(opt)
		exitOn(err)
		rendered = emit(rows)
	case 3:
		fmt.Printf("Table 3: application characteristics, finite %d-byte direct-mapped SLC\n",
			prefetchsim.FiniteSLCBytes)
		rows, err := prefetchsim.Table3(opt)
		exitOn(err)
		rendered = emit(rows)
	case 4:
		fmt.Println("Table 4: characteristics trend with larger data sets, infinite SLC")
		rows, err := prefetchsim.Table4(opt)
		exitOn(err)
		rendered = emit(rows)
	default:
		fmt.Fprintln(os.Stderr, "tables: -table must be 2, 3 or 4")
		os.Exit(2)
	}

	if *metrics {
		printTotals(rec.Totals())
	}
	if *manifest != "" {
		sm := rec.Sweep("tables", os.Args[1:], rendered, time.Since(start))
		exitOn(sm.WriteFile(*manifest))
		fmt.Printf("manifest: %s (%d runs, rows digest %s)\n", *manifest, len(sm.Runs), sm.RowsDigest)
	}
}

// emit prints each row indented and returns the rendered lines for the
// manifest's row digest.
func emit[R fmt.Stringer](rows []R) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.String()
		fmt.Println(" ", r)
	}
	return out
}

// printTotals renders table-wide metric totals, name-sorted.
func printTotals(totals map[string]int64) {
	names := make([]string, 0, len(totals))
	for n := range totals {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Println("metric totals:")
	for _, n := range names {
		fmt.Printf("  %-28s %d\n", n, totals[n])
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "tables:", err)
		os.Exit(1)
	}
}
