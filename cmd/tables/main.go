// Command tables regenerates the paper's Tables 2, 3 and 4: the
// application characteristics that predict the relative performance of
// stride and sequential prefetching.
//
// Usage:
//
//	tables -table 2            # infinite SLC characteristics
//	tables -table 3            # finite 16 KB SLC characteristics
//	tables -table 4            # larger-data-set trends
//	tables -table 2 -j 4       # fan the per-app runs across 4 workers
//
// The applications' runs fan out across -j worker goroutines (default:
// all cores); the rows are identical to a serial run regardless of -j.
package main

import (
	"flag"
	"fmt"
	"os"

	"prefetchsim"
)

func main() {
	table := flag.Int("table", 2, "table to regenerate: 2, 3 or 4")
	procs := flag.Int("procs", 16, "processor count")
	scale := flag.Int("scale", 1, "data-set scale")
	seed := flag.Uint64("seed", 0, "workload seed")
	workers := flag.Int("j", 0, "simulations to run concurrently (0 = all cores, 1 = serial)")
	flag.Parse()

	opt := prefetchsim.ExpOptions{Procs: *procs, Scale: *scale, Seed: *seed, Workers: *workers}
	if args := flag.Args(); len(args) > 0 {
		opt.Apps = args
	}

	switch *table {
	case 2:
		fmt.Println("Table 2: application characteristics, infinite second-level cache")
		rows, err := prefetchsim.Table2(opt)
		exitOn(err)
		for _, r := range rows {
			fmt.Println(" ", r)
		}
	case 3:
		fmt.Printf("Table 3: application characteristics, finite %d-byte direct-mapped SLC\n",
			prefetchsim.FiniteSLCBytes)
		rows, err := prefetchsim.Table3(opt)
		exitOn(err)
		for _, r := range rows {
			fmt.Println(" ", r)
		}
	case 4:
		fmt.Println("Table 4: characteristics trend with larger data sets, infinite SLC")
		rows, err := prefetchsim.Table4(opt)
		exitOn(err)
		for _, r := range rows {
			fmt.Println(" ", r)
		}
	default:
		fmt.Fprintln(os.Stderr, "tables: -table must be 2, 3 or 4")
		os.Exit(2)
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "tables:", err)
		os.Exit(1)
	}
}
