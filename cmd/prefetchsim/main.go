// Command prefetchsim runs one simulation of the paper's machine and
// prints its statistics.
//
// Usage:
//
//	prefetchsim -app lu -scheme Seq -degree 1
//	prefetchsim -app ocean -scheme I-det -slc 16384 -chars
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"prefetchsim"
	"prefetchsim/internal/prof"
)

func main() {
	app := flag.String("app", "lu", "application: "+strings.Join(prefetchsim.Apps(), ", "))
	scheme := flag.String("scheme", "baseline", "prefetching scheme: baseline, I-det, D-det, Seq, Adaptive")
	degree := flag.Int("degree", 1, "degree of prefetching d")
	procs := flag.Int("procs", 16, "processor count")
	slc := flag.Int("slc", 0, "SLC size in bytes (0 = infinite)")
	scale := flag.Int("scale", 1, "data-set scale (1 = paper inputs)")
	seed := flag.Uint64("seed", 0, "workload seed")
	chars := flag.Bool("chars", false, "print the Table 2/3 stride-sequence analysis of processor 0")
	record := flag.String("record", "", "record the application's reference trace to this file and exit")
	replay := flag.String("replay", "", "simulate a trace file recorded with -record instead of -app")
	pf := prof.Register()
	flag.Parse()

	exitOn(pf.Start())
	defer func() { exitOn(pf.Stop()) }()

	if *record != "" {
		prog, err := prefetchsim.BuildApp(*app, prefetchsim.Params{
			Procs: *procs, Scale: *scale, Seed: *seed,
		})
		exitOn(err)
		f, err := os.Create(*record)
		exitOn(err)
		exitOn(prefetchsim.WriteProgram(f, prog))
		exitOn(f.Close())
		fmt.Printf("recorded %s (%d processors) to %s\n", *app, *procs, *record)
		return
	}

	var program *prefetchsim.Program
	if *replay != "" {
		f, err := os.Open(*replay)
		exitOn(err)
		program, err = prefetchsim.ReadProgram(f)
		exitOn(err)
		exitOn(f.Close())
	}

	res, err := prefetchsim.Run(prefetchsim.Config{
		App:                    *app,
		Program:                program,
		Scheme:                 prefetchsim.Scheme(*scheme),
		Degree:                 *degree,
		Processors:             *procs,
		SLCBytes:               *slc,
		Scale:                  *scale,
		Seed:                   *seed,
		CollectCharacteristics: *chars,
	})
	exitOn(err)
	fmt.Printf("%s / %s (d=%d, %d processors", res.App, res.Scheme, *degree, *procs)
	if *slc == 0 {
		fmt.Printf(", infinite SLC)\n")
	} else {
		fmt.Printf(", %d-byte SLC)\n", *slc)
	}
	fmt.Print(res.Stats)
	if res.Chars != nil {
		fmt.Println("processor-0 characteristics:", res.Chars)
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "prefetchsim:", err)
		os.Exit(1)
	}
}
