// Command prefetchsim runs one simulation of the paper's machine and
// prints its statistics.
//
// Usage:
//
//	prefetchsim -app lu -scheme Seq -degree 1
//	prefetchsim -app ocean -scheme I-det -slc 16384 -chars
//	prefetchsim -app lu -scheme Seq -manifest run.json -metrics
//	prefetchsim -app mp3d -trace events.jsonl -trace-sample 16
//	prefetchsim -app ocean -scheme Seq -spans spans.jsonl -timeline tl.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"prefetchsim"
	"prefetchsim/internal/prof"
)

func main() {
	app := flag.String("app", "lu", "application: "+strings.Join(prefetchsim.Apps(), ", ")+
		" (extras: "+strings.Join(prefetchsim.ExtraApps(), ", ")+")")
	scheme := flag.String("scheme", "baseline",
		"prefetching scheme: baseline, I-det, D-det, Seq, Adaptive, Markov, Perceptron, BestOffset")
	degree := flag.Int("degree", 1, "degree of prefetching d")
	procs := flag.Int("procs", 16, "processor count")
	slc := flag.Int("slc", 0, "SLC size in bytes (0 = infinite)")
	scale := flag.Int("scale", 1, "data-set scale (1 = paper inputs)")
	seed := flag.Uint64("seed", 0, "workload seed")
	chars := flag.Bool("chars", false, "print the Table 2/3 stride-sequence analysis of processor 0")
	record := flag.String("record", "", "record the application's reference trace to this file and exit")
	replay := flag.String("replay", "", "simulate a trace file recorded with -record instead of -app")
	manifest := flag.String("manifest", "", "write the run's provenance manifest (JSON) to this file")
	trace := flag.String("trace", "", "write a JSONL event trace (misses, prefetches, invalidations, acks) to this file")
	traceSample := flag.Int("trace-sample", 1, "keep one in N traced events")
	spans := flag.String("spans", "", "write transaction/stall spans as JSONL to this file (analyze with traceview)")
	spanSample := flag.Int("span-sample", 1, "keep one in N raw spans (aggregates stay exact)")
	spanCap := flag.Int("span-cap", 0, "raw-span ring capacity (0 = default)")
	timeline := flag.String("timeline", "", "write the windowed time-series as JSONL to this file")
	timelineWindow := flag.Int64("timeline-window", 10000, "timeline window in pclocks")
	metrics := flag.Bool("metrics", false, "print the run's metric snapshot")
	pf := prof.Register()
	flag.Parse()

	exitOn(pf.Start())
	defer func() { exitOn(pf.Stop()) }()

	if *record != "" {
		prog, err := prefetchsim.BuildApp(*app, prefetchsim.Params{
			Procs: *procs, Scale: *scale, Seed: *seed,
		})
		exitOn(err)
		f, err := os.Create(*record)
		exitOn(err)
		exitOn(prefetchsim.WriteProgram(f, prog))
		exitOn(f.Close())
		fmt.Printf("recorded %s (%d processors) to %s\n", *app, *procs, *record)
		return
	}

	var program *prefetchsim.Program
	if *replay != "" {
		f, err := os.Open(*replay)
		exitOn(err)
		program, err = prefetchsim.ReadProgram(f)
		exitOn(err)
		exitOn(f.Close())
	}

	cfg := prefetchsim.Config{
		App:                    *app,
		Program:                program,
		Scheme:                 prefetchsim.Scheme(*scheme),
		Degree:                 *degree,
		Processors:             *procs,
		SLCBytes:               *slc,
		Scale:                  *scale,
		Seed:                   *seed,
		CollectCharacteristics: *chars,
		CollectMetrics:         *metrics || *manifest != "",
	}
	var traceFile *os.File
	if *trace != "" {
		f, err := os.Create(*trace)
		exitOn(err)
		traceFile = f
		cfg.Trace = &prefetchsim.TraceConfig{W: f, Sample: *traceSample}
	}
	var spanFile *os.File
	if *spans != "" {
		f, err := os.Create(*spans)
		exitOn(err)
		spanFile = f
		cfg.Spans = &prefetchsim.SpanConfig{W: f, Cap: *spanCap, Sample: *spanSample}
	}
	var timelineFile *os.File
	if *timeline != "" {
		f, err := os.Create(*timeline)
		exitOn(err)
		timelineFile = f
		cfg.Timeline = &prefetchsim.TimelineConfig{Window: *timelineWindow, W: f}
	}

	start := time.Now()
	res, err := prefetchsim.Run(cfg)
	exitOn(err)
	wall := time.Since(start)
	fmt.Printf("%s / %s (d=%d, %d processors", res.App, res.Scheme, *degree, *procs)
	if *slc == 0 {
		fmt.Printf(", infinite SLC)\n")
	} else {
		fmt.Printf(", %d-byte SLC)\n", *slc)
	}
	fmt.Print(res.Stats)
	if res.Chars != nil {
		fmt.Println("processor-0 characteristics:", res.Chars)
	}
	if *metrics {
		fmt.Println("metrics:")
		for _, s := range res.Metrics {
			fmt.Printf("  %-28s %d\n", s.Name, s.Value)
		}
	}
	if traceFile != nil {
		exitOn(traceFile.Close())
		if sum := res.TraceStats; sum != nil {
			fmt.Printf("trace: %d events seen, %d kept, %d dropped -> %s\n",
				sum.Seen, sum.Kept, sum.Dropped, *trace)
		}
	}
	if spanFile != nil {
		exitOn(spanFile.Close())
		if sum := res.SpanTrace; sum != nil {
			fmt.Printf("spans: %d seen, %d kept, %d dropped -> %s\n",
				sum.Seen, sum.Kept, sum.Dropped, *spans)
		}
		if st := res.Spans; st != nil {
			fmt.Println("span classes:")
			for c := prefetchsim.SpanClass(0); c < prefetchsim.NumSpanClasses; c++ {
				cs := st.Class(c)
				if cs.Count == 0 {
					continue
				}
				fmt.Printf("  %-16s count %8d  mean %8.1f  wait %12d\n",
					c, cs.Count, float64(cs.TotalPclocks)/float64(cs.Count), cs.WaitPclocks)
			}
			if st.IdleCount > 0 {
				fmt.Printf("  prefetch fill-to-use idle: %d consumed, mean %.1f pclocks\n",
					st.IdleCount, float64(st.IdlePclocks)/float64(st.IdleCount))
			}
		}
	}
	if timelineFile != nil {
		exitOn(timelineFile.Close())
		fmt.Printf("timeline: %d windows of %d pclocks -> %s\n",
			len(res.Timeline), *timelineWindow, *timeline)
	}
	if *manifest != "" {
		m := prefetchsim.NewManifest(cfg, res, wall)
		exitOn(m.WriteFile(*manifest))
		fmt.Printf("manifest: %s (stats digest %s)\n", *manifest, m.StatsDigest)
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "prefetchsim:", err)
		os.Exit(1)
	}
}
