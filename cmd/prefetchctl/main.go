// Command prefetchctl is the prefetchd client: submit jobs, follow
// their rows or progress, fetch results, cancel.
//
//	prefetchctl -addr 127.0.0.1:8080 submit -app matmul -scheme Seq -stream
//	prefetchctl submit -figure6 -apps lu,mp3d -schemes Seq -procs 4
//	prefetchctl watch j1
//	prefetchctl fetch j1
//	prefetchctl cancel j1
//	prefetchctl list
//	prefetchctl status
//
// submit builds the job spec from flags (or takes it verbatim via
// -spec / -f). With -stream the NDJSON stream goes to stdout and the
// exit status reflects the job's terminal state; without it the
// submission record prints and the job runs server-side.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "prefetchctl: "+format+"\n", args...)
	os.Exit(1)
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: prefetchctl [-addr host:port] <command> [flags]

commands:
  submit   submit a job (see prefetchctl submit -h)
  watch    follow a job's progress events      (watch <id>)
  fetch    stream a job's NDJSON result        (fetch <id>)
  cancel   cancel a job                        (cancel <id>)
  list     list jobs
  status   print the server status snapshot
`)
	os.Exit(2)
}

func main() {
	addr := flag.String("addr", envOr("PREFETCHD_ADDR", "127.0.0.1:8080"), "prefetchd address")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() == 0 {
		usage()
	}
	base := "http://" + *addr
	cmd, args := flag.Arg(0), flag.Args()[1:]
	switch cmd {
	case "submit":
		cmdSubmit(base, args)
	case "watch":
		cmdWatch(base, args)
	case "fetch":
		cmdFetch(base, args)
	case "cancel":
		cmdCancel(base, args)
	case "list":
		cmdGet(base + "/jobs")
	case "status":
		cmdGet(base + "/status")
	default:
		usage()
	}
}

func envOr(key, def string) string {
	if v := os.Getenv(key); v != "" {
		return v
	}
	return def
}

// spec mirrors prefetchd's jobSpec (the wire format).
type spec struct {
	Kind    string         `json:"kind,omitempty"`
	Config  map[string]any `json:"config,omitempty"`
	Spans   bool           `json:"spans,omitempty"`
	Apps    []string       `json:"apps,omitempty"`
	Schemes []string       `json:"schemes,omitempty"`
	Procs   int            `json:"procs,omitempty"`
	Scale   int            `json:"scale,omitempty"`
	Seed    uint64         `json:"seed,omitempty"`
	Finite  bool           `json:"finite,omitempty"`
	Metrics bool           `json:"metrics,omitempty"`
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func cmdSubmit(base string, args []string) {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	var (
		specJSON = fs.String("spec", "", "job spec JSON (verbatim; overrides the other flags)")
		specFile = fs.String("f", "", "read the job spec JSON from a file (- = stdin)")
		stream   = fs.Bool("stream", false, "stream the job's NDJSON to stdout")

		figure6 = fs.Bool("figure6", false, "submit a Figure-6 sweep instead of a single run")
		apps    = fs.String("apps", "", "sweep: comma-separated applications (default: all)")
		schemes = fs.String("schemes", "", "sweep: comma-separated schemes (default: I-det,D-det,Seq)")
		finite  = fs.Bool("finite", false, "sweep: finite §5.3 SLC")

		app    = fs.String("app", "", "run: application")
		scheme = fs.String("scheme", "", "run: prefetch scheme (default baseline)")
		degree = fs.Int("degree", 0, "run: prefetch degree")
		slc    = fs.Int("slc", 0, "run: SLC bytes (0 = infinite)")
		ways   = fs.Int("ways", 0, "run: SLC associativity")
		sc     = fs.Bool("sc", false, "run: sequential consistency")
		bw     = fs.Int("bw", 0, "run: bandwidth division factor")
		spans  = fs.Bool("spans", false, "run: include the span summary")

		procs   = fs.Int("procs", 0, "processors (default 16)")
		scale   = fs.Int("scale", 0, "data-set scale (default 1)")
		seed    = fs.Uint64("seed", 0, "workload seed")
		metrics = fs.Bool("metrics", false, "include metric totals")
	)
	fs.Parse(args)

	var body []byte
	switch {
	case *specJSON != "":
		body = []byte(*specJSON)
	case *specFile != "":
		var err error
		if *specFile == "-" {
			body, err = io.ReadAll(os.Stdin)
		} else {
			body, err = os.ReadFile(*specFile)
		}
		if err != nil {
			fatalf("read spec: %v", err)
		}
	case *figure6:
		body = mustMarshal(spec{
			Kind: "figure6", Apps: splitList(*apps), Schemes: splitList(*schemes),
			Procs: *procs, Scale: *scale, Seed: *seed, Finite: *finite, Metrics: *metrics,
		})
	case *app != "":
		cfg := map[string]any{"app": *app}
		set := func(k string, v any, zero bool) {
			if !zero {
				cfg[k] = v
			}
		}
		set("scheme", *scheme, *scheme == "")
		set("degree", *degree, *degree == 0)
		set("processors", *procs, *procs == 0)
		set("slc_bytes", *slc, *slc == 0)
		set("slc_ways", *ways, *ways == 0)
		set("scale", *scale, *scale == 0)
		set("seed", *seed, *seed == 0)
		set("sequential_consistency", *sc, !*sc)
		set("bandwidth_factor", *bw, *bw == 0)
		body = mustMarshal(spec{Kind: "run", Config: cfg, Spans: *spans, Metrics: *metrics})
	default:
		fatalf("submit: need -app, -figure6, -spec or -f (see submit -h)")
	}

	url := base + "/jobs"
	if *stream {
		url += "?stream=1"
	}
	resp, err := http.Post(url, "application/json", strings.NewReader(string(body)))
	if err != nil {
		fatalf("submit: %v", err)
	}
	defer resp.Body.Close()
	if *stream {
		copyStream(resp)
		return
	}
	copyBody(resp)
}

// copyStream relays an NDJSON stream to stdout and exits non-zero
// unless the done trailer reports a successful job.
func copyStream(resp *http.Response) {
	if resp.StatusCode != http.StatusOK {
		io.Copy(os.Stderr, resp.Body)
		fatalf("server returned %s", resp.Status)
	}
	status := ""
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(nil, 1<<20)
	out := bufio.NewWriter(os.Stdout)
	for sc.Scan() {
		out.Write(sc.Bytes())
		out.WriteByte('\n')
		var probe struct {
			Type   string `json:"type"`
			Status string `json:"status"`
		}
		if json.Unmarshal(sc.Bytes(), &probe) == nil && probe.Type == "done" {
			status = probe.Status
		}
	}
	out.Flush()
	if err := sc.Err(); err != nil {
		fatalf("stream: %v", err)
	}
	if status != "done" {
		fatalf("job ended %q", status)
	}
}

// copyBody relays a JSON response to stdout, failing on error codes.
func copyBody(resp *http.Response) {
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		fatalf("read response: %v", err)
	}
	if resp.StatusCode >= 400 {
		os.Stderr.Write(body)
		fatalf("server returned %s", resp.Status)
	}
	os.Stdout.Write(body)
}

func cmdWatch(base string, args []string) {
	if len(args) != 1 {
		fatalf("usage: watch <id>")
	}
	resp, err := http.Get(base + "/jobs/" + args[0] + "/events")
	if err != nil {
		fatalf("watch: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(os.Stderr, resp.Body)
		fatalf("server returned %s", resp.Status)
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if data, ok := strings.CutPrefix(sc.Text(), "data: "); ok {
			fmt.Println(data)
		}
	}
	if err := sc.Err(); err != nil {
		fatalf("watch: %v", err)
	}
}

func cmdFetch(base string, args []string) {
	if len(args) != 1 {
		fatalf("usage: fetch <id>")
	}
	resp, err := http.Get(base + "/jobs/" + args[0] + "/stream")
	if err != nil {
		fatalf("fetch: %v", err)
	}
	defer resp.Body.Close()
	copyStream(resp)
}

func cmdCancel(base string, args []string) {
	if len(args) != 1 {
		fatalf("usage: cancel <id>")
	}
	req, err := http.NewRequest(http.MethodDelete, base+"/jobs/"+args[0], nil)
	if err != nil {
		fatalf("cancel: %v", err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		fatalf("cancel: %v", err)
	}
	defer resp.Body.Close()
	copyBody(resp)
}

func cmdGet(url string) {
	resp, err := http.Get(url)
	if err != nil {
		fatalf("get %s: %v", url, err)
	}
	defer resp.Body.Close()
	copyBody(resp)
}

func mustMarshal(v any) []byte {
	buf, err := json.Marshal(v)
	if err != nil {
		fatalf("marshal spec: %v", err)
	}
	return buf
}
