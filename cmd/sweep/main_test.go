package main

import (
	"bytes"
	"encoding/csv"
	"strconv"
	"strings"
	"testing"

	"prefetchsim"
)

func testSpec() spec {
	return spec{
		apps:    []string{"matmul"},
		schemes: []string{"baseline", "Seq"},
		degrees: []int{1, 2},
		slcs:    []int{0, 16384},
		ways:    1, procs: 4, scale: 1, bw: 1,
		workers: 4,
	}
}

// TestSweepCSVRoundTrip emits a small factorial sweep and parses it
// back: the header must match, every row must have exactly one field
// per header column, and every numeric column must parse.
func TestSweepCSVRoundTrip(t *testing.T) {
	var out, errs bytes.Buffer
	rec := &prefetchsim.ManifestRecorder{}
	rows, failed, rendered, err := sweep(testSpec(), &out, &errs, rec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if failed != 0 {
		t.Fatalf("%d configurations failed: %s", failed, errs.String())
	}
	// baseline collapses the degree axis to 1: per SLC size the rows are
	// baseline + Seq-d1 + Seq-d2.
	wantRows := 2 * 3
	if rows != wantRows {
		t.Fatalf("sweep reported %d rows, want %d", rows, wantRows)
	}
	if len(rendered) != wantRows {
		t.Fatalf("rendered %d rows for the manifest, want %d", len(rendered), wantRows)
	}
	if rec.Len() != wantRows {
		t.Fatalf("recorded %d run manifests, want %d", rec.Len(), wantRows)
	}

	records, err := csv.NewReader(bytes.NewReader(out.Bytes())).ReadAll()
	if err != nil {
		t.Fatalf("emitted CSV does not parse: %v", err)
	}
	if len(records) != wantRows+1 {
		t.Fatalf("CSV has %d records, want %d (header + %d rows)", len(records), wantRows+1, wantRows)
	}
	if got := strings.Join(records[0], ","); got != strings.Join(header, ",") {
		t.Fatalf("header = %q, want %q", got, strings.Join(header, ","))
	}
	for r, rec := range records[1:] {
		if len(rec) != len(header) {
			t.Fatalf("row %d has %d columns, want %d", r, len(rec), len(header))
		}
		for c, field := range rec {
			// The first two columns (app, scheme) are strings; every
			// other column must be numeric.
			if c < 2 {
				if field == "" {
					t.Errorf("row %d: empty %s", r, header[c])
				}
				continue
			}
			if _, err := strconv.ParseFloat(field, 64); err != nil {
				t.Errorf("row %d column %s = %q is not numeric: %v", r, header[c], field, err)
			}
		}
	}
}

// TestSweepBadAppCompletesRest: an unknown application fails its own
// rows but the sweep still emits every other row.
func TestSweepBadAppCompletesRest(t *testing.T) {
	s := testSpec()
	s.apps = []string{"nosuchapp", "matmul"}
	s.degrees = []int{1}
	s.slcs = []int{0}
	var out, errs bytes.Buffer
	rows, failed, _, err := sweep(s, &out, &errs, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if failed != 2 { // baseline + Seq for the unknown app
		t.Fatalf("failed = %d, want 2; stderr: %s", failed, errs.String())
	}
	if rows != 2 { // baseline + Seq for matmul
		t.Fatalf("rows = %d, want 2", rows)
	}
	if !strings.Contains(errs.String(), "nosuchapp") {
		t.Fatalf("stderr does not name the failing app: %q", errs.String())
	}
	// The app column carries the program's self-reported name
	// ("Matmul-LxMxN"), as in the serial sweep.
	if !strings.Contains(out.String(), "Matmul") {
		t.Fatal("surviving rows missing from CSV output")
	}
}

// TestSweepDeterministicAcrossWorkers: the emitted CSV is byte-identical
// whether the sweep runs serially or in parallel.
func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: equivalence covered by the root-package smoke test")
	}
	s := testSpec()
	var serial, parallel bytes.Buffer
	s.workers = 1
	if _, _, _, err := sweep(s, &serial, &bytes.Buffer{}, nil, nil); err != nil {
		t.Fatal(err)
	}
	s.workers = 8
	if _, _, _, err := sweep(s, &parallel, &bytes.Buffer{}, nil, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial.Bytes(), parallel.Bytes()) {
		t.Fatal("parallel sweep CSV differs from serial sweep CSV")
	}
}
