// Command sweep runs a factorial sweep over applications, schemes,
// degrees and cache sizes and emits one CSV row per simulation — the
// raw-data path for plotting or statistics outside this repository.
//
// Usage:
//
//	sweep -apps lu,water -schemes baseline,I-det,Seq -o results.csv
//	sweep -apps mp3d -schemes baseline,Seq -slc 0,16384 -degrees 1,2,4
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"prefetchsim"
)

var header = []string{
	"app", "scheme", "degree", "slc_bytes", "slc_ways", "procs", "scale", "bandwidth_factor",
	"exec_pclocks", "reads", "writes", "read_misses", "delayed_hits",
	"cold_misses", "coherence_misses", "replacement_misses",
	"read_stall", "write_stall", "sync_stall",
	"prefetches_issued", "prefetches_useful", "prefetch_efficiency",
	"net_messages", "net_flits", "net_flit_hops",
}

func main() {
	apps := flag.String("apps", strings.Join(prefetchsim.Apps(), ","), "comma-separated applications")
	schemes := flag.String("schemes", "baseline,I-det,D-det,Seq", "comma-separated schemes")
	degrees := flag.String("degrees", "1", "comma-separated prefetch degrees")
	slcs := flag.String("slc", "0", "comma-separated SLC sizes in bytes (0 = infinite)")
	ways := flag.Int("ways", 1, "SLC associativity for finite sizes")
	procs := flag.Int("procs", 16, "processor count")
	scale := flag.Int("scale", 1, "data-set scale")
	seed := flag.Uint64("seed", 0, "workload seed")
	bw := flag.Int("bandwidth", 1, "bandwidth divisor")
	out := flag.String("o", "", "output CSV file (default stdout)")
	flag.Parse()

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		exitOn(err)
		defer f.Close()
		w = f
	}
	cw := csv.NewWriter(w)
	exitOn(cw.Write(header))

	degreeList, err := ints(*degrees)
	exitOn(err)
	slcList, err := ints(*slcs)
	exitOn(err)

	rows := 0
	for _, app := range strings.Split(*apps, ",") {
		for _, slc := range slcList {
			for _, scheme := range strings.Split(*schemes, ",") {
				ds := degreeList
				if scheme == "baseline" {
					ds = []int{1} // degree is meaningless without prefetching
				}
				for _, d := range ds {
					res, err := prefetchsim.Run(prefetchsim.Config{
						App:        strings.TrimSpace(app),
						Scheme:     prefetchsim.Scheme(strings.TrimSpace(scheme)),
						Degree:     d,
						Processors: *procs, Scale: *scale, Seed: *seed,
						SLCBytes: slc, SLCWays: *ways, BandwidthFactor: *bw,
					})
					exitOn(err)
					exitOn(cw.Write(record(res, d, slc, *ways, *procs, *scale, *bw)))
					rows++
				}
			}
		}
	}
	cw.Flush()
	exitOn(cw.Error())
	if *out != "" {
		fmt.Printf("wrote %d rows to %s\n", rows, *out)
	}
}

func record(res *prefetchsim.Result, degree, slc, ways, procs, scale, bw int) []string {
	st := res.Stats
	var writes, delayed, cold, coh, repl, rstall, wstall, sstall, useful int64
	for i := range st.Nodes {
		n := &st.Nodes[i]
		writes += n.Writes
		delayed += n.DelayedHits
		cold += n.ColdMisses
		coh += n.CoherenceMisses
		repl += n.ReplacementMisses
		rstall += int64(n.ReadStall)
		wstall += int64(n.WriteStall)
		sstall += int64(n.SyncStall)
		useful += n.PrefetchesUseful
	}
	i := strconv.Itoa
	i64 := func(v int64) string { return strconv.FormatInt(v, 10) }
	return []string{
		res.App, string(res.Scheme), i(degree), i(slc), i(ways), i(procs), i(scale), i(bw),
		i64(int64(st.ExecTime)), i64(st.TotalReads()), i64(writes),
		i64(st.TotalReadMisses()), i64(delayed),
		i64(cold), i64(coh), i64(repl),
		i64(rstall), i64(wstall), i64(sstall),
		i64(st.TotalPrefetchesIssued()), i64(useful),
		strconv.FormatFloat(st.PrefetchEfficiency(), 'f', 4, 64),
		i64(st.NetMessages), i64(st.NetFlits), i64(st.NetFlitHops),
	}
}

func ints(csvList string) ([]int, error) {
	var outList []int
	for _, f := range strings.Split(csvList, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("sweep: bad integer list %q: %v", csvList, err)
		}
		outList = append(outList, v)
	}
	return outList, nil
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}
