// Command sweep runs a factorial sweep over applications, schemes,
// degrees and cache sizes and emits one CSV row per simulation — the
// raw-data path for plotting or statistics outside this repository.
// The simulations fan out across -j worker goroutines; the CSV rows
// stay in deterministic factorial order regardless of -j.
//
// Usage:
//
//	sweep -apps lu,water -schemes baseline,I-det,Seq -o results.csv
//	sweep -apps mp3d -schemes baseline,Seq -slc 0,16384 -degrees 1,2,4 -j 8
//	sweep -apps lu -schemes baseline,Seq -manifest sweep.json -metrics
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"prefetchsim"
	"prefetchsim/internal/prof"
	"prefetchsim/internal/webstatus"
)

var header = []string{
	"app", "scheme", "degree", "slc_bytes", "slc_ways", "procs", "scale", "bandwidth_factor",
	"exec_pclocks", "reads", "writes", "read_misses", "delayed_hits",
	"cold_misses", "coherence_misses", "replacement_misses",
	"read_stall", "write_stall", "sync_stall",
	"prefetches_issued", "prefetches_useful", "prefetch_efficiency",
	"net_messages", "net_flits", "net_flit_hops",
}

// spec is one sweep's full parameterization, decoded from the flags.
type spec struct {
	apps    []string
	schemes []string
	degrees []int
	slcs    []int
	ways    int
	procs   int
	scale   int
	seed    uint64
	bw      int
	workers int
}

// configs expands the factorial design into one Config per CSV row, in
// the deterministic order the rows are emitted.
func (s spec) configs() []prefetchsim.Config {
	var cfgs []prefetchsim.Config
	for _, app := range s.apps {
		for _, slc := range s.slcs {
			for _, scheme := range s.schemes {
				ds := s.degrees
				if scheme == "baseline" {
					ds = []int{1} // degree is meaningless without prefetching
				}
				for _, d := range ds {
					cfgs = append(cfgs, prefetchsim.Config{
						App:        app,
						Scheme:     prefetchsim.Scheme(scheme),
						Degree:     d,
						Processors: s.procs, Scale: s.scale, Seed: s.seed,
						SLCBytes: slc, SLCWays: s.ways, BandwidthFactor: s.bw,
					})
				}
			}
		}
	}
	return cfgs
}

// sweep runs the factorial design across spec.workers goroutines and
// writes the CSV to w. A failed configuration is reported on errw and
// skipped; the remaining rows are still written. It returns the number
// of data rows written, the number of failed configurations and the
// rendered rows (for the sweep manifest's digest). rec, when non-nil,
// receives one provenance manifest per simulation; progress, when
// non-nil, is called after each simulation with (done, total).
func sweep(s spec, w, errw io.Writer, rec *prefetchsim.ManifestRecorder, progress func(done, total int)) (rows, failed int, rendered []string, err error) {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return 0, 0, nil, err
	}
	cfgs := s.configs()
	var results []*prefetchsim.Result
	var errs []error
	if rec != nil {
		results, errs = prefetchsim.RunManyRecorded(cfgs, s.workers, rec, progress)
	} else {
		results, errs = prefetchsim.RunMany(cfgs, s.workers, progress)
	}
	for i, res := range results {
		if errs[i] != nil {
			failed++
			fmt.Fprintf(errw, "sweep: %s/%s: %v\n", cfgs[i].App, cfgs[i].Scheme, errs[i])
			continue
		}
		fields := record(res, cfgs[i])
		if err := cw.Write(fields); err != nil {
			return rows, failed, rendered, err
		}
		rendered = append(rendered, strings.Join(fields, ","))
		rows++
	}
	cw.Flush()
	return rows, failed, rendered, cw.Error()
}

func main() {
	apps := flag.String("apps", strings.Join(prefetchsim.Apps(), ","),
		"comma-separated applications (extras: "+strings.Join(prefetchsim.ExtraApps(), ",")+")")
	schemes := flag.String("schemes", "baseline,I-det,D-det,Seq",
		"comma-separated schemes (also: Adaptive, I-det-LA, D-det-LA, Hybrid, Markov, Perceptron, BestOffset)")
	degrees := flag.String("degrees", "1", "comma-separated prefetch degrees")
	slcs := flag.String("slc", "0", "comma-separated SLC sizes in bytes (0 = infinite)")
	ways := flag.Int("ways", 1, "SLC associativity for finite sizes")
	procs := flag.Int("procs", 16, "processor count")
	scale := flag.Int("scale", 1, "data-set scale")
	seed := flag.Uint64("seed", 0, "workload seed")
	bw := flag.Int("bandwidth", 1, "bandwidth divisor")
	workers := flag.Int("j", 0, "simulations to run concurrently (0 = all cores, 1 = serial)")
	out := flag.String("o", "", "output CSV file (default stdout)")
	manifest := flag.String("manifest", "", "write the sweep's provenance manifest (JSON) to this file")
	metrics := flag.Bool("metrics", false, "print sweep-wide metric totals on stderr")
	httpAddr := flag.String("http", "", "serve a live JSON status endpoint on this address (e.g. :8080) while the sweep runs")
	pf := prof.Register()
	flag.Parse()

	exitOn(pf.Start())

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		exitOn(err)
		defer f.Close()
		w = f
	}

	degreeList, err := ints(*degrees)
	exitOn(err)
	slcList, err := ints(*slcs)
	exitOn(err)

	s := spec{
		apps:    splitTrim(*apps),
		schemes: splitTrim(*schemes),
		degrees: degreeList,
		slcs:    slcList,
		ways:    *ways, procs: *procs, scale: *scale, seed: *seed, bw: *bw,
		workers: *workers,
	}
	var rec *prefetchsim.ManifestRecorder
	if *manifest != "" || *metrics || *httpAddr != "" {
		rec = &prefetchsim.ManifestRecorder{}
	}
	var progress func(done, total int)
	if *httpAddr != "" {
		var prog webstatus.Progress
		progress = prog.Set
		srv, err := webstatus.Serve(*httpAddr, func() webstatus.Status {
			done, total, _ := prog.Snapshot()
			runs, totals := rec.Status()
			return webstatus.Status{
				Tool: "sweep", Done: done, Total: total,
				Rows: done, Runs: runs, Metrics: totals,
			}
		})
		exitOn(err)
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "sweep: status endpoint on http://%s/status\n", srv.Addr())
	}
	start := time.Now()
	rows, failed, rendered, err := sweep(s, w, os.Stderr, rec, progress)
	exitOn(err)
	exitOn(pf.Stop())
	if *out != "" {
		fmt.Printf("wrote %d rows to %s\n", rows, *out)
	}
	if *metrics {
		printTotals(os.Stderr, rec.Totals())
	}
	if *manifest != "" {
		sm := rec.Sweep("sweep", os.Args[1:], rendered, time.Since(start))
		exitOn(sm.WriteFile(*manifest))
		fmt.Printf("manifest: %s (%d runs, rows digest %s)\n", *manifest, len(sm.Runs), sm.RowsDigest)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "sweep: %d of %d configurations failed\n", failed, rows+failed)
		os.Exit(1)
	}
}

// printTotals renders sweep-wide metric totals, name-sorted.
func printTotals(w io.Writer, totals map[string]int64) {
	names := make([]string, 0, len(totals))
	for n := range totals {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintln(w, "metric totals:")
	for _, n := range names {
		fmt.Fprintf(w, "  %-28s %d\n", n, totals[n])
	}
}

func record(res *prefetchsim.Result, cfg prefetchsim.Config) []string {
	st := res.Stats
	var writes, delayed, cold, coh, repl, rstall, wstall, sstall, useful int64
	for i := range st.Nodes {
		n := &st.Nodes[i]
		writes += n.Writes
		delayed += n.DelayedHits
		cold += n.ColdMisses
		coh += n.CoherenceMisses
		repl += n.ReplacementMisses
		rstall += int64(n.ReadStall)
		wstall += int64(n.WriteStall)
		sstall += int64(n.SyncStall)
		useful += n.PrefetchesUseful
	}
	i := strconv.Itoa
	i64 := func(v int64) string { return strconv.FormatInt(v, 10) }
	return []string{
		res.App, string(res.Scheme), i(cfg.Degree), i(cfg.SLCBytes), i(cfg.SLCWays),
		i(cfg.Processors), i(cfg.Scale), i(cfg.BandwidthFactor),
		i64(int64(st.ExecTime)), i64(st.TotalReads()), i64(writes),
		i64(st.TotalReadMisses()), i64(delayed),
		i64(cold), i64(coh), i64(repl),
		i64(rstall), i64(wstall), i64(sstall),
		i64(st.TotalPrefetchesIssued()), i64(useful),
		strconv.FormatFloat(st.PrefetchEfficiency(), 'f', 4, 64),
		i64(st.NetMessages), i64(st.NetFlits), i64(st.NetFlitHops),
	}
}

func splitTrim(csvList string) []string {
	var out []string
	for _, f := range strings.Split(csvList, ",") {
		out = append(out, strings.TrimSpace(f))
	}
	return out
}

func ints(csvList string) ([]int, error) {
	var outList []int
	for _, f := range strings.Split(csvList, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("sweep: bad integer list %q: %v", csvList, err)
		}
		outList = append(outList, v)
	}
	return outList, nil
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}
