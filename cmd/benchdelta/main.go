// Command benchdelta merges two scripts/bench.sh result files into one
// benchstat-style before/after record: for every benchmark present in
// both files it reports the before and after triples (ns/op, B/op,
// allocs/op) and the percentage deltas; benchmarks present in only one
// file are carried under "before_only"/"after_only". The merged object
// is what the repo's BENCH_<n>.json records store.
//
// Usage:
//
//	benchdelta before.json after.json            # merged JSON on stdout
//	benchdelta -o BENCH_3.json before.json after.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// metrics is one bench.sh row. Pointers distinguish "absent" from 0
// (bench.sh writes null when a benchmark reports no -benchmem columns).
type metrics struct {
	NsPerOp     *float64 `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op"`
	AllocsPerOp *float64 `json:"allocs_per_op"`
}

// delta is one merged row.
type delta struct {
	Before      metrics `json:"before"`
	After       metrics `json:"after"`
	NsDelta     *string `json:"ns_per_op_delta,omitempty"`
	BytesDelta  *string `json:"bytes_per_op_delta,omitempty"`
	AllocsDelta *string `json:"allocs_per_op_delta,omitempty"`
}

func pct(before, after *float64) *string {
	if before == nil || after == nil || *before == 0 {
		return nil
	}
	s := fmt.Sprintf("%+.1f%%", 100*(*after-*before)/(*before))
	return &s
}

func load(path string) (map[string]metrics, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m map[string]metrics
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

func main() {
	out := flag.String("o", "", "write merged JSON to this file instead of stdout")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdelta [-o merged.json] before.json after.json")
		os.Exit(2)
	}
	before, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdelta:", err)
		os.Exit(1)
	}
	after, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdelta:", err)
		os.Exit(1)
	}

	merged := struct {
		Benchmarks map[string]delta   `json:"benchmarks"`
		BeforeOnly map[string]metrics `json:"before_only,omitempty"`
		AfterOnly  map[string]metrics `json:"after_only,omitempty"`
	}{Benchmarks: map[string]delta{}}
	for name, b := range before {
		a, ok := after[name]
		if !ok {
			if merged.BeforeOnly == nil {
				merged.BeforeOnly = map[string]metrics{}
			}
			merged.BeforeOnly[name] = b
			continue
		}
		merged.Benchmarks[name] = delta{
			Before: b, After: a,
			NsDelta:     pct(b.NsPerOp, a.NsPerOp),
			BytesDelta:  pct(b.BytesPerOp, a.BytesPerOp),
			AllocsDelta: pct(b.AllocsPerOp, a.AllocsPerOp),
		}
	}
	for name, a := range after {
		if _, ok := before[name]; !ok {
			if merged.AfterOnly == nil {
				merged.AfterOnly = map[string]metrics{}
			}
			merged.AfterOnly[name] = a
		}
	}

	// MarshalIndent sorts map keys, so the record is stable across runs.
	buf, err := json.MarshalIndent(merged, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdelta:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchdelta:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d benchmarks compared", *out, len(merged.Benchmarks))
	if n := len(merged.BeforeOnly) + len(merged.AfterOnly); n > 0 {
		fmt.Printf(", %d unpaired", n)
	}
	fmt.Println(")")
}
