// Command benchdelta merges two scripts/bench.sh result files into one
// benchstat-style before/after record: for every benchmark present in
// both files it reports the before and after triples (ns/op, B/op,
// allocs/op) and the percentage deltas; benchmarks present in only one
// file are carried under "before_only"/"after_only". The merged object
// is what the repo's BENCH_<n>.json records store.
//
// With -gate it instead compares a fresh bench.sh run against a
// committed record and fails (exit 1) when any shared benchmark's
// ns/op regressed by more than the threshold — the CI regression
// check. The baseline may be a flat bench.sh file or a merged
// BENCH_<n>.json record (its "after" section is the baseline).
//
// Usage:
//
//	benchdelta before.json after.json            # merged JSON on stdout
//	benchdelta -o BENCH_3.json before.json after.json
//	benchdelta -gate 25 BENCH_3.json current.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

// metrics is one bench.sh row. Pointers distinguish "absent" from 0
// (bench.sh writes null when a benchmark reports no -benchmem columns).
type metrics struct {
	NsPerOp     *float64 `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op"`
	AllocsPerOp *float64 `json:"allocs_per_op"`
}

// delta is one merged row.
type delta struct {
	Before      metrics `json:"before"`
	After       metrics `json:"after"`
	NsDelta     *string `json:"ns_per_op_delta,omitempty"`
	BytesDelta  *string `json:"bytes_per_op_delta,omitempty"`
	AllocsDelta *string `json:"allocs_per_op_delta,omitempty"`
}

// merged is the full before/after record benchdelta emits and the
// repo's BENCH_<n>.json files store (alongside free-form fields such
// as "description", which load ignores).
type merged struct {
	Benchmarks map[string]delta   `json:"benchmarks"`
	BeforeOnly map[string]metrics `json:"before_only,omitempty"`
	AfterOnly  map[string]metrics `json:"after_only,omitempty"`
}

func pct(before, after *float64) *string {
	if before == nil || after == nil || *before == 0 {
		return nil
	}
	s := fmt.Sprintf("%+.1f%%", 100*(*after-*before)/(*before))
	return &s
}

// parse decodes one result file: either a flat bench.sh map
// (name -> metrics) or a merged BENCH_<n>.json record, whose "after"
// triples become the returned map.
func parse(data []byte, path string) (map[string]metrics, error) {
	var rec merged
	if err := json.Unmarshal(data, &rec); err == nil && len(rec.Benchmarks) > 0 {
		m := make(map[string]metrics, len(rec.Benchmarks))
		for name, d := range rec.Benchmarks {
			m[name] = d.After
		}
		for name, a := range rec.AfterOnly {
			m[name] = a
		}
		return m, nil
	}
	var m map[string]metrics
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

func load(path string) (map[string]metrics, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return parse(data, path)
}

// merge pairs every benchmark of before with after, computing the
// percentage deltas; unpaired benchmarks land in BeforeOnly/AfterOnly.
func mergeResults(before, after map[string]metrics) merged {
	out := merged{Benchmarks: map[string]delta{}}
	for name, b := range before {
		a, ok := after[name]
		if !ok {
			if out.BeforeOnly == nil {
				out.BeforeOnly = map[string]metrics{}
			}
			out.BeforeOnly[name] = b
			continue
		}
		out.Benchmarks[name] = delta{
			Before: b, After: a,
			NsDelta:     pct(b.NsPerOp, a.NsPerOp),
			BytesDelta:  pct(b.BytesPerOp, a.BytesPerOp),
			AllocsDelta: pct(b.AllocsPerOp, a.AllocsPerOp),
		}
	}
	for name, a := range after {
		if _, ok := before[name]; !ok {
			if out.AfterOnly == nil {
				out.AfterOnly = map[string]metrics{}
			}
			out.AfterOnly[name] = a
		}
	}
	return out
}

// gateResult is one benchmark's verdict from a gate comparison.
type gateResult struct {
	Name     string
	Baseline float64
	Current  float64
	DeltaPct float64
	Failed   bool
}

// gate compares current ns/op against baseline ns/op for every
// benchmark present in both (with a measured ns/op), in name order.
// A benchmark fails when it regressed by more than thresholdPct
// percent; improvements and missing benchmarks never fail.
func gate(baseline, current map[string]metrics, thresholdPct float64) (results []gateResult, failed int) {
	names := make([]string, 0, len(baseline))
	for name, b := range baseline {
		c, ok := current[name]
		if !ok || b.NsPerOp == nil || c.NsPerOp == nil || *b.NsPerOp == 0 {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b, c := *baseline[name].NsPerOp, *current[name].NsPerOp
		d := 100 * (c - b) / b
		r := gateResult{Name: name, Baseline: b, Current: c, DeltaPct: d, Failed: d > thresholdPct}
		if r.Failed {
			failed++
		}
		results = append(results, r)
	}
	return results, failed
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdelta:", err)
	os.Exit(1)
}

func main() {
	out := flag.String("o", "", "write merged JSON to this file instead of stdout")
	gatePct := flag.Float64("gate", 0, "fail when any shared benchmark's ns/op regressed by more than this percentage (0 = merge mode)")
	flag.Parse()
	args := flag.Args()
	if len(args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdelta [-o merged.json] before.json after.json")
		fmt.Fprintln(os.Stderr, "       benchdelta -gate <pct> baseline.json current.json")
		os.Exit(2)
	}
	before, err := load(args[0])
	if err != nil {
		fatal(err)
	}
	after, err := load(args[1])
	if err != nil {
		fatal(err)
	}

	if *gatePct > 0 {
		results, failed := gate(before, after, *gatePct)
		if len(results) == 0 {
			fatal(fmt.Errorf("gate: no shared benchmarks between %s and %s", args[0], args[1]))
		}
		for _, r := range results {
			verdict := "ok"
			if r.Failed {
				verdict = fmt.Sprintf("FAIL (>%g%%)", *gatePct)
			}
			fmt.Printf("%-32s %14.0f -> %14.0f ns/op  %+6.1f%%  %s\n",
				r.Name, r.Baseline, r.Current, r.DeltaPct, verdict)
		}
		if failed > 0 {
			fmt.Fprintf(os.Stderr, "benchdelta: %d of %d benchmarks regressed beyond %g%%\n",
				failed, len(results), *gatePct)
			os.Exit(1)
		}
		fmt.Printf("gate passed: %d benchmarks within %g%% of baseline\n", len(results), *gatePct)
		return
	}

	rec := mergeResults(before, after)
	// MarshalIndent sorts map keys, so the record is stable across runs.
	buf, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d benchmarks compared", *out, len(rec.Benchmarks))
	if n := len(rec.BeforeOnly) + len(rec.AfterOnly); n > 0 {
		fmt.Printf(", %d unpaired", n)
	}
	fmt.Println(")")
}
