package main

import (
	"reflect"
	"testing"
)

func f(v float64) *float64 { return &v }

func m(ns, bytes, allocs *float64) metrics {
	return metrics{NsPerOp: ns, BytesPerOp: bytes, AllocsPerOp: allocs}
}

// TestParseFlat decodes the flat map scripts/bench.sh emits, including
// the null B/op and allocs/op of a benchmark without -benchmem columns.
func TestParseFlat(t *testing.T) {
	data := []byte(`{
		"BenchmarkA": {"ns_per_op": 100, "bytes_per_op": 8, "allocs_per_op": 1},
		"BenchmarkB": {"ns_per_op": 50, "bytes_per_op": null, "allocs_per_op": null}
	}`)
	got, err := parse(data, "flat.json")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]metrics{
		"BenchmarkA": m(f(100), f(8), f(1)),
		"BenchmarkB": m(f(50), nil, nil),
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parse = %+v, want %+v", got, want)
	}
}

// TestParseMerged decodes a committed BENCH_<n>.json record: the
// "after" triples become the baseline, after_only entries included,
// and free-form fields like "description" are ignored.
func TestParseMerged(t *testing.T) {
	data := []byte(`{
		"description": "a record",
		"baseline_commit": "abc1234",
		"benchmarks": {
			"BenchmarkA": {
				"before": {"ns_per_op": 120, "bytes_per_op": 8, "allocs_per_op": 1},
				"after":  {"ns_per_op": 100, "bytes_per_op": 8, "allocs_per_op": 1},
				"ns_per_op_delta": "-16.7%"
			}
		},
		"after_only": {
			"BenchmarkNew": {"ns_per_op": 7, "bytes_per_op": 0, "allocs_per_op": 0}
		}
	}`)
	got, err := parse(data, "BENCH_9.json")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]metrics{
		"BenchmarkA":   m(f(100), f(8), f(1)),
		"BenchmarkNew": m(f(7), f(0), f(0)),
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parse = %+v, want %+v", got, want)
	}
}

// TestParseRejectsGarbage: a file that is neither shape errors out
// instead of silently gating against nothing.
func TestParseRejectsGarbage(t *testing.T) {
	if _, err := parse([]byte(`[1, 2, 3]`), "bad.json"); err == nil {
		t.Fatal("parse accepted a JSON array")
	}
}

// TestMergeResults checks the before/after pairing and the delta
// strings, including unpaired benchmarks on both sides.
func TestMergeResults(t *testing.T) {
	before := map[string]metrics{
		"BenchmarkA":    m(f(100), f(8), f(2)),
		"BenchmarkGone": m(f(10), nil, nil),
	}
	after := map[string]metrics{
		"BenchmarkA":   m(f(150), f(8), f(1)),
		"BenchmarkNew": m(f(5), nil, nil),
	}
	rec := mergeResults(before, after)
	d, ok := rec.Benchmarks["BenchmarkA"]
	if !ok {
		t.Fatal("BenchmarkA not merged")
	}
	if d.NsDelta == nil || *d.NsDelta != "+50.0%" {
		t.Errorf("ns delta = %v, want +50.0%%", d.NsDelta)
	}
	if d.AllocsDelta == nil || *d.AllocsDelta != "-50.0%" {
		t.Errorf("allocs delta = %v, want -50.0%%", d.AllocsDelta)
	}
	if _, ok := rec.BeforeOnly["BenchmarkGone"]; !ok {
		t.Error("BenchmarkGone missing from before_only")
	}
	if _, ok := rec.AfterOnly["BenchmarkNew"]; !ok {
		t.Error("BenchmarkNew missing from after_only")
	}
}

// TestGate pins the regression gate's verdicts: regressions beyond the
// threshold fail, regressions within it and improvements pass, and
// benchmarks absent from either side (or without ns/op) are skipped.
func TestGate(t *testing.T) {
	baseline := map[string]metrics{
		"BenchmarkSlower": m(f(100), nil, nil), // +30% — beyond 25
		"BenchmarkWithin": m(f(100), nil, nil), // +20% — within 25
		"BenchmarkFaster": m(f(100), nil, nil), // -40% — improvement
		"BenchmarkGone":   m(f(100), nil, nil), // not in current
		"BenchmarkNoNs":   m(nil, f(8), nil),   // no measurement
		"BenchmarkZeroNs": m(f(0), nil, nil),   // division guard
	}
	current := map[string]metrics{
		"BenchmarkSlower":  m(f(130), nil, nil),
		"BenchmarkWithin":  m(f(120), nil, nil),
		"BenchmarkFaster":  m(f(60), nil, nil),
		"BenchmarkNoNs":    m(f(5), nil, nil),
		"BenchmarkZeroNs":  m(f(5), nil, nil),
		"BenchmarkOnlyCur": m(f(5), nil, nil),
	}
	results, failed := gate(baseline, current, 25)
	if len(results) != 3 {
		t.Fatalf("gate compared %d benchmarks, want 3: %+v", len(results), results)
	}
	if failed != 1 {
		t.Fatalf("failed = %d, want 1", failed)
	}
	verdicts := map[string]bool{}
	for _, r := range results {
		verdicts[r.Name] = r.Failed
	}
	want := map[string]bool{
		"BenchmarkSlower": true,
		"BenchmarkWithin": false,
		"BenchmarkFaster": false,
	}
	if !reflect.DeepEqual(verdicts, want) {
		t.Fatalf("verdicts = %v, want %v", verdicts, want)
	}

	// Results come back name-sorted so CI logs are stable.
	for i := 1; i < len(results); i++ {
		if results[i-1].Name > results[i].Name {
			t.Fatalf("results not sorted: %s before %s", results[i-1].Name, results[i].Name)
		}
	}

	// At a looser threshold everything passes.
	if _, failed := gate(baseline, current, 50); failed != 0 {
		t.Fatalf("50%% gate failed %d benchmarks, want 0", failed)
	}
}
