// Command figure6 regenerates the paper's Figure 6 — read misses,
// prefetch efficiency and read stall time of I-detection, D-detection
// and sequential prefetching relative to the baseline — plus the
// ablations discussed in §5.4 and §6.
//
// Usage:
//
//	figure6                      # the three Figure 6 panels, all apps
//	figure6 -finite              # same under the 16 KB SLC of §5.3
//	figure6 -adaptive            # include adaptive sequential prefetching
//	figure6 -degrees 1,2,4,8 -app lu -scheme Seq
//	figure6 -slcsweep 8192,16384,65536 -app ocean -scheme I-det
//	figure6 -extensions -app lu
//	figure6 -consistency mp3d ocean
//	figure6 -j 8                 # fan simulations across 8 workers
//	figure6 -manifest fig6.json -metrics
//	figure6 -stalls              # busy/read/write/sync stall decomposition
//	figure6 -http :8080          # live status endpoint while running
//
// Simulations fan out across -j worker goroutines (default: all
// cores); the rows are identical to a serial run regardless of -j.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"prefetchsim"
	"prefetchsim/internal/webstatus"
)

func main() {
	procs := flag.Int("procs", 16, "processor count")
	scale := flag.Int("scale", 1, "data-set scale")
	seed := flag.Uint64("seed", 0, "workload seed")
	finite := flag.Bool("finite", false, "use the 16 KB SLC of §5.3 instead of an infinite SLC")
	adaptive := flag.Bool("adaptive", false, "also run adaptive sequential prefetching")
	app := flag.String("app", "lu", "application for -degrees / -slcsweep")
	scheme := flag.String("scheme", "Seq", "scheme for -degrees / -slcsweep")
	degrees := flag.String("degrees", "", "comma-separated degree sweep (ablation)")
	slcsweep := flag.String("slcsweep", "", "comma-separated SLC byte sizes (ablation)")
	extensions := flag.Bool("extensions", false, "compare the §6 extension schemes (lookahead, hybrid) on -app")
	zoo := flag.Bool("zoo", false, "compare the modern prefetcher zoo (Markov, Perceptron, BestOffset) against the paper's schemes on -app")
	bandwidth := flag.String("bandwidth", "", "comma-separated bandwidth divisors for the §7 limitation study on -app")
	assoc := flag.String("assoc", "", "comma-separated SLC associativities for the finite-cache ablation on -app")
	consistency := flag.Bool("consistency", false, "compare release vs sequential consistency")
	bars := flag.Bool("bars", false, "render the three panels as bar charts, as in the paper")
	workers := flag.Int("j", 0, "simulations to run concurrently (0 = all cores, 1 = serial)")
	manifest := flag.String("manifest", "", "write the sweep's provenance manifest (JSON) to this file")
	metrics := flag.Bool("metrics", false, "print sweep-wide metric totals")
	stalls := flag.Bool("stalls", false, "print the execution-time stall decomposition (busy/read/write/sync) per app and scheme")
	httpAddr := flag.String("http", "", "serve a live JSON status endpoint on this address while the runs execute")
	flag.Parse()

	opt := prefetchsim.ExpOptions{Procs: *procs, Scale: *scale, Seed: *seed, Workers: *workers}
	if args := flag.Args(); len(args) > 0 {
		opt.Apps = args
	}
	var rec *prefetchsim.ManifestRecorder
	if *manifest != "" || *metrics || *httpAddr != "" {
		rec = &prefetchsim.ManifestRecorder{}
		opt.Record = rec
	}
	if *httpAddr != "" {
		var prog webstatus.Progress
		opt.Progress = prog.Set
		srv, err := webstatus.Serve(*httpAddr, func() webstatus.Status {
			done, total, rows := prog.Snapshot()
			runs, totals := rec.Status()
			return webstatus.Status{
				Tool: "figure6", Done: done, Total: total,
				Rows: rows, Runs: runs, Metrics: totals,
			}
		})
		exitOn(err)
		defer srv.Close()
		opt.OnRow = func(done, total int, row fmt.Stringer) { prog.Row() }
		fmt.Fprintf(os.Stderr, "figure6: status endpoint on http://%s/status\n", srv.Addr())
	}
	start := time.Now()
	var rendered []string

	switch {
	case *stalls:
		fmt.Println("Execution-time stall decomposition (fractions of summed per-node time)")
		rows, err := prefetchsim.StallBreakdown(opt)
		exitOn(err)
		rendered = render(rows)
		prev := ""
		for _, r := range rows {
			if r.App != prev && prev != "" {
				fmt.Println()
			}
			prev = r.App
			fmt.Println(" ", r)
		}
	case *bandwidth != "":
		fs, err := ints(*bandwidth)
		exitOn(err)
		fmt.Printf("Bandwidth-limitation study (§7) on %s\n", *app)
		rows, err := prefetchsim.BandwidthSweep(*app, fs, opt)
		exitOn(err)
		rendered = render(rows)
		for _, r := range rows {
			fmt.Println(" ", r)
		}
	case *assoc != "":
		ws, err := ints(*assoc)
		exitOn(err)
		fmt.Printf("SLC associativity ablation (16 KB) on %s\n", *app)
		rows, err := prefetchsim.AssocSweep(*app, ws, opt)
		exitOn(err)
		rendered = render(rows)
		for _, r := range rows {
			fmt.Println(" ", r)
		}
	case *extensions:
		fmt.Printf("Extension schemes (§6) on %s\n", *app)
		rows, err := prefetchsim.ExtensionCompare(*app, opt)
		exitOn(err)
		rendered = render(rows)
		print(rows)
	case *zoo:
		fmt.Printf("Prefetcher zoo vs the paper's schemes on %s\n", *app)
		rows, err := prefetchsim.ZooCompare(*app, opt)
		exitOn(err)
		rendered = render(rows)
		print(rows)
	case *consistency:
		fmt.Println("Release vs sequential consistency (the paper assumes RC)")
		rows, err := prefetchsim.ConsistencyCompare(opt)
		exitOn(err)
		rendered = render(rows)
		for _, r := range rows {
			fmt.Println(" ", r)
		}
	case *degrees != "":
		ds, err := ints(*degrees)
		exitOn(err)
		fmt.Printf("Degree sweep: %s on %s\n", *scheme, *app)
		rows, err := prefetchsim.DegreeSweep(*app, prefetchsim.Scheme(*scheme), ds, opt)
		exitOn(err)
		rendered = render(rows)
		print(rows)
	case *slcsweep != "":
		ss, err := ints(*slcsweep)
		exitOn(err)
		fmt.Printf("SLC-size sweep: %s on %s\n", *scheme, *app)
		rows, err := prefetchsim.SLCSweep(*app, prefetchsim.Scheme(*scheme), ss, opt)
		exitOn(err)
		rendered = render(rows)
		print(rows)
	default:
		schemes := prefetchsim.Schemes()
		if *adaptive {
			schemes = append(schemes, prefetchsim.Adaptive)
		}
		var rows []prefetchsim.Fig6Row
		var err error
		if *finite {
			fmt.Printf("Figure 6 (finite %d-byte SLC): relative read misses, prefetch efficiency, relative read stall\n",
				prefetchsim.FiniteSLCBytes)
			rows, err = prefetchsim.Figure6Finite(opt, schemes...)
		} else {
			fmt.Println("Figure 6: relative read misses, prefetch efficiency, relative read stall (infinite SLC, d=1)")
			rows, err = prefetchsim.Figure6(opt, schemes...)
		}
		exitOn(err)
		rendered = render(rows)
		if *bars {
			fmt.Print(prefetchsim.RenderBars(rows))
		} else {
			print(rows)
		}
	}

	if *metrics {
		printTotals(rec.Totals())
	}
	if *manifest != "" {
		sm := rec.Sweep("figure6", os.Args[1:], rendered, time.Since(start))
		exitOn(sm.WriteFile(*manifest))
		fmt.Printf("manifest: %s (%d runs, rows digest %s)\n", *manifest, len(sm.Runs), sm.RowsDigest)
	}
}

// render flattens a row slice to its String() forms, in row order, for
// the sweep manifest's digest.
func render[R fmt.Stringer](rows []R) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.String()
	}
	return out
}

// printTotals renders sweep-wide metric totals, name-sorted.
func printTotals(totals map[string]int64) {
	names := make([]string, 0, len(totals))
	for n := range totals {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Println("metric totals:")
	for _, n := range names {
		fmt.Printf("  %-28s %d\n", n, totals[n])
	}
}

func print(rows []prefetchsim.Fig6Row) {
	prev := ""
	for _, r := range rows {
		if r.App != prev && prev != "" {
			fmt.Println()
		}
		prev = r.App
		fmt.Println(" ", r)
	}
}

func ints(csv string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(csv, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("figure6: bad integer list %q: %v", csv, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "figure6:", err)
		os.Exit(1)
	}
}
