package main

import (
	"bytes"
	"strings"
	"testing"

	"prefetchsim"
	"prefetchsim/internal/obs"
)

const sampleSpans = `{"class":"miss.cold","node":0,"block":42,"issue":100,"req":101,"home":104,"svc":105,"reply":120,"arrive":130,"done":136,"demand":100,"wait":40}
{"class":"prefetch.late","node":1,"block":43,"issue":200,"req":200,"home":205,"svc":206,"reply":220,"arrive":228,"done":234,"demand":210,"wait":28}
{"class":"slc.hit","node":0,"block":44,"issue":300,"req":0,"home":0,"svc":0,"reply":0,"arrive":0,"done":306,"demand":-1,"wait":5}
{"class":"flwb","node":2,"block":45,"issue":400,"req":0,"home":0,"svc":0,"reply":0,"arrive":0,"done":410,"demand":-1,"wait":10}
{"class":"acquire","node":3,"block":7,"issue":500,"req":0,"home":0,"svc":0,"reply":0,"arrive":0,"done":517,"demand":-1,"wait":17}
{"class":"prefetch","node":1,"block":46,"issue":600,"req":600,"home":603,"svc":603,"reply":615,"arrive":620,"done":626,"demand":-1,"wait":0}
`

func TestParseSpans(t *testing.T) {
	spans, err := parseSpans(strings.NewReader(sampleSpans))
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 6 {
		t.Fatalf("parsed %d spans, want 6", len(spans))
	}
	s := spans[0]
	if s.Class != obs.SpanMissCold || s.Node != 0 || s.Block != 42 ||
		s.Issue != 100 || s.Done != 136 || s.Demand != 100 || s.Wait != 40 {
		t.Fatalf("span 0 = %+v", s)
	}
	if got := s.Total(); got != 36 {
		t.Fatalf("span 0 total = %d, want 36", got)
	}

	if _, err := parseSpans(strings.NewReader(`{"class":"nosuch"}`)); err == nil {
		t.Fatal("unknown class accepted")
	}
	if _, err := parseSpans(strings.NewReader(`not json`)); err == nil {
		t.Fatal("malformed line accepted")
	}
}

func TestStallSplit(t *testing.T) {
	spans, err := parseSpans(strings.NewReader(sampleSpans))
	if err != nil {
		t.Fatal(err)
	}
	read, write, sync := stallSplit(spans)
	// read: miss.cold 40 + prefetch.late 28 + slc.hit 5; write: flwb 10;
	// sync: acquire 17. Timely prefetches charge nothing.
	if read != 73 || write != 10 || sync != 17 {
		t.Fatalf("split = %d/%d/%d, want 73/10/17", read, write, sync)
	}
}

func TestPercentile(t *testing.T) {
	sorted := []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	for _, c := range []struct {
		p    int
		want int64
	}{{50, 5}, {90, 9}, {99, 10}, {100, 10}, {1, 1}} {
		if got := percentile(sorted, c.p); got != c.want {
			t.Errorf("p%d = %d, want %d", c.p, got, c.want)
		}
	}
	if got := percentile(nil, 50); got != 0 {
		t.Errorf("empty p50 = %d, want 0", got)
	}
}

func TestRenderers(t *testing.T) {
	spans, err := parseSpans(strings.NewReader(sampleSpans))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	renderLatency(&buf, spans)
	for _, want := range []string{"miss.cold", "prefetch.late", "acquire", "6 spans"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("latency table missing %q:\n%s", want, buf.String())
		}
	}

	buf.Reset()
	renderTop(&buf, spans, 2)
	// Slowest transactions: miss.cold (36) then prefetch.late (34);
	// local stalls (acquire, 17 pclocks) are not transactions.
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 || !strings.Contains(lines[1], "miss.cold") ||
		!strings.Contains(lines[2], "prefetch.late") {
		t.Errorf("top table wrong:\n%s", buf.String())
	}
	if !strings.Contains(lines[0], "reqnet") || !strings.Contains(lines[0], "fill") {
		t.Errorf("top table missing hop columns:\n%s", lines[0])
	}

	buf.Reset()
	renderNodes(&buf, spans)
	if !strings.Contains(buf.String(), "read_wait") || !strings.Contains(buf.String(), "sync_wait") {
		t.Errorf("node table missing columns:\n%s", buf.String())
	}

	buf.Reset()
	renderStalls(&buf, spans)
	if !strings.Contains(buf.String(), "read stall") || !strings.Contains(buf.String(), "73") {
		t.Errorf("stall table wrong:\n%s", buf.String())
	}

	buf.Reset()
	if err := spanCSV(&buf, spans); err != nil {
		t.Fatal(err)
	}
	csv := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(csv) != 7 {
		t.Fatalf("CSV has %d lines, want header + 6", len(csv))
	}
	if csv[0] != "class,node,block,issue,req,home,svc,reply,arrive,done,demand,wait" {
		t.Fatalf("CSV header = %q", csv[0])
	}
	if csv[1] != "miss.cold,0,42,100,101,104,105,120,130,136,100,40" {
		t.Fatalf("CSV row 0 = %q", csv[1])
	}
}

func TestParseTimelineAndRender(t *testing.T) {
	input := `{"t":5000,"reads":632,"writes":0,"misses":322,"miss_cold":322,"pref_issued":398,"pref_useful":76,"read_stall":17984,"slwb":7,"net_flits":7482}
{"t":10000,"reads":2886,"writes":16,"misses":70,"pref_issued":100,"pref_useful":90,"read_stall":9000,"slwb":16,"net_flits":4042}
`
	points, err := parseTimeline(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 || points[0].T != 5000 || points[0].Misses != 322 || points[1].SLWB != 16 {
		t.Fatalf("points = %+v", points)
	}
	var buf bytes.Buffer
	renderTimeline(&buf, points)
	if !strings.Contains(buf.String(), "2 windows") {
		t.Errorf("timeline table wrong:\n%s", buf.String())
	}
	buf.Reset()
	if err := timelineCSV(&buf, points); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 || !strings.HasPrefix(lines[1], "5000,632,0,322,322,") {
		t.Fatalf("timeline CSV wrong:\n%s", buf.String())
	}
}

// TestStallSplitMatchesRun is the toolchain acceptance test: run a
// scaled-down Figure 6 configuration (LU under sequential prefetching)
// with an unsampled, unwrapped span recording, feed the JSONL through
// the same parse path the CLI uses, and require the span-derived
// read/write/sync stall decomposition to reproduce Result.Stats
// exactly — every stall pclock the simulator charged is accounted for
// by exactly one span.
func TestStallSplitMatchesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: full span capture of an LU run (~1M spans)")
	}
	var buf bytes.Buffer
	cfg := prefetchsim.Config{
		App: "lu", Scheme: prefetchsim.Seq, Processors: 4, Seed: 12345,
		Spans: &prefetchsim.SpanConfig{W: &buf, Cap: 1 << 20, Sample: 1},
	}
	res, err := prefetchsim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.SpanTrace.Dropped != 0 || res.SpanTrace.Sampled != 0 {
		t.Fatalf("capture not lossless: %+v (raise Cap)", res.SpanTrace)
	}

	spans, err := parseSpans(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(spans)) != res.SpanTrace.Seen {
		t.Fatalf("parsed %d spans, run saw %d", len(spans), res.SpanTrace.Seen)
	}

	read, write, sync := stallSplit(spans)
	var wantRead, wantWrite, wantSync int64
	for i := range res.Stats.Nodes {
		n := &res.Stats.Nodes[i]
		wantRead += int64(n.ReadStall)
		wantWrite += int64(n.WriteStall)
		wantSync += int64(n.SyncStall)
	}
	if read != wantRead {
		t.Errorf("span read stall = %d, stats charge %d", read, wantRead)
	}
	if write != wantWrite {
		t.Errorf("span write stall = %d, stats charge %d", write, wantWrite)
	}
	if sync != wantSync {
		t.Errorf("span sync stall = %d, stats charge %d", sync, wantSync)
	}
	if wantRead == 0 || wantSync == 0 {
		t.Error("LU run charged no read or sync stall; the comparison is vacuous")
	}

	// The decomposition agrees with the experiment API's reference
	// split (StallSplit renders fractions of summed per-node time).
	row := prefetchsim.StallSplit("lu", prefetchsim.Seq, res)
	var exec int64
	for i := range res.Stats.Nodes {
		exec += int64(res.Stats.Nodes[i].ExecTime)
	}
	if got := float64(read) / float64(exec); !close(got, row.Read) {
		t.Errorf("span read fraction = %f, StallSplit says %f", got, row.Read)
	}
	if got := float64(sync) / float64(exec); !close(got, row.Sync) {
		t.Errorf("span sync fraction = %f, StallSplit says %f", got, row.Sync)
	}
}

func close(a, b float64) bool {
	d := a - b
	return d < 1e-12 && d > -1e-12
}
