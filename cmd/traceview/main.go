// Command traceview analyzes the span and timeline JSONL files a run
// writes (prefetchsim -spans / -timeline): per-class latency
// percentiles, the slowest transactions with their per-hop breakdown,
// per-node heat tables, the processor stall-time decomposition the
// paper's Figure 6 plots, and CSV export for plotting elsewhere.
//
// Usage:
//
//	traceview spans.jsonl                  per-class latency percentiles
//	traceview -top 10 spans.jsonl          slowest transactions, hop by hop
//	traceview -nodes spans.jsonl           per-node heat table
//	traceview -stalls spans.jsonl          read/write/sync stall decomposition
//	traceview -csv out.csv spans.jsonl     span CSV export
//	traceview -timeline tl.jsonl           windowed time-series table
//	traceview -timeline tl.jsonl -timeline-csv out.csv
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"

	"prefetchsim/internal/obs"
)

func main() {
	top := flag.Int("top", 0, "print the N slowest transactions with their hop breakdown")
	nodes := flag.Bool("nodes", false, "print the per-node heat table")
	stalls := flag.Bool("stalls", false, "print the read/write/sync stall decomposition (Figure 6 split)")
	csvOut := flag.String("csv", "", "export the spans as CSV to this file")
	timeline := flag.String("timeline", "", "read a timeline JSONL file and print its windows")
	tlCSV := flag.String("timeline-csv", "", "export the timeline windows as CSV to this file")
	flag.Parse()

	if *timeline != "" {
		points, err := readTimeline(*timeline)
		exitOn(err)
		if *tlCSV != "" {
			exitOn(writeFileWith(*tlCSV, func(w io.Writer) error {
				return timelineCSV(w, points)
			}))
			fmt.Printf("wrote %d windows to %s\n", len(points), *tlCSV)
		} else {
			renderTimeline(os.Stdout, points)
		}
		if flag.NArg() == 0 {
			return
		}
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "traceview: need one span JSONL file (from prefetchsim -spans)")
		flag.Usage()
		os.Exit(2)
	}
	spans, err := readSpans(flag.Arg(0))
	exitOn(err)
	if len(spans) == 0 {
		fmt.Fprintln(os.Stderr, "traceview: no spans in", flag.Arg(0))
		os.Exit(1)
	}

	switch {
	case *csvOut != "":
		exitOn(writeFileWith(*csvOut, func(w io.Writer) error {
			return spanCSV(w, spans)
		}))
		fmt.Printf("wrote %d spans to %s\n", len(spans), *csvOut)
	case *top > 0:
		renderTop(os.Stdout, spans, *top)
	case *nodes:
		renderNodes(os.Stdout, spans)
	case *stalls:
		renderStalls(os.Stdout, spans)
	default:
		renderLatency(os.Stdout, spans)
	}
}

// readSpans loads one span JSONL file.
func readSpans(path string) ([]obs.Span, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parseSpans(f)
}

// jsonSpan mirrors Span.AppendJSON's field names for decoding.
type jsonSpan struct {
	Class  string `json:"class"`
	Node   int32  `json:"node"`
	Block  uint64 `json:"block"`
	Issue  int64  `json:"issue"`
	Req    int64  `json:"req"`
	Home   int64  `json:"home"`
	Svc    int64  `json:"svc"`
	Reply  int64  `json:"reply"`
	Arrive int64  `json:"arrive"`
	Done   int64  `json:"done"`
	Demand int64  `json:"demand"`
	Wait   int64  `json:"wait"`
}

// parseSpans decodes span JSONL (one object per line, as written by
// SpanRecorder.Flush). Blank lines are skipped; a malformed line or an
// unknown class is an error with its line number.
func parseSpans(r io.Reader) ([]obs.Span, error) {
	var spans []obs.Span
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var j jsonSpan
		if err := json.Unmarshal(b, &j); err != nil {
			return nil, fmt.Errorf("traceview: line %d: %v", line, err)
		}
		cls, ok := obs.ParseSpanClass(j.Class)
		if !ok {
			return nil, fmt.Errorf("traceview: line %d: unknown span class %q", line, j.Class)
		}
		spans = append(spans, obs.Span{
			Issue: j.Issue, Req: j.Req, Home: j.Home, Svc: j.Svc,
			Reply: j.Reply, Arrive: j.Arrive, Done: j.Done,
			Demand: j.Demand, Wait: j.Wait,
			Block: j.Block, Node: j.Node, Class: cls,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("traceview: %v", err)
	}
	return spans, nil
}

// readTimeline loads one timeline JSONL file.
func readTimeline(path string) ([]obs.TimePoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parseTimeline(f)
}

// parseTimeline decodes timeline JSONL (one window per line, as
// written by Timeline.Flush).
func parseTimeline(r io.Reader) ([]obs.TimePoint, error) {
	var points []obs.TimePoint
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var p obs.TimePoint
		if err := json.Unmarshal(b, &p); err != nil {
			return nil, fmt.Errorf("traceview: line %d: %v", line, err)
		}
		points = append(points, p)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("traceview: %v", err)
	}
	return points, nil
}

// percentile returns the p-th percentile (0 < p <= 100) of sorted,
// using the nearest-rank method.
func percentile(sorted []int64, p int) int64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := (len(sorted)*p + 99) / 100
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// renderLatency prints the per-class latency percentile table: one row
// per span class present in the file, with count, mean, p50/p90/p99
// and max end-to-end latency plus the summed processor wait.
func renderLatency(w io.Writer, spans []obs.Span) {
	byClass := make(map[obs.SpanClass][]int64)
	wait := make(map[obs.SpanClass]int64)
	for i := range spans {
		s := &spans[i]
		byClass[s.Class] = append(byClass[s.Class], s.Total())
		wait[s.Class] += s.Wait
	}
	fmt.Fprintf(w, "%-16s %8s %9s %9s %9s %9s %9s %11s\n",
		"class", "count", "mean", "p50", "p90", "p99", "max", "wait")
	for c := obs.SpanClass(0); c < obs.NumSpanClasses; c++ {
		lat := byClass[c]
		if len(lat) == 0 {
			continue
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		var sum int64
		for _, v := range lat {
			sum += v
		}
		fmt.Fprintf(w, "%-16s %8d %9.1f %9d %9d %9d %9d %11d\n",
			c, len(lat), float64(sum)/float64(len(lat)),
			percentile(lat, 50), percentile(lat, 90), percentile(lat, 99),
			lat[len(lat)-1], wait[c])
	}
	fmt.Fprintf(w, "%d spans (latencies in pclocks)\n", len(spans))
}

// hops returns the per-hop latencies of a transaction span, in
// pipeline order.
func hops(s *obs.Span) [6]int64 {
	return [6]int64{
		s.Req - s.Issue,    // queue (SLWB admission / dispatch wait)
		s.Home - s.Req,     // request network
		s.Svc - s.Home,     // directory queue
		s.Reply - s.Svc,    // directory + memory service
		s.Arrive - s.Reply, // reply network
		s.Done - s.Arrive,  // SLC fill
	}
}

var hopNames = [6]string{"queue", "reqnet", "dir", "service", "replynet", "fill"}

// renderTop prints the n slowest transaction spans with their hop
// breakdown. Local stall classes have no hop stamps and are excluded.
func renderTop(w io.Writer, spans []obs.Span, n int) {
	var tx []obs.Span
	for i := range spans {
		if spans[i].Class.IsTransaction() {
			tx = append(tx, spans[i])
		}
	}
	if len(tx) == 0 {
		fmt.Fprintln(w, "no transaction spans")
		return
	}
	sort.Slice(tx, func(i, j int) bool {
		if d := tx[i].Total() - tx[j].Total(); d != 0 {
			return d > 0
		}
		return tx[i].Issue < tx[j].Issue // stable order among ties
	})
	if n > len(tx) {
		n = len(tx)
	}
	fmt.Fprintf(w, "%-16s %5s %10s %10s %8s", "class", "node", "block", "issue", "total")
	for _, h := range hopNames {
		fmt.Fprintf(w, " %8s", h)
	}
	fmt.Fprintf(w, " %8s\n", "wait")
	for i := 0; i < n; i++ {
		s := &tx[i]
		fmt.Fprintf(w, "%-16s %5d %10d %10d %8d", s.Class, s.Node, s.Block, s.Issue, s.Total())
		for _, h := range hops(s) {
			fmt.Fprintf(w, " %8d", h)
		}
		fmt.Fprintf(w, " %8d\n", s.Wait)
	}
	fmt.Fprintf(w, "top %d of %d transactions (latencies in pclocks)\n", n, len(tx))
}

// nodeHeat is one node's row in the heat table.
type nodeHeat struct {
	spans, misses, prefetches                int64
	readWait, writeWait, syncWait, totalWait int64
}

// heatByNode folds spans into per-node heat rows, indexed by node id.
func heatByNode(spans []obs.Span) map[int32]*nodeHeat {
	heat := make(map[int32]*nodeHeat)
	for i := range spans {
		s := &spans[i]
		h := heat[s.Node]
		if h == nil {
			h = &nodeHeat{}
			heat[s.Node] = h
		}
		h.spans++
		h.totalWait += s.Wait
		switch s.Class {
		case obs.SpanMissCold, obs.SpanMissCoherence, obs.SpanMissReplacement:
			h.misses++
			h.readWait += s.Wait
		case obs.SpanPrefetch:
			h.prefetches++
		case obs.SpanPrefetchLate:
			h.prefetches++
			h.readWait += s.Wait
		case obs.SpanSLCHit:
			h.readWait += s.Wait
		case obs.SpanFLWB, obs.SpanSCWrite:
			h.writeWait += s.Wait
		case obs.SpanAcquire, obs.SpanBarrier, obs.SpanRelease:
			h.syncWait += s.Wait
		}
	}
	return heat
}

// renderNodes prints the per-node heat table: span counts and the
// stall pclocks each node's spans charged, split by stall kind, with a
// crude bar so hot nodes stand out.
func renderNodes(w io.Writer, spans []obs.Span) {
	heat := heatByNode(spans)
	ids := make([]int32, 0, len(heat))
	var maxWait int64
	for id, h := range heat {
		ids = append(ids, id)
		if h.totalWait > maxWait {
			maxWait = h.totalWait
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	fmt.Fprintf(w, "%5s %8s %8s %8s %12s %12s %12s %12s  %s\n",
		"node", "spans", "misses", "pref", "read_wait", "write_wait", "sync_wait", "total_wait", "heat")
	for _, id := range ids {
		h := heat[id]
		bar := 0
		if maxWait > 0 {
			bar = int(h.totalWait * 20 / maxWait)
		}
		fmt.Fprintf(w, "%5d %8d %8d %8d %12d %12d %12d %12d  %s\n",
			id, h.spans, h.misses, h.prefetches,
			h.readWait, h.writeWait, h.syncWait, h.totalWait,
			bars[:bar])
	}
}

const bars = "####################"

// stallSplit sums the processor wait the spans charged, split the way
// the paper's Figure 6 splits execution time: read stall (miss,
// late-prefetch and SLC-hit spans), write stall (write-buffer and
// sequential-consistency spans) and sync stall (acquire, barrier,
// release). With an unsampled, unwrapped recording these sums equal
// the run's ReadStall/WriteStall/SyncStall statistics exactly.
func stallSplit(spans []obs.Span) (read, write, sync int64) {
	for i := range spans {
		s := &spans[i]
		switch s.Class {
		case obs.SpanMissCold, obs.SpanMissCoherence, obs.SpanMissReplacement,
			obs.SpanPrefetchLate, obs.SpanSLCHit:
			read += s.Wait
		case obs.SpanFLWB, obs.SpanSCWrite:
			write += s.Wait
		case obs.SpanAcquire, obs.SpanBarrier, obs.SpanRelease:
			sync += s.Wait
		}
	}
	return read, write, sync
}

// renderStalls prints the span-derived stall decomposition.
func renderStalls(w io.Writer, spans []obs.Span) {
	read, write, sync := stallSplit(spans)
	total := read + write + sync
	pct := func(v int64) float64 {
		if total == 0 {
			return 0
		}
		return 100 * float64(v) / float64(total)
	}
	fmt.Fprintf(w, "stall decomposition over %d spans (pclocks):\n", len(spans))
	fmt.Fprintf(w, "  read stall   %12d  %5.1f%%\n", read, pct(read))
	fmt.Fprintf(w, "  write stall  %12d  %5.1f%%\n", write, pct(write))
	fmt.Fprintf(w, "  sync stall   %12d  %5.1f%%\n", sync, pct(sync))
	fmt.Fprintf(w, "  total        %12d\n", total)
}

// spanCSV writes the spans as CSV with one column per JSONL field.
func spanCSV(w io.Writer, spans []obs.Span) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "class,node,block,issue,req,home,svc,reply,arrive,done,demand,wait")
	for i := range spans {
		s := &spans[i]
		fmt.Fprintf(bw, "%s,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
			s.Class, s.Node, s.Block, s.Issue, s.Req, s.Home, s.Svc,
			s.Reply, s.Arrive, s.Done, s.Demand, s.Wait)
	}
	return bw.Flush()
}

// renderTimeline prints the windowed time-series with derived rates.
func renderTimeline(w io.Writer, points []obs.TimePoint) {
	fmt.Fprintf(w, "%10s %9s %9s %8s %8s %8s %7s %6s %10s\n",
		"t", "reads", "writes", "misses", "missrate", "pref_eff", "stall%", "slwb", "flits")
	for i := range points {
		p := &points[i]
		missRate := 0.0
		if p.Reads > 0 {
			missRate = float64(p.Misses) / float64(p.Reads)
		}
		prefEff := 0.0
		if p.PrefIssued > 0 {
			prefEff = float64(p.PrefUseful) / float64(p.PrefIssued)
		}
		var window int64
		if i == 0 {
			window = p.T
		} else {
			window = p.T - points[i-1].T
		}
		stallPct := 0.0
		if window > 0 {
			// Stall pclocks are summed across nodes; a window covers
			// window pclocks on each node, so normalize per-node.
			stallPct = 100 * float64(p.ReadStall+p.WriteStall+p.SyncStall) / float64(window)
		}
		fmt.Fprintf(w, "%10d %9d %9d %8d %8.4f %8.4f %7.1f %6d %10d\n",
			p.T, p.Reads, p.Writes, p.Misses, missRate, prefEff, stallPct, p.SLWB, p.NetFlits)
	}
	fmt.Fprintf(w, "%d windows\n", len(points))
}

// timelineCSV writes the windows as CSV with one column per field.
func timelineCSV(w io.Writer, points []obs.TimePoint) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "t,reads,writes,misses,miss_cold,miss_coherence,miss_replacement,"+
		"pref_issued,pref_useful,pref_late,read_stall,write_stall,sync_stall,"+
		"slwb,net_msgs,net_flits,net_flit_hops,events")
	for i := range points {
		p := &points[i]
		vals := []int64{
			p.T, p.Reads, p.Writes, p.Misses, p.MissCold, p.MissCoherence,
			p.MissReplacement, p.PrefIssued, p.PrefUseful, p.PrefLate,
			p.ReadStall, p.WriteStall, p.SyncStall, p.SLWB,
			p.NetMsgs, p.NetFlits, p.NetFlitHops, p.Events,
		}
		for j, v := range vals {
			if j > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(strconv.FormatInt(v, 10))
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// writeFileWith creates path and streams fn's output into it.
func writeFileWith(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "traceview:", err)
		os.Exit(1)
	}
}
