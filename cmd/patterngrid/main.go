// Command patterngrid computes the prefetcher-zoo accuracy/coverage
// grid: every scheme against every synthetic access-pattern family
// (see internal/patternlab). The table shows, per cell, accuracy
// (useful/issued), coverage (fraction of baseline misses removed) and
// pollution (useless prefetches per 1000 references).
//
// Usage:
//
//	patterngrid
//	patterngrid -degree 2 -csv grid.csv
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"

	"prefetchsim/internal/patternlab"
)

func main() {
	degree := flag.Int("degree", 1, "prefetch degree d")
	seed := flag.Uint64("seed", 12345, "stream seed")
	csvPath := flag.String("csv", "", "also write the grid as CSV to this file")
	flag.Parse()

	cells := patternlab.Grid(*degree, *seed)

	var fams []string
	seen := map[string]bool{}
	for _, c := range cells {
		if !seen[c.Family] {
			seen[c.Family] = true
			fams = append(fams, c.Family)
		}
	}
	cell := map[string]patternlab.Cell{}
	var schemes []string
	seen = map[string]bool{}
	for _, c := range cells {
		cell[c.Scheme+"/"+c.Family] = c
		if !seen[c.Scheme] {
			seen[c.Scheme] = true
			schemes = append(schemes, c.Scheme)
		}
	}

	fmt.Printf("Pattern-family grid, degree %d (acc%% / cov%% / useless per 1k refs)\n\n", *degree)
	fmt.Printf("%-11s", "")
	for _, f := range fams {
		fmt.Printf(" %14s", f)
	}
	fmt.Println()
	for _, s := range schemes {
		fmt.Printf("%-11s", s)
		for _, f := range fams {
			c := cell[s+"/"+f]
			fmt.Printf(" %4.0f/%4.0f/%4.0f", 100*c.Accuracy(), 100*c.Coverage(), c.PollutionPerK())
		}
		fmt.Println()
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		w := csv.NewWriter(f)
		w.Write([]string{"scheme", "family", "refs", "baseline_misses", "misses",
			"issued", "useful", "accuracy", "coverage", "useless_per_1k"})
		for _, c := range cells {
			w.Write([]string{
				c.Scheme, c.Family,
				strconv.Itoa(c.Refs), strconv.Itoa(c.BaselineMisses), strconv.Itoa(c.Misses),
				strconv.Itoa(c.Issued), strconv.Itoa(c.Useful),
				strconv.FormatFloat(c.Accuracy(), 'f', 4, 64),
				strconv.FormatFloat(c.Coverage(), 'f', 4, 64),
				strconv.FormatFloat(c.PollutionPerK(), 'f', 2, 64),
			})
		}
		w.Flush()
		if err := w.Error(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s\n", *csvPath)
	}
}
