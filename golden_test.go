package prefetchsim_test

// Golden determinism digests. The serial/parallel equivalence tests
// compare two runs of the *same* binary, so they cannot catch a change
// that perturbs simulated event order consistently in both. These
// digests pin the exact experiment output of one small configuration
// across commits: any fast-path rewrite (event queue, block tables,
// protocol scheduling) that changes simulation results — even
// "harmlessly" — fails loudly here and must consciously re-bless the
// digest with an explanation.

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"
	"testing"

	"prefetchsim"
)

// Digests of the matmul/4-processor/seed-12345 Figure 6 and Table 2
// rows, computed at the commit that introduced this test. Re-bless only
// when a change is *supposed* to alter simulation results.
const (
	goldenFigure6Digest = "3e762c98b9ba9100cbb0aa75af30ee3db49b04d6ae0c3b4793c26bfca89fc050"
	goldenTable2Digest  = "5b975542bde90ecc50a748327fdab86567064bcdebfb0825d197bce919659687"

	// Digests of two single-run configurations off the Figure 6 / Table 2
	// path, pinned before the batched-streaming rework (PR 3) so the
	// rework is proven byte-identical on them too: a sequential-
	// consistency run (blocking writes exercise the write-stall path) and
	// a D-detection stride config (the miss-address detector's stream
	// table). Both digest every per-node counter of the run.
	goldenSCDigest   = "6c86aca78c41d816b2c8bc3ac87071a62477ebb4c660343516d16d5be52931bb"
	goldenDDetDigest = "b6eeb87e27a45de384d30f3ec06c6f2aa86116e62d25fd3b5f68c5dea0d83676"
)

// Digests of one listchase/4-processor/seed-12345 run per zoo scheme
// under the finite SLC (the configuration where correlation prefetching
// actually fires: the working set exceeds the cache, so every round
// misses again). Pinned at the commit that introduced the zoo.
var goldenZooDigests = map[prefetchsim.Scheme]string{
	prefetchsim.Markov:     "731065ce134de50503c4f4af43cc86038e91f580e092b181ecf2298b7700ea99",
	prefetchsim.Perceptron: "f7c14e43bcdcf23ea14bf0f502a35ba8201d420e0376bed890e89cdb7de0208a",
	prefetchsim.BestOff:    "ad20c3416b9931fd4c5555c938c3a14e9a49d494a5d468d104d0a7cee07249a3",
}

func goldenOpts() prefetchsim.ExpOptions {
	return prefetchsim.ExpOptions{Procs: 4, Apps: []string{"matmul"}, Seed: 12345, Workers: 1}
}

// f formats a float with full round-trip precision so the digest is
// sensitive to the last bit of every statistic.
func f(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func digestLines(lines []string) string {
	h := sha256.New()
	for _, l := range lines {
		fmt.Fprintln(h, l)
	}
	return hex.EncodeToString(h.Sum(nil))
}

func TestGoldenFigure6Digest(t *testing.T) {
	rows, err := prefetchsim.Figure6(goldenOpts())
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	for _, r := range rows {
		lines = append(lines, strings.Join([]string{
			r.App, string(r.Scheme),
			f(r.RelMisses), f(r.Efficiency), f(r.RelStall), f(r.RelTraffic),
		}, ","))
	}
	if got := digestLines(lines); got != goldenFigure6Digest {
		t.Errorf("Figure 6 digest changed: got %s, want %s\nrows:\n%s",
			got, goldenFigure6Digest, strings.Join(lines, "\n"))
	}
}

// digestStats digests every field of a run's statistics — all per-node
// counters plus the machine-wide traffic — so any divergence anywhere
// in the simulation shows up.
func digestStats(st *prefetchsim.Stats) string {
	var lines []string
	for i := range st.Nodes {
		lines = append(lines, fmt.Sprintf("node%d %+v", i, st.Nodes[i]))
	}
	lines = append(lines, fmt.Sprintf("machine msgs=%d flits=%d flithops=%d exec=%d",
		st.NetMessages, st.NetFlits, st.NetFlitHops, st.ExecTime))
	return digestLines(lines)
}

func TestGoldenSequentialConsistencyDigest(t *testing.T) {
	res, err := prefetchsim.Run(prefetchsim.Config{
		App: "matmul", Scheme: prefetchsim.Seq, Processors: 4, Seed: 12345,
		SequentialConsistency: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := digestStats(res.Stats); got != goldenSCDigest {
		t.Errorf("sequential-consistency digest changed: got %s, want %s\nstats:\n%s",
			got, goldenSCDigest, res.Stats)
	}
}

func TestGoldenDDetectionDigest(t *testing.T) {
	res, err := prefetchsim.Run(prefetchsim.Config{
		App: "matmul", Scheme: prefetchsim.DDet, Processors: 4, Seed: 12345,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := digestStats(res.Stats); got != goldenDDetDigest {
		t.Errorf("D-detection digest changed: got %s, want %s\nstats:\n%s",
			got, goldenDDetDigest, res.Stats)
	}
}

func TestGoldenZooDigests(t *testing.T) {
	for _, s := range prefetchsim.ZooSchemes() {
		s := s
		t.Run(string(s), func(t *testing.T) {
			want, ok := goldenZooDigests[s]
			if !ok {
				t.Fatalf("no golden digest pinned for zoo scheme %s", s)
			}
			res, err := prefetchsim.Run(prefetchsim.Config{
				App: "listchase", Scheme: s, Processors: 4, Seed: 12345,
				SLCBytes: prefetchsim.FiniteSLCBytes,
			})
			if err != nil {
				t.Fatal(err)
			}
			if got := digestStats(res.Stats); got != want {
				t.Errorf("%s digest changed: got %s, want %s\nstats:\n%s",
					s, got, want, res.Stats)
			}
		})
	}
}

func TestGoldenTable2Digest(t *testing.T) {
	rows, err := prefetchsim.Table2(goldenOpts())
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	for _, r := range rows {
		parts := []string{r.App, f(r.ReplacementFrac), f(r.InStrideFrac), f(r.AvgSeqLen)}
		for _, s := range r.Dominant {
			parts = append(parts, fmt.Sprintf("%d:%s", s.Stride, f(s.Share)))
		}
		lines = append(lines, strings.Join(parts, ","))
	}
	if got := digestLines(lines); got != goldenTable2Digest {
		t.Errorf("Table 2 digest changed: got %s, want %s\nrows:\n%s",
			got, goldenTable2Digest, strings.Join(lines, "\n"))
	}
}
