package prefetchsim_test

// Differential test for the batched streaming path (PR 3): the machine
// detects streams that implement trace.BatchStream and runs its fused
// batch fast path over them; wrapping the very same streams in
// trace.PerOp hides the batch interface and forces the legacy
// one-interface-call-per-op path. Both paths must produce bit-identical
// simulations — every per-node counter, the network totals, and the
// formatted report.

import (
	"reflect"
	"testing"

	"prefetchsim"
	"prefetchsim/internal/trace"
)

// perOp rebuilds prog with every stream wrapped in trace.PerOp, hiding
// NextBatch/Recycle from the machine.
func perOp(prog *prefetchsim.Program) *prefetchsim.Program {
	wrapped := &prefetchsim.Program{Name: prog.Name}
	for _, s := range prog.Streams {
		wrapped.Streams = append(wrapped.Streams, trace.PerOp{S: s})
	}
	return wrapped
}

func TestBatchedMatchesPerOpStream(t *testing.T) {
	// matmul streams from a goroutine-free state machine (FuncStream),
	// mp3d from a producer goroutine (ChanStream): the two BatchStream
	// implementations the apps use. The pointer kernels pair each zoo
	// scheme with the workload it targets, under the finite SLC where
	// those schemes actually fire (Markov additionally exercises the
	// page-crossing emit path on both stream paths).
	cases := []struct {
		app    string
		scheme prefetchsim.Scheme
		slc    int
	}{
		{"matmul", prefetchsim.Seq, 0},
		{"mp3d", prefetchsim.Seq, 0},
		{"listchase", prefetchsim.Markov, prefetchsim.FiniteSLCBytes},
		{"hashjoin", prefetchsim.Perceptron, prefetchsim.FiniteSLCBytes},
		{"bfs", prefetchsim.BestOff, prefetchsim.FiniteSLCBytes},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.app, func(t *testing.T) {
			run := func(wrap bool) *prefetchsim.Result {
				t.Helper()
				prog, err := prefetchsim.BuildApp(tc.app, prefetchsim.Params{Procs: 4, Seed: 12345})
				if err != nil {
					t.Fatal(err)
				}
				if wrap {
					prog = perOp(prog)
				}
				res, err := prefetchsim.Run(prefetchsim.Config{
					Program: prog, Scheme: tc.scheme, Processors: 4, Seed: 12345,
					SLCBytes: tc.slc,
				})
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			batched, legacy := run(false), run(true)
			if !reflect.DeepEqual(batched.Stats, legacy.Stats) {
				t.Errorf("batched stats differ from per-op stats:\nbatched: %+v\nper-op:  %+v",
					batched.Stats, legacy.Stats)
			}
			if b, l := digestStats(batched.Stats), digestStats(legacy.Stats); b != l {
				t.Errorf("stat digests differ: batched %s, per-op %s", b, l)
			}
			if b, l := batched.Stats.String(), legacy.Stats.String(); b != l {
				t.Errorf("formatted reports differ:\nbatched:\n%s\nper-op:\n%s", b, l)
			}
		})
	}
}
