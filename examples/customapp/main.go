// Customapp shows how to plug your own parallel workload into the
// simulator through the public API: allocate shared structures in a
// simulated address space, emit each processor's loads, stores, locks
// and barriers from a generator function, and run the result under any
// prefetching scheme.
//
// The workload here is a producer/consumer pipeline: each processor
// fills a block-strided ring of records and then consumes its left
// neighbour's ring — a pattern with a detectable record-size stride and
// enough sharing to exercise the coherence protocol and locks.
package main

import (
	"fmt"
	"log"

	"prefetchsim"
)

const (
	procs    = 4
	records  = 512
	recBytes = 96 // 3 blocks: a detectable stride of 3
	rounds   = 6
)

func pipeline() *prefetchsim.Program {
	space := prefetchsim.NewSpace()
	rings := make([]prefetchsim.Array, procs)
	for i := range rings {
		rings[i] = prefetchsim.NewArray(space, records, recBytes, recBytes)
	}
	locks := prefetchsim.NewArray(space, procs, 32, 32)

	const (
		pcFill    prefetchsim.PC = 1
		pcConsume prefetchsim.PC = 2
		pcCheck   prefetchsim.PC = 3
	)

	return prefetchsim.NewProgram("pipeline", procs, func(p int, g *prefetchsim.Gen) {
		left := (p + procs - 1) % procs
		for round := 0; round < rounds; round++ {
			// Produce: fill my ring (private after the first round).
			g.Lock(locks.Elem(p))
			for r := 0; r < records; r++ {
				g.Write(pcFill, rings[p].At(r, 0), 2)
				g.Write(pcFill, rings[p].At(r, 8), 2)
			}
			g.Unlock(locks.Elem(p))
			g.Barrier()

			// Consume the left neighbour's ring: reads stride by the
			// record size (3 blocks), freshly dirtied every round.
			g.Lock(locks.Elem(left))
			for r := 0; r < records; r++ {
				g.Read(pcConsume, rings[left].At(r, 0), 2)
				g.Read(pcCheck, rings[left].At(r, 8), 4)
			}
			g.Unlock(locks.Elem(left))
			g.Barrier()
		}
	})
}

func main() {
	base, err := prefetchsim.Run(prefetchsim.Config{
		Program:                pipeline(),
		Processors:             procs,
		CollectCharacteristics: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("custom pipeline workload, baseline:")
	fmt.Printf("  %d read misses; %.0f%% in stride sequences; dominant stride %d blocks\n",
		base.Stats.TotalReadMisses(),
		100*base.Chars.FracInSequences(),
		base.Chars.Dominant().Stride)

	for _, scheme := range []prefetchsim.Scheme{prefetchsim.Seq, prefetchsim.IDet} {
		res, err := prefetchsim.Run(prefetchsim.Config{
			Program:    pipeline(),
			Processors: procs,
			Scheme:     scheme,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-5s: misses %5.1f%% of baseline, read stall %5.1f%%\n",
			scheme,
			100*float64(res.Stats.TotalReadMisses())/float64(base.Stats.TotalReadMisses()),
			100*float64(res.Stats.TotalReadStall())/float64(base.Stats.TotalReadStall()))
	}
}
