// Matmul recreates the paper's §3.1 motivating example: the matrix
// multiplication C = A·B whose inner loop reads A with a stride of one
// element and B with a stride of one row (Figure 2 of the paper). It
// builds the workload with the public custom-program API, runs it under
// each scheme, and shows how the characteristics analysis detects the
// two stride sequences.
package main

import (
	"fmt"
	"log"

	"prefetchsim"
)

const (
	l, m, n = 48, 48, 48 // C[L,M] = A[L,N] · B[N,M]
	procs   = 4
	word    = 8
)

// program builds the multiply with rows of C distributed round-robin.
func program() *prefetchsim.Program {
	space := prefetchsim.NewSpace()
	a := prefetchsim.NewArray(space, l, n*word, 0)
	b := prefetchsim.NewArray(space, n, m*word, 0)
	c := prefetchsim.NewArray(space, l, m*word, 0)

	const (
		pcA prefetchsim.PC = 1 // A[i,k]: stride one element
		pcB prefetchsim.PC = 2 // B[k,j]: stride one row
		pcC prefetchsim.PC = 3
	)

	return prefetchsim.NewProgram("matmul", procs, func(p int, g *prefetchsim.Gen) {
		for i := p; i < l; i += procs {
			for j := 0; j < m; j++ {
				for k := 0; k < n; k++ {
					g.Read(pcA, a.At(i, k*word), 1)
					g.Read(pcB, b.At(k, j*word), 1)
				}
				g.Write(pcC, c.At(i, j*word), 2)
			}
		}
	})
}

func main() {
	// First: what do the access patterns look like? Run the baseline
	// with the Table 2 analysis attached.
	res, err := prefetchsim.Run(prefetchsim.Config{
		Program:                program(),
		Processors:             procs,
		CollectCharacteristics: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("matrix multiply, baseline:")
	fmt.Printf("  read misses (processor 0):   %d\n", res.Chars.TotalMisses)
	fmt.Printf("  within stride sequences:     %.0f%%\n", 100*res.Chars.FracInSequences())
	for _, s := range res.Chars.Strides() {
		if s.Share < 0.02 {
			break
		}
		fmt.Printf("  stride %3d blocks: %5.1f%%  (%s)\n", s.Stride, 100*s.Share,
			map[bool]string{true: "B[k,j]: one matrix row", false: "A[i,k]: consecutive blocks"}[s.Stride > 1])
	}

	baseMisses := res.Stats.TotalReadMisses()
	fmt.Println("\nprefetching schemes across degrees of prefetching:")
	for _, scheme := range []prefetchsim.Scheme{
		prefetchsim.IDet, prefetchsim.DDet, prefetchsim.Seq,
	} {
		for _, d := range []int{1, 2, 4} {
			r, err := prefetchsim.Run(prefetchsim.Config{
				Program:    program(),
				Processors: procs,
				Scheme:     scheme,
				Degree:     d,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-6s d=%d  misses %5.1f%% of baseline, efficiency %5.1f%%\n",
				scheme, d,
				100*float64(r.Stats.TotalReadMisses())/float64(baseMisses),
				100*r.Stats.PrefetchEfficiency())
		}
	}
	fmt.Println("\nTwo effects worth noticing. Sequential prefetching wins even at d=1:")
	fmt.Println("a miss on one of B's blocks prefetches its successor, which the inner")
	fmt.Println("product consumes a few j-iterations later — plenty of lookahead. The")
	fmt.Println("stride detectors predict B's row-length stride correctly (their")
	fmt.Println("efficiency is ~97%) but at d=1 the prefetch lands one ~30-pclock")
	fmt.Println("iteration ahead of a much larger miss latency, so it only hides part")
	fmt.Println("of each stall; raising d buys them the missing lookahead. This is the")
	fmt.Println("timeliness trade-off behind the lookahead-PC discussion in §6 of the")
	fmt.Println("paper.")
}
