// Quickstart: run one of the paper's applications under each
// prefetching scheme and print the headline numbers of Figure 6 — read
// misses and read stall time relative to the baseline architecture,
// and prefetch efficiency.
package main

import (
	"fmt"
	"log"

	"prefetchsim"
)

func main() {
	// A smaller machine than the paper's 16 processors keeps the
	// quickstart fast; cmd/figure6 runs the full configuration.
	const procs = 4

	base, err := prefetchsim.Run(prefetchsim.Config{
		App:        "mp3d",
		Scheme:     prefetchsim.Baseline,
		Processors: procs,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MP3D baseline: %d read misses, %d pclocks read stall\n\n",
		base.Stats.TotalReadMisses(), base.Stats.TotalReadStall())

	for _, scheme := range []prefetchsim.Scheme{
		prefetchsim.IDet, prefetchsim.DDet, prefetchsim.Seq,
	} {
		res, err := prefetchsim.Run(prefetchsim.Config{
			App:        "mp3d",
			Scheme:     scheme,
			Degree:     1,
			Processors: procs,
		})
		if err != nil {
			log.Fatal(err)
		}
		relMiss := float64(res.Stats.TotalReadMisses()) / float64(base.Stats.TotalReadMisses())
		relStall := float64(res.Stats.TotalReadStall()) / float64(base.Stats.TotalReadStall())
		fmt.Printf("%-6s  read misses %5.1f%% of baseline   read stall %5.1f%%   prefetch efficiency %4.1f%%\n",
			scheme, 100*relMiss, 100*relStall, 100*res.Stats.PrefetchEfficiency())
	}

	fmt.Println("\nThe paper's headline: on MP3D, sequential prefetching removes far")
	fmt.Println("more misses than either stride scheme, because most strides are")
	fmt.Println("shorter than a block and the particle records have spatial locality.")
}
