// Comparison reproduces one column of the paper's Figure 6 end to end:
// it runs a chosen application under the baseline and all three
// prefetching schemes (plus the adaptive extension), under both the
// infinite SLC and the finite 16 KB SLC of §5.3, and prints the three
// panels — relative read misses, prefetch efficiency and relative read
// stall time — together with the network traffic the §5.2 discussion
// highlights.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"prefetchsim"
)

func main() {
	app := flag.String("app", "ocean", "application: "+strings.Join(prefetchsim.Apps(), ", "))
	procs := flag.Int("procs", 4, "processor count (16 = paper)")
	flag.Parse()

	for _, slc := range []int{0, prefetchsim.FiniteSLCBytes} {
		if slc == 0 {
			fmt.Printf("=== %s, infinite SLC ===\n", *app)
		} else {
			fmt.Printf("\n=== %s, finite %d-byte SLC (§5.3) ===\n", *app, slc)
		}
		base, err := prefetchsim.Run(prefetchsim.Config{
			App: *app, Scheme: prefetchsim.Baseline, Processors: *procs, SLCBytes: slc,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("baseline: %d misses, %d pclocks stall, %d flit-hops\n",
			base.Stats.TotalReadMisses(), base.Stats.TotalReadStall(), base.Stats.NetFlitHops)

		schemes := append(prefetchsim.Schemes(), prefetchsim.Adaptive)
		for _, scheme := range schemes {
			res, err := prefetchsim.Run(prefetchsim.Config{
				App: *app, Scheme: scheme, Degree: 1, Processors: *procs, SLCBytes: slc,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-9s misses %5.1f%%  efficiency %5.1f%%  stall %5.1f%%  traffic %5.1f%%\n",
				scheme,
				pct(res.Stats.TotalReadMisses(), base.Stats.TotalReadMisses()),
				100*res.Stats.PrefetchEfficiency(),
				pct(int64(res.Stats.TotalReadStall()), int64(base.Stats.TotalReadStall())),
				pct(res.Stats.NetFlitHops, base.Stats.NetFlitHops))
		}
	}
	fmt.Println("\nOn Ocean the large (65-block) strides favour the stride detectors;")
	fmt.Println("sequential prefetching pays for its useless prefetches in traffic.")
}

func pct(v, base int64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * float64(v) / float64(base)
}
