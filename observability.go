package prefetchsim

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"prefetchsim/internal/obs"
)

// Observability re-exports (internal/obs): metric snapshots, event
// tracing and per-run provenance manifests. Collection is opt-in per
// Config; the simulation's instruments themselves are always on and
// allocation-free.
type (
	// MetricsSnapshot is a flat, name-sorted rendering of every
	// instrument of a run ("engine.events", "node3.miss.cold", ...).
	MetricsSnapshot = obs.Snapshot
	// MetricSample is one named value of a MetricsSnapshot.
	MetricSample = obs.Sample
	// TraceConfig configures event tracing for one run.
	TraceConfig = obs.TraceConfig
	// TraceSummary reports what a run's tracer saw and kept.
	TraceSummary = obs.TraceSummary
	// Manifest is the provenance record of one run.
	Manifest = obs.Manifest
	// SweepManifest aggregates the manifests of one experiment sweep.
	SweepManifest = obs.SweepManifest
	// RunConfig is the manifest's flat view of a Config.
	RunConfig = obs.RunConfig
)

// ManifestSchemaVersion is the manifest document version this build
// writes (and the only one it reads).
const ManifestSchemaVersion = obs.ManifestSchema

// DigestRows is the canonical SHA-256 digest of a sweep's rendered
// result rows (newline-terminated lines, as in StatsDigest).
func DigestRows(rows []string) string { return obs.DigestStrings(rows) }

func goVersion() string { return runtime.Version() }

func gitSHA() string { return obs.GitSHA(".") }

// ReadManifestFile loads a run manifest written by Manifest.WriteFile,
// rejecting unknown schema versions.
func ReadManifestFile(path string) (*Manifest, error) { return obs.ReadManifestFile(path) }

// DecodeManifest parses one run manifest document.
func DecodeManifest(r io.Reader) (*Manifest, error) { return obs.DecodeManifest(r) }

// DecodeSweepManifest parses one sweep manifest document.
func DecodeSweepManifest(r io.Reader) (*SweepManifest, error) { return obs.DecodeSweepManifest(r) }

// StatsDigest renders the canonical SHA-256 digest of every statistic
// of a run — the same per-node line format the golden determinism
// tests pin, so a manifest's digest is directly comparable across
// commits and machines.
func StatsDigest(st *Stats) string {
	lines := make([]string, 0, len(st.Nodes)+1)
	for i := range st.Nodes {
		lines = append(lines, fmt.Sprintf("node%d %+v", i, st.Nodes[i]))
	}
	lines = append(lines, fmt.Sprintf("machine msgs=%d flits=%d flithops=%d exec=%d",
		st.NetMessages, st.NetFlits, st.NetFlitHops, st.ExecTime))
	return obs.DigestStrings(lines)
}

// runConfig renders c (already defaulted) as a manifest config record
// for a run of app.
func (c Config) runConfig(app string) RunConfig {
	return RunConfig{
		App:                   app,
		Scheme:                string(c.Scheme),
		Degree:                c.Degree,
		Processors:            c.Processors,
		SLCBytes:              c.SLCBytes,
		SLCWays:               c.SLCWays,
		Scale:                 c.Scale,
		Seed:                  c.Seed,
		SequentialConsistency: c.SequentialConsistency,
		BandwidthFactor:       c.BandwidthFactor,
	}
}

// NewManifest builds the provenance record of a completed run: the
// effective configuration, toolchain and source revision, wall and
// virtual time, the canonical stats digest, and — when the run
// collected them — machine-wide metric totals and the trace summary.
func NewManifest(cfg Config, res *Result, wall time.Duration) *Manifest {
	cfg = cfg.withDefaults()
	// Config.App is the reproducible identifier; a custom Program has
	// none, so its display name stands in.
	app := cfg.App
	if app == "" {
		app = res.App
	}
	m := &Manifest{
		Schema:        ManifestSchemaVersion,
		GoVersion:     goVersion(),
		GitSHA:        gitSHA(),
		CreatedUnixNS: time.Now().UnixNano(),
		Config:        cfg.runConfig(app),
		WallNS:        wall.Nanoseconds(),
		VirtualTime:   int64(res.Stats.ExecTime),
		StatsDigest:   StatsDigest(res.Stats),
		Trace:         res.TraceStats,
	}
	if len(res.Metrics) > 0 {
		m.Metrics = res.Metrics.Totals()
	}
	return m
}
