package prefetchsim

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"prefetchsim/internal/obs"
)

// Observability re-exports (internal/obs): metric snapshots, event
// tracing and per-run provenance manifests. Collection is opt-in per
// Config; the simulation's instruments themselves are always on and
// allocation-free.
type (
	// MetricsSnapshot is a flat, name-sorted rendering of every
	// instrument of a run ("engine.events", "node3.miss.cold", ...).
	MetricsSnapshot = obs.Snapshot
	// MetricSample is one named value of a MetricsSnapshot.
	MetricSample = obs.Sample
	// TraceConfig configures event tracing for one run.
	TraceConfig = obs.TraceConfig
	// TraceSummary reports what a run's tracer saw and kept.
	TraceSummary = obs.TraceSummary
	// Manifest is the provenance record of one run.
	Manifest = obs.Manifest
	// SweepManifest aggregates the manifests of one experiment sweep.
	SweepManifest = obs.SweepManifest
	// RunConfig is the manifest's flat view of a Config.
	RunConfig = obs.RunConfig
	// SpanConfig configures transaction-span recording for one run.
	SpanConfig = obs.SpanConfig
	// Span is one completed transaction or stall lifecycle record.
	Span = obs.Span
	// SpanClass classifies a span (miss.cold, prefetch.late, ...).
	SpanClass = obs.SpanClass
	// SpanStats is the exact per-class span aggregate of one run.
	SpanStats = obs.SpanStats
	// SpanClassStats is one class's aggregate within a SpanStats.
	SpanClassStats = obs.SpanClassStats
	// SpanSummary is the manifest view of a span recording.
	SpanSummary = obs.SpanSummary
	// TimelineConfig configures windowed time-series collection.
	TimelineConfig = obs.TimelineConfig
	// TimePoint is one timeline window of instrument deltas.
	TimePoint = obs.TimePoint
	// TimelineSummary is the manifest view of a timeline recording.
	TimelineSummary = obs.TimelineSummary
)

// ManifestSchemaVersion is the manifest document version this build
// writes (and the only one it reads).
const ManifestSchemaVersion = obs.ManifestSchema

// NumSpanClasses bounds per-class span arrays (see SpanClass).
const NumSpanClasses = obs.NumSpanClasses

// Span classes (see the obs package for their exact semantics): the
// read-stall classes (misses, late prefetches, SLC hits), the
// write-stall classes (write buffer, sequential consistency), the
// sync-stall classes (acquire, barrier, release), plus ownership
// transactions and timely prefetches, which charge no stall.
const (
	SpanMissCold        = obs.SpanMissCold
	SpanMissCoherence   = obs.SpanMissCoherence
	SpanMissReplacement = obs.SpanMissReplacement
	SpanWrite           = obs.SpanWrite
	SpanPrefetch        = obs.SpanPrefetch
	SpanPrefetchLate    = obs.SpanPrefetchLate
	SpanSLCHit          = obs.SpanSLCHit
	SpanFLWB            = obs.SpanFLWB
	SpanSCWrite         = obs.SpanSCWrite
	SpanAcquire         = obs.SpanAcquire
	SpanBarrier         = obs.SpanBarrier
	SpanRelease         = obs.SpanRelease
)

// DigestRows is the canonical SHA-256 digest of a sweep's rendered
// result rows (newline-terminated lines, as in StatsDigest).
func DigestRows(rows []string) string { return obs.DigestStrings(rows) }

func goVersion() string { return runtime.Version() }

// gitSHA is the repository revision, memoized process-wide by obs
// (sweeps record one manifest per run, so the .git walk must not
// repeat per row; prefetchd's build info shares the same memo).
func gitSHA() string { return obs.RepoSHA() }

// ReadManifestFile loads a run manifest written by Manifest.WriteFile,
// rejecting unknown schema versions.
func ReadManifestFile(path string) (*Manifest, error) { return obs.ReadManifestFile(path) }

// DecodeManifest parses one run manifest document.
func DecodeManifest(r io.Reader) (*Manifest, error) { return obs.DecodeManifest(r) }

// DecodeSweepManifest parses one sweep manifest document.
func DecodeSweepManifest(r io.Reader) (*SweepManifest, error) { return obs.DecodeSweepManifest(r) }

// StatsLines renders the canonical per-node and machine-wide statistic
// lines of a run — the exact lines StatsDigest hashes. They are the
// byte-stable "rows" of a single simulation: what prefetchd streams
// (and caches) for a single-run job.
func StatsLines(st *Stats) []string {
	lines := make([]string, 0, len(st.Nodes)+1)
	for i := range st.Nodes {
		lines = append(lines, fmt.Sprintf("node%d %+v", i, st.Nodes[i]))
	}
	lines = append(lines, fmt.Sprintf("machine msgs=%d flits=%d flithops=%d exec=%d",
		st.NetMessages, st.NetFlits, st.NetFlitHops, st.ExecTime))
	return lines
}

// StatsDigest renders the canonical SHA-256 digest of every statistic
// of a run — the same per-node line format the golden determinism
// tests pin, so a manifest's digest is directly comparable across
// commits and machines.
func StatsDigest(st *Stats) string {
	return obs.DigestStrings(StatsLines(st))
}

// ConfigDigest is the content address of a configuration: the digest
// of its manifest RunConfig (every scalar knob including the seed).
// Two configs with equal digests produce byte-identical statistics;
// prefetchd's result cache is keyed by it.
func ConfigDigest(cfg Config) string {
	cfg = cfg.withDefaults()
	app := cfg.App
	return cfg.runConfig(app).Digest()
}

// runConfig renders c (already defaulted) as a manifest config record
// for a run of app.
func (c Config) runConfig(app string) RunConfig {
	return RunConfig{
		App:                   app,
		Scheme:                string(c.Scheme),
		Degree:                c.Degree,
		Processors:            c.Processors,
		SLCBytes:              c.SLCBytes,
		SLCWays:               c.SLCWays,
		Scale:                 c.Scale,
		Seed:                  c.Seed,
		SequentialConsistency: c.SequentialConsistency,
		BandwidthFactor:       c.BandwidthFactor,
	}
}

// NewManifest builds the provenance record of a completed run: the
// effective configuration, toolchain and source revision, wall and
// virtual time, the canonical stats digest, and — when the run
// collected them — machine-wide metric totals and the trace summary.
func NewManifest(cfg Config, res *Result, wall time.Duration) *Manifest {
	cfg = cfg.withDefaults()
	// Config.App is the reproducible identifier; a custom Program has
	// none, so its display name stands in.
	app := cfg.App
	if app == "" {
		app = res.App
	}
	rc := cfg.runConfig(app)
	m := &Manifest{
		Schema:        ManifestSchemaVersion,
		GoVersion:     goVersion(),
		GitSHA:        gitSHA(),
		CreatedUnixNS: time.Now().UnixNano(),
		Config:        rc,
		ConfigDigest:  rc.Digest(),
		WallNS:        wall.Nanoseconds(),
		VirtualTime:   int64(res.Stats.ExecTime),
		StatsDigest:   StatsDigest(res.Stats),
		Trace:         res.TraceStats,
	}
	if len(res.Metrics) > 0 {
		m.Metrics = res.Metrics.Totals()
	}
	if res.Spans != nil && res.SpanTrace != nil {
		m.Spans = obs.SummarizeSpanStats(res.Spans, *res.SpanTrace)
	}
	if cfg.Timeline != nil && len(res.Timeline) > 0 {
		m.Timeline = &TimelineSummary{WindowPclocks: cfg.Timeline.Window, Points: len(res.Timeline)}
	}
	return m
}
