package prefetchsim

import (
	"context"
	"fmt"
	"strings"
	"time"

	"prefetchsim/internal/analysis"
	"prefetchsim/internal/machine"
	"prefetchsim/internal/runner"
)

// This file regenerates the paper's evaluation artifacts: Table 2
// (application characteristics, infinite SLC), Table 3 (finite 16 KB
// SLC), Table 4 (larger data sets) and Figure 6 (read misses, prefetch
// efficiency and read stall time for I-det, D-det and Seq relative to
// the baseline), plus the ablations discussed in §5.4/§6.
//
// Every sweep fans its independent simulations across ExpOptions.Workers
// goroutines through internal/runner. Rows come back in the same order
// as a serial sweep, a failed configuration reports its error without
// killing the rest, and the shared baseline run of each relative-metric
// sweep executes once per (app, machine) tuple instead of once per
// scheme.

// FiniteSLCBytes is the §5.3 finite second-level cache size.
const FiniteSLCBytes = 16384

// ExpOptions parameterize an experiment sweep.
type ExpOptions struct {
	// Ctx, when non-nil, bounds the sweep: once it ends, simulations
	// not yet started are skipped (their jobs fail with ctx.Err()) while
	// in-flight ones run to completion. Nil means no cancellation — the
	// sweep always runs to the end. A job server uses this to cancel
	// queued work without tearing the process down.
	Ctx context.Context
	// Procs is the machine size (default 16, the paper's).
	Procs int
	// Scale multiplies data-set sizes (default 1 = the paper's inputs).
	Scale int
	// Apps restricts the sweep (default: all six, paper order).
	Apps []string
	// Seed perturbs workload randomness.
	Seed uint64
	// Workers bounds how many simulations run concurrently: 0 means
	// GOMAXPROCS, 1 forces the serial reference path. Results are
	// identical either way.
	Workers int
	// Progress, when non-nil, is called after each sweep job completes
	// with the number done and the job total. Calls are serialized and
	// done is strictly increasing.
	Progress func(done, total int)
	// OnRow, when non-nil, streams each finished row (in completion
	// order, serialized) as the sweep executes, before the full row
	// slice is returned. Rows of failed jobs are not streamed.
	OnRow func(done, total int, row fmt.Stringer)
	// OnRowIndexed is OnRow with the row's submission index: callers
	// that must re-emit rows in deterministic submission order (the job
	// server streams the contiguous completed prefix) need to know
	// which row landed, not just how many. Same serialization contract
	// as OnRow.
	OnRowIndexed func(i, total int, row fmt.Stringer)
	// Record, when non-nil, collects one provenance manifest — config,
	// wall and virtual time, stats digest, metric totals — per
	// simulation the sweep executes (including shared baselines, once
	// each). See ManifestRecorder.
	Record *ManifestRecorder
}

// ctx resolves the sweep's cancellation context (nil = never ends).
func (o ExpOptions) ctx() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

func (o ExpOptions) withDefaults() ExpOptions {
	if o.Procs == 0 {
		o.Procs = 16
	}
	if o.Scale == 0 {
		o.Scale = 1
	}
	if len(o.Apps) == 0 {
		o.Apps = Apps()
	}
	return o
}

// run executes one simulation of a sweep. With a manifest recorder
// attached it forces metric collection and records the run's
// provenance; results are identical either way.
func (o ExpOptions) run(cfg Config) (*Result, error) {
	if o.Record == nil {
		return Run(cfg)
	}
	cfg.CollectMetrics = true
	start := time.Now()
	res, err := Run(cfg)
	if err != nil {
		return nil, err
	}
	o.Record.record(cfg, res, time.Since(start))
	return res, nil
}

// mapRows fans a sweep's jobs across the worker pool and streams every
// finished row to OnRow (and the count to Progress) as it lands, then
// gathers the submission-ordered rows. A cancelled ExpOptions.Ctx
// skips the jobs not yet started.
func mapRows[J any, R fmt.Stringer](o ExpOptions, jobs []J, fn func(i int, j J) (R, error)) ([]R, error) {
	var each func(done, total, i int, r R, err error)
	if o.Progress != nil || o.OnRow != nil || o.OnRowIndexed != nil {
		each = func(done, total, i int, r R, err error) {
			if o.OnRow != nil && err == nil {
				o.OnRow(done, total, r)
			}
			if o.OnRowIndexed != nil && err == nil {
				o.OnRowIndexed(i, total, r)
			}
			if o.Progress != nil {
				o.Progress(done, total)
			}
		}
	}
	rows, errs := runner.MapEachCtx(o.ctx(), o.Workers, jobs,
		func(_ context.Context, i int, j J) (R, error) { return fn(i, j) }, each)
	return gather(rows, errs)
}

// CharRow is one application's column of Table 2 or Table 3.
type CharRow struct {
	App string
	// ReplacementFrac is the fraction of read misses that are
	// replacement misses (Table 3's extra row; 0 under an infinite SLC).
	ReplacementFrac float64
	// InStrideFrac is "read misses within stride sequences".
	InStrideFrac float64
	// AvgSeqLen is the average stride-sequence length in block
	// references.
	AvgSeqLen float64
	// Dominant lists the top strides (blocks) by share.
	Dominant []StrideShare
}

func (r CharRow) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-9s repl %4.0f%%  in-stride %5.1f%%  avg-len %5.1f ",
		r.App, 100*r.ReplacementFrac, 100*r.InStrideFrac, r.AvgSeqLen)
	for i, s := range r.Dominant {
		if i == 2 {
			break
		}
		fmt.Fprintf(&b, " stride %d (%.0f%%)", s.Stride, 100*s.Share)
	}
	return b.String()
}

// charRow runs one application on the baseline machine and analyzes
// processor 0's miss stream.
func charRow(app string, slcBytes int, o ExpOptions) (CharRow, error) {
	res, err := o.run(Config{
		App: app, Scheme: Baseline, Processors: o.Procs, Scale: o.Scale,
		Seed: o.Seed, SLCBytes: slcBytes, CollectCharacteristics: true,
	})
	if err != nil {
		return CharRow{}, err
	}
	row := CharRow{
		App:          app,
		InStrideFrac: res.Chars.FracInSequences(),
		AvgSeqLen:    res.Chars.AvgSeqLen(),
		Dominant:     res.Chars.Strides(),
	}
	if misses := res.Stats.TotalReadMisses(); misses > 0 {
		var repl int64
		for i := range res.Stats.Nodes {
			repl += res.Stats.Nodes[i].ReplacementMisses
		}
		row.ReplacementFrac = float64(repl) / float64(misses)
	}
	return row, nil
}

// charTable runs one characteristics column per application in
// parallel. Rows of failed applications are dropped; their errors come
// back joined, alongside the successful rows.
func charTable(o ExpOptions, slcBytes int) ([]CharRow, error) {
	o = o.withDefaults()
	return mapRows(o, o.Apps, func(_ int, app string) (CharRow, error) {
		return charRow(app, slcBytes, o)
	})
}

// Table2 reproduces the paper's Table 2: application characteristics
// under an infinitely large SLC.
func Table2(o ExpOptions) ([]CharRow, error) {
	return charTable(o, 0)
}

// Table3 reproduces the paper's Table 3: the same characteristics under
// a finite 16 KB direct-mapped SLC, where replacement misses appear.
func Table3(o ExpOptions) ([]CharRow, error) {
	return charTable(o, FiniteSLCBytes)
}

// TrendRow is one application's column of Table 4: how the key
// characteristics move with a larger data set.
type TrendRow struct {
	App          string
	Small, Large CharRow
	// FracTrend and LenTrend are the paper's qualitative entries:
	// "higher"/"lower"/"about the same" and "longer"/"shorter"/"limited".
	FracTrend string
	LenTrend  string
}

func (r TrendRow) String() string {
	return fmt.Sprintf("%-9s in-stride %5.1f%% → %5.1f%% (%s)   avg-len %5.1f → %5.1f (%s)",
		r.App, 100*r.Small.InStrideFrac, 100*r.Large.InStrideFrac, r.FracTrend,
		r.Small.AvgSeqLen, r.Large.AvgSeqLen, r.LenTrend)
}

func trend(small, large, sameBand float64, up, down, same string) string {
	switch {
	case large > small*(1+sameBand):
		return up
	case large < small*(1-sameBand):
		return down
	default:
		return same
	}
}

// Table4 reproduces the paper's Table 4: expected characteristics for
// larger data sets under an infinite SLC. As in the paper, PTHOR is
// excluded ("because of time limitations for simulations").
func Table4(o ExpOptions) ([]TrendRow, error) {
	o = o.withDefaults()
	var apps []string
	for _, a := range o.Apps {
		if a != "pthor" {
			apps = append(apps, a)
		}
	}
	rows, err := mapRows(o, apps, func(_ int, app string) (TrendRow, error) {
		small, err := charRow(app, 0, o)
		if err != nil {
			return TrendRow{}, err
		}
		ol := o
		ol.Scale = o.Scale + 1
		large, err := charRow(app, 0, ol)
		if err != nil {
			return TrendRow{}, err
		}
		return TrendRow{
			App: app, Small: small, Large: large,
			FracTrend: trend(small.InStrideFrac, large.InStrideFrac, 0.05,
				"higher", "lower", "about the same"),
			LenTrend: trend(small.AvgSeqLen, large.AvgSeqLen, 0.10,
				"longer", "shorter", "limited"),
		}, nil
	})
	return rows, err
}

// Fig6Row is one bar of Figure 6: a scheme's read misses and read stall
// time relative to the baseline, and its prefetch efficiency.
type Fig6Row struct {
	App    string
	Scheme Scheme
	// RelMisses is read misses relative to the baseline (Figure 6 top).
	RelMisses float64
	// Efficiency is useful/issued prefetches (Figure 6 middle).
	Efficiency float64
	// RelStall is read stall time relative to the baseline (Figure 6
	// bottom).
	RelStall float64
	// RelTraffic is network flit-hops relative to the baseline (the
	// §5.2 traffic discussion).
	RelTraffic float64
}

func (r Fig6Row) String() string {
	return fmt.Sprintf("%-9s %-8s misses %5.1f%%  efficiency %5.1f%%  stall %5.1f%%  traffic %5.1f%%",
		r.App, r.Scheme, 100*r.RelMisses, 100*r.Efficiency, 100*r.RelStall, 100*r.RelTraffic)
}

// Figure6 reproduces the paper's Figure 6 for the given schemes
// (default: I-det, D-det, Seq with degree 1, as in the paper).
func Figure6(o ExpOptions, schemes ...Scheme) ([]Fig6Row, error) {
	return figure6(o, 0, schemes...)
}

// Figure6Finite runs the same comparison under the §5.3 finite SLC.
func Figure6Finite(o ExpOptions, schemes ...Scheme) ([]Fig6Row, error) {
	return figure6(o, FiniteSLCBytes, schemes...)
}

func figure6(o ExpOptions, slcBytes int, schemes ...Scheme) ([]Fig6Row, error) {
	o = o.withDefaults()
	if len(schemes) == 0 {
		schemes = Schemes()
	}
	type job struct {
		app    string
		scheme Scheme
	}
	var jobs []job
	for _, app := range o.Apps {
		for _, s := range schemes {
			jobs = append(jobs, job{app, s})
		}
	}
	var base baselineCache
	return mapRows(o, jobs, func(_ int, j job) (Fig6Row, error) {
		baseRes, err := base.get(o, Config{App: j.app, Scheme: Baseline,
			Processors: o.Procs, Scale: o.Scale, Seed: o.Seed, SLCBytes: slcBytes})
		if err != nil {
			return Fig6Row{}, err
		}
		res, err := o.run(Config{App: j.app, Scheme: j.scheme, Degree: 1,
			Processors: o.Procs, Scale: o.Scale, Seed: o.Seed, SLCBytes: slcBytes})
		if err != nil {
			return Fig6Row{}, err
		}
		return fig6Row(j.app, j.scheme, baseRes, res), nil
	})
}

// StallRow is one app×scheme execution-time decomposition: the share
// of aggregate processor time spent busy versus stalled on reads,
// writes and synchronization — the stall split behind Figure 6's bars
// (and the reference cmd/traceview reproduces from span data alone).
type StallRow struct {
	App    string
	Scheme Scheme
	// ExecTime is the machine execution time in pclocks.
	ExecTime int64
	// Busy, Read, Write and Sync are fractions of the summed per-node
	// execution time.
	Busy, Read, Write, Sync float64
}

func (r StallRow) String() string {
	return fmt.Sprintf("%-9s %-8s busy %5.1f%%  read %5.1f%%  write %5.1f%%  sync %5.1f%%  exec %d",
		r.App, r.Scheme, 100*r.Busy, 100*r.Read, 100*r.Write, 100*r.Sync, r.ExecTime)
}

// StallSplit computes one result's execution-time decomposition.
func StallSplit(app string, s Scheme, res *Result) StallRow {
	row := StallRow{App: app, Scheme: s, ExecTime: int64(res.Stats.ExecTime)}
	var exec, read, write, syn int64
	for i := range res.Stats.Nodes {
		n := &res.Stats.Nodes[i]
		exec += int64(n.ExecTime)
		read += int64(n.ReadStall)
		write += int64(n.WriteStall)
		syn += int64(n.SyncStall)
	}
	if exec == 0 {
		return row
	}
	row.Read = float64(read) / float64(exec)
	row.Write = float64(write) / float64(exec)
	row.Sync = float64(syn) / float64(exec)
	row.Busy = 1 - row.Read - row.Write - row.Sync
	return row
}

// StallBreakdown runs one decomposition row per app×scheme (schemes
// default to Baseline plus the Figure 6 schemes, degree 1).
func StallBreakdown(o ExpOptions, schemes ...Scheme) ([]StallRow, error) {
	o = o.withDefaults()
	if len(schemes) == 0 {
		schemes = append([]Scheme{Baseline}, Schemes()...)
	}
	type job struct {
		app    string
		scheme Scheme
	}
	var jobs []job
	for _, app := range o.Apps {
		for _, s := range schemes {
			jobs = append(jobs, job{app, s})
		}
	}
	return mapRows(o, jobs, func(_ int, j job) (StallRow, error) {
		res, err := o.run(Config{App: j.app, Scheme: j.scheme, Degree: 1,
			Processors: o.Procs, Scale: o.Scale, Seed: o.Seed})
		if err != nil {
			return StallRow{}, err
		}
		return StallSplit(j.app, j.scheme, res), nil
	})
}

func fig6Row(app string, s Scheme, base, res *Result) Fig6Row {
	row := Fig6Row{App: app, Scheme: s, Efficiency: res.Stats.PrefetchEfficiency()}
	if bm := base.Stats.TotalReadMisses(); bm > 0 {
		row.RelMisses = float64(res.Stats.TotalReadMisses()) / float64(bm)
	}
	if bs := base.Stats.TotalReadStall(); bs > 0 {
		row.RelStall = float64(res.Stats.TotalReadStall()) / float64(bs)
	}
	if bt := base.Stats.NetFlitHops; bt > 0 {
		row.RelTraffic = float64(res.Stats.NetFlitHops) / float64(bt)
	}
	return row
}

// DegreeSweep runs one application and scheme across prefetch degrees
// (the §6 observation that d makes little difference for this
// prefetching phase).
func DegreeSweep(app string, scheme Scheme, degrees []int, o ExpOptions) ([]Fig6Row, error) {
	o = o.withDefaults()
	var base baselineCache
	return mapRows(o, degrees, func(_ int, d int) (Fig6Row, error) {
		baseRes, err := base.get(o, Config{App: app, Scheme: Baseline,
			Processors: o.Procs, Scale: o.Scale, Seed: o.Seed})
		if err != nil {
			return Fig6Row{}, err
		}
		res, err := o.run(Config{App: app, Scheme: scheme, Degree: d,
			Processors: o.Procs, Scale: o.Scale, Seed: o.Seed})
		if err != nil {
			return Fig6Row{}, err
		}
		return fig6Row(app, Scheme(fmt.Sprintf("%s-d%d", scheme, d)), baseRes, res), nil
	})
}

// SLCSweep runs one application and scheme across finite SLC sizes,
// extending the §5.3 study.
func SLCSweep(app string, scheme Scheme, sizes []int, o ExpOptions) ([]Fig6Row, error) {
	o = o.withDefaults()
	var base baselineCache
	return mapRows(o, sizes, func(_ int, size int) (Fig6Row, error) {
		baseRes, err := base.get(o, Config{App: app, Scheme: Baseline,
			Processors: o.Procs, Scale: o.Scale, Seed: o.Seed, SLCBytes: size})
		if err != nil {
			return Fig6Row{}, err
		}
		res, err := o.run(Config{App: app, Scheme: scheme, Degree: 1,
			Processors: o.Procs, Scale: o.Scale, Seed: o.Seed, SLCBytes: size})
		if err != nil {
			return Fig6Row{}, err
		}
		return fig6Row(app, Scheme(fmt.Sprintf("%s-slc%dK", scheme, size/1024)), baseRes, res), nil
	})
}

// ExtensionCompare runs the §6 extension schemes next to their paper
// counterparts on one application: the lookahead variants (Baer–Chen's
// lookahead-PC, Hagersten's adaptive distance) and the hybrid
// software-assisted scheme.
func ExtensionCompare(app string, o ExpOptions) ([]Fig6Row, error) {
	o.Apps = []string{app}
	return Figure6(o, IDet, IDetLA, DDet, DDetLA, Seq, Hybrid)
}

// ZooCompare runs the modern prefetcher zoo (Markov, Perceptron,
// BestOffset) next to the paper's schemes on one application —
// typically one of the pointer-heavy extras (listchase, hashjoin, bfs)
// the zoo exists for, but any registered workload works. It uses the
// §5.3 finite SLC: correlation prefetching only has work to do when the
// working set exceeds the cache (under an infinite SLC a repeated
// traversal misses exactly once, so there is nothing left to replay).
func ZooCompare(app string, o ExpOptions) ([]Fig6Row, error) {
	o.Apps = []string{app}
	return Figure6Finite(o, append([]Scheme{IDet, DDet, Seq, Adaptive}, ZooSchemes()...)...)
}

// ConsistencyRow is one entry of the consistency ablation.
type ConsistencyRow struct {
	App string
	// RelExecTime is SC execution time relative to RC.
	RelExecTime float64
	// RelWriteStall is SC write stall relative to RC total stall.
	SCWriteStall int64
	RCWriteStall int64
}

func (r ConsistencyRow) String() string {
	return fmt.Sprintf("%-9s exec time under SC %5.1f%% of RC  (write stall %d vs %d pclocks)",
		r.App, 100*r.RelExecTime, r.SCWriteStall, r.RCWriteStall)
}

// ConsistencyCompare quantifies the paper's release-consistency
// assumption ([11]): how much longer each application runs when writes
// block (sequential consistency).
func ConsistencyCompare(o ExpOptions) ([]ConsistencyRow, error) {
	o = o.withDefaults()
	return mapRows(o, o.Apps, func(_ int, app string) (ConsistencyRow, error) {
		rc, err := o.run(Config{App: app, Processors: o.Procs, Scale: o.Scale, Seed: o.Seed})
		if err != nil {
			return ConsistencyRow{}, err
		}
		sc, err := o.run(Config{App: app, Processors: o.Procs, Scale: o.Scale, Seed: o.Seed,
			SequentialConsistency: true})
		if err != nil {
			return ConsistencyRow{}, err
		}
		row := ConsistencyRow{App: app}
		if rc.Stats.ExecTime > 0 {
			row.RelExecTime = float64(sc.Stats.ExecTime) / float64(rc.Stats.ExecTime)
		}
		for i := range sc.Stats.Nodes {
			row.SCWriteStall += int64(sc.Stats.Nodes[i].WriteStall)
			row.RCWriteStall += int64(rc.Stats.Nodes[i].WriteStall)
		}
		return row, nil
	})
}

// BandwidthRow is one entry of the §7 bandwidth-limitation study.
type BandwidthRow struct {
	App    string
	Factor int // bandwidth divisor (1 = the paper's machine)
	// Stall ratios relative to the *same-bandwidth* baseline: the
	// paper's claim is that sequential prefetching's advantage erodes
	// as bandwidth tightens, because of its useless prefetches.
	SeqRelStall    float64
	StrideRelStall float64 // I-det
}

func (r BandwidthRow) String() string {
	return fmt.Sprintf("%-9s bandwidth/%d  read stall vs baseline: Seq %5.1f%%  I-det %5.1f%%",
		r.App, r.Factor, 100*r.SeqRelStall, 100*r.StrideRelStall)
}

// BandwidthSweep tests the paper's closing claim (§7): "because of the
// lower fraction of useless prefetches, stride prefetching can perform
// better than sequential prefetching if the memory-system bandwidth is
// not sufficient". For each bandwidth divisor it runs baseline, Seq and
// I-det at that bandwidth and reports the schemes' stall relative to
// the equally-throttled baseline.
func BandwidthSweep(app string, factors []int, o ExpOptions) ([]BandwidthRow, error) {
	o = o.withDefaults()
	return mapRows(o, factors, func(_ int, f int) (BandwidthRow, error) {
		base, err := o.run(Config{App: app, Processors: o.Procs, Scale: o.Scale,
			Seed: o.Seed, BandwidthFactor: f})
		if err != nil {
			return BandwidthRow{}, err
		}
		row := BandwidthRow{App: app, Factor: f}
		for _, s := range []Scheme{Seq, IDet} {
			res, err := o.run(Config{App: app, Scheme: s, Degree: 1,
				Processors: o.Procs, Scale: o.Scale, Seed: o.Seed, BandwidthFactor: f})
			if err != nil {
				return BandwidthRow{}, err
			}
			rel := 0.0
			if bs := base.Stats.TotalReadStall(); bs > 0 {
				rel = float64(res.Stats.TotalReadStall()) / float64(bs)
			}
			if s == Seq {
				row.SeqRelStall = rel
			} else {
				row.StrideRelStall = rel
			}
		}
		return row, nil
	})
}

// AssocRow is one entry of the associativity ablation.
type AssocRow struct {
	App             string
	Ways            int
	ReplacementFrac float64
	RelMissesVsDM   float64 // total misses vs the direct-mapped run
}

func (r AssocRow) String() string {
	return fmt.Sprintf("%-9s %d-way  replacement misses %5.1f%%  total misses %5.1f%% of direct-mapped",
		r.App, r.Ways, 100*r.ReplacementFrac, 100*r.RelMissesVsDM)
}

// AssocSweep extends §5.3: how much of the finite-SLC replacement-miss
// traffic is conflict (recovered by associativity) rather than capacity.
func AssocSweep(app string, ways []int, o ExpOptions) ([]AssocRow, error) {
	o = o.withDefaults()
	// The runs are independent; only the relative-misses column depends
	// on the first (direct-mapped) run, so normalize after the fan-out.
	results, errs := runner.MapCtx(o.ctx(), o.Workers, ways, func(_ context.Context, _ int, w int) (*Result, error) {
		return o.run(Config{App: app, Processors: o.Procs, Scale: o.Scale,
			Seed: o.Seed, SLCBytes: FiniteSLCBytes, SLCWays: w})
	}, o.Progress)
	var dmMisses int64
	var rows []AssocRow
	for i, res := range results {
		if errs[i] != nil {
			continue
		}
		misses := res.Stats.TotalReadMisses()
		if i == 0 {
			dmMisses = misses
		}
		var repl int64
		for n := range res.Stats.Nodes {
			repl += res.Stats.Nodes[n].ReplacementMisses
		}
		row := AssocRow{App: app, Ways: ways[i]}
		if misses > 0 {
			row.ReplacementFrac = float64(repl) / float64(misses)
		}
		if dmMisses > 0 {
			row.RelMissesVsDM = float64(misses) / float64(dmMisses)
		}
		rows = append(rows, row)
	}
	_, err := gather(results, errs)
	return rows, err
}

// RepresentativenessRow summarizes how much one processor's miss
// characteristics deviate from the machine-wide spread — the check
// behind the paper's §5.1 note that a single processor "has been shown
// to be representative".
type RepresentativenessRow struct {
	App                  string
	MinFrac, MaxFrac     float64 // per-node in-stride fraction range
	Node0Frac            float64
	MinAvgLen, MaxAvgLen float64
	Node0AvgLen          float64
}

func (r RepresentativenessRow) String() string {
	return fmt.Sprintf("%-9s in-stride: node0 %5.1f%% (all nodes %5.1f–%5.1f%%)  avg-len: node0 %5.1f (all %5.1f–%5.1f)",
		r.App, 100*r.Node0Frac, 100*r.MinFrac, 100*r.MaxFrac,
		r.Node0AvgLen, r.MinAvgLen, r.MaxAvgLen)
}

// Representativeness runs the baseline machine collecting every
// processor's miss stream and reports the spread of the Table 2
// metrics across processors.
func Representativeness(app string, o ExpOptions) (RepresentativenessRow, error) {
	o = o.withDefaults()
	prog, err := BuildApp(app, Params{Procs: o.Procs, Scale: o.Scale, Seed: o.Seed})
	if err != nil {
		return RepresentativenessRow{}, err
	}
	defer prog.Stop()

	mcfg := machine.DefaultConfig()
	mcfg.Processors = o.Procs
	col := analysis.NewMultiCollector(o.Procs)
	mcfg.MissObserver = col.Observe
	m, err := machine.New(mcfg, prog)
	if err != nil {
		return RepresentativenessRow{}, err
	}
	if _, err := m.Run(); err != nil {
		return RepresentativenessRow{}, err
	}

	row := RepresentativenessRow{App: app, MinFrac: 2, MinAvgLen: 1 << 30}
	for i, r := range col.Results() {
		frac, l := r.FracInSequences(), r.AvgSeqLen()
		if i == 0 {
			row.Node0Frac, row.Node0AvgLen = frac, l
		}
		if frac < row.MinFrac {
			row.MinFrac = frac
		}
		if frac > row.MaxFrac {
			row.MaxFrac = frac
		}
		if l < row.MinAvgLen {
			row.MinAvgLen = l
		}
		if l > row.MaxAvgLen {
			row.MaxAvgLen = l
		}
	}
	return row, nil
}

// RenderBars draws Figure 6's three panels as ASCII bar charts, one bar
// per (application, scheme), mirroring the paper's presentation.
func RenderBars(rows []Fig6Row) string {
	var b strings.Builder
	panel := func(title string, value func(Fig6Row) float64) {
		fmt.Fprintf(&b, "%s\n", title)
		app := ""
		for _, r := range rows {
			if r.App != app {
				app = r.App
				fmt.Fprintf(&b, "  %s\n", app)
			}
			v := value(r)
			width := int(v*40 + 0.5)
			if width > 60 {
				width = 60
			}
			fmt.Fprintf(&b, "    %-8s %6.1f%% %s\n", r.Scheme, 100*v, strings.Repeat("█", width))
		}
		b.WriteString("\n")
	}
	panel("Read misses relative to baseline", func(r Fig6Row) float64 { return r.RelMisses })
	panel("Prefetch efficiency", func(r Fig6Row) float64 { return r.Efficiency })
	panel("Read stall time relative to baseline", func(r Fig6Row) float64 { return r.RelStall })
	return b.String()
}
