#!/usr/bin/env bash
#
# End-to-end smoke test of the simulation service: build prefetchd and
# prefetchctl, boot the server on an ephemeral port, submit the same
# small Figure-6 job twice, and assert the contract the result cache
# promises:
#
#   - the server reports ready on /readyz before any traffic is sent,
#   - the first submission computes (done line says cache "miss"),
#   - the second is served from the cache (done line says "hit"),
#   - the row lines of both NDJSON transcripts are byte-identical,
#   - the hit is at least 10x faster than the miss (server-side
#     wall_ns, so client startup noise doesn't count),
#   - a /metrics scrape after the hit shows the resultcache hit counter
#     incremented and the runner queue drained back to zero,
#   - SIGTERM drains gracefully and persists the cache index.
#
# Both transcripts and the Prometheus scrape land in the artifact
# directory for offline inspection (CI uploads them).
#
# Usage: scripts/prefetchd_smoke.sh [artifact-dir]
set -euo pipefail

die() { echo "prefetchd_smoke.sh: FAIL: $*" >&2; exit 1; }

cd "$(dirname "$0")/.."
art="${1:-prefetchd-smoke-artifacts}"
mkdir -p "$art"

work="$(mktemp -d)"
server_pid=""
cleanup() {
  [[ -n "$server_pid" ]] && kill "$server_pid" 2>/dev/null || true
  rm -rf "$work"
}
trap cleanup EXIT

echo "== build"
go build -o "$work" ./cmd/prefetchd ./cmd/prefetchctl

echo "== boot"
"$work/prefetchd" -http 127.0.0.1:0 -cache-dir "$work/cache" \
  >"$art/prefetchd.log" 2>&1 &
server_pid=$!

# The server prints its bound address once the listener is up.
addr=""
for _ in $(seq 1 100); do
  addr="$(sed -n 's#^prefetchd: serving on http://##p' "$art/prefetchd.log")"
  [[ -n "$addr" ]] && break
  kill -0 "$server_pid" 2>/dev/null || die "prefetchd exited early: $(cat "$art/prefetchd.log")"
  sleep 0.1
done
[[ -n "$addr" ]] || die "prefetchd never reported its address"
ctl() { "$work/prefetchctl" -addr "$addr" "$@"; }

# Readiness: poll /readyz with a deadline instead of a fixed sleep, so
# the script waits exactly as long as the server needs — and when it
# never comes up, fail loudly with the server log attached.
ready=""
for _ in $(seq 1 100); do
  if curl -fsS "http://$addr/readyz" >/dev/null 2>&1; then ready=1; break; fi
  kill -0 "$server_pid" 2>/dev/null || break
  sleep 0.1
done
if [[ -z "$ready" ]]; then
  echo "---- prefetchd log ----" >&2
  cat "$art/prefetchd.log" >&2
  die "server never became ready on /readyz"
fi
echo "   serving on $addr (ready)"

echo "== build info"
"$work/prefetchd" -version | grep -q '^prefetchd ' || die "-version output malformed"
ctl status | grep -q '"version"' || die "/status lacks the version field"

job=(submit -figure6 -apps lu -schemes Seq -procs 4 -stream)
done_field() { # file field
  grep '"type":"done"' "$1" | sed -n "s/.*\"$2\":\"\{0,1\}\([a-z0-9]*\)\"\{0,1\}.*/\1/p"
}

echo "== first submission (expect miss)"
ctl "${job[@]}" >"$art/run1.ndjson" || die "first submission failed"
cache1="$(done_field "$art/run1.ndjson" cache)"
wall1="$(done_field "$art/run1.ndjson" wall_ns)"
[[ "$cache1" == "miss" ]] || die "first submission: cache '$cache1', want miss"

echo "== second submission (expect hit)"
ctl "${job[@]}" >"$art/run2.ndjson" || die "second submission failed"
cache2="$(done_field "$art/run2.ndjson" cache)"
wall2="$(done_field "$art/run2.ndjson" wall_ns)"
[[ "$cache2" == "hit" ]] || die "second submission: cache '$cache2', want hit"

echo "== byte-identity of the row payload"
grep '"type":"row"' "$art/run1.ndjson" >"$work/rows1"
grep '"type":"row"' "$art/run2.ndjson" >"$work/rows2"
[[ -s "$work/rows1" ]] || die "first transcript has no row lines"
cmp "$work/rows1" "$work/rows2" || die "cached rows differ from the computed rows"

echo "== metrics scrape after the cached submission"
if ! curl -fsS "http://$addr/metrics" >"$art/metrics.prom"; then
  echo "---- prefetchd log ----" >&2
  cat "$art/prefetchd.log" >&2
  die "/metrics scrape failed"
fi
grep -q '^resultcache_hits_total 1$' "$art/metrics.prom" \
  || die "resultcache_hits_total != 1: $(grep '^resultcache_' "$art/metrics.prom" | tr '\n' ' ')"
grep -q '^jobs_cache_hits_total 1$' "$art/metrics.prom" \
  || die "jobs_cache_hits_total != 1"
grep -q '^runner_queue_depth 0$' "$art/metrics.prom" \
  || die "runner queue depth not back to zero after the jobs settled"
grep -q '^# TYPE runner_run_us histogram$' "$art/metrics.prom" \
  || die "runner run-latency histogram missing from the exposition"

echo "== hit must be >=10x faster (miss ${wall1}ns vs hit ${wall2}ns)"
[[ -n "$wall1" && -n "$wall2" && "$wall2" -gt 0 ]] || die "missing wall_ns in done lines"
[[ "$wall1" -ge $((10 * wall2)) ]] || die "cache hit only $((wall1 / wall2))x faster"

echo "== graceful shutdown persists the cache index"
kill -TERM "$server_pid"
wait "$server_pid" || die "prefetchd exited non-zero on SIGTERM"
server_pid=""
grep -q '^prefetchd: stopped$' "$art/prefetchd.log" || die "no clean-stop line in the log"
[[ -f "$work/cache/index.json" ]] || die "cache index.json not persisted"
grep -q '"key": "fig6-' "$work/cache/index.json" || die "persisted index lists no fig6 entry"

echo "PASS: miss ${wall1}ns, hit ${wall2}ns ($((wall1 / wall2))x), rows byte-identical"
