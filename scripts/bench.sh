#!/usr/bin/env bash
#
# Benchmark runner for before/after performance records. Runs the macro
# benchmarks (the full Figure 6 sweep and the raw simulator-throughput
# workload) for one iteration each and the substrate micro-benchmarks
# (event queue, block table, stream consumption, mesh send) at a fixed
# benchtime, then writes one JSON object per benchmark — ns/op, B/op,
# allocs/op — to the output file.
#
# Usage:
#   scripts/bench.sh after.json                  # current tree
#   git stash && scripts/bench.sh base.json && git stash pop
#   scripts/bench.sh after.json base.json merged.json
#                      # also merge base/after into a benchstat-style
#                      # before/after/delta record via cmd/benchdelta
#   scripts/bench.sh -q quick.json               # micro benchmarks only
#
# Environment:
#   BENCH_OUT     output file (overridden by the first positional arg;
#                 default bench_results.json)
#   BENCH_BEFORE  baseline file to merge against (second positional arg)
#   BENCH_MERGED  merged record path (third positional arg;
#                 default bench_delta.json)
#   BENCH_QUICK   non-empty = micro benchmarks only, shorter benchtime —
#                 the subset CI's regression gate runs (same as -q)
#   BENCH_GATE    a committed BENCH_<n>.json record to gate against:
#                 after writing $BENCH_OUT, fail if any micro-benchmark
#                 regressed by more than BENCH_GATE_PCT (default 25)
#                 percent ns/op. The gate refuses to run against a
#                 stale record: if the repo root holds a BENCH_<n>.json
#                 newer (higher n) than $BENCH_GATE, it dies loudly so
#                 CI can't silently keep comparing against history.
#
# The BENCH_<n>.json records in the repo root pair this script's output
# on each PR base with its output after that PR's rework; the newest is
# the gate baseline.
set -euo pipefail

die() { echo "bench.sh: $*" >&2; exit 1; }
for tool in go awk grep; do
  command -v "$tool" >/dev/null 2>&1 || die "required tool '$tool' not found in PATH"
done

cd "$(dirname "$0")/.."

quick="${BENCH_QUICK:-}"
if [[ "${1:-}" == "-q" ]]; then
  quick=1
  shift
fi
out="${1:-${BENCH_OUT:-bench_results.json}}"
before="${2:-${BENCH_BEFORE:-}}"
merged="${3:-${BENCH_MERGED:-bench_delta.json}}"
gate="${BENCH_GATE:-}"
gate_pct="${BENCH_GATE_PCT:-25}"
[[ -z "$before" || -f "$before" ]] || die "baseline file '$before' does not exist"

# newest_record prints the highest-numbered committed BENCH_<n>.json.
newest_record() {
  ls BENCH_[0-9]*.json 2>/dev/null | sort -t_ -k2 -n | tail -1
}

if [[ -n "$gate" ]]; then
  [[ -f "$gate" ]] || die "gate record '$gate' does not exist"
  newest="$(newest_record)"
  [[ "$gate" == "$newest" ]] ||
    die "gate record '$gate' is stale: '$newest' is newer — update the gate (ci.yml) to the latest record"
fi

run() { # pattern package benchtime
  go test -run '^$' -bench "$1" -benchtime "$3" -benchmem "$2" 2>&1 |
    grep -E '^Benchmark' || true
}

bench_all() {
  if [[ -z "$quick" ]]; then
    run 'Figure6Serial|SimulatorThroughput' . 1x
    run 'EngineSchedule' ./internal/sim 2s
    run 'BlockTable|StdlibMap' ./internal/blockmap 2s
    run 'StreamNext' ./internal/trace 2s
    run 'MeshSend' ./internal/network 2s
  else
    # Quick subset: the substrate micro-benchmarks at a shorter
    # benchtime — minutes instead of tens of minutes, enough signal
    # for CI's coarse (>25% ns/op) regression gate.
    run 'EngineSchedule$' ./internal/sim 1s
    run 'BlockTable$|BlockTableHits' ./internal/blockmap 1s
    run 'StreamNext' ./internal/trace 1s
    run 'MeshSend' ./internal/network 1s
  fi
}

rows="$(bench_all)"
[[ -n "$rows" ]] || die "no benchmark output captured (build failure above?)"

printf '%s\n' "$rows" | awk '
BEGIN { print "{"; first = 1 }
{
  name = $1; sub(/-[0-9]+$/, "", name)
  ns = "null"; bytes = "null"; allocs = "null"
  for (i = 2; i <= NF; i++) {
    if ($i == "ns/op")     ns = $(i-1)
    if ($i == "B/op")      bytes = $(i-1)
    if ($i == "allocs/op") allocs = $(i-1)
  }
  if (!first) printf ",\n"
  first = 0
  printf "  \"%s\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
    name, ns, bytes, allocs
}
END { print "\n}" }
' >"$out"
echo "wrote $out"

if [[ -n "$before" ]]; then
  go run ./cmd/benchdelta -o "$merged" "$before" "$out"
fi

if [[ -n "$gate" ]]; then
  echo "gating $out against $gate (>$gate_pct% ns/op regression fails)"
  go run ./cmd/benchdelta -gate "$gate_pct" "$gate" "$out"
fi
