#!/usr/bin/env bash
#
# Benchmark runner for before/after performance records. Runs the macro
# benchmarks (the full Figure 6 sweep and the raw simulator-throughput
# workload) for one iteration each and the substrate micro-benchmarks
# (event queue, block table, stream consumption, mesh send) at a fixed
# benchtime, then writes one JSON object per benchmark — ns/op, B/op,
# allocs/op — to the output file.
#
# Usage:
#   scripts/bench.sh after.json                  # current tree
#   git stash && scripts/bench.sh base.json && git stash pop
#   scripts/bench.sh after.json base.json merged.json
#                      # also merge base/after into a benchstat-style
#                      # before/after/delta record via cmd/benchdelta
#
# BENCH_2.json and BENCH_3.json in the repo root pair this script's
# output on each PR base with its output after that PR's rework.
set -euo pipefail
cd "$(dirname "$0")/.."
out="${1:-bench_results.json}"
before="${2:-}"
merged="${3:-}"

run() { # pattern package benchtime
  go test -run '^$' -bench "$1" -benchtime "$3" -benchmem "$2" 2>&1 |
    grep -E '^Benchmark' || true
}

{
  run 'Figure6Serial|SimulatorThroughput' . 1x
  run 'EngineSchedule' ./internal/sim 2s
  run 'BlockTable|StdlibMap' ./internal/blockmap 2s
  run 'StreamNext' ./internal/trace 2s
  run 'MeshSend' ./internal/network 2s
} | awk '
BEGIN { print "{"; first = 1 }
{
  name = $1; sub(/-[0-9]+$/, "", name)
  ns = "null"; bytes = "null"; allocs = "null"
  for (i = 2; i <= NF; i++) {
    if ($i == "ns/op")     ns = $(i-1)
    if ($i == "B/op")      bytes = $(i-1)
    if ($i == "allocs/op") allocs = $(i-1)
  }
  if (!first) printf ",\n"
  first = 0
  printf "  \"%s\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
    name, ns, bytes, allocs
}
END { print "\n}" }
' >"$out"
echo "wrote $out"

if [[ -n "$before" ]]; then
  go run ./cmd/benchdelta -o "${merged:-bench_delta.json}" "$before" "$out"
fi
