package prefetchsim

// White-box tests for the engine glue: the baseline-cache key must
// separate every configuration tuple that shapes a baseline result,
// and a sweep with one bad configuration must still complete the rest.

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// TestSweepCancellation: a sweep whose ExpOptions.Ctx is already dead
// runs nothing and surfaces the cancellation, while a nil Ctx still
// runs to completion — the job-server contract for cancelling queued
// work.
func TestSweepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rows, err := Table2(ExpOptions{
		Ctx: ctx, Procs: 4, Workers: 1, Apps: []string{"lu", "matmul"},
	})
	if len(rows) != 0 {
		t.Fatalf("cancelled sweep produced %d rows, want 0", len(rows))
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled sweep err = %v, want context.Canceled", err)
	}
}

// TestBaselineKeyDistinct: configurations differing in any component of
// the (app, slc, procs, scale, seed, ...) tuple must map to distinct
// cache keys, while default-equivalent spellings of the same machine
// must collide (that is the sharing the cache exists for).
func TestBaselineKeyDistinct(t *testing.T) {
	ref := Config{App: "lu", Processors: 16, Scale: 1, Seed: 0}
	mutations := []struct {
		name string
		cfg  Config
	}{
		{"app", Config{App: "ocean", Processors: 16, Scale: 1, Seed: 0}},
		{"slc_bytes", Config{App: "lu", Processors: 16, Scale: 1, Seed: 0, SLCBytes: FiniteSLCBytes}},
		{"slc_ways", Config{App: "lu", Processors: 16, Scale: 1, Seed: 0, SLCBytes: FiniteSLCBytes, SLCWays: 2}},
		{"procs", Config{App: "lu", Processors: 4, Scale: 1, Seed: 0}},
		{"scale", Config{App: "lu", Processors: 16, Scale: 2, Seed: 0}},
		{"seed", Config{App: "lu", Processors: 16, Scale: 1, Seed: 1}},
		{"bandwidth", Config{App: "lu", Processors: 16, Scale: 1, Seed: 0, BandwidthFactor: 2}},
		{"consistency", Config{App: "lu", Processors: 16, Scale: 1, Seed: 0, SequentialConsistency: true}},
		{"characteristics", Config{App: "lu", Processors: 16, Scale: 1, Seed: 0, CollectCharacteristics: true}},
	}
	refKey := baselineKeyFor(ref)
	seen := map[baselineKey]string{refKey: "reference"}
	for _, m := range mutations {
		k := baselineKeyFor(m.cfg)
		if prev, dup := seen[k]; dup {
			t.Errorf("mutation %q collides with %q: key %+v", m.name, prev, k)
			continue
		}
		seen[k] = m.name
	}

	// Default-equivalent spellings share a key: Processors 0 means 16,
	// Scale 0 means 1, and the scheme/degree are not part of a baseline
	// run's identity.
	for _, same := range []Config{
		{App: "lu"},
		{App: "lu", Processors: 16, Scale: 1},
		{App: "lu", Scheme: Baseline, Degree: 1, Processors: 16, Scale: 1},
	} {
		if k := baselineKeyFor(same); k != refKey {
			t.Errorf("default-equivalent config %+v got key %+v, want %+v", same, k, refKey)
		}
	}
}

// TestTable2BadAppCompletesRest: one invalid application returns its
// error yet the other applications' rows still come back, in order.
func TestTable2BadAppCompletesRest(t *testing.T) {
	rows, err := Table2(ExpOptions{
		Procs: 4, Apps: []string{"matmul", "nosuchapp"}, Workers: 2,
	})
	if err == nil {
		t.Fatal("Table2 with an invalid app returned nil error")
	}
	if !strings.Contains(err.Error(), "nosuchapp") {
		t.Fatalf("error does not name the invalid app: %v", err)
	}
	if len(rows) != 1 || rows[0].App != "matmul" {
		t.Fatalf("surviving rows = %+v, want the matmul row alone", rows)
	}
}

// TestRunManyErrorCapture: per-job error slots line up with their
// configurations and do not disturb neighboring results.
func TestRunManyErrorCapture(t *testing.T) {
	cfgs := []Config{
		{App: "matmul", Processors: 4},
		{App: "nosuchapp", Processors: 4},
		{App: "matmul", Scheme: Seq, Processors: 4},
	}
	results, errs := RunMany(cfgs, 3, nil)
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("valid configs errored: %v, %v", errs[0], errs[2])
	}
	if errs[1] == nil || !strings.Contains(errs[1].Error(), "nosuchapp") {
		t.Fatalf("errs[1] = %v, want unknown-application error", errs[1])
	}
	if results[1] != nil {
		t.Fatalf("failed job left a result: %+v", results[1])
	}
	if results[0] == nil || results[2] == nil {
		t.Fatal("valid jobs missing results")
	}
	if results[0].Scheme != Baseline || results[2].Scheme != Seq {
		t.Fatalf("result schemes %s, %s — slots misaligned", results[0].Scheme, results[2].Scheme)
	}
}

// TestGather: successful rows survive in order and all failures join
// into one error.
func TestGather(t *testing.T) {
	e1, e2 := errors.New("first"), errors.New("second")
	rows, err := gather([]int{10, 0, 30, 0, 50}, []error{nil, e1, nil, e2, nil})
	if want := []int{10, 30, 50}; len(rows) != 3 || rows[0] != 10 || rows[1] != 30 || rows[2] != 50 {
		t.Fatalf("rows = %v, want %v", rows, want)
	}
	if !errors.Is(err, e1) || !errors.Is(err, e2) {
		t.Fatalf("joined error %v does not wrap both failures", err)
	}
	rows, err = gather([]int{1, 2}, []error{nil, nil})
	if err != nil || len(rows) != 2 {
		t.Fatalf("all-success gather = (%v, %v)", rows, err)
	}
}
