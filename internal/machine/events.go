package machine

import (
	"prefetchsim/internal/coherence"
	"prefetchsim/internal/mem"
	"prefetchsim/internal/network"
	"prefetchsim/internal/sim"
)

// The protocol's multi-hop transactions (protocol.go) schedule one
// network-arrival event per hop. Each event is a pooled ev object that
// implements sim.Handler (fired by the engine) and coherence.Waiter
// (queued on a busy directory entry), so the schedule/fire cycle of
// the protocol fast path allocates nothing in steady state: an ev is
// taken from the machine's free list when a hop is scheduled, reused
// in place across the hops of one transaction leg, and returned when
// the leg completes. The machine runs single-threaded per simulation,
// so the pool needs no locking.

// evKind identifies which protocol step an ev performs when it fires.
type evKind uint8

const (
	// evHomeRead: a read request arrives at the home directory.
	evHomeRead evKind = iota
	// evReadFwd: a home->owner forward arrives; the owner supplies a
	// dirty block and downgrades to Shared.
	evReadFwd
	// evReadWb: the owner's fresh copy arrives back at home.
	evReadWb
	// evReadFill: read data arrives at the requester.
	evReadFill
	// evHomeWrite: an ownership request arrives at the home directory.
	evHomeWrite
	// evInvCoord: never scheduled; collects invalidation acks for one
	// ownership request and issues the grant when the last arrives.
	evInvCoord
	// evInvSend: an invalidation arrives at a sharer.
	evInvSend
	// evInvAck: a sharer's invalidation ack arrives at home.
	evInvAck
	// evWriteFwd: a home->owner forward arrives; the owner supplies a
	// dirty block and invalidates it.
	evWriteFwd
	// evWriteData: the invalidated owner's data arrives at home.
	evWriteData
	// evWriteGrant: the ownership grant arrives at the requester.
	evWriteGrant
	// evWriteback: an eviction writeback arrives at the home directory.
	evWriteback
	// evWritebackAck: the writeback ack arrives back at the evictor.
	evWritebackAck
)

// ev is one pooled protocol event. Field meaning varies by kind: n is
// the requesting (or evicting) node, b the block, aux an owner node,
// invalidation target or outstanding-ack count, flag the
// owner-retains-copy / requester-was-sharer bit, and co the ack
// coordinator an invalidation round reports to.
type ev struct {
	m    *Machine
	kind evKind
	n    *node
	b    mem.Block
	tx   *pendingTx
	e    *coherence.Entry
	home int
	aux  int
	flag bool
	co   *ev
	next *ev // machine free list
}

// Fire implements sim.Handler.
func (c *ev) Fire(t sim.Time) { c.m.fireEv(c, t) }

// Run implements coherence.Waiter: the directory entry became free and
// this home transaction now owns it.
func (c *ev) Run() { c.m.runHome(c) }

// newEv takes an event from the pool.
func (m *Machine) newEv(kind evKind) *ev {
	c := m.evFree
	if c == nil {
		c = &ev{m: m}
	} else {
		m.evFree = c.next
	}
	c.kind = kind
	return c
}

// putEv clears an event and returns it to the pool.
func (m *Machine) putEv(c *ev) {
	*c = ev{m: c.m, next: m.evFree}
	m.evFree = c
}

// newTx takes a pending-transaction record from the pool.
func (m *Machine) newTx(kind txKind) *pendingTx {
	if k := len(m.txFree); k > 0 {
		tx := m.txFree[k-1]
		m.txFree = m.txFree[:k-1]
		*tx = pendingTx{kind: kind}
		return tx
	}
	return &pendingTx{kind: kind}
}

// putTx returns a retired transaction record to the pool. The caller
// must hold no further references: the record is reused by the next
// newTx.
func (m *Machine) putTx(tx *pendingTx) { m.txFree = append(m.txFree, tx) }

// fireEv dispatches a scheduled protocol event. Cases that reschedule
// c for the transaction's next hop return early; every other case
// falls through to the pool.
func (m *Machine) fireEv(c *ev, t sim.Time) {
	switch c.kind {
	case evHomeRead, evHomeWrite, evWriteback:
		// Home-side transactions serialize per block on the directory
		// entry; c waits (as coherence.Waiter) if one is in flight.
		if m.sp != nil && c.tx != nil {
			c.tx.span.Home = int64(t)
		}
		e := m.dir.Entry(c.b)
		c.e = e
		if e.AcquireWaiter(c) {
			m.runHome(c)
		}
		return // recycled at the end of runHome

	case evReadFwd:
		own := m.nodes[c.aux]
		supplyAt, hadCopy := m.ownerDowngrade(own, c.b)
		c.flag = hadCopy
		c.kind = evReadWb
		m.eng.Schedule(m.mesh.Send(network.ReplyPlane, c.aux, c.home, network.DataFlits, supplyAt), c)
		return

	case evReadWb:
		done := m.mems[c.home].Access(t)
		if m.sp != nil {
			c.tx.span.Reply = int64(done)
		}
		e := c.e
		e.State = coherence.SharedClean
		e.ClearSharers()
		if c.flag {
			e.AddSharer(c.aux)
		}
		e.AddSharer(c.n.id)
		c.kind = evReadFill
		m.eng.Schedule(m.mesh.Send(network.ReplyPlane, c.home, c.n.id, network.DataFlits, done), c)
		return

	case evReadFill:
		m.finishReadFill(c.n, c.b, c.tx, c.e)

	case evInvSend:
		ackAt := m.applyInv(m.nodes[c.aux], c.b)
		c.kind = evInvAck
		m.eng.Schedule(m.mesh.Send(network.ReplyPlane, c.aux, c.home, network.CtrlFlits, ackAt), c)
		return

	case evInvAck:
		co := c.co
		co.aux--
		if co.aux == 0 {
			if co.flag {
				m.sendWriteGrant(co, m.mems[co.home].Control(t), false)
			} else {
				m.sendWriteGrant(co, m.mems[co.home].Access(t), true)
			}
			m.putEv(co)
		}

	case evWriteFwd:
		supplyAt := m.ownerInvalidate(m.nodes[c.aux], c.b)
		c.kind = evWriteData
		m.eng.Schedule(m.mesh.Send(network.ReplyPlane, c.aux, c.home, network.DataFlits, supplyAt), c)
		return

	case evWriteData:
		m.sendWriteGrant(c, m.mems[c.home].Access(t), true)

	case evWriteGrant:
		m.finishWriteGrant(c.n, c.b, c.tx, c.e)

	case evWritebackAck:
		n, b := c.n, c.b
		cbs, _ := n.wbPending.Get(b)
		n.wbPending.Delete(b)
		for _, cb := range cbs {
			cb(t)
		}
	}
	m.putEv(c)
}

// runHome executes a home-side transaction that holds its directory
// entry, then recycles the event.
func (m *Machine) runHome(c *ev) {
	if m.sp != nil && c.tx != nil {
		// Service begins: the gap back to the Home stamp is the time
		// spent queued behind other transactions on this block's
		// directory entry.
		c.tx.span.Svc = int64(m.eng.Now())
	}
	switch c.kind {
	case evHomeRead:
		m.homeRead(c)
	case evHomeWrite:
		m.homeWrite(c)
	case evWriteback:
		m.homeWriteback(c)
	}
	m.putEv(c)
}
