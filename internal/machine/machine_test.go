package machine

import (
	"strings"
	"testing"

	"prefetchsim/internal/cache"
	"prefetchsim/internal/coherence"
	"prefetchsim/internal/mem"
	"prefetchsim/internal/prefetch"
	"prefetchsim/internal/trace"
)

// prog builds a Program from per-processor op slices.
func prog(streams ...[]trace.Op) *trace.Program {
	p := &trace.Program{Name: "test"}
	for _, ops := range streams {
		p.Streams = append(p.Streams, trace.NewSliceStream(ops))
	}
	return p
}

func cfgN(n int) Config {
	c := DefaultConfig()
	c.Processors = n
	return c
}

func run(t *testing.T, cfg Config, p *trace.Program) (*Machine, *Machine) {
	t.Helper()
	m, err := New(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return m, m
}

func rd(addr uint64, gap uint32) trace.Op {
	return trace.Op{Kind: trace.Read, Addr: addr, Gap: gap}
}

func rdpc(pc trace.PC, addr uint64, gap uint32) trace.Op {
	return trace.Op{Kind: trace.Read, PC: pc, Addr: addr, Gap: gap}
}

func wr(addr uint64, gap uint32) trace.Op {
	return trace.Op{Kind: trace.Write, Addr: addr, Gap: gap}
}

const page1 = uint64(mem.PageBytes) // home node: 1 % P

func TestLocalReadMissIs28Pclocks(t *testing.T) {
	// Table 1: "Read from local memory: 28 pclocks".
	m, _ := run(t, cfgN(1), prog([]trace.Op{rd(page1, 0)}))
	st := &m.Stats.Nodes[0]
	if st.ExecTime != 28 {
		t.Fatalf("local read miss took %d pclocks, want 28", st.ExecTime)
	}
	if st.ReadMisses != 1 || st.ColdMisses != 1 {
		t.Fatalf("miss accounting: %d misses, %d cold", st.ReadMisses, st.ColdMisses)
	}
	if st.ReadStall != 27 {
		t.Fatalf("read stall = %d, want 27", st.ReadStall)
	}
}

func TestFLCHitIsOnePclock(t *testing.T) {
	m, _ := run(t, cfgN(1), prog([]trace.Op{rd(page1, 0), rd(page1+8, 0)}))
	st := &m.Stats.Nodes[0]
	if st.FLCReadHits != 1 {
		t.Fatalf("FLC hits = %d, want 1", st.FLCReadHits)
	}
	if st.ExecTime != 29 {
		t.Fatalf("exec time = %d, want 29 (28 + 1-pclock FLC hit)", st.ExecTime)
	}
}

func TestSLCHitIsSixPclocks(t *testing.T) {
	// Evict page1's block from the FLC with a conflicting block one FLC
	// span (4 KB) away, then re-read: FLC miss, SLC hit.
	m, _ := run(t, cfgN(1), prog([]trace.Op{
		rd(page1, 0), rd(page1+4096, 0), rd(page1, 0),
	}))
	st := &m.Stats.Nodes[0]
	if st.SLCReadHits != 1 {
		t.Fatalf("SLC hits = %d, want 1", st.SLCReadHits)
	}
	if st.ExecTime != 62 {
		t.Fatalf("exec time = %d, want 62 (28 + 28 + 6)", st.ExecTime)
	}
}

func TestRemoteCleanReadTwoTraversals(t *testing.T) {
	// Node 0 reads a block homed at node 1 (one hop away): request and
	// data reply each cross the mesh once.
	m, _ := run(t, cfgN(2), prog([]trace.Op{rd(page1, 0)}, nil))
	st := &m.Stats.Nodes[0]
	// 1 (FLC) + 3 (SLC) + 6 (ctrl: 1 hop) + 19 (home) + 14 (data: 1 hop)
	// + 3 (fill) + 2 (forward) = 48.
	if st.ExecTime != 48 {
		t.Fatalf("remote clean read took %d pclocks, want 48", st.ExecTime)
	}
	if m.Stats.NetMessages != 2 {
		t.Fatalf("messages = %d, want 2 (request + data)", m.Stats.NetMessages)
	}
}

func TestWriteDoesNotBlockProcessor(t *testing.T) {
	// Release consistency: a write costs the processor ~1 pclock even
	// though the ownership transaction takes tens of pclocks.
	m, _ := run(t, cfgN(2), prog([]trace.Op{wr(page1, 0)}, nil))
	st := &m.Stats.Nodes[0]
	if st.ExecTime > 2 {
		t.Fatalf("write blocked the processor for %d pclocks", st.ExecTime)
	}
	// The transaction still completed: directory shows node 0 as owner.
	e, ok := m.dir.Peek(mem.BlockOf(mem.Addr(page1)))
	if !ok || e.State != coherence.Dirty || e.Owner != 0 {
		t.Fatalf("directory after write: %+v (ok=%v)", e, ok)
	}
	if m.nodes[0].outWrites != 0 {
		t.Fatal("outstanding writes not drained")
	}
}

func TestSecondWriteToOwnedBlockIsLocal(t *testing.T) {
	m, _ := run(t, cfgN(1), prog([]trace.Op{
		wr(page1, 0), wr(page1, 1000), trace.Op{Kind: trace.End},
	}))
	// Exactly one ownership transaction: one memory access for the
	// read-exclusive; the second write hits Modified.
	if m.mems[0].Accesses != 1 {
		t.Fatalf("memory accesses = %d, want 1", m.mems[0].Accesses)
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	x := page1 // home node 1 in a 2-node machine
	p := prog(
		[]trace.Op{rd(x, 0), rd(x, 2000)}, // node 0: read, re-read after inv
		[]trace.Op{wr(x, 500)},            // node 1: write in between
	)
	m, _ := run(t, cfgN(2), p)
	n0 := &m.Stats.Nodes[0]
	if n0.InvalidationsReceived != 1 {
		t.Fatalf("node 0 invalidations = %d, want 1", n0.InvalidationsReceived)
	}
	if n0.ReadMisses != 2 || n0.CoherenceMisses != 1 {
		t.Fatalf("node 0: %d misses, %d coherence; want 2, 1",
			n0.ReadMisses, n0.CoherenceMisses)
	}
}

func TestDirtyRemoteReadDowngradesOwner(t *testing.T) {
	x := page1 // home node 1
	p := prog(
		[]trace.Op{rd(x, 800)}, // node 0 reads after node 1 modified
		[]trace.Op{wr(x, 0)},   // node 1 writes first
	)
	m, _ := run(t, cfgN(2), p)
	// Owner keeps a shared copy; directory is shared-clean with both.
	line, ok := m.nodes[1].slc.Lookup(mem.BlockOf(mem.Addr(x)))
	if !ok || line.State != cache.Shared {
		t.Fatalf("owner's line after downgrade: %+v (ok=%v)", line, ok)
	}
	e, _ := m.dir.Peek(mem.BlockOf(mem.Addr(x)))
	if e.State != coherence.SharedClean || !e.IsSharer(0) || !e.IsSharer(1) {
		t.Fatalf("directory after downgrade: state=%v sharers=%v", e.State, e.Sharers())
	}
}

func TestDirtyRemoteReadIsSlowerThanClean(t *testing.T) {
	x := page1
	dirty := prog(
		[]trace.Op{rd(x, 800)},
		[]trace.Op{wr(x, 0)},
	)
	m1, _ := run(t, cfgN(2), dirty)
	clean := prog(
		[]trace.Op{rd(x, 800)},
		nil,
	)
	m2, _ := run(t, cfgN(2), clean)
	if m1.Stats.Nodes[0].ReadStall <= m2.Stats.Nodes[0].ReadStall {
		t.Fatalf("dirty read stall (%d) not slower than clean (%d)",
			m1.Stats.Nodes[0].ReadStall, m2.Stats.Nodes[0].ReadStall)
	}
}

func TestReleaseWaitsForOutstandingWrites(t *testing.T) {
	lock := uint64(3 * mem.PageBytes)
	p := prog([]trace.Op{
		{Kind: trace.Acquire, Addr: lock},
		wr(page1, 0),
		{Kind: trace.Release, Addr: lock},
	})
	m, _ := run(t, cfgN(1), p)
	st := &m.Stats.Nodes[0]
	if st.SyncStall == 0 {
		t.Fatal("release did not wait for the outstanding write")
	}
}

func TestLockMutualExclusion(t *testing.T) {
	lock := uint64(3 * mem.PageBytes)
	critical := func() []trace.Op {
		return []trace.Op{
			{Kind: trace.Acquire, Addr: lock},
			wr(page1, 0),
			rd(page1, 300), // hold the lock ~300 pclocks
			{Kind: trace.Release, Addr: lock},
		}
	}
	m, _ := run(t, cfgN(2), prog(critical(), critical()))
	// One processor must have waited for the other's critical section.
	s0, s1 := m.Stats.Nodes[0].SyncStall, m.Stats.Nodes[1].SyncStall
	if s0+s1 < 300 {
		t.Fatalf("lock waiting time %d+%d; critical sections overlapped", s0, s1)
	}
}

func TestBarrierBlocksUntilAllArrive(t *testing.T) {
	p := prog(
		[]trace.Op{{Kind: trace.Barrier, Addr: 0}, rd(page1, 0)},
		[]trace.Op{rd(2*page1, 500), {Kind: trace.Barrier, Addr: 0}},
	)
	m, _ := run(t, cfgN(2), p)
	if m.Stats.Nodes[0].ExecTime < 500 {
		t.Fatalf("node 0 passed the barrier at %d, before node 1 arrived (~500)",
			m.Stats.Nodes[0].ExecTime)
	}
	if m.Stats.Nodes[0].SyncStall < 400 {
		t.Fatalf("node 0 barrier stall = %d, want >= 400", m.Stats.Nodes[0].SyncStall)
	}
}

// seqReads builds reads covering every 8th byte of n pages starting at
// page p, with the given per-read think gap.
func seqReads(pc trace.PC, firstPage uint64, pages int, gap uint32) []trace.Op {
	var ops []trace.Op
	for off := uint64(0); off < uint64(pages*mem.PageBytes); off += 8 {
		ops = append(ops, rdpc(pc, firstPage*mem.PageBytes+off, gap))
	}
	return ops
}

func TestSequentialPrefetchingRemovesSequentialMisses(t *testing.T) {
	reads := seqReads(1, 1, 1, 10) // one page = 128 blocks
	base, _ := run(t, cfgN(1), prog(reads))
	cfg := cfgN(1)
	cfg.NewPrefetcher = func(int) prefetch.Prefetcher { return prefetch.NewSequential(1) }
	pf, _ := run(t, cfg, prog(reads))

	bm := base.Stats.TotalReadMisses()
	pm := pf.Stats.TotalReadMisses()
	if bm != 128 {
		t.Fatalf("baseline misses = %d, want 128", bm)
	}
	if pm > 8 {
		t.Fatalf("sequential prefetching left %d misses on a pure sequential stream", pm)
	}
	if eff := pf.Stats.PrefetchEfficiency(); eff < 0.95 {
		t.Fatalf("prefetch efficiency = %.3f, want >= 0.95", eff)
	}
	if pf.Stats.TotalReadStall() >= base.Stats.TotalReadStall() {
		t.Fatal("prefetching did not reduce read stall time")
	}
}

func TestPrefetchNeverCrossesPageBoundary(t *testing.T) {
	reads := seqReads(1, 1, 2, 10) // two pages
	cfg := cfgN(1)
	cfg.NewPrefetcher = func(int) prefetch.Prefetcher { return prefetch.NewSequential(1) }
	m, _ := run(t, cfg, prog(reads))
	// 256 blocks, 2 pages: at most 127 prefetches per page.
	if got := m.Stats.TotalPrefetchesIssued(); got > 254 {
		t.Fatalf("issued %d prefetches, want <= 254 (page-bounded)", got)
	}
	// The first block of the second page must be a (cold) miss: no
	// prefetch crossed into it.
	if m.Stats.TotalReadMisses() < 2 {
		t.Fatal("page-boundary miss was prefetched away; page rule violated")
	}
}

func TestIDetectionPrefetchesStridedStream(t *testing.T) {
	// Stride of 64 bytes (2 blocks) from a single load site.
	var reads []trace.Op
	for i := 0; i < 64; i++ {
		reads = append(reads, rdpc(7, page1+uint64(i)*64, 40))
	}
	base, _ := run(t, cfgN(1), prog(reads))
	cfg := cfgN(1)
	cfg.NewPrefetcher = func(int) prefetch.Prefetcher { return prefetch.NewIDetection(256, 1) }
	pf, _ := run(t, cfg, prog(reads))
	if bm := base.Stats.TotalReadMisses(); bm != 64 {
		t.Fatalf("baseline misses = %d, want 64", bm)
	}
	if pm := pf.Stats.TotalReadMisses(); pm > 8 {
		t.Fatalf("I-detection left %d misses on a pure stride stream", pm)
	}
	if eff := pf.Stats.PrefetchEfficiency(); eff < 0.9 {
		t.Fatalf("I-det efficiency = %.3f, want >= 0.9", eff)
	}
}

func TestMergedPrefetchCountsAsMissAndUseful(t *testing.T) {
	// Zero think time: the processor chases its own prefetches, so some
	// demand reads arrive while the prefetch is still in flight.
	reads := seqReads(1, 1, 1, 0)
	cfg := cfgN(1)
	cfg.NewPrefetcher = func(int) prefetch.Prefetcher { return prefetch.NewSequential(1) }
	m, _ := run(t, cfg, prog(reads))
	st := &m.Stats.Nodes[0]
	if st.PrefetchesMerged == 0 {
		t.Fatal("no merged prefetches with zero think time; expected in-flight merges")
	}
	if st.PrefetchesUseful < st.PrefetchesMerged {
		t.Fatal("merged prefetches must be counted useful")
	}
}

func TestFiniteSLCReplacementMissesAndWriteback(t *testing.T) {
	cfg := cfgN(1)
	cfg.SLCSize = 16384 // 512 blocks
	b0 := page1
	conflict := page1 + 512*mem.BlockBytes // same SLC set as b0
	p := prog([]trace.Op{
		wr(b0, 0),         // b0 becomes Modified
		rd(conflict, 200), // evicts b0: writeback
		rd(b0, 500),       // replacement miss
	})
	m, _ := run(t, cfg, p)
	st := &m.Stats.Nodes[0]
	if st.Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1", st.Writebacks)
	}
	if st.ReplacementMisses != 1 {
		t.Fatalf("replacement misses = %d, want 1", st.ReplacementMisses)
	}
	// Directory must have retired the writeback: block uncached, then
	// re-shared by the final read.
	e, _ := m.dir.Peek(mem.BlockOf(mem.Addr(b0)))
	if e.State != coherence.SharedClean {
		t.Fatalf("directory state after writeback+reread = %v", e.State)
	}
}

func TestInfiniteSLCNeverReplaces(t *testing.T) {
	var reads []trace.Op
	for i := 0; i < 2000; i++ {
		reads = append(reads, rd(page1+uint64(i)*mem.BlockBytes, 0))
	}
	m, _ := run(t, cfgN(1), prog(reads))
	if m.Stats.Nodes[0].ReplacementMisses != 0 {
		t.Fatal("infinite SLC produced replacement misses")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	mk := func() *trace.Program {
		return prog(
			seqReads(1, 1, 1, 3),
			append([]trace.Op{wr(page1+64, 100)}, seqReads(2, 2, 1, 5)...),
		)
	}
	cfg := cfgN(2)
	cfg.NewPrefetcher = func(int) prefetch.Prefetcher { return prefetch.NewSequential(1) }
	a, _ := run(t, cfg, mk())
	b, _ := run(t, cfg, mk())
	if a.Stats.ExecTime != b.Stats.ExecTime ||
		a.Stats.TotalReadMisses() != b.Stats.TotalReadMisses() ||
		a.Stats.TotalReadStall() != b.Stats.TotalReadStall() ||
		a.Stats.NetFlitHops != b.Stats.NetFlitHops {
		t.Fatalf("runs diverged:\n%v\nvs\n%v", a.Stats, b.Stats)
	}
}

func TestDeadlockDetected(t *testing.T) {
	p := prog(
		[]trace.Op{{Kind: trace.Barrier, Addr: 0}},
		nil, // node 1 ends immediately; node 0 waits forever
	)
	m, err := New(cfgN(2), p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("Run error = %v, want deadlock", err)
	}
}

func TestMaxEventsAborts(t *testing.T) {
	cfg := cfgN(1)
	cfg.MaxEvents = 3
	m, err := New(cfg, prog(seqReads(1, 1, 4, 0)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err == nil {
		t.Fatal("MaxEvents did not abort")
	}
}

func TestNewValidatesConfig(t *testing.T) {
	if _, err := New(cfgN(0), prog()); err == nil {
		t.Error("accepted zero processors")
	}
	if _, err := New(cfgN(2), prog(nil)); err == nil {
		t.Error("accepted stream/processor mismatch")
	}
	bad := cfgN(1)
	bad.FLWBEntries = 0
	if _, err := New(bad, prog(nil)); err == nil {
		t.Error("accepted zero-entry FLWB")
	}
}

func TestSLWBLimitsPrefetchBurst(t *testing.T) {
	// Degree-16 sequential prefetching on a miss proposes 16 blocks but
	// the 16-entry SLWB also holds the demand miss: at least one
	// proposal must be dropped, never queued.
	cfg := cfgN(1)
	cfg.NewPrefetcher = func(int) prefetch.Prefetcher { return prefetch.NewSequential(16) }
	m, _ := run(t, cfg, prog([]trace.Op{rd(page1, 0)}))
	if got := m.Stats.TotalPrefetchesIssued(); got > 16 {
		t.Fatalf("issued %d prefetches with a 16-entry SLWB", got)
	}
}

func TestStatsStringMentionsKeyFields(t *testing.T) {
	m, _ := run(t, cfgN(1), prog([]trace.Op{rd(page1, 0)}))
	s := m.Stats.String()
	for _, want := range []string{"exec time", "read misses", "prefetches", "network"} {
		if !strings.Contains(s, want) {
			t.Errorf("stats report missing %q:\n%s", want, s)
		}
	}
}

func TestRemoteDirtyReadFourTraversals(t *testing.T) {
	// Pin the four-traversal dirty-read latency exactly: request to
	// home (1 hop), forward to owner (1 hop back), owner's data to home
	// (1 hop), reply to requester (1 hop). Node 0 reads a block homed
	// at node 1 that node 0... no — owner must be a third party: use a
	// 4-node machine: home=1, owner=2, requester=0.
	x := uint64(mem.PageBytes) // page 1 → home node 1
	p := prog(
		[]trace.Op{rd(x, 800)}, // requester, after owner settled
		nil,
		[]trace.Op{wr(x, 0)}, // owner
		nil,
	)
	m, _ := run(t, cfgN(4), p)
	st := &m.Stats.Nodes[0]
	// Composition: 1 (FLC) + 3 (SLC) + req 0→1 (1 hop: 3+3=6) + home
	// ctrl (10) + fwd 1→2 (1 hop: 6) + owner SLC (6) + data 2→1 (2
	// hops: 6+11=17) + home access (19) + reply 1→0 (1 hop: 3+11=14) +
	// fill (3) + forward (2) = 86... pin against regression rather than
	// deriving every term: measured stall must sit in the 4-traversal
	// band, well above the 2-traversal clean read (47) and below 120.
	if st.ReadStall < 60 || st.ReadStall > 120 {
		t.Fatalf("dirty remote read stall = %d pclocks; outside the 4-traversal band", st.ReadStall)
	}
}
