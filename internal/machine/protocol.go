package machine

import (
	"fmt"

	"prefetchsim/internal/cache"
	"prefetchsim/internal/coherence"
	"prefetchsim/internal/mem"
	"prefetchsim/internal/network"
	"prefetchsim/internal/sim"
)

// This file implements the write-invalidate full-map directory protocol
// (paper §4, after Censier and Feautrier): a read miss is serviced by
// the home memory in zero or two node-to-node traversals when the
// memory copy is clean, and in four traversals when a remote cache
// holds a modified copy. Writes invalidate sharers and collect acks at
// the home. Directory entries serialize transactions per block (see
// DESIGN.md), which stands in for the transient states of a real
// implementation.

// startReadTx registers the transaction (so later operations on the
// block merge with it instead of duplicating it), acquires an SLWB slot
// — demand reads wait for one; the prefetch path reserves its slot
// beforehand via trySLWB — and launches the read.
func (m *Machine) startReadTx(n *node, b mem.Block, isPrefetch bool, t sim.Time, resume func(sim.Time)) {
	tx := &pendingTx{kind: txRead, prefetch: isPrefetch, demand: resume != nil, resume: resume}
	n.pending[b] = tx
	m.allocSLWB(n, t, func(t2 sim.Time) {
		m.dispatchReadTx(n, b, tx, t2)
	})
}

// sendReadTx launches a read transaction whose SLWB slot is already
// held.
func (m *Machine) sendReadTx(n *node, b mem.Block, isPrefetch bool, t sim.Time, resume func(sim.Time)) {
	tx := &pendingTx{kind: txRead, prefetch: isPrefetch, demand: resume != nil, resume: resume}
	n.pending[b] = tx
	m.dispatchReadTx(n, b, tx, t)
}

func (m *Machine) dispatchReadTx(n *node, b mem.Block, tx *pendingTx, t sim.Time) {
	home := m.home(b)
	arrive := m.mesh.Send(network.ReqPlane, n.id, home, network.CtrlFlits, t)
	m.eng.At(arrive, func() { m.homeRead(home, n, b, tx) })
}

// homeRead services a read request at the block's home node.
func (m *Machine) homeRead(home int, n *node, b mem.Block, tx *pendingTx) {
	e := m.dir.Entry(b)
	run := func() {
		t := m.eng.Now()
		switch e.State {
		case coherence.Uncached, coherence.SharedClean:
			// Memory responds directly (0 or 2 traversals).
			done := m.mems[home].Access(t)
			e.State = coherence.SharedClean
			e.AddSharer(n.id)
			arrive := m.mesh.Send(network.ReplyPlane, home, n.id, network.DataFlits, done)
			m.eng.At(arrive, func() { m.finishReadFill(n, b, tx, e) })

		case coherence.Dirty:
			owner := e.Owner
			if owner == n.id {
				panic(fmt.Sprintf("machine: node %d read-misses a block the directory says it owns", n.id))
			}
			// Four traversals: home asks the owner for a fresh copy,
			// memory is updated, then the requester is answered.
			ctrl := m.mems[home].Control(t)
			fwd := m.mesh.Send(network.ReqPlane, home, owner, network.CtrlFlits, ctrl)
			m.eng.At(fwd, func() {
				own := m.nodes[owner]
				supplyAt, hadCopy := m.ownerDowngrade(own, b)
				wbArrive := m.mesh.Send(network.ReplyPlane, owner, home, network.DataFlits, supplyAt)
				m.eng.At(wbArrive, func() {
					done := m.mems[home].Access(m.eng.Now())
					e.State = coherence.SharedClean
					e.ClearSharers()
					if hadCopy {
						e.AddSharer(owner)
					}
					e.AddSharer(n.id)
					arrive := m.mesh.Send(network.ReplyPlane, home, n.id, network.DataFlits, done)
					m.eng.At(arrive, func() { m.finishReadFill(n, b, tx, e) })
				})
			})
		}
	}
	if e.Acquire(run) {
		run()
	}
}

// ownerDowngrade makes the owning node supply a modified block and keep
// a shared copy. If the owner evicted the block meanwhile (writeback in
// flight), the data comes from its victim buffer and it keeps nothing.
// It returns the supply time and whether the owner retains a copy.
func (m *Machine) ownerDowngrade(own *node, b mem.Block) (sim.Time, bool) {
	t := own.slcRes.Acquire(m.eng.Now(), SLCCycle) + SLCCycle
	if line, ok := own.slc.Lookup(b); ok {
		if line.State != cache.Modified {
			panic(fmt.Sprintf("machine: forward to node %d for block it holds in %v", own.id, line.State))
		}
		own.slc.SetState(b, cache.Shared)
		return t, true
	}
	if _, ok := own.wbPending[b]; !ok {
		panic(fmt.Sprintf("machine: forward to node %d for absent block %d with no writeback in flight", own.id, b))
	}
	return t, false
}

// ownerInvalidate makes the owning node supply a modified block and
// invalidate it (a write by another node). Returns the supply time.
func (m *Machine) ownerInvalidate(own *node, b mem.Block) sim.Time {
	t := own.slcRes.Acquire(m.eng.Now(), SLCCycle) + SLCCycle
	if line, ok := own.slc.Invalidate(b); ok {
		if line.State != cache.Modified {
			panic(fmt.Sprintf("machine: owner-invalidate at node %d for %v block", own.id, line.State))
		}
		own.flc.Invalidate(b)
		own.hist[b] |= hInv
		own.st.InvalidationsReceived++
		return t
	}
	if _, ok := own.wbPending[b]; !ok {
		panic(fmt.Sprintf("machine: owner-invalidate at node %d for absent block %d with no writeback in flight", own.id, b))
	}
	return t
}

// finishReadFill completes a read transaction at the requester: the
// block is installed in the SLC (tagged if it was a pure prefetch), the
// FLC is filled for demand reads, and the processor resumes. The
// directory entry stays busy until the fill is applied, so no later
// transaction can observe the requester in a transitional state (the
// implicit completion ack of a real protocol).
func (m *Machine) finishReadFill(n *node, b mem.Block, tx *pendingTx, e *coherence.Entry) {
	t := m.eng.Now()
	slcStart := n.slcRes.Acquire(t, SLCCycle)
	done := slcStart + SLCCycle

	tag := tx.prefetch && !tx.demand && !tx.invalidated
	victim := n.slc.Insert(b, cache.Shared, tag)
	m.handleVictim(n, victim, done)
	n.hist[b] = (n.hist[b] | hTouched) &^ (hInv | hRepl)

	if tx.invalidated {
		// An invalidation raced ahead of the data: the value is
		// delivered to the processor once but the block is not cached.
		n.slc.Invalidate(b)
		n.flc.Invalidate(b)
		n.hist[b] |= hInv
	}
	if tx.demand {
		if !tx.invalidated {
			n.flc.Fill(b)
		}
		tx.resume(done + FLCFillForward)
	}
	delete(n.pending, b)
	e.Release()

	if tx.wantWrite {
		// Writes merged onto this read; acquire ownership now, reusing
		// the SLWB slot.
		m.sendWriteTx(n, b, done, tx.writeRefs)
		return
	}
	m.freeSLWB(n)
}

// startWriteTx registers the ownership transaction immediately (so
// later writes to the block merge onto it even while it waits for an
// SLWB slot), then acquires the slot and dispatches.
func (m *Machine) startWriteTx(n *node, b mem.Block, t sim.Time, refs int) {
	tx := &pendingTx{kind: txWrite, writeRefs: refs}
	n.pending[b] = tx
	m.allocSLWB(n, t, func(t2 sim.Time) {
		m.dispatchWriteTx(n, b, tx, t2)
	})
}

// sendWriteTx launches an ownership transaction whose SLWB slot is
// already held (a write merged onto a completed read reuses its slot).
func (m *Machine) sendWriteTx(n *node, b mem.Block, t sim.Time, refs int) {
	tx := &pendingTx{kind: txWrite, writeRefs: refs}
	n.pending[b] = tx
	m.dispatchWriteTx(n, b, tx, t)
}

func (m *Machine) dispatchWriteTx(n *node, b mem.Block, tx *pendingTx, t sim.Time) {
	home := m.home(b)
	arrive := m.mesh.Send(network.ReqPlane, n.id, home, network.CtrlFlits, t)
	m.eng.At(arrive, func() { m.homeWrite(home, n, b, tx) })
}

// homeWrite services an ownership request (upgrade or read-exclusive).
func (m *Machine) homeWrite(home int, n *node, b mem.Block, tx *pendingTx) {
	e := m.dir.Entry(b)
	run := func() {
		t := m.eng.Now()
		grant := func(done sim.Time, withData bool) {
			e.State = coherence.Dirty
			e.Owner = n.id
			e.ClearSharers()
			flits := network.CtrlFlits
			if withData {
				flits = network.DataFlits
			}
			arrive := m.mesh.Send(network.ReplyPlane, home, n.id, flits, done)
			m.eng.At(arrive, func() { m.finishWriteGrant(n, b, tx, e) })
		}

		switch e.State {
		case coherence.Uncached:
			grant(m.mems[home].Access(t), true)

		case coherence.SharedClean:
			wasSharer := e.IsSharer(n.id)
			var targets []int
			for _, s := range e.Sharers() {
				if s != n.id {
					targets = append(targets, s)
				}
			}
			if len(targets) == 0 {
				if wasSharer {
					grant(m.mems[home].Control(t), false)
				} else {
					grant(m.mems[home].Access(t), true)
				}
				return
			}
			// Invalidate every other sharer; collect acks at home.
			ctrl := m.mems[home].Control(t)
			remaining := len(targets)
			for _, s := range targets {
				s := s
				invArrive := m.mesh.Send(network.ReqPlane, home, s, network.CtrlFlits, ctrl)
				m.eng.At(invArrive, func() {
					ackAt := m.applyInv(m.nodes[s], b)
					ackArrive := m.mesh.Send(network.ReplyPlane, s, home, network.CtrlFlits, ackAt)
					m.eng.At(ackArrive, func() {
						remaining--
						if remaining > 0 {
							return
						}
						if wasSharer {
							grant(m.mems[home].Control(m.eng.Now()), false)
						} else {
							grant(m.mems[home].Access(m.eng.Now()), true)
						}
					})
				})
			}

		case coherence.Dirty:
			owner := e.Owner
			if owner == n.id {
				panic(fmt.Sprintf("machine: node %d write-misses a block the directory says it owns", n.id))
			}
			ctrl := m.mems[home].Control(t)
			fwd := m.mesh.Send(network.ReqPlane, home, owner, network.CtrlFlits, ctrl)
			m.eng.At(fwd, func() {
				supplyAt := m.ownerInvalidate(m.nodes[owner], b)
				dataArrive := m.mesh.Send(network.ReplyPlane, owner, home, network.DataFlits, supplyAt)
				m.eng.At(dataArrive, func() {
					grant(m.mems[home].Access(m.eng.Now()), true)
				})
			})
		}
	}
	if e.Acquire(run) {
		run()
	}
}

// finishWriteGrant completes an ownership transaction at the requester.
// As with read fills, the directory entry is released only once the
// grant is applied.
func (m *Machine) finishWriteGrant(n *node, b mem.Block, tx *pendingTx, e *coherence.Entry) {
	t := m.eng.Now()
	slcStart := n.slcRes.Acquire(t, SLCCycle)
	done := slcStart + SLCCycle

	victim := n.slc.Insert(b, cache.Modified, false)
	m.handleVictim(n, victim, done)
	n.hist[b] = (n.hist[b] | hTouched) &^ (hInv | hRepl)

	if tx.demand {
		// A read merged onto this ownership transaction.
		n.flc.Fill(b)
		tx.resume(done + FLCFillForward)
	}
	delete(n.pending, b)
	e.Release()
	m.freeSLWB(n)

	n.outWrites -= tx.writeRefs
	if n.outWrites < 0 {
		panic("machine: outstanding-write underflow")
	}
	if n.outWrites == 0 && n.drainWait != nil {
		w := n.drainWait
		n.drainWait = nil
		w(done)
	}
}

// applyInv applies an invalidation at a sharer node and returns the ack
// time. If the block's data is still in flight to this node, the fill
// is marked so the block is consumed once but not cached.
func (m *Machine) applyInv(n *node, b mem.Block) sim.Time {
	t := n.slcRes.Acquire(m.eng.Now(), SLCCycle) + SLCCycle
	if _, ok := n.slc.Invalidate(b); ok {
		n.flc.Invalidate(b)
		n.hist[b] |= hInv
		n.st.InvalidationsReceived++
	} else if tx, ok := n.pending[b]; ok && tx.kind == txRead {
		tx.invalidated = true
	}
	return t
}

// handleVictim processes an SLC eviction: FLC inclusion is maintained,
// the history records a replacement, and modified victims are written
// back to their home memory.
func (m *Machine) handleVictim(n *node, v cache.Victim, t sim.Time) {
	if !v.Valid {
		return
	}
	n.flc.Invalidate(v.Block)
	n.hist[v.Block] |= hRepl
	if v.Line.State != cache.Modified {
		return // shared victims are dropped silently (full-map tolerates stale presence bits)
	}
	n.st.Writebacks++
	if _, ok := n.wbPending[v.Block]; ok {
		panic("machine: duplicate writeback in flight")
	}
	n.wbPending[v.Block] = nil
	home := m.home(v.Block)
	arrive := m.mesh.Send(network.ReqPlane, n.id, home, network.DataFlits, t)
	m.eng.At(arrive, func() { m.homeWriteback(home, n, v.Block) })
}

// homeWriteback retires an eviction writeback at the home. A writeback
// that lost a race with another transaction (the directory no longer
// shows the sender as owner) is stale and is simply acknowledged.
func (m *Machine) homeWriteback(home int, n *node, b mem.Block) {
	e := m.dir.Entry(b)
	run := func() {
		t := m.eng.Now()
		var done sim.Time
		if e.State == coherence.Dirty && e.Owner == n.id {
			done = m.mems[home].Access(t)
			e.State = coherence.Uncached
			e.ClearSharers()
		} else {
			done = m.mems[home].Control(t)
		}
		ackArrive := m.mesh.Send(network.ReplyPlane, home, n.id, network.CtrlFlits, done)
		e.Release()
		m.eng.At(ackArrive, func() {
			cbs := n.wbPending[b]
			delete(n.wbPending, b)
			now := m.eng.Now()
			for _, cb := range cbs {
				cb(now)
			}
		})
	}
	if e.Acquire(run) {
		run()
	}
}
