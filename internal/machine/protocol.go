package machine

import (
	"fmt"

	"prefetchsim/internal/cache"
	"prefetchsim/internal/coherence"
	"prefetchsim/internal/mem"
	"prefetchsim/internal/network"
	"prefetchsim/internal/obs"
	"prefetchsim/internal/sim"
)

// This file implements the write-invalidate full-map directory protocol
// (paper §4, after Censier and Feautrier): a read miss is serviced by
// the home memory in zero or two node-to-node traversals when the
// memory copy is clean, and in four traversals when a remote cache
// holds a modified copy. Writes invalidate sharers and collect acks at
// the home. Directory entries serialize transactions per block (see
// DESIGN.md), which stands in for the transient states of a real
// implementation.
//
// Every protocol hop is a pooled ev (events.go), not a closure: the
// handlers here receive the ev carrying the transaction's state and
// reschedule it (or a fresh pooled ev) for the next hop.

// startReadTx registers the transaction (so later operations on the
// block merge with it instead of duplicating it), acquires an SLWB slot
// — demand reads wait for one; the prefetch path reserves its slot
// beforehand via trySLWB — and launches the read. For demand reads,
// issue is the processor-side issue time the eventual fill charges the
// read-stall against.
// cls is the span class of the demand miss being serviced (only
// stamped when spans are collected).
func (m *Machine) startReadTx(n *node, b mem.Block, isPrefetch bool, t sim.Time, demand bool, issue sim.Time, cls obs.SpanClass) {
	tx := m.newTx(txRead)
	tx.prefetch = isPrefetch
	tx.demand = demand
	tx.issue = issue
	if m.sp != nil {
		tx.span = obs.Span{Issue: int64(issue), Block: uint64(b), Node: int32(n.id), Class: cls}
	}
	n.pending.Put(b, tx)
	if n.slwbUsed < m.cfg.SLWBEntries {
		n.slwbUsed++
		n.slwbSet()
		m.dispatchReadTx(n, b, tx, t)
		return
	}
	n.slwbWaiters = append(n.slwbWaiters, slwbWaiter{b: b, tx: tx})
}

// sendReadTx launches a read transaction whose SLWB slot is already
// held.
func (m *Machine) sendReadTx(n *node, b mem.Block, isPrefetch bool, t sim.Time) {
	tx := m.newTx(txRead)
	tx.prefetch = isPrefetch
	if m.sp != nil {
		tx.span = obs.Span{Issue: int64(t), Block: uint64(b), Node: int32(n.id), Class: obs.SpanPrefetch}
	}
	n.pending.Put(b, tx)
	m.dispatchReadTx(n, b, tx, t)
}

func (m *Machine) dispatchReadTx(n *node, b mem.Block, tx *pendingTx, t sim.Time) {
	if m.sp != nil {
		tx.span.Req = int64(t)
	}
	home := m.home(b)
	arrive := m.mesh.Send(network.ReqPlane, n.id, home, network.CtrlFlits, t)
	c := m.newEv(evHomeRead)
	c.n, c.b, c.tx, c.home = n, b, tx, home
	m.eng.Schedule(arrive, c)
}

// homeRead services a read request at the block's home node. The event
// holds the directory entry (acquired in fireEv/runHome).
func (m *Machine) homeRead(c *ev) {
	e, n, b, home := c.e, c.n, c.b, c.home
	t := m.eng.Now()
	switch e.State {
	case coherence.Uncached, coherence.SharedClean:
		// Memory responds directly (0 or 2 traversals).
		done := m.mems[home].Access(t)
		if m.sp != nil {
			c.tx.span.Reply = int64(done)
		}
		e.State = coherence.SharedClean
		e.AddSharer(n.id)
		arrive := m.mesh.Send(network.ReplyPlane, home, n.id, network.DataFlits, done)
		f := m.newEv(evReadFill)
		f.n, f.b, f.tx, f.e = n, b, c.tx, e
		m.eng.Schedule(arrive, f)

	case coherence.Dirty:
		owner := e.Owner
		if owner == n.id {
			panic(fmt.Sprintf("machine: node %d read-misses a block the directory says it owns", n.id))
		}
		// Four traversals: home asks the owner for a fresh copy,
		// memory is updated, then the requester is answered
		// (evReadFwd -> evReadWb -> evReadFill in events.go).
		ctrl := m.mems[home].Control(t)
		fwd := m.mesh.Send(network.ReqPlane, home, owner, network.CtrlFlits, ctrl)
		f := m.newEv(evReadFwd)
		f.n, f.b, f.tx, f.e, f.home, f.aux = n, b, c.tx, e, home, owner
		m.eng.Schedule(fwd, f)
	}
}

// ownerDowngrade makes the owning node supply a modified block and keep
// a shared copy. If the owner evicted the block meanwhile (writeback in
// flight), the data comes from its victim buffer and it keeps nothing.
// It returns the supply time and whether the owner retains a copy.
func (m *Machine) ownerDowngrade(own *node, b mem.Block) (sim.Time, bool) {
	t := own.slcRes.Acquire(m.eng.Now(), SLCCycle) + SLCCycle
	if line, ok := own.slc.Lookup(b); ok {
		if line.State != cache.Modified {
			panic(fmt.Sprintf("machine: forward to node %d for block it holds in %v", own.id, line.State))
		}
		own.slc.SetState(b, cache.Shared)
		return t, true
	}
	if _, ok := own.wbPending.Get(b); !ok {
		panic(fmt.Sprintf("machine: forward to node %d for absent block %d with no writeback in flight", own.id, b))
	}
	return t, false
}

// ownerInvalidate makes the owning node supply a modified block and
// invalidate it (a write by another node). Returns the supply time.
func (m *Machine) ownerInvalidate(own *node, b mem.Block) sim.Time {
	t := own.slcRes.Acquire(m.eng.Now(), SLCCycle) + SLCCycle
	m.trace(obs.EvInvalidate, own, t, uint64(b), 0)
	if line, ok := own.slc.Invalidate(b); ok {
		if line.State != cache.Modified {
			panic(fmt.Sprintf("machine: owner-invalidate at node %d for %v block", own.id, line.State))
		}
		own.flc.Invalidate(b)
		*own.hist.Ref(b) |= hInv
		own.st.InvalidationsReceived++
		return t
	}
	if _, ok := own.wbPending.Get(b); !ok {
		panic(fmt.Sprintf("machine: owner-invalidate at node %d for absent block %d with no writeback in flight", own.id, b))
	}
	return t
}

// resumeDemand unblocks the processor waiting on tx at time t, charging
// the read stall against the transaction's issue time.
func (m *Machine) resumeDemand(n *node, tx *pendingTx, t sim.Time) {
	n.st.ReadStall += t - tx.issue - FLCHit
	n.met.ReadMissStall.Observe(int64(t - tx.issue - FLCHit))
	n.time = t
	m.scheduleStep(n)
}

// finishReadFill completes a read transaction at the requester: the
// block is installed in the SLC (tagged if it was a pure prefetch), the
// FLC is filled for demand reads, and the processor resumes. The
// directory entry stays busy until the fill is applied, so no later
// transaction can observe the requester in a transitional state (the
// implicit completion ack of a real protocol).
func (m *Machine) finishReadFill(n *node, b mem.Block, tx *pendingTx, e *coherence.Entry) {
	t := m.eng.Now()
	slcStart := n.slcRes.Acquire(t, SLCCycle)
	done := slcStart + SLCCycle

	m.trace(obs.EvAck, n, done, uint64(b), obs.AckReadFill)
	tag := tx.prefetch && !tx.demand && !tx.invalidated
	if m.sp != nil {
		m.completeReadSpan(n, tx, t, done, tag, b)
	}
	victim := n.slc.Insert(b, cache.Shared, tag)
	m.handleVictim(n, victim, done)
	h := n.hist.Ref(b)
	*h = (*h | hTouched) &^ (hInv | hRepl)

	if tx.invalidated {
		// An invalidation raced ahead of the data: the value is
		// delivered to the processor once but the block is not cached.
		n.slc.Invalidate(b)
		n.flc.Invalidate(b)
		*n.hist.Ref(b) |= hInv
	}
	if tx.demand {
		if !tx.invalidated {
			n.flc.Fill(b)
		}
		m.resumeDemand(n, tx, done+FLCFillForward)
	}
	n.pending.Delete(b)
	e.Release()

	if tx.wantWrite {
		// Writes merged onto this read; acquire ownership now, reusing
		// the SLWB slot.
		refs := tx.writeRefs
		m.putTx(tx)
		m.sendWriteTx(n, b, done, refs)
		return
	}
	m.putTx(tx)
	m.freeSLWB(n)
}

// startWriteTx registers the ownership transaction immediately (so
// later writes to the block merge onto it even while it waits for an
// SLWB slot), then acquires the slot and dispatches.
func (m *Machine) startWriteTx(n *node, b mem.Block, t sim.Time, refs int) {
	tx := m.newTx(txWrite)
	tx.writeRefs = refs
	if m.sp != nil {
		tx.span = obs.Span{Issue: int64(t), Block: uint64(b), Node: int32(n.id), Class: obs.SpanWrite}
	}
	n.pending.Put(b, tx)
	if n.slwbUsed < m.cfg.SLWBEntries {
		n.slwbUsed++
		n.slwbSet()
		m.dispatchWriteTx(n, b, tx, t)
		return
	}
	n.slwbWaiters = append(n.slwbWaiters, slwbWaiter{b: b, tx: tx})
}

// sendWriteTx launches an ownership transaction whose SLWB slot is
// already held (a write merged onto a completed read reuses its slot).
func (m *Machine) sendWriteTx(n *node, b mem.Block, t sim.Time, refs int) {
	tx := m.newTx(txWrite)
	tx.writeRefs = refs
	if m.sp != nil {
		tx.span = obs.Span{Issue: int64(t), Block: uint64(b), Node: int32(n.id), Class: obs.SpanWrite}
	}
	n.pending.Put(b, tx)
	m.dispatchWriteTx(n, b, tx, t)
}

func (m *Machine) dispatchWriteTx(n *node, b mem.Block, tx *pendingTx, t sim.Time) {
	if m.sp != nil {
		tx.span.Req = int64(t)
	}
	home := m.home(b)
	arrive := m.mesh.Send(network.ReqPlane, n.id, home, network.CtrlFlits, t)
	c := m.newEv(evHomeWrite)
	c.n, c.b, c.tx, c.home = n, b, tx, home
	m.eng.Schedule(arrive, c)
}

// sendWriteGrant makes c's requester the dirty owner and schedules the
// grant's arrival there. done is when home memory finished its part;
// withData picks data-vs-control reply size (an upgrade whose requester
// is still a sharer needs no data). c itself is not consumed: callers
// recycle it.
func (m *Machine) sendWriteGrant(c *ev, done sim.Time, withData bool) {
	if m.sp != nil {
		c.tx.span.Reply = int64(done)
	}
	e := c.e
	e.State = coherence.Dirty
	e.Owner = c.n.id
	e.ClearSharers()
	flits := network.CtrlFlits
	if withData {
		flits = network.DataFlits
	}
	arrive := m.mesh.Send(network.ReplyPlane, c.home, c.n.id, flits, done)
	f := m.newEv(evWriteGrant)
	f.n, f.b, f.tx, f.e = c.n, c.b, c.tx, c.e
	m.eng.Schedule(arrive, f)
}

// homeWrite services an ownership request (upgrade or read-exclusive).
// The event holds the directory entry.
func (m *Machine) homeWrite(c *ev) {
	e, n, home := c.e, c.n, c.home
	t := m.eng.Now()
	switch e.State {
	case coherence.Uncached:
		m.sendWriteGrant(c, m.mems[home].Access(t), true)

	case coherence.SharedClean:
		wasSharer := e.IsSharer(n.id)
		targets := e.SharerCount()
		if wasSharer {
			targets--
		}
		if targets == 0 {
			if wasSharer {
				m.sendWriteGrant(c, m.mems[home].Control(t), false)
			} else {
				m.sendWriteGrant(c, m.mems[home].Access(t), true)
			}
			return
		}
		// Invalidate every other sharer (ascending node order, for
		// reproducibility); acks collect on a pooled coordinator event
		// that issues the grant when the last one arrives (evInvAck in
		// events.go).
		ctrl := m.mems[home].Control(t)
		co := m.newEv(evInvCoord)
		co.n, co.b, co.tx, co.e, co.home = n, c.b, c.tx, e, home
		co.aux = targets
		co.flag = wasSharer
		for v, s := e.Bits(), 0; v != 0; v, s = v>>1, s+1 {
			if v&1 == 0 || s == n.id {
				continue
			}
			invArrive := m.mesh.Send(network.ReqPlane, home, s, network.CtrlFlits, ctrl)
			f := m.newEv(evInvSend)
			f.b, f.home, f.aux, f.co = c.b, home, s, co
			m.eng.Schedule(invArrive, f)
		}

	case coherence.Dirty:
		owner := e.Owner
		if owner == n.id {
			panic(fmt.Sprintf("machine: node %d write-misses a block the directory says it owns", n.id))
		}
		ctrl := m.mems[home].Control(t)
		fwd := m.mesh.Send(network.ReqPlane, home, owner, network.CtrlFlits, ctrl)
		f := m.newEv(evWriteFwd)
		f.n, f.b, f.tx, f.e, f.home, f.aux = n, c.b, c.tx, e, home, owner
		m.eng.Schedule(fwd, f)
	}
}

// finishWriteGrant completes an ownership transaction at the requester.
// As with read fills, the directory entry is released only once the
// grant is applied.
func (m *Machine) finishWriteGrant(n *node, b mem.Block, tx *pendingTx, e *coherence.Entry) {
	t := m.eng.Now()
	slcStart := n.slcRes.Acquire(t, SLCCycle)
	done := slcStart + SLCCycle

	m.trace(obs.EvAck, n, done, uint64(b), obs.AckWriteGrant)
	if m.sp != nil {
		m.completeTxSpan(tx, t, done)
	}
	victim := n.slc.Insert(b, cache.Modified, false)
	m.handleVictim(n, victim, done)
	h := n.hist.Ref(b)
	*h = (*h | hTouched) &^ (hInv | hRepl)

	if tx.demand {
		// A read merged onto this ownership transaction.
		n.flc.Fill(b)
		m.resumeDemand(n, tx, done+FLCFillForward)
	}
	n.pending.Delete(b)
	e.Release()
	m.freeSLWB(n)

	n.outWrites -= tx.writeRefs
	if n.outWrites < 0 {
		panic("machine: outstanding-write underflow")
	}
	if n.outWrites == 0 && n.drainWait != nil {
		w := n.drainWait
		n.drainWait = nil
		w(done)
	}
	m.putTx(tx)
}

// applyInv applies an invalidation at a sharer node and returns the ack
// time. If the block's data is still in flight to this node, the fill
// is marked so the block is consumed once but not cached.
func (m *Machine) applyInv(n *node, b mem.Block) sim.Time {
	t := n.slcRes.Acquire(m.eng.Now(), SLCCycle) + SLCCycle
	m.trace(obs.EvInvalidate, n, t, uint64(b), 0)
	if _, ok := n.slc.Invalidate(b); ok {
		n.flc.Invalidate(b)
		*n.hist.Ref(b) |= hInv
		n.st.InvalidationsReceived++
	} else if tx, ok := n.pending.Get(b); ok && tx.kind == txRead {
		tx.invalidated = true
	}
	return t
}

// handleVictim processes an SLC eviction: FLC inclusion is maintained,
// the history records a replacement, and modified victims are written
// back to their home memory.
func (m *Machine) handleVictim(n *node, v cache.Victim, t sim.Time) {
	if !v.Valid {
		return
	}
	n.flc.Invalidate(v.Block)
	*n.hist.Ref(v.Block) |= hRepl
	if v.Line.State != cache.Modified {
		return // shared victims are dropped silently (full-map tolerates stale presence bits)
	}
	n.st.Writebacks++
	if _, ok := n.wbPending.Get(v.Block); ok {
		panic("machine: duplicate writeback in flight")
	}
	n.wbPending.Put(v.Block, nil)
	home := m.home(v.Block)
	arrive := m.mesh.Send(network.ReqPlane, n.id, home, network.DataFlits, t)
	c := m.newEv(evWriteback)
	c.n, c.b, c.home = n, v.Block, home
	m.eng.Schedule(arrive, c)
}

// homeWriteback retires an eviction writeback at the home. A writeback
// that lost a race with another transaction (the directory no longer
// shows the sender as owner) is stale and is simply acknowledged.
func (m *Machine) homeWriteback(c *ev) {
	e, n, b, home := c.e, c.n, c.b, c.home
	t := m.eng.Now()
	var done sim.Time
	if e.State == coherence.Dirty && e.Owner == n.id {
		done = m.mems[home].Access(t)
		e.State = coherence.Uncached
		e.ClearSharers()
	} else {
		done = m.mems[home].Control(t)
	}
	ackArrive := m.mesh.Send(network.ReplyPlane, home, n.id, network.CtrlFlits, done)
	e.Release()
	f := m.newEv(evWritebackAck)
	f.n, f.b = n, b
	m.eng.Schedule(ackArrive, f)
}
