package machine

import (
	"testing"

	"prefetchsim/internal/cache"
	"prefetchsim/internal/coherence"
	"prefetchsim/internal/mem"
	"prefetchsim/internal/prefetch"
	"prefetchsim/internal/trace"
)

// Edge-case and race tests for the protocol and buffer machinery.

func TestReadAfterEvictingModifiedBlockWaitsForWriteback(t *testing.T) {
	// Write b0 (Modified), evict it with a conflicting read, then
	// immediately re-read b0: the read must serialize behind the
	// writeback (wbPending guard) rather than confuse the directory.
	cfg := cfgN(1)
	cfg.SLCSize = 16384
	b0 := page1
	conflict := page1 + 512*mem.BlockBytes
	p := prog([]trace.Op{
		wr(b0, 0),
		rd(conflict, 10),
		rd(b0, 0), // races with the writeback
	})
	m, _ := run(t, cfg, p)
	st := &m.Stats.Nodes[0]
	if st.Writebacks != 1 || st.ReadMisses != 2 {
		t.Fatalf("writebacks=%d misses=%d", st.Writebacks, st.ReadMisses)
	}
	e, _ := m.dir.Peek(mem.BlockOf(mem.Addr(b0)))
	if e.State != coherence.SharedClean || !e.IsSharer(0) {
		t.Fatalf("directory after writeback race: %v sharers=%v", e.State, e.Sharers())
	}
}

func TestWriteAfterEvictingModifiedBlockWaitsForWriteback(t *testing.T) {
	cfg := cfgN(1)
	cfg.SLCSize = 16384
	b0 := page1
	conflict := page1 + 512*mem.BlockBytes
	p := prog([]trace.Op{
		wr(b0, 0),
		rd(conflict, 10),
		wr(b0, 0), // races with the writeback
		rd(page1+64, 500),
	})
	m, _ := run(t, cfg, p)
	e, _ := m.dir.Peek(mem.BlockOf(mem.Addr(b0)))
	if e.State != coherence.Dirty || e.Owner != 0 {
		t.Fatalf("directory after write-back/write race: %v", e.State)
	}
	if m.nodes[0].outWrites != 0 {
		t.Fatal("outstanding writes not drained")
	}
}

func TestRemoteReadOfEvictedDirtyBlockServedFromVictimBuffer(t *testing.T) {
	// Node 0 modifies a block homed at node 1, evicts it (writeback in
	// flight), while node 1 reads it. Whatever the interleaving, the
	// simulation must complete with consistent state.
	cfg := cfgN(2)
	cfg.SLCSize = 16384
	x := page1 // home node 1
	conflict := page1 + 512*mem.BlockBytes
	p := prog(
		[]trace.Op{wr(x, 0), rd(conflict, 40)}, // node 0: own then evict
		[]trace.Op{rd(x, 60)},                  // node 1 reads during the window
	)
	m, _ := run(t, cfg, p)
	if m.Stats.Nodes[1].ReadMisses != 2 { // conflict read counts on node 0 only
		// node 1 performed exactly one read
		if m.Stats.Nodes[1].ReadMisses != 1 {
			t.Fatalf("node 1 misses = %d", m.Stats.Nodes[1].ReadMisses)
		}
	}
	e, _ := m.dir.Peek(mem.BlockOf(mem.Addr(x)))
	if e == nil || e.Busy() {
		t.Fatal("directory entry leaked busy state")
	}
}

func TestInvalidationRacingFillIsConsumedOnce(t *testing.T) {
	// Node 0 reads x; node 1 writes x at nearly the same time. If the
	// invalidation reaches node 0 while its fill is in flight, the fill
	// must be consumed once and not cached.
	x := page1
	for gap := uint32(0); gap < 60; gap += 7 {
		p := prog(
			[]trace.Op{rd(x, gap), rd(x, 400)},
			[]trace.Op{wr(x, 20)},
		)
		m, _ := run(t, cfgN(2), p)
		// Whatever the interleaving, the run completes and the second
		// read sees a consistent block.
		if m.Stats.Nodes[0].ReadMisses < 1 {
			t.Fatalf("gap %d: node 0 misses = %d", gap, m.Stats.Nodes[0].ReadMisses)
		}
		e, _ := m.dir.Peek(mem.BlockOf(mem.Addr(x)))
		if e.Busy() {
			t.Fatalf("gap %d: entry left busy", gap)
		}
	}
}

func TestManyWritesToOneBlockMergeIntoOneTransaction(t *testing.T) {
	var ops []trace.Op
	for i := 0; i < 10; i++ {
		ops = append(ops, wr(page1+uint64(i%4)*8, 0))
	}
	m, _ := run(t, cfgN(1), prog(ops))
	// One block: one ownership transaction, one memory access.
	if m.mems[0].Accesses != 1 {
		t.Fatalf("memory accesses = %d, want 1 (writes must merge)", m.mems[0].Accesses)
	}
	if m.nodes[0].outWrites != 0 {
		t.Fatal("outstanding writes not drained")
	}
}

func TestFLWBFillsAndStallsProcessor(t *testing.T) {
	// A burst of writes to distinct blocks outruns the FLWB drain rate
	// (one SLC cycle each): the processor must eventually stall.
	var ops []trace.Op
	for i := 0; i < 64; i++ {
		ops = append(ops, wr(page1+uint64(i)*mem.BlockBytes, 0))
	}
	m, _ := run(t, cfgN(1), prog(ops))
	if m.Stats.Nodes[0].WriteStall == 0 {
		t.Fatal("64 back-to-back writes never stalled on the 8-entry FLWB")
	}
}

func TestReadMergesOntoPendingWrite(t *testing.T) {
	// A read of a block whose ownership transaction is in flight merges
	// onto it and completes when the grant arrives.
	p := prog([]trace.Op{
		wr(page1, 0),
		rd(page1, 0), // write tx still in flight
	})
	m, _ := run(t, cfgN(1), p)
	st := &m.Stats.Nodes[0]
	if st.ReadMisses != 1 {
		t.Fatalf("merged read misses = %d, want 1", st.ReadMisses)
	}
	line, ok := m.nodes[0].slc.Lookup(mem.BlockOf(mem.Addr(page1)))
	if !ok || line.State != cache.Modified {
		t.Fatalf("line after merged read = %+v ok=%v", line, ok)
	}
}

func TestWriteMergesOntoPendingPrefetch(t *testing.T) {
	// Sequential prefetching launches a prefetch of B+1; a write to B+1
	// while the prefetch is in flight must upgrade after the fill, not
	// duplicate the transaction.
	cfg := cfgN(1)
	cfg.NewPrefetcher = func(int) prefetch.Prefetcher { return prefetch.NewSequential(1) }
	p := prog([]trace.Op{
		rd(page1, 0),                    // miss: prefetches block+1
		wr(page1+mem.BlockBytes, 0),     // write the in-flight block
		rd(page1+2*mem.BlockBytes, 500), // let everything settle
	})
	m, _ := run(t, cfg, p)
	line, ok := m.nodes[0].slc.Lookup(mem.BlockOf(mem.Addr(page1 + mem.BlockBytes)))
	if !ok || line.State != cache.Modified {
		t.Fatalf("prefetched-then-written line = %+v ok=%v", line, ok)
	}
	if m.nodes[0].outWrites != 0 {
		t.Fatal("outstanding writes not drained")
	}
}

func TestDelayedHitNotCountedAsMiss(t *testing.T) {
	// With zero think time a sequential stream chases its own
	// prefetches: those reads are delayed hits, not misses.
	reads := seqReads(1, 1, 1, 0)
	cfg := cfgN(1)
	cfg.NewPrefetcher = func(int) prefetch.Prefetcher { return prefetch.NewSequential(1) }
	m, _ := run(t, cfg, prog(reads))
	st := &m.Stats.Nodes[0]
	if st.DelayedHits == 0 {
		t.Fatal("no delayed hits on a zero-think sequential stream")
	}
	if st.ReadMisses+st.DelayedHits+st.SLCReadHits != 128 {
		t.Fatalf("misses(%d) + delayed hits(%d) + SLC hits(%d) != 128 block touches",
			st.ReadMisses, st.DelayedHits, st.SLCReadHits)
	}
	if st.ReadMisses > 16 {
		t.Fatalf("misses = %d; delayed hits leaked into the miss count", st.ReadMisses)
	}
}

func TestAdaptivePrefetcherRunsInMachine(t *testing.T) {
	cfg := cfgN(1)
	cfg.NewPrefetcher = func(int) prefetch.Prefetcher { return prefetch.NewAdaptive(1) }
	m, _ := run(t, cfg, prog(seqReads(1, 1, 2, 20)))
	if m.Stats.TotalPrefetchesIssued() == 0 {
		t.Fatal("adaptive prefetcher never issued")
	}
	if m.Stats.TotalReadMisses() >= 256 {
		t.Fatal("adaptive prefetcher removed nothing")
	}
}

func TestLockHandoffOrderIsFIFO(t *testing.T) {
	// Three processors contend for one lock; grants must follow queue
	// order (the DASH-like queue-based lock).
	lock := uint64(3 * mem.PageBytes)
	mk := func(gap uint32) []trace.Op {
		return []trace.Op{
			{Kind: trace.Read, Addr: 2 * page1, Gap: gap}, // stagger arrival
			{Kind: trace.Acquire, Addr: lock},
			rd(page1, 200),
			{Kind: trace.Release, Addr: lock},
		}
	}
	m, _ := run(t, cfgN(4), prog(mk(0), mk(50), mk(100), mk(150)))
	// Arrival order 0,1,2,3 → completion times strictly increasing.
	var prev int64
	for i := 0; i < 4; i++ {
		et := int64(m.Stats.Nodes[i].ExecTime)
		if et <= prev {
			t.Fatalf("node %d finished at %d, not after node %d (%d): lock handoff out of order",
				i, et, i-1, prev)
		}
		prev = et
	}
}

func TestBarrierReusableAcrossEpisodes(t *testing.T) {
	mk := func() []trace.Op {
		var ops []trace.Op
		for e := 0; e < 5; e++ {
			ops = append(ops, rd(page1+uint64(e)*mem.BlockBytes, uint32(10*e)))
			ops = append(ops, trace.Op{Kind: trace.Barrier, Addr: uint64(e)})
		}
		return ops
	}
	m, _ := run(t, cfgN(2), prog(mk(), mk()))
	if m.Stats.Nodes[0].ExecTime == 0 || m.Stats.Nodes[1].ExecTime == 0 {
		t.Fatal("barrier episodes did not complete")
	}
}

func TestMalformedBarrierEpisodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched barrier episode did not panic")
		}
	}()
	p := prog(
		[]trace.Op{{Kind: trace.Barrier, Addr: 3}}, // wrong episode
		[]trace.Op{{Kind: trace.Barrier, Addr: 0}},
	)
	m, err := New(cfgN(2), p)
	if err != nil {
		t.Fatal(err)
	}
	m.Run() //nolint:errcheck // panics before returning
}

func TestSharersAcrossManyNodesAllInvalidated(t *testing.T) {
	// All 16 processors read x, then one writes it: 15 invalidations.
	x := page1
	streams := make([][]trace.Op, 16)
	for i := range streams {
		streams[i] = []trace.Op{rd(x, uint32(10*i))}
	}
	streams[3] = append(streams[3], wr(x, 3000))
	m, _ := run(t, cfgN(16), prog(streams...))
	var invs int64
	for i := range m.Stats.Nodes {
		invs += m.Stats.Nodes[i].InvalidationsReceived
	}
	if invs != 15 {
		t.Fatalf("invalidations = %d, want 15", invs)
	}
	e, _ := m.dir.Peek(mem.BlockOf(mem.Addr(x)))
	if e.State != coherence.Dirty || e.Owner != 3 {
		t.Fatalf("directory = %v owner %d", e.State, e.Owner)
	}
}

func TestPrefetchIntoFiniteSLCReplacesAndAccounts(t *testing.T) {
	// Degree-8 sequential prefetching into a tiny SLC: prefetched
	// blocks evict each other; the prefetch bookkeeping must not leak.
	cfg := cfgN(1)
	cfg.SLCSize = 4096 // 128 blocks
	cfg.NewPrefetcher = func(int) prefetch.Prefetcher { return prefetch.NewSequential(8) }
	var ops []trace.Op
	for i := 0; i < 1024; i++ {
		ops = append(ops, rd(page1+uint64(i)*mem.BlockBytes, 5))
	}
	m, _ := run(t, cfg, prog(ops))
	st := &m.Stats.Nodes[0]
	if st.PrefetchesUseful > st.PrefetchesIssued {
		t.Fatalf("useful (%d) > issued (%d)", st.PrefetchesUseful, st.PrefetchesIssued)
	}
	if st.PrefetchesUnconsumed < 0 || st.PrefetchesUnconsumed > st.PrefetchesIssued {
		t.Fatalf("unconsumed = %d out of range", st.PrefetchesUnconsumed)
	}
}

func TestDeferredReadAndWriteBehindWritebackMerge(t *testing.T) {
	// Both a write and a read to a block are issued while its eviction
	// writeback is still in flight: the deferred operations must merge
	// into a single transaction (regression: the second callback used
	// to overwrite the first's pending entry, leaving two transactions
	// in flight for one block).
	cfg := cfgN(1)
	cfg.SLCSize = 16384
	b0 := page1
	conflict := page1 + 512*mem.BlockBytes
	p := prog([]trace.Op{
		wr(b0, 0),
		rd(conflict, 10), // evicts b0 (Modified): writeback in flight
		wr(b0, 0),        // deferred behind the writeback
		rd(b0, 0),        // also deferred; must merge with the write
	})
	m, _ := run(t, cfg, p)
	if m.nodes[0].outWrites != 0 {
		t.Fatal("outstanding writes not drained")
	}
	line, ok := m.nodes[0].slc.Lookup(mem.BlockOf(mem.Addr(b0)))
	if !ok || line.State != cache.Modified {
		t.Fatalf("line after deferred merge = %+v ok=%v", line, ok)
	}
	e, _ := m.dir.Peek(mem.BlockOf(mem.Addr(b0)))
	if e.State != coherence.Dirty || e.Owner != 0 || e.Busy() {
		t.Fatalf("directory after deferred merge: %v owner=%d busy=%v",
			e.State, e.Owner, e.Busy())
	}
}

func TestSequentialConsistencyBlocksWrites(t *testing.T) {
	// Under SC each write stalls the processor for the full ownership
	// latency; under RC it costs ~1 pclock. A write-heavy program must
	// therefore run much longer under SC.
	var ops []trace.Op
	for i := 0; i < 32; i++ {
		ops = append(ops, wr(page1+uint64(i)*mem.BlockBytes, 2))
	}
	rc, _ := run(t, cfgN(2), prog(ops, nil))
	scCfg := cfgN(2)
	scCfg.SequentialConsistency = true
	sc, _ := run(t, scCfg, prog(ops, nil))
	if sc.Stats.Nodes[0].ExecTime < 3*rc.Stats.Nodes[0].ExecTime {
		t.Fatalf("SC exec %d not much slower than RC %d",
			sc.Stats.Nodes[0].ExecTime, rc.Stats.Nodes[0].ExecTime)
	}
	if sc.Stats.Nodes[0].WriteStall == 0 {
		t.Fatal("SC writes recorded no write stall")
	}
}

func TestSequentialConsistencyReleaseNeedsNoDrain(t *testing.T) {
	// Under SC every write is already performed when the release
	// executes, so the release never waits on the drain path.
	lock := uint64(3 * mem.PageBytes)
	cfg := cfgN(1)
	cfg.SequentialConsistency = true
	p := prog([]trace.Op{
		{Kind: trace.Acquire, Addr: lock},
		wr(page1, 0),
		{Kind: trace.Release, Addr: lock},
	})
	m, _ := run(t, cfg, p)
	if m.nodes[0].outWrites != 0 {
		t.Fatal("outstanding writes under SC")
	}
}

func TestLookaheadIDetReducesMergesOnFastStream(t *testing.T) {
	// A tight stride stream where d=1 prefetches are always late: the
	// lookahead variant must convert late (merged) prefetches into
	// timely ones, reducing stall.
	var reads []trace.Op
	for i := 0; i < 256; i++ {
		reads = append(reads, rdpc(7, page1+uint64(i)*mem.BlockBytes*2, 6))
	}
	mk := func(pf func(int) prefetch.Prefetcher) *Machine {
		cfg := cfgN(1)
		cfg.NewPrefetcher = pf
		m, _ := run(t, cfg, prog(reads))
		return m
	}
	plain := mk(func(int) prefetch.Prefetcher { return prefetch.NewIDetection(256, 1) })
	la := mk(func(int) prefetch.Prefetcher { return prefetch.NewLookaheadIDetection(256, 1) })
	if la.Stats.TotalReadStall() >= plain.Stats.TotalReadStall() {
		t.Fatalf("lookahead stall %d not below plain %d",
			la.Stats.TotalReadStall(), plain.Stats.TotalReadStall())
	}
}

func TestHybridPrefetcherInMachine(t *testing.T) {
	cfg := cfgN(1)
	cfg.NewPrefetcher = func(int) prefetch.Prefetcher {
		return prefetch.NewHybrid(map[trace.PC]int64{7: mem.BlockBytes}, 1)
	}
	m, _ := run(t, cfg, prog(seqReads(7, 1, 1, 40)))
	if m.Stats.TotalReadMisses() > 8 {
		t.Fatalf("hybrid left %d misses with a perfect hint", m.Stats.TotalReadMisses())
	}
}
