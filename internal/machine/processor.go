package machine

import (
	"fmt"

	"prefetchsim/internal/cache"
	"prefetchsim/internal/mem"
	"prefetchsim/internal/obs"
	"prefetchsim/internal/prefetch"
	"prefetchsim/internal/sim"
	"prefetchsim/internal/trace"
)

// stepNode is the processor's fetch-execute loop. Operations that hit
// the FLC or are buffered (writes) execute inline; the loop is bounded
// by the engine's next pending event so local batching never violates
// causality (an invalidation scheduled for t must be applied before this
// node reads at t' > t). Blocking operations return from the loop; their
// completion callbacks reschedule it.
//
// The loop has two gears. runBatch executes the longest possible run of
// purely local ops (FLC read hits, writes performed in an owned SLC
// line) straight out of the node's current op batch with the causality
// horizon loaded once — those ops never touch the event queue, so the
// horizon cannot move under them. The general gear below handles one op
// at a time through the dispatch switch, re-reading the horizon per op
// because misses and transactions schedule events.
func (m *Machine) stepNode(n *node) {
	if n.done {
		return
	}
	for {
		if !n.stashed && n.bi < len(n.batch) {
			m.runBatch(n)
		}
		op := n.nextOp()
		// Apply the think gap, then make sure no pending event (an
		// invalidation, another node's transaction) is scheduled before
		// this op would execute; if one is, stash the op and resume at
		// the op's own time.
		n.time += sim.Time(op.Gap)
		if n.time > m.eng.Horizon() {
			op.Gap = 0
			n.stash, n.stashed = op, true
			m.scheduleStep(n)
			return
		}
		switch op.Kind {
		case trace.Read:
			if !m.doRead(n, op) {
				return // blocked; fill callback resumes
			}
		case trace.Write:
			if !m.doWrite(n, op) {
				return // sequential consistency: blocked until performed
			}
		case trace.Acquire:
			m.doAcquire(n, op.Addr)
			return
		case trace.Release:
			if !m.doRelease(n, op.Addr) {
				return // waiting for write drain
			}
		case trace.Barrier:
			m.doBarrier(n, op.Addr)
			return
		case trace.End:
			n.done = true
			n.st.ExecTime = n.time
			return
		default:
			panic(fmt.Sprintf("machine: node %d: unknown op kind %v", n.id, op.Kind))
		}
	}
}

// runBatch is the fused fast path: it consumes a prefix of the node's
// local op batch consisting of FLC read hits and release-consistency
// writes that perform locally in a Modified SLC line, without
// re-entering the dispatch switch per op. Neither kind of op schedules
// an event, so the engine's horizon — the causality bound — is read
// once and stays exact for the whole run: the first op at or past a
// pending event's time (or needing any non-local action) breaks the
// run and falls back to the general gear, which replays the very same
// checks one op at a time. The inlined arithmetic below mirrors
// doRead's hit path and doWrite's owned-line path exactly; the golden
// digests pin that equivalence.
func (m *Machine) runBatch(n *node) {
	horizon := m.eng.Horizon()
	ops := n.batch
	i := n.bi
	t := n.time
	var reads int64
	for i < len(ops) {
		op := &ops[i]
		at := t + sim.Time(op.Gap)
		if at > horizon {
			break
		}
		if op.Kind == trace.Read {
			if !n.flc.Lookup(mem.BlockOf(mem.Addr(op.Addr))) {
				break
			}
			reads++
			t = at + FLCHit
		} else if op.Kind == trace.Write && !m.cfg.SequentialConsistency {
			line, present := n.slc.Lookup(mem.BlockOf(mem.Addr(op.Addr)))
			if !present || line.State != cache.Modified || line.Prefetched {
				break
			}
			// Exclusive owner: the write drains from the FLWB through
			// the SLC and performs locally (doWrite's Modified path).
			n.st.Writes++
			admit := n.flwb.AdmitAt(at)
			if admit > at {
				n.st.WriteStall += admit - at
				n.met.FLWBWait.Observe(int64(admit - at))
				if m.sp != nil {
					m.stallSpan(obs.SpanFLWB, n, uint64(mem.BlockOf(mem.Addr(op.Addr))), at, admit, admit-at)
				}
			}
			t = admit + 1
			slcStart := n.slcRes.Acquire(admit+1, SLCCycle)
			n.flwb.Add(slcStart + SLCCycle)
		} else {
			break
		}
		i++
	}
	n.st.Reads += reads
	n.st.FLCReadHits += reads
	n.bi = i
	n.time = t
}

// nextOp returns the stashed op, if any, the next op of the local
// batch, or — at a batch boundary — the first op of a freshly fetched
// batch.
func (n *node) nextOp() trace.Op {
	if n.stashed {
		n.stashed = false
		return n.stash
	}
	if n.bi < len(n.batch) {
		op := n.batch[n.bi]
		n.bi++
		return op
	}
	return n.refill()
}

// refill fetches the node's next run of operations. Batched streams
// hand over a whole slice (the drained one is recycled to the
// producer's free list first); legacy per-op streams fall back to one
// interface call per op. A nil batch means the stream is exhausted and
// End is synthesized, matching Stream.Next's contract.
func (n *node) refill() trace.Op {
	if n.bs == nil {
		return n.stream.Next()
	}
	if n.batch != nil {
		n.bs.Recycle(n.batch)
		n.batch = nil
	}
	batch := n.bs.NextBatch()
	if len(batch) == 0 {
		n.bi = 0
		return trace.Op{Kind: trace.End}
	}
	n.batch, n.bi = batch, 1
	return batch[0]
}

// doRead executes one load. It returns true if the processor can
// continue (FLC or SLC hit) and false if it blocked on a miss.
func (m *Machine) doRead(n *node, op trace.Op) bool {
	n.st.Reads++
	addr := mem.Addr(op.Addr)
	b := mem.BlockOf(addr)
	issue := n.time

	if n.flc.Lookup(b) {
		n.st.FLCReadHits++
		n.time = issue + FLCHit
		return true
	}

	// FLC miss: the request is FIFO-ordered behind writes buffered in
	// the FLWB (paper §2), then accesses the SLC.
	reqAt := issue + FLCHit
	if tail := n.flwb.Tail(); tail > reqAt {
		reqAt = tail
	}
	slcStart := n.slcRes.Acquire(reqAt, SLCCycle)

	line, present := n.slc.Lookup(b)
	consumed := false
	if present && line.Prefetched {
		n.slc.ClearPrefetched(b)
		n.st.PrefetchesUseful++
		n.met.PrefUseful.Inc()
		if m.sp != nil {
			m.consumePrefetchSpan(n, b, slcStart)
		}
		consumed = true
	}

	// Every read presented to the SLC is visible to the prefetch
	// mechanism (§3.2); proposals issue after the current access. A
	// block whose prefetch is still in flight is reported as merged.
	merged := false
	if tx, ok := n.pending.Get(b); ok && tx.kind == txRead && tx.prefetch {
		merged = true
	}
	m.firePrefetcher(n, op.PC, addr, b, present, consumed, merged, slcStart+SLCCycle)

	if present {
		n.st.SLCReadHits++
		n.flc.Fill(b)
		done := slcStart + SLCHitExtra
		n.st.ReadStall += done - issue - FLCHit
		if m.sp != nil {
			m.stallSpan(obs.SpanSLCHit, n, uint64(b), issue, done, done-issue-FLCHit)
		}
		n.time = done
		return true
	}

	// SLC miss.
	if tx, ok := n.pending.Get(b); ok {
		// The block is already in flight; the read merges with the
		// outstanding SLWB entry rather than issuing a new request.
		if tx.prefetch && !tx.demand {
			// A prefetch beat the processor to the request: a delayed
			// hit, not a read miss — the prefetch removed the miss but
			// not (yet) all of its latency. The residual wait shows up
			// in the read stall time, as in the paper's Figure 6.
			n.st.PrefetchesMerged++
			n.st.PrefetchesUseful++
			n.st.DelayedHits++
			n.met.PrefUseful.Inc()
			n.met.PrefLate.Inc()
		} else {
			// Merging with an ownership acquisition or another demand
			// request: still a read miss.
			n.st.ReadMisses++
			cls := m.classifyMiss(n, b, issue)
			if m.sp != nil {
				// The servicing transaction's span reports this miss's
				// class (a pure write span becomes a miss span).
				tx.span.Class = cls
			}
			if m.cfg.MissObserver != nil {
				m.cfg.MissObserver(n.id, op.PC, addr)
			}
		}
		tx.demand = true
		tx.issue = issue
		return false
	}
	n.st.ReadMisses++
	cls := m.classifyMiss(n, b, issue)
	if m.cfg.MissObserver != nil {
		m.cfg.MissObserver(n.id, op.PC, addr)
	}
	missAt := slcStart + SLCCycle
	if cbs := n.wbPending.Ptr(b); cbs != nil {
		// The node is writing this very block back; wait for the ack so
		// the directory never sees us as both owner and requester. A
		// write deferred behind the same writeback may have started a
		// transaction by the time the ack arrives: merge with it.
		*cbs = append(*cbs, func(t sim.Time) {
			if tx, ok := n.pending.Get(b); ok {
				tx.demand = true
				tx.issue = issue
				if m.sp != nil {
					tx.span.Class = cls
				}
				return
			}
			m.startReadTx(n, b, false, t, true, issue, cls)
		})
		return false
	}
	m.startReadTx(n, b, false, missAt, true, issue, cls)
	return false
}

// firePrefetcher lets the node's prefetch engine observe an SLC read.
// Proposals arrive on the node's cached pfEmit callback (built once in
// New, so the per-read hot path allocates no closure); the triggering
// block and issue time travel in the node's pfBlock/pfTime scratch
// fields. OnRead never re-enters the processor, so the scratch fields
// are stable for the duration of the call.
func (m *Machine) firePrefetcher(n *node, pc trace.PC, addr mem.Addr, b mem.Block, hit, consumed, merged bool, t sim.Time) {
	n.pfBlock, n.pfTime = b, t
	n.pf.OnRead(prefetch.Request{
		PC: pc, Addr: addr, Block: b, Hit: hit, TagConsumed: consumed, Merged: merged,
	}, n.pfEmit)
}

// emitPrefetch issues one prefetch proposal that survives filtering:
// same page (§2, no prefetching across page boundaries — lifted for
// schemes that replay known translations, see prefetch.PageCrosser),
// not cached, not already in flight, and an SLWB slot available
// (otherwise the prefetch is dropped).
func (m *Machine) emitPrefetch(n *node, pb mem.Block) {
	b := n.pfBlock
	if pb == b || (!n.pfCross && !mem.SamePage(b, pb)) {
		return
	}
	if _, ok := n.slc.Lookup(pb); ok {
		return
	}
	if _, ok := n.pending.Get(pb); ok {
		return
	}
	if _, ok := n.wbPending.Get(pb); ok {
		return
	}
	if !m.trySLWB(n) {
		return
	}
	n.st.PrefetchesIssued++
	n.met.PrefIssued.Inc()
	m.trace(obs.EvPrefetch, n, n.pfTime, uint64(pb), 0)
	m.sendReadTx(n, pb, true, n.pfTime)
}

// doWrite executes one store and reports whether the processor may
// continue. Under release consistency writes are buffered and the
// processor only stalls when the FLWB is full; under sequential
// consistency it additionally blocks until the write is globally
// performed.
func (m *Machine) doWrite(n *node, op trace.Op) bool {
	n.st.Writes++
	b := mem.BlockOf(mem.Addr(op.Addr))
	issue := n.time

	admit := n.flwb.AdmitAt(issue)
	if admit > issue {
		n.st.WriteStall += admit - issue
		n.met.FLWBWait.Observe(int64(admit - issue))
		if m.sp != nil {
			m.stallSpan(obs.SpanFLWB, n, uint64(b), issue, admit, admit-issue)
		}
	}
	n.time = admit + 1

	// The write drains from the FLWB through the SLC (write-through FLC,
	// no allocation on FLC write misses: FLC presence is unchanged).
	slcStart := n.slcRes.Acquire(admit+1, SLCCycle)
	completion := slcStart + SLCCycle
	n.flwb.Add(completion)

	line, present := n.slc.Lookup(b)
	if present && line.Prefetched {
		// A store consumes the prefetched block too.
		n.slc.ClearPrefetched(b)
		n.st.PrefetchesUseful++
		n.met.PrefUseful.Inc()
		if m.sp != nil {
			m.consumePrefetchSpan(n, b, slcStart)
		}
	}
	if present && line.State == cache.Modified {
		// Exclusive: the write performs locally.
		if m.cfg.SequentialConsistency && completion > n.time {
			if m.sp != nil {
				m.stallSpan(obs.SpanSCWrite, n, uint64(b), n.time, completion, completion-n.time)
			}
			n.st.WriteStall += completion - n.time
			n.time = completion
		}
		return true
	}

	// Ownership is needed: the write completes (for release
	// consistency) when the directory grants it.
	n.outWrites++
	if tx, ok := n.pending.Get(b); ok {
		tx.writeRefs++
		if tx.kind == txRead {
			tx.wantWrite = true
		}
	} else if cbs := n.wbPending.Ptr(b); cbs != nil {
		// Another operation deferred behind the same writeback may have
		// started a transaction by ack time: merge onto it.
		*cbs = append(*cbs, func(t sim.Time) {
			if tx, ok := n.pending.Get(b); ok {
				tx.writeRefs++
				if tx.kind == txRead {
					tx.wantWrite = true
				}
				return
			}
			m.startWriteTx(n, b, t, 1)
		})
	} else {
		m.startWriteTx(n, b, completion, 1)
	}

	if m.cfg.SequentialConsistency {
		// Block until the write is globally performed (all outstanding
		// writes drained — under SC there is only ever this one).
		issue := n.time
		if n.drainWait != nil {
			panic("machine: overlapping drain waits under SC")
		}
		n.drainWait = func(t sim.Time) {
			n.st.WriteStall += t - issue
			if m.sp != nil {
				m.stallSpan(obs.SpanSCWrite, n, uint64(b), issue, t, t-issue)
			}
			n.time = t + 1
			m.scheduleStep(n)
		}
		return false
	}
	return true
}
