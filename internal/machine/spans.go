package machine

import (
	"prefetchsim/internal/mem"
	"prefetchsim/internal/obs"
	"prefetchsim/internal/sim"
)

// Span completion helpers (internal/obs span layer). Every function
// here is called behind an `m.sp != nil` check at the call site, so
// the disabled configuration pays only that nil test — and only on
// paths that already left the fused hot loop.

// completeReadSpan finalizes a read transaction's span at the fill:
// the final class is resolved (a prefetch a demand read caught in
// flight becomes SpanPrefetchLate), the demand wait is computed with
// exactly resumeDemand's arithmetic, and a tagged fill is remembered
// for the fill-to-first-use idle measurement.
func (m *Machine) completeReadSpan(n *node, tx *pendingTx, arrive, done sim.Time, tag bool, b mem.Block) {
	s := &tx.span
	s.Arrive = int64(arrive)
	s.Done = int64(done)
	if tx.prefetch {
		if tx.demand {
			s.Class = obs.SpanPrefetchLate
		} else {
			s.Class = obs.SpanPrefetch
		}
	}
	if tx.demand {
		s.Demand = int64(tx.issue)
		s.Wait = int64(done + FLCFillForward - tx.issue - FLCHit)
	} else {
		s.Demand = -1
	}
	m.sp.Complete(*s)
	if tag {
		n.pfFill.Put(b, done)
	}
}

// completeTxSpan finalizes an ownership transaction's span at the
// grant. A demand read merged onto the transaction already stamped its
// miss class; otherwise the class is SpanWrite from startWriteTx.
func (m *Machine) completeTxSpan(tx *pendingTx, arrive, done sim.Time) {
	s := &tx.span
	s.Arrive = int64(arrive)
	s.Done = int64(done)
	if tx.demand {
		s.Demand = int64(tx.issue)
		s.Wait = int64(done + FLCFillForward - tx.issue - FLCHit)
	} else {
		s.Demand = -1
	}
	m.sp.Complete(*s)
}

// stallSpan records a local stall episode (SLC hit, write-buffer
// admission, SC write completion, acquire/barrier/release) that is not
// a network transaction: only Issue/Done/Wait are meaningful.
func (m *Machine) stallSpan(cls obs.SpanClass, n *node, block uint64, issue, done, wait sim.Time) {
	m.sp.Complete(obs.Span{
		Class: cls, Node: int32(n.id), Block: block,
		Issue: int64(issue), Done: int64(done), Wait: int64(wait), Demand: -1,
	})
}

// consumePrefetchSpan observes the fill-to-first-use idle time of a
// tagged prefetched block consumed by a demand reference at time at.
func (m *Machine) consumePrefetchSpan(n *node, b mem.Block, at sim.Time) {
	t0, ok := n.pfFill.Get(b)
	if !ok {
		return
	}
	n.pfFill.Delete(b)
	idle := int64(at - t0)
	if idle < 0 {
		idle = 0
	}
	m.sp.ObserveIdle(idle)
}
