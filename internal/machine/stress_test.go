package machine

import (
	"fmt"
	"testing"

	"prefetchsim/internal/cache"
	"prefetchsim/internal/coherence"
	"prefetchsim/internal/mem"
	"prefetchsim/internal/prefetch"
	"prefetchsim/internal/racecheck"
	"prefetchsim/internal/sim"
	"prefetchsim/internal/trace"
)

// Protocol stress testing: random small programs hammer a handful of
// blocks from every processor, under every cache/prefetcher
// configuration, and the machine's invariants are checked afterwards.
// The two protocol races found during development (grant-in-flight
// forward-invalidation, duplicate transactions behind a writeback)
// would both have been caught here.

// alignedRandomProgram is like randomProgram but with barrier positions
// chosen identically across processors, so the program cannot deadlock.
func alignedRandomProgram(seed uint64, procs, opsPer int) *trace.Program {
	shape := sim.NewRand(seed * 7777777)
	barrierAt := make(map[int]bool)
	for i := 0; i < opsPer; i++ {
		if shape.Intn(12) == 0 {
			barrierAt[i] = true
		}
	}
	const hotBlocks = 24
	base := uint64(mem.PageBytes)
	lockA := uint64(6 * mem.PageBytes)

	p := &trace.Program{Name: fmt.Sprintf("stress-%d", seed)}
	for id := 0; id < procs; id++ {
		r := sim.NewRand(seed*1000003 + uint64(id) + 1)
		var ops []trace.Op
		barrier := uint64(0)
		holding := false
		for i := 0; i < opsPer; i++ {
			if barrierAt[i] {
				if holding {
					ops = append(ops, trace.Op{Kind: trace.Release, Addr: lockA})
					holding = false
				}
				ops = append(ops, trace.Op{Kind: trace.Barrier, Addr: barrier})
				barrier++
				continue
			}
			addr := base + uint64(r.Intn(hotBlocks))*mem.BlockBytes + uint64(r.Intn(4))*8
			gap := uint32(r.Intn(30))
			switch r.Intn(9) {
			case 0, 1, 2, 3:
				ops = append(ops, trace.Op{Kind: trace.Read, PC: trace.PC(r.Intn(6)), Addr: addr, Gap: gap})
			case 4, 5, 6:
				ops = append(ops, trace.Op{Kind: trace.Write, PC: trace.PC(r.Intn(6)), Addr: addr, Gap: gap})
			case 7:
				if !holding {
					ops = append(ops, trace.Op{Kind: trace.Acquire, Addr: lockA})
				} else {
					ops = append(ops, trace.Op{Kind: trace.Release, Addr: lockA})
				}
				holding = !holding
			case 8:
				// extra read pressure on one very hot block
				ops = append(ops, trace.Op{Kind: trace.Read, PC: 7, Addr: base, Gap: gap})
			}
		}
		if holding {
			ops = append(ops, trace.Op{Kind: trace.Release, Addr: lockA})
		}
		p.Streams = append(p.Streams, trace.NewSliceStream(ops))
	}
	return p
}

// checkInvariants verifies machine-wide consistency after a run.
func checkInvariants(t *testing.T, m *Machine, label string) {
	t.Helper()
	for _, n := range m.nodes {
		if !n.done {
			t.Fatalf("%s: node %d not done", label, n.id)
		}
		if n.outWrites != 0 {
			t.Errorf("%s: node %d has %d outstanding writes after completion", label, n.id, n.outWrites)
		}
		if n.pending.Len() != 0 {
			t.Errorf("%s: node %d has %d pending transactions", label, n.id, n.pending.Len())
		}
		if n.wbPending.Len() != 0 {
			t.Errorf("%s: node %d has %d writebacks in flight", label, n.id, n.wbPending.Len())
		}
		if n.slwbUsed != 0 {
			t.Errorf("%s: node %d SLWB count leaked: %d", label, n.id, n.slwbUsed)
		}
		if len(n.slwbWaiters) != 0 {
			t.Errorf("%s: node %d has queued SLWB waiters", label, n.id)
		}
		if n.st.PrefetchesUseful > n.st.PrefetchesIssued {
			t.Errorf("%s: node %d useful (%d) > issued (%d)", label,
				n.id, n.st.PrefetchesUseful, n.st.PrefetchesIssued)
		}
	}
	// Directory ⇄ cache agreement for every hot block.
	for b := mem.Block(0); b < mem.Block(8*mem.BlocksPerPage); b++ {
		e, ok := m.dir.Peek(b)
		if !ok {
			continue
		}
		if e.Busy() {
			t.Errorf("%s: block %d directory entry left busy", label, b)
			continue
		}
		switch e.State {
		case coherence.Dirty:
			line, present := m.nodes[e.Owner].slc.Lookup(b)
			if !present || line.State != cache.Modified {
				t.Errorf("%s: block %d Dirty at node %d but cache has %v (present=%v)",
					label, b, e.Owner, line.State, present)
			}
			// No other node may hold the block.
			for _, n := range m.nodes {
				if n.id == e.Owner {
					continue
				}
				if _, ok := n.slc.Lookup(b); ok {
					t.Errorf("%s: block %d Dirty at %d but also cached at %d",
						label, b, e.Owner, n.id)
				}
			}
		case coherence.SharedClean:
			// Every cached copy must be Shared and its node listed
			// (presence bits may be stale supersets — silent S
			// replacement — but never subsets).
			for _, n := range m.nodes {
				if line, ok := n.slc.Lookup(b); ok {
					if line.State == cache.Modified {
						t.Errorf("%s: block %d SharedClean but node %d holds M", label, b, n.id)
					}
					if !e.IsSharer(n.id) {
						t.Errorf("%s: block %d cached at node %d without presence bit", label, b, n.id)
					}
				}
			}
		case coherence.Uncached:
			for _, n := range m.nodes {
				if line, ok := n.slc.Lookup(b); ok && line.State == cache.Modified {
					t.Errorf("%s: block %d Uncached but node %d holds M", label, b, n.id)
				}
			}
		}
	}
}

// StressSeeds is the per-configuration seed count of the protocol
// stress sweep, scaled down under the race detector; the repo-level
// race suite asserts the same racecheck.Scale(6, 2) expression yields
// the reduced count when -race is compiled in.
var StressSeeds = uint64(racecheck.Scale(6, 2))

func stressConfig(procs, slc int, pf func(int) prefetch.Prefetcher) Config {
	cfg := DefaultConfig()
	cfg.Processors = procs
	cfg.SLCSize = slc
	cfg.NewPrefetcher = pf
	cfg.MaxEvents = 50_000_000
	return cfg
}

func TestProtocolStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress")
	}
	prefetchers := map[string]func(int) prefetch.Prefetcher{
		"baseline": nil,
		"seq":      func(int) prefetch.Prefetcher { return prefetch.NewSequential(2) },
		"idet":     func(int) prefetch.Prefetcher { return prefetch.NewIDetection(256, 2) },
		"ddet":     func(int) prefetch.Prefetcher { return prefetch.NewDefaultDDetection(2) },
		"adaptive": func(int) prefetch.Prefetcher { return prefetch.NewAdaptive(2) },
	}
	// Tiny SLC (128 blocks) maximizes replacement/writeback traffic on
	// the hot set; infinite exercises the pure coherence paths. Under
	// the race detector the seed sweep shrinks (see StressSeeds) to keep
	// the package inside the single-core 10-minute test timeout; the
	// interleaving coverage -race needs does not grow with seeds.
	for _, slc := range []int{0, 4096} {
		for name, pf := range prefetchers {
			for seed := uint64(1); seed <= StressSeeds; seed++ {
				label := fmt.Sprintf("slc=%d/%s/seed=%d", slc, name, seed)
				prog := alignedRandomProgram(seed, 8, 600)
				m, err := New(stressConfig(8, slc, pf), prog)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				if _, err := m.Run(); err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				checkInvariants(t, m, label)
			}
		}
	}
}

func TestProtocolStressDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("stress")
	}
	mk := func() *stats_ {
		prog := alignedRandomProgram(99, 8, 800)
		cfg := stressConfig(8, 4096, func(int) prefetch.Prefetcher { return prefetch.NewSequential(2) })
		m, err := New(cfg, prog)
		if err != nil {
			t.Fatal(err)
		}
		st, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return &stats_{st.ExecTime, st.TotalReadMisses(), st.TotalPrefetchesIssued(), st.NetFlitHops}
	}
	a, b := mk(), mk()
	if *a != *b {
		t.Fatalf("stress run diverged: %+v vs %+v", a, b)
	}
}

type stats_ struct {
	exec   sim.Time
	misses int64
	pf     int64
	hops   int64
}
