package machine

import (
	"fmt"

	"prefetchsim/internal/mem"
	"prefetchsim/internal/network"
	"prefetchsim/internal/obs"
	"prefetchsim/internal/sim"
)

// Synchronization (paper §4): a queue-based lock mechanism at memory
// similar to DASH's, with a single lock variable per memory block, and
// barriers built from arrive/release messages collected at node 0's
// memory. Under release consistency, releases and barrier arrivals wait
// until the processor's outstanding writes have been performed.

// lockState is the memory-side queue of one lock variable.
type lockState struct {
	held  bool
	queue []lockWaiter
}

type lockWaiter struct {
	n     *node
	issue sim.Time
}

func (m *Machine) lock(addr uint64) *lockState {
	l, ok := m.locks[addr]
	if !ok {
		l = &lockState{}
		m.locks[addr] = l
	}
	return l
}

// doAcquire sends an acquire request to the lock's home memory and
// blocks the processor until the grant returns.
func (m *Machine) doAcquire(n *node, addr uint64) {
	issue := n.time
	home := m.home(mem.BlockOf(mem.Addr(addr)))
	arrive := m.mesh.Send(network.ReqPlane, n.id, home, network.CtrlFlits, issue+1)
	m.eng.At(arrive, func() {
		done := m.mems[home].Control(m.eng.Now())
		l := m.lock(addr)
		if !l.held {
			l.held = true
			m.grantLock(home, n, addr, issue, done)
			return
		}
		l.queue = append(l.queue, lockWaiter{n: n, issue: issue})
	})
}

// grantLock sends the grant back to the requester and resumes it.
func (m *Machine) grantLock(home int, n *node, addr uint64, issue, t sim.Time) {
	arrive := m.mesh.Send(network.ReplyPlane, home, n.id, network.CtrlFlits, t)
	m.eng.At(arrive, func() {
		now := m.eng.Now()
		n.st.SyncStall += now - issue
		n.met.LockWait.Observe(int64(now - issue))
		if m.sp != nil {
			m.stallSpan(obs.SpanAcquire, n, addr, issue, now, now-issue)
		}
		n.time = now + 1
		m.scheduleStep(n)
	})
}

// doRelease implements a release under release consistency: the
// processor first waits for its outstanding writes to be performed,
// then sends the release message and continues without waiting for it
// to reach memory. It returns true if the processor may continue
// immediately.
func (m *Machine) doRelease(n *node, addr uint64) bool {
	if n.outWrites > 0 {
		issue := n.time
		if n.drainWait != nil {
			panic(fmt.Sprintf("machine: node %d has overlapping drain waits", n.id))
		}
		n.drainWait = func(t sim.Time) {
			n.st.SyncStall += t - issue
			if m.sp != nil {
				m.stallSpan(obs.SpanRelease, n, addr, issue, t, t-issue)
			}
			n.time = t
			m.sendRelease(n, addr)
			n.time++
			m.scheduleStep(n)
		}
		return false
	}
	m.sendRelease(n, addr)
	n.time++
	return true
}

// sendRelease fires the release message; the home hands the lock to the
// next queued waiter, if any.
func (m *Machine) sendRelease(n *node, addr uint64) {
	home := m.home(mem.BlockOf(mem.Addr(addr)))
	arrive := m.mesh.Send(network.ReqPlane, n.id, home, network.CtrlFlits, n.time)
	m.eng.At(arrive, func() {
		done := m.mems[home].Control(m.eng.Now())
		l := m.lock(addr)
		if !l.held {
			panic(fmt.Sprintf("machine: node %d released lock %#x that is not held", n.id, addr))
		}
		if len(l.queue) == 0 {
			l.held = false
			return
		}
		w := l.queue[0]
		l.queue = l.queue[1:]
		m.grantLock(home, w.n, addr, w.issue, done)
	})
}

// barrier collects arrivals at node 0's memory and releases everyone
// when the last processor arrives.
type barrier struct {
	episode uint64
	arrived int
	waiters []lockWaiter
}

// doBarrier sends the barrier arrival (after draining writes, as a
// release point under release consistency) and blocks until released.
func (m *Machine) doBarrier(n *node, episode uint64) {
	issue := n.time
	if n.outWrites > 0 {
		if n.drainWait != nil {
			panic(fmt.Sprintf("machine: node %d has overlapping drain waits", n.id))
		}
		n.drainWait = func(t sim.Time) {
			n.time = t
			m.sendBarrierArrive(n, episode, issue)
		}
		return
	}
	m.sendBarrierArrive(n, episode, issue)
}

func (m *Machine) sendBarrierArrive(n *node, episode uint64, issue sim.Time) {
	if episode != m.bar.episode {
		panic(fmt.Sprintf("machine: node %d arrived at barrier %d, machine is at %d (malformed program)",
			n.id, episode, m.bar.episode))
	}
	const barrierHome = 0
	arrive := m.mesh.Send(network.ReqPlane, n.id, barrierHome, network.CtrlFlits, n.time+1)
	m.eng.At(arrive, func() {
		done := m.mems[barrierHome].Control(m.eng.Now())
		m.bar.arrived++
		m.bar.waiters = append(m.bar.waiters, lockWaiter{n: n, issue: issue})
		if m.bar.arrived < m.cfg.Processors {
			return
		}
		waiters := m.bar.waiters
		m.bar.arrived = 0
		m.bar.waiters = nil
		m.bar.episode++
		for _, w := range waiters {
			w := w
			grantArrive := m.mesh.Send(network.ReplyPlane, barrierHome, w.n.id, network.CtrlFlits, done)
			m.eng.At(grantArrive, func() {
				now := m.eng.Now()
				w.n.st.SyncStall += now - w.issue
				w.n.met.BarrierWait.Observe(int64(now - w.issue))
				if m.sp != nil {
					m.stallSpan(obs.SpanBarrier, w.n, episode, w.issue, now, now-w.issue)
				}
				w.n.time = now + 1
				m.scheduleStep(w.n)
			})
		}
	})
}
