// Package machine assembles the paper's architectural framework (§2, §4)
// into a runnable whole-system model: 16 processing nodes, each with a
// blocking-load processor, a write-through FLC with an 8-entry FLWB, a
// lockup-free write-back SLC with a 16-entry SLWB and an attached
// prefetcher, a full-map write-invalidate directory at distributed
// memory, a 4×4 wormhole mesh, queue-based locks at memory, and release
// consistency.
//
// The simulation is program-driven: each processor pulls its next
// operation from a trace.Stream (the re-implemented applications) and
// the architecture model decides how long everything takes. All
// contention — SLC arrays, buses, memory banks, mesh links, directory
// entries — is modelled (paper §4: "contention is accurately modelled in
// all parts of the system").
package machine

import (
	"fmt"

	"prefetchsim/internal/blockmap"
	"prefetchsim/internal/cache"
	"prefetchsim/internal/coherence"
	"prefetchsim/internal/mem"
	"prefetchsim/internal/memsys"
	"prefetchsim/internal/network"
	"prefetchsim/internal/obs"
	"prefetchsim/internal/prefetch"
	"prefetchsim/internal/sim"
	"prefetchsim/internal/stats"
	"prefetchsim/internal/trace"
)

// Timing constants in pclocks (Table 1; see DESIGN.md §3 for the
// composition of the 28-pclock local-memory read).
const (
	// FLCHit is the FLC read hit time ("Read from FLC: 1 pclock").
	FLCHit = 1
	// SLCHitExtra is the additional latency of an SLC read hit beyond
	// the FLC lookup, making "Read from SLC" 6 pclocks total.
	SLCHitExtra = 5
	// SLCCycle is the SLC array occupancy per access (30 ns SRAM).
	SLCCycle = 3
	// FLCFillForward covers forwarding the critical word to the
	// processor while the FLC fills.
	FLCFillForward = 2
)

// Config describes one simulated machine.
type Config struct {
	// Processors is the node count (paper: 16).
	Processors int
	// FLCSize is the first-level cache size in bytes (paper: 4 KB).
	FLCSize int
	// SLCSize is the second-level cache size in bytes; 0 means the
	// paper's default infinitely large SLC.
	SLCSize int
	// SLCWays is the finite SLC's associativity; 0/1 is the paper's
	// direct-mapped configuration, higher values use LRU sets.
	SLCWays int
	// FLWBEntries and SLWBEntries size the write buffers (paper: 8, 16).
	FLWBEntries int
	SLWBEntries int
	// NewPrefetcher constructs the per-node prefetch engine; nil means
	// the baseline architecture (no prefetching).
	NewPrefetcher func(node int) prefetch.Prefetcher
	// BandwidthFactor divides memory-system and network bandwidth
	// (bus cycles, bank occupancy, flit serialization) by the given
	// factor; 0/1 is the paper's full bandwidth. Used by the §7
	// bandwidth-limitation study.
	BandwidthFactor int
	// SequentialConsistency makes writes blocking (the processor stalls
	// until each write is globally performed) instead of the paper's
	// release consistency. An ablation showing why the paper assumes RC
	// ([11]): under SC the write latency lands on the critical path.
	SequentialConsistency bool
	// MaxEvents aborts a runaway simulation; 0 means no limit.
	MaxEvents int64
	// MissObserver, if non-nil, is called in simulated-time order for
	// every demand SLC read miss, with the issuing node, the load-site
	// PC and the missing address. The Table 2/3 application-
	// characteristics analysis is built on this hook.
	MissObserver func(node int, pc trace.PC, addr mem.Addr)
	// Tracer, if non-nil, receives miss/prefetch/invalidate/ack events
	// as the run executes (internal/obs). Purely observational: it
	// changes no timing and no statistic.
	Tracer *obs.Tracer
	// Spans, if non-nil, receives one lifecycle record per completed
	// memory-system transaction and per processor stall episode
	// (internal/obs). The stamps live inside the pooled transaction
	// records, so recording allocates nothing; like the tracer it is
	// purely observational.
	Spans *obs.SpanRecorder
	// Timeline, if non-nil, receives a windowed snapshot of the
	// instruments every Timeline.Window() pclocks of virtual time. The
	// snapshot events ride the ordinary event queue and only read
	// state, so statistics are unchanged.
	Timeline *obs.Timeline
}

// DefaultConfig returns the paper's fixed architectural parameters
// (Table 1) with no prefetcher.
func DefaultConfig() Config {
	return Config{
		Processors:  16,
		FLCSize:     4096,
		SLCSize:     0,
		FLWBEntries: 8,
		SLWBEntries: 16,
	}
}

// Machine is a configured simulator instance. Build one with New, run
// it once with Run.
type Machine struct {
	cfg   Config
	eng   sim.Engine
	mesh  *network.Mesh
	dir   *coherence.Directory
	mems  []*memsys.Module
	nodes []*node
	locks map[uint64]*lockState
	bar   barrier

	// Free lists for the pooled protocol events and transaction
	// records (events.go); the steady-state protocol allocates nothing.
	evFree *ev
	txFree []*pendingTx

	// engMet holds the engine's observability instruments (metrics.go);
	// embedding them here keeps instrumentation allocation-free.
	engMet sim.EngineMetrics
	// tr is the optional event tracer from Config.Tracer; sp and tl are
	// the optional span recorder and timeline collector.
	tr *obs.Tracer
	sp *obs.SpanRecorder
	tl *obs.Timeline
	// tlFn is the cached timeline-tick closure (one per machine, so
	// rescheduling the tick allocates nothing per window).
	tlFn func()

	// Stats accumulates results; valid after Run.
	Stats *stats.Machine
}

// txKind classifies an outstanding SLWB transaction.
type txKind uint8

const (
	txRead  txKind = iota // read miss or prefetch
	txWrite               // ownership acquisition (upgrade / read-exclusive)
)

// pendingTx is an outstanding transaction for one block (an SLWB
// entry). Records are pooled on the machine (events.go).
type pendingTx struct {
	kind     txKind
	prefetch bool // read issued by the prefetcher
	demand   bool // a demand read is blocked on this transaction
	// issue is the demand read's processor-side issue time; the fill
	// charges the read stall against it (resumeDemand).
	issue sim.Time
	// writeRefs counts buffered writes whose completion (for release
	// consistency) depends on this transaction.
	writeRefs int
	// wantWrite marks a write merged onto an in-flight read: ownership
	// is acquired right after the fill.
	wantWrite bool
	// invalidated marks that an invalidation arrived while the data was
	// in flight; the fill is consumed once and not cached.
	invalidated bool
	// span collects the transaction's lifecycle stamps when the machine
	// has a span recorder (Config.Spans); embedded by value so stamping
	// allocates nothing.
	span obs.Span
}

// Block history flags for miss classification (§5.1, §5.3).
const (
	hTouched uint8 = 1 << iota
	hInv
	hRepl
)

// node is one processing node.
type node struct {
	id  int
	st  *stats.Node
	met NodeMetrics
	pf  prefetch.Prefetcher
	// pfCross caches prefetch.CrossesPages(pf): correlation-based schemes
	// replay known translations, so the §2 page filter is lifted for them.
	pfCross bool

	stream trace.Stream
	// batch is the local run of ops the fetch-execute loop iterates
	// (refilled via bs when the stream supports batching; bs is nil on
	// the legacy per-op path and batch then stays empty).
	bs      trace.BatchStream
	batch   []trace.Op
	bi      int
	stash   trace.Op // op fetched but deferred to honor event ordering
	stashed bool
	time    sim.Time
	done    bool
	stepFn  func() // cached continuation closure (hot path)

	flc    *cache.FLC
	flwb   *cache.WriteBuffer
	slc    cache.Store
	slcRes sim.Resource

	pending     blockmap.Table[*pendingTx]
	wbPending   blockmap.Table[[]func(sim.Time)]
	slwbUsed    int
	slwbWaiters []slwbWaiter

	// outWrites counts write transactions not yet globally performed;
	// releases and barriers wait for it to reach zero (release
	// consistency).
	outWrites int
	drainWait func(sim.Time)

	hist blockmap.Table[uint8]

	// pfFill records (only when spans are collected) the fill time of
	// each tagged, still-unconsumed prefetched block, for the
	// fill-to-first-use idle measurement. A re-prefetch overwrites the
	// stale entry, so consumption always sees the latest fill.
	pfFill blockmap.Table[sim.Time]

	// Scratch state for the prefetcher's issue callback: pfEmit is
	// built once per node so OnRead allocates no closure per read;
	// pfBlock/pfTime carry the triggering access (processor.go).
	pfBlock mem.Block
	pfTime  sim.Time
	pfEmit  func(pb mem.Block)
}

// slwbWaiter is a dispatched-on-slot-free transaction queued behind a
// full SLWB.
type slwbWaiter struct {
	b  mem.Block
	tx *pendingTx
}

// New builds a machine running the given program. The program must have
// exactly cfg.Processors streams.
func New(cfg Config, prog *trace.Program) (*Machine, error) {
	if cfg.Processors <= 0 || cfg.Processors > 64 {
		return nil, fmt.Errorf("machine: processor count %d out of range 1..64", cfg.Processors)
	}
	if len(prog.Streams) != cfg.Processors {
		return nil, fmt.Errorf("machine: program %q has %d streams, config wants %d",
			prog.Name, len(prog.Streams), cfg.Processors)
	}
	if cfg.FLWBEntries <= 0 || cfg.SLWBEntries <= 0 {
		return nil, fmt.Errorf("machine: write buffers must have at least one entry")
	}
	m := &Machine{
		cfg:   cfg,
		mesh:  network.New(cfg.Processors),
		dir:   coherence.New(cfg.Processors),
		mems:  make([]*memsys.Module, cfg.Processors),
		locks: make(map[uint64]*lockState),
		Stats: stats.New(cfg.Processors),
	}
	m.mesh.BandwidthFactor = cfg.BandwidthFactor
	m.tr = cfg.Tracer
	m.sp = cfg.Spans
	m.tl = cfg.Timeline
	m.eng.SetMetrics(&m.engMet)
	for i := 0; i < cfg.Processors; i++ {
		m.mems[i] = &memsys.Module{BandwidthFactor: cfg.BandwidthFactor}
		var store cache.Store
		switch {
		case cfg.SLCSize == 0:
			store = cache.NewInfiniteStore()
		case cfg.SLCWays > 1:
			store = cache.NewAssocStore(cfg.SLCSize, cfg.SLCWays)
		default:
			store = cache.NewDirectStore(cfg.SLCSize)
		}
		n := &node{
			id:     i,
			st:     &m.Stats.Nodes[i],
			stream: prog.Streams[i],
			flc:    cache.NewFLC(cfg.FLCSize),
			flwb:   cache.NewWriteBuffer(cfg.FLWBEntries),
			slc:    store,
		}
		n.hist.Reserve(1 << 14)
		if bs, ok := n.stream.(trace.BatchStream); ok {
			n.bs = bs
		}
		if cfg.NewPrefetcher != nil {
			n.pf = cfg.NewPrefetcher(i)
		} else {
			n.pf = prefetch.None{}
		}
		n.pfCross = prefetch.CrossesPages(n.pf)
		n.stepFn = func() { m.stepNode(n) }
		n.pfEmit = func(pb mem.Block) { m.emitPrefetch(n, pb) }
		m.nodes = append(m.nodes, n)
	}
	return m, nil
}

// Run executes the program to completion and returns the collected
// statistics. It returns an error on deadlock (some processor never
// reached End) or when MaxEvents is exceeded.
func (m *Machine) Run() (*stats.Machine, error) {
	for _, n := range m.nodes {
		n := n
		m.eng.At(0, func() { m.stepNode(n) })
	}
	if m.tl != nil {
		m.tlFn = func() { m.timelineTick() }
		m.eng.At(sim.Time(m.tl.Window()), m.tlFn)
	}
	ran := m.eng.Run(m.cfg.MaxEvents)
	if m.cfg.MaxEvents > 0 && ran >= m.cfg.MaxEvents {
		return nil, fmt.Errorf("machine: exceeded %d events; likely livelock", m.cfg.MaxEvents)
	}
	for _, n := range m.nodes {
		if !n.done {
			return nil, fmt.Errorf("machine: deadlock: node %d stopped at t=%d (outWrites=%d, pending=%d, barrier arrived=%d/%d)",
				n.id, n.time, n.outWrites, n.pending.Len(), m.bar.arrived, m.cfg.Processors)
		}
	}
	m.finalize()
	return m.Stats, nil
}

func (m *Machine) finalize() {
	var max sim.Time
	for _, n := range m.nodes {
		if n.st.ExecTime > max {
			max = n.st.ExecTime
		}
		n.st.PrefetchesUnconsumed = int64(n.slc.PrefetchedCount())
		n.met.PrefUseless.Add(n.st.PrefetchesUnconsumed)
	}
	m.Stats.ExecTime = max
	m.Stats.NetMessages = m.mesh.Messages
	m.Stats.NetFlits = m.mesh.Flits
	m.Stats.NetFlitHops = m.mesh.FlitHops
	if m.tl != nil {
		// Close the final, possibly partial, window at the machine's
		// execution time. Record drops this when the last tick already
		// covered it — ticks ride the event queue, which can drain
		// after the processors finish.
		m.tl.Record(m.timePoint(max))
	}
}

// home returns the home node of block b.
func (m *Machine) home(b mem.Block) int { return mem.HomeNode(b, m.cfg.Processors) }

// scheduleStep resumes the processor's fetch-execute loop at its local
// time.
func (m *Machine) scheduleStep(n *node) {
	m.eng.At(n.time, n.stepFn)
}

// trySLWB claims a slot if one is free; prefetches are dropped rather
// than queued when the SLWB is full (the lockup-free SLC stalls demand
// requests instead — see startReadTx/startWriteTx).
func (m *Machine) trySLWB(n *node) bool {
	if n.slwbUsed < m.cfg.SLWBEntries {
		n.slwbUsed++
		n.slwbSet()
		return true
	}
	return false
}

// freeSLWB releases a slot, dispatching the oldest queued transaction
// if any.
func (m *Machine) freeSLWB(n *node) {
	n.slwbUsed--
	n.slwbSet()
	if len(n.slwbWaiters) > 0 {
		w := n.slwbWaiters[0]
		n.slwbWaiters[0] = slwbWaiter{}
		n.slwbWaiters = n.slwbWaiters[1:]
		n.slwbUsed++
		n.slwbSet()
		if w.tx.kind == txRead {
			m.dispatchReadTx(n, w.b, w.tx, m.eng.Now())
		} else {
			m.dispatchWriteTx(n, w.b, w.tx, m.eng.Now())
		}
	}
}

// classifyMiss attributes a demand read miss at time at to cold,
// coherence or replacement (§5.1, §5.3), mirrors the class into the
// node's metrics and traces it. The returned span class (SpanMissCold/
// SpanMissCoherence/SpanMissReplacement) lets the caller stamp the
// servicing transaction's span.
func (m *Machine) classifyMiss(n *node, b mem.Block, at sim.Time) obs.SpanClass {
	h, _ := n.hist.Get(b)
	var class uint8
	switch {
	case h&hTouched == 0:
		n.st.ColdMisses++
		n.met.MissCold.Inc()
		class = obs.MissCold
	case h&hInv != 0:
		n.st.CoherenceMisses++
		n.met.MissCoherence.Inc()
		class = obs.MissCoherence
	case h&hRepl != 0:
		n.st.ReplacementMisses++
		n.met.MissReplacement.Inc()
		class = obs.MissReplacement
	default:
		// Present-history block missing without invalidation or
		// replacement: a fill consumed while invalidated-in-flight;
		// attribute to coherence.
		n.st.CoherenceMisses++
		n.met.MissCoherence.Inc()
		class = obs.MissCoherence
	}
	m.trace(obs.EvMiss, n, at, uint64(b), class)
	return obs.SpanClass(class)
}
