package machine

import (
	"fmt"

	"prefetchsim/internal/obs"
	"prefetchsim/internal/sim"
)

// NodeMetrics are one node's observability instruments (internal/obs).
// They are embedded by value in the node, so instrumentation adds no
// allocation, and updated with plain integer arithmetic alongside the
// stats counters. Unlike stats.Node — whose printed form is pinned by
// the golden digests — this struct may grow freely.
type NodeMetrics struct {
	// Demand-miss taxonomy (§5.1, §5.3), mirroring the stats counters
	// but exported through the metrics namespace.
	MissCold        obs.Counter
	MissCoherence   obs.Counter
	MissReplacement obs.Counter

	// Prefetch effectiveness (§3, §6): issued proposals, consumed
	// blocks, delayed hits (in flight when demanded: useful but late),
	// and blocks still tagged at the end of the run (useless traffic).
	PrefIssued  obs.Counter
	PrefUseful  obs.Counter
	PrefLate    obs.Counter
	PrefUseless obs.Counter

	// SLWB tracks second-level write-buffer occupancy; its high-water
	// mark shows how close the run came to the 16-entry limit.
	SLWB obs.Gauge

	// FLWBWait records nonzero first-level write-buffer admission
	// stalls. Zero-stall admissions are not observed: both write paths
	// (the fused batch loop and doWrite) observe inside their existing
	// stall branch, so unstalled writes — the hot case — pay nothing.
	FLWBWait obs.Histogram
	// ReadMissStall records the processor stall of each demand read
	// serviced by a transaction (miss or delayed hit), in pclocks.
	ReadMissStall obs.Histogram
	// LockWait and BarrierWait record synchronization stalls, from
	// acquire/arrival issue to grant/release arrival.
	LockWait    obs.Histogram
	BarrierWait obs.Histogram
}

// slwbSet records an SLWB occupancy change on the node's gauge.
func (n *node) slwbSet() { n.met.SLWB.Set(int64(n.slwbUsed)) }

// BindMetrics registers the machine's instruments — the engine's
// dispatch counters and every node's NodeMetrics — under hierarchical
// names ("engine.events", "node3.miss.cold") in r. It only stores
// pointers, so it may run before Run; snapshots must wait until Run
// returns (see internal/obs's ownership rule).
func (m *Machine) BindMetrics(r *obs.Registry) {
	r.BindCounter("engine.events", &m.engMet.Events)
	r.BindGauge("engine.queue", &m.engMet.Queue)
	for _, n := range m.nodes {
		p := fmt.Sprintf("node%d.", n.id)
		r.BindCounter(p+"miss.cold", &n.met.MissCold)
		r.BindCounter(p+"miss.coherence", &n.met.MissCoherence)
		r.BindCounter(p+"miss.replacement", &n.met.MissReplacement)
		r.BindCounter(p+"prefetch.issued", &n.met.PrefIssued)
		r.BindCounter(p+"prefetch.useful", &n.met.PrefUseful)
		r.BindCounter(p+"prefetch.late", &n.met.PrefLate)
		r.BindCounter(p+"prefetch.useless", &n.met.PrefUseless)
		r.BindGauge(p+"slwb", &n.met.SLWB)
		r.BindHistogram(p+"flwb.wait", &n.met.FLWBWait)
		r.BindHistogram(p+"read.miss.stall", &n.met.ReadMissStall)
		r.BindHistogram(p+"lock.wait", &n.met.LockWait)
		r.BindHistogram(p+"barrier.wait", &n.met.BarrierWait)
	}
}

// trace emits one event to the machine's tracer, when one is attached.
func (m *Machine) trace(kind obs.EventKind, n *node, at sim.Time, b uint64, arg uint8) {
	if m.tr != nil {
		m.tr.Emit(kind, n.id, int64(at), b, arg)
	}
}
