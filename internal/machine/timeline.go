package machine

import (
	"prefetchsim/internal/obs"
	"prefetchsim/internal/sim"
)

// The timeline tick: when Config.Timeline is set, the machine schedules
// one self-rescheduling event every Window pclocks of virtual time that
// snapshots the cumulative instruments; the obs.Timeline differences
// consecutive snapshots into per-window deltas. The tick only reads
// state, so it changes no statistic — it does ride the event queue,
// which bounds the fused batch loop's horizon more often, but the
// per-op timing arithmetic is identical either way (the spans/timeline
// differential test pins the stats digest).

// timelineTick records one window and reschedules itself while the
// simulation still has work pending (stopping on an empty queue keeps
// the engine's run loop able to terminate).
func (m *Machine) timelineTick() {
	now := m.eng.Now()
	m.tl.Record(m.timePoint(now))
	if m.eng.Pending() > 0 {
		m.eng.At(now+sim.Time(m.tl.Window()), m.tlFn)
	}
}

// timePoint builds the cumulative machine-wide snapshot at virtual
// time at. Counter fields are running totals (differenced by the
// Timeline); SLWB is the instantaneous summed write-buffer occupancy.
func (m *Machine) timePoint(at sim.Time) obs.TimePoint {
	p := obs.TimePoint{T: int64(at)}
	for _, n := range m.nodes {
		st := n.st
		p.Reads += st.Reads
		p.Writes += st.Writes
		p.Misses += st.ReadMisses
		p.MissCold += st.ColdMisses
		p.MissCoherence += st.CoherenceMisses
		p.MissReplacement += st.ReplacementMisses
		p.PrefIssued += st.PrefetchesIssued
		p.PrefUseful += st.PrefetchesUseful
		p.PrefLate += st.DelayedHits
		p.ReadStall += int64(st.ReadStall)
		p.WriteStall += int64(st.WriteStall)
		p.SyncStall += int64(st.SyncStall)
		p.SLWB += int64(n.slwbUsed)
	}
	p.NetMsgs = m.mesh.Messages
	p.NetFlits = m.mesh.Flits
	p.NetFlitHops = m.mesh.FlitHops
	p.Events = m.engMet.Events.Value()
	return p
}
