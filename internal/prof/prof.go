// Package prof wires the conventional -cpuprofile/-memprofile flags
// into the command-line tools, so a slow sweep can be profiled in
// place (go tool pprof <binary> <profile>) instead of reconstructing
// the configuration under go test -bench.
package prof

import (
	"flag"
	"os"
	"runtime"
	"runtime/pprof"
)

// Flags holds the profiling flag values for one command.
type Flags struct {
	cpu, mem string
	cpuFile  *os.File
}

// Register installs -cpuprofile and -memprofile on the default flag
// set. Call before flag.Parse.
func Register() *Flags {
	f := &Flags{}
	flag.StringVar(&f.cpu, "cpuprofile", "", "write a CPU profile to this file")
	flag.StringVar(&f.mem, "memprofile", "", "write an allocation profile to this file on exit")
	return f
}

// Start begins CPU profiling if requested. Call after flag.Parse.
func (f *Flags) Start() error {
	if f.cpu == "" {
		return nil
	}
	file, err := os.Create(f.cpu)
	if err != nil {
		return err
	}
	if err := pprof.StartCPUProfile(file); err != nil {
		file.Close()
		return err
	}
	f.cpuFile = file
	return nil
}

// Stop flushes the requested profiles. It is a no-op when neither flag
// was set.
func (f *Flags) Stop() error {
	if f.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := f.cpuFile.Close(); err != nil {
			return err
		}
		f.cpuFile = nil
	}
	if f.mem == "" {
		return nil
	}
	file, err := os.Create(f.mem)
	if err != nil {
		return err
	}
	runtime.GC() // up-to-date allocation statistics
	if err := pprof.Lookup("allocs").WriteTo(file, 0); err != nil {
		file.Close()
		return err
	}
	return file.Close()
}
