// Package patternlab is a microbenchmark harness for prefetching
// schemes: synthetic reference streams, one per access-pattern family,
// driven through a small machine-like cache model that applies the same
// proposal filters the simulator's SLC does. It answers, per (scheme,
// family) cell, the two questions the full simulator entangles with
// timing: what fraction of a scheme's prefetches are consumed
// (accuracy), and what fraction of the pattern's misses it removes
// (coverage) — plus how much it pollutes (useless prefetches) on
// patterns it cannot learn. The grid test in this package pins the
// qualitative contract of the whole prefetcher zoo: every scheme wins
// its target family and stays quiet elsewhere.
package patternlab

import (
	"prefetchsim/internal/mem"
	"prefetchsim/internal/prefetch"
	"prefetchsim/internal/sim"
	"prefetchsim/internal/trace"
)

// Ref is one reference presented to the lab's cache (standing in for an
// FLC read miss reaching the SLC).
type Ref struct {
	PC   trace.PC
	Addr mem.Addr
}

// Result is one (scheme, family) grid cell.
type Result struct {
	// Refs is the stream length; BaselineMisses is the miss count with
	// no prefetcher, Misses with the scheme under test.
	Refs           int
	BaselineMisses int
	Misses         int
	// Issued counts prefetches that survived filtering; Useful counts
	// issued prefetches consumed by a later demand reference.
	Issued int
	Useful int
}

// Accuracy is useful/issued (1 when nothing was issued: an idle scheme
// is never wrong).
func (r Result) Accuracy() float64 {
	if r.Issued == 0 {
		return 1
	}
	return float64(r.Useful) / float64(r.Issued)
}

// Coverage is the fraction of baseline misses the scheme removed.
func (r Result) Coverage() float64 {
	if r.BaselineMisses == 0 {
		return 0
	}
	return 1 - float64(r.Misses)/float64(r.BaselineMisses)
}

// Useless is the number of issued-but-never-consumed prefetches.
func (r Result) Useless() int { return r.Issued - r.Useful }

// PollutionPerK is useless prefetches per 1000 references — the grid's
// "does it spray garbage on patterns it cannot learn" measure.
func (r Result) PollutionPerK() float64 {
	if r.Refs == 0 {
		return 0
	}
	return 1000 * float64(r.Useless()) / float64(r.Refs)
}

// labCache is a fully-associative FIFO cache of blocks with a
// prefetched tag per line, the minimal stand-in for the simulator's
// tagged SLC.
type labCache struct {
	cap    int
	at     int
	fifo   []mem.Block
	lines  map[mem.Block]bool // block -> tagged
	inUse  map[mem.Block]bool
	filled bool
}

func newLabCache(capBlocks int) *labCache {
	return &labCache{
		cap:   capBlocks,
		fifo:  make([]mem.Block, 0, capBlocks),
		lines: make(map[mem.Block]bool, capBlocks),
	}
}

func (c *labCache) insert(b mem.Block, tagged bool) {
	if len(c.fifo) < c.cap {
		c.fifo = append(c.fifo, b)
	} else {
		delete(c.lines, c.fifo[c.at])
		c.fifo[c.at] = b
		c.at = (c.at + 1) % c.cap
	}
	c.lines[b] = tagged
}

// Run drives refs through a capBlocks-block cache with p proposing
// prefetches under the machine's filters (same page unless the scheme
// crosses pages, not already cached, not the trigger block). Prefetches
// fill instantly — the lab isolates prediction quality from timing.
func Run(p prefetch.Prefetcher, refs []Ref, capBlocks int) Result {
	c := newLabCache(capBlocks)
	res := Result{Refs: len(refs)}
	cross := prefetch.CrossesPages(p)

	var trigger mem.Block
	emit := func(pb mem.Block) {
		if pb == trigger || (!cross && !mem.SamePage(trigger, pb)) {
			return
		}
		if _, ok := c.lines[pb]; ok {
			return
		}
		res.Issued++
		c.insert(pb, true)
	}

	for _, r := range refs {
		b := mem.BlockOf(r.Addr)
		tagged, hit := c.lines[b]
		consumed := hit && tagged
		if consumed {
			res.Useful++
			c.lines[b] = false
		}
		if !hit {
			res.Misses++
			c.insert(b, false)
		}
		trigger = b
		p.OnRead(prefetch.Request{
			PC: r.PC, Addr: r.Addr, Block: b, Hit: hit, TagConsumed: consumed,
		}, emit)
	}
	res.BaselineMisses = baselineMisses(refs, capBlocks)
	return res
}

func baselineMisses(refs []Ref, capBlocks int) int {
	c := newLabCache(capBlocks)
	misses := 0
	for _, r := range refs {
		b := mem.BlockOf(r.Addr)
		if _, ok := c.lines[b]; !ok {
			misses++
			c.insert(b, false)
		}
	}
	return misses
}

// Family is one synthetic access-pattern family.
type Family struct {
	Name string
	// Refs generates the family's reference stream, deterministically
	// from seed.
	Refs func(seed uint64) []Ref
}

// Stream-shape constants shared by the families: block-granular steps
// (an FLC filters intra-block locality, so consecutive references to
// one block never reach a real SLC either).
const (
	famRefs   = 4096
	famPC     = trace.PC(7)
	blockStep = mem.Addr(mem.BlockBytes)
)

// Families returns the pattern families of the grid, in display order:
//
//   - sequential: unit-block-stride ascending scan;
//   - strided: constant three-block stride (one load site);
//   - interleaved: four same-stride streams round-robin through one
//     load site, the fused-loop shape per-PC detectors cannot split;
//   - multidelta: a repeating +3,+9,+20 block-delta cycle — no single
//     stride, period too long for offset candidates, single-pass so
//     correlation cannot replay it; only transition learning wins;
//   - pointerchase: a random cyclic permutation walked three times —
//     arbitrary deltas, repeating order; only correlation wins;
//   - random: uniform random blocks, the control family nobody should
//     touch.
func Families() []Family {
	return []Family{
		{"sequential", func(seed uint64) []Ref {
			refs := make([]Ref, famRefs)
			for i := range refs {
				refs[i] = Ref{famPC, mem.Addr(i) * blockStep}
			}
			return refs
		}},
		{"strided", func(seed uint64) []Ref {
			refs := make([]Ref, famRefs)
			for i := range refs {
				refs[i] = Ref{famPC, mem.Addr(i) * 3 * blockStep}
			}
			return refs
		}},
		{"interleaved", func(seed uint64) []Ref {
			const streams = 4
			refs := make([]Ref, famRefs)
			for i := range refs {
				s, step := i%streams, i/streams
				base := mem.Addr(s) << 24
				refs[i] = Ref{famPC, base + mem.Addr(step)*2*blockStep}
			}
			return refs
		}},
		{"multidelta", func(seed uint64) []Ref {
			deltas := []mem.Addr{3, 9, 20}
			refs := make([]Ref, famRefs)
			addr := mem.Addr(0)
			for i := range refs {
				refs[i] = Ref{famPC, addr}
				addr += deltas[i%len(deltas)] * blockStep
			}
			return refs
		}},
		{"pointerchase", func(seed uint64) []Ref {
			const nodes = famRefs / 3
			order := chasePerm(nodes, seed)
			refs := make([]Ref, 0, famRefs)
			for round := 0; round < 3; round++ {
				for _, n := range order {
					refs = append(refs, Ref{famPC, mem.Addr(n) * blockStep * 4})
				}
			}
			return refs
		}},
		{"random", func(seed uint64) []Ref {
			rng := sim.NewRand(seed + 0xabc)
			refs := make([]Ref, famRefs)
			for i := range refs {
				refs[i] = Ref{famPC, mem.Addr(rng.Intn(1<<16)) * blockStep}
			}
			return refs
		}},
	}
}

// chasePerm returns a Sattolo cycle of [0, n) as a visit order.
func chasePerm(n int, seed uint64) []int {
	rng := sim.NewRand(seed + 0x11)
	next := make([]int, n)
	for i := range next {
		next[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := rng.Intn(i)
		next[i], next[j] = next[j], next[i]
	}
	order := make([]int, n)
	at := 0
	for i := range order {
		order[i] = at
		at = next[at]
	}
	return order
}

// Schemes returns the grid's scheme constructors in display order,
// degree d each. Baseline (no prefetcher) is included as the first row
// so the grid shows the do-nothing reference.
func Schemes(d int) []func() prefetch.Prefetcher {
	return []func() prefetch.Prefetcher{
		func() prefetch.Prefetcher { return prefetch.None{} },
		func() prefetch.Prefetcher { return prefetch.NewSequential(d) },
		func() prefetch.Prefetcher { return prefetch.NewAdaptive(d) },
		func() prefetch.Prefetcher { return prefetch.NewIDetection(256, d) },
		func() prefetch.Prefetcher { return prefetch.NewDefaultDDetection(d) },
		func() prefetch.Prefetcher { return prefetch.NewBestOffset(d) },
		func() prefetch.Prefetcher { return prefetch.NewPerceptron(d) },
		func() prefetch.Prefetcher { return prefetch.NewMarkov(d) },
	}
}

// Cell is one computed grid entry.
type Cell struct {
	Scheme, Family string
	Result
}

// LabCacheBlocks is the lab cache capacity: far smaller than every
// family's working set, so revisits miss without prefetching.
const LabCacheBlocks = 256

// Grid computes the full scheme × family grid at degree d.
func Grid(d int, seed uint64) []Cell {
	var cells []Cell
	for _, mk := range Schemes(d) {
		for _, fam := range Families() {
			p := mk()
			cells = append(cells, Cell{
				Scheme: p.Name(), Family: fam.Name,
				Result: Run(p, fam.Refs(seed), LabCacheBlocks),
			})
		}
	}
	return cells
}
