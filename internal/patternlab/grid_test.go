package patternlab

import (
	"testing"

	"prefetchsim/internal/mem"
	"prefetchsim/internal/prefetch"
	"prefetchsim/internal/trace"
)

const gridSeed = 12345

// champions maps each family to the schemes designed to win it, with
// the absolute coverage floor the champion must clear. A champion must
// also be best-in-class: within championTol of the family's maximum
// coverage across all schemes.
var champions = map[string]struct {
	schemes []string
	floor   float64
}{
	"sequential":   {[]string{"Seq", "Adaptive"}, 0.90},
	"strided":      {[]string{"I-det", "D-det"}, 0.90},
	"interleaved":  {[]string{"BestOffset"}, 0.90},
	"multidelta":   {[]string{"Perceptron"}, 0.80},
	"pointerchase": {[]string{"Markov"}, 0.60},
}

const championTol = 0.02

// pollutionBound is each scheme's documented ceiling on useless
// prefetches per 1000 references, over every family. Sequential
// prefetching issues on every miss by construction, so its uselessness
// on non-sequential streams is intrinsic (the paper's §5.2 point);
// Adaptive throttles it by an order of magnitude; the detector-gated
// schemes must stay near-silent off their home patterns, with
// BestOffset's bound covering the partial-coverage trade it makes on
// multidelta (offset 3 covers a third of the cycle, the rest is waste).
var pollutionBound = map[string]float64{
	"baseline":   0,
	"Seq":        1050,
	"Adaptive":   350,
	"I-det":      20,
	"D-det":      20,
	"BestOffset": 800,
	"Perceptron": 60,
	"Markov":     60,
}

// randomBound is the tighter ceiling on the random control family for
// the detector-gated schemes: an unlearnable stream must leave them
// near-silent.
var randomBound = map[string]float64{
	"I-det": 20, "D-det": 20, "BestOffset": 20, "Perceptron": 20, "Markov": 60,
}

func gridByKey(t *testing.T, d int) map[string]Cell {
	t.Helper()
	cells := Grid(d, gridSeed)
	m := make(map[string]Cell, len(cells))
	for _, c := range cells {
		m[c.Scheme+"/"+c.Family] = c
	}
	return m
}

func TestGridChampionsWinTheirFamilies(t *testing.T) {
	grid := gridByKey(t, 1)
	for _, fam := range Families() {
		want, ok := champions[fam.Name]
		if !ok {
			continue
		}
		max := 0.0
		for scheme := range pollutionBound {
			if c := grid[scheme+"/"+fam.Name]; c.Coverage() > max {
				max = c.Coverage()
			}
		}
		for _, scheme := range want.schemes {
			c, ok := grid[scheme+"/"+fam.Name]
			if !ok {
				t.Fatalf("no grid cell for %s/%s", scheme, fam.Name)
			}
			if cov := c.Coverage(); cov < want.floor {
				t.Errorf("%s on %s: coverage %.2f below floor %.2f", scheme, fam.Name, cov, want.floor)
			}
			if cov := c.Coverage(); cov < max-championTol {
				t.Errorf("%s on %s: coverage %.2f not best-in-class (family max %.2f)",
					scheme, fam.Name, cov, max)
			}
			if acc := c.Accuracy(); acc < 0.90 {
				t.Errorf("%s on %s: accuracy %.2f, a champion must be right at least 90%% of the time",
					scheme, fam.Name, acc)
			}
		}
	}
}

func TestGridPollutionStaysBounded(t *testing.T) {
	grid := gridByKey(t, 1)
	for scheme, bound := range pollutionBound {
		for _, fam := range Families() {
			c, ok := grid[scheme+"/"+fam.Name]
			if !ok {
				t.Fatalf("no grid cell for %s/%s", scheme, fam.Name)
			}
			if p := c.PollutionPerK(); p > bound {
				t.Errorf("%s on %s: %.0f useless prefetches per 1k refs, documented bound %.0f",
					scheme, fam.Name, p, bound)
			}
		}
	}
}

func TestGridRandomFamilyIsUntouchable(t *testing.T) {
	grid := gridByKey(t, 1)
	for scheme := range pollutionBound {
		c := grid[scheme+"/random"]
		if cov := c.Coverage(); cov < -0.05 || cov > 0.05 {
			t.Errorf("%s on random: coverage %.3f, want ~0 (nothing to learn)", scheme, cov)
		}
		if bound, ok := randomBound[scheme]; ok {
			if p := c.PollutionPerK(); p > bound {
				t.Errorf("%s on random: %.0f useless per 1k refs, want <= %.0f (near-silent)",
					scheme, p, bound)
			}
		}
	}
}

func TestGridBaselineRowIsInert(t *testing.T) {
	grid := gridByKey(t, 1)
	for _, fam := range Families() {
		c := grid["baseline/"+fam.Name]
		if c.Issued != 0 || c.Useful != 0 {
			t.Errorf("baseline on %s issued %d prefetches", fam.Name, c.Issued)
		}
		if c.Misses != c.BaselineMisses {
			t.Errorf("baseline on %s: misses %d != baseline misses %d",
				fam.Name, c.Misses, c.BaselineMisses)
		}
	}
}

func TestGridIsDeterministic(t *testing.T) {
	a, b := Grid(2, gridSeed), Grid(2, gridSeed)
	if len(a) != len(b) {
		t.Fatalf("grid sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("cell %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestLabCacheEvictsFIFO(t *testing.T) {
	refs := make([]Ref, 0, 8)
	// Touch blocks 0..3 in a 2-block cache, then re-touch 0: with FIFO
	// eviction every reference misses.
	for _, b := range []int{0, 1, 2, 3, 0} {
		refs = append(refs, Ref{trace.PC(1), mem.Addr(b) * mem.BlockBytes})
	}
	r := Run(prefetch.None{}, refs, 2)
	if r.Misses != 5 {
		t.Fatalf("misses = %d, want 5 (FIFO eviction)", r.Misses)
	}
	// Re-touching a resident block hits.
	refs = []Ref{
		{trace.PC(1), 0}, {trace.PC(1), 0},
	}
	if r := Run(prefetch.None{}, refs, 2); r.Misses != 1 {
		t.Fatalf("misses = %d, want 1 (resident hit)", r.Misses)
	}
}

func TestLabCountsUsefulPrefetches(t *testing.T) {
	// A sequential scan with Seq d=1: after the first miss every block
	// is prefetched ahead, so useful ≈ issued and misses ≈ 1.
	refs := make([]Ref, 64)
	for i := range refs {
		refs[i] = Ref{trace.PC(1), mem.Addr(i) * mem.BlockBytes}
	}
	r := Run(prefetch.NewSequential(1), refs, 256)
	if r.Misses != 1 {
		t.Fatalf("misses = %d, want 1 (all but the cold miss prefetched)", r.Misses)
	}
	if r.Useful < 60 || r.Useful > r.Issued {
		t.Fatalf("useful = %d of %d issued, want nearly all", r.Useful, r.Issued)
	}
	if r.Accuracy() < 0.95 {
		t.Fatalf("accuracy = %.2f, want ~1", r.Accuracy())
	}
}

func TestLabPageFilterRespectsCapability(t *testing.T) {
	// A page-bound scheme's cross-page proposal is dropped; a
	// page-crossing scheme's is not. Construct a one-shot prefetcher
	// for each via the real schemes: Seq at the last block of a page
	// proposes across the boundary.
	lastBlock := mem.PageBytes/mem.BlockBytes - 1
	refs := []Ref{{trace.PC(1), mem.Addr(lastBlock) * mem.BlockBytes}}
	if r := Run(prefetch.NewSequential(1), refs, 8); r.Issued != 0 {
		t.Fatalf("page-bound Seq issued %d across a page boundary", r.Issued)
	}
	// Markov re-visiting a learned cross-page transition may issue.
	chase := []Ref{
		{trace.PC(1), mem.Addr(lastBlock) * mem.BlockBytes},
		{trace.PC(1), mem.Addr(lastBlock+1) * mem.BlockBytes},
		{trace.PC(1), 5 * mem.PageBytes},
		{trace.PC(1), mem.Addr(lastBlock) * mem.BlockBytes},
	}
	if r := Run(prefetch.NewMarkov(1), chase, 2); r.Issued == 0 {
		t.Fatal("page-crossing Markov issued nothing on a learned cross-page transition")
	}
}
