// Package blockmap provides Table, an open-addressed hash table keyed
// by cache-block numbers. It replaces map[mem.Block]V on the
// simulator's per-reference fast path: every memory reference probes
// the directory, the SLC tag store and the node's transaction tables,
// and the stdlib map's hashing and bucket indirection dominate those
// lookups. Table uses power-of-two sizing, Fibonacci multiply-shift
// hashing, linear probing over a single fused slot array (one cache
// line per probe) and backward-shift (tombstone-free) deletion, so
// long-running simulations with heavy delete/re-insert churn (SLC
// invalidations, retiring transactions) never degrade.
//
// Table is not safe for concurrent use; each Machine owns its tables,
// matching the one-goroutine-per-simulation model of the experiment
// runner.
package blockmap

import "prefetchsim/internal/mem"

// minSize is the smallest backing array; tables grow by doubling.
const minSize = 16

// slot is one open-addressing cell; key, occupancy and value share a
// cache line so a probe costs one memory touch.
type slot[V any] struct {
	key  mem.Block
	used bool
	val  V
}

// Table maps mem.Block to V. The zero value is an empty table ready
// for use.
type Table[V any] struct {
	slots []slot[V]
	n     int  // occupied slots
	shift uint // 64 - log2(len(slots)), for multiply-shift hashing
}

// home returns the preferred slot of key b for the current table size:
// the top log2(size) bits of the key's Fibonacci hash, so consecutive
// block numbers (the common access pattern) scatter evenly.
func (t *Table[V]) home(b mem.Block) int {
	return int((uint64(b) * 0x9E3779B97F4A7C15) >> t.shift)
}

// Reserve grows the backing array so that at least n entries fit
// without rehashing.
func (t *Table[V]) Reserve(n int) {
	need := n*4/3 + 1
	size := len(t.slots)
	if size == 0 {
		size = minSize
	}
	for size < need {
		size *= 2
	}
	if size > len(t.slots) {
		t.rehash(size)
	}
}

// Len returns the number of entries.
func (t *Table[V]) Len() int { return t.n }

// Get returns the value stored for b.
func (t *Table[V]) Get(b mem.Block) (V, bool) {
	if t.n == 0 {
		var zero V
		return zero, false
	}
	mask := len(t.slots) - 1
	for i := t.home(b); ; i = (i + 1) & mask {
		s := &t.slots[i]
		if !s.used {
			var zero V
			return zero, false
		}
		if s.key == b {
			return s.val, true
		}
	}
}

// Ptr returns a pointer to the value stored for b, or nil if absent.
// The pointer is valid only until the next Put, Ref or Delete.
func (t *Table[V]) Ptr(b mem.Block) *V {
	if t.n == 0 {
		return nil
	}
	mask := len(t.slots) - 1
	for i := t.home(b); ; i = (i + 1) & mask {
		s := &t.slots[i]
		if !s.used {
			return nil
		}
		if s.key == b {
			return &s.val
		}
	}
}

// Put stores v for b, replacing any existing value.
func (t *Table[V]) Put(b mem.Block, v V) { *t.Ref(b) = v }

// Ref returns a pointer to the value stored for b, inserting a zero
// value first if b is absent. The pointer is valid only until the next
// Put, Ref or Delete — read-modify-write it immediately.
func (t *Table[V]) Ref(b mem.Block) *V {
	if t.n >= len(t.slots)*3/4 { // covers the empty table: 0 >= 0
		t.grow()
	}
	mask := len(t.slots) - 1
	for i := t.home(b); ; i = (i + 1) & mask {
		s := &t.slots[i]
		if !s.used {
			s.used = true
			s.key = b
			t.n++
			return &s.val
		}
		if s.key == b {
			return &s.val
		}
	}
}

// Delete removes b, returning the value it held. Deletion is
// tombstone-free: displaced successors in the probe chain are shifted
// back over the hole, so lookups never scan dead slots.
func (t *Table[V]) Delete(b mem.Block) (V, bool) {
	var zero V
	if t.n == 0 {
		return zero, false
	}
	mask := len(t.slots) - 1
	i := t.home(b)
	for {
		s := &t.slots[i]
		if !s.used {
			return zero, false
		}
		if s.key == b {
			break
		}
		i = (i + 1) & mask
	}
	old := t.slots[i].val

	// Backward-shift deletion: walk the contiguous run after i; any
	// element whose probe distance reaches back to the hole moves into
	// it (an element already at its home slot never moves).
	j := i
	for {
		j = (j + 1) & mask
		s := &t.slots[j]
		if !s.used {
			break
		}
		if (j-t.home(s.key))&mask >= (j-i)&mask {
			t.slots[i].key = s.key
			t.slots[i].val = s.val
			i = j
		}
	}
	t.slots[i] = slot[V]{}
	t.n--
	return old, true
}

// Clear removes every entry but keeps the backing array, so a table
// that is periodically reset (the Markov prefetcher's correlation table
// models finite hardware storage this way) settles at its high-water
// size and never reallocates again.
func (t *Table[V]) Clear() {
	if t.n == 0 {
		return
	}
	for i := range t.slots {
		t.slots[i] = slot[V]{}
	}
	t.n = 0
}

func (t *Table[V]) grow() {
	size := len(t.slots) * 2
	if size < minSize {
		size = minSize
	}
	t.rehash(size)
}

func (t *Table[V]) rehash(size int) {
	old := t.slots
	t.slots = make([]slot[V], size)
	t.shift = 64 - log2(size)
	t.n = 0
	for i := range old {
		if old[i].used {
			*t.Ref(old[i].key) = old[i].val
		}
	}
}

// log2 returns log2 of a power of two.
func log2(size int) uint {
	var l uint
	for size > 1 {
		size >>= 1
		l++
	}
	return l
}
