package blockmap

import (
	"testing"

	"prefetchsim/internal/mem"
	"prefetchsim/internal/sim"
)

func TestBasicOps(t *testing.T) {
	var tb Table[int]
	if _, ok := tb.Get(5); ok {
		t.Fatal("empty table reported a hit")
	}
	tb.Put(5, 50)
	tb.Put(0, 1) // block 0 is a valid key, not a sentinel
	if v, ok := tb.Get(5); !ok || v != 50 {
		t.Fatalf("Get(5) = %d,%v want 50,true", v, ok)
	}
	if v, ok := tb.Get(0); !ok || v != 1 {
		t.Fatalf("Get(0) = %d,%v want 1,true", v, ok)
	}
	tb.Put(5, 51)
	if v, _ := tb.Get(5); v != 51 || tb.Len() != 2 {
		t.Fatalf("overwrite: got %d len %d, want 51 len 2", v, tb.Len())
	}
	if old, ok := tb.Delete(5); !ok || old != 51 {
		t.Fatalf("Delete(5) = %d,%v want 51,true", old, ok)
	}
	if _, ok := tb.Get(5); ok || tb.Len() != 1 {
		t.Fatal("deleted key still present")
	}
	if _, ok := tb.Delete(5); ok {
		t.Fatal("double delete reported success")
	}
}

func TestRefInsertsZero(t *testing.T) {
	var tb Table[uint8]
	*tb.Ref(9) |= 2
	*tb.Ref(9) |= 4
	if v, ok := tb.Get(9); !ok || v != 6 {
		t.Fatalf("Ref read-modify-write: got %d,%v want 6,true", v, ok)
	}
	if p := tb.Ptr(10); p != nil {
		t.Fatal("Ptr materialized an absent key")
	}
	if p := tb.Ptr(9); p == nil || *p != 6 {
		t.Fatal("Ptr missed a present key")
	}
}

// TestCrossCheckStdlibMap drives a Table and a stdlib map with the same
// randomized operation sequence — inserts, overwrites, deletes,
// re-inserts after deletion — over key ranges both narrow (forcing long
// probe chains and wraparound at the table boundary) and full-width,
// and asserts every lookup and final state agree.
func TestCrossCheckStdlibMap(t *testing.T) {
	rng := sim.NewRand(0xb10c)
	keyRanges := []uint64{8, 64, 1 << 20, 1 << 62}
	for _, kr := range keyRanges {
		var tb Table[uint64]
		ref := make(map[mem.Block]uint64)
		for op := 0; op < 60_000; op++ {
			var b mem.Block
			if kr > 1<<32 {
				// Spread across the full key width, including huge
				// values, to catch hash/shift overflow bugs.
				b = mem.Block(rng.Uint64() % kr)
			} else {
				b = mem.Block(rng.Uint64() % kr)
			}
			switch rng.Intn(4) {
			case 0, 1: // insert / overwrite
				v := rng.Uint64()
				tb.Put(b, v)
				ref[b] = v
			case 2: // delete
				gv, gok := tb.Delete(b)
				wv, wok := ref[b]
				delete(ref, b)
				if gok != wok || (gok && gv != wv) {
					t.Fatalf("range %d op %d: Delete(%d) = %d,%v want %d,%v", kr, op, b, gv, gok, wv, wok)
				}
			case 3: // lookup
				gv, gok := tb.Get(b)
				wv, wok := ref[b]
				if gok != wok || (gok && gv != wv) {
					t.Fatalf("range %d op %d: Get(%d) = %d,%v want %d,%v", kr, op, b, gv, gok, wv, wok)
				}
			}
			if tb.Len() != len(ref) {
				t.Fatalf("range %d op %d: Len = %d, map has %d", kr, op, tb.Len(), len(ref))
			}
		}
		// Full final-state sweep: every reference key present with the
		// right value, and no probe chain broken by deletions.
		for b, wv := range ref {
			if gv, ok := tb.Get(b); !ok || gv != wv {
				t.Fatalf("range %d final: Get(%d) = %d,%v want %d,true", kr, b, gv, ok, wv)
			}
		}
	}
}

// TestDeleteReinsertAroundWrap forces a probe chain that wraps the end
// of the backing array, deletes in the middle of it, and verifies the
// chain stays reachable (the backward-shift must treat indices
// cyclically).
func TestDeleteReinsertAroundWrap(t *testing.T) {
	var tb Table[int]
	tb.Reserve(8) // 16 slots
	// Find keys that hash to the last slot so their chains wrap.
	var wrapKeys []mem.Block
	for b := mem.Block(0); len(wrapKeys) < 6; b++ {
		if tb.home(b) >= len(tb.slots)-2 {
			wrapKeys = append(wrapKeys, b)
		}
	}
	for i, b := range wrapKeys {
		tb.Put(b, i)
	}
	// Delete the first two (the chain heads), forcing wrapped
	// successors to shift back across the boundary.
	tb.Delete(wrapKeys[0])
	tb.Delete(wrapKeys[1])
	for i, b := range wrapKeys[2:] {
		if v, ok := tb.Get(b); !ok || v != i+2 {
			t.Fatalf("key %d lost after wrap-boundary deletes: got %d,%v", b, v, ok)
		}
	}
	// Re-insert around the boundary and re-verify.
	tb.Put(wrapKeys[0], 100)
	for i, b := range wrapKeys[2:] {
		if v, ok := tb.Get(b); !ok || v != i+2 {
			t.Fatalf("key %d lost after re-insert: got %d,%v", b, v, ok)
		}
	}
	if v, ok := tb.Get(wrapKeys[0]); !ok || v != 100 {
		t.Fatalf("re-inserted key: got %d,%v want 100,true", v, ok)
	}
}

func TestReserve(t *testing.T) {
	var tb Table[int]
	tb.Reserve(1000)
	size := len(tb.slots)
	for i := 0; i < 1000; i++ {
		tb.Put(mem.Block(i*977), i)
	}
	if len(tb.slots) != size {
		t.Fatalf("table rehashed despite Reserve: %d -> %d slots", size, len(tb.slots))
	}
	for i := 0; i < 1000; i++ {
		if v, ok := tb.Get(mem.Block(i * 977)); !ok || v != i {
			t.Fatalf("Get(%d) = %d,%v", i*977, v, ok)
		}
	}
}

// benchTableOps drives the steady-state mixed workload the simulator
// generates — lookups dominating, insert/delete churn from
// transactions retiring — over the given key range (a small range
// makes lookups mostly hit, as the directory and history tables do; a
// large one makes them mostly miss, as the pending tables do).
func benchTableOps(b *testing.B, keyRange uint64) {
	var tb Table[uint64]
	rng := sim.NewRand(1)
	const live = 1 << 14
	for i := 0; i < live; i++ {
		tb.Put(mem.Block(rng.Uint64()%keyRange), uint64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := mem.Block(rng.Uint64() % keyRange)
		switch i & 7 {
		case 0:
			tb.Put(k, uint64(i))
		case 1:
			tb.Delete(k)
		default:
			tb.Get(k)
		}
	}
}

// BenchmarkBlockTable's steady state must report 0 allocs/op.
func BenchmarkBlockTable(b *testing.B)     { benchTableOps(b, 1<<20) }
func BenchmarkBlockTableHits(b *testing.B) { benchTableOps(b, 1<<14) }

// benchMapOps is the same workload on map[mem.Block]uint64, for the
// bench trajectory.
func benchMapOps(b *testing.B, keyRange uint64) {
	m := make(map[mem.Block]uint64)
	rng := sim.NewRand(1)
	const live = 1 << 14
	for i := 0; i < live; i++ {
		m[mem.Block(rng.Uint64()%keyRange)] = uint64(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := mem.Block(rng.Uint64() % keyRange)
		switch i & 7 {
		case 0:
			m[k] = uint64(i)
		case 1:
			delete(m, k)
		default:
			_ = m[k]
		}
	}
}

func BenchmarkStdlibMap(b *testing.B)     { benchMapOps(b, 1<<20) }
func BenchmarkStdlibMapHits(b *testing.B) { benchMapOps(b, 1<<14) }
