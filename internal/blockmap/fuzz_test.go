package blockmap

import (
	"testing"

	"prefetchsim/internal/mem"
)

// FuzzTableVsMapOracle drives an arbitrary operation sequence through
// Table and a plain map side by side. The table's open-addressed
// robin-hood probing with backward-shift deletion has exactly the
// corner cases fuzzing finds (wrap-around displacement chains, delete
// in the middle of a cluster, clear-then-refill), and any divergence
// from map semantics would silently corrupt every prefetch scheme
// built on it.
func FuzzTableVsMapOracle(f *testing.F) {
	f.Add([]byte{0, 1, 1, 1, 2, 1, 0, 2, 3, 0})
	f.Add([]byte{0, 255, 1, 255, 2, 255, 4, 0, 0, 255, 2, 255})
	f.Add([]byte{4, 0, 0, 7, 1, 7, 3, 7})
	f.Fuzz(func(t *testing.T, ops []byte) {
		var tab Table[uint16]
		oracle := map[mem.Block]uint16{}

		// Each pair of bytes is one operation: the low bits of the first
		// pick the op, the second picks the block (a deliberately tiny
		// key space, so operations collide constantly).
		for i := 0; i+1 < len(ops); i += 2 {
			op, b := ops[i]&7, mem.Block(ops[i+1]%64)
			val := uint16(ops[i]) ^ uint16(ops[i+1])<<3
			switch op {
			case 0, 1: // Put
				tab.Put(b, val)
				oracle[b] = val
			case 2: // Delete
				got, ok := tab.Delete(b)
				want, wok := oracle[b]
				if ok != wok || (ok && got != want) {
					t.Fatalf("Delete(%d) = %d,%v; oracle %d,%v", b, got, ok, want, wok)
				}
				delete(oracle, b)
			case 3: // Ref (insert-or-update through the pointer)
				*tab.Ref(b) = val
				oracle[b] = val
			case 4: // Clear
				tab.Clear()
				oracle = map[mem.Block]uint16{}
			default: // Get
				got, ok := tab.Get(b)
				want, wok := oracle[b]
				if ok != wok || (ok && got != want) {
					t.Fatalf("Get(%d) = %d,%v; oracle %d,%v", b, got, ok, want, wok)
				}
			}
			if tab.Len() != len(oracle) {
				t.Fatalf("Len() = %d, oracle has %d entries", tab.Len(), len(oracle))
			}
		}

		// Full sweep: every oracle entry must be present with the right
		// value, and a probe outside the key space must miss.
		for b, want := range oracle {
			if got, ok := tab.Get(b); !ok || got != want {
				t.Fatalf("final Get(%d) = %d,%v; oracle %d,true", b, got, ok, want)
			}
		}
		if _, ok := tab.Get(mem.Block(1 << 40)); ok {
			t.Fatal("Get of a never-inserted block reported present")
		}
	})
}
