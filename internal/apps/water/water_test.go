package water

import (
	"testing"

	"prefetchsim/internal/apps/workload"
	"prefetchsim/internal/mem"
)

func TestRecordIsTwentyOneBlocks(t *testing.T) {
	if MoleculeBlocks != 21 {
		t.Fatal("the paper's dominant Water stride is 21 blocks")
	}
	if molBytes != 672 {
		t.Fatalf("molBytes = %d, want 672", molBytes)
	}
}

func TestLayoutOffsetsInDistinctRegions(t *testing.T) {
	// Position words span blocks 0-2, three per block.
	for w := 0; w < 9; w++ {
		if got := offPos(w) / mem.BlockBytes; got != w/3 {
			t.Fatalf("pos word %d in block %d, want %d", w, got, w/3)
		}
	}
	// Center-of-mass in block 3, forces in block 4.
	for w := 0; w < 3; w++ {
		if offVm(w)/mem.BlockBytes != 3 {
			t.Fatalf("vm word %d outside block 3", w)
		}
		if offFrc(w)/mem.BlockBytes != 4 {
			t.Fatalf("force word %d outside block 4", w)
		}
	}
	if offVel/mem.BlockBytes != 5 || offDer/mem.BlockBytes != 6 {
		t.Fatal("private predictor state must follow the shared blocks")
	}
	if offDer >= molBytes {
		t.Fatal("layout exceeds the record")
	}
}

func TestDefaultConfigPaperInput(t *testing.T) {
	c := DefaultConfig(workload.Params{})
	if c.Molecules != 288 || c.Steps != 4 {
		t.Fatalf("config = %d molecules, %d steps; paper uses 288, 4", c.Molecules, c.Steps)
	}
}

func TestNewPanicsOnTooFewMolecules(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("did not panic")
		}
	}()
	New(Config{Params: workload.Params{Procs: 16}, Molecules: 8, Steps: 1})
}

func TestPairPCsAreDistinctPerWord(t *testing.T) {
	// The nine member loads must be nine distinct load sites; collapsing
	// them onto one PC destroys the paper's per-instruction stride-21
	// sequences.
	seen := map[int]bool{}
	for w := 0; w < 9; w++ {
		pc := int(pcPosJ) + w
		if seen[pc] {
			t.Fatalf("duplicate PC %d", pc)
		}
		seen[pc] = true
	}
	if int(pcVmJ) <= int(pcPosJ)+8 {
		t.Fatal("PC bases overlap")
	}
}
