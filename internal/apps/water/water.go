// Package water re-implements the SPLASH Water benchmark used in the
// paper: an O(N²) molecular-dynamics simulation of 288 water molecules
// for 4 time steps (§4).
//
// Each molecule is a 672-byte record — 21 cache blocks, which is
// exactly the dominant stride Table 2 reports for Water (21 blocks,
// 99%). The inter-molecular force loop walks the half-shell of partner
// molecules j = i+1 .. i+N/2, reading the partner's nine
// position/orientation doubles through nine distinct load sites (the
// compiled structure-member accesses of the original), each of which
// therefore strides by 21 blocks, and read-modify-writing the partner's
// force block under its per-molecule lock.
//
// The nine position words span three consecutive blocks of the record
// and the force word sits in the fourth, so although every stride
// sequence is 21 blocks long, a miss on the record's first block is
// followed by reads of its neighbours — the "high spatial locality of
// accesses belonging to different stride sequences" that lets
// sequential prefetching perform as well as stride prefetching on
// Water despite the large stride (§5.2).
package water

import (
	"fmt"

	"prefetchsim/internal/apps/workload"
	"prefetchsim/internal/mem"
	"prefetchsim/internal/trace"
)

// MoleculeBlocks is the padded molecule record size in blocks; the
// paper's dominant Water stride.
const MoleculeBlocks = 21

const molBytes = MoleculeBlocks * mem.BlockBytes // 672 B = 84 doubles

// Record layout: blocks 0-2 hold the nine position/orientation doubles
// (three per block, as the original's 3×3 predictor-order matrix lays
// out), block 3 the center-of-mass terms — read by every pair
// computation and rewritten by the owner each step — block 4 the
// accumulated forces, and blocks 5+ the velocities and higher-order
// predictor state touched only by the owner.
func offPos(w int) int { return (w/3)*mem.BlockBytes + (w%3)*workload.WordBytes }
func offVm(w int) int  { return 3*mem.BlockBytes + w*workload.WordBytes }
func offFrc(w int) int { return 4*mem.BlockBytes + w*workload.WordBytes }

const (
	offVel = 5 * mem.BlockBytes
	offDer = 6 * mem.BlockBytes
)

// Load-site PC bases; the position read uses nine consecutive PCs, one
// per structure member, like the original's unrolled member loads.
const (
	pcPosJ trace.PC = 10 + iota*16 // +w, w in 0..8
	pcVmJ                          // +w, w in 0..2
	pcFrcJ
	pcFrcJW
	pcPosI
	pcPred
	pcPredW
	pcCorr
	pcCorrW
)

// Config parameterizes the workload.
type Config struct {
	workload.Params
	// Molecules is the molecule count (paper input: 288).
	Molecules int
	// Steps is the number of time steps (paper input: 4).
	Steps int
}

// DefaultConfig returns the paper's input scaled by p.Scale.
func DefaultConfig(p workload.Params) Config {
	p = p.Norm()
	return Config{Params: p, Molecules: 288 * p.Scale, Steps: 4}
}

// New builds the Water program.
func New(c Config) *trace.Program {
	c.Params = c.Params.Norm()
	P, N := c.Procs, c.Molecules
	if N < 2*P {
		panic(fmt.Sprintf("water: %d molecules too few for %d processors", N, P))
	}

	space := mem.NewSpace()
	mol := mem.NewArray(space, N, molBytes, molBytes)
	lockVars := mem.NewArray(space, N, mem.BlockBytes, mem.BlockBytes)

	chunk := (N + P - 1) / P
	return workload.Build(fmt.Sprintf("Water-%d", N), P, func(p int, g *workload.Gen) {
		lo := p * chunk
		hi := lo + chunk
		if hi > N {
			hi = N
		}

		for step := 0; step < c.Steps; step++ {
			// Predict: integrate my molecules' predictor state and
			// publish new positions (private except for the position
			// blocks other processors read).
			for i := lo; i < hi; i++ {
				for w := 0; w < 3; w++ {
					g.Read(pcPred, mol.At(i, offVel+w*workload.WordBytes), 2)
					g.Read(pcPred, mol.At(i, offDer+w*workload.WordBytes), 2)
				}
				for w := 0; w < 9; w++ {
					g.Write(pcPredW, mol.At(i, offPos(w)), 2)
				}
				// The center-of-mass terms move with the molecule.
				for w := 0; w < 3; w++ {
					g.Write(pcPredW, mol.At(i, offVm(w)), 2)
				}
			}
			g.Barrier()

			// Inter-molecular forces over the half shell. Forces
			// accumulate into private partial arrays; a molecule's
			// global force block is updated (under its lock) as soon as
			// my last contribution to it is computed, as the original
			// does.
			merge := func(j int) {
				g.Lock(lockVars.Elem(j))
				for w := 0; w < 3; w++ {
					g.Read(pcFrcJ+trace.PC(w), mol.At(j, offFrc(w)), 2)
					g.Write(pcFrcJW+trace.PC(w), mol.At(j, offFrc(w)), 2)
				}
				g.Unlock(lockVars.Elem(j))
			}
			for i := lo; i < hi; i++ {
				for w := 0; w < 9; w++ {
					g.Read(pcPosI+trace.PC(w), mol.At(i, offPos(w)), 1)
				}
				for d := 1; d <= N/2; d++ {
					j := (i + d) % N
					// Nine member loads spanning record blocks 0-2 and
					// the center-of-mass terms in block 3, with the
					// pair-potential arithmetic interleaved.
					for w := 0; w < 9; w++ {
						g.Read(pcPosJ+trace.PC(w), mol.At(j, offPos(w)), 3)
					}
					for w := 0; w < 3; w++ {
						g.Read(pcVmJ+trace.PC(w), mol.At(j, offVm(w)), 3)
					}
				}
				// My contributions to molecule i+1 are now complete.
				if i+1 < hi {
					merge(i + 1)
				}
			}
			// Tail: molecules whose last contribution came from my
			// final outer iteration, plus my own first molecule.
			merge(lo)
			for k := 0; k < N/2; k++ {
				merge((hi + k) % N)
			}
			g.Barrier()

			// Correct: update my molecules from the accumulated forces.
			for i := lo; i < hi; i++ {
				for w := 0; w < 3; w++ {
					g.Read(pcCorr, mol.At(i, offFrc(w)), 2)
					g.Write(pcCorrW, mol.At(i, offVel+w*workload.WordBytes), 2)
					g.Write(pcCorrW, mol.At(i, offDer+w*workload.WordBytes), 2)
				}
			}
			g.Barrier()
		}
	})
}

// StrideHints returns the compile-time-known strides of Water's pair
// loop: every partner-molecule load site strides by one molecule
// record. Used by the §6 hybrid (software-assisted) scheme.
func StrideHints() map[trace.PC]int64 {
	hints := make(map[trace.PC]int64)
	for w := 0; w < 9; w++ {
		hints[pcPosJ+trace.PC(w)] = molBytes
	}
	for w := 0; w < 3; w++ {
		hints[pcVmJ+trace.PC(w)] = molBytes
		hints[pcFrcJ+trace.PC(w)] = molBytes
	}
	return hints
}
