// Package ocean re-implements the Stanford Ocean benchmark used in the
// paper: an iterative 5-point-stencil grid solver on a 128×128 ocean
// basin (§4), partitioned into square subgrids (one per processor).
//
// The grid rows are padded to 260 doubles = 2080 bytes = 65 blocks, so
// a vertical neighbour access strides 65 blocks — reproducing Ocean's
// signature bimodal stride mix from Table 2 (dominant strides 65 and
// 1). Each iteration a processor refreshes its ghost zone from its
// neighbours' freshly-written boundaries, as the real code's dedicated
// boundary routines do: north/south ghost rows give short 1-block-
// stride runs, east/west ghost columns give long 65-block-stride runs
// whose blocks carry only one useful word. Those column misses are why
// Ocean is the one application where stride prefetching beats
// sequential prefetching (§5.2).
package ocean

import (
	"fmt"
	"math"

	"prefetchsim/internal/apps/workload"
	"prefetchsim/internal/mem"
	"prefetchsim/internal/trace"
)

// RowBlocks is the padded row pitch in blocks; the paper reports 65 as
// Ocean's dominant stride.
const RowBlocks = 65

const rowBytes = RowBlocks * mem.BlockBytes // 2080 B = 260 doubles

// Load-site PCs. The ghost-zone exchange has its own sites (separate
// routines in the real code); the interior sweep has the stencil sites.
const (
	pcGhostN trace.PC = iota + 1
	pcGhostS
	pcGhostW
	pcGhostE
	pcNorth
	pcSouth
	pcWest
	pcEast
	pcCenter
	pcStore
)

// Config parameterizes the workload.
type Config struct {
	workload.Params
	// N is the interior grid dimension (paper input: 128×128).
	N int
	// Iters is the number of solver sweeps (the paper iterates to a
	// 1e-7 tolerance; we fix the sweep count).
	Iters int
}

// DefaultConfig returns the paper's input scaled by p.Scale.
func DefaultConfig(p workload.Params) Config {
	p = p.Norm()
	n := 128
	if p.Scale > 1 {
		n = 128 + 64*(p.Scale-1)
	}
	return Config{Params: p, N: n, Iters: 18}
}

// New builds the Ocean program.
func New(c Config) *trace.Program {
	c.Params = c.Params.Norm()
	P, N := c.Procs, c.N
	if (N+2)*workload.WordBytes > rowBytes {
		panic(fmt.Sprintf("ocean: interior %d exceeds the 260-double padded row", N))
	}
	side := int(math.Sqrt(float64(P)))
	if side*side != P {
		panic(fmt.Sprintf("ocean: processor count %d is not a perfect square", P))
	}
	if N%side != 0 {
		panic(fmt.Sprintf("ocean: grid %d not divisible into %dx%d subgrids", N, side, side))
	}
	sub := N / side

	space := mem.NewSpace()
	grids := [2]mem.Array{
		mem.NewArray(space, N+2, rowBytes, rowBytes),
		mem.NewArray(space, N+2, rowBytes, rowBytes),
	}
	at := func(gr, i, j int) mem.Addr { return grids[gr].At(i, j*workload.WordBytes) }

	return workload.Build(fmt.Sprintf("Ocean-%dx%d", N, N), P, func(p int, g *workload.Gen) {
		pr, pc := p/side, p%side
		i0, j0 := 1+pr*sub, 1+pc*sub // interior coordinates are 1-based
		i1, j1 := i0+sub-1, j0+sub-1

		// First touch of my subgrid in both phases.
		for gr := 0; gr < 2; gr++ {
			for i := i0; i <= i1; i++ {
				for j := j0; j <= j1; j++ {
					g.Write(pcStore, at(gr, i, j), 1)
				}
			}
		}
		g.Barrier()

		src, dst := 0, 1
		for it := 0; it < c.Iters; it++ {
			// Ghost-zone refresh: read the neighbours' boundary cells
			// (rewritten by them every iteration) into private copies.
			for j := j0; j <= j1; j++ {
				g.Read(pcGhostN, at(src, i0-1, j), 2)
			}
			for j := j0; j <= j1; j++ {
				g.Read(pcGhostS, at(src, i1+1, j), 2)
			}
			for i := i0; i <= i1; i++ {
				g.Read(pcGhostW, at(src, i, j0-1), 6)
			}
			for i := i0; i <= i1; i++ {
				g.Read(pcGhostE, at(src, i, j1+1), 6)
			}

			// Interior stencil sweep; edge points use the private ghost
			// copies, so only own-subgrid cells are referenced.
			for i := i0; i <= i1; i++ {
				for j := j0; j <= j1; j++ {
					if i > i0 {
						g.Read(pcNorth, at(src, i-1, j), 1)
					}
					if i < i1 {
						g.Read(pcSouth, at(src, i+1, j), 1)
					}
					if j > j0 {
						g.Read(pcWest, at(src, i, j-1), 1)
					}
					if j < j1 {
						g.Read(pcEast, at(src, i, j+1), 1)
					}
					g.Read(pcCenter, at(src, i, j), 1)
					g.Write(pcStore, at(dst, i, j), 4) // stencil arithmetic
				}
			}
			src, dst = dst, src
			g.Barrier()
		}
	})
}

// StrideHints returns the compile-time-known strides of Ocean's
// ghost-exchange and sweep loops, for the §6 hybrid scheme: ghost rows
// stream by one element, ghost columns by one padded grid row.
func StrideHints() map[trace.PC]int64 {
	return map[trace.PC]int64{
		pcGhostN: workload.WordBytes,
		pcGhostS: workload.WordBytes,
		pcGhostW: rowBytes,
		pcGhostE: rowBytes,
	}
}
