package ocean

import (
	"testing"

	"prefetchsim/internal/apps/workload"
	"prefetchsim/internal/trace"
)

func TestRowPitchIsSixtyFiveBlocks(t *testing.T) {
	if RowBlocks != 65 {
		t.Fatal("the paper's dominant Ocean stride is 65 blocks")
	}
	if rowBytes != 2080 {
		t.Fatalf("rowBytes = %d, want 2080", rowBytes)
	}
}

func TestDefaultConfigPaperInput(t *testing.T) {
	c := DefaultConfig(workload.Params{})
	if c.N != 128 {
		t.Fatalf("N = %d, want the paper's 128", c.N)
	}
	if DefaultConfig(workload.Params{Scale: 2}).N <= 128 {
		t.Fatal("scale 2 did not grow the grid")
	}
}

func TestNewValidatesGeometry(t *testing.T) {
	cases := map[string]Config{
		"non-square procs": {Params: workload.Params{Procs: 6}, N: 12, Iters: 1},
		"indivisible grid": {Params: workload.Params{Procs: 4}, N: 9, Iters: 1},
		"grid too wide":    {Params: workload.Params{Procs: 4}, N: 400, Iters: 1},
	}
	for name, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: did not panic", name)
				}
			}()
			New(cfg)
		}()
	}
}

func TestGhostColumnReadsStrideOneRow(t *testing.T) {
	// Drain processor 1's stream (subgrid column 1 of a 2x2 split) and
	// check its west-ghost reads stride by exactly one padded row.
	p := New(Config{Params: workload.Params{Procs: 4}, N: 16, Iters: 1})
	defer p.Stop()
	s := p.Streams[1]
	var west []uint64
	for {
		op := s.Next()
		if op.Kind == trace.End {
			break
		}
		if op.Kind == trace.Read && op.PC == pcGhostW {
			west = append(west, op.Addr)
		}
	}
	if len(west) != 8 { // one iteration, 8-row subgrid
		t.Fatalf("west ghost reads = %d, want 8", len(west))
	}
	for i := 1; i < len(west); i++ {
		if west[i]-west[i-1] != rowBytes {
			t.Fatalf("ghost column stride = %d bytes, want %d", west[i]-west[i-1], rowBytes)
		}
	}
}

func TestBarrierCountMatchesIterations(t *testing.T) {
	const iters = 3
	p := New(Config{Params: workload.Params{Procs: 4}, N: 16, Iters: iters})
	defer p.Stop()
	barriers := 0
	for {
		op := p.Streams[0].Next()
		if op.Kind == trace.End {
			break
		}
		if op.Kind == trace.Barrier {
			barriers++
		}
	}
	if barriers != iters+1 { // init barrier + one per sweep
		t.Fatalf("barriers = %d, want %d", barriers, iters+1)
	}
}
