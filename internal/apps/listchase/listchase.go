// Package listchase implements a linked-list traversal kernel, the
// canonical pointer-chasing workload the paper's stride and sequential
// schemes cannot help (§7 names "pointer-based codes" as the class
// their detectors miss). Each processor owns a private list of
// block-sized nodes threaded through its node pool in pseudo-random
// order and walks it repeatedly: the miss stream has arbitrary deltas —
// no stride detector can learn it — but the *order* of blocks repeats
// every round, exactly the structure a correlation (Markov) prefetcher
// exploits.
package listchase

import (
	"fmt"

	"prefetchsim/internal/apps/workload"
	"prefetchsim/internal/mem"
	"prefetchsim/internal/sim"
	"prefetchsim/internal/trace"
)

// Load-site PCs.
const (
	pcNode trace.PC = iota + 1 // node payload: the pointer chase itself
	pcAcc                      // per-round accumulator write
)

// Config parameterizes the kernel.
type Config struct {
	workload.Params
	// Nodes is the list length per processor; each node occupies one
	// cache block, so every step of the walk touches a distinct block.
	Nodes int
	// Rounds is the number of full traversals. The first round trains a
	// correlation prefetcher; later rounds are where it pays off.
	Rounds int
}

// DefaultConfig sizes the per-processor list well past the SLC's reach
// for Scale 1 and walks it four times.
func DefaultConfig(p workload.Params) Config {
	p = p.Norm()
	return Config{Params: p, Nodes: 2048 * p.Scale, Rounds: 4}
}

// New builds the list-chase program. Each processor's traversal order
// is a random cyclic permutation of its node pool (one cycle, so every
// node is visited exactly once per round), derived deterministically
// from the seed.
func New(c Config) *trace.Program {
	c.Params = c.Params.Norm()
	if c.Nodes < 2 || c.Rounds < 1 {
		panic(fmt.Sprintf("listchase: need >= 2 nodes and >= 1 round, got %d/%d",
			c.Nodes, c.Rounds))
	}
	space := mem.NewSpace()
	procs := make([]gen, c.Procs)
	for p := range procs {
		pool := mem.NewArray(space, c.Nodes, workload.WordBytes, mem.BlockBytes)
		acc := mem.NewArray(space, 1, workload.WordBytes, mem.BlockBytes)
		procs[p] = gen{c: c, pool: pool, acc: acc, order: chaseOrder(c, p)}
	}
	return workload.BuildFunc(fmt.Sprintf("ListChase-%dx%d", c.Nodes, c.Rounds), c.Procs,
		func(p int) workload.Filler { g := procs[p]; return &g })
}

// chaseOrder returns processor p's traversal order: a Sattolo cyclic
// permutation of [0, Nodes), so next(i) is a pure function of i and the
// walk forms a single cycle.
func chaseOrder(c Config, p int) []int {
	rng := sim.NewRand(c.Seed + uint64(p)*0x9e3779b9 + 1)
	next := make([]int, c.Nodes)
	for i := range next {
		next[i] = i
	}
	for i := c.Nodes - 1; i > 0; i-- {
		j := rng.Intn(i)
		next[i], next[j] = next[j], next[i]
	}
	order := make([]int, c.Nodes)
	at := 0
	for i := range order {
		order[i] = at
		at = next[at]
	}
	return order
}

// gen is one processor's resumable generator; (round, position) is its
// complete suspension state.
type gen struct {
	c     Config
	pool  mem.Array
	acc   mem.Array
	order []int

	round, pos int
}

// Fill walks the list Rounds times, one node read per step, with an
// accumulator write and a barrier closing each round.
func (s *gen) Fill(g *workload.FuncGen) bool {
	for ; s.round < s.c.Rounds; s.round++ {
		for ; s.pos < len(s.order); s.pos++ {
			if !g.Room(1) {
				return false
			}
			g.Read(pcNode, s.pool.Elem(s.order[s.pos]), 2)
		}
		if !g.Room(2) {
			return false
		}
		g.Write(pcAcc, s.acc.Elem(0), 4)
		g.Barrier()
		s.pos = 0
	}
	return true
}

// StrideHints returns the compile-time stride table: empty, because the
// traversal order is data-dependent — precisely why this kernel exists.
func StrideHints() map[trace.PC]int64 { return map[trace.PC]int64{} }
