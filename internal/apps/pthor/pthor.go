// Package pthor re-implements the SPLASH PTHOR benchmark used in the
// paper: a parallel logic-level circuit simulator (§4). The paper runs
// the RISC circuit for 1000 time steps; that netlist is not available,
// so the simulator runs a synthetic random circuit of two-input
// XOR/NAND gates (see DESIGN.md §4). As in the paper's PTHOR runs, the
// step count is reduced relative to the original "because of time
// limitations for simulations".
//
// Gate records are 96 bytes (3 blocks) and a gate's evaluation chases
// pointers to its two input gates' output words — scattered accesses
// with low spatial locality and almost no strides (Table 2: 4.1% of
// misses in stride sequences, average run 3.4). Neither stride nor
// sequential prefetching helps much here, which makes PTHOR the paper's
// control case.
//
// Gate activity depends on simulated values, so the boolean circuit is
// evaluated once, deterministically, at program-construction time; each
// processor then replays its own gates' activations.
package pthor

import (
	"fmt"

	"prefetchsim/internal/apps/workload"
	"prefetchsim/internal/mem"
	"prefetchsim/internal/sim"
	"prefetchsim/internal/trace"
)

// Gate record layout: 96 bytes = 3 blocks. Block 0 holds the output
// value and bookkeeping, block 1 the input pointers, block 2 the
// scheduling state written by predecessors.
const gateBytes = 96

const (
	offOut   = 0
	offState = 8
	offIn    = mem.BlockBytes
	offSched = 2 * mem.BlockBytes
)

// Load-site PCs.
const (
	pcSelf trace.PC = iota + 1
	pcStateR
	pcPtr
	pcIn
	pcOutW
	pcSchedR
	pcSchedW
)

// Config parameterizes the workload.
type Config struct {
	workload.Params
	// Gates is the synthetic circuit size.
	Gates int
	// Steps is the number of simulated clock steps.
	Steps int
}

// DefaultConfig returns the synthetic stand-in for the RISC circuit,
// scaled by p.Scale.
func DefaultConfig(p workload.Params) Config {
	p = p.Norm()
	return Config{Params: p, Gates: 3000 * p.Scale, Steps: 220}
}

// New builds the PTHOR program.
func New(c Config) *trace.Program {
	c.Params = c.Params.Norm()
	P, G := c.Procs, c.Gates
	if G < 4*P {
		panic(fmt.Sprintf("pthor: %d gates too few for %d processors", G, P))
	}

	// Build the synthetic circuit.
	rng := sim.NewRand(c.Seed*6364136223846793005 + 1442695040888963407)
	in1 := make([]int32, G)
	in2 := make([]int32, G)
	isXor := make([]bool, G)
	fanout := make([][]int32, G)
	for gi := 0; gi < G; gi++ {
		a, b := int32(rng.Intn(G)), int32(rng.Intn(G))
		in1[gi], in2[gi] = a, b
		isXor[gi] = rng.Intn(2) == 0
		fanout[a] = append(fanout[a], int32(gi))
		fanout[b] = append(fanout[b], int32(gi))
	}

	// Evaluate the circuit synchronously to derive the per-step active
	// sets (a gate is active when an input changed last step).
	out := make([]bool, G)
	for gi := range out {
		out[gi] = rng.Intn(2) == 0
	}
	active := make([][]int32, c.Steps) // per step, ascending gate ids
	changed := make([][]bool, c.Steps) // parallel: did the output flip?
	cur := make([]bool, G)             // active this step
	next := make([]bool, G)
	for gi := range cur {
		cur[gi] = rng.Intn(4) == 0 // ~25% initially stimulated
	}
	newOut := make([]bool, G)
	for step := 0; step < c.Steps; step++ {
		copy(newOut, out)
		for gi := 0; gi < G; gi++ {
			if !cur[gi] {
				continue
			}
			active[step] = append(active[step], int32(gi))
			a, b := out[in1[gi]], out[in2[gi]]
			var v bool
			if isXor[gi] {
				v = a != b
			} else {
				v = !(a && b)
			}
			flip := v != out[gi]
			changed[step] = append(changed[step], flip)
			if flip {
				newOut[gi] = v
				for _, succ := range fanout[gi] {
					next[succ] = true
				}
			}
		}
		copy(out, newOut)
		cur, next = next, cur
		for gi := range next {
			next[gi] = false
		}
	}

	space := mem.NewSpace()
	gates := mem.NewArray(space, G, gateBytes, gateBytes)
	chunk := (G + P - 1) / P

	return workload.Build(fmt.Sprintf("PTHOR-%dg", G), P, func(p int, g *workload.Gen) {
		lo, hi := int32(p*chunk), int32((p+1)*chunk)
		if hi > int32(G) {
			hi = int32(G)
		}
		order := sim.NewRand(c.Seed*31 + uint64(p)*7919 + 3)
		for step := 0; step < c.Steps; step++ {
			// Collect my active gates, then process them in event-queue
			// order (the original's pending-event list is not sorted by
			// gate id; an ascending walk would fabricate strides).
			type task struct {
				gi   int32
				flip bool
			}
			var mine []task
			for ai, gi := range active[step] {
				if gi >= lo && gi < hi {
					mine = append(mine, task{gi: gi, flip: changed[step][ai]})
				}
			}
			for i := len(mine) - 1; i > 0; i-- {
				j := order.Intn(i + 1)
				mine[i], mine[j] = mine[j], mine[i]
			}
			for _, tk := range mine {
				gid := int(tk.gi)
				// Dequeue: read scheduling state (written by the
				// predecessor that activated us), then our own record.
				g.Read(pcSchedR, gates.At(gid, offSched), 2)
				g.Read(pcSelf, gates.At(gid, offOut), 2)
				g.Read(pcStateR, gates.At(gid, offState), 1)
				g.Read(pcPtr, gates.At(gid, offIn), 1)
				g.Read(pcPtr, gates.At(gid, offIn+8), 1)
				// Chase the input pointers: scattered reads.
				g.Read(pcIn, gates.At(int(in1[gid]), offOut), 4)
				g.Read(pcIn, gates.At(int(in2[gid]), offOut), 4)
				// Evaluate; publish and schedule successors only when
				// the output flipped (bounded fanout walk).
				if tk.flip {
					g.Write(pcOutW, gates.At(gid, offOut), 3)
					for fi, succ := range fanout[gid] {
						if fi == 4 {
							break
						}
						g.Write(pcSchedW, gates.At(int(succ), offSched), 2)
					}
				}
			}
			g.Barrier()
		}
	})
}

// StrideHints returns an empty table: PTHOR's accesses are
// pointer-chasing and carry no compile-time stride information, which
// is precisely why it is the paper's control application.
func StrideHints() map[trace.PC]int64 { return nil }
