package pthor

import (
	"testing"

	"prefetchsim/internal/apps/workload"
	"prefetchsim/internal/mem"
	"prefetchsim/internal/trace"
)

func TestGateRecordIsThreeBlocks(t *testing.T) {
	if gateBytes != 3*mem.BlockBytes {
		t.Fatalf("gate record = %d bytes", gateBytes)
	}
}

func TestDefaultConfigScales(t *testing.T) {
	if DefaultConfig(workload.Params{Scale: 2}).Gates <= DefaultConfig(workload.Params{}).Gates {
		t.Fatal("scale 2 did not grow the circuit")
	}
}

func TestNewPanicsOnTinyCircuit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("did not panic")
		}
	}()
	New(Config{Params: workload.Params{Procs: 16}, Gates: 10, Steps: 1})
}

func TestActivityPersists(t *testing.T) {
	// The XOR/NAND mix must keep the circuit alive: the last step still
	// processes gates (otherwise the workload degenerates to barriers).
	cfg := Config{Params: workload.Params{Procs: 2, Seed: 3}, Gates: 500, Steps: 40}
	p := New(cfg)
	defer p.Stop()
	reads := 0
	barriers := 0
	lastActiveBarrier := 0
	for {
		op := p.Streams[0].Next()
		if op.Kind == trace.End {
			break
		}
		switch op.Kind {
		case trace.Barrier:
			barriers++
		case trace.Read:
			reads++
			lastActiveBarrier = barriers
		}
	}
	if barriers != cfg.Steps {
		t.Fatalf("barriers = %d, want %d", barriers, cfg.Steps)
	}
	if reads == 0 {
		t.Fatal("no gate evaluations at all")
	}
	if lastActiveBarrier < cfg.Steps*3/4 {
		t.Fatalf("activity died out after step %d of %d", lastActiveBarrier, cfg.Steps)
	}
}

func TestInputPointerChasingIsScattered(t *testing.T) {
	// The two input reads of consecutive evaluations must not form long
	// equidistant runs (PTHOR is the paper's stride-free control).
	p := New(Config{Params: workload.Params{Procs: 1, Seed: 5}, Gates: 400, Steps: 5})
	defer p.Stop()
	var addrs []uint64
	for {
		op := p.Streams[0].Next()
		if op.Kind == trace.End {
			break
		}
		if op.PC == pcIn {
			addrs = append(addrs, op.Addr)
		}
	}
	if len(addrs) < 100 {
		t.Fatalf("only %d input reads", len(addrs))
	}
	runs := 0
	for i := 2; i < len(addrs); i++ {
		if addrs[i]-addrs[i-1] == addrs[i-1]-addrs[i-2] && addrs[i] != addrs[i-1] {
			runs++
		}
	}
	if frac := float64(runs) / float64(len(addrs)); frac > 0.05 {
		t.Fatalf("%.1f%% of input reads are equidistant; pointer chasing should be scattered", 100*frac)
	}
}
