// Package hashjoin implements the probe phase of a chained-bucket hash
// join, a pointer-heavy database kernel. Each probe hashes a key to a
// bucket (a near-random read into the bucket-head array), then chases
// the bucket's overflow chain node by node — short pointer chases whose
// fan-out exercises a correlation prefetcher's multi-successor slots —
// and finally appends a match record to the processor's output run,
// the one well-strided reference a stride detector can still win.
package hashjoin

import (
	"fmt"

	"prefetchsim/internal/apps/workload"
	"prefetchsim/internal/mem"
	"prefetchsim/internal/sim"
	"prefetchsim/internal/trace"
)

// Load-site PCs.
const (
	pcBucket trace.PC = iota + 1 // bucket head: hash-indexed, near-random
	pcChain                      // overflow-chain node: pointer chase
	pcOut                        // output append: unit stride
)

// Config parameterizes the kernel.
type Config struct {
	workload.Params
	// Buckets is the hash-table size; Probes is the number of lookups
	// each processor performs per round; MaxChain bounds the overflow
	// chain length; Rounds repeats the same probe sequence, so chain
	// correlations recur.
	Buckets  int
	Probes   int
	MaxChain int
	Rounds   int
}

// DefaultConfig sizes the table so bucket heads far exceed the SLC and
// chains average two nodes.
func DefaultConfig(p workload.Params) Config {
	p = p.Norm()
	return Config{
		Params:   p,
		Buckets:  4096 * p.Scale,
		Probes:   2048 * p.Scale,
		MaxChain: 4,
		Rounds:   3,
	}
}

// New builds the hash-join probe program. The table layout (chain
// lengths, node placement) and each processor's probe sequence are
// derived deterministically from the seed.
func New(c Config) *trace.Program {
	c.Params = c.Params.Norm()
	if c.Buckets < 1 || c.Probes < 1 || c.MaxChain < 1 || c.Rounds < 1 {
		panic(fmt.Sprintf("hashjoin: bad config %+v", c))
	}
	rng := sim.NewRand(c.Seed + 0x4a5b)
	space := mem.NewSpace()
	heads := mem.NewArray(space, c.Buckets, workload.WordBytes, workload.WordBytes)

	// Chain nodes live in one pool, block-sized so each chase step is a
	// distinct block; buckets draw their chains from a shuffled order so
	// chain layout is uncorrelated with bucket index.
	chainLen := make([]int, c.Buckets)
	total := 0
	for b := range chainLen {
		chainLen[b] = 1 + rng.Intn(c.MaxChain)
		total += chainLen[b]
	}
	pool := mem.NewArray(space, total, workload.WordBytes, mem.BlockBytes)
	perm := make([]int, total)
	for i := range perm {
		perm[i] = i
	}
	for i := total - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	chains := make([][]int, c.Buckets)
	at := 0
	for b := range chains {
		chains[b] = perm[at : at+chainLen[b]]
		at += chainLen[b]
	}

	procs := make([]gen, c.Procs)
	for p := range procs {
		prng := sim.NewRand(c.Seed + uint64(p)*0x85eb + 7)
		probes := make([]int, c.Probes)
		for i := range probes {
			probes[i] = prng.Intn(c.Buckets)
		}
		out := mem.NewArray(space, c.Probes, workload.WordBytes, workload.WordBytes)
		procs[p] = gen{c: c, heads: heads, pool: pool, chains: chains, probes: probes, out: out}
	}
	return workload.BuildFunc(fmt.Sprintf("HashJoin-%dx%dx%d", c.Buckets, c.Probes, c.Rounds),
		c.Procs, func(p int) workload.Filler { g := procs[p]; return &g })
}

// gen is one processor's resumable generator; (round, probe index) is
// its suspension state — one probe is an indivisible emission run.
type gen struct {
	c      Config
	heads  mem.Array
	pool   mem.Array
	chains [][]int
	probes []int
	out    mem.Array

	round, pos int
}

// Fill emits, per probe: Read head[bucket]; Read each chain node;
// Write out[i] — with a barrier closing each round.
func (s *gen) Fill(g *workload.FuncGen) bool {
	for ; s.round < s.c.Rounds; s.round++ {
		for ; s.pos < len(s.probes); s.pos++ {
			bkt := s.probes[s.pos]
			if !g.Room(2 + len(s.chains[bkt])) {
				return false
			}
			g.Read(pcBucket, s.heads.Elem(bkt), 2)
			for _, n := range s.chains[bkt] {
				g.Read(pcChain, s.pool.Elem(n), 2)
			}
			g.Write(pcOut, s.out.Elem(s.pos), 4)
		}
		if !g.Room(1) {
			return false
		}
		g.Barrier()
		s.pos = 0
	}
	return true
}

// StrideHints returns the compile-time stride table: only the output
// append is statically strided; the probe and chase sites are
// data-dependent.
func StrideHints() map[trace.PC]int64 {
	return map[trace.PC]int64{pcOut: workload.WordBytes}
}
