package mp3d

import (
	"testing"

	"prefetchsim/internal/apps/workload"
	"prefetchsim/internal/mem"
	"prefetchsim/internal/trace"
)

func TestRecordSizeFragmentsBlocks(t *testing.T) {
	// The unpadded 40-byte record is what produces the paper's short
	// fragmented stride-1 runs (avg 5.2) on sequential particle walks.
	if particleBytes == 0 || particleBytes%mem.BlockBytes == 0 {
		t.Fatalf("particle record (%d bytes) must not be block-aligned", particleBytes)
	}
}

func TestDefaultConfigPaperInput(t *testing.T) {
	c := DefaultConfig(workload.Params{})
	if c.Particles != 10000 || c.Steps != 10 {
		t.Fatalf("config = %d particles, %d steps; paper uses 10K, 10", c.Particles, c.Steps)
	}
}

func TestNewPanicsOnTooFewParticles(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("did not panic")
		}
	}()
	New(Config{Params: workload.Params{Procs: 16}, Particles: 3, Steps: 1})
}

func TestParticlesStayInTunnel(t *testing.T) {
	// Drain one processor's stream: every cell access must land inside
	// the allocated cell lattice (reflection at the walls works).
	p := New(Config{Params: workload.Params{Procs: 2, Seed: 9}, Particles: 400, Steps: 5})
	defer p.Stop()
	var cellLo, cellHi uint64
	first := true
	for {
		op := p.Streams[0].Next()
		if op.Kind == trace.End {
			break
		}
		if op.PC == pcCellR {
			if first {
				cellLo, cellHi = op.Addr, op.Addr
				first = false
			}
			if op.Addr < cellLo {
				cellLo = op.Addr
			}
			if op.Addr > cellHi {
				cellHi = op.Addr
			}
		}
	}
	if first {
		t.Fatal("no cell accesses emitted")
	}
	if span := cellHi - cellLo; span >= uint64(nCells)*32 {
		t.Fatalf("cell accesses span %d bytes, exceeding the %d-cell lattice", span, nCells)
	}
}

func TestSeedChangesTrajectories(t *testing.T) {
	mk := func(seed uint64) []trace.Op {
		p := New(Config{Params: workload.Params{Procs: 1, Seed: seed}, Particles: 50, Steps: 1})
		defer p.Stop()
		var ops []trace.Op
		for {
			op := p.Streams[0].Next()
			if op.Kind == trace.End {
				break
			}
			ops = append(ops, op)
		}
		return ops
	}
	a, b := mk(1), mk(2)
	same := true
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same && len(a) == len(b) {
		t.Fatal("different seeds produced identical traces")
	}
}
