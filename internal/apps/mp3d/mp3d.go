// Package mp3d re-implements the SPLASH MP3D benchmark used in the
// paper: a particle-in-cell rarefied-fluid-flow simulation run with 10K
// particles for 10 time steps (§4).
//
// Each processor owns a contiguous chunk of the particle array (40-byte
// unpadded records, so a sequential walk misses in fragmented 1-block-
// stride runs of four or five — Table 2's MP3D row: 9.2% of misses in
// stride sequences, average length 5.2, stride 1 dominant). Particles
// are positioned randomly in the wind tunnel, so the shared space-cell
// lattice is touched by every processor and cell accesses are scattered
// coherence misses with no stride. Collisions read and dirty a partner
// particle's record, which is why the Particles structure shows the
// "fairly high spatial locality" (two consecutive blocks per record)
// that lets sequential prefetching remove ~28% of MP3D's misses while
// stride prefetching manages ~5% (§5.2).
package mp3d

import (
	"fmt"

	"prefetchsim/internal/apps/workload"
	"prefetchsim/internal/mem"
	"prefetchsim/internal/sim"
	"prefetchsim/internal/trace"
)

// Space lattice dimensions (cells).
const (
	cellsX = 16
	cellsY = 16
	cellsZ = 8
	nCells = cellsX * cellsY * cellsZ
)

// particleBytes is the unpadded particle record size; real MP3D
// particles are 36 bytes, and the non-power-of-two size is what
// fragments sequential walks into the short stride-1 runs the paper
// reports.
const particleBytes = 40

// Record word offsets.
const (
	offX, offY, offZ = 0, 8, 16
	offVX, offVY     = 20, 28
)

// Fixed-point position scale: positions live in [0, dim<<fpShift).
const fpShift = 16

// Load-site PCs.
const (
	pcPosR trace.PC = iota + 1
	pcVelR
	pcPosW
	pcCellR
	pcCollR
	pcCellW
	pcPartnR
	pcPartnW
	pcStatR
	pcStatW
)

// Config parameterizes the workload.
type Config struct {
	workload.Params
	// Particles is the particle count (paper input: 10K).
	Particles int
	// Steps is the number of time steps (paper input: 10).
	Steps int
}

// DefaultConfig returns the paper's input scaled by p.Scale.
func DefaultConfig(p workload.Params) Config {
	p = p.Norm()
	return Config{Params: p, Particles: 10000 * p.Scale, Steps: 10}
}

// New builds the MP3D program.
func New(c Config) *trace.Program {
	c.Params = c.Params.Norm()
	P, N := c.Procs, c.Particles
	if N < P {
		panic(fmt.Sprintf("mp3d: %d particles too few for %d processors", N, P))
	}

	space := mem.NewSpace()
	particles := mem.NewArray(space, N, particleBytes, particleBytes)
	cells := mem.NewArray(space, nCells, 32, 32) // 1 block each
	chunk := (N + P - 1) / P
	cellChunk := (nCells + P - 1) / P

	return workload.Build(fmt.Sprintf("MP3D-%d", N), P, func(p int, g *workload.Gen) {
		lo := p * chunk
		hi := lo + chunk
		if hi > N {
			hi = N
		}

		// Deterministic per-particle state; positions are uniform over
		// the whole tunnel, as in the original's initialized flow field.
		type particle struct{ x, y, z, vx, vy, vz int32 }
		ps := make([]particle, hi-lo)
		rng := sim.NewRand(c.Seed*1461303245 + uint64(p) + 1)
		pos := func(lim int32) int32 { return int32(rng.Intn(int(lim) << fpShift)) }
		vel := func() int32 { return int32(rng.Intn(1<<14)) - 1<<13 }
		for i := range ps {
			ps[i] = particle{
				x: pos(cellsX), y: pos(cellsY), z: pos(cellsZ),
				vx: vel(), vy: vel(), vz: vel(),
			}
		}
		reflect := func(v, vl int32, lim int32) (int32, int32) {
			if v < 0 {
				return -v, -vl
			}
			if v >= lim<<fpShift {
				return 2*(lim<<fpShift) - v - 1, -vl
			}
			return v, vl
		}

		for step := 0; step < c.Steps; step++ {
			for i := range ps {
				pa := &ps[i]
				gi := lo + i
				// Advance my particle (record blocks become private
				// unless a collision partner dirtied them).
				g.Read(pcPosR, particles.At(gi, offX), 1)
				g.Read(pcPosR, particles.At(gi, offY), 1)
				g.Read(pcPosR, particles.At(gi, offZ), 1)
				g.Read(pcVelR, particles.At(gi, offVX), 1)
				g.Read(pcVelR, particles.At(gi, offVY), 1)

				pa.x, pa.vx = reflect(pa.x+pa.vx, pa.vx, cellsX)
				pa.y, pa.vy = reflect(pa.y+pa.vy, pa.vy, cellsY)
				pa.z, pa.vz = reflect(pa.z+pa.vz, pa.vz, cellsZ)

				g.Write(pcPosW, particles.At(gi, offX), 1)
				g.Write(pcPosW, particles.At(gi, offY), 1)
				g.Write(pcPosW, particles.At(gi, offZ), 1)

				// Scatter into the shared space cell.
				cell := int(pa.x>>fpShift) +
					cellsX*int(pa.y>>fpShift) +
					cellsX*cellsY*int(pa.z>>fpShift)
				g.Read(pcCellR, cells.At(cell, 0), 2)
				g.Read(pcCollR, cells.At(cell, 8), 4) // collision-probability state
				g.Write(pcCellW, cells.At(cell, 0), 2)

				// Collide with the cell's previous visitor: read the
				// partner's record and dirty its velocity.
				if rng.Intn(4) == 0 {
					partner := rng.Intn(N)
					g.Read(pcPartnR, particles.At(partner, offX), 1)
					g.Read(pcPartnR, particles.At(partner, offY), 1)
					g.Read(pcPartnR, particles.At(partner, offZ), 1)
					g.Read(pcPartnR, particles.At(partner, offVX), 1)
					g.Write(pcPartnW, particles.At(partner, offVX), 2)
				}
			}
			g.Barrier()
		}

		// Final statistics pass over my slice of the cell lattice.
		cLo := p * cellChunk
		cHi := cLo + cellChunk
		if cHi > nCells {
			cHi = nCells
		}
		for cIdx := cLo; cIdx < cHi; cIdx++ {
			g.Read(pcStatR, cells.At(cIdx, 0), 3)
			g.Read(pcStatR, cells.At(cIdx, 16), 3)
			g.Write(pcStatW, cells.At(cIdx, 24), 3)
		}
	})
}

// StrideHints returns the compile-time-known strides of MP3D's
// particle-array walks, for the §6 hybrid scheme. Cell and collision
// accesses are data-dependent and carry no hint.
func StrideHints() map[trace.PC]int64 {
	return map[trace.PC]int64{
		pcPosR:  particleBytes,
		pcVelR:  particleBytes,
		pcStatR: 32,
	}
}
