package lu

import (
	"testing"

	"prefetchsim/internal/apps/workload"
	"prefetchsim/internal/mem"
	"prefetchsim/internal/trace"
)

func TestDefaultConfigPaperInput(t *testing.T) {
	c := DefaultConfig(workload.Params{})
	if c.N != 200 {
		t.Fatalf("N = %d, want the paper's 200", c.N)
	}
	if c.Procs != 16 {
		t.Fatalf("Procs = %d, want 16", c.Procs)
	}
}

func TestDefaultConfigScales(t *testing.T) {
	small := DefaultConfig(workload.Params{Scale: 1})
	large := DefaultConfig(workload.Params{Scale: 2})
	if large.N <= small.N {
		t.Fatalf("scale 2 did not grow the matrix: %d vs %d", large.N, small.N)
	}
}

func TestNewPanicsOnTinyMatrix(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("N=2 did not panic")
		}
	}()
	New(Config{Params: workload.Params{Procs: 2}, N: 2})
}

func TestStreamsBeginWithBarrier(t *testing.T) {
	p := New(Config{Params: workload.Params{Procs: 2}, N: 8})
	defer p.Stop()
	for i, s := range p.Streams {
		if op := s.Next(); op.Kind != trace.Barrier {
			t.Fatalf("stream %d starts with %v, want Barrier (iteration fence)", i, op.Kind)
		}
	}
}

// TestMatchesGoroutineOracle pins the state-machine port: the resumable
// generator must emit, op for op, the sequence the straight-line
// goroutine body produced before it (kept here as the oracle).
func TestMatchesGoroutineOracle(t *testing.T) {
	c := Config{Params: workload.Params{Procs: 3}, N: 24}
	c.Params = c.Params.Norm()
	P, N := c.Procs, c.N

	got := New(c)
	defer got.Stop()

	space := mem.NewSpace()
	rowBytes := N * workload.WordBytes
	a := mem.NewArray(space, N, rowBytes, rowBytes)
	at := func(i, j int) mem.Addr { return a.At(i, j*workload.WordBytes) }
	oracle := workload.Build("LU-oracle", P, func(p int, g *workload.Gen) {
		for k := 0; k < N; k++ {
			g.Barrier()
			if k%P == p {
				g.Read(pcPivotRead, at(k, k), 4)
				for j := k + 1; j < N; j++ {
					g.Read(pcPivotRead, at(k, j), 1)
					g.Write(pcPivotWrite, at(k, j), 3)
				}
			}
			g.Barrier()
			for i := k + 1; i < N; i++ {
				if i%P != p {
					continue
				}
				g.Read(pcLRead, at(i, k), 2)
				g.Write(pcLWrite, at(i, k), 4)
				for j := k + 1; j < N; j++ {
					g.Read(pcSrcRead, at(k, j), 2)
					g.Read(pcDstRead, at(i, j), 2)
					g.Write(pcDstWrite, at(i, j), 4)
				}
			}
		}
		g.Barrier()
	})
	defer oracle.Stop()

	for p := 0; p < P; p++ {
		for n := 0; ; n++ {
			want, op := oracle.Streams[p].Next(), got.Streams[p].Next()
			if op != want {
				t.Fatalf("stream %d op %d: got %+v, want %+v", p, n, op, want)
			}
			if op.Kind == trace.End {
				break
			}
		}
	}
}

func TestOnlyPivotOwnerDividesRow(t *testing.T) {
	p := New(Config{Params: workload.Params{Procs: 2}, N: 8})
	defer p.Stop()
	// After the first barrier, only processor 0 (owner of row 0) should
	// issue non-barrier work before the second barrier.
	working := 0
	for i, s := range p.Streams {
		s.Next() // barrier 0
		if op := s.Next(); op.Kind == trace.Read || op.Kind == trace.Write {
			working++
			_ = i
		}
	}
	if working != 1 {
		t.Fatalf("%d processors worked in the divide phase, want 1", working)
	}
}
