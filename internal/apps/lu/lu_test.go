package lu

import (
	"testing"

	"prefetchsim/internal/apps/workload"
	"prefetchsim/internal/trace"
)

func TestDefaultConfigPaperInput(t *testing.T) {
	c := DefaultConfig(workload.Params{})
	if c.N != 200 {
		t.Fatalf("N = %d, want the paper's 200", c.N)
	}
	if c.Procs != 16 {
		t.Fatalf("Procs = %d, want 16", c.Procs)
	}
}

func TestDefaultConfigScales(t *testing.T) {
	small := DefaultConfig(workload.Params{Scale: 1})
	large := DefaultConfig(workload.Params{Scale: 2})
	if large.N <= small.N {
		t.Fatalf("scale 2 did not grow the matrix: %d vs %d", large.N, small.N)
	}
}

func TestNewPanicsOnTinyMatrix(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("N=2 did not panic")
		}
	}()
	New(Config{Params: workload.Params{Procs: 2}, N: 2})
}

func TestStreamsBeginWithBarrier(t *testing.T) {
	p := New(Config{Params: workload.Params{Procs: 2}, N: 8})
	defer p.Stop()
	for i, s := range p.Streams {
		if op := s.Next(); op.Kind != trace.Barrier {
			t.Fatalf("stream %d starts with %v, want Barrier (iteration fence)", i, op.Kind)
		}
	}
}

func TestOnlyPivotOwnerDividesRow(t *testing.T) {
	p := New(Config{Params: workload.Params{Procs: 2}, N: 8})
	defer p.Stop()
	// After the first barrier, only processor 0 (owner of row 0) should
	// issue non-barrier work before the second barrier.
	working := 0
	for i, s := range p.Streams {
		s.Next() // barrier 0
		if op := s.Next(); op.Kind == trace.Read || op.Kind == trace.Write {
			working++
			_ = i
		}
	}
	if working != 1 {
		t.Fatalf("%d processors worked in the divide phase, want 1", working)
	}
}
