// Package lu re-implements the Stanford LU benchmark used in the paper:
// dense LU factorization of a 200×200 matrix (§4). The matrix is stored
// row-major with rows distributed round-robin across processors; each
// outer iteration k divides the pivot row and then lets every processor
// eliminate its own rows against it.
//
// Memory behaviour (the reason the paper picked LU): at iteration k all
// processors stream through pivot row k — freshly written by its owner —
// producing long sequential (1-block-stride) read-miss runs from a
// single load site. Table 2 reports 93% of LU's misses inside stride
// sequences with stride 1 dominant; both stride and sequential
// prefetching remove almost all of them.
package lu

import (
	"fmt"

	"prefetchsim/internal/apps/workload"
	"prefetchsim/internal/mem"
	"prefetchsim/internal/trace"
)

// Load-site PCs.
const (
	pcPivotRead trace.PC = iota + 1
	pcPivotWrite
	pcLRead
	pcLWrite
	pcSrcRead // streaming read of pivot row during elimination
	pcDstRead
	pcDstWrite
)

// Config parameterizes the workload.
type Config struct {
	workload.Params
	// N is the matrix dimension (paper input: 200×200).
	N int
}

// DefaultConfig returns the paper's input scaled by p.Scale.
func DefaultConfig(p workload.Params) Config {
	p = p.Norm()
	// Scale grows the dimension sub-linearly so larger data sets stay
	// simulable; scale 2 roughly triples the reference count.
	return Config{Params: p, N: 200 + 80*(p.Scale-1)}
}

// New builds the LU program.
func New(c Config) *trace.Program {
	if c.N < 4 {
		panic(fmt.Sprintf("lu: dimension %d too small", c.N))
	}
	c.Params = c.Params.Norm()
	P, N := c.Procs, c.N

	space := mem.NewSpace()
	rowBytes := N * workload.WordBytes
	a := mem.NewArray(space, N, rowBytes, rowBytes) // row-major matrix
	at := func(i, j int) mem.Addr { return a.At(i, j*workload.WordBytes) }

	return workload.Build(fmt.Sprintf("LU-%dx%d", N, N), P, func(p int, g *workload.Gen) {
		for k := 0; k < N; k++ {
			g.Barrier()
			if k%P == p {
				// Divide the pivot row by the pivot element.
				g.Read(pcPivotRead, at(k, k), 4)
				for j := k + 1; j < N; j++ {
					g.Read(pcPivotRead, at(k, j), 1)
					g.Write(pcPivotWrite, at(k, j), 3) // division latency
				}
			}
			g.Barrier()
			// Eliminate my rows below the pivot.
			for i := k + 1; i < N; i++ {
				if i%P != p {
					continue
				}
				g.Read(pcLRead, at(i, k), 2)
				g.Write(pcLWrite, at(i, k), 4)
				// ~12 instructions per element (two loads, multiply,
				// add, store, index arithmetic), as the compiled inner
				// loop of the original would execute.
				for j := k + 1; j < N; j++ {
					g.Read(pcSrcRead, at(k, j), 2)
					g.Read(pcDstRead, at(i, j), 2)
					g.Write(pcDstWrite, at(i, j), 4)
				}
			}
		}
		g.Barrier()
	})
}

// StrideHints returns the compile-time-known strides of LU's streaming
// load sites, for the software-assisted hybrid prefetching scheme the
// paper discusses in §6 (Bianchini and LeBlanc [2]).
func StrideHints() map[trace.PC]int64 {
	return map[trace.PC]int64{
		pcPivotRead: workload.WordBytes,
		pcSrcRead:   workload.WordBytes,
		pcDstRead:   workload.WordBytes,
	}
}
