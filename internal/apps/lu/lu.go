// Package lu re-implements the Stanford LU benchmark used in the paper:
// dense LU factorization of a 200×200 matrix (§4). The matrix is stored
// row-major with rows distributed round-robin across processors; each
// outer iteration k divides the pivot row and then lets every processor
// eliminate its own rows against it.
//
// Memory behaviour (the reason the paper picked LU): at iteration k all
// processors stream through pivot row k — freshly written by its owner —
// producing long sequential (1-block-stride) read-miss runs from a
// single load site. Table 2 reports 93% of LU's misses inside stride
// sequences with stride 1 dominant; both stride and sequential
// prefetching remove almost all of them.
package lu

import (
	"fmt"

	"prefetchsim/internal/apps/workload"
	"prefetchsim/internal/mem"
	"prefetchsim/internal/trace"
)

// Load-site PCs.
const (
	pcPivotRead trace.PC = iota + 1
	pcPivotWrite
	pcLRead
	pcLWrite
	pcSrcRead // streaming read of pivot row during elimination
	pcDstRead
	pcDstWrite
)

// Config parameterizes the workload.
type Config struct {
	workload.Params
	// N is the matrix dimension (paper input: 200×200).
	N int
}

// DefaultConfig returns the paper's input scaled by p.Scale.
func DefaultConfig(p workload.Params) Config {
	p = p.Norm()
	// Scale grows the dimension sub-linearly so larger data sets stay
	// simulable; scale 2 roughly triples the reference count.
	return Config{Params: p, N: 200 + 80*(p.Scale-1)}
}

// New builds the LU program. The generator is a resumable state machine
// (workload.BuildFunc): each outer iteration k is a fixed phase sequence
// — barrier, pivot divide (owner only), barrier, elimination — whose
// suspension state is the phase tag plus the loop indices, so no
// producer goroutine or channel transfer is involved.
func New(c Config) *trace.Program {
	if c.N < 4 {
		panic(fmt.Sprintf("lu: dimension %d too small", c.N))
	}
	c.Params = c.Params.Norm()
	P, N := c.Procs, c.N

	space := mem.NewSpace()
	rowBytes := N * workload.WordBytes
	a := mem.NewArray(space, N, rowBytes, rowBytes) // row-major matrix

	return workload.BuildFunc(fmt.Sprintf("LU-%dx%d", N, N), P,
		func(p int) workload.Filler {
			return &gen{c: c, a: a, p: p}
		})
}

// Phases of one outer iteration k.
const (
	phBarrier1  uint8 = iota // pre-divide barrier
	phPivotLead              // owner's read of the pivot element
	phPivotDiv               // owner's divide loop over row k
	phBarrier2               // post-divide barrier
	phEliminate              // elimination sweep over my rows
	phFinal                  // final barrier after the last iteration
)

// gen is one processor's generator.
type gen struct {
	c     Config
	a     mem.Array
	p     int
	k     int   // outer iteration
	phase uint8 // position within iteration k
	i     int   // elimination row
	j     int   // pivot-divide / elimination column
	// inRow records that row i's leading L-column read/write pair has
	// been emitted and the j loop is in progress or complete.
	inRow bool
}

func (s *gen) at(i, j int) mem.Addr { return s.a.At(i, j*workload.WordBytes) }

// Fill emits the same program order workload.Build produced before the
// port; each case resumes exactly where the previous buffer filled up.
func (s *gen) Fill(g *workload.FuncGen) bool {
	P, N := s.c.Procs, s.c.N
	for {
		switch s.phase {
		case phBarrier1:
			if s.k >= N {
				s.phase = phFinal
				continue
			}
			if !g.Room(1) {
				return false
			}
			g.Barrier()
			if s.k%P == s.p {
				s.phase = phPivotLead
			} else {
				s.phase = phBarrier2
			}
		case phPivotLead:
			// Divide the pivot row by the pivot element.
			if !g.Room(1) {
				return false
			}
			g.Read(pcPivotRead, s.at(s.k, s.k), 4)
			s.j = s.k + 1
			s.phase = phPivotDiv
		case phPivotDiv:
			for ; s.j < N; s.j++ {
				if !g.Room(2) {
					return false
				}
				g.Read(pcPivotRead, s.at(s.k, s.j), 1)
				g.Write(pcPivotWrite, s.at(s.k, s.j), 3) // division latency
			}
			s.phase = phBarrier2
		case phBarrier2:
			if !g.Room(1) {
				return false
			}
			g.Barrier()
			s.i = s.k + 1
			s.phase = phEliminate
		case phEliminate:
			// Eliminate my rows below the pivot.
			for ; s.i < N; s.i++ {
				if s.i%P != s.p {
					continue
				}
				if !s.inRow {
					if !g.Room(2) {
						return false
					}
					g.Read(pcLRead, s.at(s.i, s.k), 2)
					g.Write(pcLWrite, s.at(s.i, s.k), 4)
					s.inRow = true
					s.j = s.k + 1
				}
				// ~12 instructions per element (two loads, multiply,
				// add, store, index arithmetic), as the compiled inner
				// loop of the original would execute.
				for ; s.j < N; s.j++ {
					if !g.Room(3) {
						return false
					}
					g.Read(pcSrcRead, s.at(s.k, s.j), 2)
					g.Read(pcDstRead, s.at(s.i, s.j), 2)
					g.Write(pcDstWrite, s.at(s.i, s.j), 4)
				}
				s.inRow = false
			}
			s.k++
			s.phase = phBarrier1
		case phFinal:
			if !g.Room(1) {
				return false
			}
			g.Barrier()
			return true
		}
	}
}

// StrideHints returns the compile-time-known strides of LU's streaming
// load sites, for the software-assisted hybrid prefetching scheme the
// paper discusses in §6 (Bianchini and LeBlanc [2]).
func StrideHints() map[trace.PC]int64 {
	return map[trace.PC]int64{
		pcPivotRead: workload.WordBytes,
		pcSrcRead:   workload.WordBytes,
		pcDstRead:   workload.WordBytes,
	}
}
