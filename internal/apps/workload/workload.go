// Package workload provides the scaffolding shared by the six
// re-implemented applications: structured emission of shared-data
// references (per 8-byte word, so the simulated FLC filters intra-block
// locality exactly as a real one would), auto-numbered barriers, and a
// program validator used by the application test suites.
package workload

import (
	"fmt"

	"prefetchsim/internal/mem"
	"prefetchsim/internal/trace"
)

// WordBytes is the access granularity: applications issue 8-byte loads
// and stores, like the double-precision codes the paper studies.
const WordBytes = 8

// Params are the knobs every application shares.
type Params struct {
	Procs int
	// Scale multiplies the data-set size; 1 reproduces the paper's
	// inputs, 2 is used for the larger-data-set study (Table 4).
	Scale int
	Seed  uint64
}

// Norm clamps Params into a usable range.
func (p Params) Norm() Params {
	if p.Procs <= 0 {
		p.Procs = 16
	}
	if p.Scale <= 0 {
		p.Scale = 1
	}
	return p
}

// Gen wraps a trace.Emitter with structured-access helpers. One Gen
// exists per simulated processor, inside its producer goroutine.
type Gen struct {
	E       *trace.Emitter
	barrier uint64
}

// Read emits one 8-byte load.
func (g *Gen) Read(pc trace.PC, a mem.Addr, gap uint32) { g.E.Read(pc, uint64(a), gap) }

// Write emits one 8-byte store.
func (g *Gen) Write(pc trace.PC, a mem.Addr, gap uint32) { g.E.Write(pc, uint64(a), gap) }

// ReadRange reads words [base, base+bytes) in ascending order.
func (g *Gen) ReadRange(pc trace.PC, base mem.Addr, bytes int, gap uint32) {
	for off := 0; off < bytes; off += WordBytes {
		g.E.Read(pc, uint64(base)+uint64(off), gap)
	}
}

// WriteRange writes words [base, base+bytes) in ascending order.
func (g *Gen) WriteRange(pc trace.PC, base mem.Addr, bytes int, gap uint32) {
	for off := 0; off < bytes; off += WordBytes {
		g.E.Write(pc, uint64(base)+uint64(off), gap)
	}
}

// Barrier emits the next global barrier. Every processor must execute
// the same barrier sequence; episodes are auto-numbered.
func (g *Gen) Barrier() {
	g.E.Barrier(g.barrier)
	g.barrier++
}

// Lock emits an acquire of the lock variable at a.
func (g *Gen) Lock(a mem.Addr) { g.E.Acquire(uint64(a)) }

// Unlock emits the matching release.
func (g *Gen) Unlock(a mem.Addr) { g.E.Release(uint64(a)) }

// Build constructs a Program with procs streams, running body(p, gen)
// in a producer goroutine per processor. The goroutine hands the
// machine ops in recycled batchSize runs through one channel transfer
// per batch (trace.ChanStream); generators whose control flow fits a
// resumable state machine should use BuildFunc instead and skip the
// goroutine entirely.
func Build(name string, procs int, body func(p int, g *Gen)) *trace.Program {
	prog := &trace.Program{Name: name}
	for p := 0; p < procs; p++ {
		p := p
		prog.Streams = append(prog.Streams, trace.NewChanStream(func(e *trace.Emitter) {
			body(p, &Gen{E: e})
		}))
	}
	return prog
}

// FuncGen mirrors Gen for goroutine-free generators: a resumable state
// machine (Filler) emits through it into the batch buffer handed down
// by trace.FuncStream, and yields — returns from Fill — whenever Room
// reports the buffer cannot take the next indivisible run of ops.
// Barrier numbering persists across resumptions, so the FuncGen
// outlives any single Fill call.
type FuncGen struct {
	buf     []trace.Op
	n       int
	barrier uint64
}

// Room reports whether the buffer can take k more ops. A Filler checks
// Room before each indivisible emission run and yields when it fails;
// the next Fill call resumes with a fresh buffer (always at least
// batch-sized, so any run that fits an empty buffer eventually emits).
func (g *FuncGen) Room(k int) bool { return g.n+k <= len(g.buf) }

// Read emits one 8-byte load.
func (g *FuncGen) Read(pc trace.PC, a mem.Addr, gap uint32) {
	g.buf[g.n] = trace.Op{Kind: trace.Read, PC: pc, Addr: uint64(a), Gap: gap}
	g.n++
}

// Write emits one 8-byte store.
func (g *FuncGen) Write(pc trace.PC, a mem.Addr, gap uint32) {
	g.buf[g.n] = trace.Op{Kind: trace.Write, PC: pc, Addr: uint64(a), Gap: gap}
	g.n++
}

// Barrier emits the next global barrier, auto-numbered like Gen's.
func (g *FuncGen) Barrier() {
	g.buf[g.n] = trace.Op{Kind: trace.Barrier, Addr: g.barrier}
	g.n++
	g.barrier++
}

// Filler is a resumable generator: Fill emits operations through g and
// returns true when the program is complete, or false to yield because
// the buffer is full. Fill must make progress — emit at least one op —
// on every call that returns false.
type Filler interface {
	Fill(g *FuncGen) bool
}

// BuildFunc constructs a Program whose streams drive resumable state
// machines directly: no producer goroutine and no channel transfer (see
// trace.FuncStream), with op buffers recycled by the consuming machine.
// mk returns processor p's generator.
func BuildFunc(name string, procs int, mk func(p int) Filler) *trace.Program {
	prog := &trace.Program{Name: name}
	for p := 0; p < procs; p++ {
		f := mk(p)
		g := &FuncGen{}
		done := false
		prog.Streams = append(prog.Streams, trace.NewFuncStream(func(buf []trace.Op) int {
			if done {
				return 0
			}
			g.buf, g.n = buf, 0
			done = f.Fill(g)
			return g.n
		}))
	}
	return prog
}

// Validate drains a program and checks the structural invariants the
// machine relies on: every stream terminates with End, all processors
// execute identical ascending barrier sequences, and each processor's
// lock operations are balanced (release only what is held). It returns
// the per-processor operation counts. Validate consumes the program;
// build a fresh one to simulate.
func Validate(p *trace.Program, procs int) ([]int, error) {
	if len(p.Streams) != procs {
		return nil, fmt.Errorf("%s: %d streams, want %d", p.Name, len(p.Streams), procs)
	}
	counts := make([]int, procs)
	var barriers [][]uint64
	for i, s := range p.Streams {
		held := make(map[uint64]bool)
		var seq []uint64
		for n := 0; ; n++ {
			if n > 1<<28 {
				return nil, fmt.Errorf("%s: stream %d exceeds 2^28 ops; missing End?", p.Name, i)
			}
			op := s.Next()
			if op.Kind == trace.End {
				counts[i] = n
				break
			}
			switch op.Kind {
			case trace.Barrier:
				seq = append(seq, op.Addr)
			case trace.Acquire:
				if held[op.Addr] {
					return nil, fmt.Errorf("%s: stream %d re-acquires held lock %#x", p.Name, i, op.Addr)
				}
				held[op.Addr] = true
			case trace.Release:
				if !held[op.Addr] {
					return nil, fmt.Errorf("%s: stream %d releases unheld lock %#x", p.Name, i, op.Addr)
				}
				delete(held, op.Addr)
			}
		}
		if len(held) != 0 {
			return nil, fmt.Errorf("%s: stream %d ends holding %d locks", p.Name, i, len(held))
		}
		for j, b := range seq {
			if b != uint64(j) {
				return nil, fmt.Errorf("%s: stream %d barrier %d has episode %d", p.Name, i, j, b)
			}
		}
		barriers = append(barriers, seq)
	}
	for i := 1; i < procs; i++ {
		if len(barriers[i]) != len(barriers[0]) {
			return nil, fmt.Errorf("%s: stream %d has %d barriers, stream 0 has %d",
				p.Name, i, len(barriers[i]), len(barriers[0]))
		}
	}
	return counts, nil
}
