package workload

import (
	"strings"
	"testing"

	"prefetchsim/internal/mem"
	"prefetchsim/internal/trace"
)

func TestParamsNorm(t *testing.T) {
	p := Params{}.Norm()
	if p.Procs != 16 || p.Scale != 1 {
		t.Fatalf("Norm() = %+v", p)
	}
	p = Params{Procs: 4, Scale: 3}.Norm()
	if p.Procs != 4 || p.Scale != 3 {
		t.Fatalf("Norm() clobbered explicit values: %+v", p)
	}
}

func TestBuildRunsBodyPerProcessor(t *testing.T) {
	prog := Build("t", 3, func(p int, g *Gen) {
		g.Read(1, 1000+mem.Addr(p)*8, 0)
	})
	defer prog.Stop()
	if len(prog.Streams) != 3 {
		t.Fatalf("streams = %d", len(prog.Streams))
	}
	for p, s := range prog.Streams {
		op := s.Next()
		if op.Kind != trace.Read || op.Addr != uint64(1000+p*8) {
			t.Fatalf("proc %d first op = %+v", p, op)
		}
		if s.Next().Kind != trace.End {
			t.Fatalf("proc %d missing End", p)
		}
	}
}

func TestGenRanges(t *testing.T) {
	prog := Build("t", 1, func(p int, g *Gen) {
		g.ReadRange(1, 0x2000, 24, 2)
		g.WriteRange(2, 0x3000, 16, 1)
	})
	defer prog.Stop()
	s := prog.Streams[0]
	for i := 0; i < 3; i++ {
		op := s.Next()
		if op.Kind != trace.Read || op.Addr != uint64(0x2000+i*8) || op.Gap != 2 {
			t.Fatalf("read %d = %+v", i, op)
		}
	}
	for i := 0; i < 2; i++ {
		op := s.Next()
		if op.Kind != trace.Write || op.Addr != uint64(0x3000+i*8) {
			t.Fatalf("write %d = %+v", i, op)
		}
	}
}

func TestGenBarrierAutoNumbers(t *testing.T) {
	prog := Build("t", 1, func(p int, g *Gen) {
		g.Barrier()
		g.Barrier()
		g.Barrier()
	})
	defer prog.Stop()
	s := prog.Streams[0]
	for i := 0; i < 3; i++ {
		op := s.Next()
		if op.Kind != trace.Barrier || op.Addr != uint64(i) {
			t.Fatalf("barrier %d = %+v", i, op)
		}
	}
}

func TestValidateAcceptsWellFormed(t *testing.T) {
	prog := Build("good", 2, func(p int, g *Gen) {
		g.Lock(0x100)
		g.Write(1, 0x2000, 0)
		g.Unlock(0x100)
		g.Barrier()
		g.Read(2, 0x2000, 0)
	})
	counts, err := Validate(prog, 2)
	if err != nil {
		t.Fatal(err)
	}
	if counts[0] != 5 || counts[1] != 5 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestValidateRejectsUnbalancedLocks(t *testing.T) {
	cases := map[string]func(p int, g *Gen){
		"release unheld": func(p int, g *Gen) { g.Unlock(0x100) },
		"ends holding":   func(p int, g *Gen) { g.Lock(0x100) },
		"double acquire": func(p int, g *Gen) { g.Lock(0x100); g.Lock(0x100) },
	}
	for name, body := range cases {
		prog := Build(name, 1, body)
		if _, err := Validate(prog, 1); err == nil {
			t.Errorf("%s: Validate accepted it", name)
		}
	}
}

func TestValidateRejectsBarrierMismatch(t *testing.T) {
	prog := Build("skew", 2, func(p int, g *Gen) {
		if p == 0 {
			g.Barrier()
		}
	})
	if _, err := Validate(prog, 2); err == nil || !strings.Contains(err.Error(), "barrier") {
		t.Fatalf("Validate error = %v, want barrier mismatch", err)
	}
}

func TestValidateRejectsStreamCountMismatch(t *testing.T) {
	prog := Build("n", 2, func(p int, g *Gen) {})
	if _, err := Validate(prog, 3); err == nil {
		t.Fatal("Validate accepted wrong stream count")
	}
}
