package apps

import (
	"testing"

	"prefetchsim/internal/apps/workload"
	"prefetchsim/internal/trace"
)

// pointerKernels are the irregular-workload extras (not part of the
// paper's six-application evaluation, so not in Names()).
var pointerKernels = []string{"listchase", "hashjoin", "bfs"}

func TestPointerKernelsAreRegisteredExtras(t *testing.T) {
	for _, name := range pointerKernels {
		if _, err := Get(name); err != nil {
			t.Errorf("Get(%q): %v", name, err)
		}
		if _, err := StrideHints(name, tiny()); err != nil {
			t.Errorf("StrideHints(%q): %v", name, err)
		}
	}
	for _, name := range Names() {
		for _, k := range pointerKernels {
			if name == k {
				t.Errorf("%q leaked into the paper's table order", k)
			}
		}
	}
}

func TestPointerKernelsAreWellFormed(t *testing.T) {
	for _, name := range pointerKernels {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			p := tinyProgram(t, name)
			counts, err := workload.Validate(p, tiny().Procs)
			if err != nil {
				t.Fatal(err)
			}
			for i, c := range counts {
				if c == 0 {
					t.Errorf("processor %d has an empty stream", i)
				}
			}
		})
	}
}

func TestPointerKernelsAreDeterministic(t *testing.T) {
	for _, name := range pointerKernels {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			a, b := tinyProgram(t, name), tinyProgram(t, name)
			defer a.Stop()
			defer b.Stop()
			for s := range a.Streams {
				for n := 0; ; n++ {
					oa, ob := a.Streams[s].Next(), b.Streams[s].Next()
					if oa != ob {
						t.Fatalf("stream %d diverges at op %d: %+v vs %+v", s, n, oa, ob)
					}
					if oa.Kind == trace.End {
						break
					}
				}
			}
		})
	}
}

// The kernels exist because their miss streams defeat stride detection:
// the chase-dominated ones must look stride-poor to the paper's own
// miss analysis.
func TestPointerKernelsAreStridePoor(t *testing.T) {
	if testing.Short() {
		t.Skip("full-program simulation")
	}
	for _, name := range []string{"listchase", "hashjoin"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			m, r := runTiny(t, name)
			if m.Stats.TotalReadMisses() == 0 {
				t.Fatal("degenerate run: no read misses")
			}
			if frac := r.FracInSequences(); frac > 0.45 {
				t.Errorf("%s: %.0f%% of misses in stride sequences; this kernel must be stride-poor",
					name, 100*frac)
			}
		})
	}
}
