// Package bfs implements a level-synchronized breadth-first search over
// a random directed graph in CSR form, the graph-analytics face of
// pointer chasing. Each frontier vertex costs a near-random read of the
// vertex record, two sequential reads of its CSR offsets, a short
// sequential scan of its edge list, and a near-random read of each
// neighbour's visited flag — a mix of the stream every scheme in the
// zoo wants (the edge scan) with the irregular reads none of the stride
// schemes can touch. The traversal is precomputed at build time (traces
// are generated before simulation), and repeats Rounds times, modelling
// iterative graph algorithms that re-walk the same structure.
package bfs

import (
	"fmt"

	"prefetchsim/internal/apps/workload"
	"prefetchsim/internal/mem"
	"prefetchsim/internal/sim"
	"prefetchsim/internal/trace"
)

// Load-site PCs.
const (
	pcVert  trace.PC = iota + 1 // vertex record: frontier-ordered, irregular
	pcOff                       // CSR offset pair: two consecutive words
	pcEdge                      // edge-list scan: unit stride
	pcVisit                     // neighbour visited flag: near-random
)

// Config parameterizes the kernel.
type Config struct {
	workload.Params
	// Vertices and Degree (mean out-degree) size the random graph;
	// Rounds repeats the identical BFS.
	Vertices int
	Degree   int
	Rounds   int
}

// DefaultConfig sizes the graph so the visited array and vertex records
// far exceed the SLC.
func DefaultConfig(p workload.Params) Config {
	p = p.Norm()
	return Config{Params: p, Vertices: 4096 * p.Scale, Degree: 4, Rounds: 2}
}

// New builds the BFS program: the graph, the BFS tree and the
// per-level frontiers are all computed here, deterministically from the
// seed, and each processor's stream walks its round-robin share of
// every frontier with a barrier per level.
func New(c Config) *trace.Program {
	c.Params = c.Params.Norm()
	if c.Vertices < 2 || c.Degree < 1 || c.Rounds < 1 {
		panic(fmt.Sprintf("bfs: bad config %+v", c))
	}
	rng := sim.NewRand(c.Seed + 0xbf5)

	// Random directed graph in CSR form. Out-degrees are 1..2*Degree-1
	// (mean Degree), so a giant component reachable from vertex 0 exists
	// and the BFS tree has logarithmic depth.
	offs := make([]int, c.Vertices+1)
	var edges []int
	for v := 0; v < c.Vertices; v++ {
		offs[v] = len(edges)
		deg := 1 + rng.Intn(2*c.Degree-1)
		for k := 0; k < deg; k++ {
			edges = append(edges, rng.Intn(c.Vertices))
		}
	}
	offs[c.Vertices] = len(edges)

	// BFS from vertex 0: levels[l] is the sorted frontier of level l.
	levels := bfsLevels(offs, edges)

	space := mem.NewSpace()
	vrec := mem.NewArray(space, c.Vertices, workload.WordBytes, mem.BlockBytes)
	offA := mem.NewArray(space, c.Vertices+1, workload.WordBytes, workload.WordBytes)
	edgeA := mem.NewArray(space, len(edges), workload.WordBytes, workload.WordBytes)
	visit := mem.NewArray(space, c.Vertices, workload.WordBytes, workload.WordBytes)

	return workload.BuildFunc(fmt.Sprintf("BFS-%dx%d", c.Vertices, c.Degree), c.Procs,
		func(p int) workload.Filler {
			return &gen{c: c, offs: offs, edges: edges, levels: levels,
				vrec: vrec, offA: offA, edgeA: edgeA, visit: visit, proc: p, pos: p}
		})
}

// bfsLevels computes the frontier of every BFS level from vertex 0.
func bfsLevels(offs, edges []int) [][]int {
	seen := make([]bool, len(offs)-1)
	seen[0] = true
	frontier := []int{0}
	var levels [][]int
	for len(frontier) > 0 {
		levels = append(levels, frontier)
		var next []int
		for _, v := range frontier {
			for _, u := range edges[offs[v]:offs[v+1]] {
				if !seen[u] {
					seen[u] = true
					next = append(next, u)
				}
			}
		}
		frontier = next
	}
	return levels
}

// gen is one processor's resumable generator; (round, level, index
// within the level's owned share) is its suspension state — one vertex
// expansion is an indivisible emission run.
type gen struct {
	c            Config
	offs, edges  []int
	levels       [][]int
	vrec         mem.Array
	offA, edgeA  mem.Array
	visit        mem.Array
	proc         int
	round, level int
	pos          int
}

// Fill expands this processor's share (round-robin by frontier index)
// of each level: Read vrec[v]; Read offs[v], offs[v+1]; Read each edge
// word; Read visited[u] for each target — then a barrier per level.
func (s *gen) Fill(g *workload.FuncGen) bool {
	for ; s.round < s.c.Rounds; s.round++ {
		for ; s.level < len(s.levels); s.level++ {
			fr := s.levels[s.level]
			for ; s.pos < len(fr); s.pos += s.c.Procs {
				v := fr[s.pos]
				deg := s.offs[v+1] - s.offs[v]
				if !g.Room(3 + 2*deg) {
					return false
				}
				g.Read(pcVert, s.vrec.Elem(v), 2)
				g.Read(pcOff, s.offA.Elem(v), 2)
				g.Read(pcOff, s.offA.Elem(v+1), 2)
				for e := s.offs[v]; e < s.offs[v+1]; e++ {
					g.Read(pcEdge, s.edgeA.Elem(e), 2)
					g.Read(pcVisit, s.visit.Elem(s.edges[e]), 2)
				}
			}
			if !g.Room(1) {
				return false
			}
			g.Barrier()
			s.pos = s.proc
		}
		s.level = 0
	}
	return true
}

// StrideHints returns the compile-time stride table: the edge-list scan
// is the only statically strided site (the "compiler" cannot know
// frontier or neighbour order).
func StrideHints() map[trace.PC]int64 {
	return map[trace.PC]int64{pcEdge: workload.WordBytes}
}
