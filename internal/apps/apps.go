// Package apps registers the six applications the paper evaluates
// (§4): MP3D, Cholesky, Water and PTHOR from the SPLASH suite plus the
// Stanford LU and Ocean codes, all re-implemented as program-driven
// reference generators (see DESIGN.md §4 for the substitutions).
package apps

import (
	"fmt"
	"sort"

	"prefetchsim/internal/apps/bfs"
	"prefetchsim/internal/apps/cholesky"
	"prefetchsim/internal/apps/hashjoin"
	"prefetchsim/internal/apps/listchase"
	"prefetchsim/internal/apps/lu"
	"prefetchsim/internal/apps/matmul"
	"prefetchsim/internal/apps/mp3d"
	"prefetchsim/internal/apps/ocean"
	"prefetchsim/internal/apps/pthor"
	"prefetchsim/internal/apps/water"
	"prefetchsim/internal/apps/workload"
	"prefetchsim/internal/trace"
)

// Maker builds one application's program for the given parameters.
type Maker func(workload.Params) *trace.Program

var registry = map[string]Maker{
	"mp3d":     func(p workload.Params) *trace.Program { return mp3d.New(mp3d.DefaultConfig(p)) },
	"cholesky": func(p workload.Params) *trace.Program { return cholesky.New(cholesky.DefaultConfig(p)) },
	"water":    func(p workload.Params) *trace.Program { return water.New(water.DefaultConfig(p)) },
	"lu":       func(p workload.Params) *trace.Program { return lu.New(lu.DefaultConfig(p)) },
	"ocean":    func(p workload.Params) *trace.Program { return ocean.New(ocean.DefaultConfig(p)) },
	"pthor":    func(p workload.Params) *trace.Program { return pthor.New(pthor.DefaultConfig(p)) },
	// matmul is the paper's §3.1 illustrative example, registered as an
	// extra workload; it is not part of the paper's six-application
	// evaluation and therefore not in the default sweeps.
	"matmul": func(p workload.Params) *trace.Program { return matmul.New(matmul.DefaultConfig(p)) },
	// The pointer-heavy kernels below are likewise extras: irregular
	// workloads the paper's §7 conclusions call out as beyond stride and
	// sequential detection, used to evaluate the correlation-based zoo
	// schemes.
	"listchase": func(p workload.Params) *trace.Program { return listchase.New(listchase.DefaultConfig(p)) },
	"hashjoin":  func(p workload.Params) *trace.Program { return hashjoin.New(hashjoin.DefaultConfig(p)) },
	"bfs":       func(p workload.Params) *trace.Program { return bfs.New(bfs.DefaultConfig(p)) },
}

// paperOrder is the column order of the paper's tables.
var paperOrder = []string{"mp3d", "cholesky", "water", "lu", "ocean", "pthor"}

// extraOrder lists the registered workloads outside the paper's six:
// the §3.1 matmul example and the irregular pointer kernels.
var extraOrder = []string{"matmul", "listchase", "hashjoin", "bfs"}

// Names returns the application names in the paper's table order.
func Names() []string { return append([]string(nil), paperOrder...) }

// Extras returns the registered workloads outside the paper's
// six-application evaluation (runnable by name, excluded from default
// sweeps).
func Extras() []string { return append([]string(nil), extraOrder...) }

// Get returns the maker for name.
func Get(name string) (Maker, error) {
	mk, ok := registry[name]
	if !ok {
		known := append(Names(), Extras()...)
		sort.Strings(known)
		return nil, fmt.Errorf("apps: unknown application %q (known: %v)", name, known)
	}
	return mk, nil
}

// hints mirrors the registry for the §6 hybrid (software-assisted)
// scheme: the stride table the "compiler" would hand the hardware.
var hints = map[string]func(workload.Params) map[trace.PC]int64{
	"mp3d":     func(workload.Params) map[trace.PC]int64 { return mp3d.StrideHints() },
	"cholesky": func(workload.Params) map[trace.PC]int64 { return cholesky.StrideHints() },
	"water":    func(workload.Params) map[trace.PC]int64 { return water.StrideHints() },
	"lu":       func(workload.Params) map[trace.PC]int64 { return lu.StrideHints() },
	"ocean":    func(workload.Params) map[trace.PC]int64 { return ocean.StrideHints() },
	"pthor":    func(workload.Params) map[trace.PC]int64 { return pthor.StrideHints() },
	"matmul": func(p workload.Params) map[trace.PC]int64 {
		return matmul.StrideHints(matmul.DefaultConfig(p).M)
	},
	"listchase": func(workload.Params) map[trace.PC]int64 { return listchase.StrideHints() },
	"hashjoin":  func(workload.Params) map[trace.PC]int64 { return hashjoin.StrideHints() },
	"bfs":       func(workload.Params) map[trace.PC]int64 { return bfs.StrideHints() },
}

// StrideHints returns the application's compile-time stride table for
// the given parameters (may be empty, as for PTHOR).
func StrideHints(name string, p workload.Params) (map[trace.PC]int64, error) {
	h, ok := hints[name]
	if !ok {
		return nil, fmt.Errorf("apps: unknown application %q", name)
	}
	return h(p), nil
}
