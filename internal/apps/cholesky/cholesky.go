// Package cholesky re-implements the SPLASH Cholesky benchmark used in
// the paper: supernodal sparse Cholesky factorization (§4). The paper
// runs the bcsstk14 stiffness matrix; that input is not distributable
// with this reproduction, so the factorization runs on a synthetic
// banded matrix with a similar supernode profile (see DESIGN.md §4):
// supernodes of 8 columns whose heights shrink toward the right edge,
// each updating a pseudo-random set of later supernodes over
// pseudo-random row ranges.
//
// The memory behaviour the paper measures survives the substitution:
// updates stream through the source supernode's freshly-factored panel
// in short dense runs, so ~80% of misses fall in stride sequences with
// stride 1 dominant (Table 2), and both prefetching styles work well
// (Figure 6).
package cholesky

import (
	"fmt"

	"prefetchsim/internal/apps/workload"
	"prefetchsim/internal/mem"
	"prefetchsim/internal/sim"
	"prefetchsim/internal/trace"
)

// Load-site PCs.
const (
	pcFacR trace.PC = iota + 1
	pcFacW
	pcSrcR // streaming read of the source panel during an update
	pcTgtR
	pcTgtW
)

// Config parameterizes the workload.
type Config struct {
	workload.Params
	// Supernodes is the number of supernodal panels.
	Supernodes int
	// Width is the supernode width in columns.
	Width int
	// Reach is how many later supernodes each panel may update.
	Reach int
}

// DefaultConfig returns an input with bcsstk14-like structure, scaled
// by p.Scale.
func DefaultConfig(p workload.Params) Config {
	p = p.Norm()
	return Config{Params: p, Supernodes: 110 * p.Scale, Width: 8, Reach: 14}
}

// New builds the Cholesky program.
func New(c Config) *trace.Program {
	c.Params = c.Params.Norm()
	P, S := c.Procs, c.Supernodes
	if S < P {
		panic(fmt.Sprintf("cholesky: %d supernodes too few for %d processors", S, P))
	}

	// Panel heights shrink linearly toward the right edge, like a banded
	// factor; heights are in doubles per column and grow with the data
	// set (a larger matrix has taller subcolumns, which is why the
	// paper expects longer sequences in Table 4).
	scale := c.Scale
	height := func(s int) int {
		h := (220 - 180*s/S) * scale
		if h < 28 {
			h = 28
		}
		return h
	}
	space := mem.NewSpace()
	panels := make([]mem.Addr, S)
	panelBytes := make([]int, S)
	for s := 0; s < S; s++ {
		panelBytes[s] = height(s) * c.Width * workload.WordBytes
		panels[s] = space.Alloc(panelBytes[s], mem.BlockBytes)
	}

	// rangeFor returns the deterministic row range (in bytes) of source
	// panel s read while updating target t. Short dense sub-column runs
	// reproduce Table 2's ~7-reference average sequence length.
	rangeFor := func(s, t int) (off, length int) {
		r := sim.NewRand(uint64(s)*2654435761 + uint64(t)*40503 + 7)
		blocks := panelBytes[s] / mem.BlockBytes
		runBlocks := 3 + r.Intn(12*scale)
		if runBlocks > blocks {
			runBlocks = blocks
		}
		maxOff := blocks - runBlocks
		offBlocks := 0
		if maxOff > 0 {
			offBlocks = r.Intn(maxOff + 1)
		}
		return offBlocks * mem.BlockBytes, runBlocks * mem.BlockBytes
	}
	// updates returns the targets panel s modifies.
	updates := func(s int) []int {
		r := sim.NewRand(uint64(s)*97531 + 13)
		var out []int
		for t := s + 1; t < S && t <= s+c.Reach; t++ {
			if r.Intn(3) != 0 { // ~2/3 of the candidates in reach
				out = append(out, t)
			}
		}
		return out
	}

	return workload.Build(fmt.Sprintf("Cholesky-%ds", S), P, func(p int, g *workload.Gen) {
		for s := 0; s < S; s++ {
			if s%P == p {
				// Factor my panel: stream every column (read + write).
				for off := 0; off < panelBytes[s]; off += workload.WordBytes {
					g.Read(pcFacR, panels[s]+mem.Addr(off), 1)
					g.Write(pcFacW, panels[s]+mem.Addr(off), 2)
				}
			}
			g.Barrier()
			// Apply panel s to the later supernodes I own.
			for _, t := range updates(s) {
				if t%P != p {
					continue
				}
				// The update is a daxpy-like sweep: each element reads
				// the source panel and read-modify-writes the target
				// panel, with the multiply-add arithmetic in between.
				off, length := rangeFor(s, t)
				tOff, tLen := rangeFor(t, s)
				if tOff+tLen > panelBytes[t] {
					tOff, tLen = 0, panelBytes[t]
				}
				for o := 0; o < length; o += workload.WordBytes {
					g.Read(pcSrcR, panels[s]+mem.Addr(off+o), 2)
					to := tOff + o%tLen
					g.Read(pcTgtR, panels[t]+mem.Addr(to), 2)
					g.Write(pcTgtW, panels[t]+mem.Addr(to), 4)
				}
			}
			g.Barrier()
		}
	})
}

// StrideHints returns the compile-time-known strides of the
// factorization's streaming sites, for the §6 hybrid scheme.
func StrideHints() map[trace.PC]int64 {
	return map[trace.PC]int64{
		pcFacR: workload.WordBytes,
		pcSrcR: workload.WordBytes,
		pcTgtR: workload.WordBytes,
	}
}
