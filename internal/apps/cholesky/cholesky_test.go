package cholesky

import (
	"testing"

	"prefetchsim/internal/apps/workload"
	"prefetchsim/internal/trace"
)

func TestDefaultConfigScales(t *testing.T) {
	small := DefaultConfig(workload.Params{Scale: 1})
	large := DefaultConfig(workload.Params{Scale: 2})
	if large.Supernodes <= small.Supernodes {
		t.Fatal("scale 2 did not grow the factorization")
	}
	if small.Width != 8 {
		t.Fatalf("width = %d", small.Width)
	}
}

func TestNewPanicsOnTooFewSupernodes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("did not panic")
		}
	}()
	New(Config{Params: workload.Params{Procs: 16}, Supernodes: 4, Width: 4, Reach: 2})
}

func TestPanelHeightsShrink(t *testing.T) {
	p := New(Config{Params: workload.Params{Procs: 2}, Supernodes: 10, Width: 4, Reach: 3})
	defer p.Stop()
	// Factor-phase writes for supernode 0 (owner: proc 0) must cover a
	// larger panel than later supernodes'. Count pcFacW writes per
	// even-numbered supernode in proc 0's stream.
	var perSuper []int
	count := 0
	barriers := 0
	for {
		op := p.Streams[0].Next()
		if op.Kind == trace.End {
			break
		}
		switch {
		case op.Kind == trace.Barrier:
			barriers++
			if barriers%2 == 1 { // end of a factor phase
				perSuper = append(perSuper, count)
				count = 0
			}
		case op.Kind == trace.Write && op.PC == pcFacW:
			count++
		}
	}
	// Proc 0 owns supernodes 0, 2, 4...; entries for odd supernodes are 0.
	if len(perSuper) < 10 || perSuper[0] == 0 {
		t.Fatalf("factor write counts: %v", perSuper)
	}
	if last := perSuper[8]; last >= perSuper[0] {
		t.Fatalf("panel heights do not shrink: first %d, ninth %d", perSuper[0], last)
	}
}

func TestUpdatesAreDeterministicPerPair(t *testing.T) {
	mk := func() []trace.Op {
		p := New(Config{Params: workload.Params{Procs: 2}, Supernodes: 8, Width: 4, Reach: 3})
		defer p.Stop()
		var ops []trace.Op
		for {
			op := p.Streams[1].Next()
			if op.Kind == trace.End {
				break
			}
			ops = append(ops, op)
		}
		return ops
	}
	a, b := mk(), mk()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs", i)
		}
	}
}
