package matmul

import (
	"testing"

	"prefetchsim/internal/apps/workload"
	"prefetchsim/internal/mem"
	"prefetchsim/internal/trace"
)

func TestValidateAndCounts(t *testing.T) {
	c := Config{Params: workload.Params{Procs: 4}, L: 8, M: 8, N: 8}
	counts, err := workload.Validate(New(c), 4)
	if err != nil {
		t.Fatal(err)
	}
	// Each processor owns L/Procs = 2 rows; per (i,j) element: 1 C read +
	// N·2 inner reads + 1 C write.
	want := 2 * 8 * (1 + 8*2 + 1)
	for p, n := range counts {
		if n != want {
			t.Errorf("processor %d: %d ops, want %d", p, n, want)
		}
	}
}

// TestMatchesGoroutineOracle pins the state-machine port: the resumable
// generator must emit, op for op, the sequence the straight-line
// goroutine body produced before it (kept here as the oracle).
func TestMatchesGoroutineOracle(t *testing.T) {
	c := Config{Params: workload.Params{Procs: 3}, L: 9, M: 7, N: 5}
	c.Params = c.Params.Norm()
	w := workload.WordBytes

	got := New(c)
	defer got.Stop()

	space := mem.NewSpace()
	a := mem.NewArray(space, c.L, c.N*w, c.N*w)
	b := mem.NewArray(space, c.N, c.M*w, c.M*w)
	cm := mem.NewArray(space, c.L, c.M*w, c.M*w)
	oracle := workload.Build("Matmul-oracle", c.Procs, func(p int, g *workload.Gen) {
		for i := p; i < c.L; i += c.Procs {
			for j := 0; j < c.M; j++ {
				g.Read(pcCR, cm.At(i, j*w), 2)
				for k := 0; k < c.N; k++ {
					g.Read(pcA, a.At(i, k*w), 2)
					g.Read(pcB, b.At(k, j*w), 2)
				}
				g.Write(pcCW, cm.At(i, j*w), 4)
			}
		}
	})
	defer oracle.Stop()

	for p := 0; p < c.Procs; p++ {
		for n := 0; ; n++ {
			want, op := oracle.Streams[p].Next(), got.Streams[p].Next()
			if op != want {
				t.Fatalf("stream %d op %d: got %+v, want %+v", p, n, op, want)
			}
			if op.Kind == trace.End {
				break
			}
		}
	}
}

// TestResumptionIsSeamless drains the same program through NextBatch
// with deliberately tiny refills (Next-driven single-op pulls) and in
// whole batches, checking the state machine suspends and resumes at
// arbitrary buffer boundaries without perturbing the sequence.
func TestResumptionIsSeamless(t *testing.T) {
	c := Config{Params: workload.Params{Procs: 2}, L: 4, M: 5, N: 6}
	perOp, batched := New(c), New(c)
	defer perOp.Stop()
	defer batched.Stop()
	for p := range perOp.Streams {
		bs := batched.Streams[p].(trace.BatchStream)
		var batch []trace.Op
		bi := 0
		for n := 0; ; n++ {
			want := perOp.Streams[p].Next()
			for bi >= len(batch) {
				if batch != nil {
					bs.Recycle(batch)
				}
				batch = bs.NextBatch()
				bi = 0
				if batch == nil {
					batch = []trace.Op{{Kind: trace.End}}
				}
			}
			op := batch[bi]
			bi++
			if op != want {
				t.Fatalf("stream %d op %d: got %+v, want %+v", p, n, op, want)
			}
			if want.Kind == trace.End {
				break
			}
		}
	}
}
