// Package matmul implements the paper's own motivating example: the
// matrix multiplication of §3.1 Figure 2, C = A·B with A and B
// allocated row-wise. In the inner loop the reads of A form a
// one-element stride sequence while the reads of B stride by a whole
// row — the two access shapes whose interplay the paper's terminology
// section is built around. It is registered as a seventh workload so
// the stride-vs-sequential comparison can be run on the textbook case.
package matmul

import (
	"fmt"

	"prefetchsim/internal/apps/workload"
	"prefetchsim/internal/mem"
	"prefetchsim/internal/trace"
)

// Load-site PCs: the three references of the inner-loop statement.
const (
	pcA trace.PC = iota + 1 // A[i,k]: one-element stride
	pcB                     // B[k,j]: one-row stride
	pcCR
	pcCW
)

// Config parameterizes the workload: C[L,M] = A[L,N] · B[N,M].
type Config struct {
	workload.Params
	L, M, N int
}

// DefaultConfig returns a multiply sized so B's row stride (M doubles)
// is well beyond a block, scaled by p.Scale.
func DefaultConfig(p workload.Params) Config {
	p = p.Norm()
	n := 96 * p.Scale
	return Config{Params: p, L: n, M: n, N: n}
}

// New builds the matmul program. Rows of C are distributed round-robin.
func New(c Config) *trace.Program {
	c.Params = c.Params.Norm()
	if c.L < c.Procs || c.M < 4 || c.N < 4 {
		panic(fmt.Sprintf("matmul: dimensions %dx%dx%d too small for %d processors",
			c.L, c.M, c.N, c.Procs))
	}
	w := workload.WordBytes
	space := mem.NewSpace()
	a := mem.NewArray(space, c.L, c.N*w, c.N*w)
	b := mem.NewArray(space, c.N, c.M*w, c.M*w)
	cm := mem.NewArray(space, c.L, c.M*w, c.M*w)

	return workload.Build(fmt.Sprintf("Matmul-%dx%dx%d", c.L, c.M, c.N), c.Procs,
		func(p int, g *workload.Gen) {
			for i := p; i < c.L; i += c.Procs {
				for j := 0; j < c.M; j++ {
					g.Read(pcCR, cm.At(i, j*w), 2)
					for k := 0; k < c.N; k++ {
						g.Read(pcA, a.At(i, k*w), 2)
						g.Read(pcB, b.At(k, j*w), 2)
					}
					g.Write(pcCW, cm.At(i, j*w), 4)
				}
			}
		})
}

// StrideHints returns the strides the §3.1 discussion derives by
// inspection: A strides one element, B one row.
func StrideHints(m int) map[trace.PC]int64 {
	return map[trace.PC]int64{
		pcA: workload.WordBytes,
		pcB: int64(m) * workload.WordBytes,
	}
}
