// Package matmul implements the paper's own motivating example: the
// matrix multiplication of §3.1 Figure 2, C = A·B with A and B
// allocated row-wise. In the inner loop the reads of A form a
// one-element stride sequence while the reads of B stride by a whole
// row — the two access shapes whose interplay the paper's terminology
// section is built around. It is registered as a seventh workload so
// the stride-vs-sequential comparison can be run on the textbook case.
package matmul

import (
	"fmt"

	"prefetchsim/internal/apps/workload"
	"prefetchsim/internal/mem"
	"prefetchsim/internal/trace"
)

// Load-site PCs: the three references of the inner-loop statement.
const (
	pcA trace.PC = iota + 1 // A[i,k]: one-element stride
	pcB                     // B[k,j]: one-row stride
	pcCR
	pcCW
)

// Config parameterizes the workload: C[L,M] = A[L,N] · B[N,M].
type Config struct {
	workload.Params
	L, M, N int
}

// DefaultConfig returns a multiply sized so B's row stride (M doubles)
// is well beyond a block, scaled by p.Scale.
func DefaultConfig(p workload.Params) Config {
	p = p.Norm()
	n := 96 * p.Scale
	return Config{Params: p, L: n, M: n, N: n}
}

// New builds the matmul program. Rows of C are distributed round-robin.
// The generator is a resumable state machine (workload.BuildFunc): the
// triple loop nest suspends and resumes on its three indices, so no
// producer goroutine or channel transfer is involved.
func New(c Config) *trace.Program {
	c.Params = c.Params.Norm()
	if c.L < c.Procs || c.M < 4 || c.N < 4 {
		panic(fmt.Sprintf("matmul: dimensions %dx%dx%d too small for %d processors",
			c.L, c.M, c.N, c.Procs))
	}
	w := workload.WordBytes
	space := mem.NewSpace()
	a := mem.NewArray(space, c.L, c.N*w, c.N*w)
	b := mem.NewArray(space, c.N, c.M*w, c.M*w)
	cm := mem.NewArray(space, c.L, c.M*w, c.M*w)

	return workload.BuildFunc(fmt.Sprintf("Matmul-%dx%dx%d", c.L, c.M, c.N), c.Procs,
		func(p int) workload.Filler {
			return &gen{c: c, a: a, b: b, cm: cm, i: p}
		})
}

// gen is one processor's generator; the loop indices of the triple nest
// are its complete suspension state.
type gen struct {
	c        Config
	a, b, cm mem.Array
	i, j, k  int
	// inRow records that row (i,j)'s leading C read has been emitted
	// and the k loop is in progress or complete.
	inRow bool
}

// Fill emits, per element (i,j) of this processor's C rows:
// Read C[i,j]; for each k, Read A[i,k], Read B[k,j]; Write C[i,j] —
// the same program order workload.Build produced before the port.
func (s *gen) Fill(g *workload.FuncGen) bool {
	w := workload.WordBytes
	for ; s.i < s.c.L; s.i += s.c.Procs {
		for ; s.j < s.c.M; s.j++ {
			if !s.inRow {
				if !g.Room(1) {
					return false
				}
				g.Read(pcCR, s.cm.At(s.i, s.j*w), 2)
				s.inRow, s.k = true, 0
			}
			for ; s.k < s.c.N; s.k++ {
				if !g.Room(2) {
					return false
				}
				g.Read(pcA, s.a.At(s.i, s.k*w), 2)
				g.Read(pcB, s.b.At(s.k, s.j*w), 2)
			}
			if !g.Room(1) {
				return false
			}
			g.Write(pcCW, s.cm.At(s.i, s.j*w), 4)
			s.inRow = false
		}
		s.j = 0
	}
	return true
}

// StrideHints returns the strides the §3.1 discussion derives by
// inspection: A strides one element, B one row.
func StrideHints(m int) map[trace.PC]int64 {
	return map[trace.PC]int64{
		pcA: workload.WordBytes,
		pcB: int64(m) * workload.WordBytes,
	}
}
