package apps

import (
	"testing"

	"prefetchsim/internal/analysis"
	"prefetchsim/internal/apps/workload"
	"prefetchsim/internal/machine"
	"prefetchsim/internal/trace"
)

// tiny returns reduced-size parameters so the full matrix of
// application tests stays fast.
func tiny() workload.Params { return workload.Params{Procs: 4, Scale: 1, Seed: 42} }

// tinyProgram builds a scaled-down instance of the named application.
func tinyProgram(t *testing.T, name string) *trace.Program {
	t.Helper()
	switch name {
	// Shrink via the registry path but with small processor counts;
	// input sizes stay at scale 1 which is already modest for tests of
	// structure (full sizes run in the benchmarks and cmd tools).
	default:
		mk, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		return mk(tiny())
	}
}

func TestRegistryHasPaperApplications(t *testing.T) {
	want := []string{"mp3d", "cholesky", "water", "lu", "ocean", "pthor"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names()[%d] = %q, want %q (paper table order)", i, got[i], want[i])
		}
	}
	if _, err := Get("nosuch"); err == nil {
		t.Fatal("Get accepted an unknown application")
	}
}

func TestAllProgramsAreWellFormed(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			p := tinyProgram(t, name)
			counts, err := workload.Validate(p, tiny().Procs)
			if err != nil {
				t.Fatal(err)
			}
			for i, c := range counts {
				if c == 0 {
					t.Errorf("processor %d has an empty stream", i)
				}
			}
		})
	}
}

func TestProgramsAreDeterministic(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			a, b := tinyProgram(t, name), tinyProgram(t, name)
			defer a.Stop()
			defer b.Stop()
			for s := range a.Streams {
				for n := 0; ; n++ {
					oa, ob := a.Streams[s].Next(), b.Streams[s].Next()
					if oa != ob {
						t.Fatalf("stream %d diverges at op %d: %+v vs %+v", s, n, oa, ob)
					}
					if oa.Kind == trace.End {
						break
					}
					if n > 2_000_000 {
						break // enough to compare
					}
				}
			}
		})
	}
}

// runTiny simulates a reduced instance on the baseline machine and
// returns the machine stats plus the processor-0 miss analysis.
func runTiny(t *testing.T, name string) (*machine.Machine, analysis.Result) {
	t.Helper()
	p := tinyProgram(t, name)
	cfg := machine.DefaultConfig()
	cfg.Processors = tiny().Procs
	col := &analysis.Collector{Node: 0}
	cfg.MissObserver = col.Observe
	m, err := machine.New(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	p.Stop()
	return m, analysis.Analyze(col.Misses())
}

func TestAllProgramsRunToCompletion(t *testing.T) {
	if testing.Short() {
		t.Skip("full-program simulation")
	}
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			m, _ := runTiny(t, name)
			if m.Stats.TotalReads() == 0 || m.Stats.TotalReadMisses() == 0 {
				t.Fatalf("degenerate run: %v", m.Stats)
			}
		})
	}
}

// Characteristic-shape checks: the qualitative rows of Table 2 must
// hold even at reduced scale. MP3D and PTHOR are the low-stride
// applications; the other four are stride-dominated.
func TestStrideDominatedApplications(t *testing.T) {
	if testing.Short() {
		t.Skip("full-program simulation")
	}
	for name, wantDominant := range map[string]int64{
		"lu":       1,
		"cholesky": 1,
		"water":    21,
	} {
		name, wantDominant := name, wantDominant
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			_, r := runTiny(t, name)
			if frac := r.FracInSequences(); frac < 0.5 {
				t.Errorf("%s: %.0f%% of misses in stride sequences, want > 50%%", name, 100*frac)
			}
			if d := r.Dominant(); d.Stride != wantDominant {
				t.Errorf("%s: dominant stride %d (%.0f%%), want %d",
					name, d.Stride, 100*d.Share, wantDominant)
			}
		})
	}
}

func TestOceanHasLargeStrideComponent(t *testing.T) {
	if testing.Short() {
		t.Skip("full-program simulation")
	}
	_, r := runTiny(t, "ocean")
	if frac := r.FracInSequences(); frac < 0.4 {
		t.Fatalf("ocean: %.0f%% of misses in stride sequences, want > 40%%", 100*frac)
	}
	var has65 bool
	for _, s := range r.Strides() {
		if s.Stride == 65 && s.Share > 0.15 {
			has65 = true
		}
	}
	if !has65 {
		t.Fatalf("ocean: no significant 65-block stride component: %v", r.Strides())
	}
}

func TestLowStrideApplications(t *testing.T) {
	if testing.Short() {
		t.Skip("full-program simulation")
	}
	for _, name := range []string{"mp3d", "pthor"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			_, r := runTiny(t, name)
			if frac := r.FracInSequences(); frac > 0.45 {
				t.Errorf("%s: %.0f%% of misses in stride sequences; paper reports this application as stride-poor",
					name, 100*frac)
			}
		})
	}
}
