// Package network models the paper's interconnect: a single 4-by-4 mesh
// clocked at 100 MHz (1 network cycle = 1 pclock) with wormhole routing,
// 32-bit flits and a node fall-through latency of three network cycles.
//
// Contention is modelled with the standard wormhole/cut-through
// approximation: each unidirectional link keeps a free-at time; a
// message's head flit acquires each link along its XY route in turn,
// paying the fall-through latency per hop, and occupies the link for one
// cycle per flit. Deadlock freedom comes from dimension-ordered routing
// plus separate request and reply planes.
package network

import (
	"fmt"

	"prefetchsim/internal/sim"
)

// FallThrough is the per-hop node fall-through latency in network cycles
// (paper §4).
const FallThrough = 3

// Plane selects the virtual network a message travels on. Requests and
// replies use disjoint planes so request-reply dependency cycles cannot
// deadlock.
type Plane int

const (
	// ReqPlane carries requests (read miss, upgrade, invalidation...).
	ReqPlane Plane = iota
	// ReplyPlane carries replies (data, acks, grants).
	ReplyPlane
	numPlanes
)

// Message sizes in 32-bit flits. A request carries command + address
// (~96 bits with routing header); a data message adds a 32-byte block
// (8 flits).
const (
	CtrlFlits = 3
	DataFlits = CtrlFlits + 8
)

// direction indexes the four outgoing links of a router plus the
// ejection port.
const (
	dirEast = iota
	dirWest
	dirNorth
	dirSouth
	dirEject
	numDirs
)

// Mesh is the wormhole-routed interconnect.
type Mesh struct {
	cols, rows int
	// links[plane][node*numDirs+dir] is the outgoing link resource.
	links [numPlanes][]sim.Resource

	// BandwidthFactor divides link bandwidth: a factor of k makes every
	// flit occupy a link for k cycles (a narrower network). 0 = 1.
	BandwidthFactor int

	// Traffic statistics.
	Messages int64 // messages injected
	Flits    int64 // flits injected
	FlitHops int64 // flits × links traversed (network load)
}

// New returns a mesh connecting nodes routers arranged in the squarest
// exact grid (16 nodes → 4×4, matching the paper; 8 → 4×2; primes
// degenerate to a chain). The grid is always completely filled so
// dimension-ordered routes never traverse a missing router.
func New(nodes int) *Mesh {
	if nodes < 1 {
		panic("network: need at least one node")
	}
	rows := 1
	for d := 2; d*d <= nodes; d++ {
		if nodes%d == 0 {
			rows = nodes / d // keep the larger factor as columns
		}
	}
	cols := nodes / rows
	if cols < rows {
		cols, rows = rows, cols
	}
	m := &Mesh{cols: cols, rows: rows}
	for p := range m.links {
		m.links[p] = make([]sim.Resource, nodes*numDirs)
	}
	return m
}

// Hops returns the XY route length between two nodes.
func (m *Mesh) Hops(src, dst int) int {
	sx, sy := src%m.cols, src/m.cols
	dx, dy := dst%m.cols, dst/m.cols
	return abs(sx-dx) + abs(sy-dy)
}

// Send routes a message of flits flits from src to dst on plane p,
// starting at time t, and returns the time the tail flit arrives at dst.
// Contention with earlier messages on shared links delays the head. A
// message to the local node bypasses the network entirely.
func (m *Mesh) Send(p Plane, src, dst, flits int, t sim.Time) sim.Time {
	if src == dst {
		return t
	}
	m.Messages++
	m.Flits += int64(flits)

	factor := m.BandwidthFactor
	if factor < 1 {
		factor = 1
	}
	head := t
	cur := src
	hold := sim.Time(flits * factor) // one flit per network cycle at full width
	for cur != dst {
		dir, next := m.step(cur, dst)
		link := &m.links[p][cur*numDirs+dir]
		start := link.Acquire(head, hold)
		head = start + FallThrough
		cur = next
		m.FlitHops += int64(flits)
	}
	// Ejection at the destination: the tail arrives flits cycles after
	// the head falls through the final router.
	return head + hold
}

// step returns the outgoing direction and next node for XY routing from
// cur toward dst (X first, then Y).
func (m *Mesh) step(cur, dst int) (dir, next int) {
	cx, cy := cur%m.cols, cur/m.cols
	dx, dy := dst%m.cols, dst/m.cols
	switch {
	case cx < dx:
		return dirEast, cur + 1
	case cx > dx:
		return dirWest, cur - 1
	case cy < dy:
		return dirSouth, cur + m.cols
	case cy > dy:
		return dirNorth, cur - m.cols
	}
	panic(fmt.Sprintf("network: step called with cur == dst (%d)", cur))
}

// BusyTime sums link busy time across both planes, a coarse utilization
// measure used by bandwidth-limitation experiments.
func (m *Mesh) BusyTime() sim.Time {
	var total sim.Time
	for p := range m.links {
		for i := range m.links[p] {
			total += m.links[p][i].Busy
		}
	}
	return total
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
