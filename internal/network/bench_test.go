package network

import (
	"testing"

	"prefetchsim/internal/sim"
)

// BenchmarkMeshSend measures the wormhole model's per-message cost on a
// 4x4 mesh — the price every coherence transaction pays twice or more.
// The destination walk (4i+1 mod 16 is odd-offset, so never the source)
// covers all path lengths, and chaining each arrival into the next
// departure keeps link occupancy realistic. The steady state must not
// allocate.
func BenchmarkMeshSend(b *testing.B) {
	b.ReportAllocs()
	m := New(16)
	var t sim.Time
	for i := 0; i < b.N; i++ {
		t = m.Send(ReqPlane, i%16, (i*5+1)%16, DataFlits, t)
	}
}
