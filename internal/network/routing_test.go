package network

import "testing"

// Non-square node counts must still form complete grids: every XY route
// must stay within existing routers (regression: 8 nodes once built a
// holed 3×3 grid that routing could fall off).
func TestAllPairsRoutableForManyNodeCounts(t *testing.T) {
	for _, nodes := range []int{1, 2, 3, 4, 6, 8, 12, 16, 32, 64} {
		m := New(nodes)
		if m.cols*m.rows != nodes {
			t.Fatalf("%d nodes: grid %dx%d is not exact", nodes, m.cols, m.rows)
		}
		for s := 0; s < nodes; s++ {
			for d := 0; d < nodes; d++ {
				m.Send(ReqPlane, s, d, CtrlFlits, 0) // must not panic
			}
		}
	}
}

func TestSixteenNodesStillFourByFour(t *testing.T) {
	m := New(16)
	if m.cols != 4 || m.rows != 4 {
		t.Fatalf("16 nodes → %dx%d, want the paper's 4x4", m.cols, m.rows)
	}
}
