package network

import (
	"testing"
	"testing/quick"

	"prefetchsim/internal/sim"
)

func TestNewSixteenNodesIsFourByFour(t *testing.T) {
	m := New(16)
	if m.cols != 4 || m.rows != 4 {
		t.Fatalf("16 nodes → %dx%d, want 4x4", m.cols, m.rows)
	}
}

func TestHopsManhattan(t *testing.T) {
	m := New(16)
	cases := []struct{ src, dst, want int }{
		{0, 0, 0},
		{0, 1, 1},
		{0, 3, 3},
		{0, 4, 1},
		{0, 15, 6},
		{5, 10, 2},
		{3, 12, 6},
	}
	for _, c := range cases {
		if got := m.Hops(c.src, c.dst); got != c.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.src, c.dst, got, c.want)
		}
	}
}

func TestHopsSymmetric(t *testing.T) {
	m := New(16)
	f := func(a, b uint8) bool {
		s, d := int(a%16), int(b%16)
		return m.Hops(s, d) == m.Hops(d, s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSendLocalIsFree(t *testing.T) {
	m := New(16)
	if got := m.Send(ReqPlane, 7, 7, DataFlits, 100); got != 100 {
		t.Fatalf("local send arrived at %d, want 100", got)
	}
	if m.Messages != 0 || m.Flits != 0 {
		t.Fatal("local send counted as network traffic")
	}
}

func TestSendUncontendedLatency(t *testing.T) {
	m := New(16)
	// One hop: fall-through (3) + serialization (flits).
	got := m.Send(ReqPlane, 0, 1, CtrlFlits, 0)
	want := sim.Time(FallThrough + CtrlFlits)
	if got != want {
		t.Fatalf("1-hop ctrl message arrives at %d, want %d", got, want)
	}
	// Six hops, data message, fresh mesh.
	m2 := New(16)
	got = m2.Send(ReplyPlane, 0, 15, DataFlits, 0)
	want = sim.Time(6*FallThrough + DataFlits)
	if got != want {
		t.Fatalf("6-hop data message arrives at %d, want %d", got, want)
	}
}

func TestSendContentionDelays(t *testing.T) {
	m := New(16)
	a := m.Send(ReqPlane, 0, 1, DataFlits, 0)
	b := m.Send(ReqPlane, 0, 1, DataFlits, 0) // same link, same time
	if b <= a {
		t.Fatalf("second message (%d) not delayed behind first (%d)", b, a)
	}
	if b-a != DataFlits {
		t.Fatalf("contention delay = %d, want %d (serialization)", b-a, DataFlits)
	}
}

func TestPlanesAreIndependent(t *testing.T) {
	m := New(16)
	a := m.Send(ReqPlane, 0, 1, DataFlits, 0)
	b := m.Send(ReplyPlane, 0, 1, DataFlits, 0)
	if a != b {
		t.Fatalf("reply plane (%d) contended with request plane (%d)", b, a)
	}
}

func TestDisjointRoutesDoNotContend(t *testing.T) {
	m := New(16)
	a := m.Send(ReqPlane, 0, 1, DataFlits, 0)
	b := m.Send(ReqPlane, 4, 5, DataFlits, 0)
	if a != b {
		t.Fatalf("disjoint routes interfered: %d vs %d", a, b)
	}
}

func TestTrafficCounters(t *testing.T) {
	m := New(16)
	m.Send(ReqPlane, 0, 3, CtrlFlits, 0) // 3 hops
	if m.Messages != 1 || m.Flits != CtrlFlits || m.FlitHops != 3*CtrlFlits {
		t.Fatalf("counters = %d msgs, %d flits, %d flit-hops",
			m.Messages, m.Flits, m.FlitHops)
	}
	if m.BusyTime() != sim.Time(3*CtrlFlits) {
		t.Fatalf("BusyTime = %d, want %d", m.BusyTime(), 3*CtrlFlits)
	}
}

func TestSendArrivalNeverBeforeDeparture(t *testing.T) {
	m := New(16)
	f := func(srcU, dstU uint8, tU uint16) bool {
		src, dst := int(srcU%16), int(dstU%16)
		t0 := sim.Time(tU)
		arr := m.Send(ReqPlane, src, dst, CtrlFlits, t0)
		if src == dst {
			return arr == t0
		}
		minLat := sim.Time(m.Hops(src, dst)*FallThrough + CtrlFlits)
		return arr >= t0+minLat
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestXYRoutingDeterministic(t *testing.T) {
	// The same sequence of sends produces identical timings across runs.
	run := func() []sim.Time {
		m := New(16)
		var out []sim.Time
		r := sim.NewRand(42)
		for i := 0; i < 200; i++ {
			src, dst := r.Intn(16), r.Intn(16)
			out = append(out, m.Send(ReqPlane, src, dst, DataFlits, sim.Time(i)))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at message %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestNewPanicsOnZeroNodes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) did not panic")
		}
	}()
	New(0)
}
