// Package resultcache is a persistent, content-addressed result store:
// the server-side generalization of internal/runner's in-process
// singleflight cache. Values are opaque byte blobs (prefetchd stores
// the full NDJSON transcript of a job) keyed by a content address —
// the obs.RunConfig config+seed digest for single runs, a spec digest
// for whole sweeps — so a repeated identical request costs one file
// read instead of a simulation.
//
// Design:
//
//   - One object per file, under objects/<key[:2]>/<key>. Writes go to
//     a temp file in the same directory tree and are renamed into
//     place, so a crash mid-write never leaves a readable-but-partial
//     object: readers see the old state or the new one, nothing else.
//   - A size budget enforced by LRU eviction: Put evicts the
//     least-recently-used objects (never the one just written) until
//     the store fits.
//   - An index file (index.json) persisting recency across restarts.
//     The index is a hint, not the truth: Open rescans the objects
//     directory, adopts objects the index missed (mtime stands in for
//     recency) and drops index rows whose object vanished, so a stale
//     or deleted index degrades recency, never correctness.
package resultcache

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"prefetchsim/internal/obs"
)

// IndexSchema versions index.json; unknown schemas are ignored and the
// index rebuilt from the objects on disk.
const IndexSchema = 1

// Store is an open result cache. It is safe for concurrent use.
type Store struct {
	dir      string
	maxBytes int64 // <= 0 means unbounded

	mu      sync.Mutex
	entries map[string]*entry
	bytes   int64
	clock   int64 // logical recency counter (advances per touch)

	// Evictions counts objects removed by the size budget since Open —
	// an observability hook for the server's status page.
	evictions int64

	// m, when set by Instrument, mirrors the store's state into
	// exported metric instruments. nil means no metrics.
	m *Metrics
}

// Metrics is the store's instrument pack. All instruments are atomic:
// the store is concurrency-safe and its callers scrape mid-operation.
type Metrics struct {
	// Hits and Misses count Get outcomes (a key whose object file
	// cannot be read counts as a miss and an open error).
	Hits   obs.AtomicCounter
	Misses obs.AtomicCounter
	// Evictions counts objects removed by the size budget.
	Evictions obs.AtomicCounter
	// OpenErrors counts object files that existed in the entry table
	// but could not be read back.
	OpenErrors obs.AtomicCounter
	// Objects and Bytes track the stored object count and summed size.
	Objects obs.AtomicGauge
	Bytes   obs.AtomicGauge
}

// Bind registers every instrument under prefix (e.g. "resultcache").
func (m *Metrics) Bind(r *obs.Registry, prefix string) {
	r.BindAtomicCounter(prefix+".hits", &m.Hits)
	r.BindAtomicCounter(prefix+".misses", &m.Misses)
	r.BindAtomicCounter(prefix+".evictions", &m.Evictions)
	r.BindAtomicCounter(prefix+".open.errors", &m.OpenErrors)
	r.BindAtomicGauge(prefix+".objects", &m.Objects)
	r.BindAtomicGauge(prefix+".bytes", &m.Bytes)
}

// Instrument attaches m to the store: the object/byte gauges snap to
// the current state (including what Open recovered from disk) and
// every later Get/Put/eviction keeps them current. Call it once,
// before the store sees traffic.
func (s *Store) Instrument(m *Metrics) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m = m
	m.Objects.Set(int64(len(s.entries)))
	m.Bytes.Set(s.bytes)
	m.Evictions.Add(s.evictions)
}

// syncSize mirrors the entry table into the gauges. Callers hold s.mu.
func (s *Store) syncSize() {
	if s.m != nil {
		s.m.Objects.Set(int64(len(s.entries)))
		s.m.Bytes.Set(s.bytes)
	}
}

type entry struct {
	Key  string `json:"key"`
	Size int64  `json:"size"`
	// LastUsedUnixNS orders entries for eviction across restarts; within
	// a process the logical clock below breaks ties exactly.
	LastUsedUnixNS int64 `json:"last_used_unix_ns"`
	used           int64 // logical recency, process-local
}

type index struct {
	Schema  int      `json:"schema"`
	Entries []*entry `json:"entries"`
}

// Open opens (creating if needed) the store rooted at dir with the
// given size budget in bytes (maxBytes <= 0 means unbounded). Leftover
// temp files from a crashed writer are deleted; the object tree is
// rescanned and reconciled with the persisted index.
func Open(dir string, maxBytes int64) (*Store, error) {
	s := &Store{dir: dir, maxBytes: maxBytes, entries: make(map[string]*entry)}
	for _, d := range []string{dir, s.objectsDir(), s.tmpDir()} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("resultcache: %w", err)
		}
	}
	// A crash can strand temp files; none is ever a valid object.
	if tmps, err := os.ReadDir(s.tmpDir()); err == nil {
		for _, t := range tmps {
			os.Remove(filepath.Join(s.tmpDir(), t.Name()))
		}
	}

	recency := s.loadIndex()
	if err := s.scanObjects(recency); err != nil {
		return nil, err
	}
	s.evict("")
	return s, nil
}

func (s *Store) objectsDir() string { return filepath.Join(s.dir, "objects") }
func (s *Store) tmpDir() string     { return filepath.Join(s.dir, "tmp") }
func (s *Store) indexPath() string  { return filepath.Join(s.dir, "index.json") }

func (s *Store) objectPath(key string) string {
	return filepath.Join(s.objectsDir(), key[:2], key)
}

// validKey guards object paths: keys are content digests (hex), so
// anything outside [0-9a-zA-Z_-] — separators especially — is a bug.
func validKey(key string) error {
	if len(key) < 3 {
		return fmt.Errorf("resultcache: key %q too short", key)
	}
	for _, c := range key {
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == '-':
		default:
			return fmt.Errorf("resultcache: invalid key %q", key)
		}
	}
	return nil
}

// loadIndex reads the recency hints of a previous process. Any failure
// (missing file, bad JSON, unknown schema) yields an empty map — the
// scan then falls back to file mtimes.
func (s *Store) loadIndex() map[string]int64 {
	recency := make(map[string]int64)
	data, err := os.ReadFile(s.indexPath())
	if err != nil {
		return recency
	}
	var idx index
	if json.Unmarshal(data, &idx) != nil || idx.Schema != IndexSchema {
		return recency
	}
	for _, e := range idx.Entries {
		if e != nil {
			recency[e.Key] = e.LastUsedUnixNS
		}
	}
	return recency
}

// scanObjects walks the object tree and builds the entry table: the
// files are the truth, the index only supplies recency.
func (s *Store) scanObjects(recency map[string]int64) error {
	buckets, err := os.ReadDir(s.objectsDir())
	if err != nil {
		return fmt.Errorf("resultcache: %w", err)
	}
	for _, b := range buckets {
		if !b.IsDir() {
			continue
		}
		files, err := os.ReadDir(filepath.Join(s.objectsDir(), b.Name()))
		if err != nil {
			continue
		}
		for _, f := range files {
			info, err := f.Info()
			if err != nil || !info.Mode().IsRegular() {
				continue
			}
			e := &entry{Key: f.Name(), Size: info.Size()}
			if ns, ok := recency[e.Key]; ok {
				e.LastUsedUnixNS = ns
			} else {
				e.LastUsedUnixNS = info.ModTime().UnixNano()
			}
			s.entries[e.Key] = e
			s.bytes += e.Size
		}
	}
	// Seed the logical clock in persisted-recency order so in-process
	// eviction agrees with the restored ordering.
	ordered := make([]*entry, 0, len(s.entries))
	for _, e := range s.entries {
		ordered = append(ordered, e)
	}
	sort.Slice(ordered, func(i, j int) bool {
		return ordered[i].LastUsedUnixNS < ordered[j].LastUsedUnixNS
	})
	for _, e := range ordered {
		s.clock++
		e.used = s.clock
	}
	return nil
}

// Get returns the object stored under key and whether it was present,
// bumping its recency. A key whose object file cannot be read counts
// as absent (the entry is dropped), never as an error: the cache's
// contract is best-effort — a miss just means simulating again.
func (s *Store) Get(key string) ([]byte, bool) {
	if validKey(key) != nil {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if !ok {
		if s.m != nil {
			s.m.Misses.Inc()
		}
		return nil, false
	}
	data, err := os.ReadFile(s.objectPath(key))
	if err != nil {
		s.drop(e)
		s.syncSize()
		if s.m != nil {
			s.m.OpenErrors.Inc()
			s.m.Misses.Inc()
		}
		return nil, false
	}
	s.touch(e)
	if s.m != nil {
		s.m.Hits.Inc()
	}
	return data, true
}

// Contains reports whether key is present without reading the object
// or bumping recency.
func (s *Store) Contains(key string) bool {
	if validKey(key) != nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.entries[key]
	return ok
}

// Put stores data under key: write to a temp file, rename into place,
// then evict least-recently-used objects (never this one) until the
// store fits its budget. Overwriting an existing key is allowed and
// idempotent for content-addressed use.
func (s *Store) Put(key string, data []byte) error {
	if err := validKey(key); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	tmp, err := os.CreateTemp(s.tmpDir(), "put-*")
	if err != nil {
		return fmt.Errorf("resultcache: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("resultcache: %w", err)
	}
	// Sync before rename: the rename must never be visible with the
	// object's bytes still in flight, or a crash could surface a
	// corrupt committed object.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("resultcache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("resultcache: %w", err)
	}
	dst := s.objectPath(key)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("resultcache: %w", err)
	}
	if err := os.Rename(tmpName, dst); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("resultcache: %w", err)
	}

	if old, ok := s.entries[key]; ok {
		s.bytes -= old.Size
		old.Size = int64(len(data))
		s.bytes += old.Size
		s.touch(old)
	} else {
		e := &entry{Key: key, Size: int64(len(data))}
		s.entries[key] = e
		s.bytes += e.Size
		s.touch(e)
	}
	s.evict(key)
	s.syncSize()
	return nil
}

// touch marks e most recently used. Callers hold s.mu.
func (s *Store) touch(e *entry) {
	s.clock++
	e.used = s.clock
	e.LastUsedUnixNS = time.Now().UnixNano()
}

// drop removes e's bookkeeping and object file. Callers hold s.mu.
func (s *Store) drop(e *entry) {
	delete(s.entries, e.Key)
	s.bytes -= e.Size
	os.Remove(s.objectPath(e.Key))
}

// evict removes least-recently-used entries until the store fits its
// budget, sparing keep (the key just written). Callers hold s.mu.
func (s *Store) evict(keep string) {
	if s.maxBytes <= 0 {
		return
	}
	for s.bytes > s.maxBytes {
		var victim *entry
		for _, e := range s.entries {
			if e.Key == keep {
				continue
			}
			if victim == nil || e.used < victim.used {
				victim = e
			}
		}
		if victim == nil {
			return // only the spared key remains; an oversized object stays
		}
		s.drop(victim)
		s.evictions++
		if s.m != nil {
			s.m.Evictions.Inc()
		}
	}
}

// Len reports the number of stored objects.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Bytes reports the summed object size.
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Evictions reports how many objects the size budget has evicted since
// Open.
func (s *Store) Evictions() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evictions
}

// Close persists the recency index (atomically, like objects). The
// store must not be used after Close; objects remain on disk for the
// next Open.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	idx := index{Schema: IndexSchema}
	for _, e := range s.entries {
		idx.Entries = append(idx.Entries, e)
	}
	sort.Slice(idx.Entries, func(i, j int) bool {
		return idx.Entries[i].used < idx.Entries[j].used
	})
	data, err := json.MarshalIndent(&idx, "", "  ")
	if err != nil {
		return fmt.Errorf("resultcache: %w", err)
	}
	tmp, err := os.CreateTemp(s.tmpDir(), "index-*")
	if err != nil {
		return fmt.Errorf("resultcache: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("resultcache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("resultcache: %w", err)
	}
	if err := os.Rename(tmpName, s.indexPath()); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("resultcache: %w", err)
	}
	return nil
}
