package resultcache

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// key builds a distinct, valid test key.
func key(i int) string { return fmt.Sprintf("%02x-test-key-%04d", i%256, i) }

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	want := []byte("rows\nand more rows\n")
	if err := s.Put(key(1), want); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key(1))
	if !ok || !bytes.Equal(got, want) {
		t.Fatalf("Get = (%q, %v), want (%q, true)", got, ok, want)
	}
	if _, ok := s.Get(key(2)); ok {
		t.Fatal("missing key reported present")
	}
	if s.Len() != 1 || s.Bytes() != int64(len(want)) {
		t.Fatalf("Len/Bytes = %d/%d, want 1/%d", s.Len(), s.Bytes(), len(want))
	}

	// Overwrite is idempotent and re-reads the new content.
	want2 := []byte("replacement")
	if err := s.Put(key(1), want2); err != nil {
		t.Fatal(err)
	}
	got, _ = s.Get(key(1))
	if !bytes.Equal(got, want2) {
		t.Fatalf("after overwrite Get = %q, want %q", got, want2)
	}
	if s.Len() != 1 || s.Bytes() != int64(len(want2)) {
		t.Fatalf("after overwrite Len/Bytes = %d/%d", s.Len(), s.Bytes())
	}
}

func TestInvalidKeysRejected(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, k := range []string{"", "ab", "../../etc/passwd", "a/b", "a b", "key\x00"} {
		if err := s.Put(k, []byte("x")); err == nil {
			t.Errorf("Put(%q) accepted", k)
		}
		if _, ok := s.Get(k); ok {
			t.Errorf("Get(%q) hit", k)
		}
	}
}

// TestLRUEviction: the size budget evicts least-recently-used objects
// first, and Get bumps recency, changing the victim.
func TestLRUEviction(t *testing.T) {
	blob := bytes.Repeat([]byte("x"), 100)
	s, err := Open(t.TempDir(), 250) // fits two 100-byte objects
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	s.Put(key(1), blob)
	s.Put(key(2), blob)
	s.Get(key(1)) // key 1 is now more recent than key 2
	s.Put(key(3), blob)

	if _, ok := s.Get(key(2)); ok {
		t.Fatal("LRU victim (key 2) survived")
	}
	for _, k := range []string{key(1), key(3)} {
		if _, ok := s.Get(k); !ok {
			t.Fatalf("recently used %s evicted", k)
		}
	}
	if s.Evictions() != 1 {
		t.Fatalf("Evictions = %d, want 1", s.Evictions())
	}
}

// TestOversizedObjectSpared: an object larger than the whole budget
// evicts everything else but is itself kept (the caller just paid to
// compute it; throwing it away helps no one).
func TestOversizedObjectSpared(t *testing.T) {
	s, err := Open(t.TempDir(), 50)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Put(key(1), bytes.Repeat([]byte("a"), 40))
	s.Put(key(2), bytes.Repeat([]byte("b"), 200))
	if _, ok := s.Get(key(1)); ok {
		t.Fatal("small object survived the oversized put")
	}
	if _, ok := s.Get(key(2)); !ok {
		t.Fatal("oversized object was evicted with nothing to gain")
	}
}

// TestPersistAcrossReopen: objects and LRU order survive Close/Open —
// the crash-safe restart path of a long-lived server.
func TestPersistAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	blob := bytes.Repeat([]byte("y"), 100)
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.Put(key(1), blob)
	s.Put(key(2), blob)
	s.Get(key(1)) // 2 is the LRU at close time
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, 250)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 2 || s2.Bytes() != 200 {
		t.Fatalf("reopened Len/Bytes = %d/%d, want 2/200", s2.Len(), s2.Bytes())
	}
	// The persisted recency must drive the next eviction: key 2 falls.
	s2.Put(key(3), blob)
	if _, ok := s2.Get(key(2)); ok {
		t.Fatal("persisted LRU order ignored: key 2 survived")
	}
	if _, ok := s2.Get(key(1)); !ok {
		t.Fatal("persisted MRU (key 1) evicted")
	}
}

// TestCrashArtifactsIgnored: stranded temp files are cleaned up, a
// corrupt index is discarded, and orphan objects (index lost entirely)
// are adopted from the scan — a crashed writer never corrupts reads.
func TestCrashArtifactsIgnored(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte("survives crashes")
	s.Put(key(7), want)
	s.Close()

	// Simulate a crash mid-write and a torn index.
	if err := os.WriteFile(filepath.Join(dir, "tmp", "put-crash"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "index.json"), []byte(`{"schema":1,"entr`), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, ok := s2.Get(key(7))
	if !ok || !bytes.Equal(got, want) {
		t.Fatalf("object lost after crash artifacts: (%q, %v)", got, ok)
	}
	if s2.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (temp file adopted?)", s2.Len())
	}
	tmps, err := os.ReadDir(filepath.Join(dir, "tmp"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tmps) != 0 {
		t.Fatalf("stranded temp files not cleaned: %d left", len(tmps))
	}
}

// TestDisappearedObjectIsAMiss: deleting an object file behind the
// store's back degrades to a miss, not an error.
func TestDisappearedObjectIsAMiss(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	k := key(9)
	s.Put(k, []byte("volatile"))
	if err := os.Remove(filepath.Join(dir, "objects", k[:2], k)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(k); ok {
		t.Fatal("vanished object reported present")
	}
	if s.Len() != 0 {
		t.Fatalf("entry not dropped after vanish: Len = %d", s.Len())
	}
}

// TestConcurrentAccess: parallel Put/Get across overlapping keys keeps
// the bookkeeping consistent (run under -race in CI).
func TestConcurrentAccess(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 25; i++ {
				k := key(i % 10)
				if err := s.Put(k, []byte(strings.Repeat("z", i+1))); err != nil {
					t.Errorf("Put: %v", err)
				}
				s.Get(k)
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if s.Len() != 10 {
		t.Fatalf("Len = %d, want 10", s.Len())
	}
}

// TestMetricsMirrorStore: an instrumented store keeps its metric pack
// exactly in step with the bookkeeping — hits/misses per Get outcome,
// object/byte gauges after Put and eviction, open errors when an
// object file vanishes underneath the entry table.
func TestMetricsMirrorStore(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 30)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var m Metrics
	s.Instrument(&m)

	if _, ok := s.Get(key(0)); ok {
		t.Fatal("empty store reported a hit")
	}
	if m.Misses.Value() != 1 || m.Hits.Value() != 0 {
		t.Fatalf("after cold Get: hits=%d misses=%d, want 0/1", m.Hits.Value(), m.Misses.Value())
	}

	if err := s.Put(key(0), []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	if m.Objects.Value() != 1 || m.Bytes.Value() != 10 {
		t.Fatalf("after Put: objects=%d bytes=%d, want 1/10", m.Objects.Value(), m.Bytes.Value())
	}
	if _, ok := s.Get(key(0)); !ok {
		t.Fatal("stored object reported absent")
	}
	if m.Hits.Value() != 1 {
		t.Fatalf("hits = %d, want 1", m.Hits.Value())
	}

	// Three 10-byte objects against a 30-byte budget: the fourth Put
	// evicts the least recently used.
	for i := 1; i < 4; i++ {
		if err := s.Put(key(i), []byte("0123456789")); err != nil {
			t.Fatal(err)
		}
	}
	if m.Evictions.Value() != 1 || m.Objects.Value() != 3 || m.Bytes.Value() != 30 {
		t.Fatalf("after eviction: evictions=%d objects=%d bytes=%d, want 1/3/30",
			m.Evictions.Value(), m.Objects.Value(), m.Bytes.Value())
	}

	// Remove an object file behind the store's back: the Get is a miss,
	// an open error, and the gauges shrink with the dropped entry.
	k := key(3)
	if err := os.Remove(filepath.Join(dir, "objects", k[:2], k)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(k); ok {
		t.Fatal("vanished object reported present")
	}
	if m.OpenErrors.Value() != 1 {
		t.Fatalf("open errors = %d, want 1", m.OpenErrors.Value())
	}
	if m.Objects.Value() != 2 || m.Bytes.Value() != 20 {
		t.Fatalf("after vanish: objects=%d bytes=%d, want 2/20", m.Objects.Value(), m.Bytes.Value())
	}

	// A reopened, re-instrumented store restores the gauges (and the
	// prior process's evictions are not replayed into the counter).
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, 30)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	var m2 Metrics
	s2.Instrument(&m2)
	if m2.Objects.Value() != 2 || m2.Bytes.Value() != 20 || m2.Evictions.Value() != 0 {
		t.Fatalf("reopened: objects=%d bytes=%d evictions=%d, want 2/20/0",
			m2.Objects.Value(), m2.Bytes.Value(), m2.Evictions.Value())
	}
}
