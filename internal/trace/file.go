package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Trace files make workloads portable: a Program can be recorded once
// and replayed later (or elsewhere) without re-running its generator —
// the trace-driven mode of classic simulators like the CacheMire test
// bench the paper used. The format is a compact stream:
//
//	magic "PFSIM1\n"
//	name  (uvarint length + bytes)
//	procs (uvarint)
//	then, per processor, its ops in program order, each op:
//	    kind  (1 byte)
//	    and for Read/Write:   pc (uvarint), addr delta (svarint), gap (uvarint)
//	    for Acquire/Release:  addr (uvarint)
//	    for Barrier:          episode (uvarint)
//	an End op terminates each processor's stream.
//
// Address deltas are signed varints relative to the previous address in
// the same stream, which compresses strided patterns to 2–3 bytes/op.

var fileMagic = []byte("PFSIM1\n")

// WriteProgram serializes prog to w, draining its streams (the program
// cannot be simulated afterwards; rebuild or replay it).
func WriteProgram(w io.Writer, prog *Program) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(fileMagic); err != nil {
		return err
	}
	var scratch [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		_, err := bw.Write(scratch[:n])
		return err
	}
	putVarint := func(v int64) error {
		n := binary.PutVarint(scratch[:], v)
		_, err := bw.Write(scratch[:n])
		return err
	}

	if err := putUvarint(uint64(len(prog.Name))); err != nil {
		return err
	}
	if _, err := bw.WriteString(prog.Name); err != nil {
		return err
	}
	if err := putUvarint(uint64(len(prog.Streams))); err != nil {
		return err
	}

	for _, s := range prog.Streams {
		var prevAddr uint64
		for {
			op := s.Next()
			if err := bw.WriteByte(byte(op.Kind)); err != nil {
				return err
			}
			switch op.Kind {
			case Read, Write:
				if err := putUvarint(uint64(op.PC)); err != nil {
					return err
				}
				if err := putVarint(int64(op.Addr) - int64(prevAddr)); err != nil {
					return err
				}
				prevAddr = op.Addr
				if err := putUvarint(uint64(op.Gap)); err != nil {
					return err
				}
			case Acquire, Release, Barrier:
				if err := putUvarint(op.Addr); err != nil {
					return err
				}
			case End:
				// stream terminator; no payload
			default:
				return fmt.Errorf("trace: cannot serialize op kind %v", op.Kind)
			}
			if op.Kind == End {
				break
			}
		}
	}
	return bw.Flush()
}

// ReadProgram deserializes a program written by WriteProgram. Streams
// are fully materialized in memory.
func ReadProgram(r io.Reader) (*Program, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(fileMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != string(fileMagic) {
		return nil, fmt.Errorf("trace: not a prefetchsim trace file")
	}

	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading name length: %w", err)
	}
	if nameLen > 1<<16 {
		return nil, fmt.Errorf("trace: unreasonable name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("trace: reading name: %w", err)
	}
	procs, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading processor count: %w", err)
	}
	if procs == 0 || procs > 1024 {
		return nil, fmt.Errorf("trace: unreasonable processor count %d", procs)
	}

	prog := &Program{Name: string(name)}
	for p := uint64(0); p < procs; p++ {
		var ops []Op
		var prevAddr uint64
		for {
			kindByte, err := br.ReadByte()
			if err != nil {
				return nil, fmt.Errorf("trace: stream %d truncated: %w", p, err)
			}
			kind := Kind(kindByte)
			if kind == End {
				break
			}
			op := Op{Kind: kind}
			switch kind {
			case Read, Write:
				pc, err := binary.ReadUvarint(br)
				if err != nil {
					return nil, fmt.Errorf("trace: stream %d pc: %w", p, err)
				}
				delta, err := binary.ReadVarint(br)
				if err != nil {
					return nil, fmt.Errorf("trace: stream %d addr: %w", p, err)
				}
				gap, err := binary.ReadUvarint(br)
				if err != nil {
					return nil, fmt.Errorf("trace: stream %d gap: %w", p, err)
				}
				op.PC = PC(pc)
				op.Addr = uint64(int64(prevAddr) + delta)
				prevAddr = op.Addr
				op.Gap = uint32(gap)
			case Acquire, Release, Barrier:
				addr, err := binary.ReadUvarint(br)
				if err != nil {
					return nil, fmt.Errorf("trace: stream %d sync addr: %w", p, err)
				}
				op.Addr = addr
			default:
				return nil, fmt.Errorf("trace: stream %d has unknown op kind %d", p, kindByte)
			}
			ops = append(ops, op)
		}
		prog.Streams = append(prog.Streams, NewSliceStream(ops))
	}
	return prog, nil
}
