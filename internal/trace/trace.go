// Package trace defines the memory-reference stream an application
// presents to the architecture simulator: one program-ordered sequence of
// operations per processor.
//
// The paper drives its simulator with SPARC binaries on the CacheMire
// test bench; instructions and private data are assumed to always hit in
// the first-level cache. We mirror that: applications emit only
// shared-data references, each carrying a synthetic load-site PC (needed
// by I-detection stride prefetching) and a Gap of think pclocks covering
// the instructions and private accesses executed since the previous
// shared reference.
package trace

// Kind classifies an operation.
type Kind uint8

const (
	// Read is a shared-data load. Blocking: the processor stalls until
	// the value is available (paper §2, blocking-load processor).
	Read Kind = iota
	// Write is a shared-data store. Buffered in the FLWB/SLWB under
	// release consistency; the processor does not stall unless a write
	// buffer is full.
	Write
	// Acquire obtains the queue-based lock at Addr's home memory. The
	// processor stalls until the lock is granted.
	Acquire
	// Release frees the lock at Addr. Under release consistency it first
	// waits for the processor's outstanding writes to complete.
	Release
	// Barrier blocks until all processors have issued a Barrier with the
	// same sequence number (the Addr field carries the barrier episode).
	Barrier
	// End marks the end of the processor's program.
	End
)

var kindNames = [...]string{"Read", "Write", "Acquire", "Release", "Barrier", "End"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "Kind(?)"
}

// PC identifies a static load/store site. Distinct program loops use
// distinct PCs; the I-detection scheme keys its Reference Prediction
// Table on this value.
type PC uint32

// Op is one operation in a processor's program-ordered stream.
type Op struct {
	Kind Kind
	PC   PC
	Addr uint64
	// Gap is local compute time, in pclocks, spent before this
	// operation issues (instructions + private references, which the
	// paper treats as always hitting in the FLC).
	Gap uint32
}

// Stream delivers one processor's operations in program order.
type Stream interface {
	// Next returns the next operation. After an End op has been
	// returned, Next keeps returning End.
	Next() Op
}

// BatchStream is the batched extension of Stream: instead of one
// interface call per operation, the consumer takes ownership of whole
// runs of ops at a time. The machine's processor loop iterates a batch
// as a plain local slice, which is what makes its fused fast path
// possible (see internal/machine/processor.go).
//
// Contract: NextBatch never returns an empty non-nil batch; it returns
// nil once the stream is exhausted. A batch may carry an explicit final
// End op (producer-backed streams) or the stream may simply stop
// (replay streams) — consumers must treat nil as End. A consumer that
// mixes Next and NextBatch sees every op exactly once, in program
// order, provided it consumes each batch fully before pulling again.
type BatchStream interface {
	Stream
	// NextBatch returns the next run of operations in program order, or
	// nil when the stream is exhausted. The caller owns the slice until
	// it hands it back through Recycle.
	NextBatch() []Op
	// Recycle returns a fully consumed batch to the stream's free list
	// so its memory can back a future batch. The caller must not touch
	// the slice afterwards. Recycling is optional — streams without a
	// free list treat it as a no-op — but it is what keeps a
	// multi-million-reference program at a handful of live buffers.
	Recycle([]Op)
}

// SliceStream replays a fixed slice of operations; the final op need not
// be End (one is synthesized). Used heavily in tests.
type SliceStream struct {
	ops []Op
	i   int
}

// NewSliceStream returns a Stream over ops.
func NewSliceStream(ops []Op) *SliceStream { return &SliceStream{ops: ops} }

// Next implements Stream.
func (s *SliceStream) Next() Op {
	if s.i >= len(s.ops) {
		return Op{Kind: End}
	}
	op := s.ops[s.i]
	s.i++
	return op
}

// NextBatch implements BatchStream: the whole remaining slice in one
// handoff (no End op; the consumer synthesizes it on nil).
func (s *SliceStream) NextBatch() []Op {
	if s.i >= len(s.ops) {
		return nil
	}
	b := s.ops[s.i:]
	s.i = len(s.ops)
	return b
}

// Recycle implements BatchStream. The batch aliases the caller-provided
// op slice, which replay must not overwrite, so nothing is reused.
func (s *SliceStream) Recycle([]Op) {}

// batchSize is the number of ops per batch: one channel transfer in
// ChanStream, one generator resumption in FuncStream. Large enough to
// amortize the per-batch handoff to well under a nanosecond per op,
// small enough to keep per-processor buffering tiny.
const batchSize = 1024

// chanDepth bounds the batches buffered between producer and consumer.
const chanDepth = 4

// ChanStream adapts a producer goroutine to the stream interfaces. The
// producer writes ops through an Emitter; the consumer pulls them with
// Next or, preferably, whole batches at a time with NextBatch — one
// channel transfer per batchSize ops. Production is lazy and bounded (a
// few batches in flight), so a multi-million-reference program never
// materializes in memory, and batches Recycled by the consumer flow
// back to the producer on a free list, so the steady state circulates a
// fixed set of op buffers instead of allocating one per batch.
type ChanStream struct {
	ch   chan []Op
	free chan []Op
	quit chan struct{}
	cur  []Op
	i    int
	done bool
}

// Emitter is the producer side of a ChanStream.
type Emitter struct {
	ch   chan []Op
	free chan []Op
	quit chan struct{}
	buf  []Op
}

// NewChanStream starts produce in its own goroutine and returns the
// consuming stream. produce must call Emitter methods only, and returns
// when the program is complete (End is appended automatically) or when
// emission fails because the consumer called Stop.
func NewChanStream(produce func(*Emitter)) *ChanStream {
	s := &ChanStream{
		ch: make(chan []Op, chanDepth),
		// One slot per in-flight batch plus the producer's and the
		// consumer's working buffers; Recycle never blocks on it.
		free: make(chan []Op, chanDepth+2),
		quit: make(chan struct{}),
	}
	e := &Emitter{ch: s.ch, free: s.free, quit: s.quit, buf: make([]Op, 0, batchSize)}
	go func() {
		defer close(s.ch)
		defer func() {
			// The only panic Emitter raises is emitStopped, used to
			// unwind the producer promptly after Stop. Anything else is
			// a real bug and must propagate.
			if r := recover(); r != nil && r != emitStopped {
				panic(r)
			}
		}()
		produce(e)
		e.Emit(Op{Kind: End})
		e.flush()
	}()
	return s
}

// emitStopped is the sentinel panic used to unwind a producer once the
// consumer has stopped listening.
var emitStopped = new(int)

// Emit appends one op to the stream. If the consumer has called Stop,
// Emit unwinds the producer goroutine.
func (e *Emitter) Emit(op Op) {
	e.buf = append(e.buf, op)
	if len(e.buf) == batchSize {
		e.flush()
	}
}

// Read emits a shared load of addr from load site pc after gap pclocks
// of local compute.
func (e *Emitter) Read(pc PC, addr uint64, gap uint32) {
	e.Emit(Op{Kind: Read, PC: pc, Addr: addr, Gap: gap})
}

// Write emits a shared store.
func (e *Emitter) Write(pc PC, addr uint64, gap uint32) {
	e.Emit(Op{Kind: Write, PC: pc, Addr: addr, Gap: gap})
}

// Acquire emits a lock acquire of the lock at addr.
func (e *Emitter) Acquire(addr uint64) { e.Emit(Op{Kind: Acquire, Addr: addr}) }

// Release emits a lock release of the lock at addr.
func (e *Emitter) Release(addr uint64) { e.Emit(Op{Kind: Release, Addr: addr}) }

// Barrier emits a global barrier; episode numbers must increase by one
// per barrier and match across processors.
func (e *Emitter) Barrier(episode uint64) { e.Emit(Op{Kind: Barrier, Addr: episode}) }

func (e *Emitter) flush() {
	if len(e.buf) == 0 {
		return
	}
	batch := e.buf
	select {
	case e.ch <- batch:
	case <-e.quit:
		panic(emitStopped)
	}
	// Refill from the free list — a batch the consumer has fully
	// drained and recycled — falling back to a fresh allocation only
	// while the pipeline is still priming (or when the consumer does
	// not recycle, as the per-op legacy path does not).
	select {
	case b := <-e.free:
		e.buf = b
	default:
		e.buf = make([]Op, 0, batchSize)
	}
}

// Next implements Stream.
func (s *ChanStream) Next() Op {
	for s.i >= len(s.cur) {
		if s.done {
			return Op{Kind: End}
		}
		batch, ok := <-s.ch
		if !ok {
			s.done = true
			return Op{Kind: End}
		}
		s.cur, s.i = batch, 0
	}
	op := s.cur[s.i]
	s.i++
	if op.Kind == End {
		s.done = true
	}
	return op
}

// NextBatch implements BatchStream: one channel receive hands the
// consumer a whole producer batch. Any ops already buffered for Next
// are delivered first, so mixing the two interfaces preserves program
// order.
func (s *ChanStream) NextBatch() []Op {
	if s.i < len(s.cur) {
		b := s.cur[s.i:]
		s.cur, s.i = nil, 0
		return b
	}
	if s.done {
		return nil
	}
	batch, ok := <-s.ch
	if !ok {
		s.done = true
		return nil
	}
	return batch
}

// Recycle implements BatchStream, routing the drained batch back to the
// producer goroutine. The channel handoff is the synchronization: the
// producer only writes into the buffer after receiving it, so the
// consumer must genuinely be done with it. Partial views (a batch
// already nibbled by Next) are dropped — only full-capacity buffers are
// worth reusing.
func (s *ChanStream) Recycle(batch []Op) {
	if cap(batch) < batchSize {
		return
	}
	select {
	case s.free <- batch[:0]:
	default: // free list full; let the GC have it
	}
}

// Stop releases the producer goroutine without draining the stream. Safe
// to call multiple times and after the stream has ended.
func (s *ChanStream) Stop() {
	select {
	case <-s.quit:
	default:
		close(s.quit)
	}
	// Drain to unblock a producer mid-send.
	for range s.ch {
	}
	s.done = true
}

// FuncStream adapts a resumable generator — a state machine whose fill
// function writes the next run of operations into a caller-provided
// buffer and returns how many it wrote (0 = program complete) — to the
// stream interfaces. Unlike ChanStream there is no producer goroutine
// and no channel transfer at all: the consumer's refill calls drive the
// generator directly, and recycled buffers are handed straight back to
// it. Generators whose control flow can be captured in a few loop
// counters (see internal/apps/matmul) use this form.
type FuncStream struct {
	fill func([]Op) int
	free [][]Op
	cur  []Op
	i    int
	done bool
}

// NewFuncStream returns a stream over the generator fill.
func NewFuncStream(fill func([]Op) int) *FuncStream {
	return &FuncStream{fill: fill}
}

// fetch produces the next batch by running the generator into a free
// (or fresh) buffer.
func (s *FuncStream) fetch() []Op {
	if s.done {
		return nil
	}
	var buf []Op
	if n := len(s.free); n > 0 {
		buf, s.free = s.free[n-1], s.free[:n-1]
	} else {
		buf = make([]Op, batchSize)
	}
	n := s.fill(buf)
	if n == 0 {
		s.done = true
		return nil
	}
	return buf[:n]
}

// NextBatch implements BatchStream.
func (s *FuncStream) NextBatch() []Op {
	if s.i < len(s.cur) {
		b := s.cur[s.i:]
		s.cur, s.i = nil, 0
		return b
	}
	return s.fetch()
}

// Recycle implements BatchStream: the buffer backs a future fill call.
func (s *FuncStream) Recycle(batch []Op) {
	if cap(batch) >= batchSize {
		s.free = append(s.free, batch[:batchSize:batchSize])
	}
}

// Next implements Stream.
func (s *FuncStream) Next() Op {
	for s.i >= len(s.cur) {
		if old := s.cur; old != nil {
			s.cur = nil
			s.Recycle(old)
		}
		batch := s.fetch()
		if batch == nil {
			return Op{Kind: End}
		}
		s.cur, s.i = batch, 0
	}
	op := s.cur[s.i]
	s.i++
	return op
}

// PerOp wraps a stream so that only the per-op Stream interface is
// visible, forcing consumers that would otherwise batch onto the legacy
// one-interface-call-per-op path. It exists for differential testing:
// the machine's batched fast path must be byte-identical to this
// reference path (see the repo-level equivalence test).
type PerOp struct{ S Stream }

// Next implements Stream.
func (p PerOp) Next() Op { return p.S.Next() }

// Stop forwards to the underlying stream's Stop, if it has one.
func (p PerOp) Stop() {
	if st, ok := p.S.(interface{ Stop() }); ok {
		st.Stop()
	}
}

// Program is a complete multiprocessor workload: one stream per
// processor plus a human-readable name.
type Program struct {
	Name    string
	Streams []Stream
}

// Stop releases any producer goroutines behind the program's streams.
func (p *Program) Stop() {
	for _, s := range p.Streams {
		if st, ok := s.(interface{ Stop() }); ok {
			st.Stop()
		}
	}
}
