// Package trace defines the memory-reference stream an application
// presents to the architecture simulator: one program-ordered sequence of
// operations per processor.
//
// The paper drives its simulator with SPARC binaries on the CacheMire
// test bench; instructions and private data are assumed to always hit in
// the first-level cache. We mirror that: applications emit only
// shared-data references, each carrying a synthetic load-site PC (needed
// by I-detection stride prefetching) and a Gap of think pclocks covering
// the instructions and private accesses executed since the previous
// shared reference.
package trace

// Kind classifies an operation.
type Kind uint8

const (
	// Read is a shared-data load. Blocking: the processor stalls until
	// the value is available (paper §2, blocking-load processor).
	Read Kind = iota
	// Write is a shared-data store. Buffered in the FLWB/SLWB under
	// release consistency; the processor does not stall unless a write
	// buffer is full.
	Write
	// Acquire obtains the queue-based lock at Addr's home memory. The
	// processor stalls until the lock is granted.
	Acquire
	// Release frees the lock at Addr. Under release consistency it first
	// waits for the processor's outstanding writes to complete.
	Release
	// Barrier blocks until all processors have issued a Barrier with the
	// same sequence number (the Addr field carries the barrier episode).
	Barrier
	// End marks the end of the processor's program.
	End
)

var kindNames = [...]string{"Read", "Write", "Acquire", "Release", "Barrier", "End"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "Kind(?)"
}

// PC identifies a static load/store site. Distinct program loops use
// distinct PCs; the I-detection scheme keys its Reference Prediction
// Table on this value.
type PC uint32

// Op is one operation in a processor's program-ordered stream.
type Op struct {
	Kind Kind
	PC   PC
	Addr uint64
	// Gap is local compute time, in pclocks, spent before this
	// operation issues (instructions + private references, which the
	// paper treats as always hitting in the FLC).
	Gap uint32
}

// Stream delivers one processor's operations in program order.
type Stream interface {
	// Next returns the next operation. After an End op has been
	// returned, Next keeps returning End.
	Next() Op
}

// SliceStream replays a fixed slice of operations; the final op need not
// be End (one is synthesized). Used heavily in tests.
type SliceStream struct {
	ops []Op
	i   int
}

// NewSliceStream returns a Stream over ops.
func NewSliceStream(ops []Op) *SliceStream { return &SliceStream{ops: ops} }

// Next implements Stream.
func (s *SliceStream) Next() Op {
	if s.i >= len(s.ops) {
		return Op{Kind: End}
	}
	op := s.ops[s.i]
	s.i++
	return op
}

// batchSize is the number of ops moved per channel transfer in ChanStream.
// Large enough to amortize channel overhead to well under a nanosecond
// per op, small enough to keep per-processor buffering tiny.
const batchSize = 1024

// ChanStream adapts a producer goroutine to the Stream interface. The
// producer writes ops through an Emitter; the consumer pulls them with
// Next. Production is lazy and bounded (a few batches in flight), so a
// multi-million-reference program never materializes in memory.
type ChanStream struct {
	ch   chan []Op
	quit chan struct{}
	cur  []Op
	i    int
	done bool
}

// Emitter is the producer side of a ChanStream.
type Emitter struct {
	ch   chan []Op
	quit chan struct{}
	buf  []Op
}

// NewChanStream starts produce in its own goroutine and returns the
// consuming stream. produce must call Emitter methods only, and returns
// when the program is complete (End is appended automatically) or when
// emission fails because the consumer called Stop.
func NewChanStream(produce func(*Emitter)) *ChanStream {
	s := &ChanStream{
		ch:   make(chan []Op, 4),
		quit: make(chan struct{}),
	}
	e := &Emitter{ch: s.ch, quit: s.quit, buf: make([]Op, 0, batchSize)}
	go func() {
		defer close(s.ch)
		defer func() {
			// The only panic Emitter raises is emitStopped, used to
			// unwind the producer promptly after Stop. Anything else is
			// a real bug and must propagate.
			if r := recover(); r != nil && r != emitStopped {
				panic(r)
			}
		}()
		produce(e)
		e.Emit(Op{Kind: End})
		e.flush()
	}()
	return s
}

// emitStopped is the sentinel panic used to unwind a producer once the
// consumer has stopped listening.
var emitStopped = new(int)

// Emit appends one op to the stream. If the consumer has called Stop,
// Emit unwinds the producer goroutine.
func (e *Emitter) Emit(op Op) {
	e.buf = append(e.buf, op)
	if len(e.buf) == batchSize {
		e.flush()
	}
}

// Read emits a shared load of addr from load site pc after gap pclocks
// of local compute.
func (e *Emitter) Read(pc PC, addr uint64, gap uint32) {
	e.Emit(Op{Kind: Read, PC: pc, Addr: addr, Gap: gap})
}

// Write emits a shared store.
func (e *Emitter) Write(pc PC, addr uint64, gap uint32) {
	e.Emit(Op{Kind: Write, PC: pc, Addr: addr, Gap: gap})
}

// Acquire emits a lock acquire of the lock at addr.
func (e *Emitter) Acquire(addr uint64) { e.Emit(Op{Kind: Acquire, Addr: addr}) }

// Release emits a lock release of the lock at addr.
func (e *Emitter) Release(addr uint64) { e.Emit(Op{Kind: Release, Addr: addr}) }

// Barrier emits a global barrier; episode numbers must increase by one
// per barrier and match across processors.
func (e *Emitter) Barrier(episode uint64) { e.Emit(Op{Kind: Barrier, Addr: episode}) }

func (e *Emitter) flush() {
	if len(e.buf) == 0 {
		return
	}
	batch := e.buf
	e.buf = make([]Op, 0, batchSize)
	select {
	case e.ch <- batch:
	case <-e.quit:
		panic(emitStopped)
	}
}

// Next implements Stream.
func (s *ChanStream) Next() Op {
	for s.i >= len(s.cur) {
		if s.done {
			return Op{Kind: End}
		}
		batch, ok := <-s.ch
		if !ok {
			s.done = true
			return Op{Kind: End}
		}
		s.cur, s.i = batch, 0
	}
	op := s.cur[s.i]
	s.i++
	if op.Kind == End {
		s.done = true
	}
	return op
}

// Stop releases the producer goroutine without draining the stream. Safe
// to call multiple times and after the stream has ended.
func (s *ChanStream) Stop() {
	select {
	case <-s.quit:
	default:
		close(s.quit)
	}
	// Drain to unblock a producer mid-send.
	for range s.ch {
	}
	s.done = true
}

// Program is a complete multiprocessor workload: one stream per
// processor plus a human-readable name.
type Program struct {
	Name    string
	Streams []Stream
}

// Stop releases any producer goroutines behind the program's streams.
func (p *Program) Stop() {
	for _, s := range p.Streams {
		if cs, ok := s.(*ChanStream); ok {
			cs.Stop()
		}
	}
}
