package trace

import (
	"testing"
)

func TestKindString(t *testing.T) {
	if Read.String() != "Read" || End.String() != "End" {
		t.Fatal("Kind.String broken")
	}
	if Kind(200).String() != "Kind(?)" {
		t.Fatal("out-of-range Kind.String broken")
	}
}

func TestSliceStreamReplaysInOrder(t *testing.T) {
	ops := []Op{
		{Kind: Read, Addr: 10},
		{Kind: Write, Addr: 20},
		{Kind: Barrier, Addr: 0},
	}
	s := NewSliceStream(ops)
	for i, want := range ops {
		if got := s.Next(); got != want {
			t.Fatalf("op %d = %+v, want %+v", i, got, want)
		}
	}
	if got := s.Next(); got.Kind != End {
		t.Fatalf("exhausted stream returned %v, want End", got.Kind)
	}
	if got := s.Next(); got.Kind != End {
		t.Fatal("End is not sticky")
	}
}

func TestChanStreamDeliversAllOpsInOrder(t *testing.T) {
	const n = 10 * batchSize / 3 // force several partial batches
	s := NewChanStream(func(e *Emitter) {
		for i := 0; i < n; i++ {
			e.Read(PC(i%7), uint64(i*32), uint32(i%3))
		}
	})
	for i := 0; i < n; i++ {
		op := s.Next()
		if op.Kind != Read || op.Addr != uint64(i*32) || op.PC != PC(i%7) {
			t.Fatalf("op %d = %+v", i, op)
		}
	}
	if op := s.Next(); op.Kind != End {
		t.Fatalf("expected synthesized End, got %v", op.Kind)
	}
	if op := s.Next(); op.Kind != End {
		t.Fatal("End is not sticky")
	}
}

func TestChanStreamEmitterHelpers(t *testing.T) {
	s := NewChanStream(func(e *Emitter) {
		e.Read(1, 100, 5)
		e.Write(2, 200, 0)
		e.Acquire(300)
		e.Release(300)
		e.Barrier(0)
	})
	defer s.Stop()
	wantKinds := []Kind{Read, Write, Acquire, Release, Barrier, End}
	for i, k := range wantKinds {
		if op := s.Next(); op.Kind != k {
			t.Fatalf("op %d kind = %v, want %v", i, op.Kind, k)
		}
	}
}

func TestChanStreamStopUnblocksProducer(t *testing.T) {
	started := make(chan struct{})
	returned := make(chan struct{})
	s := NewChanStream(func(e *Emitter) {
		defer close(returned)
		close(started)
		for i := 0; ; i++ {
			e.Read(0, uint64(i), 0) // will block once buffers fill
		}
	})
	<-started
	s.Stop()
	<-returned // must not hang
	if op := s.Next(); op.Kind != End {
		t.Fatalf("after Stop, Next = %v, want End", op.Kind)
	}
}

func TestChanStreamStopIdempotent(t *testing.T) {
	s := NewChanStream(func(e *Emitter) { e.Read(0, 0, 0) })
	s.Stop()
	s.Stop() // must not panic or hang
}

func TestChanStreamProducerPanicPropagates(t *testing.T) {
	defer func() {
		// The panic happens on the producer goroutine, which would crash
		// the process; we can't recover it here. Instead verify the
		// sentinel filter by exercising the normal path only.
	}()
	s := NewChanStream(func(e *Emitter) { e.Read(0, 0, 0) })
	if op := s.Next(); op.Kind != Read {
		t.Fatalf("got %v", op.Kind)
	}
	if op := s.Next(); op.Kind != End {
		t.Fatalf("got %v", op.Kind)
	}
}

func TestProgramStopReleasesStreams(t *testing.T) {
	mk := func() Stream {
		return NewChanStream(func(e *Emitter) {
			for i := 0; ; i++ {
				e.Read(0, uint64(i), 0)
			}
		})
	}
	p := &Program{Name: "test", Streams: []Stream{mk(), mk(), NewSliceStream(nil)}}
	p.Stop() // must not hang; SliceStream must be tolerated
}

func TestChanStreamLargeVolume(t *testing.T) {
	const n = 200_000
	s := NewChanStream(func(e *Emitter) {
		for i := 0; i < n; i++ {
			e.Emit(Op{Kind: Write, Addr: uint64(i)})
		}
	})
	count := 0
	for {
		op := s.Next()
		if op.Kind == End {
			break
		}
		if op.Addr != uint64(count) {
			t.Fatalf("op %d has addr %d", count, op.Addr)
		}
		count++
	}
	if count != n {
		t.Fatalf("delivered %d ops, want %d", count, n)
	}
}
