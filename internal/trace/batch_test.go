package trace

// Tests for the BatchStream contract (PR 3): batch delivery order, the
// nil-is-End convention, Next/NextBatch mixing, and — the part a unit
// test must pin because no correctness symptom would reveal it — that
// Recycle actually returns buffers to the producer for reuse instead of
// leaking one allocation per batch.

import (
	"testing"

	"prefetchsim/internal/racecheck"
)

// drainBatched pulls a stream dry through NextBatch+Recycle, returning
// the ops in order and the number of distinct backing arrays seen.
func drainBatched(t *testing.T, s BatchStream, limit int) ([]Op, int) {
	t.Helper()
	var ops []Op
	backing := make(map[*Op]bool)
	for n := 0; ; n++ {
		if n > limit {
			t.Fatalf("stream did not end within %d batches", limit)
		}
		batch := s.NextBatch()
		if batch == nil {
			return ops, len(backing)
		}
		if len(batch) == 0 {
			t.Fatal("NextBatch returned an empty non-nil batch")
		}
		backing[&batch[:1][0]] = true
		ops = append(ops, batch...)
		s.Recycle(batch)
	}
}

func TestSliceStreamNextBatch(t *testing.T) {
	ops := []Op{{Kind: Read, Addr: 1}, {Kind: Write, Addr: 2}}
	s := NewSliceStream(ops)
	got, _ := drainBatched(t, s, 4)
	if len(got) != len(ops) {
		t.Fatalf("got %d ops, want %d", len(got), len(ops))
	}
	for i := range ops {
		if got[i] != ops[i] {
			t.Fatalf("op %d = %+v, want %+v", i, got[i], ops[i])
		}
	}
	if s.NextBatch() != nil {
		t.Fatal("exhausted NextBatch not nil")
	}
	if op := s.Next(); op.Kind != End {
		t.Fatal("exhausted Next not End")
	}
}

func TestSliceStreamMixedNextAndBatch(t *testing.T) {
	ops := []Op{{Addr: 1}, {Addr: 2}, {Addr: 3}}
	s := NewSliceStream(ops)
	if op := s.Next(); op.Addr != 1 {
		t.Fatalf("Next = %+v", op)
	}
	batch := s.NextBatch()
	if len(batch) != 2 || batch[0].Addr != 2 || batch[1].Addr != 3 {
		t.Fatalf("NextBatch after Next = %+v", batch)
	}
}

func TestChanStreamNextBatchDeliversAllOpsInOrder(t *testing.T) {
	const n = 10*batchSize/3 + 17 // several batches plus a partial tail
	s := NewChanStream(func(e *Emitter) {
		for i := 0; i < n; i++ {
			e.Read(PC(i%7), uint64(i*32), uint32(i%3))
		}
	})
	got, _ := drainBatched(t, s, n)
	// The producer appends the terminating End op explicitly.
	if len(got) != n+1 {
		t.Fatalf("got %d ops, want %d", len(got), n+1)
	}
	for i := 0; i < n; i++ {
		if got[i].Kind != Read || got[i].Addr != uint64(i*32) || got[i].PC != PC(i%7) {
			t.Fatalf("op %d = %+v", i, got[i])
		}
	}
	if got[n].Kind != End {
		t.Fatalf("final op = %+v, want End", got[n])
	}
	if s.NextBatch() != nil {
		t.Fatal("exhausted NextBatch not nil")
	}
}

func TestChanStreamMixedNextAndBatchPreservesOrder(t *testing.T) {
	const n = 2*batchSize + 100
	s := NewChanStream(func(e *Emitter) {
		for i := 0; i < n; i++ {
			e.Emit(Op{Kind: Write, Addr: uint64(i)})
		}
	})
	want := uint64(0)
	// Nibble a few ops per-op, then take a batch, and repeat: every op
	// must still arrive exactly once, in order.
	for {
		for k := 0; k < 3; k++ {
			op := s.Next()
			if op.Kind == End {
				if want != n {
					t.Fatalf("ended after %d ops, want %d", want, n)
				}
				return
			}
			if op.Addr != want {
				t.Fatalf("Next op addr = %d, want %d", op.Addr, want)
			}
			want++
		}
		batch := s.NextBatch()
		if batch == nil {
			if want != n {
				t.Fatalf("ended after %d ops, want %d", want, n)
			}
			return
		}
		for _, op := range batch {
			if op.Kind == End {
				if want != n {
					t.Fatalf("ended after %d ops, want %d", want, n)
				}
				return
			}
			if op.Addr != want {
				t.Fatalf("batched op addr = %d, want %d", op.Addr, want)
			}
			want++
		}
		s.Recycle(batch)
	}
}

// TestChanStreamRecyclingReusesBatches is the producer/consumer test
// for the free list: a consumer that recycles every drained batch must
// bound the number of op buffers the producer ever allocates to the
// pipeline depth, regardless of how many batches flow. Without the free
// list this stream would use one fresh backing array per batch.
func TestChanStreamRecyclingReusesBatches(t *testing.T) {
	batches := racecheck.Scale(400, 50)
	n := batches * batchSize
	s := NewChanStream(func(e *Emitter) {
		for i := 0; i < n; i++ {
			e.Emit(Op{Kind: Write, Addr: uint64(i)})
		}
	})
	got, distinct := drainBatched(t, s, batches+2)
	if len(got) != n+1 {
		t.Fatalf("got %d ops, want %d", len(got), n+1)
	}
	// The pipeline holds at most the producer's working buffer, the
	// in-flight channel slots, the consumer's batch, and the free list;
	// allow slack for buffers allocated while the pipeline primes.
	if limit := 2 * (chanDepth + 2); distinct > limit {
		t.Errorf("%d batches used %d distinct buffers, want <= %d (recycling broken?)",
			batches, distinct, limit)
	}
}

// TestFuncStreamDeliversAndRecycles exercises the goroutine-free
// generator adapter: order, the partial final batch, nil-is-End, and
// single-buffer steady state when the consumer recycles.
func TestFuncStreamDeliversAndRecycles(t *testing.T) {
	const n = 5*batchSize + 123
	i := 0
	fill := func(buf []Op) int {
		k := 0
		for ; k < len(buf) && i < n; k++ {
			buf[k] = Op{Kind: Read, Addr: uint64(i)}
			i++
		}
		return k
	}
	s := NewFuncStream(fill)
	got, distinct := drainBatched(t, s, n)
	if len(got) != n {
		t.Fatalf("got %d ops, want %d", len(got), n)
	}
	for j, op := range got {
		if op.Addr != uint64(j) {
			t.Fatalf("op %d addr = %d", j, op.Addr)
		}
	}
	if distinct != 1 {
		t.Errorf("recycling consumer used %d buffers, want 1", distinct)
	}
	if s.NextBatch() != nil || s.Next().Kind != End {
		t.Fatal("exhausted FuncStream must return nil batches and End ops")
	}
}

func TestFuncStreamPerOpPath(t *testing.T) {
	const n = batchSize + 7
	i := 0
	s := NewFuncStream(func(buf []Op) int {
		k := 0
		for ; k < len(buf) && i < n; k++ {
			buf[k] = Op{Kind: Write, Addr: uint64(i)}
			i++
		}
		return k
	})
	for j := 0; j < n; j++ {
		if op := s.Next(); op.Addr != uint64(j) || op.Kind != Write {
			t.Fatalf("op %d = %+v", j, op)
		}
	}
	if op := s.Next(); op.Kind != End {
		t.Fatalf("exhausted Next = %v, want End", op.Kind)
	}
	if op := s.Next(); op.Kind != End {
		t.Fatal("End is not sticky")
	}
}

// TestPerOpHidesBatchInterface pins the differential-testing lever: a
// PerOp-wrapped stream must not satisfy BatchStream (that is its whole
// point), while still forwarding Next and Stop.
func TestPerOpHidesBatchInterface(t *testing.T) {
	var s Stream = PerOp{S: NewSliceStream([]Op{{Kind: Read, Addr: 9}})}
	if _, ok := s.(BatchStream); ok {
		t.Fatal("PerOp leaks the BatchStream interface")
	}
	if op := s.Next(); op.Kind != Read || op.Addr != 9 {
		t.Fatalf("PerOp.Next = %+v", op)
	}
	stopped := false
	p := PerOp{S: &stopStream{onStop: func() { stopped = true }}}
	p.Stop()
	if !stopped {
		t.Fatal("PerOp.Stop did not forward")
	}
}

type stopStream struct{ onStop func() }

func (s *stopStream) Next() Op { return Op{Kind: End} }
func (s *stopStream) Stop()    { s.onStop() }

// BenchmarkStreamNext compares the per-op and batched consumption paths
// over the same producer-goroutine stream, and the goroutine-free
// FuncStream; the batched variants recycle, so steady state is
// allocation-free.
func BenchmarkStreamNext(b *testing.B) {
	produce := func(n int) func(*Emitter) {
		return func(e *Emitter) {
			for i := 0; i < n; i++ {
				e.Read(1, uint64(i)<<5, 2)
			}
		}
	}
	fill := func(n int) func([]Op) int {
		i := 0
		return func(buf []Op) int {
			k := 0
			for ; k < len(buf) && i < n; k++ {
				buf[k] = Op{Kind: Read, PC: 1, Addr: uint64(i) << 5, Gap: 2}
				i++
			}
			return k
		}
	}
	b.Run("chan", func(b *testing.B) {
		b.ReportAllocs()
		s := NewChanStream(produce(b.N))
		for i := 0; i < b.N; i++ {
			if op := s.Next(); op.Kind == End {
				b.Fatal("stream ended early")
			}
		}
		s.Stop()
	})
	b.Run("chan-batched", func(b *testing.B) {
		b.ReportAllocs()
		s := NewChanStream(produce(b.N))
		got := 0
		for got < b.N {
			batch := s.NextBatch()
			if batch == nil {
				b.Fatal("stream ended early")
			}
			got += len(batch)
			s.Recycle(batch)
		}
		s.Stop()
	})
	b.Run("func-batched", func(b *testing.B) {
		b.ReportAllocs()
		s := NewFuncStream(fill(b.N))
		got := 0
		for got < b.N {
			batch := s.NextBatch()
			if batch == nil {
				b.Fatal("stream ended early")
			}
			got += len(batch)
			s.Recycle(batch)
		}
	})
}
