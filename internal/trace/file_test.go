package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func sampleProgram() *Program {
	return &Program{
		Name: "sample",
		Streams: []Stream{
			NewSliceStream([]Op{
				{Kind: Read, PC: 1, Addr: 4096, Gap: 3},
				{Kind: Read, PC: 1, Addr: 4128, Gap: 3},
				{Kind: Write, PC: 2, Addr: 4096, Gap: 1},
				{Kind: Acquire, Addr: 8192},
				{Kind: Release, Addr: 8192},
				{Kind: Barrier, Addr: 0},
			}),
			NewSliceStream([]Op{
				{Kind: Read, PC: 9, Addr: 1 << 40, Gap: 0}, // large address
				{Kind: Read, PC: 9, Addr: 64, Gap: 0},      // negative delta
				{Kind: Barrier, Addr: 0},
			}),
		},
	}
}

func drain(s Stream) []Op {
	var ops []Op
	for {
		op := s.Next()
		if op.Kind == End {
			return ops
		}
		ops = append(ops, op)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteProgram(&buf, sampleProgram()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadProgram(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := sampleProgram()
	if got.Name != "sample" || len(got.Streams) != 2 {
		t.Fatalf("header: name=%q streams=%d", got.Name, len(got.Streams))
	}
	for i := range want.Streams {
		w, g := drain(want.Streams[i]), drain(got.Streams[i])
		if len(w) != len(g) {
			t.Fatalf("stream %d: %d ops, want %d", i, len(g), len(w))
		}
		for j := range w {
			if w[j] != g[j] {
				t.Fatalf("stream %d op %d: %+v, want %+v", i, j, g[j], w[j])
			}
		}
	}
}

func TestRoundTripRandomPrograms(t *testing.T) {
	f := func(raw []uint32, procsRaw uint8) bool {
		procs := int(procsRaw%4) + 1
		want := &Program{Name: "q"}
		streams := make([][]Op, procs)
		for i, r := range raw {
			p := i % procs
			op := Op{}
			switch r % 5 {
			case 0, 1:
				op = Op{Kind: Read, PC: PC(r >> 8), Addr: uint64(r) * 13, Gap: r % 100}
			case 2:
				op = Op{Kind: Write, PC: PC(r % 64), Addr: uint64(r), Gap: r % 7}
			case 3:
				op = Op{Kind: Acquire, Addr: uint64(r%1024) * 4096}
				streams[p] = append(streams[p], op)
				op = Op{Kind: Release, Addr: uint64(r%1024) * 4096}
			case 4:
				op = Op{Kind: Barrier, Addr: uint64(len(streams[p]))}
			}
			streams[p] = append(streams[p], op)
		}
		for _, ops := range streams {
			want.Streams = append(want.Streams, NewSliceStream(ops))
		}
		var buf bytes.Buffer
		if err := WriteProgram(&buf, want); err != nil {
			return false
		}
		got, err := ReadProgram(&buf)
		if err != nil {
			return false
		}
		for p := range streams {
			g := drain(got.Streams[p])
			if len(g) != len(streams[p]) {
				return false
			}
			for j := range g {
				if g[j] != streams[p][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestReadProgramRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"empty":       "",
		"wrong magic": "NOTATRACE\n\x00",
		"truncated":   "PFSIM1\n",
	}
	for name, data := range cases {
		if _, err := ReadProgram(strings.NewReader(data)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestReadProgramRejectsTruncatedStream(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteProgram(&buf, sampleProgram()); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := ReadProgram(bytes.NewReader(data[:len(data)-3])); err == nil {
		t.Fatal("accepted truncated trace")
	}
}

func TestDeltaEncodingIsCompact(t *testing.T) {
	// A strided stream must cost only a few bytes per op.
	var ops []Op
	for i := 0; i < 10000; i++ {
		ops = append(ops, Op{Kind: Read, PC: 3, Addr: uint64(4096 + i*32), Gap: 2})
	}
	var buf bytes.Buffer
	err := WriteProgram(&buf, &Program{Name: "s", Streams: []Stream{NewSliceStream(ops)}})
	if err != nil {
		t.Fatal(err)
	}
	if perOp := float64(buf.Len()) / 10000; perOp > 6 {
		t.Fatalf("%.1f bytes/op; delta encoding broken", perOp)
	}
}
