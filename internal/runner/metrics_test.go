package runner

import (
	"testing"
	"time"

	"prefetchsim/internal/obs"
)

// TestMetricsLifecycle walks jobs through enqueue→admit→finish and
// abandon, checking the gauges return to zero and the histograms only
// ever see admitted jobs — the invariant the job-span reconciliation
// builds on.
func TestMetricsLifecycle(t *testing.T) {
	t.Parallel()
	var m Metrics
	reg := obs.NewRegistry()
	m.Bind(reg, "runner")

	m.Enqueue()
	m.Enqueue()
	m.Enqueue()
	if d := m.QueueDepth.Value(); d != 3 {
		t.Fatalf("queue depth = %d, want 3", d)
	}

	// One job is cancelled while queued: depth drops, no wait observed.
	m.Abandon()
	if n := m.Wait.Count(); n != 0 {
		t.Fatalf("abandoned job observed a wait (%d)", n)
	}

	w1 := m.Admit(1500 * time.Microsecond)
	w2 := m.Admit(0)
	if w1 != 1500 || w2 != 0 {
		t.Fatalf("Admit returned %d/%d, want 1500/0", w1, w2)
	}
	if d, f := m.QueueDepth.Value(), m.InFlight.Value(); d != 0 || f != 2 {
		t.Fatalf("after admits: depth=%d inflight=%d, want 0/2", d, f)
	}
	if m.Wait.Sum() != w1+w2 || m.Wait.Count() != 2 {
		t.Fatalf("wait hist sum=%d count=%d, want %d/2", m.Wait.Sum(), m.Wait.Count(), w1+w2)
	}

	r1 := m.Finish(2*time.Millisecond, true)
	r2 := m.Finish(time.Millisecond, false)
	if m.InFlight.Value() != 0 {
		t.Fatalf("inflight = %d after finishes", m.InFlight.Value())
	}
	if m.Completed.Value() != 1 || m.Failed.Value() != 1 {
		t.Fatalf("completed=%d failed=%d, want 1/1", m.Completed.Value(), m.Failed.Value())
	}
	if m.Run.Sum() != r1+r2 || m.Run.Count() != 2 {
		t.Fatalf("run hist sum=%d count=%d, want %d/2", m.Run.Sum(), m.Run.Count(), r1+r2)
	}

	// All six instruments export through the registry under the prefix.
	snap := snapMap(reg)
	for _, name := range []string{
		"runner.queue.depth", "runner.inflight", "runner.completed",
		"runner.failed", "runner.wait.us.count", "runner.run.us.count",
	} {
		if _, ok := snap[name]; !ok {
			t.Errorf("snapshot missing %q (have %v)", name, snap)
		}
	}

	// A nil Metrics is a no-op on every path (servers with metrics
	// disabled share the same call sites).
	var nm *Metrics
	nm.Enqueue()
	nm.Abandon()
	if us := nm.Admit(time.Second); us != 1000000 {
		t.Errorf("nil Admit returned %d", us)
	}
	nm.Finish(time.Second, true)
}

func snapMap(r *obs.Registry) map[string]int64 {
	return r.Snapshot().Map()
}
