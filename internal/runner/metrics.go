package runner

import (
	"time"

	"prefetchsim/internal/obs"
)

// Metrics is the serving-path instrument pack for a job execution
// pipeline built on this package: a queue of submitted jobs waiting
// for an admission slot, at most N jobs computing at once, each
// finishing as done or failed. prefetchd drives one Metrics for its
// job service; the instruments are atomic, so request handlers and
// job goroutines bump them without coordination.
//
// The wait and run histograms record microseconds. Their sums are the
// reconciliation anchor for job lifecycle spans: a server that stamps
// a job's queued→admitted wait MUST observe the same microsecond value
// here and in its span aggregate, so the two views agree exactly (the
// same discipline TestSpanStatsReconcile pins for simulator spans).
type Metrics struct {
	// QueueDepth is the number of jobs admitted to the service but not
	// yet granted an execution slot.
	QueueDepth obs.AtomicGauge
	// InFlight is the number of jobs holding an execution slot.
	InFlight obs.AtomicGauge
	// Completed counts jobs that finished computing successfully;
	// Failed counts errors and cancellations.
	Completed obs.AtomicCounter
	Failed    obs.AtomicCounter
	// Wait is the queued→admitted latency per job, in microseconds.
	Wait obs.AtomicHistogram
	// Run is the admitted→finished latency per job, in microseconds.
	Run obs.AtomicHistogram
}

// Bind registers every instrument under prefix (e.g. "runner") in r.
func (m *Metrics) Bind(r *obs.Registry, prefix string) {
	r.BindAtomicGauge(prefix+".queue.depth", &m.QueueDepth)
	r.BindAtomicGauge(prefix+".inflight", &m.InFlight)
	r.BindAtomicCounter(prefix+".completed", &m.Completed)
	r.BindAtomicCounter(prefix+".failed", &m.Failed)
	r.BindAtomicHistogram(prefix+".wait.us", &m.Wait)
	r.BindAtomicHistogram(prefix+".run.us", &m.Run)
}

// Micros converts a wall-clock duration to the histograms' unit.
func Micros(d time.Duration) int64 { return d.Microseconds() }

// Enqueue records a job entering the admission queue.
func (m *Metrics) Enqueue() {
	if m != nil {
		m.QueueDepth.Add(1)
	}
}

// Admit records a job leaving the queue for an execution slot after
// waiting wait; it returns the microsecond value it observed so the
// caller can stamp the identical number into its span aggregate.
func (m *Metrics) Admit(wait time.Duration) int64 {
	us := Micros(wait)
	if m != nil {
		m.QueueDepth.Add(-1)
		m.InFlight.Add(1)
		m.Wait.Observe(us)
	}
	return us
}

// Abandon records a job leaving the queue without ever being admitted
// (cancelled while waiting). It does not touch the latency histograms:
// only admitted jobs have a wait, which is what keeps the histogram
// sums reconcilable with the admitted-job span aggregates.
func (m *Metrics) Abandon() {
	if m != nil {
		m.QueueDepth.Add(-1)
	}
}

// Finish records an admitted job completing after run time spent in
// its slot; ok distinguishes Completed from Failed. It returns the
// microsecond value observed into the run histogram.
func (m *Metrics) Finish(run time.Duration, ok bool) int64 {
	us := Micros(run)
	if m != nil {
		m.InFlight.Add(-1)
		m.Run.Observe(us)
		if ok {
			m.Completed.Inc()
		} else {
			m.Failed.Inc()
		}
	}
	return us
}
