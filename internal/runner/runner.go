// Package runner is the parallel experiment engine: a worker pool that
// fans independent jobs (simulations) across GOMAXPROCS goroutines
// while keeping the results deterministic.
//
// The guarantees the experiment layer builds on:
//
//   - Results come back in submission order, regardless of which worker
//     finishes first, so a parallel sweep emits byte-identical rows to
//     a serial one.
//   - Errors are captured per job: one failed configuration never kills
//     the rest of a sweep.
//   - With Workers == 1 the jobs run strictly serially, in order, on
//     the calling goroutine — the reference path the equivalence tests
//     compare against.
//
// Cache adds the second half of the engine: a singleflight memo so a
// shared run (the per-application baseline of a relative-metric sweep)
// executes once instead of once per scheme, even when the schemes that
// need it run concurrently.
package runner

import (
	"runtime"
	"sync"
)

// DefaultWorkers is the worker count used when a sweep does not specify
// one: GOMAXPROCS, i.e. as many simulations in flight as the hardware
// has cores to run them.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Normalize clamps a requested worker count to [1, jobs]: 0 (or
// negative) means DefaultWorkers, and there is no point spawning more
// workers than jobs.
func Normalize(workers, jobs int) int {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > jobs {
		workers = jobs
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Map runs fn over every job on up to workers goroutines (0 means
// DefaultWorkers) and returns one result and one error slot per job, in
// submission order. fn receives the job's index and value. A panic in
// fn propagates to the caller; an error is recorded in the job's slot
// and the remaining jobs still run.
//
// progress, when non-nil, is called after each job finishes with the
// number of completed jobs and the total; calls are serialized and
// done is strictly increasing, but with multiple workers the jobs
// completing in between are not ordered.
func Map[J, R any](workers int, jobs []J, fn func(i int, job J) (R, error), progress func(done, total int)) ([]R, []error) {
	var each func(done, total, i int, r R, err error)
	if progress != nil {
		each = func(done, total, _ int, _ R, _ error) { progress(done, total) }
	}
	return MapEach(workers, jobs, fn, each)
}

// MapEach is Map with a richer completion hook: each, when non-nil,
// runs as every job finishes with the completion count, the job total,
// the finished job's index and its result or error. Calls are
// serialized (they hold the pool's lock, so each must not itself
// submit work) and done is strictly increasing, but with multiple
// workers jobs complete in whatever order the workers finish — the
// index i says which job this is. The returned slices are still in
// submission order; each exists so sweeps can stream results (rows,
// manifests, live metric totals) as they land instead of waiting for
// the whole fan-out.
func MapEach[J, R any](workers int, jobs []J, fn func(i int, job J) (R, error), each func(done, total, i int, r R, err error)) ([]R, []error) {
	results := make([]R, len(jobs))
	errs := make([]error, len(jobs))
	if len(jobs) == 0 {
		return results, errs
	}
	workers = Normalize(workers, len(jobs))

	if workers == 1 {
		// Serial reference path: in order, on the calling goroutine.
		for i, job := range jobs {
			results[i], errs[i] = fn(i, job)
			if each != nil {
				each(i+1, len(jobs), i, results[i], errs[i])
			}
		}
		return results, errs
	}

	var (
		next int // next job index to hand out
		done int // jobs finished so far
		mu   sync.Mutex
		wg   sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(jobs) {
					return
				}
				r, err := fn(i, jobs[i])
				mu.Lock()
				results[i], errs[i] = r, err
				done++
				if each != nil {
					each(done, len(jobs), i, r, err)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return results, errs
}

// Cache is a concurrency-safe singleflight memo: Do runs fn at most
// once per key, and concurrent callers of the same key block until the
// first call's result is ready and then share it (value and error
// alike). The zero value is ready to use; a Cache must not be copied
// after first use.
type Cache[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*cacheEntry[V]
}

type cacheEntry[V any] struct {
	once sync.Once
	val  V
	err  error
}

// Do returns the cached result for key, computing it with fn on the
// first call.
func (c *Cache[K, V]) Do(key K, fn func() (V, error)) (V, error) {
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[K]*cacheEntry[V])
	}
	e := c.m[key]
	if e == nil {
		e = new(cacheEntry[V])
		c.m[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.val, e.err = fn() })
	return e.val, e.err
}

// Len reports the number of distinct keys seen.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
