// Package runner is the parallel experiment engine: a worker pool that
// fans independent jobs (simulations) across GOMAXPROCS goroutines
// while keeping the results deterministic.
//
// The guarantees the experiment layer builds on:
//
//   - Results come back in submission order, regardless of which worker
//     finishes first, so a parallel sweep emits byte-identical rows to
//     a serial one.
//   - Errors are captured per job: one failed configuration never kills
//     the rest of a sweep.
//   - With Workers == 1 the jobs run strictly serially, in order, on
//     the calling goroutine — the reference path the equivalence tests
//     compare against.
//
// Cache adds the second half of the engine: a singleflight memo so a
// shared run (the per-application baseline of a relative-metric sweep)
// executes once instead of once per scheme, even when the schemes that
// need it run concurrently.
package runner

import (
	"context"
	"runtime"
	"sync"
)

// DefaultWorkers is the worker count used when a sweep does not specify
// one: GOMAXPROCS, i.e. as many simulations in flight as the hardware
// has cores to run them.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Normalize clamps a requested worker count to [1, jobs]: 0 (or
// negative) means DefaultWorkers, and there is no point spawning more
// workers than jobs.
func Normalize(workers, jobs int) int {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > jobs {
		workers = jobs
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Map runs fn over every job on up to workers goroutines (0 means
// DefaultWorkers) and returns one result and one error slot per job, in
// submission order. fn receives the job's index and value. A panic in
// fn propagates to the caller; an error is recorded in the job's slot
// and the remaining jobs still run.
//
// progress, when non-nil, is called after each job finishes with the
// number of completed jobs and the total; calls are serialized and
// done is strictly increasing, but with multiple workers the jobs
// completing in between are not ordered.
func Map[J, R any](workers int, jobs []J, fn func(i int, job J) (R, error), progress func(done, total int)) ([]R, []error) {
	var each func(done, total, i int, r R, err error)
	if progress != nil {
		each = func(done, total, _ int, _ R, _ error) { progress(done, total) }
	}
	return MapEach(workers, jobs, fn, each)
}

// MapEach is Map with a richer completion hook: each, when non-nil,
// runs as every job finishes with the completion count, the job total,
// the finished job's index and its result or error. Calls are
// serialized (they hold the pool's lock, so each must not itself
// submit work) and done is strictly increasing, but with multiple
// workers jobs complete in whatever order the workers finish — the
// index i says which job this is. The returned slices are still in
// submission order; each exists so sweeps can stream results (rows,
// manifests, live metric totals) as they land instead of waiting for
// the whole fan-out.
func MapEach[J, R any](workers int, jobs []J, fn func(i int, job J) (R, error), each func(done, total, i int, r R, err error)) ([]R, []error) {
	return MapEachCtx(context.Background(), workers, jobs,
		func(_ context.Context, i int, job J) (R, error) { return fn(i, job) }, each)
}

// MapCtx is Map with cancellation: see MapEachCtx.
func MapCtx[J, R any](ctx context.Context, workers int, jobs []J, fn func(ctx context.Context, i int, job J) (R, error), progress func(done, total int)) ([]R, []error) {
	var each func(done, total, i int, r R, err error)
	if progress != nil {
		each = func(done, total, _ int, _ R, _ error) { progress(done, total) }
	}
	return MapEachCtx(ctx, workers, jobs, fn, each)
}

// MapEachCtx is MapEach with cancellation: once ctx is done, jobs not
// yet started are skipped — their error slots record ctx.Err() and
// each still fires for them, so done reaches the total either way.
// Jobs already in flight run to completion (fn receives ctx and may
// shorten its own work). The results of jobs that finished before the
// cancellation are kept.
func MapEachCtx[J, R any](ctx context.Context, workers int, jobs []J, fn func(ctx context.Context, i int, job J) (R, error), each func(done, total, i int, r R, err error)) ([]R, []error) {
	results := make([]R, len(jobs))
	errs := make([]error, len(jobs))
	if len(jobs) == 0 {
		return results, errs
	}
	workers = Normalize(workers, len(jobs))

	// runJob skips (rather than runs) the job once ctx is cancelled.
	runJob := func(i int) (R, error) {
		if err := ctx.Err(); err != nil {
			var zero R
			return zero, err
		}
		return fn(ctx, i, jobs[i])
	}

	if workers == 1 {
		// Serial reference path: in order, on the calling goroutine.
		for i := range jobs {
			results[i], errs[i] = runJob(i)
			if each != nil {
				each(i+1, len(jobs), i, results[i], errs[i])
			}
		}
		return results, errs
	}

	var (
		next int // next job index to hand out
		done int // jobs finished so far
		mu   sync.Mutex
		wg   sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(jobs) {
					return
				}
				r, err := runJob(i)
				mu.Lock()
				results[i], errs[i] = r, err
				done++
				if each != nil {
					each(done, len(jobs), i, r, err)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return results, errs
}

// Cache is a concurrency-safe singleflight memo: Do runs fn at most
// once per key, and concurrent callers of the same key block until the
// first call's result is ready and then share it (value and error
// alike). The zero value is ready to use; a Cache must not be copied
// after first use.
type Cache[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*cacheEntry[V]
	cm map[K]*flight[V] // DoCtx's key space (successes only)
}

type cacheEntry[V any] struct {
	once sync.Once
	val  V
	err  error
}

// Do returns the cached result for key, computing it with fn on the
// first call.
func (c *Cache[K, V]) Do(key K, fn func() (V, error)) (V, error) {
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[K]*cacheEntry[V])
	}
	e := c.m[key]
	if e == nil {
		e = new(cacheEntry[V])
		c.m[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.val, e.err = fn() })
	return e.val, e.err
}

// flight is one in-progress or memoized DoCtx computation. err is only
// read after done is closed; a failed flight is removed from the map
// before done closes, so only successes are ever found by later
// callers.
type flight[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// DoCtx is the serving-path variant of Do: singleflight with
// cancellation, designed for long-lived caches fed by request
// handlers. It differs from Do in three ways:
//
//   - Errors are not memoized. A failed computation is forgotten, so
//     the next caller of the key retries instead of replaying a stale
//     failure forever.
//   - A waiter whose ctx ends returns ctx.Err() immediately; the
//     computation it was waiting on keeps running for the others.
//   - A computing caller whose ctx dies mid-fn (fn returning the
//     cancellation error) does not poison the entry: the key is
//     forgotten and later callers compute it fresh.
//
// Do and DoCtx keep separate key spaces; a Cache may use either or
// both.
func (c *Cache[K, V]) DoCtx(ctx context.Context, key K, fn func(context.Context) (V, error)) (V, error) {
	var zero V
	for {
		if err := ctx.Err(); err != nil {
			return zero, err
		}
		c.mu.Lock()
		if c.cm == nil {
			c.cm = make(map[K]*flight[V])
		}
		f := c.cm[key]
		if f == nil {
			// This caller owns the computation.
			f = &flight[V]{done: make(chan struct{})}
			c.cm[key] = f
			c.mu.Unlock()
			f.val, f.err = fn(ctx)
			c.mu.Lock()
			// Forget failures (cancellation included) — but only our own
			// flight: a Forget during the computation may have installed
			// a successor that must not be clobbered.
			if f.err != nil && c.cm[key] == f {
				delete(c.cm, key)
			}
			c.mu.Unlock()
			close(f.done)
			return f.val, f.err
		}
		c.mu.Unlock()
		select {
		case <-f.done:
			if f.err == nil {
				return f.val, nil
			}
			// The owner failed; loop and retry (perhaps becoming the
			// new owner) rather than inheriting its error.
		case <-ctx.Done():
			return zero, ctx.Err()
		}
	}
}

// Forget drops key from DoCtx's memo, so the next DoCtx caller
// computes it fresh. A server whose results persist elsewhere (the
// on-disk result cache) forgets each key once it is durably stored,
// keeping DoCtx a pure in-flight dedup rather than a second,
// unbounded in-memory cache. An in-flight computation is unaffected:
// its waiters still share its outcome.
func (c *Cache[K, V]) Forget(key K) {
	c.mu.Lock()
	delete(c.cm, key)
	c.mu.Unlock()
}

// Len reports the number of distinct keys seen (Do and DoCtx key
// spaces combined; failed DoCtx keys are forgotten, not counted).
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m) + len(c.cm)
}
