package runner

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestMapOrder: results come back in submission order even when later
// jobs finish first (earlier jobs wait on later ones via a channel).
func TestMapOrder(t *testing.T) {
	const n = 16
	jobs := make([]int, n)
	for i := range jobs {
		jobs[i] = i
	}
	release := make(chan struct{})
	results, errs := Map(n, jobs, func(i, job int) (int, error) {
		if i == 0 {
			<-release // job 0 finishes last
		} else if i == n-1 {
			close(release)
		}
		return job * job, nil
	}, nil)
	for i := range results {
		if errs[i] != nil {
			t.Fatalf("job %d: unexpected error %v", i, errs[i])
		}
		if results[i] != i*i {
			t.Errorf("results[%d] = %d, want %d", i, results[i], i*i)
		}
	}
}

// TestMapSerialWorker: workers == 1 runs jobs strictly in submission
// order on one goroutine.
func TestMapSerialWorker(t *testing.T) {
	var order []int
	jobs := []int{10, 20, 30, 40}
	results, errs := Map(1, jobs, func(i, job int) (int, error) {
		order = append(order, i) // safe: single worker, no concurrency
		return job, nil
	}, nil)
	for i := range order {
		if order[i] != i {
			t.Fatalf("serial execution order %v, want ascending", order)
		}
	}
	for i := range jobs {
		if errs[i] != nil || results[i] != jobs[i] {
			t.Fatalf("job %d: got (%d, %v)", i, results[i], errs[i])
		}
	}
}

// TestMapErrorIsolation: one failing job must not stop the others, and
// its error lands in its own slot.
func TestMapErrorIsolation(t *testing.T) {
	jobs := []int{0, 1, 2, 3, 4}
	boom := errors.New("boom")
	var ran atomic.Int32
	results, errs := Map(2, jobs, func(i, job int) (int, error) {
		ran.Add(1)
		if job == 2 {
			return 0, fmt.Errorf("job %d: %w", job, boom)
		}
		return job + 100, nil
	}, nil)
	if got := ran.Load(); got != int32(len(jobs)) {
		t.Fatalf("ran %d jobs, want %d", got, len(jobs))
	}
	for i := range jobs {
		if i == 2 {
			if !errors.Is(errs[i], boom) {
				t.Errorf("errs[2] = %v, want wrapped boom", errs[i])
			}
			continue
		}
		if errs[i] != nil {
			t.Errorf("errs[%d] = %v, want nil", i, errs[i])
		}
		if results[i] != i+100 {
			t.Errorf("results[%d] = %d, want %d", i, results[i], i+100)
		}
	}
}

// TestMapProgress: the callback sees every completion with a strictly
// increasing done count ending at total.
func TestMapProgress(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			const n = 12
			jobs := make([]int, n)
			var calls []int
			var mu sync.Mutex
			_, errs := Map(workers, jobs, func(i, job int) (int, error) {
				return 0, nil
			}, func(done, total int) {
				mu.Lock()
				defer mu.Unlock()
				if total != n {
					t.Errorf("progress total = %d, want %d", total, n)
				}
				calls = append(calls, done)
			})
			for i, err := range errs {
				if err != nil {
					t.Fatalf("job %d: %v", i, err)
				}
			}
			if len(calls) != n {
				t.Fatalf("%d progress calls, want %d", len(calls), n)
			}
			for i, d := range calls {
				if d != i+1 {
					t.Fatalf("progress sequence %v, want 1..%d", calls, n)
				}
			}
		})
	}
}

// TestMapEmptyAndDefaults: zero jobs and zero workers are both fine.
func TestMapEmptyAndDefaults(t *testing.T) {
	results, errs := Map(0, nil, func(i, job int) (int, error) { return 0, nil }, nil)
	if len(results) != 0 || len(errs) != 0 {
		t.Fatalf("empty Map returned %d results, %d errs", len(results), len(errs))
	}
	// workers = 0 means DefaultWorkers; the single job still runs.
	r, e := Map(0, []int{7}, func(i, job int) (int, error) { return job * 2, nil }, nil)
	if e[0] != nil || r[0] != 14 {
		t.Fatalf("default-workers Map = (%d, %v), want (14, nil)", r[0], e[0])
	}
}

func TestNormalize(t *testing.T) {
	max := DefaultWorkers()
	for _, tc := range []struct{ workers, jobs, want int }{
		{0, 100, max},
		{-3, 100, max},
		{1, 100, 1},
		{8, 3, 3},
		{4, 0, 1},
		{2, 2, 2},
	} {
		if got := Normalize(tc.workers, tc.jobs); got != tc.want {
			t.Errorf("Normalize(%d, %d) = %d, want %d", tc.workers, tc.jobs, got, tc.want)
		}
	}
}

// TestCacheSingleflight: many concurrent callers of one key execute fn
// exactly once and all observe the same result.
func TestCacheSingleflight(t *testing.T) {
	var c Cache[string, int]
	var execs atomic.Int32
	const callers = 32
	var wg sync.WaitGroup
	results := make([]int, callers)
	wg.Add(callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			defer wg.Done()
			v, err := c.Do("base", func() (int, error) {
				execs.Add(1)
				return 42, nil
			})
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			}
			results[i] = v
		}(i)
	}
	wg.Wait()
	if got := execs.Load(); got != 1 {
		t.Fatalf("fn executed %d times, want 1", got)
	}
	for i, v := range results {
		if v != 42 {
			t.Fatalf("caller %d saw %d, want 42", i, v)
		}
	}
	if c.Len() != 1 {
		t.Fatalf("cache holds %d keys, want 1", c.Len())
	}
}

// TestCacheDistinctKeys: distinct keys compute independently, and a
// cached error is shared just like a cached value.
func TestCacheDistinctKeys(t *testing.T) {
	var c Cache[int, string]
	var execs atomic.Int32
	bad := errors.New("bad key")
	get := func(k int) (string, error) {
		return c.Do(k, func() (string, error) {
			execs.Add(1)
			if k == 99 {
				return "", bad
			}
			return fmt.Sprintf("v%d", k), nil
		})
	}
	for round := 0; round < 3; round++ {
		for _, k := range []int{1, 2, 99} {
			v, err := get(k)
			if k == 99 {
				if !errors.Is(err, bad) {
					t.Fatalf("key 99 round %d: err = %v, want bad", round, err)
				}
				continue
			}
			if err != nil || v != fmt.Sprintf("v%d", k) {
				t.Fatalf("key %d round %d: (%q, %v)", k, round, v, err)
			}
		}
	}
	if got := execs.Load(); got != 3 {
		t.Fatalf("fn executed %d times, want 3 (one per key)", got)
	}
	if c.Len() != 3 {
		t.Fatalf("cache holds %d keys, want 3", c.Len())
	}
}

// TestMapCtxCancelSkipsRemaining: once the context ends, jobs not yet
// started are skipped with ctx.Err() in their slots while results that
// already landed are kept — in both the serial and the parallel pool.
func TestMapCtxCancelSkipsRemaining(t *testing.T) {
	for _, workers := range []int{1, 2} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			const n = 8
			jobs := make([]int, n)
			var ran atomic.Int32
			results, errs := MapCtx(ctx, workers, jobs, func(ctx context.Context, i, _ int) (int, error) {
				ran.Add(1)
				if i == workers-1 { // last job of the first batch
					cancel()
				}
				return i + 1, nil
			}, nil)
			if got := int(ran.Load()); got >= n {
				t.Fatalf("all %d jobs ran despite cancellation", got)
			}
			var kept, skipped int
			for i := range jobs {
				switch {
				case errs[i] == nil:
					kept++
					if results[i] != i+1 {
						t.Errorf("job %d: result %d, want %d", i, results[i], i+1)
					}
				case errors.Is(errs[i], context.Canceled):
					skipped++
					if results[i] != 0 {
						t.Errorf("skipped job %d has result %d", i, results[i])
					}
				default:
					t.Errorf("job %d: unexpected error %v", i, errs[i])
				}
			}
			if kept == 0 || skipped == 0 {
				t.Fatalf("kept %d skipped %d, want both nonzero", kept, skipped)
			}
		})
	}
}

// TestMapEachCtxCancelledJobsStillReported: each fires for skipped jobs
// too, so done still reaches the total after a cancellation.
func TestMapEachCtxCancelledJobsStillReported(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // everything is skipped
	jobs := []int{1, 2, 3}
	var calls int
	_, errs := MapEachCtx(ctx, 1, jobs, func(ctx context.Context, i, j int) (int, error) {
		t.Fatal("fn ran under a dead context")
		return 0, nil
	}, func(done, total, i int, r int, err error) {
		calls++
		if done != calls || total != len(jobs) {
			t.Errorf("each(done=%d, total=%d), want (%d, %d)", done, total, calls, len(jobs))
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("each job %d err = %v, want Canceled", i, err)
		}
	})
	if calls != len(jobs) {
		t.Fatalf("each fired %d times, want %d", calls, len(jobs))
	}
	for i, err := range errs {
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("errs[%d] = %v, want Canceled", i, err)
		}
	}
}

// TestCacheDoCtxSingleflight: concurrent same-key callers execute fn
// once and share the value, as with Do.
func TestCacheDoCtxSingleflight(t *testing.T) {
	var c Cache[string, int]
	var execs atomic.Int32
	const callers = 16
	var wg sync.WaitGroup
	wg.Add(callers)
	for i := 0; i < callers; i++ {
		go func() {
			defer wg.Done()
			v, err := c.DoCtx(context.Background(), "k", func(context.Context) (int, error) {
				execs.Add(1)
				return 7, nil
			})
			if err != nil || v != 7 {
				t.Errorf("DoCtx = (%d, %v), want (7, nil)", v, err)
			}
		}()
	}
	wg.Wait()
	if got := execs.Load(); got != 1 {
		t.Fatalf("fn executed %d times, want 1", got)
	}
	if c.Len() != 1 {
		t.Fatalf("cache holds %d keys, want 1", c.Len())
	}
}

// TestCacheDoCtxErrorNotMemoized: a failed computation is forgotten —
// the next caller of the same key retries and can succeed.
func TestCacheDoCtxErrorNotMemoized(t *testing.T) {
	var c Cache[string, int]
	var execs atomic.Int32
	boom := errors.New("transient")
	get := func() (int, error) {
		return c.DoCtx(context.Background(), "k", func(context.Context) (int, error) {
			if execs.Add(1) == 1 {
				return 0, boom
			}
			return 99, nil
		})
	}
	if _, err := get(); !errors.Is(err, boom) {
		t.Fatalf("first call err = %v, want transient", err)
	}
	v, err := get()
	if err != nil || v != 99 {
		t.Fatalf("retry = (%d, %v), want (99, nil)", v, err)
	}
	if got := execs.Load(); got != 2 {
		t.Fatalf("fn executed %d times, want 2 (error not memoized)", got)
	}
}

// TestCacheDoCtxWaiterCancelDoesNotPoison: the satellite contract — a
// caller whose context dies while waiting on another's computation
// returns its own ctx.Err() promptly, and the entry stays good for
// later callers (the computation completes and is memoized).
func TestCacheDoCtxWaiterCancelDoesNotPoison(t *testing.T) {
	var c Cache[string, int]
	started := make(chan struct{})
	release := make(chan struct{})

	ownerDone := make(chan error, 1)
	go func() {
		_, err := c.DoCtx(context.Background(), "k", func(context.Context) (int, error) {
			close(started)
			<-release
			return 41, nil
		})
		ownerDone <- err
	}()
	<-started

	// A waiter joins the in-flight computation, then its ctx dies.
	ctx, cancel := context.WithCancel(context.Background())
	waiterDone := make(chan error, 1)
	go func() {
		_, err := c.DoCtx(ctx, "k", func(context.Context) (int, error) {
			t.Error("waiter recomputed an in-flight key")
			return 0, nil
		})
		waiterDone <- err
	}()
	cancel()
	if err := <-waiterDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter err = %v, want Canceled", err)
	}

	// The computation finishes for everyone else and is memoized.
	close(release)
	if err := <-ownerDone; err != nil {
		t.Fatalf("owner err = %v", err)
	}
	v, err := c.DoCtx(context.Background(), "k", func(context.Context) (int, error) {
		t.Error("memoized key recomputed")
		return 0, nil
	})
	if err != nil || v != 41 {
		t.Fatalf("later caller = (%d, %v), want (41, nil)", v, err)
	}
}

// TestCacheDoCtxOwnerCancelDoesNotPoison: a computing caller whose
// context dies mid-Do (fn returns the cancellation) must not leave the
// key poisoned — a later caller computes fresh and gets the real value.
func TestCacheDoCtxOwnerCancelDoesNotPoison(t *testing.T) {
	var c Cache[string, int]
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := c.DoCtx(ctx, "k", func(ctx context.Context) (int, error) {
		// Reached only if the pre-check raced the cancel; either way the
		// computation observes its dead context.
		return 0, ctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled owner err = %v, want Canceled", err)
	}

	var execs atomic.Int32
	v, err := c.DoCtx(context.Background(), "k", func(context.Context) (int, error) {
		execs.Add(1)
		return 42, nil
	})
	if err != nil || v != 42 {
		t.Fatalf("later caller = (%d, %v), want (42, nil)", v, err)
	}
	if execs.Load() != 1 {
		t.Fatal("later caller did not recompute the forgotten key")
	}
}

// TestCacheDoCtxWaiterRetriesAfterOwnerFailure: a waiter does not
// inherit the owner's error; it retries the computation itself.
func TestCacheDoCtxWaiterRetriesAfterOwnerFailure(t *testing.T) {
	var c Cache[string, int]
	started := make(chan struct{})
	release := make(chan struct{})
	boom := errors.New("owner failed")

	go func() {
		c.DoCtx(context.Background(), "k", func(context.Context) (int, error) {
			close(started)
			<-release
			return 0, boom
		})
	}()
	<-started

	waiterDone := make(chan struct{})
	var v int
	var err error
	go func() {
		defer close(waiterDone)
		v, err = c.DoCtx(context.Background(), "k", func(context.Context) (int, error) {
			return 5, nil
		})
	}()
	close(release)
	<-waiterDone
	if err != nil || v != 5 {
		t.Fatalf("waiter retry = (%d, %v), want (5, nil)", v, err)
	}
}

// TestCacheForget: a forgotten key recomputes on the next DoCtx call.
func TestCacheForget(t *testing.T) {
	var c Cache[string, int]
	var execs atomic.Int32
	get := func() int {
		v, err := c.DoCtx(context.Background(), "k", func(context.Context) (int, error) {
			return int(execs.Add(1)), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if get() != 1 || get() != 1 {
		t.Fatal("memoization broken before Forget")
	}
	c.Forget("k")
	if c.Len() != 0 {
		t.Fatalf("Len = %d after Forget, want 0", c.Len())
	}
	if get() != 2 {
		t.Fatal("forgotten key not recomputed")
	}
}

// TestMapEachCompletionHook: each sees every job exactly once with a
// strictly increasing done count, the matching index and that job's
// result or error — in both the serial and the parallel pool.
func TestMapEachCompletionHook(t *testing.T) {
	bad := errors.New("job 3")
	for _, workers := range []int{1, 4} {
		jobs := []int{10, 20, 30, 40, 50}
		var (
			mu       sync.Mutex
			lastDone int
			seen     = map[int]int{} // job index -> result reported to each
			errAt    = -1
		)
		results, errs := MapEach(workers, jobs, func(i int, j int) (int, error) {
			if i == 3 {
				return 0, bad
			}
			return j * 2, nil
		}, func(done, total, i int, r int, err error) {
			mu.Lock()
			defer mu.Unlock()
			if total != len(jobs) {
				t.Errorf("workers=%d: total = %d, want %d", workers, total, len(jobs))
			}
			if done != lastDone+1 {
				t.Errorf("workers=%d: done jumped %d -> %d", workers, lastDone, done)
			}
			lastDone = done
			if _, dup := seen[i]; dup {
				t.Errorf("workers=%d: job %d reported twice", workers, i)
			}
			seen[i] = r
			if err != nil {
				errAt = i
			}
		})
		if lastDone != len(jobs) || len(seen) != len(jobs) {
			t.Fatalf("workers=%d: each saw %d jobs (done=%d), want %d", workers, len(seen), lastDone, len(jobs))
		}
		if errAt != 3 || !errors.Is(errs[3], bad) {
			t.Fatalf("workers=%d: error reported at %d (errs[3]=%v), want job 3", workers, errAt, errs[3])
		}
		for i, j := range jobs {
			want := j * 2
			if i == 3 {
				want = 0
			}
			if results[i] != want || seen[i] != want {
				t.Fatalf("workers=%d: job %d result %d / hook %d, want %d", workers, i, results[i], seen[i], want)
			}
		}
	}
}
