package analysis

import (
	"math"
	"strings"
	"testing"

	"prefetchsim/internal/mem"
	"prefetchsim/internal/trace"
)

func mkMisses(pc trace.PC, blocks ...int64) []Miss {
	out := make([]Miss, len(blocks))
	for i, b := range blocks {
		out[i] = Miss{PC: pc, Block: mem.Block(b)}
	}
	return out
}

func TestPureStrideSequence(t *testing.T) {
	r := Analyze(mkMisses(1, 10, 12, 14, 16, 18))
	if r.TotalMisses != 5 || r.StrideMisses != 5 {
		t.Fatalf("misses %d/%d, want 5/5", r.StrideMisses, r.TotalMisses)
	}
	if r.FracInSequences() != 1.0 {
		t.Fatalf("fraction = %v, want 1", r.FracInSequences())
	}
	if r.AvgSeqLen() != 5 {
		t.Fatalf("avg length = %v, want 5", r.AvgSeqLen())
	}
	if d := r.Dominant(); d.Stride != 2 || d.Share != 1 {
		t.Fatalf("dominant = %+v, want stride 2, share 1", d)
	}
}

func TestTwoAccessesAreNotASequence(t *testing.T) {
	r := Analyze(mkMisses(1, 10, 12, 100, 300, 900))
	if r.StrideMisses != 0 {
		t.Fatalf("stride misses = %d, want 0 (runs shorter than %d)", r.StrideMisses, MinRun)
	}
}

func TestExactlyThreeEquidistantQualifies(t *testing.T) {
	r := Analyze(mkMisses(1, 10, 13, 16))
	if r.StrideMisses != 3 || r.Sequences != 1 {
		t.Fatalf("got %d misses in %d sequences, want 3 in 1", r.StrideMisses, r.Sequences)
	}
}

func TestInterleavedPCsAreSeparated(t *testing.T) {
	// Two load instructions with interleaved miss streams, each a clean
	// stride sequence: exactly the situation I-detection untangles.
	var misses []Miss
	for i := int64(0); i < 6; i++ {
		misses = append(misses, Miss{PC: 1, Block: mem.Block(100 + i)})
		misses = append(misses, Miss{PC: 2, Block: mem.Block(10000 + 21*i)})
	}
	r := Analyze(misses)
	if r.FracInSequences() != 1.0 {
		t.Fatalf("fraction = %v, want 1 (per-PC separation failed)", r.FracInSequences())
	}
	strides := r.Strides()
	if len(strides) != 2 {
		t.Fatalf("strides = %+v, want two entries", strides)
	}
	for _, s := range strides {
		if s.Stride != 1 && s.Stride != 21 {
			t.Fatalf("unexpected stride %d", s.Stride)
		}
		if math.Abs(s.Share-0.5) > 1e-9 {
			t.Fatalf("share = %v, want 0.5", s.Share)
		}
	}
}

func TestZeroStrideIgnored(t *testing.T) {
	r := Analyze(mkMisses(1, 5, 5, 5, 5, 5))
	if r.StrideMisses != 0 {
		t.Fatalf("repeated same-block misses counted as stride sequence: %d", r.StrideMisses)
	}
}

func TestNegativeStrideFolded(t *testing.T) {
	r := Analyze(mkMisses(1, 100, 96, 92, 88))
	if r.StrideMisses != 4 {
		t.Fatalf("descending run not detected: %d", r.StrideMisses)
	}
	if d := r.Dominant(); d.Stride != 4 {
		t.Fatalf("dominant stride = %d, want 4 (folded)", d.Stride)
	}
}

func TestRunBreaksOnStrideChange(t *testing.T) {
	// 1,2,3,4 then jump, then 100,102,104: two sequences.
	r := Analyze(mkMisses(1, 1, 2, 3, 4, 100, 102, 104))
	if r.Sequences != 2 {
		t.Fatalf("sequences = %d, want 2", r.Sequences)
	}
	// 4 + 3 misses in sequences; the jump access 100 belongs to the
	// second run's start.
	if r.StrideMisses != 7 {
		t.Fatalf("stride misses = %d, want 7", r.StrideMisses)
	}
	if got := r.AvgSeqLen(); math.Abs(got-3.5) > 1e-9 {
		t.Fatalf("avg length = %v, want 3.5", got)
	}
}

func TestMixedStrideAndNoise(t *testing.T) {
	misses := mkMisses(1, 10, 11, 12, 13, 14) // 5 in sequence
	misses = append(misses, mkMisses(2, 999, 5, 777, 123, 456)...)
	r := Analyze(misses)
	if got := r.FracInSequences(); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("fraction = %v, want 0.5", got)
	}
}

func TestEmptyStream(t *testing.T) {
	r := Analyze(nil)
	if r.FracInSequences() != 0 || r.AvgSeqLen() != 0 || r.Strides() != nil {
		t.Fatal("empty stream should produce zero-valued result")
	}
	if d := r.Dominant(); d.Stride != 0 || d.Share != 0 {
		t.Fatalf("Dominant on empty = %+v", d)
	}
}

func TestCollectorFiltersNode(t *testing.T) {
	c := &Collector{Node: 3}
	c.Observe(0, 1, 64)
	c.Observe(3, 2, 128)
	c.Observe(3, 2, 192)
	c.Observe(7, 1, 256)
	got := c.Misses()
	if len(got) != 2 || got[0].Block != 4 || got[1].Block != 6 {
		t.Fatalf("collected %+v", got)
	}
}

func TestStringFormat(t *testing.T) {
	r := Analyze(mkMisses(1, 10, 11, 12, 13))
	s := r.String()
	if !strings.Contains(s, "100.0%") || !strings.Contains(s, "stride 1") {
		t.Fatalf("report = %q", s)
	}
}

func TestDeterministicStrideOrdering(t *testing.T) {
	// Equal shares must order by stride value, not map order.
	var misses []Miss
	misses = append(misses, mkMisses(1, 0, 5, 10, 15)...) // stride 5
	misses = append(misses, mkMisses(2, 0, 3, 6, 9)...)   // stride 3
	for i := 0; i < 50; i++ {
		r := Analyze(misses)
		s := r.Strides()
		if s[0].Stride != 3 || s[1].Stride != 5 {
			t.Fatalf("iteration %d: unstable ordering %+v", i, s)
		}
	}
}

func TestMultiCollectorSeparatesNodes(t *testing.T) {
	c := NewMultiCollector(3)
	for i := 0; i < 4; i++ {
		c.Observe(0, 1, mem.Addr(i)*32) // stride 1 at node 0
		c.Observe(2, 1, mem.Addr(i*5)*32)
	}
	rs := c.Results()
	if rs[0].TotalMisses != 4 || rs[1].TotalMisses != 0 || rs[2].TotalMisses != 4 {
		t.Fatalf("per-node miss counts: %d/%d/%d", rs[0].TotalMisses, rs[1].TotalMisses, rs[2].TotalMisses)
	}
	if rs[0].Dominant().Stride != 1 || rs[2].Dominant().Stride != 5 {
		t.Fatalf("per-node strides: %d/%d", rs[0].Dominant().Stride, rs[2].Dominant().Stride)
	}
}

func TestBySiteGroupsAndOrders(t *testing.T) {
	var misses []Miss
	misses = append(misses, mkMisses(2, 10, 12, 14, 16)...) // 4 misses, stride 2
	misses = append(misses, mkMisses(1, 5, 900, 44)...)     // 3 misses, no stride
	sites := BySite(misses)
	if len(sites) != 2 {
		t.Fatalf("sites = %d", len(sites))
	}
	if sites[0].PC != 2 || sites[0].Misses != 4 || sites[0].Dominant != 2 {
		t.Fatalf("top site = %+v", sites[0])
	}
	if sites[1].PC != 1 || sites[1].StrideMisses != 0 || sites[1].Dominant != 0 {
		t.Fatalf("second site = %+v", sites[1])
	}
}

func TestBySiteEmpty(t *testing.T) {
	if got := BySite(nil); len(got) != 0 {
		t.Fatalf("BySite(nil) = %v", got)
	}
}
