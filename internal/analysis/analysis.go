// Package analysis computes the application characteristics of the
// paper's §5.1 (Table 2) and §5.3 (Table 3): the fraction of read
// misses that belong to stride sequences, the average length of those
// sequences, and the distribution of strides (in blocks).
//
// Following the paper's methodology, the analysis uses I-detection on
// the SLC read-miss stream of a single processor and requires at least
// three equidistant accesses from the same load instruction to call
// something a stride sequence.
package analysis

import (
	"fmt"
	"sort"
	"strings"

	"prefetchsim/internal/mem"
	"prefetchsim/internal/trace"
)

// MinRun is the paper's sequence criterion: at least three equidistant
// accesses from one load instruction.
const MinRun = 3

// Miss is one observed SLC read miss.
type Miss struct {
	PC    trace.PC
	Block mem.Block
}

// Collector gathers one processor's miss stream via the machine's
// MissObserver hook.
type Collector struct {
	// Node selects the processor to observe (the paper uses one
	// processor, "which has been shown to be representative").
	Node   int
	misses []Miss
}

// Observe is a machine.Config.MissObserver.
func (c *Collector) Observe(node int, pc trace.PC, addr mem.Addr) {
	if node == c.Node {
		c.misses = append(c.misses, Miss{PC: pc, Block: mem.BlockOf(addr)})
	}
}

// Misses returns the collected miss stream.
func (c *Collector) Misses() []Miss { return c.misses }

// StrideShare is one row of the stride distribution.
type StrideShare struct {
	Stride int64 // in blocks; negative strides are folded to positive
	// Share is the fraction of stride-sequence misses belonging to
	// sequences with this stride.
	Share float64
}

// Result summarizes a miss stream.
type Result struct {
	TotalMisses  int
	StrideMisses int // misses within stride sequences
	Sequences    int
	sumSeqLen    int
	hist         map[int64]int // |stride| in blocks → misses
}

// FracInSequences is Table 2's "read misses within stride sequences".
func (r Result) FracInSequences() float64 {
	if r.TotalMisses == 0 {
		return 0
	}
	return float64(r.StrideMisses) / float64(r.TotalMisses)
}

// AvgSeqLen is Table 2's "average length of sequence", in block
// references.
func (r Result) AvgSeqLen() float64 {
	if r.Sequences == 0 {
		return 0
	}
	return float64(r.sumSeqLen) / float64(r.Sequences)
}

// Strides returns the stride distribution sorted by descending share.
func (r Result) Strides() []StrideShare {
	if r.StrideMisses == 0 {
		return nil
	}
	out := make([]StrideShare, 0, len(r.hist))
	for s, c := range r.hist {
		out = append(out, StrideShare{Stride: s, Share: float64(c) / float64(r.StrideMisses)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Share != out[j].Share {
			return out[i].Share > out[j].Share
		}
		return out[i].Stride < out[j].Stride
	})
	return out
}

// Dominant returns the dominant stride and its share; zero-valued if no
// stride sequences were found.
func (r Result) Dominant() StrideShare {
	s := r.Strides()
	if len(s) == 0 {
		return StrideShare{}
	}
	return s[0]
}

// String renders the Table 2/3 row for this result.
func (r Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "misses %d, in stride sequences %.1f%%, avg length %.1f",
		r.TotalMisses, 100*r.FracInSequences(), r.AvgSeqLen())
	for i, s := range r.Strides() {
		if i == 2 || s.Share < 0.05 {
			break
		}
		fmt.Fprintf(&b, ", stride %d (%.0f%%)", s.Stride, 100*s.Share)
	}
	return b.String()
}

// Analyze computes the stride-sequence statistics of a miss stream.
// Misses from each load instruction are examined in order; maximal runs
// of at least MinRun equidistant block addresses (nonzero stride) form
// stride sequences.
func Analyze(misses []Miss) Result {
	r := Result{TotalMisses: len(misses), hist: make(map[int64]int)}

	byPC := make(map[trace.PC][]mem.Block)
	var order []trace.PC
	for _, m := range misses {
		if _, ok := byPC[m.PC]; !ok {
			order = append(order, m.PC)
		}
		byPC[m.PC] = append(byPC[m.PC], m.Block)
	}

	for _, pc := range order {
		blocks := byPC[pc]
		i := 0
		for i+1 < len(blocks) {
			stride := int64(blocks[i+1]) - int64(blocks[i])
			if stride == 0 {
				i++
				continue
			}
			j := i + 1
			for j+1 < len(blocks) && int64(blocks[j+1])-int64(blocks[j]) == stride {
				j++
			}
			runLen := j - i + 1
			if runLen >= MinRun {
				r.StrideMisses += runLen
				r.Sequences++
				r.sumSeqLen += runLen
				abs := stride
				if abs < 0 {
					abs = -abs
				}
				r.hist[abs] += runLen
			}
			i = j
		}
	}
	return r
}

// MultiCollector gathers every processor's miss stream, for the §5.1
// representativeness check (the paper analyzes one processor, "which
// has been shown to be representative").
type MultiCollector struct {
	misses [][]Miss
}

// NewMultiCollector returns a collector for nodes processors.
func NewMultiCollector(nodes int) *MultiCollector {
	return &MultiCollector{misses: make([][]Miss, nodes)}
}

// Observe is a machine.Config.MissObserver.
func (c *MultiCollector) Observe(node int, pc trace.PC, addr mem.Addr) {
	c.misses[node] = append(c.misses[node], Miss{PC: pc, Block: mem.BlockOf(addr)})
}

// Results analyzes every processor's stream.
func (c *MultiCollector) Results() []Result {
	out := make([]Result, len(c.misses))
	for i, m := range c.misses {
		out[i] = Analyze(m)
	}
	return out
}

// SiteStat summarizes one load site's miss stream: which static loads
// generate the misses, and with what stride behaviour. This is the
// per-instruction view an architect uses to decide where an RPT entry
// pays off.
type SiteStat struct {
	PC           trace.PC
	Misses       int
	StrideMisses int
	// Dominant is the site's most common stride in blocks (0 if the
	// site has no stride sequences).
	Dominant int64
}

// BySite groups a miss stream per load site, ordered by descending miss
// count.
func BySite(misses []Miss) []SiteStat {
	byPC := make(map[trace.PC][]Miss)
	var order []trace.PC
	for _, m := range misses {
		if _, ok := byPC[m.PC]; !ok {
			order = append(order, m.PC)
		}
		byPC[m.PC] = append(byPC[m.PC], m)
	}
	out := make([]SiteStat, 0, len(order))
	for _, pc := range order {
		r := Analyze(byPC[pc])
		st := SiteStat{PC: pc, Misses: r.TotalMisses, StrideMisses: r.StrideMisses}
		if d := r.Dominant(); d.Share > 0 {
			st.Dominant = d.Stride
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Misses != out[j].Misses {
			return out[i].Misses > out[j].Misses
		}
		return out[i].PC < out[j].PC
	})
	return out
}
