package coherence

import (
	"testing"
	"testing/quick"
)

func TestEntryMaterializesUncached(t *testing.T) {
	d := New(16)
	e := d.Entry(42)
	if e.State != Uncached || e.SharerCount() != 0 {
		t.Fatalf("fresh entry = %v with %d sharers", e.State, e.SharerCount())
	}
	if _, ok := d.Peek(42); !ok {
		t.Fatal("Entry did not materialize")
	}
	if _, ok := d.Peek(43); ok {
		t.Fatal("Peek materialized an entry")
	}
}

func TestSharerBookkeeping(t *testing.T) {
	e := &Entry{}
	e.AddSharer(3)
	e.AddSharer(0)
	e.AddSharer(15)
	e.AddSharer(3) // idempotent
	if e.SharerCount() != 3 {
		t.Fatalf("SharerCount = %d, want 3", e.SharerCount())
	}
	got := e.Sharers()
	want := []int{0, 3, 15}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Sharers() = %v, want %v (ascending)", got, want)
		}
	}
	if !e.IsSharer(3) || e.IsSharer(7) {
		t.Fatal("IsSharer wrong")
	}
	e.RemoveSharer(3)
	if e.IsSharer(3) || e.SharerCount() != 2 {
		t.Fatal("RemoveSharer wrong")
	}
	e.ClearSharers()
	if e.SharerCount() != 0 || e.Sharers() != nil {
		t.Fatal("ClearSharers wrong")
	}
}

func TestSharerCountMatchesList(t *testing.T) {
	f := func(bits uint16) bool {
		e := &Entry{}
		for n := 0; n < 16; n++ {
			if bits&(1<<n) != 0 {
				e.AddSharer(n)
			}
		}
		return e.SharerCount() == len(e.Sharers())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAcquireReleaseSerializes(t *testing.T) {
	e := &Entry{}
	var order []int
	if !e.Acquire(func() { t.Fatal("first Acquire must not queue") }) {
		t.Fatal("first Acquire did not proceed")
	}
	order = append(order, 1)
	if e.Acquire(func() { order = append(order, 2) }) {
		t.Fatal("second Acquire proceeded on busy entry")
	}
	if e.Acquire(func() { order = append(order, 3) }) {
		t.Fatal("third Acquire proceeded on busy entry")
	}
	e.Release() // runs waiter 2
	e.Release() // runs waiter 3
	e.Release() // frees
	if e.Busy() {
		t.Fatal("entry still busy after final release")
	}
	if len(order) != 3 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("waiters ran out of order: %v", order)
	}
}

func TestReleaseKeepsEntryBusyForWaiter(t *testing.T) {
	e := &Entry{}
	e.Acquire(nil)
	busyDuringWaiter := false
	e.Acquire(func() { busyDuringWaiter = e.Busy() })
	e.Release()
	if !busyDuringWaiter {
		t.Fatal("waiter ran with entry not busy")
	}
}

func TestReleaseNonBusyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Release of free entry did not panic")
		}
	}()
	(&Entry{}).Release()
}

func TestNewValidatesNodeCount(t *testing.T) {
	for _, bad := range []int{0, -1, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", bad)
				}
			}()
			New(bad)
		}()
	}
}

func TestEntryStateString(t *testing.T) {
	if Uncached.String() != "Uncached" || SharedClean.String() != "Shared" ||
		Dirty.String() != "Dirty" || EntryState(9).String() != "?" {
		t.Fatal("EntryState.String broken")
	}
}
