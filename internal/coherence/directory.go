// Package coherence implements the full-map directory state of the
// write-invalidate protocol (after Censier and Feautrier, paper §4).
// Each memory block's home node keeps a presence bit per processing
// node plus a dirty indication. The machine drives the protocol; this
// package owns the state, the presence bookkeeping, and the per-block
// transaction serialization queue that stands in for a real protocol's
// transient states (see DESIGN.md).
package coherence

import "prefetchsim/internal/mem"

// EntryState is the directory's view of a block.
type EntryState uint8

const (
	// Uncached: memory holds the only copy.
	Uncached EntryState = iota
	// SharedClean: memory is valid; one or more caches hold copies.
	SharedClean
	// Dirty: exactly one cache holds a modified copy; memory is stale.
	Dirty
)

func (s EntryState) String() string {
	switch s {
	case Uncached:
		return "Uncached"
	case SharedClean:
		return "Shared"
	case Dirty:
		return "Dirty"
	}
	return "?"
}

// Entry is the directory record of one block.
type Entry struct {
	State   EntryState
	sharers uint64 // presence bit vector (full map)
	Owner   int    // valid when State == Dirty

	busy    bool
	waiters []func()
}

// Directory holds entries for every block ever referenced. Blocks not
// present are Uncached; entries materialize on first use.
type Directory struct {
	nodes   int
	entries map[mem.Block]*Entry
}

// New returns a directory for a machine of nodes processing nodes
// (nodes <= 64).
func New(nodes int) *Directory {
	if nodes <= 0 || nodes > 64 {
		panic("coherence: node count must be in 1..64")
	}
	return &Directory{nodes: nodes, entries: make(map[mem.Block]*Entry, 1<<16)}
}

// Entry returns the directory entry for b, materializing an Uncached
// entry on first reference.
func (d *Directory) Entry(b mem.Block) *Entry {
	e, ok := d.entries[b]
	if !ok {
		e = &Entry{}
		d.entries[b] = e
	}
	return e
}

// Peek returns the entry for b without materializing one.
func (d *Directory) Peek(b mem.Block) (*Entry, bool) {
	e, ok := d.entries[b]
	return e, ok
}

// AddSharer sets node n's presence bit.
func (e *Entry) AddSharer(n int) { e.sharers |= 1 << uint(n) }

// RemoveSharer clears node n's presence bit.
func (e *Entry) RemoveSharer(n int) { e.sharers &^= 1 << uint(n) }

// IsSharer reports whether node n's presence bit is set.
func (e *Entry) IsSharer(n int) bool { return e.sharers&(1<<uint(n)) != 0 }

// ClearSharers drops all presence bits.
func (e *Entry) ClearSharers() { e.sharers = 0 }

// Sharers returns the nodes with presence bits set, in ascending order
// (deterministic iteration matters for reproducibility).
func (e *Entry) Sharers() []int {
	if e.sharers == 0 {
		return nil
	}
	out := make([]int, 0, 4)
	for v, n := e.sharers, 0; v != 0; v, n = v>>1, n+1 {
		if v&1 != 0 {
			out = append(out, n)
		}
	}
	return out
}

// SharerCount returns the number of presence bits set.
func (e *Entry) SharerCount() int {
	c := 0
	for v := e.sharers; v != 0; v &= v - 1 {
		c++
	}
	return c
}

// Acquire begins a transaction on the entry. If the entry is free it is
// marked busy and Acquire reports true: the caller proceeds
// immediately. Otherwise the continuation is queued and run (with the
// entry busy on its behalf) when the current transaction releases.
func (e *Entry) Acquire(cont func()) bool {
	if !e.busy {
		e.busy = true
		return true
	}
	e.waiters = append(e.waiters, cont)
	return false
}

// Release ends the current transaction. If transactions are queued the
// next one starts immediately (the entry stays busy and its
// continuation runs); otherwise the entry becomes free.
func (e *Entry) Release() {
	if !e.busy {
		panic("coherence: Release of a non-busy entry")
	}
	if len(e.waiters) == 0 {
		e.busy = false
		return
	}
	next := e.waiters[0]
	e.waiters = e.waiters[1:]
	next()
}

// Busy reports whether a transaction is in flight for the entry.
func (e *Entry) Busy() bool { return e.busy }
