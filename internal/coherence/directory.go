// Package coherence implements the full-map directory state of the
// write-invalidate protocol (after Censier and Feautrier, paper §4).
// Each memory block's home node keeps a presence bit per processing
// node plus a dirty indication. The machine drives the protocol; this
// package owns the state, the presence bookkeeping, and the per-block
// transaction serialization queue that stands in for a real protocol's
// transient states (see DESIGN.md).
package coherence

import (
	"prefetchsim/internal/blockmap"
	"prefetchsim/internal/mem"
)

// EntryState is the directory's view of a block.
type EntryState uint8

const (
	// Uncached: memory holds the only copy.
	Uncached EntryState = iota
	// SharedClean: memory is valid; one or more caches hold copies.
	SharedClean
	// Dirty: exactly one cache holds a modified copy; memory is stale.
	Dirty
)

func (s EntryState) String() string {
	switch s {
	case Uncached:
		return "Uncached"
	case SharedClean:
		return "Shared"
	case Dirty:
		return "Dirty"
	}
	return "?"
}

// Waiter is a queued transaction continuation. The machine passes
// pooled event objects, so queueing a waiter allocates nothing beyond
// the queue's backing array.
type Waiter interface {
	Run()
}

// funcWaiter adapts a plain func to Waiter for the closure-based
// Acquire form.
type funcWaiter func()

func (f funcWaiter) Run() { f() }

// Entry is the directory record of one block.
type Entry struct {
	State   EntryState
	sharers uint64 // presence bit vector (full map)
	Owner   int    // valid when State == Dirty

	busy    bool
	waiters []Waiter
}

// Directory holds entries for every block ever referenced. Blocks not
// present are Uncached; entries materialize on first use. Entries are
// slab-allocated in chunks — pointers stay stable for the directory's
// lifetime without one heap object per block.
type Directory struct {
	nodes   int
	entries blockmap.Table[*Entry]
	slab    []Entry
}

// entrySlab is how many entries materialize per slab allocation.
const entrySlab = 1024

// New returns a directory for a machine of nodes processing nodes
// (nodes <= 64).
func New(nodes int) *Directory {
	if nodes <= 0 || nodes > 64 {
		panic("coherence: node count must be in 1..64")
	}
	d := &Directory{nodes: nodes}
	d.entries.Reserve(1 << 16)
	return d
}

// Entry returns the directory entry for b, materializing an Uncached
// entry on first reference.
func (d *Directory) Entry(b mem.Block) *Entry {
	if e, ok := d.entries.Get(b); ok {
		return e
	}
	if len(d.slab) == 0 {
		d.slab = make([]Entry, entrySlab)
	}
	e := &d.slab[0]
	d.slab = d.slab[1:]
	d.entries.Put(b, e)
	return e
}

// Peek returns the entry for b without materializing one.
func (d *Directory) Peek(b mem.Block) (*Entry, bool) {
	return d.entries.Get(b)
}

// AddSharer sets node n's presence bit.
func (e *Entry) AddSharer(n int) { e.sharers |= 1 << uint(n) }

// RemoveSharer clears node n's presence bit.
func (e *Entry) RemoveSharer(n int) { e.sharers &^= 1 << uint(n) }

// IsSharer reports whether node n's presence bit is set.
func (e *Entry) IsSharer(n int) bool { return e.sharers&(1<<uint(n)) != 0 }

// ClearSharers drops all presence bits.
func (e *Entry) ClearSharers() { e.sharers = 0 }

// Bits returns the raw presence bit vector; bit n is node n. Hot paths
// iterate this directly (ascending node order) instead of materializing
// the Sharers slice.
func (e *Entry) Bits() uint64 { return e.sharers }

// Sharers returns the nodes with presence bits set, in ascending order
// (deterministic iteration matters for reproducibility).
func (e *Entry) Sharers() []int {
	if e.sharers == 0 {
		return nil
	}
	out := make([]int, 0, 4)
	for v, n := e.sharers, 0; v != 0; v, n = v>>1, n+1 {
		if v&1 != 0 {
			out = append(out, n)
		}
	}
	return out
}

// SharerCount returns the number of presence bits set.
func (e *Entry) SharerCount() int {
	c := 0
	for v := e.sharers; v != 0; v &= v - 1 {
		c++
	}
	return c
}

// Acquire begins a transaction on the entry. If the entry is free it is
// marked busy and Acquire reports true: the caller proceeds
// immediately. Otherwise the continuation is queued and run (with the
// entry busy on its behalf) when the current transaction releases.
func (e *Entry) Acquire(cont func()) bool {
	return e.AcquireWaiter(funcWaiter(cont))
}

// AcquireWaiter is Acquire for pooled waiters: nothing is allocated on
// either outcome beyond the waiter queue's backing array.
func (e *Entry) AcquireWaiter(w Waiter) bool {
	if !e.busy {
		e.busy = true
		return true
	}
	e.waiters = append(e.waiters, w)
	return false
}

// Release ends the current transaction. If transactions are queued the
// next one starts immediately (the entry stays busy and its
// continuation runs); otherwise the entry becomes free.
func (e *Entry) Release() {
	if !e.busy {
		panic("coherence: Release of a non-busy entry")
	}
	if len(e.waiters) == 0 {
		e.busy = false
		return
	}
	next := e.waiters[0]
	e.waiters[0] = nil
	e.waiters = e.waiters[1:]
	next.Run()
}

// Busy reports whether a transaction is in flight for the entry.
func (e *Entry) Busy() bool { return e.busy }
