package memsys

import (
	"testing"
	"testing/quick"

	"prefetchsim/internal/sim"
)

func TestAccessUncontendedLatency(t *testing.T) {
	var m Module
	// bus(3) + dir(4) + mem(9) + bus(3) = 19 pclocks.
	if got := m.Access(100); got != 119 {
		t.Fatalf("Access completes at %d, want 119", got)
	}
}

func TestControlUncontendedLatency(t *testing.T) {
	var m Module
	// bus(3) + dir(4) + bus(3) = 10 pclocks.
	if got := m.Control(100); got != 110 {
		t.Fatalf("Control completes at %d, want 110", got)
	}
}

func TestAccessBusContention(t *testing.T) {
	var m Module
	a := m.Access(0)
	b := m.Access(0) // second request waits for the bus
	if b <= a {
		t.Fatalf("contended access (%d) not delayed behind first (%d)", b, a)
	}
}

func TestInterleavedMemoryPipelines(t *testing.T) {
	// Back-to-back accesses should be limited by bus/bank pipelining
	// (every 3 pclocks), not serialized by the full 9-pclock latency.
	var m Module
	var prev sim.Time
	for i := 0; i < 10; i++ {
		done := m.Access(0)
		if i > 0 && done-prev > 2*BusCycle {
			t.Fatalf("access %d spaced %d pclocks after previous; memory not pipelined", i, done-prev)
		}
		prev = done
	}
}

func TestCounters(t *testing.T) {
	var m Module
	m.Access(0)
	m.Access(0)
	m.Control(0)
	if m.Accesses != 2 || m.Controls != 1 {
		t.Fatalf("counters = %d/%d, want 2/1", m.Accesses, m.Controls)
	}
	if m.BusBusy() == 0 {
		t.Fatal("bus busy time not accumulated")
	}
}

func TestCompletionNeverBeforeArrival(t *testing.T) {
	var m Module
	f := func(arr []uint16) bool {
		for _, a := range arr {
			t0 := sim.Time(a)
			if m.Access(t0) < t0+BusCycle+DirLatency+MemLatency+BusCycle {
				return false
			}
			if m.Control(t0) < t0+2*BusCycle+DirLatency {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
