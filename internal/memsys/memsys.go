// Package memsys models one node's local memory system: a 256-bit-wide
// split-transaction bus clocked at 33 MHz (3 pclocks per bus cycle), the
// directory controller, and fully interleaved DRAM with a 90 ns (9
// pclock) access time (paper §4, Table 1).
//
// A 32-byte block is exactly one 256-bit bus transfer, so every bus
// transaction — request or data — occupies the bus for a single bus
// cycle. Memory is fully interleaved, so banks are pipelined: a bank
// accepts a new access every bus cycle while each access takes the full
// 9-pclock latency.
package memsys

import "prefetchsim/internal/sim"

// Timing constants, in pclocks (1 pclock = 10 ns).
const (
	// BusCycle is one cycle of the 33 MHz local bus.
	BusCycle = 3
	// MemLatency is the DRAM access time (90 ns).
	MemLatency = 9
	// MemOccupancy is the per-bank pipeline interval of the fully
	// interleaved memory.
	MemOccupancy = 3
	// DirLatency is the directory controller lookup/update time.
	DirLatency = 4
)

// Module is one node's bus + directory + memory. The split-transaction
// bus is modelled as decoupled request and data phases, so a reply
// transfer never blocks a later request phase.
//
// BandwidthFactor (default 1) divides the memory system's bandwidth:
// a factor of k stretches every bus cycle and memory-bank occupancy by
// k, modelling a narrower/slower memory system without changing the
// unloaded latency composition more than proportionally. It drives the
// paper's closing claim that stride prefetching wins when "the
// memory-system bandwidth is limited" (§7).
type Module struct {
	busReq  sim.Resource
	busData sim.Resource
	mem     sim.Resource

	// BandwidthFactor divides bandwidth; 0 is treated as 1.
	BandwidthFactor int

	// Accesses counts memory-data accesses, Controls directory-only
	// transactions; both include locally and remotely initiated ones.
	Accesses int64
	Controls int64
}

// Access performs a transaction that reads or writes a memory block
// (read miss service, writeback): request bus cycle, directory lookup,
// DRAM access, data bus cycle. It returns the completion time for a
// request arriving at t.
func (m *Module) Access(t sim.Time) sim.Time {
	m.Accesses++
	cyc := m.busCycle()
	reqOnBus := m.busReq.Acquire(t, cyc) + cyc
	bank := m.mem.Acquire(reqOnBus, sim.Time(m.factor())*MemOccupancy)
	dataReady := bank + DirLatency + MemLatency
	dataOnBus := m.busData.Acquire(dataReady, cyc) + cyc
	return dataOnBus
}

func (m *Module) factor() int {
	if m.BandwidthFactor < 1 {
		return 1
	}
	return m.BandwidthFactor
}

func (m *Module) busCycle() sim.Time { return sim.Time(m.factor()) * BusCycle }

// Control performs a directory-only transaction (ownership upgrade with
// no data, ack collection, lock handling): request bus cycle, directory
// time, reply bus cycle.
func (m *Module) Control(t sim.Time) sim.Time {
	m.Controls++
	cyc := m.busCycle()
	reqOnBus := m.busReq.Acquire(t, cyc) + cyc
	done := reqOnBus + DirLatency
	replyOnBus := m.busData.Acquire(done, cyc) + cyc
	return replyOnBus
}

// BusBusy returns accumulated bus busy time across both phases, for
// utilization reporting.
func (m *Module) BusBusy() sim.Time { return m.busReq.Busy + m.busData.Busy }
