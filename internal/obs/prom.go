package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
)

// The Prometheus text exposition (format 0.0.4) of a Registry: the
// serving-path export next to Snapshot's flat JSON view. The encoder
// works from the registry's typed entries rather than a Snapshot
// because a proper Prometheus histogram needs the bucket structure —
// cumulative "le" counts, a +Inf bucket — that Snapshot's flattened
// ".lt<bound>" samples have already collapsed.
//
// Rendering rules:
//
//   - Names are sanitized with PromName: every rune outside
//     [a-zA-Z0-9_:] (the instruments' dots especially) becomes '_',
//     and a leading digit gets a '_' prefix.
//   - A counter "x.y" renders as "x_y_total" (the _total convention);
//     names already ending in "_total"/".total" are not doubled.
//   - A gauge renders as two gauges: the level and "<name>_max", the
//     high-water mark.
//   - A histogram renders with cumulative buckets. Instrument buckets
//     hold integer values by bit length (bucket i: v in [2^(i-1),
//     2^i), bucket 0: v <= 0), so the inclusive Prometheus bound of
//     bucket i is exactly 2^i - 1; the last bucket is +Inf.
//
// Every metric carries a HELP line echoing the instrument's original
// dotted name, which documents the sanitized-to-registry mapping for
// anyone reading a scrape.

// PromContentType is the Content-Type of the text exposition format.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// PromName sanitizes an instrument name into a valid Prometheus metric
// name: [a-zA-Z_:][a-zA-Z0-9_:]*.
func PromName(name string) string {
	if name == "" {
		return "_"
	}
	b := []byte(name)
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return PromName("_" + name)
			}
		default:
			b[i] = '_'
		}
	}
	return string(b)
}

// promCounterName applies the _total suffix convention.
func promCounterName(name string) string {
	n := PromName(name)
	if len(n) >= 6 && n[len(n)-6:] == "_total" {
		return n
	}
	return n + "_total"
}

// WritePrometheus renders every bound instrument as Prometheus text
// exposition, sorted by metric name for a stable scrape.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	entries := make([]entry, len(r.entries))
	copy(entries, r.entries)
	r.mu.Unlock()

	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })
	pw := &promWriter{w: w}
	for i := range entries {
		entries[i].writeProm(pw)
	}
	return pw.err
}

// promWriter accumulates the first write error so the per-entry
// renderers stay unconditional.
type promWriter struct {
	w   io.Writer
	err error
}

func (pw *promWriter) printf(format string, args ...any) {
	if pw.err != nil {
		return
	}
	_, pw.err = fmt.Fprintf(pw.w, format, args...)
}

func (pw *promWriter) head(name, dotted, typ string) {
	pw.printf("# HELP %s instrument %q\n# TYPE %s %s\n", name, dotted, name, typ)
}

func (e *entry) writeProm(pw *promWriter) {
	switch {
	case e.c != nil:
		e.promCounter(pw, e.c.Value())
	case e.ac != nil:
		e.promCounter(pw, e.ac.Value())
	case e.g != nil:
		e.promGauge(pw, e.g.Value(), e.g.Max())
	case e.ag != nil:
		e.promGauge(pw, e.ag.Value(), e.ag.Max())
	case e.h != nil:
		e.promHistogram(pw, e.h.Count(), e.h.Sum(), e.h.Bucket)
	case e.ah != nil:
		e.promHistogram(pw, e.ah.Count(), e.ah.Sum(), e.ah.Bucket)
	}
}

func (e *entry) promCounter(pw *promWriter, v int64) {
	name := promCounterName(e.name)
	pw.head(name, e.name, "counter")
	pw.printf("%s %d\n", name, v)
}

func (e *entry) promGauge(pw *promWriter, v, max int64) {
	name := PromName(e.name)
	pw.head(name, e.name, "gauge")
	pw.printf("%s %d\n", name, v)
	pw.head(name+"_max", e.name+".max", "gauge")
	pw.printf("%s_max %d\n", name, max)
}

func (e *entry) promHistogram(pw *promWriter, count, sum int64, bucket func(int) int64) {
	name := PromName(e.name)
	pw.head(name, e.name, "histogram")
	var cum int64
	for i := 0; i < HistBuckets; i++ {
		cum += bucket(i)
		if i == HistBuckets-1 {
			pw.printf("%s_bucket{le=\"+Inf\"} %d\n", name, cum)
		} else {
			pw.printf("%s_bucket{le=\"%s\"} %d\n", name, strconv.FormatInt(BucketBound(i)-1, 10), cum)
		}
	}
	pw.printf("%s_sum %d\n", name, sum)
	pw.printf("%s_count %d\n", name, count)
}
