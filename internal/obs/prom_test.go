package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestPromName(t *testing.T) {
	t.Parallel()
	for _, tc := range []struct{ in, want string }{
		{"jobs.done", "jobs_done"},
		{"node3.miss.cold", "node3_miss_cold"},
		{"already_fine", "already_fine"},
		{"with:colon", "with:colon"},
		{"9leading", "_9leading"},
		{"sweep/rows-sent", "sweep_rows_sent"},
		{"", "_"},
		{"ünïcode", "__n__code"}, // multi-byte runes sanitize per byte
	} {
		if got := PromName(tc.in); got != tc.want {
			t.Errorf("PromName(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// TestWritePrometheusGolden pins the exposition byte for byte: HELP and
// TYPE lines, the counter _total convention, gauge + high-water pairs,
// histogram cumulative buckets with exact integer bounds and +Inf, and
// name sanitization — for both the plain and the atomic instrument
// variants.
func TestWritePrometheusGolden(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	r.Counter("jobs.done").Add(7)
	r.AtomicCounter("resultcache.hits").Add(3)
	r.Counter("rows.total").Add(9) // already suffixed: not doubled
	g := r.Gauge("queue.depth")
	g.Set(5)
	g.Set(2)
	ag := r.AtomicGauge("sse.subscribers")
	ag.Add(4)
	ag.Add(-4)
	h := r.Histogram("wait.us")
	for _, v := range []int64{0, 1, 1, 3, 1 << 30} { // bucket 0, 1 (x2), 2, last
		h.Observe(v)
	}
	ah := r.AtomicHistogram("run.us")
	ah.Observe(2)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	got := b.String()

	want := `# HELP jobs_done_total instrument "jobs.done"
# TYPE jobs_done_total counter
jobs_done_total 7
# HELP queue_depth instrument "queue.depth"
# TYPE queue_depth gauge
queue_depth 2
# HELP queue_depth_max instrument "queue.depth.max"
# TYPE queue_depth_max gauge
queue_depth_max 5
# HELP resultcache_hits_total instrument "resultcache.hits"
# TYPE resultcache_hits_total counter
resultcache_hits_total 3
# HELP rows_total instrument "rows.total"
# TYPE rows_total counter
rows_total 9
# HELP run_us instrument "run.us"
# TYPE run_us histogram
run_us_bucket{le="0"} 0
run_us_bucket{le="1"} 0
run_us_bucket{le="3"} 1
`
	if !strings.HasPrefix(got, want) {
		t.Fatalf("exposition prefix mismatch:\ngot:\n%s\nwant prefix:\n%s", got, want)
	}

	// The full run.us histogram: the single observation (value 2) stays
	// cumulative through every later bucket, sum and count close it out.
	for _, line := range []string{
		`run_us_bucket{le="7"} 1`,
		`run_us_bucket{le="262143"} 1`,
		`run_us_bucket{le="+Inf"} 1`,
		"run_us_sum 2",
		"run_us_count 1",
		// sse.subscribers returned to zero but the high-water mark holds.
		"sse_subscribers 0",
		"sse_subscribers_max 4",
		// wait.us: 0 and three small values cumulate, the 2^30 outlier
		// only lands in +Inf.
		`wait_us_bucket{le="0"} 1`,
		`wait_us_bucket{le="1"} 3`,
		`wait_us_bucket{le="3"} 4`,
		`wait_us_bucket{le="262143"} 4`,
		`wait_us_bucket{le="+Inf"} 5`,
		"wait_us_sum 1073741829",
		"wait_us_count 5",
	} {
		if !strings.Contains(got, line+"\n") {
			t.Errorf("exposition missing line %q\nfull output:\n%s", line, got)
		}
	}
}

// TestAtomicInstrumentsConcurrent hammers the atomic variants from
// many goroutines and checks the totals are exact (run under -race in
// CI).
func TestAtomicInstrumentsConcurrent(t *testing.T) {
	t.Parallel()
	var (
		c  AtomicCounter
		g  AtomicGauge
		h  AtomicHistogram
		wg sync.WaitGroup
	)
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(int64(i % 7))
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Errorf("counter = %d, want %d", c.Value(), workers*per)
	}
	if g.Value() != 0 {
		t.Errorf("gauge = %d, want 0", g.Value())
	}
	if g.Max() < 1 || g.Max() > workers {
		t.Errorf("gauge max = %d, want 1..%d", g.Max(), workers)
	}
	if h.Count() != workers*per {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*per)
	}
	var bucketSum int64
	for i := 0; i < HistBuckets; i++ {
		bucketSum += h.Bucket(i)
	}
	if bucketSum != h.Count() {
		t.Errorf("bucket sum %d != count %d", bucketSum, h.Count())
	}
}

// TestAtomicSnapshot: atomic instruments render in Snapshots exactly
// like their plain counterparts.
func TestAtomicSnapshot(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	r.AtomicCounter("c").Add(2)
	r.AtomicGauge("g").Set(3)
	r.AtomicHistogram("h").Observe(5)
	m := r.Snapshot().Map()
	for name, want := range map[string]int64{
		"c": 2, "g": 3, "g.max": 3, "h.count": 1, "h.sum": 5, "h.lt8": 1,
	} {
		if m[name] != want {
			t.Errorf("snapshot[%q] = %d, want %d (full: %v)", name, m[name], want, m)
		}
	}
}
