package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// txSpan builds a transaction span with known hop latencies: issue at
// t, then 1, 2, 3, 4, 5, 6 pclocks per hop in pipeline order.
func txSpan(t int64, cls SpanClass) Span {
	return Span{
		Issue: t, Req: t + 1, Home: t + 3, Svc: t + 6,
		Reply: t + 10, Arrive: t + 15, Done: t + 21,
		Demand: -1, Wait: 7, Block: 42, Node: 1, Class: cls,
	}
}

func TestSpanRecorderAggregates(t *testing.T) {
	r := NewSpanRecorder(SpanConfig{Cap: 8})
	r.Complete(txSpan(100, SpanMissCold))
	r.Complete(txSpan(200, SpanMissCold))
	r.Complete(Span{Issue: 50, Done: 60, Wait: 4, Class: SpanAcquire, Demand: -1})

	st := r.Stats()
	cold := st.Class(SpanMissCold)
	if cold.Count != 2 || cold.TotalPclocks != 42 || cold.WaitPclocks != 14 {
		t.Fatalf("cold = %+v", cold)
	}
	// Hop sums: two spans, each with 1/2/3/4/5/6 pclock hops.
	if cold.Queue != 2 || cold.ReqNet != 4 || cold.Dir != 6 ||
		cold.Service != 8 || cold.ReplyNet != 10 || cold.Fill != 12 {
		t.Fatalf("cold hops = %+v", cold)
	}
	if got := cold.Latency.Count(); got != 2 {
		t.Fatalf("latency histogram count = %d, want 2", got)
	}
	acq := st.Class(SpanAcquire)
	if acq.Count != 1 || acq.TotalPclocks != 10 || acq.WaitPclocks != 4 {
		t.Fatalf("acquire = %+v", acq)
	}
	// Local stall classes contribute no hop sums.
	if acq.Queue != 0 || acq.Fill != 0 {
		t.Fatalf("acquire has hop sums: %+v", acq)
	}
}

// TestSpanRecorderSamplingWrap: sampling and ring wrap drop raw spans
// but never aggregate counts, and the summary partitions Seen.
func TestSpanRecorderSamplingWrap(t *testing.T) {
	r := NewSpanRecorder(SpanConfig{Cap: 4, Sample: 3})
	const n = 100
	for i := 0; i < n; i++ {
		r.Complete(txSpan(int64(i*30), SpanPrefetch))
	}
	if got := r.Stats().Class(SpanPrefetch).Count; got != n {
		t.Fatalf("aggregate count = %d, want %d (sampling must not drop aggregates)", got, n)
	}
	sum := r.Summary()
	if sum.Seen != n || sum.Kept != 4 || sum.Sampled != 66 || sum.Dropped != 30 {
		t.Fatalf("summary = %+v", sum)
	}
	if sum.Kept+sum.Dropped+sum.Sampled != sum.Seen {
		t.Fatalf("counters do not partition Seen: %+v", sum)
	}
	// Kept spans are the newest stored samples, chronological.
	spans := r.Spans()
	if len(spans) != 4 {
		t.Fatalf("%d spans, want 4", len(spans))
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].Issue <= spans[i-1].Issue {
			t.Fatalf("spans out of order: %d then %d", spans[i-1].Issue, spans[i].Issue)
		}
	}
}

func TestSpanJSONRoundTrip(t *testing.T) {
	s := txSpan(1000, SpanPrefetchLate)
	s.Demand = 1005
	line := string(s.AppendJSON(nil))
	var got struct {
		Class  string `json:"class"`
		Node   int32  `json:"node"`
		Block  uint64 `json:"block"`
		Issue  int64  `json:"issue"`
		Req    int64  `json:"req"`
		Home   int64  `json:"home"`
		Svc    int64  `json:"svc"`
		Reply  int64  `json:"reply"`
		Arrive int64  `json:"arrive"`
		Done   int64  `json:"done"`
		Demand int64  `json:"demand"`
		Wait   int64  `json:"wait"`
	}
	if err := json.Unmarshal([]byte(line), &got); err != nil {
		t.Fatalf("AppendJSON output not JSON: %v (%s)", err, line)
	}
	if got.Class != "prefetch.late" || got.Node != 1 || got.Block != 42 ||
		got.Issue != 1000 || got.Req != 1001 || got.Home != 1003 ||
		got.Svc != 1006 || got.Reply != 1010 || got.Arrive != 1015 ||
		got.Done != 1021 || got.Demand != 1005 || got.Wait != 7 {
		t.Fatalf("round trip = %+v (%s)", got, line)
	}
}

func TestSpanFlushDrainOnce(t *testing.T) {
	var buf bytes.Buffer
	r := NewSpanRecorder(SpanConfig{W: &buf, Cap: 8})
	r.Complete(txSpan(1, SpanWrite))
	r.Complete(txSpan(2, SpanWrite))
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	first := buf.String()
	if got := strings.Count(first, "\n"); got != 2 {
		t.Fatalf("first flush wrote %d lines, want 2", got)
	}
	r.Complete(txSpan(3, SpanWrite))
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.String() != first {
		t.Fatal("second Flush wrote more output")
	}
}

func TestSpanClassNames(t *testing.T) {
	for c := SpanClass(0); c < NumSpanClasses; c++ {
		name := c.String()
		if name == "" || name == "unknown" {
			t.Fatalf("class %d has no name", c)
		}
		back, ok := ParseSpanClass(name)
		if !ok || back != c {
			t.Fatalf("ParseSpanClass(%q) = %v, %v; want %v", name, back, ok, c)
		}
	}
	if _, ok := ParseSpanClass("nosuchclass"); ok {
		t.Fatal("ParseSpanClass accepted an unknown name")
	}
	// The first three span classes mirror the trace miss constants, so
	// a classified miss converts to a span class by value.
	if SpanClass(MissCold) != SpanMissCold ||
		SpanClass(MissCoherence) != SpanMissCoherence ||
		SpanClass(MissReplacement) != SpanMissReplacement {
		t.Fatal("span miss classes diverge from trace miss constants")
	}
}

func TestSummarizeSpanStats(t *testing.T) {
	r := NewSpanRecorder(SpanConfig{Cap: 8})
	r.Complete(txSpan(0, SpanMissCold))
	r.Complete(txSpan(30, SpanMissCold))
	r.ObserveIdle(100)
	r.ObserveIdle(50)

	sum := r.Summarize()
	if sum.Ring.Seen != 2 || sum.Ring.Kept != 2 {
		t.Fatalf("ring = %+v", sum.Ring)
	}
	if len(sum.Classes) != 1 {
		t.Fatalf("classes = %v (empty classes must be omitted)", sum.Classes)
	}
	cs, ok := sum.Classes["miss.cold"]
	if !ok || cs.Count != 2 || cs.TotalPclocks != 42 || cs.WaitPclocks != 14 {
		t.Fatalf("miss.cold = %+v ok=%v", cs, ok)
	}
	if sum.IdleCount != 2 || sum.IdlePclocks != 150 {
		t.Fatalf("idle = %d/%d", sum.IdleCount, sum.IdlePclocks)
	}
	// The summary is JSON-stable for manifests.
	b, err := json.Marshal(sum)
	if err != nil {
		t.Fatal(err)
	}
	var back SpanSummary
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Classes["miss.cold"].Count != 2 || back.IdlePclocks != 150 {
		t.Fatalf("JSON round trip = %+v", back)
	}
}
