package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestTimelineDisabled(t *testing.T) {
	if tl := NewTimeline(TimelineConfig{}); tl != nil {
		t.Fatal("zero window must disable the timeline")
	}
	if tl := NewTimeline(TimelineConfig{Window: -5}); tl != nil {
		t.Fatal("negative window must disable the timeline")
	}
}

func TestTimelineDeltas(t *testing.T) {
	tl := NewTimeline(TimelineConfig{Window: 100})
	tl.Record(TimePoint{T: 100, Reads: 50, Misses: 5, ReadStall: 40, SLWB: 3, NetFlits: 200})
	tl.Record(TimePoint{T: 200, Reads: 120, Misses: 6, ReadStall: 90, SLWB: 1, NetFlits: 450})

	pts := tl.Points()
	if len(pts) != 2 {
		t.Fatalf("%d points, want 2", len(pts))
	}
	// First window is the delta from zero.
	if p := pts[0]; p.T != 100 || p.Reads != 50 || p.Misses != 5 || p.ReadStall != 40 {
		t.Fatalf("window 0 = %+v", p)
	}
	// Second window differences the cumulative counters...
	if p := pts[1]; p.Reads != 70 || p.Misses != 1 || p.ReadStall != 50 || p.NetFlits != 250 {
		t.Fatalf("window 1 = %+v", p)
	}
	// ...but T and the SLWB occupancy gauge pass through as instants.
	if pts[1].T != 200 || pts[1].SLWB != 1 || pts[0].SLWB != 3 {
		t.Fatalf("instant fields differenced: %+v", pts)
	}
	if sum := tl.Summarize(); sum.WindowPclocks != 100 || sum.Points != 2 {
		t.Fatalf("summary = %+v", sum)
	}
}

// TestTimelineBoundaryDedup: a final snapshot at the same T as the
// last window (run ended exactly on a boundary) must not add an empty
// duplicate window.
func TestTimelineBoundaryDedup(t *testing.T) {
	tl := NewTimeline(TimelineConfig{Window: 100})
	tl.Record(TimePoint{T: 100, Reads: 10})
	tl.Record(TimePoint{T: 100, Reads: 10})
	if got := len(tl.Points()); got != 1 {
		t.Fatalf("%d points, want 1", got)
	}
	// An end-of-run snapshot landing before the last closed window
	// (events drained past processor completion) is dropped too.
	tl.Record(TimePoint{T: 60, Reads: 8})
	if got := len(tl.Points()); got != 1 {
		t.Fatalf("%d points after backwards snapshot, want 1", got)
	}
	// A later final partial window still records.
	tl.Record(TimePoint{T: 130, Reads: 14})
	pts := tl.Points()
	if len(pts) != 2 || pts[1].T != 130 || pts[1].Reads != 4 {
		t.Fatalf("points = %+v", pts)
	}
}

func TestTimelineJSONAndDrainOnce(t *testing.T) {
	var buf bytes.Buffer
	tl := NewTimeline(TimelineConfig{Window: 10, W: &buf})
	tl.Record(TimePoint{T: 10, Reads: 3, Writes: 1, PrefIssued: 2, Events: 9})
	if err := tl.Flush(); err != nil {
		t.Fatal(err)
	}
	first := buf.String()
	if strings.Count(first, "\n") != 1 {
		t.Fatalf("flush wrote %q, want one line", first)
	}
	var p TimePoint
	if err := json.Unmarshal([]byte(first), &p); err != nil {
		t.Fatalf("flushed line not JSON: %v (%s)", err, first)
	}
	if p.T != 10 || p.Reads != 3 || p.Writes != 1 || p.PrefIssued != 2 || p.Events != 9 {
		t.Fatalf("round trip = %+v", p)
	}
	tl.Record(TimePoint{T: 20, Reads: 5})
	if err := tl.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.String() != first {
		t.Fatal("second Flush wrote more output")
	}
}
