package obs

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// ManifestSchema is the current manifest document version. Readers
// reject documents whose schema they do not know, so the format can
// evolve without silently misparsing old records.
const ManifestSchema = 1

// RunConfig is the flat, JSON-stable view of one simulation's
// configuration: every scalar knob that shapes the result, and nothing
// that cannot round-trip (no programs, no callbacks).
type RunConfig struct {
	App                   string `json:"app"`
	Scheme                string `json:"scheme"`
	Degree                int    `json:"degree"`
	Processors            int    `json:"processors"`
	SLCBytes              int    `json:"slc_bytes"`
	SLCWays               int    `json:"slc_ways"`
	Scale                 int    `json:"scale"`
	Seed                  uint64 `json:"seed"`
	SequentialConsistency bool   `json:"sequential_consistency"`
	BandwidthFactor       int    `json:"bandwidth_factor"`
}

// Digest is the content address of the configuration: the SHA-256 of
// its canonical JSON encoding (fixed field order, no indentation).
// Every knob that shapes a run's result — including the seed — is part
// of RunConfig, so two runs with equal digests produce byte-identical
// statistics, which is what lets a result cache serve the second one
// without simulating.
func (c RunConfig) Digest() string {
	buf, err := json.Marshal(c)
	if err != nil {
		// RunConfig is a flat struct of scalars; Marshal cannot fail.
		panic("obs: marshal RunConfig: " + err.Error())
	}
	sum := sha256.Sum256(buf)
	return hex.EncodeToString(sum[:])
}

// Manifest is the provenance record of one simulation run: enough to
// reproduce it (config, seed, toolchain, source revision) and enough
// to check it (the stats digest and the metric totals). One run, one
// JSON document.
type Manifest struct {
	Schema        int       `json:"schema"`
	GoVersion     string    `json:"go_version"`
	GitSHA        string    `json:"git_sha,omitempty"`
	CreatedUnixNS int64     `json:"created_unix_ns,omitempty"`
	Config        RunConfig `json:"config"`
	// ConfigDigest is Config.Digest(): the content address a result
	// cache keys this run under.
	ConfigDigest string `json:"config_digest,omitempty"`
	// WallNS is the run's host wall-clock duration.
	WallNS int64 `json:"wall_ns"`
	// VirtualTime is the simulated execution time in pclocks.
	VirtualTime int64 `json:"virtual_time"`
	// StatsDigest is the canonical SHA-256 digest of every statistic
	// of the run — the golden-test currency, now a run artifact.
	StatsDigest string `json:"stats_digest"`
	// Metrics holds the machine-wide metric totals (Snapshot.Totals).
	Metrics map[string]int64 `json:"metrics,omitempty"`
	// Trace summarizes the event trace, when one was recorded.
	Trace *TraceSummary `json:"trace,omitempty"`
	// Spans summarizes the transaction-span recording, when one was
	// collected (ring counters + exact per-class aggregates).
	Spans *SpanSummary `json:"spans,omitempty"`
	// Timeline summarizes the windowed time-series, when one was
	// collected.
	Timeline *TimelineSummary `json:"timeline,omitempty"`
}

// SweepManifest aggregates one experiment sweep: the invocation, the
// digest of the rows it produced, and (when the sweep collects them)
// the per-run manifests.
type SweepManifest struct {
	Schema        int    `json:"schema"`
	GoVersion     string `json:"go_version"`
	GitSHA        string `json:"git_sha,omitempty"`
	CreatedUnixNS int64  `json:"created_unix_ns,omitempty"`
	// Tool and Args record the generating command.
	Tool string   `json:"tool"`
	Args []string `json:"args,omitempty"`
	// WallNS is the whole sweep's host wall-clock duration.
	WallNS int64 `json:"wall_ns"`
	// Rows counts emitted result rows; RowsDigest is their canonical
	// SHA-256 digest (DigestStrings over the rendered rows).
	Rows       int    `json:"rows"`
	RowsDigest string `json:"rows_digest"`
	// Runs holds the per-run manifests, in sweep submission order.
	Runs []Manifest `json:"runs,omitempty"`
}

// DigestStrings is the canonical line digest used for stats digests
// and sweep row digests: SHA-256 over the lines, each terminated with
// a newline.
func DigestStrings(lines []string) string {
	h := sha256.New()
	for _, l := range lines {
		fmt.Fprintln(h, l)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Encode writes m as indented JSON followed by a newline.
func (m *Manifest) Encode(w io.Writer) error { return encodeJSON(w, m) }

// Encode writes m as indented JSON followed by a newline.
func (m *SweepManifest) Encode(w io.Writer) error { return encodeJSON(w, m) }

func encodeJSON(w io.Writer, v any) error {
	buf, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: encode manifest: %w", err)
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}

// DecodeManifest parses a run manifest, rejecting unknown schemas.
func DecodeManifest(r io.Reader) (*Manifest, error) {
	var m Manifest
	if err := decodeJSON(r, &m); err != nil {
		return nil, err
	}
	if m.Schema != ManifestSchema {
		return nil, fmt.Errorf("obs: manifest schema %d, want %d", m.Schema, ManifestSchema)
	}
	return &m, nil
}

// DecodeSweepManifest parses a sweep manifest, rejecting unknown
// schemas.
func DecodeSweepManifest(r io.Reader) (*SweepManifest, error) {
	var m SweepManifest
	if err := decodeJSON(r, &m); err != nil {
		return nil, err
	}
	if m.Schema != ManifestSchema {
		return nil, fmt.Errorf("obs: sweep manifest schema %d, want %d", m.Schema, ManifestSchema)
	}
	return &m, nil
}

func decodeJSON(r io.Reader, v any) error {
	data, err := io.ReadAll(r)
	if err != nil {
		return fmt.Errorf("obs: read manifest: %w", err)
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("obs: parse manifest: %w", err)
	}
	return nil
}

// WriteFile writes m to path.
func (m *Manifest) WriteFile(path string) error { return writeFile(path, m.Encode) }

// WriteFile writes m to path.
func (m *SweepManifest) WriteFile(path string) error { return writeFile(path, m.Encode) }

func writeFile(path string, encode func(io.Writer) error) error {
	var buf bytes.Buffer
	if err := encode(&buf); err != nil {
		return err
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

// ReadManifestFile loads a run manifest from path.
func ReadManifestFile(path string) (*Manifest, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return DecodeManifest(f)
}

// repoSHA memoizes GitSHA(".") — the revision is immutable for the
// life of the process, and both per-run manifests and serving-path
// build info want it without repeating the .git walk.
var repoSHA struct {
	sync.Once
	v string
}

// RepoSHA returns the process-wide memoized GitSHA of the current
// working directory's repository ("" outside a checkout).
func RepoSHA() string {
	repoSHA.Do(func() { repoSHA.v = GitSHA(".") })
	return repoSHA.v
}

// GitSHA best-effort resolves the current commit of the repository
// containing dir by reading .git directly (no subprocess): HEAD, the
// ref file it points at, or packed-refs. It returns "" when dir is not
// inside a git checkout or the layout is unrecognized.
func GitSHA(dir string) string {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return ""
	}
	for d := abs; ; d = filepath.Dir(d) {
		if sha := gitSHAAt(filepath.Join(d, ".git")); sha != "" {
			return sha
		}
		if filepath.Dir(d) == d {
			return ""
		}
	}
}

func gitSHAAt(gitDir string) string {
	head, err := os.ReadFile(filepath.Join(gitDir, "HEAD"))
	if err != nil {
		return ""
	}
	h := strings.TrimSpace(string(head))
	if !strings.HasPrefix(h, "ref: ") {
		return plausibleSHA(h)
	}
	ref := strings.TrimSpace(strings.TrimPrefix(h, "ref: "))
	if b, err := os.ReadFile(filepath.Join(gitDir, filepath.FromSlash(ref))); err == nil {
		return plausibleSHA(strings.TrimSpace(string(b)))
	}
	// Ref may only exist packed.
	packed, err := os.ReadFile(filepath.Join(gitDir, "packed-refs"))
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(packed), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[1] == ref {
			return plausibleSHA(fields[0])
		}
	}
	return ""
}

// plausibleSHA accepts 40- or 64-hex-digit object names.
func plausibleSHA(s string) string {
	if len(s) != 40 && len(s) != 64 {
		return ""
	}
	for _, c := range s {
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return ""
		}
	}
	return s
}
