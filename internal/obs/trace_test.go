package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestTracerKeepsAll(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(TraceConfig{W: &buf, Cap: 8})
	tr.Emit(EvMiss, 3, 100, 42, MissCold)
	tr.Emit(EvPrefetch, 3, 105, 43, 0)
	tr.Emit(EvAck, 1, 250, 42, AckReadFill)

	sum := tr.Summary()
	if sum.Seen != 3 || sum.Kept != 3 || sum.Dropped != 0 || sum.Sampled != 0 {
		t.Fatalf("summary = %+v", sum)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("flushed %d lines, want 3:\n%s", len(lines), buf.String())
	}
	// Every line is a valid JSON object with the expected fields.
	var first struct {
		T     int64  `json:"t"`
		Node  int32  `json:"node"`
		Kind  string `json:"kind"`
		Block uint64 `json:"block"`
		Arg   uint8  `json:"arg"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 0 not JSON: %v (%s)", err, lines[0])
	}
	if first.T != 100 || first.Node != 3 || first.Kind != "miss" || first.Block != 42 || first.Arg != MissCold {
		t.Fatalf("line 0 = %+v", first)
	}
}

func TestTracerRingWrap(t *testing.T) {
	tr := NewTracer(TraceConfig{Cap: 4})
	for i := 0; i < 10; i++ {
		tr.Emit(EvMiss, 0, int64(i), uint64(i), 0)
	}
	sum := tr.Summary()
	if sum.Seen != 10 || sum.Kept != 4 || sum.Dropped != 6 {
		t.Fatalf("summary = %+v", sum)
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("%d events, want 4", len(evs))
	}
	// The ring keeps the tail of the run, in order.
	for i, e := range evs {
		if e.T != int64(6+i) {
			t.Fatalf("event %d at t=%d, want %d", i, e.T, 6+i)
		}
	}
}

func TestTracerSampling(t *testing.T) {
	tr := NewTracer(TraceConfig{Cap: 64, Sample: 3})
	for i := 0; i < 9; i++ {
		tr.Emit(EvInvalidate, 0, int64(i), 0, 0)
	}
	sum := tr.Summary()
	if sum.Seen != 9 || sum.Kept != 3 || sum.Sampled != 6 {
		t.Fatalf("summary = %+v", sum)
	}
	// Deterministic: the first of every group of three is kept.
	for i, e := range tr.Events() {
		if e.T != int64(3*i) {
			t.Fatalf("kept event %d at t=%d, want %d", i, e.T, 3*i)
		}
	}
}

func TestTracerNoWriterFlush(t *testing.T) {
	tr := NewTracer(TraceConfig{Cap: 2})
	tr.Emit(EvAck, 0, 1, 2, AckWriteGrant)
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
}

// TestTracerFlushDrainOnce: Flush writes the ring exactly once; later
// calls write nothing and return nil, even after further Emits.
func TestTracerFlushDrainOnce(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(TraceConfig{W: &buf, Cap: 8})
	tr.Emit(EvMiss, 0, 1, 10, MissCold)
	tr.Emit(EvMiss, 1, 2, 11, MissCold)
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	first := buf.String()
	if got := strings.Count(first, "\n"); got != 2 {
		t.Fatalf("first flush wrote %d lines, want 2", got)
	}
	tr.Emit(EvMiss, 2, 3, 12, MissCold)
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.String() != first {
		t.Fatalf("second Flush wrote more output:\n%q\nvs\n%q", buf.String(), first)
	}
}

// TestTracerRingWrapSampled: with Sample > 1 AND a wrapped ring, the
// summary's four counters must still account for every event:
// Seen = Kept + Dropped + Sampled.
func TestTracerRingWrapSampled(t *testing.T) {
	tr := NewTracer(TraceConfig{Cap: 4, Sample: 3})
	const n = 100
	for i := 0; i < n; i++ {
		tr.Emit(EvMiss, 0, int64(i), uint64(i), 0)
	}
	sum := tr.Summary()
	// 100 seen, ceil(100/3) = 34 stored, 4 kept, 30 dropped, 66 sampled.
	if sum.Seen != n {
		t.Fatalf("Seen = %d, want %d", sum.Seen, n)
	}
	if sum.Kept != 4 {
		t.Fatalf("Kept = %d, want 4", sum.Kept)
	}
	if sum.Sampled != 66 {
		t.Fatalf("Sampled = %d, want 66", sum.Sampled)
	}
	if sum.Dropped != 30 {
		t.Fatalf("Dropped = %d, want 30", sum.Dropped)
	}
	if sum.Kept+sum.Dropped+sum.Sampled != sum.Seen {
		t.Fatalf("counters do not partition Seen: %+v", sum)
	}
	// The kept events are the newest stored samples (multiples of 3),
	// still in chronological order.
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("%d events, want 4", len(evs))
	}
	for i, e := range evs {
		if want := int64(3 * (30 + i)); e.T != want {
			t.Fatalf("event %d at t=%d, want %d", i, e.T, want)
		}
	}
}

// TestTracerEventsExactCapacity: filling the ring to exactly Cap (no
// wrap) must return every event in emit order — the stored == Cap
// boundary between the unwrapped and wrapped Events paths.
func TestTracerEventsExactCapacity(t *testing.T) {
	const cap = 8
	tr := NewTracer(TraceConfig{Cap: cap})
	for i := 0; i < cap; i++ {
		tr.Emit(EvMiss, 0, int64(i), uint64(i), 0)
	}
	sum := tr.Summary()
	if sum.Seen != cap || sum.Kept != cap || sum.Dropped != 0 {
		t.Fatalf("summary = %+v", sum)
	}
	evs := tr.Events()
	if len(evs) != cap {
		t.Fatalf("%d events, want %d", len(evs), cap)
	}
	for i, e := range evs {
		if e.T != int64(i) {
			t.Fatalf("event %d at t=%d, want %d", i, e.T, i)
		}
	}
	// One more event wraps: the oldest drops, order holds.
	tr.Emit(EvMiss, 0, cap, cap, 0)
	evs = tr.Events()
	if len(evs) != cap {
		t.Fatalf("after wrap: %d events, want %d", len(evs), cap)
	}
	for i, e := range evs {
		if e.T != int64(i+1) {
			t.Fatalf("after wrap: event %d at t=%d, want %d", i, e.T, i+1)
		}
	}
}
