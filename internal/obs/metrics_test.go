package obs

import (
	"math"
	"reflect"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}

	var g Gauge
	g.Set(5)
	g.Add(3)
	g.Set(2)
	if g.Value() != 2 {
		t.Fatalf("gauge value = %d, want 2", g.Value())
	}
	if g.Max() != 8 {
		t.Fatalf("gauge max = %d, want 8", g.Max())
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	cases := []struct {
		v      int64
		bucket int
	}{
		{0, 0}, {-7, 0},
		{1, 1},
		{2, 2}, {3, 2},
		{4, 3}, {7, 3},
		{1 << 18, 19}, // beyond the last bound: absorbed by the overflow bucket
		{math.MaxInt64, 19},
	}
	var sum int64
	for _, c := range cases {
		h.Observe(c.v)
		sum += c.v
	}
	if h.Count() != int64(len(cases)) || h.Sum() != sum {
		t.Fatalf("count=%d sum=%d, want %d/%d", h.Count(), h.Sum(), len(cases), sum)
	}
	want := map[int]int64{0: 2, 1: 1, 2: 2, 3: 2, 19: 2}
	for i := 0; i < HistBuckets; i++ {
		if h.Bucket(i) != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, h.Bucket(i), want[i])
		}
	}
	// Every bucketed value is below its bucket's (exclusive) bound; the
	// overflow bucket is unbounded.
	for _, c := range cases {
		if c.bucket < HistBuckets-1 && c.v >= BucketBound(c.bucket) {
			t.Errorf("value %d not below bound %d of bucket %d", c.v, BucketBound(c.bucket), c.bucket)
		}
	}
}

func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	var ext Counter
	ext.Add(7)
	r.BindCounter("node3.miss.cold", &ext)
	r.Counter("engine.events").Add(100)
	g := r.Gauge("node3.slwb")
	g.Set(4)
	g.Set(1)
	h := r.Histogram("node3.lat")
	h.Observe(3)
	h.Observe(300)

	s := r.Snapshot()
	for i := 1; i < len(s); i++ {
		if s[i-1].Name >= s[i].Name {
			t.Fatalf("snapshot not strictly sorted: %q >= %q", s[i-1].Name, s[i].Name)
		}
	}
	want := map[string]int64{
		"engine.events":   100,
		"node3.miss.cold": 7,
		"node3.slwb":      1,
		"node3.slwb.max":  4,
		"node3.lat.count": 2,
		"node3.lat.sum":   303,
		"node3.lat.lt4":   1,
		"node3.lat.lt512": 1,
	}
	if got := s.Map(); !reflect.DeepEqual(got, want) {
		t.Fatalf("snapshot map = %v, want %v", got, want)
	}
	if v, ok := s.Get("node3.miss.cold"); !ok || v != 7 {
		t.Fatalf("Get(node3.miss.cold) = %d,%v", v, ok)
	}
	if _, ok := s.Get("nope"); ok {
		t.Fatal("Get(nope) found a sample")
	}
}

func TestSnapshotTotals(t *testing.T) {
	s := Snapshot{
		{"engine.events", 10},
		{"node0.miss.cold", 3},
		{"node1.miss.cold", 4},
		{"node12.miss.cold", 5},
		{"nodex.odd", 1}, // no digits: passes through
		{"node7", 2},     // no dotted rest: passes through
	}
	want := map[string]int64{
		"engine.events":  10,
		"node.miss.cold": 12,
		"nodex.odd":      1,
		"node7":          2,
	}
	if got := s.Totals(); !reflect.DeepEqual(got, want) {
		t.Fatalf("totals = %v, want %v", got, want)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate bind did not panic")
		}
	}()
	r := NewRegistry()
	r.Counter("a")
	r.Counter("a")
}

// TestRegistryConcurrentBindSnapshot exercises the registry's own
// concurrency contract: instruments finish mutating before they are
// bound (binding publishes them via the registry mutex), and bind and
// snapshot interleave freely across goroutines. The parallel-runner
// integration lives in the root package's observability tests.
func TestRegistryConcurrentBindSnapshot(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				c := new(Counter)
				c.Add(int64(i))
				r.BindCounter(string(rune('a'+w))+"."+string(rune('a'+i%26))+string(rune('0'+i/26)), c)
				s := r.Snapshot()
				if len(s) == 0 {
					t.Error("empty snapshot after bind")
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Len(); got != 8*50 {
		t.Fatalf("registered %d instruments, want %d", got, 8*50)
	}
}
