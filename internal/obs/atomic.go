package obs

import "sync/atomic"

// The atomic instrument variants: the serving-path counterparts of
// Counter, Gauge and Histogram. The simulation instruments are plain
// integers because one simulation runs on one goroutine; a server's
// instruments are bumped from request handlers and job goroutines
// concurrently, so these use atomics. They bind into the same Registry
// and render identically in Snapshots and the Prometheus exposition —
// the choice of atomic vs plain is purely an ownership question.

// AtomicCounter is a monotonically increasing count safe for
// concurrent use. The zero value is ready to use.
type AtomicCounter struct{ v atomic.Int64 }

// Inc adds one.
func (c *AtomicCounter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *AtomicCounter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *AtomicCounter) Value() int64 { return c.v.Load() }

// AtomicGauge is an instantaneous level with a high-water mark, safe
// for concurrent use. The zero value is ready to use.
type AtomicGauge struct{ v, max atomic.Int64 }

// Set records the current level and updates the high-water mark.
// Concurrent Sets race on which level wins, but the high-water mark is
// exact.
func (g *AtomicGauge) Set(v int64) {
	g.v.Store(v)
	g.raiseMax(v)
}

// Add moves the level by d and returns the new level. Unlike Set, Add
// is exact under concurrency: the level is a single atomic add.
func (g *AtomicGauge) Add(d int64) int64 {
	v := g.v.Add(d)
	g.raiseMax(v)
	return v
}

func (g *AtomicGauge) raiseMax(v int64) {
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Value returns the current level.
func (g *AtomicGauge) Value() int64 { return g.v.Load() }

// Max returns the high-water mark.
func (g *AtomicGauge) Max() int64 { return g.max.Load() }

// AtomicHistogram is a fixed-bucket histogram safe for concurrent use,
// with the same power-of-two bucket layout as Histogram. The zero
// value is ready to use. Count, Sum and the buckets are each exact;
// a reader racing a writer may observe a sum without its count (or
// vice versa), which snapshotting after quiescence avoids.
type AtomicHistogram struct {
	count, sum atomic.Int64
	buckets    [HistBuckets]atomic.Int64
}

// Observe records one value.
func (h *AtomicHistogram) Observe(v int64) {
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[histBucket(v)].Add(1)
}

// Count returns the number of observations.
func (h *AtomicHistogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *AtomicHistogram) Sum() int64 { return h.sum.Load() }

// Bucket returns the observation count of bucket i.
func (h *AtomicHistogram) Bucket(i int) int64 { return h.buckets[i].Load() }
