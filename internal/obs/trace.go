package obs

import (
	"fmt"
	"io"
	"strconv"
)

// The event tracer: a fixed ring of plain event structs written on the
// hot path (no allocation, no I/O, optional 1-in-N sampling) and
// serialized as JSONL once, when the run flushes it. A full ring
// overwrites its oldest events — the trace keeps the tail of the run —
// and the drop count is reported in the summary so a truncated trace
// is never mistaken for a complete one.

// EventKind classifies one traced simulation event.
type EventKind uint8

const (
	// EvMiss is a demand SLC read miss; Arg carries the MissClass.
	EvMiss EventKind = iota
	// EvPrefetch is a prefetch issued to the memory system.
	EvPrefetch
	// EvInvalidate is an invalidation applied at a sharer or owner.
	EvInvalidate
	// EvAck is a transaction completion at the requester; Arg carries
	// the AckKind.
	EvAck

	numEventKinds
)

// Miss classes carried in an EvMiss event's Arg (§5.1, §5.3).
const (
	MissCold uint8 = iota
	MissCoherence
	MissReplacement
)

// Ack kinds carried in an EvAck event's Arg.
const (
	// AckReadFill is read data applied at the requester.
	AckReadFill uint8 = iota
	// AckWriteGrant is an ownership grant applied at the requester.
	AckWriteGrant
)

var eventKindNames = [numEventKinds]string{"miss", "prefetch", "invalidate", "ack"}

// String returns the kind's JSONL name.
func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return "unknown"
}

// Event is one traced simulation event. Time is virtual (pclocks);
// Block is the cache-block number; Arg is kind-specific.
type Event struct {
	T     int64
	Block uint64
	Node  int32
	Kind  EventKind
	Arg   uint8
}

// TraceConfig configures a Tracer.
type TraceConfig struct {
	// W receives the JSONL trace when Flush runs. nil discards the
	// events (the summary counters still work). Flush drains the ring
	// exactly once: the first call writes the kept events, every later
	// call writes nothing and returns nil.
	W io.Writer
	// Cap is the ring capacity in events (default 1<<16). When the
	// ring wraps, the oldest events are overwritten.
	Cap int
	// Sample keeps one in Sample events (default 1 = keep all). The
	// first event of every group of Sample is kept, deterministically.
	Sample int
}

// TraceSummary reports what a tracer saw and kept.
type TraceSummary struct {
	// Seen counts every event offered to the tracer.
	Seen uint64 `json:"seen"`
	// Kept counts events in the ring at flush time.
	Kept uint64 `json:"kept"`
	// Dropped counts sampled-in events overwritten by ring wrap-around.
	Dropped uint64 `json:"dropped"`
	// Sampled counts events discarded by 1-in-N sampling.
	Sampled uint64 `json:"sampled"`
}

// Tracer records simulation events into a preallocated ring. All
// methods are single-goroutine, like the instruments; Emit allocates
// nothing and performs no I/O.
type Tracer struct {
	w       io.Writer
	ring    []Event
	next    int
	stored  uint64 // events written into the ring (pre-wrap-accounting)
	seen    uint64
	sample  int
	skip    int
	flushed bool
}

// NewTracer builds a tracer from cfg, applying defaults.
func NewTracer(cfg TraceConfig) *Tracer {
	if cfg.Cap <= 0 {
		cfg.Cap = 1 << 16
	}
	if cfg.Sample <= 0 {
		cfg.Sample = 1
	}
	return &Tracer{w: cfg.W, ring: make([]Event, cfg.Cap), sample: cfg.Sample}
}

// Emit records one event (subject to sampling and ring capacity).
func (t *Tracer) Emit(kind EventKind, node int, at int64, block uint64, arg uint8) {
	t.seen++
	if t.skip > 0 {
		t.skip--
		return
	}
	t.skip = t.sample - 1
	t.ring[t.next] = Event{T: at, Block: block, Node: int32(node), Kind: kind, Arg: arg}
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
	}
	t.stored++
}

// Summary returns the tracer's counters.
func (t *Tracer) Summary() TraceSummary {
	kept := t.stored
	if max := uint64(len(t.ring)); kept > max {
		kept = max
	}
	return TraceSummary{
		Seen:    t.seen,
		Kept:    kept,
		Dropped: t.stored - kept,
		Sampled: t.seen - t.stored,
	}
}

// Events returns the ring's events in chronological order (oldest
// kept event first). The returned slice is freshly allocated.
func (t *Tracer) Events() []Event {
	if t.stored <= uint64(len(t.ring)) {
		return append([]Event(nil), t.ring[:t.stored]...)
	}
	out := make([]Event, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	return append(out, t.ring[:t.next]...)
}

// Flush serializes the kept events as JSONL to the configured writer
// (one object per line, chronological). Flush drains the ring exactly
// once: the second and later calls write nothing and return nil, so a
// run that flushes both explicitly and in a deferred cleanup path does
// not duplicate the trace. With no writer it is a no-op (but still
// counts as the drain).
func (t *Tracer) Flush() error {
	if t.flushed {
		return nil
	}
	t.flushed = true
	if t.w == nil {
		return nil
	}
	buf := make([]byte, 0, 96)
	for _, e := range t.Events() {
		buf = buf[:0]
		buf = append(buf, `{"t":`...)
		buf = strconv.AppendInt(buf, e.T, 10)
		buf = append(buf, `,"node":`...)
		buf = strconv.AppendInt(buf, int64(e.Node), 10)
		buf = append(buf, `,"kind":"`...)
		buf = append(buf, e.Kind.String()...)
		buf = append(buf, `","block":`...)
		buf = strconv.AppendUint(buf, e.Block, 10)
		buf = append(buf, `,"arg":`...)
		buf = strconv.AppendUint(buf, uint64(e.Arg), 10)
		buf = append(buf, '}', '\n')
		if _, err := t.w.Write(buf); err != nil {
			return fmt.Errorf("obs: trace flush: %w", err)
		}
	}
	return nil
}
