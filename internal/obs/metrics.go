// Package obs is the simulator's observability layer: plain-integer
// metric instruments cheap enough to live on the hot paths, a registry
// that binds them into one hierarchical namespace for export, a
// ring-buffered event tracer flushed as JSONL off the hot path, and the
// per-run manifest that makes a simulation's full provenance (config,
// seed, toolchain, stats digest, metrics) a single machine-checkable
// JSON document.
//
// The design splits instrumentation from export so that observing costs
// nothing it does not have to:
//
//   - Counter, Gauge and Histogram are plain value types meant to be
//     embedded in the owning component (a machine node, the event
//     engine). They allocate nothing — a Histogram's buckets are a
//     fixed-size array — and updates are non-atomic single-word
//     arithmetic, safe because one simulation runs on one goroutine.
//   - A Registry is only built when a caller wants the numbers out: it
//     binds names ("node3.miss.cold") to the embedded instruments and
//     renders a sorted Snapshot. Nothing on the simulation fast path
//     ever touches a map or a string.
//
// Instruments belonging to one simulation must only be read after that
// simulation's Run returns (or from its own goroutine). The Registry
// itself is safe for concurrent Bind/Snapshot across goroutines, which
// the parallel experiment runner's per-run registries exercise under
// the race detector.
package obs

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync"
)

// Counter is a monotonically increasing count. The zero value is ready
// to use.
type Counter struct{ v int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds n.
func (c *Counter) Add(n int64) { c.v += n }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v }

// Gauge is an instantaneous level with a high-water mark. The zero
// value is ready to use.
type Gauge struct{ v, max int64 }

// Set records the current level and updates the high-water mark.
func (g *Gauge) Set(v int64) {
	g.v = v
	if v > g.max {
		g.max = v
	}
}

// Add moves the level by d.
func (g *Gauge) Add(d int64) { g.Set(g.v + d) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v }

// Max returns the high-water mark.
func (g *Gauge) Max() int64 { return g.max }

// HistBuckets is the fixed bucket count of every Histogram: bucket i
// holds observations whose value has bit length i (i.e. v in
// [2^(i-1), 2^i)), bucket 0 holds v <= 0, and the last bucket absorbs
// everything beyond 2^(HistBuckets-2). Power-of-two buckets cover the
// simulator's latency range (pclocks: an FLC hit is 1, a contended
// four-traversal remote miss a few hundred) with no per-histogram
// configuration and no allocation.
const HistBuckets = 20

// Histogram is a fixed-bucket latency histogram. The zero value is
// ready to use.
type Histogram struct {
	count, sum int64
	buckets    [HistBuckets]int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	h.count++
	h.sum += v
	h.buckets[histBucket(v)]++
}

// histBucket maps a value to its bucket index (shared with
// AtomicHistogram so both layouts agree bit for bit).
func histBucket(v int64) int {
	if v <= 0 {
		return 0
	}
	i := bits.Len64(uint64(v))
	if i >= HistBuckets {
		i = HistBuckets - 1
	}
	return i
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum }

// Bucket returns the observation count of bucket i.
func (h *Histogram) Bucket(i int) int64 { return h.buckets[i] }

// BucketBound returns the exclusive upper bound of bucket i (2^i);
// the last bucket is unbounded and returns MaxInt64.
func BucketBound(i int) int64 {
	if i >= HistBuckets-1 {
		return math.MaxInt64
	}
	return int64(1) << i
}

// Sample is one named value of a Snapshot.
type Sample struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// Snapshot is a flat, name-sorted rendering of a registry's
// instruments at one instant.
type Snapshot []Sample

// Get returns the value of the named sample.
func (s Snapshot) Get(name string) (int64, bool) {
	i := sort.Search(len(s), func(i int) bool { return s[i].Name >= name })
	if i < len(s) && s[i].Name == name {
		return s[i].Value, true
	}
	return 0, false
}

// Map returns the snapshot as a name→value map.
func (s Snapshot) Map() map[string]int64 {
	m := make(map[string]int64, len(s))
	for _, sm := range s {
		m[sm.Name] = sm.Value
	}
	return m
}

// Totals collapses the per-node level of the hierarchy: samples named
// "node<i>.rest" are summed across i into "node.rest"; everything else
// passes through unchanged (summed if several nodes share a
// pass-through name). Gauge high-water marks sum too — the result is a
// machine-wide total, not a machine-wide maximum.
func (s Snapshot) Totals() map[string]int64 {
	m := make(map[string]int64)
	for _, sm := range s {
		m[totalName(sm.Name)] += sm.Value
	}
	return m
}

// totalName strips the node index from "node<i>.rest" names.
func totalName(name string) string {
	const p = "node"
	if len(name) <= len(p) || name[:len(p)] != p {
		return name
	}
	i := len(p)
	for i < len(name) && name[i] >= '0' && name[i] <= '9' {
		i++
	}
	if i == len(p) || i >= len(name) || name[i] != '.' {
		return name
	}
	return p + name[i:]
}

// entry is one bound instrument. Exactly one of the instrument
// pointers is set.
type entry struct {
	name string
	c    *Counter
	g    *Gauge
	h    *Histogram
	ac   *AtomicCounter
	ag   *AtomicGauge
	ah   *AtomicHistogram
}

// Registry binds embedded instruments into one hierarchical dotted
// namespace and renders them as Snapshots. Binding and snapshotting
// are mutex-guarded and safe across goroutines; the instruments
// themselves follow the package's single-goroutine ownership rule.
type Registry struct {
	mu      sync.Mutex
	entries []entry
	names   map[string]struct{}
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{names: make(map[string]struct{})} }

func (r *Registry) bind(e entry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.names[e.name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric %q", e.name))
	}
	r.names[e.name] = struct{}{}
	r.entries = append(r.entries, e)
}

// BindCounter registers an externally owned counter under name.
// Binding a name twice is a programming error and panics.
func (r *Registry) BindCounter(name string, c *Counter) { r.bind(entry{name: name, c: c}) }

// BindGauge registers an externally owned gauge under name.
func (r *Registry) BindGauge(name string, g *Gauge) { r.bind(entry{name: name, g: g}) }

// BindHistogram registers an externally owned histogram under name.
func (r *Registry) BindHistogram(name string, h *Histogram) { r.bind(entry{name: name, h: h}) }

// Counter creates, registers and returns a registry-owned counter.
func (r *Registry) Counter(name string) *Counter {
	c := new(Counter)
	r.BindCounter(name, c)
	return c
}

// Gauge creates, registers and returns a registry-owned gauge.
func (r *Registry) Gauge(name string) *Gauge {
	g := new(Gauge)
	r.BindGauge(name, g)
	return g
}

// Histogram creates, registers and returns a registry-owned histogram.
func (r *Registry) Histogram(name string) *Histogram {
	h := new(Histogram)
	r.BindHistogram(name, h)
	return h
}

// BindAtomicCounter registers an externally owned atomic counter.
func (r *Registry) BindAtomicCounter(name string, c *AtomicCounter) {
	r.bind(entry{name: name, ac: c})
}

// BindAtomicGauge registers an externally owned atomic gauge.
func (r *Registry) BindAtomicGauge(name string, g *AtomicGauge) {
	r.bind(entry{name: name, ag: g})
}

// BindAtomicHistogram registers an externally owned atomic histogram.
func (r *Registry) BindAtomicHistogram(name string, h *AtomicHistogram) {
	r.bind(entry{name: name, ah: h})
}

// AtomicCounter creates, registers and returns a registry-owned atomic
// counter.
func (r *Registry) AtomicCounter(name string) *AtomicCounter {
	c := new(AtomicCounter)
	r.BindAtomicCounter(name, c)
	return c
}

// AtomicGauge creates, registers and returns a registry-owned atomic
// gauge.
func (r *Registry) AtomicGauge(name string) *AtomicGauge {
	g := new(AtomicGauge)
	r.BindAtomicGauge(name, g)
	return g
}

// AtomicHistogram creates, registers and returns a registry-owned
// atomic histogram.
func (r *Registry) AtomicHistogram(name string) *AtomicHistogram {
	h := new(AtomicHistogram)
	r.BindAtomicHistogram(name, h)
	return h
}

// histSamples renders a histogram's snapshot samples: count, sum, and
// one ".lt<bound>" sample per non-empty bucket.
func (e *entry) histSamples(count, sum int64, bucket func(int) int64) []Sample {
	s := []Sample{{e.name + ".count", count}, {e.name + ".sum", sum}}
	for i := 0; i < HistBuckets; i++ {
		if n := bucket(i); n != 0 {
			s = append(s, Sample{fmt.Sprintf("%s.lt%d", e.name, BucketBound(i)), n})
		}
	}
	return s
}

// Len reports the number of bound instruments.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}

// Snapshot renders every bound instrument, sorted by name. A counter
// contributes one sample; a gauge contributes "<name>" and
// "<name>.max"; a histogram contributes "<name>.count", "<name>.sum"
// and one "<name>.lt<bound>" sample per non-empty bucket.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	var s Snapshot
	for _, e := range r.entries {
		switch {
		case e.c != nil:
			s = append(s, Sample{e.name, e.c.Value()})
		case e.ac != nil:
			s = append(s, Sample{e.name, e.ac.Value()})
		case e.g != nil:
			s = append(s, Sample{e.name, e.g.Value()}, Sample{e.name + ".max", e.g.Max()})
		case e.ag != nil:
			s = append(s, Sample{e.name, e.ag.Value()}, Sample{e.name + ".max", e.ag.Max()})
		case e.h != nil:
			s = append(s, e.histSamples(e.h.Count(), e.h.Sum(), e.h.Bucket)...)
		case e.ah != nil:
			s = append(s, e.histSamples(e.ah.Count(), e.ah.Sum(), e.ah.Bucket)...)
		}
	}
	sort.Slice(s, func(i, j int) bool { return s[i].Name < s[j].Name })
	return s
}
