package obs

import (
	"fmt"
	"io"
	"strconv"
)

// The span layer: every memory-system transaction (and every stall the
// processor model charges) becomes one lifecycle record with per-hop
// virtual-time stamps — issue, network dispatch, directory arrival,
// service start, reply, reply arrival, fill. Spans are stamped in place
// inside the machine's pooled transaction records (no allocation on the
// simulation path) and handed to a SpanRecorder exactly once, at
// completion. The recorder aggregates every span into per-class
// latency-breakdown statistics and keeps a sampled ring of raw spans
// for JSONL export, mirroring the Tracer's ring/sample/flush contract.

// SpanClass classifies one completed span. The first three values
// intentionally match the Miss* trace constants so a miss class
// converts to a span class directly.
type SpanClass uint8

const (
	// SpanMissCold is a demand read miss to a never-cached block.
	SpanMissCold SpanClass = iota
	// SpanMissCoherence is a demand read miss caused by an invalidation.
	SpanMissCoherence
	// SpanMissReplacement is a demand read miss caused by SLC eviction.
	SpanMissReplacement
	// SpanWrite is an ownership transaction with no demand read merged
	// onto it (write misses and upgrade requests).
	SpanWrite
	// SpanPrefetch is a prefetch transaction that completed before any
	// demand reference asked for the block (timely or unconsumed).
	SpanPrefetch
	// SpanPrefetchLate is a prefetch a demand read caught in flight; the
	// Wait field measures the pclocks the demand reference stalled.
	SpanPrefetchLate
	// SpanSLCHit is a demand read that hit in the SLC; Wait is the
	// stall beyond the FLC hit time. Not a network transaction: only
	// Issue/Done/Wait are meaningful.
	SpanSLCHit
	// SpanFLWB is a processor write stalled on first-level write-buffer
	// admission.
	SpanFLWB
	// SpanSCWrite is a write stall charged by the sequential-
	// consistency model (blocking write completion or drain).
	SpanSCWrite
	// SpanAcquire is a lock acquire; Wait is the time to grant.
	SpanAcquire
	// SpanBarrier is a barrier episode; Wait is the arrive-to-release
	// time.
	SpanBarrier
	// SpanRelease is a release stalled draining pending transactions
	// under the RC write-completion rule.
	SpanRelease

	// NumSpanClasses bounds per-class arrays.
	NumSpanClasses
)

var spanClassNames = [NumSpanClasses]string{
	"miss.cold", "miss.coherence", "miss.replacement", "write",
	"prefetch", "prefetch.late", "slc.hit", "flwb", "sc.write",
	"acquire", "barrier", "release",
}

// String returns the class's JSONL name.
func (c SpanClass) String() string {
	if int(c) < len(spanClassNames) {
		return spanClassNames[c]
	}
	return "unknown"
}

// ParseSpanClass inverts String. It returns NumSpanClasses and false
// for an unknown name.
func ParseSpanClass(s string) (SpanClass, bool) {
	for i, n := range spanClassNames {
		if n == s {
			return SpanClass(i), true
		}
	}
	return NumSpanClasses, false
}

// IsTransaction reports whether the class is a full network
// transaction, i.e. whether the per-hop stamps (Req…Arrive) are
// meaningful.
func (c SpanClass) IsTransaction() bool { return c <= SpanPrefetchLate }

// Span is one completed lifecycle record. All times are virtual
// (pclocks). For transaction classes every hop stamp is set; for the
// local stall classes only Issue, Done and Wait are meaningful.
type Span struct {
	// Issue is when the processor (or prefetcher) issued the reference.
	Issue int64
	// Req is when the transaction entered the network (after any SLWB
	// admission wait).
	Req int64
	// Home is when the request arrived at the home node.
	Home int64
	// Svc is when the home directory entry was acquired and service
	// began (Svc-Home is directory queueing).
	Svc int64
	// Reply is when the data reply or ownership grant left its source.
	Reply int64
	// Arrive is when the reply arrived back at the requester.
	Arrive int64
	// Done is when the fill or grant finished applying at the SLC.
	Done int64
	// Demand is the merged demand reference's issue time, or -1 when no
	// demand reference waited on this span.
	Demand int64
	// Wait is the stall this span charged to the processor, in pclocks
	// (read stall for miss/late-prefetch/SLC-hit spans, write stall for
	// FLWB/SC spans, sync stall for acquire/barrier/release spans).
	Wait  int64
	Block uint64
	Node  int32
	Class SpanClass
}

// Total returns the span's end-to-end latency.
func (s *Span) Total() int64 { return s.Done - s.Issue }

// SpanConfig configures a SpanRecorder.
type SpanConfig struct {
	// W receives the sampled raw spans as JSONL when Flush runs. nil
	// discards them (aggregation still sees every span). Like the
	// Tracer, Flush drains the ring exactly once.
	W io.Writer
	// Cap is the raw-span ring capacity (default 1<<15). When the ring
	// wraps, the oldest spans are overwritten.
	Cap int
	// Sample keeps one in Sample raw spans (default 1 = keep all).
	// Aggregated per-class statistics always include every span.
	Sample int
}

// SpanClassStats aggregates every completed span of one class. Unlike
// the raw ring these are exact: sampling and capacity never drop a
// span from the aggregates.
type SpanClassStats struct {
	// Count is the number of completed spans.
	Count int64
	// TotalPclocks sums end-to-end latency (Done-Issue).
	TotalPclocks int64
	// WaitPclocks sums the processor stall charged by these spans.
	WaitPclocks int64
	// Queue, ReqNet, Dir, Service, ReplyNet and Fill sum the per-hop
	// latencies (transaction classes only).
	Queue, ReqNet, Dir, Service, ReplyNet, Fill int64
	// Latency is the end-to-end latency histogram.
	Latency Histogram
}

// SpanStats is the exact aggregate over all completed spans.
type SpanStats struct {
	Classes [NumSpanClasses]SpanClassStats
	// IdleCount/IdlePclocks aggregate prefetch fill-to-first-use idle
	// times (how early a consumed prefetch arrived); Idle is their
	// histogram.
	IdleCount   int64
	IdlePclocks int64
	Idle        Histogram
}

// Class returns the aggregate for c.
func (st *SpanStats) Class(c SpanClass) *SpanClassStats { return &st.Classes[c] }

// SpanClassSummary is the JSON-stable per-class slice of a SpanStats.
type SpanClassSummary struct {
	Count        int64 `json:"count"`
	TotalPclocks int64 `json:"total_pclocks"`
	WaitPclocks  int64 `json:"wait_pclocks"`
}

// SpanSummary is the manifest view of a span recording: ring counters
// plus the exact per-class aggregates.
type SpanSummary struct {
	Ring    TraceSummary                `json:"ring"`
	Classes map[string]SpanClassSummary `json:"classes,omitempty"`
	// IdleCount/IdlePclocks summarize prefetch fill-to-first-use.
	IdleCount   int64 `json:"idle_count,omitempty"`
	IdlePclocks int64 `json:"idle_pclocks,omitempty"`
}

// SpanRecorder aggregates completed spans and retains a sampled ring
// of raw spans for JSONL export. Single-goroutine, like the Tracer;
// Complete allocates nothing and performs no I/O.
type SpanRecorder struct {
	w       io.Writer
	ring    []Span
	next    int
	stored  uint64
	seen    uint64
	sample  int
	skip    int
	flushed bool
	stats   SpanStats
}

// NewSpanRecorder builds a recorder from cfg, applying defaults.
func NewSpanRecorder(cfg SpanConfig) *SpanRecorder {
	if cfg.Cap <= 0 {
		cfg.Cap = 1 << 15
	}
	if cfg.Sample <= 0 {
		cfg.Sample = 1
	}
	return &SpanRecorder{w: cfg.W, ring: make([]Span, cfg.Cap), sample: cfg.Sample}
}

// Complete records one finished span: always into the aggregates,
// and (subject to sampling and capacity) into the raw ring.
func (r *SpanRecorder) Complete(s Span) {
	st := &r.stats.Classes[s.Class]
	st.Count++
	total := s.Done - s.Issue
	st.TotalPclocks += total
	st.WaitPclocks += s.Wait
	st.Latency.Observe(total)
	if s.Class.IsTransaction() {
		st.Queue += s.Req - s.Issue
		st.ReqNet += s.Home - s.Req
		st.Dir += s.Svc - s.Home
		st.Service += s.Reply - s.Svc
		st.ReplyNet += s.Arrive - s.Reply
		st.Fill += s.Done - s.Arrive
	}
	r.seen++
	if r.skip > 0 {
		r.skip--
		return
	}
	r.skip = r.sample - 1
	r.ring[r.next] = s
	r.next++
	if r.next == len(r.ring) {
		r.next = 0
	}
	r.stored++
}

// ObserveIdle records a prefetch fill-to-first-use idle time.
func (r *SpanRecorder) ObserveIdle(pclocks int64) {
	r.stats.IdleCount++
	r.stats.IdlePclocks += pclocks
	r.stats.Idle.Observe(pclocks)
}

// Stats returns the exact aggregates (live; do not retain across
// further Complete calls if a stable copy is needed).
func (r *SpanRecorder) Stats() *SpanStats { return &r.stats }

// Summary returns the raw-ring counters (same semantics as the
// Tracer's: Kept spans are in the ring, Dropped were overwritten,
// Sampled were discarded by 1-in-N sampling).
func (r *SpanRecorder) Summary() TraceSummary {
	kept := r.stored
	if max := uint64(len(r.ring)); kept > max {
		kept = max
	}
	return TraceSummary{
		Seen:    r.seen,
		Kept:    kept,
		Dropped: r.stored - kept,
		Sampled: r.seen - r.stored,
	}
}

// Summarize builds the manifest view: ring counters plus per-class
// aggregates (classes with no spans are omitted).
func (r *SpanRecorder) Summarize() *SpanSummary {
	return SummarizeSpanStats(&r.stats, r.Summary())
}

// SummarizeSpanStats builds the manifest view from detached aggregates
// and ring counters (what a Result carries after the run).
func SummarizeSpanStats(stats *SpanStats, ring TraceSummary) *SpanSummary {
	sum := &SpanSummary{
		Ring:        ring,
		IdleCount:   stats.IdleCount,
		IdlePclocks: stats.IdlePclocks,
	}
	for c := SpanClass(0); c < NumSpanClasses; c++ {
		st := &stats.Classes[c]
		if st.Count == 0 {
			continue
		}
		if sum.Classes == nil {
			sum.Classes = make(map[string]SpanClassSummary, int(NumSpanClasses))
		}
		sum.Classes[c.String()] = SpanClassSummary{
			Count:        st.Count,
			TotalPclocks: st.TotalPclocks,
			WaitPclocks:  st.WaitPclocks,
		}
	}
	return sum
}

// Spans returns the ring's spans in completion order (oldest kept span
// first). The returned slice is freshly allocated.
func (r *SpanRecorder) Spans() []Span {
	if r.stored <= uint64(len(r.ring)) {
		return append([]Span(nil), r.ring[:r.stored]...)
	}
	out := make([]Span, 0, len(r.ring))
	out = append(out, r.ring[r.next:]...)
	return append(out, r.ring[:r.next]...)
}

// AppendJSON appends the span's JSONL object (no trailing newline).
func (s *Span) AppendJSON(buf []byte) []byte {
	buf = append(buf, `{"class":"`...)
	buf = append(buf, s.Class.String()...)
	buf = append(buf, `","node":`...)
	buf = strconv.AppendInt(buf, int64(s.Node), 10)
	buf = append(buf, `,"block":`...)
	buf = strconv.AppendUint(buf, s.Block, 10)
	buf = append(buf, `,"issue":`...)
	buf = strconv.AppendInt(buf, s.Issue, 10)
	buf = append(buf, `,"req":`...)
	buf = strconv.AppendInt(buf, s.Req, 10)
	buf = append(buf, `,"home":`...)
	buf = strconv.AppendInt(buf, s.Home, 10)
	buf = append(buf, `,"svc":`...)
	buf = strconv.AppendInt(buf, s.Svc, 10)
	buf = append(buf, `,"reply":`...)
	buf = strconv.AppendInt(buf, s.Reply, 10)
	buf = append(buf, `,"arrive":`...)
	buf = strconv.AppendInt(buf, s.Arrive, 10)
	buf = append(buf, `,"done":`...)
	buf = strconv.AppendInt(buf, s.Done, 10)
	buf = append(buf, `,"demand":`...)
	buf = strconv.AppendInt(buf, s.Demand, 10)
	buf = append(buf, `,"wait":`...)
	buf = strconv.AppendInt(buf, s.Wait, 10)
	return append(buf, '}')
}

// Flush serializes the kept raw spans as JSONL to the configured
// writer, draining the ring exactly once (later calls write nothing
// and return nil). With no writer it is a no-op.
func (r *SpanRecorder) Flush() error {
	if r.flushed {
		return nil
	}
	r.flushed = true
	if r.w == nil {
		return nil
	}
	buf := make([]byte, 0, 224)
	for _, s := range r.Spans() {
		buf = s.AppendJSON(buf[:0])
		buf = append(buf, '\n')
		if _, err := r.w.Write(buf); err != nil {
			return fmt.Errorf("obs: span flush: %w", err)
		}
	}
	return nil
}
