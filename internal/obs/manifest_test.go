package obs

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func sampleManifest() *Manifest {
	return &Manifest{
		Schema:        ManifestSchema,
		GoVersion:     "go1.24.0",
		GitSHA:        strings.Repeat("ab", 20),
		CreatedUnixNS: 1754500000000000000,
		Config: RunConfig{
			App: "matmul", Scheme: "Seq", Degree: 2, Processors: 4,
			SLCBytes: 16384, SLCWays: 2, Scale: 1, Seed: 12345,
			SequentialConsistency: true, BandwidthFactor: 2,
		},
		ConfigDigest: RunConfig{
			App: "matmul", Scheme: "Seq", Degree: 2, Processors: 4,
			SLCBytes: 16384, SLCWays: 2, Scale: 1, Seed: 12345,
			SequentialConsistency: true, BandwidthFactor: 2,
		}.Digest(),
		WallNS:      123456789,
		VirtualTime: 987654,
		StatsDigest: DigestStrings([]string{"a", "b"}),
		Metrics:     map[string]int64{"node.miss.cold": 17, "engine.events": 40},
		Trace:       &TraceSummary{Seen: 100, Kept: 64, Dropped: 36},
	}
}

// TestManifestRoundTrip is the write → parse → deep-equal contract:
// every field of a run manifest survives serialization exactly.
func TestManifestRoundTrip(t *testing.T) {
	m := sampleManifest()
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeManifest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("round trip diverged:\ngot  %+v\nwant %+v", got, m)
	}
}

func TestManifestFileRoundTrip(t *testing.T) {
	m := sampleManifest()
	path := filepath.Join(t.TempDir(), "run.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifestFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("file round trip diverged:\ngot  %+v\nwant %+v", got, m)
	}
}

func TestManifestSchemaRejected(t *testing.T) {
	m := sampleManifest()
	m.Schema = ManifestSchema + 1
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeManifest(&buf); err == nil {
		t.Fatal("unknown schema accepted")
	}
}

func TestSweepManifestRoundTrip(t *testing.T) {
	sm := &SweepManifest{
		Schema:     ManifestSchema,
		GoVersion:  "go1.24.0",
		Tool:       "sweep",
		Args:       []string{"-apps", "matmul", "-procs", "4"},
		WallNS:     42,
		Rows:       2,
		RowsDigest: DigestStrings([]string{"row1", "row2"}),
		Runs:       []Manifest{*sampleManifest()},
	}
	var buf bytes.Buffer
	if err := sm.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSweepManifest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, sm) {
		t.Fatalf("sweep round trip diverged:\ngot  %+v\nwant %+v", got, sm)
	}
}

// TestRunConfigDigest pins the content-address contract: equal configs
// share a digest, any field change (the seed included) moves it, and
// the digest is stable hex SHA-256.
func TestRunConfigDigest(t *testing.T) {
	base := sampleManifest().Config
	d := base.Digest()
	if len(d) != 64 {
		t.Fatalf("digest length %d, want 64 hex chars", len(d))
	}
	if base.Digest() != d {
		t.Fatal("digest not deterministic")
	}
	mutations := map[string]func(*RunConfig){
		"app":    func(c *RunConfig) { c.App = "lu" },
		"scheme": func(c *RunConfig) { c.Scheme = "I-det" },
		"degree": func(c *RunConfig) { c.Degree++ },
		"procs":  func(c *RunConfig) { c.Processors *= 2 },
		"slc":    func(c *RunConfig) { c.SLCBytes *= 2 },
		"ways":   func(c *RunConfig) { c.SLCWays++ },
		"scale":  func(c *RunConfig) { c.Scale++ },
		"seed":   func(c *RunConfig) { c.Seed++ },
		"sc":     func(c *RunConfig) { c.SequentialConsistency = false },
		"bw":     func(c *RunConfig) { c.BandwidthFactor++ },
	}
	for name, mutate := range mutations {
		c := base
		mutate(&c)
		if c.Digest() == d {
			t.Errorf("%s: digest unchanged after mutation", name)
		}
	}
}

func TestDigestStringsStable(t *testing.T) {
	a := DigestStrings([]string{"x", "y"})
	b := DigestStrings([]string{"x", "y"})
	c := DigestStrings([]string{"x", "z"})
	if a != b {
		t.Fatal("digest not deterministic")
	}
	if a == c {
		t.Fatal("digest insensitive to content")
	}
	if len(a) != 64 {
		t.Fatalf("digest length %d, want 64 hex chars", len(a))
	}
}

// TestGitSHA resolves this repository's own HEAD (the tests run inside
// a git checkout) and tolerates running outside one.
func TestGitSHA(t *testing.T) {
	sha := GitSHA(".")
	if sha == "" {
		t.Skip("not inside a git checkout")
	}
	if plausibleSHA(sha) == "" {
		t.Fatalf("GitSHA returned implausible %q", sha)
	}
}

func TestGitSHAOutsideRepo(t *testing.T) {
	if sha := GitSHA(t.TempDir()); sha != "" {
		// A tmpdir under a git checkout would legitimately resolve; only
		// fail on implausible output.
		if plausibleSHA(sha) == "" {
			t.Fatalf("implausible sha %q", sha)
		}
	}
}
