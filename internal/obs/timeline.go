package obs

import (
	"fmt"
	"io"
	"strconv"
)

// The timeline collector: the machine snapshots its cumulative
// instruments every W pclocks of virtual time; Timeline differences
// consecutive snapshots into per-window deltas so a run emits a
// time-series — references, miss classes, prefetch efficiency, stall
// cycles, network traffic — instead of only end-of-run totals.
// Occupancy gauges (SLWB) and the window-end timestamp are kept as
// sampled instants, not differenced.

// TimePoint is one timeline window. All counter fields are deltas over
// the window; T is the window-end virtual time and SLWB is the
// instantaneous summed write-buffer occupancy at T.
type TimePoint struct {
	T               int64 `json:"t"`
	Reads           int64 `json:"reads"`
	Writes          int64 `json:"writes"`
	Misses          int64 `json:"misses"`
	MissCold        int64 `json:"miss_cold"`
	MissCoherence   int64 `json:"miss_coherence"`
	MissReplacement int64 `json:"miss_replacement"`
	PrefIssued      int64 `json:"pref_issued"`
	PrefUseful      int64 `json:"pref_useful"`
	PrefLate        int64 `json:"pref_late"`
	ReadStall       int64 `json:"read_stall"`
	WriteStall      int64 `json:"write_stall"`
	SyncStall       int64 `json:"sync_stall"`
	SLWB            int64 `json:"slwb"`
	NetMsgs         int64 `json:"net_msgs"`
	NetFlits        int64 `json:"net_flits"`
	NetFlitHops     int64 `json:"net_flit_hops"`
	Events          int64 `json:"events"`
}

// TimelineConfig configures a Timeline.
type TimelineConfig struct {
	// Window is the snapshot period in pclocks of virtual time
	// (required; <= 0 disables collection).
	Window int64
	// W, when non-nil, receives the windows as JSONL at Flush.
	W io.Writer
}

// TimelineSummary is the manifest view of a timeline recording.
type TimelineSummary struct {
	WindowPclocks int64 `json:"window_pclocks"`
	Points        int   `json:"points"`
}

// Timeline accumulates windowed deltas of cumulative snapshots.
// Single-goroutine; Record appends to a growing slice (amortized
// allocation proportional to run length / window, never on the
// event path itself beyond slice growth).
type Timeline struct {
	window  int64
	points  []TimePoint
	prev    TimePoint
	flushed bool
	w       io.Writer
}

// NewTimeline builds a timeline from cfg. It returns nil when the
// window is not positive (collection disabled).
func NewTimeline(cfg TimelineConfig) *Timeline {
	if cfg.Window <= 0 {
		return nil
	}
	return &Timeline{window: cfg.Window, w: cfg.W}
}

// Window returns the snapshot period in pclocks.
func (tl *Timeline) Window() int64 { return tl.window }

// Record ingests one cumulative snapshot taken at cum.T and appends
// the delta window since the previous snapshot. T and SLWB pass
// through as instants. A snapshot at or before the previous one's T is
// ignored: the run ended exactly on a window boundary, or the
// end-of-run snapshot (taken at processor completion time) landed
// inside a window a later housekeeping event already closed.
func (tl *Timeline) Record(cum TimePoint) {
	if len(tl.points) > 0 && cum.T <= tl.prev.T {
		return
	}
	d := TimePoint{
		T:               cum.T,
		Reads:           cum.Reads - tl.prev.Reads,
		Writes:          cum.Writes - tl.prev.Writes,
		Misses:          cum.Misses - tl.prev.Misses,
		MissCold:        cum.MissCold - tl.prev.MissCold,
		MissCoherence:   cum.MissCoherence - tl.prev.MissCoherence,
		MissReplacement: cum.MissReplacement - tl.prev.MissReplacement,
		PrefIssued:      cum.PrefIssued - tl.prev.PrefIssued,
		PrefUseful:      cum.PrefUseful - tl.prev.PrefUseful,
		PrefLate:        cum.PrefLate - tl.prev.PrefLate,
		ReadStall:       cum.ReadStall - tl.prev.ReadStall,
		WriteStall:      cum.WriteStall - tl.prev.WriteStall,
		SyncStall:       cum.SyncStall - tl.prev.SyncStall,
		SLWB:            cum.SLWB,
		NetMsgs:         cum.NetMsgs - tl.prev.NetMsgs,
		NetFlits:        cum.NetFlits - tl.prev.NetFlits,
		NetFlitHops:     cum.NetFlitHops - tl.prev.NetFlitHops,
		Events:          cum.Events - tl.prev.Events,
	}
	tl.prev = cum
	tl.points = append(tl.points, d)
}

// Points returns the recorded windows (live slice; callers must not
// mutate).
func (tl *Timeline) Points() []TimePoint { return tl.points }

// Summarize builds the manifest view.
func (tl *Timeline) Summarize() *TimelineSummary {
	return &TimelineSummary{WindowPclocks: tl.window, Points: len(tl.points)}
}

// AppendJSON appends the window's JSONL object (no trailing newline).
func (p *TimePoint) AppendJSON(buf []byte) []byte {
	field := func(b []byte, name string, v int64) []byte {
		b = append(b, ',', '"')
		b = append(b, name...)
		b = append(b, '"', ':')
		return strconv.AppendInt(b, v, 10)
	}
	buf = append(buf, `{"t":`...)
	buf = strconv.AppendInt(buf, p.T, 10)
	buf = field(buf, "reads", p.Reads)
	buf = field(buf, "writes", p.Writes)
	buf = field(buf, "misses", p.Misses)
	buf = field(buf, "miss_cold", p.MissCold)
	buf = field(buf, "miss_coherence", p.MissCoherence)
	buf = field(buf, "miss_replacement", p.MissReplacement)
	buf = field(buf, "pref_issued", p.PrefIssued)
	buf = field(buf, "pref_useful", p.PrefUseful)
	buf = field(buf, "pref_late", p.PrefLate)
	buf = field(buf, "read_stall", p.ReadStall)
	buf = field(buf, "write_stall", p.WriteStall)
	buf = field(buf, "sync_stall", p.SyncStall)
	buf = field(buf, "slwb", p.SLWB)
	buf = field(buf, "net_msgs", p.NetMsgs)
	buf = field(buf, "net_flits", p.NetFlits)
	buf = field(buf, "net_flit_hops", p.NetFlitHops)
	buf = field(buf, "events", p.Events)
	return append(buf, '}')
}

// Flush serializes the windows as JSONL to the configured writer,
// draining exactly once (later calls write nothing and return nil).
// With no writer it is a no-op.
func (tl *Timeline) Flush() error {
	if tl.flushed {
		return nil
	}
	tl.flushed = true
	if tl.w == nil {
		return nil
	}
	buf := make([]byte, 0, 384)
	for i := range tl.points {
		buf = tl.points[i].AppendJSON(buf[:0])
		buf = append(buf, '\n')
		if _, err := tl.w.Write(buf); err != nil {
			return fmt.Errorf("obs: timeline flush: %w", err)
		}
	}
	return nil
}
