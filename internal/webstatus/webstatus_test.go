package webstatus

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"prefetchsim/internal/obs"
)

func TestServeStatus(t *testing.T) {
	var prog Progress
	prog.Set(3, 10)
	prog.Row()
	prog.Row()
	srv, err := Serve("127.0.0.1:0", func() Status {
		done, total, rows := prog.Snapshot()
		return Status{
			Tool: "test", Done: done, Total: total, Rows: rows,
			Runs: 5, Metrics: map[string]int64{"engine.events": 42},
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	for _, path := range []string{"/", "/status"} {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("%s: content type %q", path, ct)
		}
		var st Status
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatalf("%s: body not JSON: %v (%s)", path, err, body)
		}
		if st.Tool != "test" || st.Done != 3 || st.Total != 10 || st.Rows != 2 || st.Runs != 5 {
			t.Fatalf("%s: status = %+v", path, st)
		}
		if st.Metrics["engine.events"] != 42 {
			t.Fatalf("%s: metrics = %v", path, st.Metrics)
		}
		if st.StartUnixNS == 0 || st.UptimeNS < 0 {
			t.Fatalf("%s: timestamps = %d/%d", path, st.StartUnixNS, st.UptimeNS)
		}
	}

	resp, err := http.Get("http://" + srv.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "ok\n" {
		t.Fatalf("/healthz = %d %q", resp.StatusCode, body)
	}
}

// TestServeMuxExtraRoutes: a command can mount its own handlers next
// to the shared surface, and the built-in routes keep working.
func TestServeMuxExtraRoutes(t *testing.T) {
	srv, err := ServeMux("127.0.0.1:0", func() Status {
		return Status{Tool: "extended"}
	}, func(mux *http.ServeMux) {
		mux.HandleFunc("/jobs", func(w http.ResponseWriter, r *http.Request) {
			io.WriteString(w, "job list")
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr() + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "job list" {
		t.Fatalf("/jobs = %d %q", resp.StatusCode, body)
	}

	resp, err = http.Get("http://" + srv.Addr() + "/status")
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Tool != "extended" {
		t.Fatalf("/status tool = %q", st.Tool)
	}
}

// TestShutdownDrainsInFlight: the satellite contract — a /status
// request already being served when Shutdown begins completes with a
// full body instead of being severed, and Shutdown returns only after
// it finished.
func TestShutdownDrainsInFlight(t *testing.T) {
	inHandler := make(chan struct{})
	release := make(chan struct{})
	srv, err := Serve("127.0.0.1:0", func() Status {
		close(inHandler)
		<-release // hold the request open across the Shutdown call
		return Status{Tool: "draining", Done: 7, Total: 9}
	})
	if err != nil {
		t.Fatal(err)
	}

	type reply struct {
		st   Status
		code int
		err  error
	}
	got := make(chan reply, 1)
	go func() {
		var r reply
		resp, err := http.Get("http://" + srv.Addr() + "/status")
		if err != nil {
			r.err = err
			got <- r
			return
		}
		defer resp.Body.Close()
		r.code = resp.StatusCode
		r.err = json.NewDecoder(resp.Body).Decode(&r.st)
		got <- r
	}()
	<-inHandler // the request is now in flight

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()

	// Shutdown must wait for the in-flight request, not kill it: give it
	// a moment to do the wrong thing before releasing the handler.
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned (%v) with a request still in flight", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(release)

	r := <-got
	if r.err != nil {
		t.Fatalf("in-flight request severed during shutdown: %v", r.err)
	}
	if r.code != http.StatusOK || r.st.Tool != "draining" || r.st.Done != 7 {
		t.Fatalf("in-flight response = %d %+v", r.code, r.st)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	// The listener is closed: new requests fail.
	if _, err := http.Get("http://" + srv.Addr() + "/status"); err == nil {
		t.Fatal("request succeeded after Shutdown")
	}
}

// TestProgressConcurrent: the tracker is written from sweep callbacks
// and read from request handlers concurrently; counters must be
// consistent under the race detector.
func TestProgressConcurrent(t *testing.T) {
	var prog Progress
	srv, err := Serve("127.0.0.1:0", func() Status {
		done, total, rows := prog.Snapshot()
		return Status{Done: done, Total: total, Rows: rows}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const n = 50
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 1; i <= n; i++ {
			prog.Set(i, n)
			prog.Row()
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			resp, err := http.Get("http://" + srv.Addr() + "/status")
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	wg.Wait()

	done, total, rows := prog.Snapshot()
	if done != n || total != n || rows != n {
		t.Fatalf("final snapshot = %d/%d/%d, want %d/%d/%d", done, total, rows, n, n, n)
	}
}

// TestServeOptsTelemetry covers the opt-in surfaces: /metrics serves
// the registry's Prometheus exposition with the right content type,
// /readyz follows the Ready callback (503 + reason when not ready),
// and the pprof index mounts only when asked for.
func TestServeOptsTelemetry(t *testing.T) {
	reg := obs.NewRegistry()
	reg.AtomicCounter("resultcache.hits").Add(3)
	ready := false
	srv, err := ServeOpts("127.0.0.1:0", func() Status {
		return Status{Tool: "test", Version: "v1", GitSHA: "abc"}
	}, Options{
		Metrics: reg,
		Ready:   func() (bool, string) { return ready, "index loading" },
		Pprof:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	get := func(path string) (int, string, string) {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
	}

	if code, body, _ := get("/readyz"); code != http.StatusServiceUnavailable ||
		!strings.Contains(body, "index loading") {
		t.Fatalf("/readyz while not ready = %d %q, want 503 + reason", code, body)
	}
	ready = true
	if code, body, _ := get("/readyz"); code != http.StatusOK || body != "ok\n" {
		t.Fatalf("/readyz when ready = %d %q", code, body)
	}

	code, body, ct := get("/metrics")
	if code != http.StatusOK || ct != obs.PromContentType {
		t.Fatalf("/metrics = %d, content type %q", code, ct)
	}
	if !strings.Contains(body, "# TYPE resultcache_hits_total counter\nresultcache_hits_total 3\n") {
		t.Fatalf("/metrics exposition missing counter:\n%s", body)
	}

	if code, _, _ := get("/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/ = %d with Pprof on", code)
	}

	// The status snapshot carries the build info fields through.
	var st Status
	_, body, _ = get("/status")
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st.Version != "v1" || st.GitSHA != "abc" {
		t.Fatalf("status build info = %q/%q", st.Version, st.GitSHA)
	}

	// Without opts, /readyz is ok and /metrics and pprof stay unmounted
	// (the fallback handler answers "/" with the snapshot instead).
	plain, err := Serve("127.0.0.1:0", func() Status { return Status{Tool: "plain"} })
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	getPlain := func(path string) (int, string) {
		resp, err := http.Get("http://" + plain.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode, resp.Header.Get("Content-Type")
	}
	if code, _ := getPlain("/readyz"); code != http.StatusOK {
		t.Fatalf("plain /readyz = %d", code)
	}
	if _, ct := getPlain("/metrics"); ct != "application/json" {
		t.Fatalf("plain /metrics content type %q, want the JSON fallback", ct)
	}
}
