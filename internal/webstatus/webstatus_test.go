package webstatus

import (
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"testing"
)

func TestServeStatus(t *testing.T) {
	var prog Progress
	prog.Set(3, 10)
	prog.Row()
	prog.Row()
	srv, err := Serve("127.0.0.1:0", func() Status {
		done, total, rows := prog.Snapshot()
		return Status{
			Tool: "test", Done: done, Total: total, Rows: rows,
			Runs: 5, Metrics: map[string]int64{"engine.events": 42},
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	for _, path := range []string{"/", "/status"} {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("%s: content type %q", path, ct)
		}
		var st Status
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatalf("%s: body not JSON: %v (%s)", path, err, body)
		}
		if st.Tool != "test" || st.Done != 3 || st.Total != 10 || st.Rows != 2 || st.Runs != 5 {
			t.Fatalf("%s: status = %+v", path, st)
		}
		if st.Metrics["engine.events"] != 42 {
			t.Fatalf("%s: metrics = %v", path, st.Metrics)
		}
		if st.StartUnixNS == 0 || st.UptimeNS < 0 {
			t.Fatalf("%s: timestamps = %d/%d", path, st.StartUnixNS, st.UptimeNS)
		}
	}

	resp, err := http.Get("http://" + srv.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "ok\n" {
		t.Fatalf("/healthz = %d %q", resp.StatusCode, body)
	}
}

// TestProgressConcurrent: the tracker is written from sweep callbacks
// and read from request handlers concurrently; counters must be
// consistent under the race detector.
func TestProgressConcurrent(t *testing.T) {
	var prog Progress
	srv, err := Serve("127.0.0.1:0", func() Status {
		done, total, rows := prog.Snapshot()
		return Status{Done: done, Total: total, Rows: rows}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const n = 50
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 1; i <= n; i++ {
			prog.Set(i, n)
			prog.Row()
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			resp, err := http.Get("http://" + srv.Addr() + "/status")
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	wg.Wait()

	done, total, rows := prog.Snapshot()
	if done != n || total != n || rows != n {
		t.Fatalf("final snapshot = %d/%d/%d, want %d/%d/%d", done, total, rows, n, n, n)
	}
}
