// Package webstatus is the HTTP status/health/telemetry surface shared
// by every serving command: the read-only snapshot endpoint the
// long-running CLIs (sweep, figure6, tables) expose behind their -http
// flag, and the base cmd/prefetchd mounts its job routes on. Beyond
// /status and /healthz, a server can opt into a Prometheus /metrics
// exposition of an obs.Registry, a /readyz readiness probe, and the
// net/http/pprof profiling handlers. The status handler only reads a
// caller-supplied snapshot function, so the work being observed never
// blocks on a slow client.
package webstatus

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
	"time"

	"prefetchsim/internal/obs"
)

// Status is one live snapshot of a running sweep.
type Status struct {
	// Tool is the serving command's name.
	Tool string `json:"tool"`
	// Done and Total count sweep jobs (Total 0 = unknown).
	Done  int `json:"done"`
	Total int `json:"total"`
	// Rows counts result rows emitted so far.
	Rows int `json:"rows"`
	// Runs counts recorded per-run manifests (including shared
	// baselines), when a ManifestRecorder is attached.
	Runs int `json:"runs"`
	// Metrics is the current sweep-wide metric-total snapshot.
	Metrics map[string]int64 `json:"metrics,omitempty"`
	// JobSpans aggregates job lifecycle spans per class (cmd/prefetchd
	// keys it by cache disposition: hit, miss, coalesced).
	JobSpans map[string]JobSpanAgg `json:"job_spans,omitempty"`
	// Version and GitSHA identify the serving build (set them from the
	// command's -version value and obs.RepoSHA()).
	Version string `json:"version,omitempty"`
	GitSHA  string `json:"git_sha,omitempty"`
	// StartUnixNS and UptimeNS situate the snapshot in wall time.
	StartUnixNS int64 `json:"start_unix_ns"`
	UptimeNS    int64 `json:"uptime_ns"`
}

// JobSpanAgg sums one class of settled jobs' lifecycle spans. WaitUS
// and RunUS carry the exact values the server's latency histograms
// observed, so class sums reconcile with histogram sums; TotalUS is
// the summed submit→done wall time.
type JobSpanAgg struct {
	Count   int64 `json:"count"`
	WaitUS  int64 `json:"wait_us"`
	RunUS   int64 `json:"run_us"`
	TotalUS int64 `json:"total_us"`
}

// Progress is a tiny atomic (done, total, rows) tracker the CLIs bump
// from their Progress/OnRow callbacks and the server reads.
type Progress struct {
	done  atomic.Int64
	total atomic.Int64
	rows  atomic.Int64
}

// Set records the latest (done, total) progress callback.
func (p *Progress) Set(done, total int) {
	p.done.Store(int64(done))
	p.total.Store(int64(total))
}

// Row records one emitted result row.
func (p *Progress) Row() { p.rows.Add(1) }

// Snapshot reads the current counters.
func (p *Progress) Snapshot() (done, total, rows int) {
	return int(p.done.Load()), int(p.total.Load()), int(p.rows.Load())
}

// Server is a running status endpoint.
type Server struct {
	ln    net.Listener
	srv   *http.Server
	start time.Time
}

// Serve starts the endpoint on addr (host:port; port 0 picks a free
// one). fn is called per request to produce the snapshot; it must be
// safe for concurrent use. Routes: "/" and "/status" return the JSON
// snapshot, "/healthz" returns 200 ok.
func Serve(addr string, fn func() Status) (*Server, error) {
	return ServeMux(addr, fn, nil)
}

// ServeMux is Serve with extra routes: before the listener starts,
// register is called with the server's mux so a command can mount its
// own handlers (cmd/prefetchd adds its /jobs API) next to the shared
// "/status" and "/healthz" surface. register may be nil. The snapshot
// handler also serves "/" unless register claimed a pattern that
// shadows it.
func ServeMux(addr string, fn func() Status, register func(mux *http.ServeMux)) (*Server, error) {
	return ServeOpts(addr, fn, Options{Register: register})
}

// Options selects the optional surfaces of a status server.
type Options struct {
	// Register mounts extra routes on the server's mux before the
	// listener starts (cmd/prefetchd adds its /jobs API).
	Register func(mux *http.ServeMux)
	// Metrics, when non-nil, serves the registry's Prometheus text
	// exposition at /metrics.
	Metrics *obs.Registry
	// Ready, when non-nil, backs /readyz: 200 "ok" when ready, 503
	// with the returned reason otherwise. A server is typically ready
	// once its state is loaded and it is not draining. Without Ready,
	// /readyz mirrors /healthz (always ok).
	Ready func() (ok bool, reason string)
	// Pprof mounts the net/http/pprof handlers under /debug/pprof/.
	// Opt-in: profiling endpoints can stall the process (heap dumps,
	// 30-second CPU captures) and belong behind an operator flag.
	Pprof bool
}

// ServeOpts starts the status endpoint on addr with the given optional
// surfaces. Routes: "/" and "/status" (JSON snapshot), "/healthz"
// (liveness, always ok), "/readyz" (readiness via Options.Ready),
// "/metrics" (Prometheus, when a registry is given), "/debug/pprof/*"
// (when enabled), plus whatever Options.Register mounts.
func ServeOpts(addr string, fn func() Status, o Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("webstatus: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, start: time.Now()}
	mux := http.NewServeMux()
	handle := func(w http.ResponseWriter, r *http.Request) {
		st := fn()
		st.StartUnixNS = s.start.UnixNano()
		st.UptimeNS = time.Since(s.start).Nanoseconds()
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(st)
	}
	mux.HandleFunc("/", handle)
	mux.HandleFunc("/status", handle)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if o.Ready != nil {
			if ok, reason := o.Ready(); !ok {
				http.Error(w, reason, http.StatusServiceUnavailable)
				return
			}
		}
		fmt.Fprintln(w, "ok")
	})
	if o.Metrics != nil {
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", obs.PromContentType)
			o.Metrics.WritePrometheus(w)
		})
	}
	if o.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	if o.Register != nil {
		o.Register(mux)
	}
	s.srv = &http.Server{Handler: mux}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Shutdown gracefully stops the endpoint: the listener closes at once
// (no new connections), in-flight requests run to completion, and only
// when ctx ends are the stragglers cut off. This is the drain step of
// a serving process's shutdown — an abrupt http.Server.Close would
// sever responses mid-body.
func (s *Server) Shutdown(ctx context.Context) error { return s.srv.Shutdown(ctx) }

// CloseTimeout bounds how long Close waits for in-flight requests.
const CloseTimeout = 5 * time.Second

// Close shuts the endpoint down, draining in-flight requests for up to
// CloseTimeout. It is Shutdown with a default bound — the right call
// for CLI defer paths; servers coordinating a wider drain should call
// Shutdown with their own context.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), CloseTimeout)
	defer cancel()
	return s.Shutdown(ctx)
}
