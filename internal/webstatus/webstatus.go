// Package webstatus serves a sweep's live progress over HTTP: a tiny
// status endpoint the long-running CLIs (sweep, figure6, tables) expose
// behind their -http flag. The handler only reads a caller-supplied
// snapshot function, so the sweep itself never blocks on a slow client.
package webstatus

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync/atomic"
	"time"
)

// Status is one live snapshot of a running sweep.
type Status struct {
	// Tool is the serving command's name.
	Tool string `json:"tool"`
	// Done and Total count sweep jobs (Total 0 = unknown).
	Done  int `json:"done"`
	Total int `json:"total"`
	// Rows counts result rows emitted so far.
	Rows int `json:"rows"`
	// Runs counts recorded per-run manifests (including shared
	// baselines), when a ManifestRecorder is attached.
	Runs int `json:"runs"`
	// Metrics is the current sweep-wide metric-total snapshot.
	Metrics map[string]int64 `json:"metrics,omitempty"`
	// StartUnixNS and UptimeNS situate the snapshot in wall time.
	StartUnixNS int64 `json:"start_unix_ns"`
	UptimeNS    int64 `json:"uptime_ns"`
}

// Progress is a tiny atomic (done, total, rows) tracker the CLIs bump
// from their Progress/OnRow callbacks and the server reads.
type Progress struct {
	done  atomic.Int64
	total atomic.Int64
	rows  atomic.Int64
}

// Set records the latest (done, total) progress callback.
func (p *Progress) Set(done, total int) {
	p.done.Store(int64(done))
	p.total.Store(int64(total))
}

// Row records one emitted result row.
func (p *Progress) Row() { p.rows.Add(1) }

// Snapshot reads the current counters.
func (p *Progress) Snapshot() (done, total, rows int) {
	return int(p.done.Load()), int(p.total.Load()), int(p.rows.Load())
}

// Server is a running status endpoint.
type Server struct {
	ln    net.Listener
	srv   *http.Server
	start time.Time
}

// Serve starts the endpoint on addr (host:port; port 0 picks a free
// one). fn is called per request to produce the snapshot; it must be
// safe for concurrent use. Routes: "/" and "/status" return the JSON
// snapshot, "/healthz" returns 200 ok.
func Serve(addr string, fn func() Status) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("webstatus: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, start: time.Now()}
	mux := http.NewServeMux()
	handle := func(w http.ResponseWriter, r *http.Request) {
		st := fn()
		st.StartUnixNS = s.start.UnixNano()
		st.UptimeNS = time.Since(s.start).Nanoseconds()
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(st)
	}
	mux.HandleFunc("/", handle)
	mux.HandleFunc("/status", handle)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	s.srv = &http.Server{Handler: mux}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the endpoint down.
func (s *Server) Close() error { return s.srv.Close() }
