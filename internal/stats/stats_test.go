package stats

import (
	"strings"
	"testing"
)

func TestAggregation(t *testing.T) {
	m := New(3)
	m.Nodes[0].Reads = 10
	m.Nodes[1].Reads = 20
	m.Nodes[2].Reads = 30
	m.Nodes[0].ReadMisses = 1
	m.Nodes[2].ReadMisses = 4
	m.Nodes[1].ReadStall = 100
	m.Nodes[2].ReadStall = 50
	if m.TotalReads() != 60 {
		t.Fatalf("TotalReads = %d", m.TotalReads())
	}
	if m.TotalReadMisses() != 5 {
		t.Fatalf("TotalReadMisses = %d", m.TotalReadMisses())
	}
	if m.TotalReadStall() != 150 {
		t.Fatalf("TotalReadStall = %d", m.TotalReadStall())
	}
}

func TestPrefetchEfficiency(t *testing.T) {
	m := New(2)
	if m.PrefetchEfficiency() != 0 {
		t.Fatal("efficiency with no prefetches must be 0")
	}
	m.Nodes[0].PrefetchesIssued = 8
	m.Nodes[1].PrefetchesIssued = 2
	m.Nodes[0].PrefetchesUseful = 5
	if got := m.PrefetchEfficiency(); got != 0.5 {
		t.Fatalf("efficiency = %v, want 0.5", got)
	}
}

func TestStringContainsEverything(t *testing.T) {
	m := New(1)
	m.Nodes[0].ReadMisses = 7
	m.Nodes[0].DelayedHits = 3
	m.ExecTime = 1234
	s := m.String()
	for _, want := range []string{"1234", "read misses: 7", "delayed hits", "network"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}
