// Package stats collects the measurements the paper reports: read
// misses, prefetch efficiency, read stall time (Figure 6), miss
// classification (cold/coherence/replacement, §5.1 and §5.3), and
// traffic.
package stats

import (
	"fmt"
	"strings"

	"prefetchsim/internal/sim"
)

// Node holds per-processor counters.
type Node struct {
	Reads  int64
	Writes int64

	FLCReadHits int64
	SLCReadHits int64
	// ReadMisses counts demand read misses at the SLC. A read that
	// merges with an in-flight prefetch is a DelayedHit instead: the
	// prefetch removed the miss, and the residual latency appears in
	// ReadStall (see DESIGN.md).
	ReadMisses int64
	// DelayedHits counts demand reads that found their block already
	// being prefetched.
	DelayedHits int64

	ColdMisses        int64
	CoherenceMisses   int64
	ReplacementMisses int64

	// ReadStall is total time the processor was blocked on reads beyond
	// the 1-pclock FLC hit time.
	ReadStall sim.Time
	// WriteStall is time blocked on full write buffers.
	WriteStall sim.Time
	// SyncStall is time blocked in acquires, releases and barriers.
	SyncStall sim.Time

	PrefetchesIssued int64
	// PrefetchesUseful counts prefetched blocks consumed by a demand
	// reference, including demand reads that merged with the prefetch
	// in flight.
	PrefetchesUseful int64
	PrefetchesMerged int64
	// PrefetchesUnconsumed is set at the end of a run: prefetched
	// blocks still tagged in the SLC (never referenced).
	PrefetchesUnconsumed int64

	InvalidationsReceived int64
	Writebacks            int64

	// ExecTime is the processor's local time when it executed End.
	ExecTime sim.Time
}

// Machine aggregates per-node counters plus system-wide traffic.
type Machine struct {
	Nodes []Node

	// Network traffic (from the mesh).
	NetMessages int64
	NetFlits    int64
	NetFlitHops int64

	// ExecTime is the whole-machine execution time (max over nodes).
	ExecTime sim.Time
}

// New returns a Machine with n per-node entries.
func New(n int) *Machine { return &Machine{Nodes: make([]Node, n)} }

// TotalReads sums demand reads across nodes.
func (m *Machine) TotalReads() int64 { return m.sum(func(n *Node) int64 { return n.Reads }) }

// TotalReadMisses sums demand SLC read misses across nodes.
func (m *Machine) TotalReadMisses() int64 {
	return m.sum(func(n *Node) int64 { return n.ReadMisses })
}

// TotalReadStall sums read stall time across nodes.
func (m *Machine) TotalReadStall() sim.Time {
	var t sim.Time
	for i := range m.Nodes {
		t += m.Nodes[i].ReadStall
	}
	return t
}

// TotalPrefetchesIssued sums issued prefetches.
func (m *Machine) TotalPrefetchesIssued() int64 {
	return m.sum(func(n *Node) int64 { return n.PrefetchesIssued })
}

// TotalPrefetchesUseful sums useful prefetches.
func (m *Machine) TotalPrefetchesUseful() int64 {
	return m.sum(func(n *Node) int64 { return n.PrefetchesUseful })
}

// PrefetchEfficiency is useful/issued (Figure 6, middle); 0 when no
// prefetches were issued.
func (m *Machine) PrefetchEfficiency() float64 {
	issued := m.TotalPrefetchesIssued()
	if issued == 0 {
		return 0
	}
	return float64(m.TotalPrefetchesUseful()) / float64(issued)
}

func (m *Machine) sum(f func(*Node) int64) int64 {
	var t int64
	for i := range m.Nodes {
		t += f(&m.Nodes[i])
	}
	return t
}

// String renders a compact human-readable report.
func (m *Machine) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "exec time: %d pclocks\n", m.ExecTime)
	fmt.Fprintf(&b, "reads: %d  read misses: %d (cold %d, coherence %d, replacement %d)\n",
		m.TotalReads(), m.TotalReadMisses(),
		m.sum(func(n *Node) int64 { return n.ColdMisses }),
		m.sum(func(n *Node) int64 { return n.CoherenceMisses }),
		m.sum(func(n *Node) int64 { return n.ReplacementMisses }))
	fmt.Fprintf(&b, "read stall: %d pclocks; delayed hits (in-flight prefetch): %d\n",
		m.TotalReadStall(), m.sum(func(n *Node) int64 { return n.DelayedHits }))
	fmt.Fprintf(&b, "prefetches: issued %d, useful %d (efficiency %.3f), merged %d, unconsumed %d\n",
		m.TotalPrefetchesIssued(), m.TotalPrefetchesUseful(), m.PrefetchEfficiency(),
		m.sum(func(n *Node) int64 { return n.PrefetchesMerged }),
		m.sum(func(n *Node) int64 { return n.PrefetchesUnconsumed }))
	fmt.Fprintf(&b, "network: %d messages, %d flits, %d flit-hops\n",
		m.NetMessages, m.NetFlits, m.NetFlitHops)
	return b.String()
}
