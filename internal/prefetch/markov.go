package prefetch

import (
	"prefetchsim/internal/blockmap"
	"prefetchsim/internal/mem"
)

// Markov implements a pointer-chase prefetcher for linked data
// structures, after Srivastava and Navalakha (arXiv:1801.08088) and the
// classic Joseph–Grunwald Markov predictor it builds on. Linked-list,
// hash-chain and graph traversals produce miss streams whose deltas are
// arbitrary — no stride detector can learn them — but whose *order*
// repeats: the address of the next node is a pure function of the
// current one. The prefetcher therefore records first-order miss
// correlations (block B was followed by block C) in a correlation
// table and, on the next visit to B, chases the recorded successor
// chain ahead of the demand stream.
//
// The table is keyed by block number in a blockmap.Table; each entry
// keeps the last markovSuccessors distinct successors in MRU order
// (pointer chains are deterministic, so the MRU slot is almost always
// the right one, but hash-bucket fan-out benefits from a second). To
// model finite hardware storage — and bound memory on huge irregular
// runs — the table is cleared when it exceeds maxEntries correlations;
// clearing keeps the backing array, so a steady-state run allocates
// nothing.
//
// Prefetching follows the shared tagged-block phase: a miss (or a
// consumed prefetch tag) at B emits the MRU successor chain of B up to
// the configured depth, so a learned list is streamed depth nodes ahead
// of the consumer.
type Markov struct {
	depth      int
	maxEntries int

	succs blockmap.Table[succSet]
	prev  mem.Block
	seen  bool
}

// succSet is one correlation entry: up to markovSuccessors successor
// blocks in MRU order.
type succSet struct {
	s [markovSuccessors]mem.Block
	n uint8
}

// markovSuccessors is the per-entry successor capacity.
const markovSuccessors = 2

// markovMaxEntries is the default correlation-table capacity.
const markovMaxEntries = 1 << 14

// NewMarkov returns a pointer-chase prefetcher that chases recorded
// successor chains depth blocks ahead (depth >= 1, typically the
// prefetch degree d).
func NewMarkov(depth int) *Markov {
	if depth < 1 {
		panic("prefetch: Markov depth must be >= 1")
	}
	return &Markov{depth: depth, maxEntries: markovMaxEntries}
}

// Name implements Prefetcher.
func (p *Markov) Name() string { return "Markov" }

// CrossesPages implements PageCrosser: recorded successors are
// previously demand-referenced addresses, so their translations are
// known and the §2 page filter does not apply.
func (p *Markov) CrossesPages() bool { return true }

// TableLen exposes the correlation-table occupancy, for tests.
func (p *Markov) TableLen() int { return p.succs.Len() }

// OnRead implements Prefetcher. Misses and consumed prefetch tags both
// advance the observed traversal; plain hits are invisible, exactly as
// the stride detectors treat them.
func (p *Markov) OnRead(r Request, emit func(mem.Block)) {
	if r.Hit && !r.TagConsumed {
		return
	}
	b := r.Block

	// Learn: the previous traversal step is followed by b.
	if p.seen && p.prev != b {
		p.record(p.prev, b)
	}
	p.prev, p.seen = b, true

	// Chase: stream the MRU successor chain ahead of the consumer.
	cur := b
	for k := 0; k < p.depth; k++ {
		e, ok := p.succs.Get(cur)
		if !ok || e.n == 0 {
			return
		}
		next := e.s[0]
		emit(next)
		if k == 0 && e.n > 1 && p.depth > 1 {
			// One step of fan-out for forked structures (hash buckets,
			// tree nodes): the second-most-recent successor.
			emit(e.s[1])
		}
		cur = next
	}
}

// record inserts the correlation from -> to, MRU-first.
func (p *Markov) record(from, to mem.Block) {
	if p.succs.Len() >= p.maxEntries {
		// Finite correlation storage: drop the learned state and relearn,
		// like a hardware table being recycled. Keeps the table bounded
		// and the backing array allocated.
		p.succs.Clear()
	}
	e := p.succs.Ref(from)
	if e.n > 0 && e.s[0] == to {
		return
	}
	for i := 1; i < int(e.n); i++ {
		if e.s[i] == to {
			// Move to front.
			copy(e.s[1:i+1], e.s[:i])
			e.s[0] = to
			return
		}
	}
	if e.n < markovSuccessors {
		e.n++
	}
	copy(e.s[1:], e.s[:markovSuccessors-1])
	e.s[0] = to
}
