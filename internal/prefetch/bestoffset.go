package prefetch

import (
	"prefetchsim/internal/mem"
)

// BestOffset implements offset prefetching with online offset selection
// — Michaud's best-offset algorithm generalized to pick several live
// offsets at once, the multi-stride flavour of Blom, Rietveld and van
// Nieuwpoort (arXiv:2412.16001). Loop nests that read several arrays in
// one fused loop present an *interleaved* multi-strided miss stream to
// the SLC; per-PC detectors see alternating strides and give up, but
// one constant block offset O still satisfies "B-O was referenced
// recently" for every stream. The prefetcher learns such offsets
// empirically:
//
//   - a small ring remembers the last boRecent trigger blocks;
//   - each miss tests every candidate offset O against the ring: if B-O
//     is in it, O scores a point (testing all candidates per trigger,
//     rather than Michaud's one-per-trigger round-robin, keeps a
//     perfectly periodic interleave from parity-locking each candidate
//     to a single stream);
//   - after boPhase misses the phase ends: the offsets scoring at least
//     boThreshold points become the live set (best score first, at most
//     width = degree of them), scores reset and the next learning phase
//     begins.
//
// Triggers (misses and consumed prefetch tags) emit B+O for every live
// offset. A random stream scores no offset above threshold, so the live
// set goes empty and the scheme stays silent rather than polluting.
type BestOffset struct {
	width int

	offsets []int64 // candidate offsets, blocks
	scores  []int
	tested  int

	recent [boRecent]mem.Block
	recN   int
	recAt  int

	live []int64
}

const (
	// boRecent is the recent-trigger ring length; it must cover at least
	// as many interleaved streams as a fused loop plausibly reads.
	boRecent = 16
	// boPhase is the number of misses per learning phase.
	boPhase = 64
	// boThreshold is the minimum score (out of boPhase) that makes an
	// offset live: an offset serving one of up to eight interleaved
	// streams still clears it, random traffic never does.
	boThreshold = boPhase / 8
)

// boCandidates are the candidate offsets, in blocks: the small strides
// fused loops actually produce, a few larger power-of-two row strides,
// and their backward counterparts.
var boCandidates = []int64{1, 2, 3, 4, 5, 6, 7, 8, 10, 12, 16, -1, -2, -3, -4, -8}

// NewBestOffset returns a best-offset prefetcher keeping at most width
// live offsets (width >= 1, typically the prefetch degree d).
func NewBestOffset(width int) *BestOffset {
	if width < 1 {
		panic("prefetch: best-offset width must be >= 1")
	}
	return &BestOffset{
		width:   width,
		offsets: boCandidates,
		scores:  make([]int, len(boCandidates)),
		live:    make([]int64, 0, width),
	}
}

// Name implements Prefetcher.
func (p *BestOffset) Name() string { return "BestOffset" }

// Live exposes the current live offset set, for tests.
func (p *BestOffset) Live() []int64 { return p.live }

// OnRead implements Prefetcher. Misses learn and trigger; consumed
// prefetch tags trigger only (they are the scheme's own hits, not
// fresh evidence of a stream).
func (p *BestOffset) OnRead(r Request, emit func(mem.Block)) {
	b := r.Block
	if !r.Hit {
		p.learn(b)
	}
	if !r.Hit || r.TagConsumed {
		for _, o := range p.live {
			pb := mem.Block(int64(b) + o)
			if pb != b {
				emit(pb)
			}
		}
	}
}

// learn scores every candidate offset against the recent ring, records
// the trigger, and rolls the learning phase over when it completes.
func (p *BestOffset) learn(b mem.Block) {
	for i, o := range p.offsets {
		if p.inRecent(mem.Block(int64(b) - o)) {
			p.scores[i]++
		}
	}
	p.tested++
	if p.tested == boPhase {
		p.adopt()
		p.tested = 0
		for i := range p.scores {
			p.scores[i] = 0
		}
	}

	p.recent[p.recAt] = b
	p.recAt = (p.recAt + 1) % boRecent
	if p.recN < boRecent {
		p.recN++
	}
}

// adopt ends a learning phase: the top-scoring offsets at or above the
// threshold become the live set. Ties break toward the smaller
// magnitude, then the positive direction, keeping selection
// deterministic.
func (p *BestOffset) adopt() {
	p.live = p.live[:0]
	for len(p.live) < p.width {
		best := -1
		for i, s := range p.scores {
			if s < boThreshold || p.adopted(p.offsets[i]) {
				continue
			}
			if best < 0 || s > p.scores[best] ||
				(s == p.scores[best] && better(p.offsets[i], p.offsets[best])) {
				best = i
			}
		}
		if best < 0 {
			return
		}
		p.live = append(p.live, p.offsets[best])
	}
}

func (p *BestOffset) adopted(o int64) bool {
	for _, l := range p.live {
		if l == o {
			return true
		}
	}
	return false
}

// better reports whether offset a is preferred over b at equal score.
func better(a, b int64) bool {
	aa, ab := a, b
	if aa < 0 {
		aa = -aa
	}
	if ab < 0 {
		ab = -ab
	}
	if aa != ab {
		return aa < ab
	}
	return a > b
}

func (p *BestOffset) inRecent(b mem.Block) bool {
	for i := 0; i < p.recN; i++ {
		if p.recent[i] == b {
			return true
		}
	}
	return false
}
