package prefetch

import (
	"testing"

	"prefetchsim/internal/mem"
)

// blockMiss builds a miss Request for a raw block number with PC 1.
func blockMiss(b mem.Block) Request {
	return miss(1, mem.BlockAddr(b))
}

func blockTagged(b mem.Block) Request {
	return taggedHit(1, mem.BlockAddr(b))
}

func TestMarkovLearnsChainOnSecondPass(t *testing.T) {
	p := NewMarkov(1)
	chain := []mem.Block{100, 7, 912, 40, 2048}

	// First traversal: nothing known, nothing proposed.
	for _, b := range chain {
		if got := collect(p, blockMiss(b)); got != nil {
			t.Fatalf("first pass proposed %v at block %d", got, b)
		}
	}
	// Second traversal: each step proposes the recorded successor.
	for i, b := range chain[:len(chain)-1] {
		got := collect(p, blockMiss(b))
		if !equalBlocks(got, []mem.Block{chain[i+1]}) {
			t.Fatalf("second pass at block %d proposed %v, want [%d]", b, got, chain[i+1])
		}
	}
}

func TestMarkovChasesDepthAhead(t *testing.T) {
	p := NewMarkov(3)
	chain := []mem.Block{5, 300, 71, 9000, 12, 55}
	for _, b := range chain {
		collect(p, blockMiss(b))
	}
	// Revisiting the head chases three nodes ahead.
	got := collect(p, blockMiss(chain[0]))
	if !equalBlocks(got, []mem.Block{300, 71, 9000}) {
		t.Fatalf("depth-3 chase proposed %v, want [300 71 9000]", got)
	}
}

func TestMarkovTaggedHitContinuesChain(t *testing.T) {
	p := NewMarkov(1)
	chain := []mem.Block{10, 500, 33, 808}
	for range [2]struct{}{} {
		for _, b := range chain {
			collect(p, blockMiss(b))
		}
	}
	// A consumed prefetch tag at 500 keeps streaming: proposes 33.
	got := collect(p, blockTagged(500))
	if !equalBlocks(got, []mem.Block{33}) {
		t.Fatalf("tagged hit proposed %v, want [33]", got)
	}
}

func TestMarkovMRUSuccessorWins(t *testing.T) {
	p := NewMarkov(1)
	// 100 -> 200 then 100 -> 300: the MRU successor (300) is chased.
	for _, b := range []mem.Block{100, 200, 100, 300, 100} {
		collect(p, blockMiss(b))
	}
	// The final miss at 100 proposes the MRU successor 300 first.
	got := collect(p, blockMiss(400))
	_ = got // transition 100->400 recorded; nothing asserted here
	got = collect(p, blockMiss(100))
	if len(got) == 0 || got[0] != 400 {
		t.Fatalf("MRU successor not chased first: got %v, want 400 first", got)
	}
}

func TestMarkovTableBounded(t *testing.T) {
	p := NewMarkov(1)
	p.maxEntries = 64
	for i := 0; i < 10000; i++ {
		collect(p, blockMiss(mem.Block(i*3+1)))
	}
	if p.TableLen() > 64 {
		t.Fatalf("correlation table grew to %d entries past the %d bound", p.TableLen(), 64)
	}
}

func TestMarkovCrossesPages(t *testing.T) {
	if !CrossesPages(NewMarkov(1)) {
		t.Fatal("Markov must report page-crossing capability")
	}
	for _, p := range []Prefetcher{None{}, NewSequential(1), NewIDetection(256, 1),
		NewDefaultDDetection(1), NewAdaptive(1), NewPerceptron(1), NewBestOffset(1)} {
		if CrossesPages(p) {
			t.Fatalf("%s must stay page-bound", p.Name())
		}
	}
}

func TestPerceptronSilentWhenCold(t *testing.T) {
	p := NewPerceptron(2)
	// A random-looking stream with no repeated transition must issue
	// nothing: every (prevDelta, delta) pair is fresh, so no weight can
	// reach the threshold.
	blocks := []mem.Block{10, 999, 54, 7121, 3, 880, 45_001, 17, 6000, 321}
	total := 0
	for _, b := range blocks {
		total += len(collect(p, blockMiss(b)))
	}
	if total != 0 {
		t.Fatalf("cold perceptron issued %d prefetches on an irregular stream", total)
	}
}

func TestPerceptronLearnsRepeatingDeltaSequence(t *testing.T) {
	p := NewPerceptron(1)
	// Delta cycle +3, +9, +20: defeats single-stride detection, but the
	// (prevDelta, delta) transitions repeat every cycle.
	deltas := []int64{3, 9, 20}
	b := mem.Block(1000)
	warm := 0
	issuedRight := 0
	issuedWrong := 0
	for cyc := 0; cyc < 40; cyc++ {
		for _, d := range deltas {
			next := mem.Block(int64(b) + d)
			got := collect(p, blockMiss(b))
			for _, g := range got {
				if g == next {
					issuedRight++
				} else {
					issuedWrong++
				}
			}
			if len(got) == 0 {
				warm++
			}
			b = next
		}
	}
	if issuedRight < 60 {
		t.Fatalf("perceptron locked onto the cycle only %d times (wrong %d, silent %d)",
			issuedRight, issuedWrong, warm)
	}
	if issuedWrong > issuedRight/10 {
		t.Fatalf("perceptron issued %d wrong vs %d right predictions", issuedWrong, issuedRight)
	}
}

func TestPerceptronUnlearnsAfterPhaseChange(t *testing.T) {
	p := NewPerceptron(1)
	// Learn a +2 stream, then switch to irregular traffic; the stale +2
	// predictions must stop within the pending-ring horizon.
	b := mem.Block(100)
	for i := 0; i < 100; i++ {
		collect(p, blockMiss(b))
		b += 2
	}
	stale := 0
	r := uint64(12345)
	for i := 0; i < 400; i++ {
		r = r*6364136223846793005 + 1442695040888963407
		nb := mem.Block(1_000_000 + r%100_000)
		for _, g := range collect(p, blockMiss(nb)) {
			if g == nb+2 {
				stale++
			}
		}
	}
	if stale > 120 {
		t.Fatalf("perceptron kept issuing the stale +2 prediction %d times into a random phase", stale)
	}
}

func TestBestOffsetAdoptsSingleStride(t *testing.T) {
	p := NewBestOffset(1)
	b := mem.Block(0)
	// Drive a stride-3 miss stream long enough for one learning phase
	// (boPhase triggers), then check the live set.
	for i := 0; i < 2*boPhase; i++ {
		collect(p, blockMiss(b))
		b += 3
	}
	live := p.Live()
	if len(live) != 1 || live[0] != 3 {
		t.Fatalf("live offsets after a stride-3 phase = %v, want [3]", live)
	}
	// Once live, every trigger proposes B+3.
	got := collect(p, blockMiss(b))
	if !equalBlocks(got, []mem.Block{b + 3}) {
		t.Fatalf("stride-3 trigger proposed %v, want [%d]", got, b+3)
	}
}

func TestBestOffsetHandlesInterleavedStreams(t *testing.T) {
	// Four same-stride streams interleaved round-robin: the per-PC
	// detectors see alternating deltas, but offset 2 satisfies every
	// stream.
	p := NewBestOffset(1)
	bases := []mem.Block{0, 1 << 16, 2 << 16, 3 << 16}
	step := mem.Block(0)
	for i := 0; i < 2*boPhase; i++ {
		s := i % len(bases)
		collect(p, blockMiss(bases[s]+step*2))
		if s == len(bases)-1 {
			step++
		}
	}
	live := p.Live()
	if len(live) != 1 || live[0] != 2 {
		t.Fatalf("live offsets on interleaved stride-2 streams = %v, want [2]", live)
	}
}

func TestBestOffsetStaysOffOnRandom(t *testing.T) {
	p := NewBestOffset(2)
	r := uint64(99)
	issued := 0
	for i := 0; i < 4000; i++ {
		r = r*6364136223846793005 + 1442695040888963407
		issued += len(collect(p, blockMiss(mem.Block(r%(1<<20)))))
	}
	if issued != 0 {
		t.Fatalf("best-offset issued %d prefetches on a uniform random stream", issued)
	}
	if len(p.Live()) != 0 {
		t.Fatalf("best-offset adopted offsets %v from random traffic", p.Live())
	}
}

func TestBestOffsetMultiWidthAdoptsSeveralOffsets(t *testing.T) {
	// Two interleaved streams with different strides (+3 and +5): with
	// width 2 both offsets go live. (The strides share no harmonic in
	// the candidate list — 15 is not a candidate — so each stream is
	// served by its own stride.)
	p := NewBestOffset(2)
	a, b := mem.Block(0), mem.Block(1<<20)
	for i := 0; i < 2*boPhase; i++ {
		if i%2 == 0 {
			collect(p, blockMiss(a))
			a += 3
		} else {
			collect(p, blockMiss(b))
			b += 5
		}
	}
	live := p.Live()
	has := func(o int64) bool {
		for _, l := range live {
			if l == o {
				return true
			}
		}
		return false
	}
	if !has(3) || !has(5) {
		t.Fatalf("live offsets on +3/+5 interleave = %v, want both 3 and 5", live)
	}
}

func TestZooNames(t *testing.T) {
	for _, tc := range []struct {
		p    Prefetcher
		want string
	}{
		{NewMarkov(1), "Markov"},
		{NewPerceptron(1), "Perceptron"},
		{NewBestOffset(1), "BestOffset"},
	} {
		if got := tc.p.Name(); got != tc.want {
			t.Errorf("Name() = %q, want %q", got, tc.want)
		}
	}
}

func TestZooConstructorsPanicOnBadDegree(t *testing.T) {
	for name, fn := range map[string]func(){
		"markov":     func() { NewMarkov(0) },
		"perceptron": func() { NewPerceptron(0) },
		"bestoffset": func() { NewBestOffset(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic on degree 0", name)
				}
			}()
			fn()
		}()
	}
}
