package prefetch

import (
	"testing"

	"prefetchsim/internal/mem"
	"prefetchsim/internal/trace"
)

// Tests for the §6 extension schemes: lookahead I-detection, Hagersten's
// latency-adaptive D-detection, and hybrid software-assisted prefetching.

func mergedMiss(pc trace.PC, addr mem.Addr) Request {
	return Request{PC: pc, Addr: addr, Block: mem.BlockOf(addr), Merged: true}
}

func TestLookaheadIDetGrowsDistanceWhenLate(t *testing.T) {
	p := NewLookaheadIDetection(256, 1)
	a := mem.Addr(64 * 32)
	collect(p, miss(7, a))
	// Second access: stride 1 block, init state, distance 1.
	got := collect(p, miss(7, a+32))
	if !equalBlocks(got, []mem.Block{66}) {
		t.Fatalf("initial launch = %v, want [66]", got)
	}
	// The stream's prefetches keep arriving late (merged): each late
	// access stretches the lookahead by one block. A late access is a
	// miss, so the whole (filtered-downstream) window is re-launched;
	// its far edge shows the distance.
	got = collect(p, mergedMiss(7, a+64))
	if len(got) == 0 || got[len(got)-1] != 68 { // distance 2
		t.Fatalf("after 1 late access = %v, want far edge 68", got)
	}
	got = collect(p, mergedMiss(7, a+96))
	if len(got) == 0 || got[len(got)-1] != 70 { // distance 3
		t.Fatalf("after 2 late accesses = %v, want far edge 70", got)
	}
}

func TestLookaheadIDetDistanceIsCapped(t *testing.T) {
	p := NewLookaheadIDetection(256, 1)
	a := mem.Addr(1 << 20)
	collect(p, miss(7, a))
	collect(p, miss(7, a+32))
	for i := 2; i < 40; i++ {
		collect(p, mergedMiss(7, a+mem.Addr(i*32)))
	}
	got := collect(p, mergedMiss(7, a+40*32))
	want := mem.Block((uint64(a)+40*32)>>5) + maxLookahead
	if len(got) != maxLookahead || got[len(got)-1] != want {
		t.Fatalf("capped window = %v, want %d blocks ending at %d", got, maxLookahead, want)
	}
}

func TestLookaheadIDetDecaysWhenTimely(t *testing.T) {
	p := NewLookaheadIDetection(256, 1)
	a := mem.Addr(1 << 21)
	collect(p, miss(7, a))
	collect(p, miss(7, a+32))
	// Stretch to distance 4.
	for i := 2; i < 5; i++ {
		collect(p, mergedMiss(7, a+mem.Addr(i*32)))
	}
	// Then a long run of perfectly timely consumptions: the distance
	// must decay back toward the degree.
	addr := a + 5*32
	for i := 0; i < 200; i++ {
		collect(p, taggedHit(7, addr))
		addr += 32
	}
	got := collect(p, taggedHit(7, addr))
	dist := int64(got[0]) - int64(mem.BlockOf(addr))
	if dist > 2 {
		t.Fatalf("distance %d after 200 timely hits; decay broken", dist)
	}
}

func TestPlainIDetIgnoresMerged(t *testing.T) {
	p := NewIDetection(256, 1)
	a := mem.Addr(1 << 22)
	collect(p, miss(7, a))
	collect(p, miss(7, a+32))
	got := collect(p, mergedMiss(7, a+64))
	if !equalBlocks(got, []mem.Block{(1<<22)/32 + 3}) {
		t.Fatalf("non-lookahead variant changed distance: %v", got)
	}
	if p.Name() != "I-det" || NewLookaheadIDetection(256, 1).Name() != "I-det-LA" {
		t.Fatal("names wrong")
	}
}

func TestHagerstenDDetGrowsStreamDistance(t *testing.T) {
	p := NewHagerstenDDetection(1)
	// Activate a stride-3 stream (6 misses).
	for i := 0; i < 6; i++ {
		collect(p, miss(0, mem.BlockAddr(mem.Block(1000+3*i))))
	}
	// Late (merged) misses along the stream stretch its distance.
	got := collect(p, mergedMiss(0, mem.BlockAddr(1018)))
	if !equalBlocks(got, []mem.Block{1024}) { // distance 2: 1018+2*3
		t.Fatalf("after late access = %v, want [1024]", got)
	}
	got = collect(p, mergedMiss(0, mem.BlockAddr(1021)))
	if !equalBlocks(got, []mem.Block{1030}) { // distance 3
		t.Fatalf("after 2nd late access = %v, want [1030]", got)
	}
	// Timely tagged hits keep the stretched distance (Hagersten only
	// grows it; the stream dies with its LRU entry).
	got = collect(p, taggedHit(0, mem.BlockAddr(1024)))
	if !equalBlocks(got, []mem.Block{1033}) {
		t.Fatalf("tagged continuation = %v, want [1033]", got)
	}
	if p.Name() != "D-det-LA" {
		t.Fatal("name wrong")
	}
}

func TestHybridPrefetchesHintedSitesImmediately(t *testing.T) {
	p := NewHybrid(map[trace.PC]int64{7: 96}, 1) // 3-block stride
	// First miss already launches: no detection phase.
	got := collect(p, miss(7, 6400))
	if !equalBlocks(got, []mem.Block{mem.BlockOf(6400 + 96)}) {
		t.Fatalf("first miss proposed %v", got)
	}
	// Tagged hits chain.
	got = collect(p, taggedHit(7, 6400+96))
	if !equalBlocks(got, []mem.Block{mem.BlockOf(6400 + 192)}) {
		t.Fatalf("tagged hit proposed %v", got)
	}
}

func TestHybridSilentWithoutHint(t *testing.T) {
	p := NewHybrid(map[trace.PC]int64{7: 96}, 1)
	if got := collect(p, miss(9, 6400)); got != nil {
		t.Fatalf("unhinted PC proposed %v", got)
	}
	if got := collect(p, taggedHit(9, 6400)); got != nil {
		t.Fatalf("unhinted tagged hit proposed %v", got)
	}
}

func TestHybridDegreeAndZeroStrideFiltered(t *testing.T) {
	p := NewHybrid(map[trace.PC]int64{1: 32, 2: 0}, 3)
	got := collect(p, miss(1, 32*100))
	if !equalBlocks(got, []mem.Block{101, 102, 103}) {
		t.Fatalf("degree-3 launch = %v", got)
	}
	if got := collect(p, miss(2, 64000)); got != nil {
		t.Fatalf("zero-stride hint proposed %v", got)
	}
	if p.Name() != "Hybrid" {
		t.Fatal("name wrong")
	}
}

func TestNewHybridPanicsOnBadDegree(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("did not panic")
		}
	}()
	NewHybrid(nil, 0)
}
