package prefetch

import (
	"prefetchsim/internal/mem"
)

// Perceptron implements a perceptron-learning prefetcher after Wang and
// Luo, "Data Cache Prefetching with Perceptron Learning"
// (arXiv:1712.00905). Instead of a hand-built state machine deciding
// *when* a detected pattern is trustworthy (Baer–Chen's four states,
// Hagersten's stride threshold), a perceptron learns the decision: each
// candidate block delta is scored by a dot product of small saturating
// weights selected by features of the current context, and only
// candidates whose score clears a threshold are prefetched.
//
// Features (each indexes one weight table):
//
//   - the (previous delta, candidate delta) transition — the core
//     feature, which learns arbitrary repeating delta sequences such as
//     +3,+9,+20,... that defeat single-stride detectors;
//   - the (load PC, candidate delta) pair — per-site bias;
//   - the candidate delta alone — global bias.
//
// Training is perceptron-style: when a read's actual delta is observed,
// the weights of that (context, delta) are incremented (the transition
// really happens), and predictions that age out of a small outstanding
// ring unconsumed have their weights decremented (the transition was
// predicted but didn't happen). Weights saturate at ±perceptronWMax, so
// one phase change cannot wipe out learned behaviour, and a cold table
// issues nothing — on truly random streams the threshold is never
// reached and the scheme stays silent instead of polluting.
//
// Candidate deltas are drawn from a short MRU list of recently observed
// deltas, so the scheme needs no a-priori stride table and adapts to
// whatever deltas the workload actually produces.
type Perceptron struct {
	degree int

	prev      mem.Block
	prevDelta int64
	seen      bool

	cands  [perceptronCands]int64
	candN  int
	wCtx   [perceptronTable]int8
	wPC    [perceptronTable]int8
	wGlob  [perceptronTable]int8
	pend   [perceptronPend]perceptronPred
	pendAt int
	scores [perceptronCands]int32 // scratch, avoids per-read allocation
}

// perceptronPred is one outstanding prediction awaiting confirmation.
type perceptronPred struct {
	block      mem.Block
	i1, i2, i3 uint16
	valid      bool
}

const (
	// perceptronCands is the candidate-delta MRU list length.
	perceptronCands = 8
	// perceptronTable sizes each weight table (a power of two).
	perceptronTable = 1 << 10
	// perceptronPend is the outstanding-prediction ring length; a
	// prediction not consumed within perceptronPend further predictions
	// counts as wrong.
	perceptronPend = 32
	// perceptronTheta is the issue threshold on the summed score.
	perceptronTheta = 4
	// perceptronWMax saturates each weight.
	perceptronWMax = 15
)

// NewPerceptron returns a perceptron-learning prefetcher issuing at
// most degree predictions per observed read (degree >= 1).
func NewPerceptron(degree int) *Perceptron {
	if degree < 1 {
		panic("prefetch: perceptron degree must be >= 1")
	}
	return &Perceptron{degree: degree}
}

// Name implements Prefetcher.
func (p *Perceptron) Name() string { return "Perceptron" }

// phash mixes two 64-bit feature values into a weight-table index.
func phash(a, b uint64) uint16 {
	h := a*0x9E3779B97F4A7C15 ^ b*0xBF58476D1CE4E5B9
	h ^= h >> 29
	return uint16((h * 0x94D049BB133111EB >> 48) & (perceptronTable - 1))
}

// OnRead implements Prefetcher. Misses and consumed prefetch tags drive
// both training and prediction; plain hits are invisible.
func (p *Perceptron) OnRead(r Request, emit func(mem.Block)) {
	if r.Hit && !r.TagConsumed {
		return
	}
	b := r.Block

	if !p.seen {
		p.prev, p.seen = b, true
		return
	}
	delta := int64(b) - int64(p.prev)
	if delta == 0 {
		return
	}

	// Train toward the observed transition: the previous context really
	// was followed by delta.
	bump(&p.wCtx[phash(uint64(p.prevDelta), uint64(delta))], 1)
	bump(&p.wPC[phash(uint64(r.PC), uint64(delta))], 1)
	bump(&p.wGlob[phash(0, uint64(delta))], 1)

	// Retire any outstanding prediction this read confirms.
	for i := range p.pend {
		if p.pend[i].valid && p.pend[i].block == b {
			p.pend[i].valid = false
		}
	}

	p.note(delta)
	p.prev, p.prevDelta = b, delta

	// Score every candidate delta in the new context and issue the
	// confident ones, best first, up to the degree.
	issued := 0
	for ci := 0; ci < p.candN; ci++ {
		p.scores[ci] = -1 << 30
		cand := p.cands[ci]
		i1 := phash(uint64(delta), uint64(cand))
		i2 := phash(uint64(r.PC), uint64(cand))
		i3 := phash(0, uint64(cand))
		score := int32(p.wCtx[i1]) + int32(p.wPC[i2]) + int32(p.wGlob[i3])
		if score >= perceptronTheta {
			p.scores[ci] = score
		}
	}
	for issued < p.degree {
		best, bestScore := -1, int32(-1<<30)
		for ci := 0; ci < p.candN; ci++ {
			if p.scores[ci] > bestScore {
				best, bestScore = ci, p.scores[ci]
			}
		}
		if best < 0 || bestScore == -1<<30 {
			break
		}
		p.scores[best] = -1 << 30
		cand := p.cands[best]
		pb := mem.Block(int64(b) + cand)
		if pb != b {
			emit(pb)
			p.remember(pb,
				phash(uint64(delta), uint64(cand)),
				phash(uint64(r.PC), uint64(cand)),
				phash(0, uint64(cand)))
			issued++
		} else {
			// Degenerate candidate; skip without consuming the budget.
			continue
		}
	}
}

// remember records an issued prediction, penalizing the one it evicts
// if that prediction was never consumed.
func (p *Perceptron) remember(b mem.Block, i1, i2, i3 uint16) {
	slot := &p.pend[p.pendAt]
	if slot.valid {
		bump(&p.wCtx[slot.i1], -1)
		bump(&p.wPC[slot.i2], -1)
		bump(&p.wGlob[slot.i3], -1)
	}
	*slot = perceptronPred{block: b, i1: i1, i2: i2, i3: i3, valid: true}
	p.pendAt = (p.pendAt + 1) % perceptronPend
}

// note inserts delta at the front of the candidate MRU list.
func (p *Perceptron) note(delta int64) {
	for i := 0; i < p.candN; i++ {
		if p.cands[i] == delta {
			copy(p.cands[1:i+1], p.cands[:i])
			p.cands[0] = delta
			return
		}
	}
	if p.candN < perceptronCands {
		p.candN++
	}
	copy(p.cands[1:], p.cands[:perceptronCands-1])
	p.cands[0] = delta
}

// bump adjusts a saturating weight by d.
func bump(w *int8, d int8) {
	v := int16(*w) + int16(d)
	if v > perceptronWMax {
		v = perceptronWMax
	}
	if v < -perceptronWMax {
		v = -perceptronWMax
	}
	*w = int8(v)
}
