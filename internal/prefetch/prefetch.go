// Package prefetch implements the hardware prefetching schemes the paper
// compares (§3), all prefetching into the second-level cache only:
//
//   - Sequential prefetching (§3.4): on a miss to block B, prefetch
//     B+1..B+d; on a hit to a block tagged "prefetched", clear the tag
//     and prefetch the block d ahead.
//   - I-detection stride prefetching (§3.2–3.3): a Reference Prediction
//     Table indexed by load-instruction address with the Baer–Chen
//     four-state control algorithm (init/steady/transient/no-pref).
//   - D-detection stride prefetching (§3.2–3.3): Hagersten's scheme,
//     detecting strides from miss addresses alone via a miss list,
//     stride frequency table, common-stride list and stream list.
//   - Adaptive sequential prefetching (§6, an extension from Dahlgren,
//     Dubois and Stenström [6]): sequential prefetching whose degree
//     adapts to a measured prefetch-usefulness ratio and can reach zero.
//
// All schemes share the same prefetching phase: the machine tags blocks
// brought in by prefetch, and the first demand reference to a tagged
// block both counts the prefetch as useful and triggers the next
// prefetch of the sequence.
//
// A prefetcher only *proposes* blocks; the machine filters proposals that
// are already cached, already in flight, cross a page boundary (paper
// §2), or would overflow the SLWB.
package prefetch

import (
	"prefetchsim/internal/mem"
	"prefetchsim/internal/trace"
)

// Request describes one read presented to the SLC (i.e., an FLC read
// miss), the only references a prefetcher observes (paper §2).
type Request struct {
	PC    trace.PC
	Addr  mem.Addr
	Block mem.Block
	// Hit reports whether the block was present in the SLC.
	Hit bool
	// TagConsumed reports that the block carried the "prefetched" tag,
	// now cleared: the prefetching-phase trigger.
	TagConsumed bool
	// Merged reports that the block was not present but its prefetch
	// was already in flight: the prefetch was issued too late to hide
	// the whole latency. Lookahead-adaptive schemes (§6: Baer–Chen's
	// lookahead-PC, Hagersten's distance adjustment) key off this.
	Merged bool
}

// Prefetcher proposes blocks to prefetch in reaction to SLC reads.
type Prefetcher interface {
	// Name identifies the scheme in reports ("I-det", "D-det", "Seq"...).
	Name() string
	// OnRead observes one SLC read and proposes prefetch blocks via
	// emit. Proposals may be duplicates or uncacheable; the machine
	// filters them.
	OnRead(r Request, emit func(mem.Block))
}

// PageCrosser is the optional capability of schemes whose proposals may
// leave the triggering reference's page. The paper's §2 rule — never
// prefetch across a page boundary — exists because stride and
// sequential prefetchers *compute* speculative virtual addresses whose
// translations may not exist. Correlation-based schemes (Markov
// pointer-chase) only re-issue addresses that were demand-referenced
// before, so their translations are known and the machine lifts the
// page filter for them.
type PageCrosser interface {
	CrossesPages() bool
}

// CrossesPages reports whether p may propose blocks outside the
// triggering page.
func CrossesPages(p Prefetcher) bool {
	c, ok := p.(PageCrosser)
	return ok && c.CrossesPages()
}

// None is the baseline architecture: no prefetching.
type None struct{}

// Name implements Prefetcher.
func (None) Name() string { return "baseline" }

// OnRead implements Prefetcher.
func (None) OnRead(Request, func(mem.Block)) {}

// Sequential implements fixed sequential prefetching with degree d
// (paper §3.4).
type Sequential struct {
	degree int
}

// NewSequential returns a sequential prefetcher of degree d (d >= 1).
func NewSequential(d int) *Sequential {
	if d < 1 {
		panic("prefetch: sequential degree must be >= 1")
	}
	return &Sequential{degree: d}
}

// Name implements Prefetcher.
func (s *Sequential) Name() string { return "Seq" }

// OnRead implements Prefetcher.
func (s *Sequential) OnRead(r Request, emit func(mem.Block)) {
	switch {
	case !r.Hit:
		// Miss to B: prefetch B+1 .. B+d.
		for k := 1; k <= s.degree; k++ {
			emit(r.Block + mem.Block(k))
		}
	case r.TagConsumed:
		// Hit on a tagged block: prefetch the block d ahead.
		emit(r.Block + mem.Block(s.degree))
	}
}

// rptState is the Baer–Chen control state (paper Figure 4).
type rptState uint8

const (
	// rptNew: entry just allocated; no stride known yet.
	rptNew rptState = iota
	// rptInit: stride computed; prefetching; not yet confirmed twice.
	rptInit
	// rptSteady: the instruction accessed the same stride sequence
	// three times in a row.
	rptSteady
	// rptTransient: two incorrect predictions in a row; stride
	// recalculated; still prefetching.
	rptTransient
	// rptNoPref: three incorrect predictions in a row; prefetching for
	// this instruction is stopped (the feature that keeps I-detection's
	// useless-prefetch count low, §5.2).
	rptNoPref
)

type rptEntry struct {
	pc     trace.PC
	valid  bool
	prev   mem.Addr
	stride int64
	state  rptState
	// dist is the current lookahead distance in stride units (lookahead
	// variant only); timely counts consecutive in-time prefetch
	// consumptions, used to decay dist back toward the degree.
	dist   uint8
	timely uint8
}

// IDetection is the I-detection stride prefetching scheme: a 256-entry
// direct-mapped Reference Prediction Table tagged by load-instruction
// address (paper §3.2, after Baer and Chen [1], sized as in Chen and
// Baer [5]).
type IDetection struct {
	entries []rptEntry
	mask    uint32
	degree  int
	// lookahead enables the dynamic-distance variant modelled on Baer
	// and Chen's lookahead-PC (§6): when a prefetch arrives late (the
	// demand read merges with it in flight), the entry's prefetch
	// distance grows, emulating a lookahead that runs far enough ahead
	// to hide the observed latency.
	lookahead bool
}

// NewIDetection returns an I-detection prefetcher with a direct-mapped
// RPT of entries entries (a power of two; the paper uses 256) and
// prefetch degree d.
func NewIDetection(entries, d int) *IDetection {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("prefetch: RPT entries must be a power of two")
	}
	if d < 1 {
		panic("prefetch: degree must be >= 1")
	}
	return &IDetection{
		entries: make([]rptEntry, entries),
		mask:    uint32(entries - 1),
		degree:  d,
	}
}

// NewLookaheadIDetection returns the dynamic-lookahead variant of
// I-detection, standing in for Baer and Chen's lookahead-PC scheme
// (paper §6): the prefetch distance of a load instruction stretches
// when its prefetches are observed to arrive late.
func NewLookaheadIDetection(entries, d int) *IDetection {
	p := NewIDetection(entries, d)
	p.lookahead = true
	return p
}

// maxLookahead caps the dynamic prefetch distance, in stride units.
const maxLookahead = 8

// Name implements Prefetcher.
func (p *IDetection) Name() string {
	if p.lookahead {
		return "I-det-LA"
	}
	return "I-det"
}

// distance returns the entry's current prefetch distance in stride
// units and updates the lookahead adaptation.
func (p *IDetection) distance(e *rptEntry, r Request) int {
	if !p.lookahead {
		return p.degree
	}
	if e.dist < uint8(p.degree) {
		e.dist = uint8(p.degree)
	}
	switch {
	case r.Merged:
		// Late prefetch: run further ahead.
		if e.dist < maxLookahead {
			e.dist++
		}
		e.timely = 0
	case r.TagConsumed:
		// In-time consumption; decay slowly back toward the degree.
		e.timely++
		if e.timely >= 32 && e.dist > uint8(p.degree) {
			e.dist--
			e.timely = 0
		}
	}
	return int(e.dist)
}

// OnRead implements Prefetcher. Every read presented to the SLC is
// matched against the RPT; new entries are allocated on SLC misses only
// (paper §3.2).
func (p *IDetection) OnRead(r Request, emit func(mem.Block)) {
	e := &p.entries[uint32(r.PC)&p.mask]
	if !e.valid || e.pc != r.PC {
		if r.Hit {
			return // allocate on SLC miss only
		}
		*e = rptEntry{pc: r.PC, valid: true, prev: r.Addr, state: rptNew}
		return
	}

	if e.state == rptNew {
		// Second appearance: compute the stride, move to init, and
		// start prefetching (paper Figure 4).
		e.stride = int64(r.Addr) - int64(e.prev)
		e.prev = r.Addr
		e.state = rptInit
		p.launch(r.Addr, e.stride, p.degree, emit)
		return
	}

	correct := int64(r.Addr) == int64(e.prev)+e.stride
	prevPrev := e.prev
	e.prev = r.Addr
	switch e.state {
	case rptSteady:
		if !correct {
			e.state = rptInit // single incorrect: keep stride
		}
	case rptInit:
		if correct {
			e.state = rptSteady
		} else {
			// Second incorrect in a row: recalculate the stride from
			// the preceding two addresses.
			e.stride = int64(r.Addr) - int64(prevPrev)
			e.state = rptTransient
		}
	case rptTransient:
		if correct {
			e.state = rptSteady
		} else {
			e.stride = int64(r.Addr) - int64(prevPrev)
			e.state = rptNoPref
		}
	case rptNoPref:
		if correct {
			e.state = rptTransient
		} else {
			e.stride = int64(r.Addr) - int64(prevPrev)
		}
	}

	if e.state == rptNoPref || e.stride == 0 {
		return
	}
	d := p.distance(e, r)
	if correct {
		if r.TagConsumed || !r.Hit {
			// Continue the sequence: the block d*S ahead (§3.3). On a
			// miss the earlier blocks are launched too, recovering
			// sequences whose prefetches were lost.
			if !r.Hit {
				p.launch(r.Addr, e.stride, d, emit)
			} else {
				emit(blockAt(r.Addr, int64(d)*e.stride))
			}
		}
	} else if e.state != rptNoPref {
		// New potential sequence: prefetch ahead along the (possibly
		// recalculated) stride.
		p.launch(r.Addr, e.stride, d, emit)
	}
}

// launch proposes blocks addr+S .. addr+d*S.
func (p *IDetection) launch(addr mem.Addr, stride int64, d int, emit func(mem.Block)) {
	if stride == 0 {
		return
	}
	for k := 1; k <= d; k++ {
		emit(blockAt(addr, int64(k)*stride))
	}
}

func blockAt(addr mem.Addr, delta int64) mem.Block {
	return mem.BlockOf(mem.Addr(int64(addr) + delta))
}
