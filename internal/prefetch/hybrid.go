package prefetch

import (
	"prefetchsim/internal/mem"
	"prefetchsim/internal/trace"
)

// Hybrid implements the software-assisted stride prefetching of
// Bianchini and LeBlanc discussed in §6 of the paper [2]: the compiler
// (here: the workload itself) supplies the stride of each load site up
// front, so no hardware detection phase is needed — prefetching starts
// at a site's very first miss. The prefetching phase is the common
// tagged-block scheme shared by all the paper's prefetchers.
//
// Load sites without a hint never prefetch (the hardware is told
// exactly which instructions stream).
type Hybrid struct {
	degree int
	// strides maps a load site to its compile-time-known stride in
	// bytes.
	strides map[trace.PC]int64
}

// NewHybrid returns a hybrid prefetcher of degree d with the given
// per-load-site stride table (byte strides).
func NewHybrid(strides map[trace.PC]int64, d int) *Hybrid {
	if d < 1 {
		panic("prefetch: hybrid degree must be >= 1")
	}
	table := make(map[trace.PC]int64, len(strides))
	for pc, s := range strides {
		if s == 0 {
			continue
		}
		// The compiler knows the block size: for element strides shorter
		// than a block it emits next-block prefetches, since in-block
		// neighbours are already resident.
		if s > 0 && s < mem.BlockBytes {
			s = mem.BlockBytes
		} else if s < 0 && s > -mem.BlockBytes {
			s = -mem.BlockBytes
		}
		table[pc] = s
	}
	return &Hybrid{degree: d, strides: table}
}

// Name implements Prefetcher.
func (p *Hybrid) Name() string { return "Hybrid" }

// OnRead implements Prefetcher. With the stride known a priori there is
// no detection: a miss launches the window immediately, and tagged hits
// keep the stream running, exactly like the hardware schemes'
// prefetching phase.
func (p *Hybrid) OnRead(r Request, emit func(mem.Block)) {
	stride, ok := p.strides[r.PC]
	if !ok {
		return
	}
	switch {
	case !r.Hit:
		for k := 1; k <= p.degree; k++ {
			emit(blockAt(r.Addr, int64(k)*stride))
		}
	case r.TagConsumed:
		emit(blockAt(r.Addr, int64(p.degree)*stride))
	}
}
