package prefetch

import "prefetchsim/internal/mem"

// Adaptive implements adaptive sequential prefetching, the extension
// discussed in §6 of the paper (proposed by Dahlgren, Dubois and
// Stenström [6]): sequential prefetching whose degree is adjusted
// dynamically from a heuristic measure of spatial locality. The degree
// can reach zero, switching prefetching off during low-locality phases
// and keeping useless traffic down.
//
// The mechanism counts, per adaptation window, how many prefetched
// blocks were actually consumed (tag hits) versus issued. If the useful
// fraction exceeds raiseAt the degree doubles (capped at maxDegree); if
// it falls below lowerAt the degree halves (possibly to zero). With
// degree zero, every probeEvery-th miss issues a single probe prefetch
// so the mechanism can detect that locality has returned.
type Adaptive struct {
	degree    int
	maxDegree int

	window  int // prefetches per adaptation decision
	raiseAt float64
	lowerAt float64

	issued   int
	useful   int
	missCnt  int
	probeGap int
}

// Adaptation defaults, following the spirit of [6].
const (
	adaptWindow  = 16
	adaptRaise   = 0.75
	adaptLower   = 0.40
	adaptMaxDeg  = 8
	adaptProbeAt = 4 // with degree 0, probe every 4th miss
)

// NewAdaptive returns an adaptive sequential prefetcher starting at
// degree initial (clamped to [0, maxDegree]).
func NewAdaptive(initial int) *Adaptive {
	if initial < 0 {
		initial = 0
	}
	if initial > adaptMaxDeg {
		initial = adaptMaxDeg
	}
	return &Adaptive{
		degree:    initial,
		maxDegree: adaptMaxDeg,
		window:    adaptWindow,
		raiseAt:   adaptRaise,
		lowerAt:   adaptLower,
		probeGap:  adaptProbeAt,
	}
}

// Name implements Prefetcher.
func (p *Adaptive) Name() string { return "Adaptive" }

// Degree exposes the current degree, for tests and ablation reporting.
func (p *Adaptive) Degree() int { return p.degree }

// OnRead implements Prefetcher.
func (p *Adaptive) OnRead(r Request, emit func(mem.Block)) {
	if r.TagConsumed {
		p.useful++
		if p.degree == 0 {
			// A consumed probe is direct evidence that spatial locality
			// has returned; re-enable prefetching immediately.
			p.degree = 1
			p.issued, p.useful = 0, 0
		} else {
			p.adapt()
		}
	}
	count := func(b mem.Block) {
		p.issued++
		emit(b)
	}
	switch {
	case !r.Hit:
		p.missCnt++
		if p.degree == 0 {
			if p.missCnt%p.probeGap == 0 {
				count(r.Block + 1)
				p.adapt()
			}
			return
		}
		for k := 1; k <= p.degree; k++ {
			count(r.Block + mem.Block(k))
		}
		p.adapt()
	case r.TagConsumed:
		d := p.degree
		if d == 0 {
			d = 1 // keep a consumed probe stream alive
		}
		count(r.Block + mem.Block(d))
	}
}

// adapt applies one adaptation decision per full window of issued
// prefetches.
func (p *Adaptive) adapt() {
	if p.issued < p.window {
		return
	}
	ratio := float64(p.useful) / float64(p.issued)
	switch {
	case ratio > p.raiseAt && p.degree < p.maxDegree:
		if p.degree == 0 {
			p.degree = 1
		} else {
			p.degree *= 2
		}
	case ratio < p.lowerAt:
		p.degree /= 2
	}
	p.issued, p.useful = 0, 0
}
