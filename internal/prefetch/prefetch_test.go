package prefetch

import (
	"testing"

	"prefetchsim/internal/mem"
	"prefetchsim/internal/trace"
)

// collect runs one OnRead and returns the proposed blocks.
func collect(p Prefetcher, r Request) []mem.Block {
	var out []mem.Block
	p.OnRead(r, func(b mem.Block) { out = append(out, b) })
	return out
}

func miss(pc trace.PC, addr mem.Addr) Request {
	return Request{PC: pc, Addr: addr, Block: mem.BlockOf(addr)}
}

func taggedHit(pc trace.PC, addr mem.Addr) Request {
	return Request{PC: pc, Addr: addr, Block: mem.BlockOf(addr), Hit: true, TagConsumed: true}
}

func plainHit(pc trace.PC, addr mem.Addr) Request {
	return Request{PC: pc, Addr: addr, Block: mem.BlockOf(addr), Hit: true}
}

func equalBlocks(a, b []mem.Block) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestNoneNeverPrefetches(t *testing.T) {
	var p None
	if got := collect(p, miss(1, 64)); got != nil {
		t.Fatalf("baseline proposed %v", got)
	}
	if got := collect(p, taggedHit(1, 64)); got != nil {
		t.Fatalf("baseline proposed %v on tagged hit", got)
	}
	if p.Name() != "baseline" {
		t.Fatal("wrong name")
	}
}

func TestSequentialMissPrefetchesDegreeBlocks(t *testing.T) {
	p := NewSequential(3)
	got := collect(p, miss(0, 10*32))
	if !equalBlocks(got, []mem.Block{11, 12, 13}) {
		t.Fatalf("miss to block 10 proposed %v, want [11 12 13]", got)
	}
}

func TestSequentialTaggedHitPrefetchesDAhead(t *testing.T) {
	p := NewSequential(2)
	got := collect(p, taggedHit(0, 20*32))
	if !equalBlocks(got, []mem.Block{22}) {
		t.Fatalf("tagged hit on block 20 proposed %v, want [22]", got)
	}
}

func TestSequentialPlainHitSilent(t *testing.T) {
	p := NewSequential(1)
	if got := collect(p, plainHit(0, 640)); got != nil {
		t.Fatalf("plain hit proposed %v", got)
	}
}

func TestSequentialChainCoversConsecutiveBlocks(t *testing.T) {
	// The §3.4 example: miss B, then hits on tagged B+1, B+2 prefetch
	// B+1+d and B+2+d.
	p := NewSequential(1)
	if got := collect(p, miss(0, 100*32)); !equalBlocks(got, []mem.Block{101}) {
		t.Fatalf("initial miss proposed %v", got)
	}
	if got := collect(p, taggedHit(0, 101*32)); !equalBlocks(got, []mem.Block{102}) {
		t.Fatalf("hit on B+1 proposed %v", got)
	}
	if got := collect(p, taggedHit(0, 102*32)); !equalBlocks(got, []mem.Block{103}) {
		t.Fatalf("hit on B+2 proposed %v", got)
	}
}

func TestNewSequentialPanicsOnBadDegree(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewSequential(0) did not panic")
		}
	}()
	NewSequential(0)
}

func TestIDetectionFirstMissAllocatesSilently(t *testing.T) {
	p := NewIDetection(256, 1)
	if got := collect(p, miss(7, 1000)); got != nil {
		t.Fatalf("first miss proposed %v", got)
	}
}

func TestIDetectionSecondAccessDetectsStride(t *testing.T) {
	p := NewIDetection(256, 1)
	collect(p, miss(7, 10*32))
	got := collect(p, miss(7, 14*32)) // stride 4 blocks
	if !equalBlocks(got, []mem.Block{18}) {
		t.Fatalf("second access proposed %v, want [18]", got)
	}
}

func TestIDetectionDegreeLaunchesWholeWindow(t *testing.T) {
	p := NewIDetection(256, 3)
	collect(p, miss(7, 10*32))
	got := collect(p, miss(7, 12*32)) // stride 2 blocks
	if !equalBlocks(got, []mem.Block{14, 16, 18}) {
		t.Fatalf("launch proposed %v, want [14 16 18]", got)
	}
}

func TestIDetectionContinuesOnTaggedHit(t *testing.T) {
	p := NewIDetection(256, 1)
	collect(p, miss(7, 10*32))
	collect(p, miss(7, 14*32))
	// Prefetched block 18 arrives; processor consumes it.
	got := collect(p, taggedHit(7, 18*32))
	if !equalBlocks(got, []mem.Block{22}) {
		t.Fatalf("tagged continuation proposed %v, want [22]", got)
	}
}

func TestIDetectionZeroStrideSilent(t *testing.T) {
	p := NewIDetection(256, 1)
	collect(p, miss(7, 1000))
	if got := collect(p, miss(7, 1000)); got != nil {
		t.Fatalf("zero stride proposed %v", got)
	}
}

func TestIDetectionNoPrefAfterThreeIncorrect(t *testing.T) {
	p := NewIDetection(256, 1)
	a := mem.Addr(32 * 32)
	collect(p, miss(7, a))
	collect(p, miss(7, a+32))   // stride 32 → init
	collect(p, miss(7, a+64))   // correct → steady
	collect(p, miss(7, a+1000)) // incorrect 1 → init
	collect(p, miss(7, a+5000)) // incorrect 2 → transient
	collect(p, miss(7, a+9999)) // incorrect 3 → no-pref
	// Now even a would-be stride access must stay silent until a
	// correct prediction rebuilds confidence.
	if got := collect(p, miss(7, a+20000)); got != nil {
		t.Fatalf("no-pref state proposed %v", got)
	}
}

func TestIDetectionRecoversFromNoPref(t *testing.T) {
	p := NewIDetection(256, 1)
	a := mem.Addr(32 * 32)
	// Drive into no-pref.
	collect(p, miss(7, a))
	collect(p, miss(7, a+32))
	collect(p, miss(7, a+1000))
	collect(p, miss(7, a+5000))
	collect(p, miss(7, a+9000))
	collect(p, miss(7, a+13000)) // stride settles at 4000
	// In no-pref a correct prediction moves to transient (prefetching).
	got := collect(p, miss(7, a+17000))
	if len(got) == 0 {
		t.Fatal("correct prediction in no-pref did not resume prefetching")
	}
}

func TestIDetectionSingleIncorrectKeepsStride(t *testing.T) {
	p := NewIDetection(256, 1)
	a := mem.Addr(100 * 32)
	collect(p, miss(7, a))
	collect(p, miss(7, a+64)) // stride 2 blocks → init
	collect(p, miss(7, a+128))
	collect(p, miss(7, a+192)) // steady
	collect(p, miss(7, 5000*32))
	// steady → init kept stride 64; a correct access from the new
	// position continues with stride 64.
	got := collect(p, miss(7, 5000*32+64))
	if !equalBlocks(got, []mem.Block{5004}) {
		t.Fatalf("after single incorrect, proposed %v, want [5004] (stride kept)", got)
	}
}

func TestIDetectionAllocatesOnMissOnly(t *testing.T) {
	p := NewIDetection(256, 1)
	collect(p, plainHit(9, 1000)) // hit, unknown PC: no allocation
	// If PC 9 had been allocated, this would be its "second appearance"
	// and a stride would be computed; silence proves no allocation.
	if got := collect(p, miss(9, 2000)); got != nil {
		t.Fatalf("hit allocated an RPT entry: proposed %v", got)
	}
}

func TestIDetectionConflictEvicts(t *testing.T) {
	p := NewIDetection(256, 1)
	collect(p, miss(1, 32*32))
	collect(p, miss(1, 33*32)) // PC 1 in init, stride 1 block
	collect(p, miss(257, 999*32))
	// PC 257 maps to the same entry; PC 1's state is gone.
	if got := collect(p, miss(1, 34*32)); got != nil {
		t.Fatalf("evicted entry still predicted: %v", got)
	}
}

func TestIDetectionNegativeStride(t *testing.T) {
	p := NewIDetection(256, 1)
	collect(p, miss(7, 100*32))
	got := collect(p, miss(7, 96*32))
	if !equalBlocks(got, []mem.Block{92}) {
		t.Fatalf("negative stride proposed %v, want [92]", got)
	}
}

func TestIDetectionPanicsOnBadConfig(t *testing.T) {
	for name, fn := range map[string]func(){
		"entries not power of two": func() { NewIDetection(100, 1) },
		"zero degree":              func() { NewIDetection(256, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// driveDDet feeds a pure stride-s (blocks) miss sequence and returns the
// index of the first miss that produced a prefetch, or -1.
func driveDDet(p *DDetection, start mem.Block, s, n int) int {
	for i := 0; i < n; i++ {
		b := mem.Block(int64(start) + int64(i)*int64(s))
		got := collect(p, miss(0, mem.BlockAddr(b)))
		if len(got) > 0 {
			return i
		}
	}
	return -1
}

func TestDDetectionInitiatesAfterSixMisses(t *testing.T) {
	// Threshold 3 → 4 misses to promote the stride, 2 more to initiate:
	// the 6th miss (index 5) launches the first prefetch (§3.2).
	p := NewDefaultDDetection(1)
	if idx := driveDDet(p, 1000, 3, 10); idx != 5 {
		t.Fatalf("first prefetch at miss index %d, want 5", idx)
	}
}

func TestDDetectionPrefetchTargetsStride(t *testing.T) {
	p := NewDefaultDDetection(1)
	var last []mem.Block
	for i := 0; i < 6; i++ {
		b := mem.Block(1000 + 3*i)
		last = collect(p, miss(0, mem.BlockAddr(b)))
	}
	// Miss index 5 is block 1015; the stream expects 1018 next.
	if !equalBlocks(last, []mem.Block{1018}) {
		t.Fatalf("prefetch proposed %v, want [1018]", last)
	}
}

func TestDDetectionTaggedHitContinuesStream(t *testing.T) {
	p := NewDefaultDDetection(1)
	for i := 0; i < 6; i++ {
		collect(p, miss(0, mem.BlockAddr(mem.Block(1000+3*i))))
	}
	got := collect(p, taggedHit(0, mem.BlockAddr(1018)))
	if !equalBlocks(got, []mem.Block{1021}) {
		t.Fatalf("tagged continuation proposed %v, want [1021]", got)
	}
}

func TestDDetectionSecondStreamStartsFaster(t *testing.T) {
	// Once a stride is common, a brand-new stream with the same stride
	// needs only insert + confirm: prefetching from its 2nd/3rd miss,
	// well before the 6 misses the first stream needed.
	p := NewDefaultDDetection(1)
	driveDDet(p, 1000, 3, 8)
	idx := driveDDet(p, 500000, 3, 8)
	if idx < 0 || idx > 2 {
		t.Fatalf("second stream first prefetch at index %d, want <= 2", idx)
	}
}

func TestDDetectionRandomMissesStaySilent(t *testing.T) {
	p := NewDefaultDDetection(1)
	// Misses with all-distinct pairwise strides never promote anything.
	blocks := []mem.Block{10, 1000, 130, 77000, 42, 991, 123456, 7}
	for _, b := range blocks {
		if got := collect(p, miss(0, mem.BlockAddr(b))); got != nil {
			t.Fatalf("random miss stream proposed %v", got)
		}
	}
}

func TestDDetectionIgnoresPlainHits(t *testing.T) {
	p := NewDefaultDDetection(1)
	for i := 0; i < 20; i++ {
		if got := collect(p, plainHit(0, mem.BlockAddr(mem.Block(100+i)))); got != nil {
			t.Fatalf("plain hit proposed %v", got)
		}
	}
}

func TestDDetectionNegativeStrideStream(t *testing.T) {
	p := NewDefaultDDetection(1)
	if idx := driveDDet(p, 100000, -2, 10); idx != 5 {
		t.Fatalf("negative-stride stream first prefetch at %d, want 5", idx)
	}
}

func TestDDetectionDegreeLaunch(t *testing.T) {
	p := NewDefaultDDetection(3)
	var last []mem.Block
	for i := 0; i < 6; i++ {
		last = collect(p, miss(0, mem.BlockAddr(mem.Block(2000+5*i))))
	}
	// Activation at block 2025: launch 2030, 2035, 2040.
	if !equalBlocks(last, []mem.Block{2030, 2035, 2040}) {
		t.Fatalf("degree-3 launch proposed %v", last)
	}
}

func TestDDetectionPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad config did not panic")
		}
	}()
	NewDDetection(0, 3, 1)
}

func TestAdaptiveRaisesDegreeWhenUseful(t *testing.T) {
	p := NewAdaptive(1)
	b := mem.Block(1 << 20)
	collect(p, miss(0, mem.BlockAddr(b)))
	// Consume every prefetched block: sustained perfect locality.
	for i := 1; i < 200; i++ {
		collect(p, taggedHit(0, mem.BlockAddr(b+mem.Block(i))))
	}
	if p.Degree() <= 1 {
		t.Fatalf("degree = %d after perfect locality, want > 1", p.Degree())
	}
}

func TestAdaptiveDropsToZeroWhenUseless(t *testing.T) {
	p := NewAdaptive(4)
	// Misses whose prefetches are never consumed.
	for i := 0; i < 200; i++ {
		collect(p, miss(0, mem.BlockAddr(mem.Block(i*1000))))
	}
	if p.Degree() != 0 {
		t.Fatalf("degree = %d after zero locality, want 0", p.Degree())
	}
}

func TestAdaptiveProbesAtDegreeZero(t *testing.T) {
	p := NewAdaptive(0)
	issued := 0
	for i := 0; i < 16; i++ {
		issued += len(collect(p, miss(0, mem.BlockAddr(mem.Block(i*1000)))))
	}
	if issued == 0 {
		t.Fatal("degree-0 adaptive never probed")
	}
	if issued > 8 {
		t.Fatalf("degree-0 adaptive issued %d prefetches in 16 misses; probing too hot", issued)
	}
}

func TestAdaptiveRecoversFromZero(t *testing.T) {
	p := NewAdaptive(0)
	b := mem.Block(1 << 18)
	// Sequential misses: probes get consumed, degree should come back.
	for i := 0; i < 400; i++ {
		addr := mem.BlockAddr(b + mem.Block(i))
		got := collect(p, miss(0, addr))
		for range got {
			// Simulate consumption of each issued prefetch.
			collect(p, taggedHit(0, mem.BlockAddr(b+mem.Block(i+1))))
		}
	}
	if p.Degree() == 0 {
		t.Fatal("adaptive never recovered from degree 0")
	}
}

func TestPrefetcherNames(t *testing.T) {
	if NewSequential(1).Name() != "Seq" ||
		NewIDetection(256, 1).Name() != "I-det" ||
		NewDefaultDDetection(1).Name() != "D-det" ||
		NewAdaptive(1).Name() != "Adaptive" {
		t.Fatal("scheme names changed; reports depend on them")
	}
}
