package prefetch

import (
	"prefetchsim/internal/mem"
)

// DDetection implements Hagersten's D-detection stride prefetching
// scheme (paper §3.2, after [13]). It needs no program counter: strides
// are detected from the read-miss address stream alone.
//
// On each read miss, the miss address is matched against recent misses
// in the miss list and all pairwise strides are computed. Each stride's
// occurrence count accumulates in a frequency table; a stride seen
// stride-threshold times is promoted to the list of common strides. A
// newly computed stride that is already common indicates a potential
// stream, which enters the stream list; after two further confirming
// misses the stream starts prefetching, using the same prefetching
// phase as the other schemes.
//
// The four tables have 16 entries each with LRU replacement, and the
// stride threshold is 3, as in the paper.
type DDetection struct {
	degree    int
	threshold int
	// adaptDistance enables Hagersten's own prefetching phase (§6): "if
	// the prefetched block is accessed before it has arrived, the number
	// of blocks that are prefetched is increased", adjusting the
	// lookahead distance to the latency of a prefetch request.
	adaptDistance bool

	missList []mem.Block // most recent first
	maxList  int

	freq    []freqEntry // LRU, most recent first
	common  []int64     // LRU, most recent first
	streams []streamEntry
}

type freqEntry struct {
	stride int64
	count  int
}

type streamEntry struct {
	next    mem.Block // next block expected in the stream
	stride  int64     // blocks
	confirm int       // confirming misses seen
	active  bool      // prefetching started
	dist    int       // current prefetch distance (adaptive variant)
}

// confirmationsNeeded is the number of confirming misses a stream-list
// entry needs before prefetching starts. The entry itself is inserted by
// one miss and confirmed by the next, so "two additional misses are
// required to initiate prefetching" (§3.2).
const confirmationsNeeded = 1

// NewDDetection returns a D-detection prefetcher with tables of the
// given size, the given stride threshold, and prefetch degree d.
func NewDDetection(tableSize, threshold, d int) *DDetection {
	if tableSize < 1 || threshold < 1 || d < 1 {
		panic("prefetch: D-detection parameters must be positive")
	}
	return &DDetection{
		degree: d, threshold: threshold, maxList: tableSize,
		// The four LRU tables live at full capacity for the whole run;
		// move-to-front and front-insertion shift entries in place, so
		// after warm-up the detector never allocates (it sits on every
		// read miss of the hot loop).
		missList: make([]mem.Block, 0, tableSize),
		freq:     make([]freqEntry, 0, tableSize),
		common:   make([]int64, 0, tableSize),
		streams:  make([]streamEntry, 0, tableSize),
	}
}

// NewDefaultDDetection returns the paper's configuration: 16-entry
// tables, stride threshold 3, degree d.
func NewDefaultDDetection(d int) *DDetection { return NewDDetection(16, 3, d) }

// NewHagerstenDDetection returns D-detection with Hagersten's original
// latency-adaptive prefetching phase (§6) instead of the paper's common
// fixed-degree phase.
func NewHagerstenDDetection(d int) *DDetection {
	p := NewDefaultDDetection(d)
	p.adaptDistance = true
	return p
}

// maxStreamDistance caps the adaptive per-stream prefetch distance.
const maxStreamDistance = 8

// Name implements Prefetcher.
func (p *DDetection) Name() string {
	if p.adaptDistance {
		return "D-det-LA"
	}
	return "D-det"
}

// OnRead implements Prefetcher. D-detection observes misses (detection)
// and tagged hits (the shared prefetching phase).
func (p *DDetection) OnRead(r Request, emit func(mem.Block)) {
	if r.Hit {
		if r.TagConsumed {
			p.onTaggedHit(r.Block, emit)
		}
		return
	}
	p.onMiss(r.Block, r.Merged, emit)
}

func (p *DDetection) onMiss(b mem.Block, merged bool, emit func(mem.Block)) {
	// A miss matching an active or forming stream confirms/advances it.
	if p.advanceStream(b, false, merged, emit) {
		p.pushMiss(b)
		return
	}

	// Compute all strides against the recorded misses.
	for _, prev := range p.missList {
		s := int64(b) - int64(prev)
		if s == 0 {
			continue
		}
		if p.isCommon(s) {
			p.insertStream(b, s)
			continue
		}
		if p.bumpFreq(s) >= p.threshold {
			p.promote(s)
		}
	}
	p.pushMiss(b)
}

// onTaggedHit continues an active stream: consuming the tagged block at
// b prefetches the block degree*stride ahead.
func (p *DDetection) onTaggedHit(b mem.Block, emit func(mem.Block)) {
	p.advanceStream(b, true, false, emit)
}

// advanceStream finds a stream expecting block b and advances it. For a
// forming stream a match counts as a confirmation; once confirmed twice
// the stream activates and launches its first prefetches. It reports
// whether a stream matched.
func (p *DDetection) advanceStream(b mem.Block, tagged, merged bool, emit func(mem.Block)) bool {
	for i := range p.streams {
		st := &p.streams[i]
		if st.next != b {
			continue
		}
		st.next = mem.Block(int64(b) + st.stride)
		if st.active {
			d := p.degree
			if p.adaptDistance {
				if st.dist < p.degree {
					st.dist = p.degree
				}
				if merged && st.dist < maxStreamDistance {
					// The block was requested before its prefetch
					// arrived: increase the stream's lookahead.
					st.dist++
				}
				d = st.dist
			}
			// Shared prefetching phase: next block in the sequence,
			// d*stride ahead of the consumed block.
			emit(mem.Block(int64(b) + int64(d)*st.stride))
		} else if !tagged {
			st.confirm++
			if st.confirm >= confirmationsNeeded {
				st.active = true
				st.dist = p.degree
				for k := 1; k <= p.degree; k++ {
					emit(mem.Block(int64(b) + int64(k)*st.stride))
				}
			}
		}
		p.touchStream(i)
		return true
	}
	return false
}

func (p *DDetection) insertStream(b mem.Block, stride int64) {
	next := mem.Block(int64(b) + stride)
	for i := range p.streams {
		if p.streams[i].next == next && p.streams[i].stride == stride {
			p.touchStream(i)
			return
		}
	}
	p.streams = pushFront(p.streams, streamEntry{next: next, stride: stride}, p.maxList)
}

// pushFront inserts e at the front of an LRU list bounded to max
// entries, shifting the rest down in place and evicting the tail when
// full. The list never reallocates once it has grown to max (the
// constructor reserves the capacity).
func pushFront[E any](list []E, e E, max int) []E {
	if len(list) < max {
		list = append(list, e)
	}
	copy(list[1:], list)
	list[0] = e
	return list
}

func (p *DDetection) touchStream(i int) {
	if i == 0 {
		return
	}
	st := p.streams[i]
	copy(p.streams[1:i+1], p.streams[:i])
	p.streams[0] = st
}

func (p *DDetection) pushMiss(b mem.Block) {
	p.missList = pushFront(p.missList, b, p.maxList)
}

func (p *DDetection) isCommon(s int64) bool {
	for i, c := range p.common {
		if c == s {
			if i != 0 {
				copy(p.common[1:i+1], p.common[:i])
				p.common[0] = s
			}
			return true
		}
	}
	return false
}

// bumpFreq increments the frequency count of stride s (inserting it with
// LRU replacement if absent) and returns the new count.
func (p *DDetection) bumpFreq(s int64) int {
	for i := range p.freq {
		if p.freq[i].stride == s {
			p.freq[i].count++
			e := p.freq[i]
			copy(p.freq[1:i+1], p.freq[:i])
			p.freq[0] = e
			return e.count
		}
	}
	p.freq = pushFront(p.freq, freqEntry{stride: s, count: 1}, p.maxList)
	return 1
}

// promote moves stride s from the frequency table to the common-stride
// list.
func (p *DDetection) promote(s int64) {
	for i := range p.freq {
		if p.freq[i].stride == s {
			p.freq = append(p.freq[:i], p.freq[i+1:]...)
			break
		}
	}
	p.common = pushFront(p.common, s, p.maxList)
}
