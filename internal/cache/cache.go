// Package cache implements the two cache levels of a processing node
// (paper §2 and Figure 1):
//
//   - FLC: a 4 KB direct-mapped, write-through, no-write-allocate
//     first-level data cache that blocks on read misses and has an
//     external block-invalidation pin (inclusion is maintained by the
//     SLC).
//   - SLC: a write-back second-level cache, lockup-free via the SLWB.
//     Two tag stores are provided: an infinite one (the paper's default,
//     isolating cold and coherence misses) and a finite direct-mapped
//     one (§5.3). Each SLC line carries the 1-bit "prefetched" tag used
//     by the shared prefetching phase (§3.3–3.4).
//
// The package also provides WriteBuffer, the analytic FIFO occupancy
// model used for the 8-entry FLWB.
package cache

import (
	"prefetchsim/internal/blockmap"
	"prefetchsim/internal/mem"
	"prefetchsim/internal/sim"
)

// State is an SLC line's coherence state (MSI; the directory is the
// write-invalidate full-map protocol of Censier and Feautrier).
type State uint8

const (
	// Invalid: not present.
	Invalid State = iota
	// Shared: clean, possibly cached elsewhere.
	Shared
	// Modified: dirty, exclusive owner.
	Modified
)

func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Modified:
		return "M"
	}
	return "?"
}

// FLC is the first-level cache tag store: direct-mapped, write-through,
// no allocation on write misses. Only presence is tracked (write-through
// means FLC lines are never dirty).
type FLC struct {
	tags  []mem.Block
	valid []bool
	mask  uint64
}

// NewFLC returns an FLC of size bytes (must be a power-of-two multiple
// of the block size; the paper uses 4 KB).
func NewFLC(size int) *FLC {
	sets := size / mem.BlockBytes
	if sets <= 0 || sets&(sets-1) != 0 {
		panic("cache: FLC size must be a power-of-two number of blocks")
	}
	return &FLC{
		tags:  make([]mem.Block, sets),
		valid: make([]bool, sets),
		mask:  uint64(sets - 1),
	}
}

func (c *FLC) set(b mem.Block) int { return int(uint64(b) & c.mask) }

// Lookup reports whether block b is present.
func (c *FLC) Lookup(b mem.Block) bool {
	s := c.set(b)
	return c.valid[s] && c.tags[s] == b
}

// Fill installs block b (after a read miss completes), replacing any
// block in its set. The FLC is write-through so the victim is dropped
// silently.
func (c *FLC) Fill(b mem.Block) {
	s := c.set(b)
	c.tags[s] = b
	c.valid[s] = true
}

// Invalidate removes block b if present (the block-invalidation pin,
// driven by the SLC to maintain inclusion).
func (c *FLC) Invalidate(b mem.Block) {
	s := c.set(b)
	if c.valid[s] && c.tags[s] == b {
		c.valid[s] = false
	}
}

// Line is an SLC line's bookkeeping.
type Line struct {
	State State
	// Prefetched is the 1-bit tag of the prefetching phase: set when a
	// block arrives due to a prefetch, cleared when the processor first
	// references it (which triggers the next prefetch in the sequence).
	Prefetched bool
}

// Victim describes a line evicted by an insertion into a finite SLC.
type Victim struct {
	Block mem.Block
	Line  Line
	Valid bool
}

// Store is the SLC tag store. Implementations are the infinite store
// (paper default) and a finite direct-mapped store (§5.3).
type Store interface {
	// Lookup returns the line for b and whether it is present (present
	// means state != Invalid).
	Lookup(b mem.Block) (Line, bool)
	// Insert installs b with the given state, returning the victim it
	// displaced, if any. Inserting over an existing line updates it in
	// place (no victim).
	Insert(b mem.Block, s State, prefetched bool) Victim
	// SetState updates the state of a present line; it is a no-op if b
	// is absent (the line may have been victimized meanwhile).
	SetState(b mem.Block, s State)
	// ClearPrefetched clears the prefetched tag, reporting whether it
	// was set (a "useful prefetch" event).
	ClearPrefetched(b mem.Block) bool
	// Invalidate removes b, returning the line it held.
	Invalidate(b mem.Block) (Line, bool)
	// PrefetchedCount returns how many resident lines still carry the
	// prefetched tag (prefetches never consumed; counted as useless at
	// the end of a run).
	PrefetchedCount() int
}

// InfiniteStore is an SLC with unbounded capacity: no replacement
// misses, so all remaining misses are cold or coherence misses (§5.1).
// Lines live in an open-addressed block table, not a Go map: the SLC
// tag lookup is on the path of every FLC miss.
type InfiniteStore struct {
	lines      blockmap.Table[Line]
	prefetched int
}

// NewInfiniteStore returns an empty infinite SLC store.
func NewInfiniteStore() *InfiniteStore {
	c := &InfiniteStore{}
	c.lines.Reserve(1 << 16)
	return c
}

// Lookup implements Store.
func (c *InfiniteStore) Lookup(b mem.Block) (Line, bool) {
	return c.lines.Get(b)
}

// Insert implements Store; an infinite store never evicts.
func (c *InfiniteStore) Insert(b mem.Block, s State, prefetched bool) Victim {
	l := c.lines.Ref(b)
	if l.Prefetched {
		c.prefetched--
	}
	*l = Line{State: s, Prefetched: prefetched}
	if prefetched {
		c.prefetched++
	}
	return Victim{}
}

// SetState implements Store.
func (c *InfiniteStore) SetState(b mem.Block, s State) {
	if l := c.lines.Ptr(b); l != nil {
		l.State = s
	}
}

// ClearPrefetched implements Store.
func (c *InfiniteStore) ClearPrefetched(b mem.Block) bool {
	l := c.lines.Ptr(b)
	if l == nil || !l.Prefetched {
		return false
	}
	l.Prefetched = false
	c.prefetched--
	return true
}

// Invalidate implements Store.
func (c *InfiniteStore) Invalidate(b mem.Block) (Line, bool) {
	l, ok := c.lines.Delete(b)
	if ok && l.Prefetched {
		c.prefetched--
	}
	return l, ok
}

// PrefetchedCount implements Store.
func (c *InfiniteStore) PrefetchedCount() int { return c.prefetched }

// DirectStore is a finite direct-mapped SLC (16 KB in §5.3), the
// configuration under which replacement misses appear.
type DirectStore struct {
	tags       []mem.Block
	lines      []Line
	mask       uint64
	prefetched int
}

// NewDirectStore returns a direct-mapped SLC of size bytes (a
// power-of-two multiple of the block size).
func NewDirectStore(size int) *DirectStore {
	sets := size / mem.BlockBytes
	if sets <= 0 || sets&(sets-1) != 0 {
		panic("cache: SLC size must be a power-of-two number of blocks")
	}
	return &DirectStore{
		tags:  make([]mem.Block, sets),
		lines: make([]Line, sets),
		mask:  uint64(sets - 1),
	}
}

func (c *DirectStore) set(b mem.Block) int { return int(uint64(b) & c.mask) }

// Lookup implements Store.
func (c *DirectStore) Lookup(b mem.Block) (Line, bool) {
	s := c.set(b)
	if c.lines[s].State != Invalid && c.tags[s] == b {
		return c.lines[s], true
	}
	return Line{}, false
}

// Insert implements Store.
func (c *DirectStore) Insert(b mem.Block, st State, prefetched bool) Victim {
	s := c.set(b)
	var v Victim
	if c.lines[s].State != Invalid && c.tags[s] != b {
		v = Victim{Block: c.tags[s], Line: c.lines[s], Valid: true}
		if c.lines[s].Prefetched {
			c.prefetched--
		}
	} else if c.lines[s].State != Invalid && c.lines[s].Prefetched {
		c.prefetched--
	}
	c.tags[s] = b
	c.lines[s] = Line{State: st, Prefetched: prefetched}
	if prefetched {
		c.prefetched++
	}
	return v
}

// SetState implements Store.
func (c *DirectStore) SetState(b mem.Block, st State) {
	s := c.set(b)
	if c.lines[s].State != Invalid && c.tags[s] == b {
		c.lines[s].State = st
	}
}

// ClearPrefetched implements Store.
func (c *DirectStore) ClearPrefetched(b mem.Block) bool {
	s := c.set(b)
	if c.lines[s].State != Invalid && c.tags[s] == b && c.lines[s].Prefetched {
		c.lines[s].Prefetched = false
		c.prefetched--
		return true
	}
	return false
}

// Invalidate implements Store.
func (c *DirectStore) Invalidate(b mem.Block) (Line, bool) {
	s := c.set(b)
	if c.lines[s].State == Invalid || c.tags[s] != b {
		return Line{}, false
	}
	l := c.lines[s]
	if l.Prefetched {
		c.prefetched--
	}
	c.lines[s] = Line{}
	return l, true
}

// PrefetchedCount implements Store.
func (c *DirectStore) PrefetchedCount() int { return c.prefetched }

// WriteBuffer is an analytic model of a bounded FIFO write buffer (the
// 8-entry FLWB). The machine computes when each entry finishes draining
// into the SLC; the buffer tracks occupancy from those completion times
// so that a full buffer stalls the processor and FIFO ordering delays a
// read miss behind buffered writes (paper §2).
type WriteBuffer struct {
	capacity    int
	completions []sim.Time // ring, ordered
	head        int
	count       int
	tail        sim.Time // completion time of the most recent entry
}

// NewWriteBuffer returns a buffer of the given capacity.
func NewWriteBuffer(capacity int) *WriteBuffer {
	if capacity <= 0 {
		panic("cache: write buffer capacity must be positive")
	}
	return &WriteBuffer{capacity: capacity, completions: make([]sim.Time, capacity)}
}

// AdmitAt returns the earliest time at or after t at which a new entry
// can be admitted: t itself if a slot is free, otherwise the completion
// time of the oldest entry. Entries completed by t are retired first.
func (w *WriteBuffer) AdmitAt(t sim.Time) sim.Time {
	w.retire(t)
	if w.count < w.capacity {
		return t
	}
	return w.completions[w.head]
}

// Add records an admitted entry that will finish draining at completion.
// The caller must have used AdmitAt to find an admission time first.
func (w *WriteBuffer) Add(completion sim.Time) {
	if w.count == w.capacity {
		// Admission contract violated; drop the oldest to stay sane.
		w.head = (w.head + 1) % w.capacity
		w.count--
	}
	idx := (w.head + w.count) % w.capacity
	w.completions[idx] = completion
	w.count++
	if completion > w.tail {
		w.tail = completion
	}
}

// Tail returns the completion time of the newest buffered entry; a read
// miss entering the FIFO behind writes cannot reach the SLC before this.
func (w *WriteBuffer) Tail() sim.Time { return w.tail }

// Occupancy returns the number of entries still buffered at time t.
func (w *WriteBuffer) Occupancy(t sim.Time) int {
	w.retire(t)
	return w.count
}

func (w *WriteBuffer) retire(t sim.Time) {
	for w.count > 0 && w.completions[w.head] <= t {
		w.head = (w.head + 1) % w.capacity
		w.count--
	}
}
