package cache

import (
	"testing"
	"testing/quick"

	"prefetchsim/internal/mem"
	"prefetchsim/internal/sim"
)

func TestStateString(t *testing.T) {
	if Invalid.String() != "I" || Shared.String() != "S" || Modified.String() != "M" {
		t.Fatal("State.String broken")
	}
	if State(9).String() != "?" {
		t.Fatal("unknown State.String broken")
	}
}

func TestFLCBasic(t *testing.T) {
	c := NewFLC(4096) // 128 sets
	if c.Lookup(5) {
		t.Fatal("empty FLC reported a hit")
	}
	c.Fill(5)
	if !c.Lookup(5) {
		t.Fatal("filled block missing")
	}
	c.Invalidate(5)
	if c.Lookup(5) {
		t.Fatal("invalidated block still present")
	}
}

func TestFLCDirectMappedConflict(t *testing.T) {
	c := NewFLC(4096)
	c.Fill(3)
	c.Fill(3 + 128) // same set
	if c.Lookup(3) {
		t.Fatal("conflicting fill did not evict")
	}
	if !c.Lookup(3 + 128) {
		t.Fatal("newly filled block missing")
	}
}

func TestFLCInvalidateWrongBlockIsNoop(t *testing.T) {
	c := NewFLC(4096)
	c.Fill(3)
	c.Invalidate(3 + 128) // same set, different tag
	if !c.Lookup(3) {
		t.Fatal("invalidate of a different tag removed resident block")
	}
}

func TestNewFLCPanicsOnBadSize(t *testing.T) {
	mustPanic(t, "non-power-of-two", func() { NewFLC(3000) })
	mustPanic(t, "zero", func() { NewFLC(0) })
}

// storeTest exercises the Store contract shared by both implementations.
func storeTest(t *testing.T, name string, c Store) {
	t.Helper()
	if _, ok := c.Lookup(10); ok {
		t.Fatalf("%s: empty store reported a hit", name)
	}
	c.Insert(10, Shared, false)
	if l, ok := c.Lookup(10); !ok || l.State != Shared || l.Prefetched {
		t.Fatalf("%s: inserted line = %+v, present=%v", name, l, ok)
	}
	c.SetState(10, Modified)
	if l, _ := c.Lookup(10); l.State != Modified {
		t.Fatalf("%s: SetState did not apply", name)
	}
	c.SetState(999, Shared) // absent: must be a no-op, not a panic
	if _, ok := c.Lookup(999); ok {
		t.Fatalf("%s: SetState materialized an absent line", name)
	}

	// Prefetched tag lifecycle.
	c.Insert(20, Shared, true)
	if c.PrefetchedCount() != 1 {
		t.Fatalf("%s: PrefetchedCount = %d, want 1", name, c.PrefetchedCount())
	}
	if !c.ClearPrefetched(20) {
		t.Fatalf("%s: ClearPrefetched missed set tag", name)
	}
	if c.ClearPrefetched(20) {
		t.Fatalf("%s: ClearPrefetched double-counted", name)
	}
	if c.PrefetchedCount() != 0 {
		t.Fatalf("%s: PrefetchedCount = %d after clear", name, c.PrefetchedCount())
	}

	// Invalidation returns the line and drops the prefetch count.
	c.Insert(30, Shared, true)
	l, ok := c.Invalidate(30)
	if !ok || !l.Prefetched {
		t.Fatalf("%s: Invalidate returned %+v, %v", name, l, ok)
	}
	if c.PrefetchedCount() != 0 {
		t.Fatalf("%s: prefetch count leaked on invalidate", name)
	}
	if _, ok := c.Invalidate(30); ok {
		t.Fatalf("%s: double invalidate reported presence", name)
	}

	// Re-insert over an existing prefetched line must not leak the count.
	c.Insert(40, Shared, true)
	c.Insert(40, Modified, false)
	if c.PrefetchedCount() != 0 {
		t.Fatalf("%s: overwrite leaked prefetch count", name)
	}
	if l, _ := c.Lookup(40); l.State != Modified {
		t.Fatalf("%s: overwrite did not update state", name)
	}
}

func TestInfiniteStoreContract(t *testing.T) { storeTest(t, "infinite", NewInfiniteStore()) }
func TestDirectStoreContract(t *testing.T)   { storeTest(t, "direct", NewDirectStore(16384)) }

func TestInfiniteStoreNeverEvicts(t *testing.T) {
	c := NewInfiniteStore()
	for i := 0; i < 100000; i++ {
		if v := c.Insert(mem.Block(i), Shared, false); v.Valid {
			t.Fatal("infinite store evicted")
		}
	}
	for i := 0; i < 100000; i += 9999 {
		if _, ok := c.Lookup(mem.Block(i)); !ok {
			t.Fatalf("block %d lost", i)
		}
	}
}

func TestDirectStoreEvicts(t *testing.T) {
	c := NewDirectStore(16384) // 512 sets
	c.Insert(7, Modified, false)
	v := c.Insert(7+512, Shared, false)
	if !v.Valid || v.Block != 7 || v.Line.State != Modified {
		t.Fatalf("victim = %+v, want block 7 in M", v)
	}
	if _, ok := c.Lookup(7); ok {
		t.Fatal("victim still resident")
	}
}

func TestDirectStoreEvictionDropsPrefetchCount(t *testing.T) {
	c := NewDirectStore(16384)
	c.Insert(7, Shared, true)
	v := c.Insert(7+512, Shared, false)
	if !v.Valid || !v.Line.Prefetched {
		t.Fatalf("victim should carry the prefetched tag: %+v", v)
	}
	if c.PrefetchedCount() != 0 {
		t.Fatal("prefetch count leaked on eviction")
	}
}

func TestDirectStoreSameBlockReinsertNoVictim(t *testing.T) {
	c := NewDirectStore(16384)
	c.Insert(7, Shared, false)
	if v := c.Insert(7, Modified, false); v.Valid {
		t.Fatalf("re-insert of same block produced victim %+v", v)
	}
}

func TestStoresAgreeOnRandomWorkload(t *testing.T) {
	// With a working set smaller than the finite cache and no set
	// conflicts (addresses within one set-span), the two stores must
	// behave identically.
	f := func(opsRaw []uint16) bool {
		inf, dir := NewInfiniteStore(), NewDirectStore(16384) // 512 sets
		for _, raw := range opsRaw {
			b := mem.Block(raw % 512) // unique sets, no conflicts
			op := raw % 5
			switch op {
			case 0:
				inf.Insert(b, Shared, false)
				dir.Insert(b, Shared, false)
			case 1:
				inf.Insert(b, Modified, true)
				dir.Insert(b, Modified, true)
			case 2:
				inf.Invalidate(b)
				dir.Invalidate(b)
			case 3:
				if inf.ClearPrefetched(b) != dir.ClearPrefetched(b) {
					return false
				}
			case 4:
				li, oki := inf.Lookup(b)
				ld, okd := dir.Lookup(b)
				if oki != okd || li != ld {
					return false
				}
			}
		}
		return inf.PrefetchedCount() == dir.PrefetchedCount()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteBufferAdmitsWhenSpace(t *testing.T) {
	w := NewWriteBuffer(2)
	if at := w.AdmitAt(10); at != 10 {
		t.Fatalf("AdmitAt = %d, want 10", at)
	}
	w.Add(20)
	w.Add(25)
	if at := w.AdmitAt(12); at != 20 {
		t.Fatalf("full buffer AdmitAt = %d, want 20 (oldest completion)", at)
	}
	// After the oldest completes, admission is immediate.
	if at := w.AdmitAt(21); at != 21 {
		t.Fatalf("AdmitAt after drain = %d, want 21", at)
	}
}

func TestWriteBufferTailOrdersReads(t *testing.T) {
	w := NewWriteBuffer(8)
	w.Add(100)
	w.Add(130)
	if w.Tail() != 130 {
		t.Fatalf("Tail = %d, want 130", w.Tail())
	}
}

func TestWriteBufferOccupancy(t *testing.T) {
	w := NewWriteBuffer(8)
	w.Add(10)
	w.Add(20)
	w.Add(30)
	if got := w.Occupancy(5); got != 3 {
		t.Fatalf("Occupancy(5) = %d, want 3", got)
	}
	if got := w.Occupancy(20); got != 1 {
		t.Fatalf("Occupancy(20) = %d, want 1", got)
	}
	if got := w.Occupancy(100); got != 0 {
		t.Fatalf("Occupancy(100) = %d, want 0", got)
	}
}

func TestWriteBufferNeverExceedsCapacity(t *testing.T) {
	f := func(delays []uint8) bool {
		w := NewWriteBuffer(4)
		var t0 sim.Time
		for _, d := range delays {
			t0 += sim.Time(d % 8)
			at := w.AdmitAt(t0)
			if at < t0 {
				return false
			}
			w.Add(at + 3)
			if w.Occupancy(at) > 4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewWriteBufferPanicsOnBadCapacity(t *testing.T) {
	mustPanic(t, "zero capacity", func() { NewWriteBuffer(0) })
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: did not panic", name)
		}
	}()
	fn()
}
