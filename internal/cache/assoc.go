package cache

import "prefetchsim/internal/mem"

// AssocStore is a set-associative SLC with LRU replacement — an
// extension beyond the paper's direct-mapped §5.3 configuration, used
// by the associativity ablation to separate conflict misses from
// capacity misses.
type AssocStore struct {
	ways       int
	sets       int
	mask       uint64
	tags       []mem.Block // sets × ways
	lines      []Line
	age        []uint64 // LRU stamps; larger = more recent
	clock      uint64
	prefetched int
}

// NewAssocStore returns a set-associative SLC of size bytes with the
// given number of ways. size/(32·ways) must be a power of two.
func NewAssocStore(size, ways int) *AssocStore {
	if ways <= 0 {
		panic("cache: associativity must be positive")
	}
	sets := size / (mem.BlockBytes * ways)
	if sets <= 0 || sets&(sets-1) != 0 {
		panic("cache: set count must be a positive power of two")
	}
	n := sets * ways
	return &AssocStore{
		ways:  ways,
		sets:  sets,
		mask:  uint64(sets - 1),
		tags:  make([]mem.Block, n),
		lines: make([]Line, n),
		age:   make([]uint64, n),
	}
}

// find returns the way index of b within its set, or -1.
func (c *AssocStore) find(b mem.Block) int {
	base := int(uint64(b)&c.mask) * c.ways
	for w := 0; w < c.ways; w++ {
		if c.lines[base+w].State != Invalid && c.tags[base+w] == b {
			return base + w
		}
	}
	return -1
}

// Lookup implements Store.
func (c *AssocStore) Lookup(b mem.Block) (Line, bool) {
	if i := c.find(b); i >= 0 {
		c.clock++
		c.age[i] = c.clock
		return c.lines[i], true
	}
	return Line{}, false
}

// Insert implements Store: LRU replacement within the set.
func (c *AssocStore) Insert(b mem.Block, s State, prefetched bool) Victim {
	c.clock++
	if i := c.find(b); i >= 0 {
		if c.lines[i].Prefetched {
			c.prefetched--
		}
		c.lines[i] = Line{State: s, Prefetched: prefetched}
		c.age[i] = c.clock
		if prefetched {
			c.prefetched++
		}
		return Victim{}
	}
	base := int(uint64(b)&c.mask) * c.ways
	victimIdx := base
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.lines[i].State == Invalid {
			victimIdx = i
			break
		}
		if c.age[i] < c.age[victimIdx] {
			victimIdx = i
		}
	}
	var v Victim
	if c.lines[victimIdx].State != Invalid {
		v = Victim{Block: c.tags[victimIdx], Line: c.lines[victimIdx], Valid: true}
		if c.lines[victimIdx].Prefetched {
			c.prefetched--
		}
	}
	c.tags[victimIdx] = b
	c.lines[victimIdx] = Line{State: s, Prefetched: prefetched}
	c.age[victimIdx] = c.clock
	if prefetched {
		c.prefetched++
	}
	return v
}

// SetState implements Store.
func (c *AssocStore) SetState(b mem.Block, s State) {
	if i := c.find(b); i >= 0 {
		c.lines[i].State = s
	}
}

// ClearPrefetched implements Store.
func (c *AssocStore) ClearPrefetched(b mem.Block) bool {
	if i := c.find(b); i >= 0 && c.lines[i].Prefetched {
		c.lines[i].Prefetched = false
		c.prefetched--
		return true
	}
	return false
}

// Invalidate implements Store.
func (c *AssocStore) Invalidate(b mem.Block) (Line, bool) {
	if i := c.find(b); i >= 0 {
		l := c.lines[i]
		if l.Prefetched {
			c.prefetched--
		}
		c.lines[i] = Line{}
		return l, true
	}
	return Line{}, false
}

// PrefetchedCount implements Store.
func (c *AssocStore) PrefetchedCount() int { return c.prefetched }
