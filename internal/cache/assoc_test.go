package cache

import (
	"testing"
	"testing/quick"

	"prefetchsim/internal/mem"
)

func TestAssocStoreContract(t *testing.T) {
	storeTest(t, "assoc-2way", NewAssocStore(16384, 2))
	storeTest(t, "assoc-4way", NewAssocStore(16384, 4))
	storeTest(t, "assoc-full-width-1set", NewAssocStore(32*8, 8))
}

func TestAssocStoreHoldsWaysConflicts(t *testing.T) {
	// A 2-way store survives two conflicting blocks where direct-mapped
	// evicts.
	c := NewAssocStore(16384, 2) // 256 sets
	c.Insert(7, Shared, false)
	if v := c.Insert(7+256, Shared, false); v.Valid {
		t.Fatalf("2-way store evicted on second insert: %+v", v)
	}
	if _, ok := c.Lookup(7); !ok {
		t.Fatal("first block lost")
	}
	if _, ok := c.Lookup(7 + 256); !ok {
		t.Fatal("second block lost")
	}
	// A third conflicting block must evict the LRU (block 7 after we
	// touch 7+256).
	c.Lookup(7 + 256)
	c.Lookup(7 + 256)
	c.Lookup(7) // 7 is now most recent
	v := c.Insert(7+512, Modified, false)
	if !v.Valid || v.Block != 7+256 {
		t.Fatalf("victim = %+v, want LRU block %d", v, 7+256)
	}
}

func TestAssocStoreLRUOrder(t *testing.T) {
	c := NewAssocStore(32*4, 4) // one set, 4 ways
	for b := mem.Block(0); b < 4; b++ {
		c.Insert(b, Shared, false)
	}
	// Touch 0,1,2: block 3 becomes LRU.
	c.Lookup(0)
	c.Lookup(1)
	c.Lookup(2)
	if v := c.Insert(100, Shared, false); !v.Valid || v.Block != 3 {
		t.Fatalf("victim = %+v, want block 3", v)
	}
}

func TestAssocMatchesDirectWhenOneWay(t *testing.T) {
	// With ways=1 the associative store must behave exactly like the
	// direct-mapped store.
	f := func(raw []uint16) bool {
		a := NewAssocStore(16384, 1)
		d := NewDirectStore(16384)
		for _, r := range raw {
			b := mem.Block(r % 2048) // includes conflicts
			switch r % 4 {
			case 0:
				va := a.Insert(b, Shared, r%8 == 0)
				vd := d.Insert(b, Shared, r%8 == 0)
				if va != vd {
					return false
				}
			case 1:
				la, oka := a.Lookup(b)
				ld, okd := d.Lookup(b)
				if oka != okd || la != ld {
					return false
				}
			case 2:
				la, oka := a.Invalidate(b)
				ld, okd := d.Invalidate(b)
				if oka != okd || la != ld {
					return false
				}
			case 3:
				if a.ClearPrefetched(b) != d.ClearPrefetched(b) {
					return false
				}
			}
		}
		return a.PrefetchedCount() == d.PrefetchedCount()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestNewAssocStorePanicsOnBadGeometry(t *testing.T) {
	mustPanic(t, "zero ways", func() { NewAssocStore(16384, 0) })
	mustPanic(t, "non-power-of-two sets", func() { NewAssocStore(96, 1) })
}
