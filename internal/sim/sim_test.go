package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineOrdersByTime(t *testing.T) {
	var e Engine
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	e.Run(0)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events ran out of order: %v", got)
	}
	if e.Now() != 30 {
		t.Fatalf("Now() = %d, want 30", e.Now())
	}
}

func TestEngineTieBreaksByInsertion(t *testing.T) {
	var e Engine
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.Run(0)
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events out of insertion order at %d: %v", i, got[:i+1])
		}
	}
}

func TestEngineAfterIsRelative(t *testing.T) {
	var e Engine
	var at Time
	e.At(100, func() {
		e.After(7, func() { at = e.Now() })
	})
	e.Run(0)
	if at != 107 {
		t.Fatalf("After fired at %d, want 107", at)
	}
}

func TestEnginePanicsOnPastEvent(t *testing.T) {
	var e Engine
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run(0)
}

func TestEngineNextTime(t *testing.T) {
	var e Engine
	if _, ok := e.NextTime(); ok {
		t.Fatal("NextTime on empty queue reported an event")
	}
	e.At(42, func() {})
	if next, ok := e.NextTime(); !ok || next != 42 {
		t.Fatalf("NextTime = %d,%v want 42,true", next, ok)
	}
}

func TestEngineRunLimit(t *testing.T) {
	var e Engine
	n := 0
	for i := 0; i < 10; i++ {
		e.At(Time(i), func() { n++ })
	}
	if ran := e.Run(4); ran != 4 || n != 4 {
		t.Fatalf("Run(4) ran %d events (n=%d), want 4", ran, n)
	}
	if e.Pending() != 6 {
		t.Fatalf("Pending = %d, want 6", e.Pending())
	}
}

func TestEngineEventsScheduledDuringRun(t *testing.T) {
	var e Engine
	depth := 0
	var recurse func()
	recurse = func() {
		if depth < 5 {
			depth++
			e.After(1, recurse)
		}
	}
	e.At(0, recurse)
	e.Run(0)
	if depth != 5 {
		t.Fatalf("depth = %d, want 5", depth)
	}
	if e.Now() != 5 {
		t.Fatalf("Now = %d, want 5", e.Now())
	}
}

func TestResourceSerializes(t *testing.T) {
	var r Resource
	if s := r.Acquire(10, 3); s != 10 {
		t.Fatalf("first acquire start = %d, want 10", s)
	}
	if s := r.Acquire(10, 3); s != 13 {
		t.Fatalf("contended acquire start = %d, want 13", s)
	}
	if s := r.Acquire(100, 3); s != 100 {
		t.Fatalf("idle acquire start = %d, want 100", s)
	}
	if r.Busy != 9 {
		t.Fatalf("Busy = %d, want 9", r.Busy)
	}
}

func TestResourceStartNeverBeforeArrival(t *testing.T) {
	f := func(arrivals []uint16) bool {
		var r Resource
		var prevEnd Time
		for _, a := range arrivals {
			at := Time(a)
			start := r.Acquire(at, 2)
			if start < at {
				return false
			}
			if start < prevEnd {
				return false // overlapping service
			}
			prevEnd = start + 2
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(12345), NewRand(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed PRNGs diverged")
		}
	}
}

func TestRandZeroSeedUsable(t *testing.T) {
	r := NewRand(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 90 {
		t.Fatalf("zero-seeded PRNG produced only %d distinct values in 100 draws", len(seen))
	}
}

func TestRandIntnInRange(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 10000; i++ {
		v := r.Intn(13)
		if v < 0 || v >= 13 {
			t.Fatalf("Intn(13) = %d out of range", v)
		}
	}
}

func TestRandFloat64InRange(t *testing.T) {
	r := NewRand(9)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %g out of range", v)
		}
	}
}

func TestRandIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRand(1).Intn(0)
}
