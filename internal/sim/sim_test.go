package sim

import (
	"container/heap"
	"testing"
	"testing/quick"
)

func TestEngineOrdersByTime(t *testing.T) {
	var e Engine
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	e.Run(0)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events ran out of order: %v", got)
	}
	if e.Now() != 30 {
		t.Fatalf("Now() = %d, want 30", e.Now())
	}
}

func TestEngineTieBreaksByInsertion(t *testing.T) {
	var e Engine
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.Run(0)
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events out of insertion order at %d: %v", i, got[:i+1])
		}
	}
}

func TestEngineAfterIsRelative(t *testing.T) {
	var e Engine
	var at Time
	e.At(100, func() {
		e.After(7, func() { at = e.Now() })
	})
	e.Run(0)
	if at != 107 {
		t.Fatalf("After fired at %d, want 107", at)
	}
}

func TestEnginePanicsOnPastEvent(t *testing.T) {
	var e Engine
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run(0)
}

func TestEngineNextTime(t *testing.T) {
	var e Engine
	if _, ok := e.NextTime(); ok {
		t.Fatal("NextTime on empty queue reported an event")
	}
	e.At(42, func() {})
	if next, ok := e.NextTime(); !ok || next != 42 {
		t.Fatalf("NextTime = %d,%v want 42,true", next, ok)
	}
}

func TestEngineRunLimit(t *testing.T) {
	var e Engine
	n := 0
	for i := 0; i < 10; i++ {
		e.At(Time(i), func() { n++ })
	}
	if ran := e.Run(4); ran != 4 || n != 4 {
		t.Fatalf("Run(4) ran %d events (n=%d), want 4", ran, n)
	}
	if e.Pending() != 6 {
		t.Fatalf("Pending = %d, want 6", e.Pending())
	}
}

func TestEngineEventsScheduledDuringRun(t *testing.T) {
	var e Engine
	depth := 0
	var recurse func()
	recurse = func() {
		if depth < 5 {
			depth++
			e.After(1, recurse)
		}
	}
	e.At(0, recurse)
	e.Run(0)
	if depth != 5 {
		t.Fatalf("depth = %d, want 5", depth)
	}
	if e.Now() != 5 {
		t.Fatalf("Now = %d, want 5", e.Now())
	}
}

func TestResourceSerializes(t *testing.T) {
	var r Resource
	if s := r.Acquire(10, 3); s != 10 {
		t.Fatalf("first acquire start = %d, want 10", s)
	}
	if s := r.Acquire(10, 3); s != 13 {
		t.Fatalf("contended acquire start = %d, want 13", s)
	}
	if s := r.Acquire(100, 3); s != 100 {
		t.Fatalf("idle acquire start = %d, want 100", s)
	}
	if r.Busy != 9 {
		t.Fatalf("Busy = %d, want 9", r.Busy)
	}
}

func TestResourceStartNeverBeforeArrival(t *testing.T) {
	f := func(arrivals []uint16) bool {
		var r Resource
		var prevEnd Time
		for _, a := range arrivals {
			at := Time(a)
			start := r.Acquire(at, 2)
			if start < at {
				return false
			}
			if start < prevEnd {
				return false // overlapping service
			}
			prevEnd = start + 2
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(12345), NewRand(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed PRNGs diverged")
		}
	}
}

func TestRandZeroSeedUsable(t *testing.T) {
	r := NewRand(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 90 {
		t.Fatalf("zero-seeded PRNG produced only %d distinct values in 100 draws", len(seen))
	}
}

func TestRandIntnInRange(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 10000; i++ {
		v := r.Intn(13)
		if v < 0 || v >= 13 {
			t.Fatalf("Intn(13) = %d out of range", v)
		}
	}
}

func TestRandFloat64InRange(t *testing.T) {
	r := NewRand(9)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %g out of range", v)
		}
	}
}

func TestRandIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRand(1).Intn(0)
}

// refHeap is a container/heap reference implementation of the event
// queue, kept test-only: the production 4-ary heap must pop in exactly
// the order this one does for any operation sequence.
type refEvent struct {
	at  Time
	seq uint64
	id  int
}

type refHeap []refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x interface{}) { *h = append(*h, x.(refEvent)) }
func (h *refHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// idHandler adapts a func to Handler for tests.
type idHandler struct{ f func() }

func (h idHandler) Fire(Time) { h.f() }

// TestEngineMatchesContainerHeap drives the engine with a randomized
// schedule — duplicate times, events scheduling further events while
// running, a mix of the closure (At) and pooled-handler (Schedule)
// forms — and asserts the execution order matches a container/heap
// reference fed the same (time, seq) pairs. Because an engine may never
// schedule into the past, its execution order must equal the global
// (time, seq) sort of every event ever scheduled, which is exactly what
// draining the reference heap at the end yields.
func TestEngineMatchesContainerHeap(t *testing.T) {
	rng := NewRand(20260806)
	for trial := 0; trial < 25; trial++ {
		var e Engine
		ref := &refHeap{}
		var got []int
		id := 0
		var seq uint64

		schedule := func(at Time) {
			id++
			ev := id
			seq++
			heap.Push(ref, refEvent{at: at, seq: seq, id: ev})
			if ev%2 == 0 {
				e.At(at, func() { got = append(got, ev) })
			} else {
				e.Schedule(at, idHandler{f: func() { got = append(got, ev) }})
			}
		}

		for i := 0; i < 300; i++ {
			schedule(Time(rng.Intn(60)))
		}
		extra := 150
		for e.Step() {
			// Occasionally schedule more from inside the run, at or
			// after the current time.
			for extra > 0 && rng.Intn(3) == 0 {
				extra--
				schedule(e.Now() + Time(rng.Intn(25)))
			}
		}

		var want []int
		for ref.Len() > 0 {
			want = append(want, heap.Pop(ref).(refEvent).id)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: engine ran %d events, reference ordered %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: pop order diverges from container/heap at index %d: got %d, want %d",
					trial, i, got[i], want[i])
			}
		}
	}
}

// TestEnginePopReleasesSlot pins the fix for the old eventHeap.Pop
// memory retention: after an event runs, the vacated backing-array slot
// must not keep the callback alive.
func TestEnginePopReleasesSlot(t *testing.T) {
	var e Engine
	for i := 0; i < 8; i++ {
		e.At(Time(i), func() {})
	}
	e.Run(0)
	q := e.queue[:cap(e.queue)]
	for i := range q {
		if q[i].fn != nil || q[i].h != nil {
			t.Fatalf("backing array slot %d retains a callback after pop", i)
		}
	}
}

// TestScheduleHandlerInterleavesWithAt verifies At and Schedule share
// one insertion-sequence counter: same-time events fire in call order
// regardless of which form scheduled them.
func TestScheduleHandlerInterleavesWithAt(t *testing.T) {
	var e Engine
	var got []int
	for i := 0; i < 50; i++ {
		i := i
		if i%3 == 0 {
			e.Schedule(7, idHandler{f: func() { got = append(got, i) }})
		} else {
			e.At(7, func() { got = append(got, i) })
		}
	}
	e.Run(0)
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time At/Schedule events out of call order: %v", got[:i+1])
		}
	}
}

// TestSchedulePanicsOnPastEvent mirrors the At guard for the pooled
// form.
func TestSchedulePanicsOnPastEvent(t *testing.T) {
	var e Engine
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("Schedule in the past did not panic")
			}
		}()
		e.Schedule(5, idHandler{f: func() {}})
	})
	e.Run(0)
}

// TestEngineHorizonTracksQueueMin drives a random schedule/fire
// sequence and asserts the cached horizon equals the true queue minimum
// after every mutation — the invariant the machine's fused batch loop
// relies on instead of peeking the heap per op — and that an empty
// queue reports the far-future sentinel.
func TestEngineHorizonTracksQueueMin(t *testing.T) {
	queueMin := func(e *Engine) Time {
		min := maxTime
		for i := range e.queue {
			if e.queue[i].at < min {
				min = e.queue[i].at
			}
		}
		return min
	}
	check := func(e *Engine, step string) {
		t.Helper()
		if len(e.queue) == 0 {
			if e.Horizon() != maxTime {
				t.Fatalf("%s: empty queue, Horizon = %d, want maxTime", step, e.Horizon())
			}
			if _, ok := e.NextTime(); ok {
				t.Fatalf("%s: empty queue, NextTime reports an event", step)
			}
			return
		}
		want := queueMin(e)
		if e.Horizon() != want {
			t.Fatalf("%s: Horizon = %d, queue min = %d", step, e.Horizon(), want)
		}
		if next, ok := e.NextTime(); !ok || next != want {
			t.Fatalf("%s: NextTime = (%d, %v), queue min = %d", step, next, ok, want)
		}
	}

	rng := NewRand(42)
	for trial := 0; trial < 20; trial++ {
		var e Engine
		check(&e, "fresh engine")
		for i := 0; i < 400; i++ {
			switch {
			case len(e.queue) == 0 || rng.Intn(3) > 0:
				at := e.Now() + Time(rng.Intn(50))
				e.At(at, func() {})
				check(&e, "after schedule")
			default:
				e.Step()
				check(&e, "after fire")
			}
		}
		for e.Step() {
			check(&e, "while draining")
		}
		check(&e, "drained")
	}
}
