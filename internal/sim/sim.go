// Package sim provides a deterministic discrete-event simulation engine.
//
// Time is measured in pclocks (1 pclock = 10 ns, a 100 MHz processor
// clock, per Table 1 of the paper). Events are totally ordered by
// (time, insertion sequence) so that simulations are reproducible
// run-to-run regardless of map iteration order or scheduling.
//
// The queue is a hand-rolled 4-ary min-heap over plain event structs:
// no container/heap, no interface{} boxing on push or pop, and popped
// slots are zeroed so the backing array never retains dead callbacks.
// High-frequency schedulers avoid the per-event closure allocation of
// At/After entirely by implementing Handler on a pooled object and
// scheduling it with Schedule (see internal/machine's event pool).
package sim

import "prefetchsim/internal/obs"

// Time is a point in simulated time, in pclocks.
type Time int64

// EngineMetrics are the engine's observability instruments (see
// internal/obs): attached with SetMetrics, updated with plain integer
// arithmetic on every dispatch, and read only after the run (or from
// the simulation's own goroutine).
type EngineMetrics struct {
	// Events counts dispatched events.
	Events obs.Counter
	// Queue tracks the pending-event queue depth, sampled at each
	// dispatch; its high-water mark bounds the heap's working set.
	Queue obs.Gauge
}

// Handler is a pre-allocated event callback. Fire runs when the
// event's time arrives, with t the (now current) scheduled time.
// Components that schedule at high frequency implement Handler on
// pooled objects and use Schedule, so the common schedule/fire cycle
// reuses event slots instead of allocating a closure per event.
type Handler interface {
	Fire(t Time)
}

// event is one queue slot. Exactly one of fn and h is set.
type event struct {
	at  Time
	seq uint64
	fn  func()
	h   Handler
}

// before is the total order (time, insertion sequence); seq is unique,
// so two events never compare equal and any correct heap pops them in
// the same deterministic order.
func (a *event) before(b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// maxTime is the far-future sentinel Horizon returns for an empty
// queue: no pending event can bound a component's local progress.
const maxTime = Time(1<<63 - 1)

// Engine is a deterministic event-driven simulator. The zero value is
// ready to use.
type Engine struct {
	queue []event // 4-ary min-heap
	now   Time
	seq   uint64
	// horizon caches queue[0].at, maintained on every push and pop, so
	// the per-op causality check in the processor's fused hot loop is a
	// plain field read instead of a heap peek. Only meaningful while the
	// queue is non-empty.
	horizon Time
	// met, when non-nil, receives per-dispatch observability updates.
	met *EngineMetrics
}

// SetMetrics attaches the engine's observability instruments. The
// caller owns the struct (typically embedded in its machine, so it
// costs no allocation); nil detaches.
func (e *Engine) SetMetrics(m *EngineMetrics) { e.met = m }

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn to run at absolute time t. Scheduling in the past is a
// programming error and panics: it would silently corrupt causality.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic("sim: event scheduled in the past")
	}
	e.seq++
	e.push(event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d pclocks from now.
func (e *Engine) After(d Time, fn func()) { e.At(e.now+d, fn) }

// Schedule schedules h to fire at absolute time t. It is the
// allocation-free counterpart of At: the handler object carries the
// callback state, so nothing escapes per event. At and Schedule share
// one insertion-sequence counter, so their events interleave in exact
// call order.
func (e *Engine) Schedule(t Time, h Handler) {
	if t < e.now {
		panic("sim: event scheduled in the past")
	}
	e.seq++
	e.push(event{at: t, seq: e.seq, h: h})
}

// push appends ev and sifts it up the 4-ary heap.
func (e *Engine) push(ev event) {
	if len(e.queue) == 0 || ev.at < e.horizon {
		e.horizon = ev.at
	}
	q := append(e.queue, ev)
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !ev.before(&q[p]) {
			break
		}
		q[i] = q[p]
		i = p
	}
	q[i] = ev
	e.queue = q
}

// pop removes and returns the minimum event. The vacated tail slot is
// zeroed so the backing array does not keep the callback (and whatever
// it captures) alive.
func (e *Engine) pop() event {
	q := e.queue
	root := q[0]
	n := len(q) - 1
	last := q[n]
	q[n] = event{}
	q = q[:n]
	e.queue = q

	// Sift last down from the root.
	i := 0
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		min := c
		for j := c + 1; j < end; j++ {
			if q[j].before(&q[min]) {
				min = j
			}
		}
		if !q[min].before(&last) {
			break
		}
		q[i] = q[min]
		i = min
	}
	if n > 0 {
		q[i] = last
		e.horizon = q[0].at
	}
	return root
}

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }

// NextTime returns the time of the earliest pending event and true, or
// (0, false) if the queue is empty. Components use this to bound how far
// they may batch-advance local state without violating causality.
func (e *Engine) NextTime() (Time, bool) {
	if len(e.queue) == 0 {
		return 0, false
	}
	return e.horizon, true
}

// Horizon is the branch-light form of NextTime for hot loops: the time
// of the earliest pending event, or a far-future sentinel when none is
// pending. A component may batch-advance its local clock up to and
// including this time without violating causality — an event scheduled
// AT the horizon (e.g. a pending invalidation) still fires before any
// local op strictly after it. The value is maintained on schedule and
// fire, so within one event callback it can be read once and reused for
// a whole run of ops as long as the callback schedules nothing.
func (e *Engine) Horizon() Time {
	if len(e.queue) == 0 {
		return maxTime
	}
	return e.horizon
}

// Step runs the earliest event. It reports whether an event ran.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	if e.met != nil {
		e.met.Events.Inc()
		e.met.Queue.Set(int64(len(e.queue)))
	}
	ev := e.pop()
	e.now = ev.at
	if ev.fn != nil {
		ev.fn()
	} else {
		ev.h.Fire(ev.at)
	}
	return true
}

// Run executes events until the queue drains or until limit events have
// run (limit <= 0 means no limit). It returns the number of events run.
func (e *Engine) Run(limit int64) int64 {
	var n int64
	for e.Step() {
		n++
		if limit > 0 && n >= limit {
			break
		}
	}
	return n
}

// Resource models a unit that serves one request at a time (a bus, a
// memory bank, an SLC array). Acquire returns the time service can start
// for a request arriving at t, and marks the resource busy for hold
// pclocks from that start.
type Resource struct {
	freeAt Time
	// Busy accumulates total busy time, for utilization stats.
	Busy Time
}

// Acquire reserves the resource for hold pclocks for a request arriving
// at t, returning the service start time.
func (r *Resource) Acquire(t Time, hold Time) Time {
	start := t
	if r.freeAt > start {
		start = r.freeAt
	}
	r.freeAt = start + hold
	r.Busy += hold
	return start
}

// FreeAt returns the time the resource next becomes free.
func (r *Resource) FreeAt() Time { return r.freeAt }

// Rand is a small, fast, deterministic PRNG (xorshift64*). Applications
// use it so that workloads are reproducible across runs and platforms.
type Rand struct{ s uint64 }

// NewRand returns a PRNG seeded with seed (0 is remapped to a fixed
// nonzero constant, since xorshift cannot hold state 0).
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &Rand{s: seed}
}

// Uint64 returns the next pseudo-random value.
func (r *Rand) Uint64() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545f4914f6cdd1d
}

// Intn returns a value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}
