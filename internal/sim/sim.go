// Package sim provides a deterministic discrete-event simulation engine.
//
// Time is measured in pclocks (1 pclock = 10 ns, a 100 MHz processor
// clock, per Table 1 of the paper). Events are totally ordered by
// (time, insertion sequence) so that simulations are reproducible
// run-to-run regardless of map iteration order or scheduling.
package sim

import "container/heap"

// Time is a point in simulated time, in pclocks.
type Time int64

// Event is a scheduled callback.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine is a deterministic event-driven simulator. The zero value is
// ready to use.
type Engine struct {
	queue eventHeap
	now   Time
	seq   uint64
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn to run at absolute time t. Scheduling in the past is a
// programming error and panics: it would silently corrupt causality.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic("sim: event scheduled in the past")
	}
	e.seq++
	heap.Push(&e.queue, event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d pclocks from now.
func (e *Engine) After(d Time, fn func()) { e.At(e.now+d, fn) }

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }

// NextTime returns the time of the earliest pending event and true, or
// (0, false) if the queue is empty. Components use this to bound how far
// they may batch-advance local state without violating causality.
func (e *Engine) NextTime() (Time, bool) {
	if len(e.queue) == 0 {
		return 0, false
	}
	return e.queue[0].at, true
}

// Step runs the earliest event. It reports whether an event ran.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(event)
	e.now = ev.at
	ev.fn()
	return true
}

// Run executes events until the queue drains or until limit events have
// run (limit <= 0 means no limit). It returns the number of events run.
func (e *Engine) Run(limit int64) int64 {
	var n int64
	for e.Step() {
		n++
		if limit > 0 && n >= limit {
			break
		}
	}
	return n
}

// Resource models a unit that serves one request at a time (a bus, a
// memory bank, an SLC array). Acquire returns the time service can start
// for a request arriving at t, and marks the resource busy for hold
// pclocks from that start.
type Resource struct {
	freeAt Time
	// Busy accumulates total busy time, for utilization stats.
	Busy Time
}

// Acquire reserves the resource for hold pclocks for a request arriving
// at t, returning the service start time.
func (r *Resource) Acquire(t Time, hold Time) Time {
	start := t
	if r.freeAt > start {
		start = r.freeAt
	}
	r.freeAt = start + hold
	r.Busy += hold
	return start
}

// FreeAt returns the time the resource next becomes free.
func (r *Resource) FreeAt() Time { return r.freeAt }

// Rand is a small, fast, deterministic PRNG (xorshift64*). Applications
// use it so that workloads are reproducible across runs and platforms.
type Rand struct{ s uint64 }

// NewRand returns a PRNG seeded with seed (0 is remapped to a fixed
// nonzero constant, since xorshift cannot hold state 0).
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &Rand{s: seed}
}

// Uint64 returns the next pseudo-random value.
func (r *Rand) Uint64() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545f4914f6cdd1d
}

// Intn returns a value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}
