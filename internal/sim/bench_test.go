package sim

import "testing"

// benchHandler is a pooled no-capture handler: the steady-state
// schedule/fire cycle through it must not allocate.
type benchHandler struct {
	e     *Engine
	left  int
	fired int
}

func (h *benchHandler) Fire(t Time) {
	h.fired++
	if h.left > 0 {
		h.left--
		h.e.Schedule(t+3, h)
	}
}

// BenchmarkEngineSchedule measures the pooled schedule/fire cycle with
// a realistic standing queue depth (a machine keeps tens of events in
// flight). Steady state must report 0 allocs/op.
func BenchmarkEngineSchedule(b *testing.B) {
	var e Engine
	const depth = 64
	handlers := make([]benchHandler, depth)
	for i := range handlers {
		handlers[i] = benchHandler{e: &e, left: b.N / depth}
		e.Schedule(Time(i), &handlers[i])
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.Run(int64(b.N))
}

// BenchmarkEngineScheduleClosure is the same cycle through the legacy
// At path, for comparison in the bench trajectory.
func BenchmarkEngineScheduleClosure(b *testing.B) {
	var e Engine
	const depth = 64
	var fire func()
	left := b.N
	fire = func() {
		if left > 0 {
			left--
			e.After(3, fire)
		}
	}
	for i := 0; i < depth; i++ {
		e.At(Time(i), fire)
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.Run(int64(b.N))
}
