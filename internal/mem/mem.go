// Package mem defines the simulated shared address space: 32-byte cache
// blocks, 4 KB pages, round-robin page placement across nodes (by virtual
// page number, as in the paper), and a bump allocator applications use to
// lay out their shared data structures.
package mem

import "fmt"

// Fixed architectural geometry (paper Table 1).
const (
	BlockBytes    = 32   // cache block, FLC and SLC
	PageBytes     = 4096 // virtual page
	BlockShift    = 5
	PageShift     = 12
	BlocksPerPage = PageBytes / BlockBytes
)

// Addr is a virtual byte address in the simulated shared address space.
type Addr uint64

// Block identifies a 32-byte cache block (Addr >> 5).
type Block uint64

// Page identifies a 4 KB page (Addr >> 12).
type Page uint64

// BlockOf returns the block containing a.
func BlockOf(a Addr) Block { return Block(a >> BlockShift) }

// PageOf returns the page containing a.
func PageOf(a Addr) Page { return Page(a >> PageShift) }

// PageOfBlock returns the page containing block b.
func PageOfBlock(b Block) Page { return Page(b >> (PageShift - BlockShift)) }

// BlockAddr returns the first byte address of block b.
func BlockAddr(b Block) Addr { return Addr(b) << BlockShift }

// HomeNode returns the node whose memory holds the page containing block
// b, under round-robin page placement across nodes.
func HomeNode(b Block, nodes int) int {
	return int(uint64(PageOfBlock(b)) % uint64(nodes))
}

// SamePage reports whether two blocks lie in the same page. Prefetches
// across a page boundary are never issued (paper §2).
func SamePage(a, b Block) bool { return PageOfBlock(a) == PageOfBlock(b) }

// Space is a bump allocator over the simulated address space. It never
// frees; applications allocate their shared structures once at startup.
// The zero value starts allocating at one page above zero so that address
// 0 (and block 0) never aliases real data.
type Space struct {
	next Addr
}

// NewSpace returns an allocator whose first allocation begins at the
// second page of the address space.
func NewSpace() *Space { return &Space{next: PageBytes} }

// Alloc reserves size bytes aligned to align (which must be a power of
// two; 0 means block alignment) and returns the base address.
func (s *Space) Alloc(size int, align int) Addr {
	if size < 0 {
		panic(fmt.Sprintf("mem: negative allocation %d", size))
	}
	if align == 0 {
		align = BlockBytes
	}
	if align&(align-1) != 0 {
		panic(fmt.Sprintf("mem: alignment %d is not a power of two", align))
	}
	a := uint64(align)
	base := (uint64(s.next) + a - 1) &^ (a - 1)
	s.next = Addr(base + uint64(size))
	return Addr(base)
}

// AllocPage reserves size bytes starting on a fresh page boundary.
func (s *Space) AllocPage(size int) Addr { return s.Alloc(size, PageBytes) }

// Used returns the total extent of the address space handed out so far.
func (s *Space) Used() Addr { return s.next }

// Array describes a contiguous shared array of fixed-size records, the
// layout unit applications use. Element addresses are computed, never
// stored, so arrays of millions of elements cost nothing.
type Array struct {
	Base   Addr
	Stride int // bytes between consecutive elements
	Len    int
}

// NewArray allocates an array of n records of recSize bytes each, with
// each record padded to pad bytes (pad >= recSize; pad == 0 means no
// padding). Records are block-aligned if pad is a multiple of BlockBytes.
func NewArray(s *Space, n, recSize, pad int) Array {
	if pad == 0 {
		pad = recSize
	}
	if pad < recSize {
		panic("mem: padded record smaller than record")
	}
	base := s.Alloc(n*pad, BlockBytes)
	return Array{Base: base, Stride: pad, Len: n}
}

// At returns the address of byte offset off within element i.
func (a Array) At(i, off int) Addr {
	if i < 0 || i >= a.Len {
		panic(fmt.Sprintf("mem: array index %d out of range [0,%d)", i, a.Len))
	}
	return a.Base + Addr(i*a.Stride+off)
}

// Elem returns the address of element i.
func (a Array) Elem(i int) Addr { return a.At(i, 0) }
