package mem

import (
	"testing"
	"testing/quick"
)

func TestGeometry(t *testing.T) {
	if BlockBytes != 32 || PageBytes != 4096 {
		t.Fatal("paper Table 1 geometry changed")
	}
	if BlocksPerPage != 128 {
		t.Fatalf("BlocksPerPage = %d, want 128", BlocksPerPage)
	}
}

func TestBlockAndPageOf(t *testing.T) {
	cases := []struct {
		addr  Addr
		block Block
		page  Page
	}{
		{0, 0, 0},
		{31, 0, 0},
		{32, 1, 0},
		{4095, 127, 0},
		{4096, 128, 1},
		{8192 + 33, 257, 2},
	}
	for _, c := range cases {
		if got := BlockOf(c.addr); got != c.block {
			t.Errorf("BlockOf(%d) = %d, want %d", c.addr, got, c.block)
		}
		if got := PageOf(c.addr); got != c.page {
			t.Errorf("PageOf(%d) = %d, want %d", c.addr, got, c.page)
		}
	}
}

func TestPageOfBlockConsistent(t *testing.T) {
	f := func(a uint32) bool {
		addr := Addr(a)
		return PageOf(addr) == PageOfBlock(BlockOf(addr))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBlockAddrRoundTrip(t *testing.T) {
	f := func(b uint32) bool {
		blk := Block(b)
		return BlockOf(BlockAddr(blk)) == blk
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHomeNodeRoundRobin(t *testing.T) {
	// Consecutive pages must map to consecutive nodes mod 16.
	for p := 0; p < 64; p++ {
		b := Block(p * BlocksPerPage)
		if got := HomeNode(b, 16); got != p%16 {
			t.Fatalf("HomeNode(page %d) = %d, want %d", p, got, p%16)
		}
	}
	// All blocks of one page share a home.
	for i := 0; i < BlocksPerPage; i++ {
		if HomeNode(Block(5*BlocksPerPage+i), 16) != 5 {
			t.Fatal("blocks within a page have different homes")
		}
	}
}

func TestSamePage(t *testing.T) {
	if !SamePage(0, 127) {
		t.Error("blocks 0 and 127 are in the same page")
	}
	if SamePage(127, 128) {
		t.Error("blocks 127 and 128 straddle a page boundary")
	}
}

func TestSpaceAlignment(t *testing.T) {
	s := NewSpace()
	a := s.Alloc(100, 64)
	if a%64 != 0 {
		t.Errorf("Alloc(100,64) = %d not 64-aligned", a)
	}
	b := s.Alloc(10, 0)
	if b%BlockBytes != 0 {
		t.Errorf("default alignment not block-aligned: %d", b)
	}
	if b < a+100 {
		t.Errorf("allocations overlap: a=[%d,%d) b=%d", a, a+100, b)
	}
}

func TestSpaceNeverReturnsPageZero(t *testing.T) {
	s := NewSpace()
	if a := s.Alloc(1, 0); PageOf(a) == 0 {
		t.Fatalf("first allocation %d landed in page 0", a)
	}
}

func TestSpaceAllocPage(t *testing.T) {
	s := NewSpace()
	s.Alloc(100, 0)
	a := s.AllocPage(100)
	if a%PageBytes != 0 {
		t.Errorf("AllocPage = %d not page-aligned", a)
	}
}

func TestSpaceAllocationsDisjoint(t *testing.T) {
	f := func(sizes []uint8) bool {
		s := NewSpace()
		var prevEnd Addr
		for _, sz := range sizes {
			a := s.Alloc(int(sz)+1, 0)
			if a < prevEnd {
				return false
			}
			prevEnd = a + Addr(sz) + 1
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSpacePanicsOnBadArgs(t *testing.T) {
	s := NewSpace()
	mustPanic(t, "negative size", func() { s.Alloc(-1, 0) })
	mustPanic(t, "non-power-of-two align", func() { s.Alloc(8, 3) })
}

func TestArrayLayout(t *testing.T) {
	s := NewSpace()
	arr := NewArray(s, 10, 24, 32)
	if arr.Stride != 32 {
		t.Fatalf("stride = %d, want 32", arr.Stride)
	}
	if arr.Elem(1)-arr.Elem(0) != 32 {
		t.Fatal("element spacing != stride")
	}
	if arr.At(3, 8) != arr.Elem(3)+8 {
		t.Fatal("At offset arithmetic wrong")
	}
	// Padded records land on distinct blocks.
	if BlockOf(arr.Elem(0)) == BlockOf(arr.Elem(1)) {
		t.Fatal("padded records share a block")
	}
}

func TestArrayUnpaddedDefaultsToRecordSize(t *testing.T) {
	s := NewSpace()
	arr := NewArray(s, 4, 8, 0)
	if arr.Stride != 8 {
		t.Fatalf("stride = %d, want 8", arr.Stride)
	}
}

func TestArrayBoundsPanic(t *testing.T) {
	s := NewSpace()
	arr := NewArray(s, 4, 8, 0)
	mustPanic(t, "index -1", func() { arr.Elem(-1) })
	mustPanic(t, "index == len", func() { arr.Elem(4) })
}

func TestArrayPadSmallerThanRecordPanics(t *testing.T) {
	s := NewSpace()
	mustPanic(t, "pad < rec", func() { NewArray(s, 1, 16, 8) })
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: did not panic", name)
		}
	}()
	fn()
}
