//go:build race

package racecheck

// Enabled reports that this binary was built with -race.
const Enabled = true
