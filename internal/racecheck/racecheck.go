// Package racecheck lets tests know whether the Go race detector is
// compiled in, and scale their stress workloads accordingly. The race
// detector costs roughly 5-10x in time and memory; on the single-core
// CI container that pushes full-size stress suites past the 10-minute
// per-package test timeout, so the heavy loops run a reduced iteration
// count under -race (the interleavings the detector needs show up in
// far fewer iterations than the determinism soak needs without it).
package racecheck

// Scale returns full iterations normally and raced iterations when the
// race detector is enabled.
func Scale(full, raced int) int {
	if Enabled {
		return raced
	}
	return full
}
