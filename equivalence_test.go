package prefetchsim_test

// Determinism guarantees of the parallel experiment engine: a sweep
// fanned across worker goroutines must produce byte-identical rows to
// the serial reference path (Workers == 1) for the same Seed. This is
// the guardrail that makes the runner trustworthy — any hidden shared
// state in Run's path (RNG, stats counters, pooled buffers) would show
// up here or under `go test -race`.

import (
	"reflect"
	"testing"

	"prefetchsim"
)

// equivApps returns the applications the equivalence tests sweep: all
// six of the paper's in full mode, a representative pair in short mode
// and under the race detector (whose ~5x slowdown would push the full
// sweep past go test's default package timeout).
func equivApps(t *testing.T) []string {
	t.Helper()
	if testing.Short() || raceEnabled {
		return []string{"mp3d", "water"}
	}
	return prefetchsim.Apps()
}

// TestFigure6ParallelMatchesSerial runs Figure 6 on the serial path and
// on a parallel pool and asserts every (app, scheme) row is identical,
// down to the formatted bytes.
func TestFigure6ParallelMatchesSerial(t *testing.T) {
	opt := prefetchsim.ExpOptions{Procs: 4, Apps: equivApps(t), Seed: 12345}

	serialOpt := opt
	serialOpt.Workers = 1
	serial, err := prefetchsim.Figure6(serialOpt)
	if err != nil {
		t.Fatal(err)
	}

	parOpt := opt
	parOpt.Workers = 8
	parallel, err := prefetchsim.Figure6(parOpt)
	if err != nil {
		t.Fatal(err)
	}

	if len(serial) != len(parallel) {
		t.Fatalf("serial produced %d rows, parallel %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i].App != parallel[i].App || serial[i].Scheme != parallel[i].Scheme {
			t.Fatalf("row %d order differs: serial %s/%s, parallel %s/%s",
				i, serial[i].App, serial[i].Scheme, parallel[i].App, parallel[i].Scheme)
		}
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Errorf("%s/%s: parallel row differs from serial:\n  serial:   %+v\n  parallel: %+v",
				serial[i].App, serial[i].Scheme, serial[i], parallel[i])
		}
		if s, p := serial[i].String(), parallel[i].String(); s != p {
			t.Errorf("%s/%s: formatted rows differ:\n  serial:   %q\n  parallel: %q",
				serial[i].App, serial[i].Scheme, s, p)
		}
	}
}

// TestTable2ParallelMatchesSerial does the same for the Table 2
// characteristics sweep, whose runs carry the miss-stream analysis.
func TestTable2ParallelMatchesSerial(t *testing.T) {
	opt := prefetchsim.ExpOptions{Procs: 4, Apps: equivApps(t), Seed: 777}

	serialOpt := opt
	serialOpt.Workers = 1
	serial, err := prefetchsim.Table2(serialOpt)
	if err != nil {
		t.Fatal(err)
	}

	parOpt := opt
	parOpt.Workers = 8
	parallel, err := prefetchsim.Table2(parOpt)
	if err != nil {
		t.Fatal(err)
	}

	if len(serial) != len(parallel) {
		t.Fatalf("serial produced %d rows, parallel %d", len(serial), len(parallel))
	}
	for i := range serial {
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Errorf("%s: parallel row differs from serial:\n  serial:   %+v\n  parallel: %+v",
				serial[i].App, serial[i], parallel[i])
		}
		if s, p := serial[i].String(), parallel[i].String(); s != p {
			t.Errorf("%s: formatted rows differ:\n  serial:   %q\n  parallel: %q",
				serial[i].App, s, p)
		}
	}
}

// TestParallelRaceSmoke is the short-mode concurrency smoke test: it
// keeps several full simulations in flight at once so that
// `go test -race -short ./...` exercises the parallel engine on every
// run and a data race in Run's path cannot silently regress. The
// result check doubles as a mini equivalence test.
func TestParallelRaceSmoke(t *testing.T) {
	opt := prefetchsim.ExpOptions{Procs: 4, Apps: []string{"matmul"}, Workers: 4}
	parallel, err := prefetchsim.Figure6(opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Workers = 1
	serial, err := prefetchsim.Figure6(opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel rows differ from serial:\n  serial:   %+v\n  parallel: %+v", serial, parallel)
	}

	// RunMany on identical configs must yield identical stats.
	cfgs := make([]prefetchsim.Config, 4)
	for i := range cfgs {
		cfgs[i] = prefetchsim.Config{App: "matmul", Scheme: prefetchsim.Seq, Processors: 4}
	}
	results, errs := prefetchsim.RunMany(cfgs, len(cfgs), nil)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("config %d: %v", i, err)
		}
	}
	for i := 1; i < len(results); i++ {
		if !reflect.DeepEqual(results[0].Stats, results[i].Stats) {
			t.Fatalf("concurrent identical runs diverge: run 0 vs run %d", i)
		}
	}
}
