//go:build !race

package prefetchsim_test

// raceEnabled reports whether the race detector is compiled into the
// test binary; see race_enabled_test.go.
const raceEnabled = false
