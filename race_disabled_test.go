//go:build !race

package prefetchsim_test

// raceEnabled reports whether the race detector is compiled into the
// test binary; see race_enabled_test.go.

import (
	"testing"

	"prefetchsim/internal/racecheck"
)

const raceEnabled = false

// TestStressIterationsFullWithoutRace is the counterpart of the -race
// scaling assertion: the uninstrumented suite must run the full
// iteration counts.
func TestStressIterationsFullWithoutRace(t *testing.T) {
	if racecheck.Enabled {
		t.Fatal("built without -race but racecheck.Enabled is true")
	}
	if got := racecheck.Scale(6, 2); got != 6 {
		t.Fatalf("Scale(6, 2) = %d without race, want the full count 6", got)
	}
}
