package prefetchsim

// Tests for the observability layer's root-package contracts: tracing
// must never perturb simulation results, metric totals must agree with
// the statistics they mirror, manifests must survive a disk round
// trip, and a parallel sweep's manifest recorder must be race-clean
// while being read live.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// obsConfig is the small configuration every test here runs: matmul on
// 4 processors, the golden-test machine.
func obsConfig(scheme Scheme) Config {
	return Config{App: "matmul", Scheme: scheme, Processors: 4, Seed: 12345}
}

// TestTraceDifferential is the acceptance check that tracing is purely
// observational: a run with a tracer attached produces byte-identical
// statistics to the same run without one.
func TestTraceDifferential(t *testing.T) {
	plain, err := Run(obsConfig(Seq))
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	cfg := obsConfig(Seq)
	cfg.Trace = &TraceConfig{W: &buf}
	traced, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	if got, want := StatsDigest(traced.Stats), StatsDigest(plain.Stats); got != want {
		t.Fatalf("tracing changed the stats digest: %s != %s", got, want)
	}
	if !reflect.DeepEqual(traced.Stats, plain.Stats) {
		t.Fatal("tracing changed the statistics")
	}

	sum := traced.TraceStats
	if sum == nil || sum.Seen == 0 {
		t.Fatalf("trace summary = %+v, want events", sum)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if uint64(len(lines)) != sum.Kept {
		t.Fatalf("flushed %d JSONL lines, summary says kept %d", len(lines), sum.Kept)
	}
	for i, l := range lines[:min(len(lines), 3)] {
		var ev map[string]any
		if err := json.Unmarshal([]byte(l), &ev); err != nil {
			t.Fatalf("trace line %d not JSON: %v (%s)", i, err, l)
		}
	}
}

// TestMetricsMatchStats pins the metric instruments to the statistics
// they run alongside: the miss taxonomy, prefetch counters and engine
// dispatch count must agree exactly.
func TestMetricsMatchStats(t *testing.T) {
	cfg := obsConfig(Seq)
	cfg.CollectMetrics = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Metrics) == 0 {
		t.Fatal("CollectMetrics produced no snapshot")
	}
	totals := res.Metrics.Totals()

	var cold, coh, repl, issued, useful, misses int64
	for i := range res.Stats.Nodes {
		n := &res.Stats.Nodes[i]
		cold += n.ColdMisses
		coh += n.CoherenceMisses
		repl += n.ReplacementMisses
		issued += n.PrefetchesIssued
		useful += n.PrefetchesUseful
		misses += n.ReadMisses
	}
	for _, c := range []struct {
		name string
		want int64
	}{
		{"node.miss.cold", cold},
		{"node.miss.coherence", coh},
		{"node.miss.replacement", repl},
		{"node.prefetch.issued", issued},
		{"node.prefetch.useful", useful},
	} {
		if got := totals[c.name]; got != c.want {
			t.Errorf("%s = %d, want %d (stats)", c.name, got, c.want)
		}
	}
	if got := totals["node.miss.cold"] + totals["node.miss.coherence"] + totals["node.miss.replacement"]; got != misses {
		t.Errorf("miss classes sum to %d, stats count %d read misses", got, misses)
	}
	if totals["engine.events"] == 0 {
		t.Error("engine.events = 0, want dispatched events")
	}
	if got, ok := res.Metrics.Get("node0.read.miss.stall.count"); !ok || got == 0 {
		t.Errorf("node0.read.miss.stall.count = %d,%v, want observations", got, ok)
	}
}

// TestSpanDifferential is the acceptance check that span and timeline
// collection is purely observational: a run with both attached
// produces byte-identical statistics to the same run without.
func TestSpanDifferential(t *testing.T) {
	plain, err := Run(obsConfig(Seq))
	if err != nil {
		t.Fatal(err)
	}

	var spanBuf, tlBuf bytes.Buffer
	cfg := obsConfig(Seq)
	cfg.Spans = &SpanConfig{W: &spanBuf, Cap: 1 << 12}
	cfg.Timeline = &TimelineConfig{Window: 50000, W: &tlBuf}
	obs, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	if got, want := StatsDigest(obs.Stats), StatsDigest(plain.Stats); got != want {
		t.Fatalf("span/timeline collection changed the stats digest: %s != %s", got, want)
	}
	if !reflect.DeepEqual(obs.Stats, plain.Stats) {
		t.Fatal("span/timeline collection changed the statistics")
	}

	if obs.Spans == nil || obs.SpanTrace == nil {
		t.Fatal("run returned no span aggregates")
	}
	if obs.SpanTrace.Seen == 0 {
		t.Fatalf("span summary = %+v, want spans", obs.SpanTrace)
	}
	lines := strings.Split(strings.TrimRight(spanBuf.String(), "\n"), "\n")
	if uint64(len(lines)) != obs.SpanTrace.Kept {
		t.Fatalf("flushed %d JSONL lines, summary says kept %d", len(lines), obs.SpanTrace.Kept)
	}
	var span map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &span); err != nil {
		t.Fatalf("span line not JSON: %v (%s)", err, lines[0])
	}
	if len(obs.Timeline) == 0 {
		t.Fatal("run returned no timeline windows")
	}
	if got := strings.Count(tlBuf.String(), "\n"); got != len(obs.Timeline) {
		t.Fatalf("flushed %d timeline lines, result has %d windows", got, len(obs.Timeline))
	}
}

// TestSpanStatsReconcile is the span-vs-stats differential: the exact
// per-class span aggregates (which sampling and ring capacity never
// touch) must reconcile with the run's statistics — every read miss,
// prefetch and delayed hit has exactly one span, and the span waits
// sum to the stall-time totals the processor model charged. LU brings
// barrier synchronization into the split.
func TestSpanStatsReconcile(t *testing.T) {
	cfg := Config{App: "lu", Scheme: Seq, Processors: 4, Seed: 12345}
	cfg.Spans = &SpanConfig{Cap: 64} // deliberately tiny: aggregates stay exact
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Spans
	if st == nil {
		t.Fatal("no span aggregates")
	}

	var cold, coh, repl, issued, delayed, readStall, writeStall, syncStall int64
	for i := range res.Stats.Nodes {
		n := &res.Stats.Nodes[i]
		cold += n.ColdMisses
		coh += n.CoherenceMisses
		repl += n.ReplacementMisses
		issued += n.PrefetchesIssued
		delayed += n.DelayedHits
		readStall += int64(n.ReadStall)
		writeStall += int64(n.WriteStall)
		syncStall += int64(n.SyncStall)
	}

	// One span per classified demand miss.
	for _, c := range []struct {
		cls  SpanClass
		want int64
	}{
		{SpanMissCold, cold},
		{SpanMissCoherence, coh},
		{SpanMissReplacement, repl},
		{SpanPrefetchLate, delayed},
	} {
		if got := st.Class(c.cls).Count; got != c.want {
			t.Errorf("%v spans = %d, stats say %d", c.cls, got, c.want)
		}
	}
	// Every issued prefetch completes as timely or late.
	if got := st.Class(SpanPrefetch).Count + st.Class(SpanPrefetchLate).Count; got != issued {
		t.Errorf("prefetch spans = %d, stats issued %d", got, issued)
	}

	// The span waits partition the three stall-time totals exactly.
	sum := func(cls ...SpanClass) int64 {
		var s int64
		for _, c := range cls {
			s += st.Class(c).WaitPclocks
		}
		return s
	}
	if got := sum(SpanMissCold, SpanMissCoherence, SpanMissReplacement, SpanPrefetchLate, SpanSLCHit); got != readStall {
		t.Errorf("read-stall span waits = %d, stats charge %d", got, readStall)
	}
	if got := sum(SpanFLWB, SpanSCWrite); got != writeStall {
		t.Errorf("write-stall span waits = %d, stats charge %d", got, writeStall)
	}
	if got := sum(SpanAcquire, SpanBarrier, SpanRelease); got != syncStall {
		t.Errorf("sync-stall span waits = %d, stats charge %d", got, syncStall)
	}
	if syncStall == 0 || st.Class(SpanBarrier).Count == 0 {
		t.Error("LU run charged no barrier sync stall; the sync reconciliation is vacuous")
	}
	// Consumed prefetches report their fill-to-first-use idle time.
	if st.IdleCount == 0 {
		t.Error("no prefetch fill-to-use idle observations")
	}
}

// TestTimelineMatchesTotals: the windowed deltas must sum back to the
// run's end-of-run totals — nothing double-counted at window
// boundaries, nothing lost in the final partial window.
func TestTimelineMatchesTotals(t *testing.T) {
	cfg := obsConfig(Seq)
	cfg.Timeline = &TimelineConfig{Window: 100000}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Timeline) < 2 {
		t.Fatalf("%d windows, want a multi-window run", len(res.Timeline))
	}

	var p TimePoint
	prevT := int64(0)
	for _, w := range res.Timeline {
		if w.T <= prevT {
			t.Fatalf("window times not increasing: %d after %d", w.T, prevT)
		}
		prevT = w.T
		p.Reads += w.Reads
		p.Writes += w.Writes
		p.Misses += w.Misses
		p.PrefIssued += w.PrefIssued
		p.ReadStall += w.ReadStall
		p.NetFlits += w.NetFlits
	}
	// The final window closes at processor completion time, or later
	// when in-flight transactions drained the event queue past it.
	if last := res.Timeline[len(res.Timeline)-1].T; last < int64(res.Stats.ExecTime) {
		t.Fatalf("last window at t=%d, run ended at %d", last, res.Stats.ExecTime)
	}

	var writes, readStall int64
	for i := range res.Stats.Nodes {
		writes += res.Stats.Nodes[i].Writes
		readStall += int64(res.Stats.Nodes[i].ReadStall)
	}
	if p.Reads != res.Stats.TotalReads() {
		t.Errorf("window reads sum to %d, stats count %d", p.Reads, res.Stats.TotalReads())
	}
	if p.Writes != writes {
		t.Errorf("window writes sum to %d, stats count %d", p.Writes, writes)
	}
	if p.Misses != res.Stats.TotalReadMisses() {
		t.Errorf("window misses sum to %d, stats count %d", p.Misses, res.Stats.TotalReadMisses())
	}
	if p.PrefIssued != res.Stats.TotalPrefetchesIssued() {
		t.Errorf("window prefetches sum to %d, stats count %d", p.PrefIssued, res.Stats.TotalPrefetchesIssued())
	}
	if p.ReadStall != readStall {
		t.Errorf("window read stall sums to %d, stats charge %d", p.ReadStall, readStall)
	}
	if p.NetFlits != res.Stats.NetFlits {
		t.Errorf("window flits sum to %d, stats count %d", p.NetFlits, res.Stats.NetFlits)
	}
}

// TestManifestRoundTripFromRun writes the manifest of a real run to
// disk, reads it back and requires deep equality — the write → parse →
// deep-equal contract on live data rather than a synthetic document.
func TestManifestRoundTripFromRun(t *testing.T) {
	cfg := obsConfig(DDet)
	cfg.CollectMetrics = true
	cfg.Trace = &TraceConfig{Cap: 1 << 10, Sample: 4}
	start := time.Now()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := NewManifest(cfg, res, time.Since(start))
	if m.VirtualTime == 0 || m.StatsDigest == "" || len(m.Metrics) == 0 || m.Trace == nil {
		t.Fatalf("manifest incomplete: %+v", m)
	}
	if m.Config.App != "matmul" || m.Config.Scheme != string(DDet) ||
		m.Config.Processors != 4 || m.Config.Degree != 1 {
		t.Fatalf("manifest config = %+v", m.Config)
	}

	path := filepath.Join(t.TempDir(), "run.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifestFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("manifest diverged on disk:\ngot  %+v\nwant %+v", got, m)
	}
}

// TestSweepManifestRecorder runs a parallel Figure 6 sweep with a
// recorder attached — while a second goroutine polls the live totals —
// and checks the aggregated sweep manifest: one run manifest per
// scheme plus exactly one shared baseline, with rows digested. The
// race detector covers the live reads.
func TestSweepManifestRecorder(t *testing.T) {
	rec := &ManifestRecorder{}
	var rowsSeen int
	o := ExpOptions{
		Procs: 4, Apps: []string{"matmul"}, Seed: 12345, Workers: 2,
		Record: rec,
		OnRow:  func(done, total int, row fmt.Stringer) { rowsSeen++ },
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				rec.Totals()
				rec.Len()
			}
		}
	}()
	rows, err := Figure6(o)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rowsSeen != 3 {
		t.Fatalf("rows = %d streamed = %d, want 3/3", len(rows), rowsSeen)
	}

	runs := rec.Runs()
	if len(runs) != 4 {
		t.Fatalf("recorded %d run manifests, want 4 (3 schemes + 1 shared baseline)", len(runs))
	}
	baselines := 0
	for _, r := range runs {
		if r.Config.Scheme == string(Baseline) {
			baselines++
		}
		if len(r.Metrics) == 0 {
			t.Errorf("run %s/%s has no metric totals", r.Config.App, r.Config.Scheme)
		}
	}
	if baselines != 1 {
		t.Fatalf("recorded %d baseline runs, want the shared one exactly once", baselines)
	}
	if tot := rec.Totals(); tot["engine.events"] == 0 {
		t.Error("sweep totals missing engine.events")
	}

	var rendered []string
	for _, r := range rows {
		rendered = append(rendered, r.String())
	}
	sm := rec.Sweep("figure6", []string{"-procs", "4"}, rendered, time.Second)
	if sm.Rows != 3 || sm.RowsDigest != DigestRows(rendered) || len(sm.Runs) != 4 {
		t.Fatalf("sweep manifest = %+v", sm)
	}
	var buf bytes.Buffer
	if err := sm.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSweepManifest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, sm) {
		t.Fatal("sweep manifest round trip diverged")
	}
}
