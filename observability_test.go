package prefetchsim

// Tests for the observability layer's root-package contracts: tracing
// must never perturb simulation results, metric totals must agree with
// the statistics they mirror, manifests must survive a disk round
// trip, and a parallel sweep's manifest recorder must be race-clean
// while being read live.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// obsConfig is the small configuration every test here runs: matmul on
// 4 processors, the golden-test machine.
func obsConfig(scheme Scheme) Config {
	return Config{App: "matmul", Scheme: scheme, Processors: 4, Seed: 12345}
}

// TestTraceDifferential is the acceptance check that tracing is purely
// observational: a run with a tracer attached produces byte-identical
// statistics to the same run without one.
func TestTraceDifferential(t *testing.T) {
	plain, err := Run(obsConfig(Seq))
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	cfg := obsConfig(Seq)
	cfg.Trace = &TraceConfig{W: &buf}
	traced, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	if got, want := StatsDigest(traced.Stats), StatsDigest(plain.Stats); got != want {
		t.Fatalf("tracing changed the stats digest: %s != %s", got, want)
	}
	if !reflect.DeepEqual(traced.Stats, plain.Stats) {
		t.Fatal("tracing changed the statistics")
	}

	sum := traced.TraceStats
	if sum == nil || sum.Seen == 0 {
		t.Fatalf("trace summary = %+v, want events", sum)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if uint64(len(lines)) != sum.Kept {
		t.Fatalf("flushed %d JSONL lines, summary says kept %d", len(lines), sum.Kept)
	}
	for i, l := range lines[:min(len(lines), 3)] {
		var ev map[string]any
		if err := json.Unmarshal([]byte(l), &ev); err != nil {
			t.Fatalf("trace line %d not JSON: %v (%s)", i, err, l)
		}
	}
}

// TestMetricsMatchStats pins the metric instruments to the statistics
// they run alongside: the miss taxonomy, prefetch counters and engine
// dispatch count must agree exactly.
func TestMetricsMatchStats(t *testing.T) {
	cfg := obsConfig(Seq)
	cfg.CollectMetrics = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Metrics) == 0 {
		t.Fatal("CollectMetrics produced no snapshot")
	}
	totals := res.Metrics.Totals()

	var cold, coh, repl, issued, useful, misses int64
	for i := range res.Stats.Nodes {
		n := &res.Stats.Nodes[i]
		cold += n.ColdMisses
		coh += n.CoherenceMisses
		repl += n.ReplacementMisses
		issued += n.PrefetchesIssued
		useful += n.PrefetchesUseful
		misses += n.ReadMisses
	}
	for _, c := range []struct {
		name string
		want int64
	}{
		{"node.miss.cold", cold},
		{"node.miss.coherence", coh},
		{"node.miss.replacement", repl},
		{"node.prefetch.issued", issued},
		{"node.prefetch.useful", useful},
	} {
		if got := totals[c.name]; got != c.want {
			t.Errorf("%s = %d, want %d (stats)", c.name, got, c.want)
		}
	}
	if got := totals["node.miss.cold"] + totals["node.miss.coherence"] + totals["node.miss.replacement"]; got != misses {
		t.Errorf("miss classes sum to %d, stats count %d read misses", got, misses)
	}
	if totals["engine.events"] == 0 {
		t.Error("engine.events = 0, want dispatched events")
	}
	if got, ok := res.Metrics.Get("node0.read.miss.stall.count"); !ok || got == 0 {
		t.Errorf("node0.read.miss.stall.count = %d,%v, want observations", got, ok)
	}
}

// TestManifestRoundTripFromRun writes the manifest of a real run to
// disk, reads it back and requires deep equality — the write → parse →
// deep-equal contract on live data rather than a synthetic document.
func TestManifestRoundTripFromRun(t *testing.T) {
	cfg := obsConfig(DDet)
	cfg.CollectMetrics = true
	cfg.Trace = &TraceConfig{Cap: 1 << 10, Sample: 4}
	start := time.Now()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := NewManifest(cfg, res, time.Since(start))
	if m.VirtualTime == 0 || m.StatsDigest == "" || len(m.Metrics) == 0 || m.Trace == nil {
		t.Fatalf("manifest incomplete: %+v", m)
	}
	if m.Config.App != "matmul" || m.Config.Scheme != string(DDet) ||
		m.Config.Processors != 4 || m.Config.Degree != 1 {
		t.Fatalf("manifest config = %+v", m.Config)
	}

	path := filepath.Join(t.TempDir(), "run.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifestFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("manifest diverged on disk:\ngot  %+v\nwant %+v", got, m)
	}
}

// TestSweepManifestRecorder runs a parallel Figure 6 sweep with a
// recorder attached — while a second goroutine polls the live totals —
// and checks the aggregated sweep manifest: one run manifest per
// scheme plus exactly one shared baseline, with rows digested. The
// race detector covers the live reads.
func TestSweepManifestRecorder(t *testing.T) {
	rec := &ManifestRecorder{}
	var rowsSeen int
	o := ExpOptions{
		Procs: 4, Apps: []string{"matmul"}, Seed: 12345, Workers: 2,
		Record: rec,
		OnRow:  func(done, total int, row fmt.Stringer) { rowsSeen++ },
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				rec.Totals()
				rec.Len()
			}
		}
	}()
	rows, err := Figure6(o)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rowsSeen != 3 {
		t.Fatalf("rows = %d streamed = %d, want 3/3", len(rows), rowsSeen)
	}

	runs := rec.Runs()
	if len(runs) != 4 {
		t.Fatalf("recorded %d run manifests, want 4 (3 schemes + 1 shared baseline)", len(runs))
	}
	baselines := 0
	for _, r := range runs {
		if r.Config.Scheme == string(Baseline) {
			baselines++
		}
		if len(r.Metrics) == 0 {
			t.Errorf("run %s/%s has no metric totals", r.Config.App, r.Config.Scheme)
		}
	}
	if baselines != 1 {
		t.Fatalf("recorded %d baseline runs, want the shared one exactly once", baselines)
	}
	if tot := rec.Totals(); tot["engine.events"] == 0 {
		t.Error("sweep totals missing engine.events")
	}

	var rendered []string
	for _, r := range rows {
		rendered = append(rendered, r.String())
	}
	sm := rec.Sweep("figure6", []string{"-procs", "4"}, rendered, time.Second)
	if sm.Rows != 3 || sm.RowsDigest != DigestRows(rendered) || len(sm.Runs) != 4 {
		t.Fatalf("sweep manifest = %+v", sm)
	}
	var buf bytes.Buffer
	if err := sm.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSweepManifest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, sm) {
		t.Fatal("sweep manifest round trip diverged")
	}
}
