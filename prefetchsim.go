// Package prefetchsim is an architectural simulator reproducing
// Dahlgren and Stenström, "Effectiveness of Hardware-Based Stride and
// Sequential Prefetching in Shared-Memory Multiprocessors" (HPCA 1995).
//
// It models the paper's cache-coherent NUMA multiprocessor — 16
// processing nodes on a 4×4 wormhole mesh, write-through first-level
// caches, lockup-free write-back second-level caches, a full-map
// write-invalidate directory protocol, queue-based locks and release
// consistency — and the three prefetching schemes the paper compares:
// I-detection stride prefetching (a Baer–Chen reference prediction
// table), D-detection stride prefetching (Hagersten's miss-address
// scheme) and sequential prefetching — plus the extensions §6 of the
// paper discusses: adaptive sequential prefetching, lookahead variants
// of both stride detectors, and hybrid software-assisted prefetching.
//
// The simplest entry point runs one of the paper's six applications on
// one scheme:
//
//	res, err := prefetchsim.Run(prefetchsim.Config{App: "lu", Scheme: prefetchsim.Seq})
//	fmt.Println(res.Stats)
//
// Custom workloads plug in through NewProgram; see examples/customapp.
package prefetchsim

import (
	"fmt"
	"io"

	"prefetchsim/internal/analysis"
	"prefetchsim/internal/apps"
	"prefetchsim/internal/apps/workload"
	"prefetchsim/internal/machine"
	"prefetchsim/internal/mem"
	"prefetchsim/internal/obs"
	"prefetchsim/internal/prefetch"
	"prefetchsim/internal/stats"
	"prefetchsim/internal/trace"
)

// Re-exported building blocks. Aliases keep the implementation in
// internal packages while giving users one import.
type (
	// Program is a complete multiprocessor workload: one operation
	// stream per processor.
	Program = trace.Program
	// Op is one memory operation of a workload stream.
	Op = trace.Op
	// PC identifies a static load/store site (used by I-detection).
	PC = trace.PC
	// Gen emits a processor's operations inside NewProgram's body.
	Gen = workload.Gen
	// Params are the common application parameters.
	Params = workload.Params
	// Space allocates simulated shared memory for custom workloads.
	Space = mem.Space
	// Array is a contiguous allocation of fixed-size records.
	Array = mem.Array
	// Addr is a simulated virtual address.
	Addr = mem.Addr
	// Stats aggregates the measurements of one run.
	Stats = stats.Machine
	// NodeStats holds one processor's counters.
	NodeStats = stats.Node
	// Characteristics is the Table 2/3 stride-sequence analysis.
	Characteristics = analysis.Result
	// StrideShare is one entry of the stride distribution.
	StrideShare = analysis.StrideShare
	// SiteStat is one load site's row of the per-instruction miss
	// breakdown.
	SiteStat = analysis.SiteStat
)

// NewSpace returns an empty simulated address space.
func NewSpace() *Space { return mem.NewSpace() }

// NewArray allocates n records of recSize bytes, padded to pad bytes
// each (pad 0 means unpadded).
func NewArray(s *Space, n, recSize, pad int) Array { return mem.NewArray(s, n, recSize, pad) }

// NewProgram builds a custom workload: body runs once per processor in
// its own goroutine and emits that processor's operations through g.
func NewProgram(name string, procs int, body func(p int, g *Gen)) *Program {
	return workload.Build(name, procs, body)
}

// Apps lists the built-in applications in the paper's table order:
// mp3d, cholesky, water, lu, ocean, pthor.
func Apps() []string { return apps.Names() }

// ExtraApps lists the built-in workloads outside the paper's six:
// the §3.1 matmul example and the pointer-heavy kernels (listchase,
// hashjoin, bfs) added for the prefetcher zoo. Runnable by name,
// excluded from the default sweeps.
func ExtraApps() []string { return apps.Extras() }

// BuildApp constructs a built-in application's program without running
// it (for recording to a trace file, or custom machine drivers).
func BuildApp(name string, params Params) (*Program, error) {
	mk, err := apps.Get(name)
	if err != nil {
		return nil, err
	}
	return mk(params), nil
}

// WriteProgram serializes a workload to a portable trace file, draining
// it (record once, replay many times).
func WriteProgram(w io.Writer, prog *Program) error { return trace.WriteProgram(w, prog) }

// ReadProgram loads a workload recorded with WriteProgram.
func ReadProgram(r io.Reader) (*Program, error) { return trace.ReadProgram(r) }

// Scheme selects a prefetching scheme.
type Scheme string

// The schemes of the paper (§3) plus the extensions its §6 discusses.
const (
	// Baseline is the architecture with no prefetching.
	Baseline Scheme = "baseline"
	// IDet is I-detection stride prefetching (256-entry RPT).
	IDet Scheme = "I-det"
	// DDet is D-detection stride prefetching (Hagersten's scheme).
	DDet Scheme = "D-det"
	// Seq is fixed sequential prefetching.
	Seq Scheme = "Seq"
	// Adaptive is adaptive sequential prefetching (extension, after
	// Dahlgren, Dubois and Stenström [6]).
	Adaptive Scheme = "Adaptive"
	// IDetLA is I-detection with a dynamic lookahead distance, standing
	// in for Baer and Chen's lookahead-PC scheme (extension, §6 [1]).
	IDetLA Scheme = "I-det-LA"
	// DDetLA is D-detection with Hagersten's latency-adaptive
	// prefetching phase (extension, §6 [13]).
	DDetLA Scheme = "D-det-LA"
	// Hybrid is software-assisted stride prefetching: the workload
	// supplies per-load-site strides, no hardware detection (extension,
	// §6, after Bianchini and LeBlanc [2]). Requires stride hints — the
	// built-in applications provide theirs; custom programs pass
	// Config.StrideHints.
	Hybrid Scheme = "Hybrid"

	// The "zoo" schemes below are modern prefetchers outside the paper,
	// added to probe the irregular workloads its §7 leaves open.

	// Markov is correlation-based pointer-chase prefetching (after
	// Joseph–Grunwald; Srivastava and Navalakha, arXiv:1801.08088): a
	// table of miss-successor correlations replayed on re-visits. The
	// only scheme allowed to cross page boundaries, since it re-issues
	// previously referenced addresses.
	Markov Scheme = "Markov"
	// Perceptron is perceptron-learning prefetching (after Wang and Luo,
	// arXiv:1712.00905): candidate deltas scored by learned saturating
	// weights over (previous delta, PC, delta) features.
	Perceptron Scheme = "Perceptron"
	// BestOff is multi-offset best-offset prefetching (after Michaud;
	// the multi-stride scheme of Blom et al., arXiv:2412.16001): offsets
	// that empirically predicted recent misses are adopted for a phase.
	BestOff Scheme = "BestOffset"
)

// Schemes lists the Figure 6 schemes in presentation order.
func Schemes() []Scheme { return []Scheme{IDet, DDet, Seq} }

// ZooSchemes lists the modern prefetchers added beyond the paper, in
// presentation order.
func ZooSchemes() []Scheme { return []Scheme{Markov, Perceptron, BestOff} }

// Config describes one simulation.
type Config struct {
	// App names a built-in application (see Apps). Ignored when
	// Program is set.
	App string
	// Program supplies a custom workload; Run consumes it.
	Program *Program

	// Scheme is the prefetching scheme (default Baseline).
	Scheme Scheme
	// Degree is the degree of prefetching d (default 1).
	Degree int

	// Processors is the machine size (default 16, the paper's).
	Processors int
	// SLCBytes sizes the second-level cache; 0 is the paper's default
	// infinite SLC, 16384 reproduces §5.3.
	SLCBytes int
	// SLCWays is the finite SLC's associativity (0/1 = the paper's
	// direct-mapped; higher = LRU sets, an extension).
	SLCWays int

	// Scale multiplies the application data set (Table 4); default 1.
	Scale int
	// Seed perturbs workload randomness deterministically.
	Seed uint64

	// SequentialConsistency replaces the paper's release consistency
	// with blocking writes (an ablation; see EXPERIMENTS.md).
	SequentialConsistency bool

	// BandwidthFactor divides the memory-system and network bandwidth
	// by the given factor (0/1 = the paper's full bandwidth); the §7
	// bandwidth-limitation study sweeps it.
	BandwidthFactor int

	// StrideHints supplies the per-load-site strides for the Hybrid
	// scheme when running a custom Program; built-in applications
	// provide their own tables.
	StrideHints map[PC]int64

	// CollectCharacteristics records processor 0's miss stream and
	// attaches the Table 2/3 analysis to the result.
	CollectCharacteristics bool

	// CollectMetrics attaches a snapshot of every observability
	// instrument (engine dispatch counters, per-node miss taxonomy,
	// prefetch effectiveness, stall histograms) to the result.
	CollectMetrics bool
	// Trace, when non-nil, records a ring-buffered event trace
	// (misses, prefetches, invalidations, acks); the summary is
	// attached to the result and the JSONL flushes to Trace.W. Purely
	// observational: results are byte-identical with or without it.
	Trace *TraceConfig
	// Spans, when non-nil, records one lifecycle span per memory-system
	// transaction and stall episode (issue → network → directory →
	// service → reply → fill, with per-hop virtual-time stamps). Exact
	// per-class aggregates attach to Result.Spans; the sampled raw
	// spans flush as JSONL to Spans.W. Purely observational.
	Spans *SpanConfig
	// Timeline, when non-nil with a positive Window, snapshots the
	// instruments every Window pclocks of virtual time; the windowed
	// time-series attaches to Result.Timeline and flushes as JSONL to
	// Timeline.W. Purely observational: the statistics are unchanged.
	Timeline *TimelineConfig
}

func (c Config) withDefaults() Config {
	if c.Processors == 0 {
		c.Processors = 16
	}
	if c.Degree == 0 {
		c.Degree = 1
	}
	if c.Scheme == "" {
		c.Scheme = Baseline
	}
	if c.Scale == 0 {
		c.Scale = 1
	}
	return c
}

// Result is the outcome of one simulation.
type Result struct {
	// App is the workload name.
	App string
	// Scheme is the prefetching scheme simulated.
	Scheme Scheme
	// Stats holds all counters (read misses, stall times, prefetch
	// efficiency, traffic...).
	Stats *Stats
	// Chars holds the stride-sequence analysis of processor 0's misses
	// when Config.CollectCharacteristics was set.
	Chars *Characteristics
	// Sites breaks processor 0's misses down per load site (set
	// together with Chars).
	Sites []SiteStat
	// Metrics is the name-sorted instrument snapshot when
	// Config.CollectMetrics was set.
	Metrics MetricsSnapshot
	// TraceStats summarizes the event trace when Config.Trace was set.
	TraceStats *TraceSummary
	// Spans holds the exact per-class span aggregates when Config.Spans
	// was set; SpanTrace summarizes the sampled raw-span ring.
	Spans     *SpanStats
	SpanTrace *TraceSummary
	// Timeline is the windowed instrument time-series when
	// Config.Timeline was set.
	Timeline []TimePoint
}

// newPrefetcher builds the per-node prefetch engine for a scheme.
func newPrefetcher(s Scheme, degree int, hints map[PC]int64) (func(int) prefetch.Prefetcher, error) {
	switch s {
	case Baseline, "":
		return nil, nil
	case IDet:
		return func(int) prefetch.Prefetcher { return prefetch.NewIDetection(256, degree) }, nil
	case IDetLA:
		return func(int) prefetch.Prefetcher { return prefetch.NewLookaheadIDetection(256, degree) }, nil
	case DDet:
		return func(int) prefetch.Prefetcher { return prefetch.NewDefaultDDetection(degree) }, nil
	case DDetLA:
		return func(int) prefetch.Prefetcher { return prefetch.NewHagerstenDDetection(degree) }, nil
	case Seq:
		return func(int) prefetch.Prefetcher { return prefetch.NewSequential(degree) }, nil
	case Adaptive:
		return func(int) prefetch.Prefetcher { return prefetch.NewAdaptive(degree) }, nil
	case Hybrid:
		return func(int) prefetch.Prefetcher { return prefetch.NewHybrid(hints, degree) }, nil
	case Markov:
		return func(int) prefetch.Prefetcher { return prefetch.NewMarkov(degree) }, nil
	case Perceptron:
		return func(int) prefetch.Prefetcher { return prefetch.NewPerceptron(degree) }, nil
	case BestOff:
		return func(int) prefetch.Prefetcher { return prefetch.NewBestOffset(degree) }, nil
	}
	return nil, fmt.Errorf("prefetchsim: unknown scheme %q", s)
}

// Run executes one simulation to completion. The workload is either a
// built-in application (Config.App) or a caller-supplied Program, which
// Run consumes.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()

	prog := cfg.Program
	if prog == nil {
		mk, err := apps.Get(cfg.App)
		if err != nil {
			return nil, err
		}
		prog = mk(workload.Params{Procs: cfg.Processors, Scale: cfg.Scale, Seed: cfg.Seed})
	}
	defer prog.Stop()

	hints := cfg.StrideHints
	if cfg.Scheme == Hybrid && hints == nil && cfg.App != "" {
		h, err := apps.StrideHints(cfg.App,
			workload.Params{Procs: cfg.Processors, Scale: cfg.Scale, Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		hints = h
	}

	mcfg := machine.DefaultConfig()
	mcfg.Processors = cfg.Processors
	mcfg.SLCSize = cfg.SLCBytes
	mcfg.SLCWays = cfg.SLCWays
	mcfg.SequentialConsistency = cfg.SequentialConsistency
	mcfg.BandwidthFactor = cfg.BandwidthFactor
	pf, err := newPrefetcher(cfg.Scheme, cfg.Degree, hints)
	if err != nil {
		return nil, err
	}
	mcfg.NewPrefetcher = pf

	var col *analysis.Collector
	if cfg.CollectCharacteristics {
		col = &analysis.Collector{Node: 0}
		mcfg.MissObserver = col.Observe
	}

	var tr *obs.Tracer
	if cfg.Trace != nil {
		tr = obs.NewTracer(*cfg.Trace)
		mcfg.Tracer = tr
	}
	var sp *obs.SpanRecorder
	if cfg.Spans != nil {
		sp = obs.NewSpanRecorder(*cfg.Spans)
		mcfg.Spans = sp
	}
	var tl *obs.Timeline
	if cfg.Timeline != nil {
		tl = obs.NewTimeline(*cfg.Timeline)
		mcfg.Timeline = tl
	}

	m, err := machine.New(mcfg, prog)
	if err != nil {
		return nil, err
	}
	var reg *obs.Registry
	if cfg.CollectMetrics {
		reg = obs.NewRegistry()
		m.BindMetrics(reg)
	}
	st, err := m.Run()
	if err != nil {
		return nil, fmt.Errorf("%s/%s: %w", prog.Name, cfg.Scheme, err)
	}

	res := &Result{App: prog.Name, Scheme: cfg.Scheme, Stats: st}
	if col != nil {
		r := analysis.Analyze(col.Misses())
		res.Chars = &r
		res.Sites = analysis.BySite(col.Misses())
	}
	if reg != nil {
		res.Metrics = reg.Snapshot()
	}
	if tr != nil {
		if err := tr.Flush(); err != nil {
			return nil, err
		}
		s := tr.Summary()
		res.TraceStats = &s
	}
	if sp != nil {
		if err := sp.Flush(); err != nil {
			return nil, err
		}
		res.Spans = sp.Stats()
		s := sp.Summary()
		res.SpanTrace = &s
	}
	if tl != nil {
		if err := tl.Flush(); err != nil {
			return nil, err
		}
		res.Timeline = tl.Points()
	}
	return res, nil
}
