package prefetchsim_test

import (
	"bytes"
	"strings"
	"testing"

	"prefetchsim"
)

// small returns a fast configuration for API tests.
func small(app string, scheme prefetchsim.Scheme) prefetchsim.Config {
	return prefetchsim.Config{App: app, Scheme: scheme, Processors: 4}
}

func TestAppsListsPaperOrder(t *testing.T) {
	want := []string{"mp3d", "cholesky", "water", "lu", "ocean", "pthor"}
	got := prefetchsim.Apps()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Apps() = %v", got)
		}
	}
}

func TestRunUnknownAppFails(t *testing.T) {
	if _, err := prefetchsim.Run(prefetchsim.Config{App: "fft"}); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestRunUnknownSchemeFails(t *testing.T) {
	if _, err := prefetchsim.Run(small("lu", "magic")); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

func TestRunBaselineCholesky(t *testing.T) {
	res, err := prefetchsim.Run(small("cholesky", prefetchsim.Baseline))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.TotalReadMisses() == 0 || res.Stats.ExecTime == 0 {
		t.Fatalf("degenerate run: %v", res.Stats)
	}
	if res.Stats.TotalPrefetchesIssued() != 0 {
		t.Fatal("baseline issued prefetches")
	}
	if res.Chars != nil {
		t.Fatal("characteristics attached without being requested")
	}
}

func TestRunCollectsCharacteristics(t *testing.T) {
	cfg := small("cholesky", prefetchsim.Baseline)
	cfg.CollectCharacteristics = true
	res, err := prefetchsim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Chars == nil || res.Chars.TotalMisses == 0 {
		t.Fatal("no characteristics collected")
	}
	if d := res.Chars.Dominant(); d.Stride != 1 {
		t.Fatalf("cholesky dominant stride = %d, want 1", d.Stride)
	}
}

func TestSchemesReduceMissesOnCholesky(t *testing.T) {
	base, err := prefetchsim.Run(small("cholesky", prefetchsim.Baseline))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range append(prefetchsim.Schemes(), prefetchsim.Adaptive) {
		res, err := prefetchsim.Run(small("cholesky", s))
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.TotalPrefetchesIssued() == 0 {
			t.Errorf("%s issued no prefetches", s)
		}
		if res.Stats.TotalReadMisses() >= base.Stats.TotalReadMisses() {
			t.Errorf("%s did not reduce cholesky misses (%d vs %d)",
				s, res.Stats.TotalReadMisses(), base.Stats.TotalReadMisses())
		}
		if res.Stats.TotalReadStall() >= base.Stats.TotalReadStall() {
			t.Errorf("%s did not reduce cholesky read stall", s)
		}
	}
}

func TestFiniteSLCProducesReplacementMisses(t *testing.T) {
	cfg := small("ocean", prefetchsim.Baseline)
	cfg.SLCBytes = prefetchsim.FiniteSLCBytes
	res, err := prefetchsim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var repl int64
	for i := range res.Stats.Nodes {
		repl += res.Stats.Nodes[i].ReplacementMisses
	}
	if repl == 0 {
		t.Fatal("16 KB SLC produced no replacement misses on ocean")
	}
}

func TestCustomProgramAPI(t *testing.T) {
	build := func() *prefetchsim.Program {
		space := prefetchsim.NewSpace()
		arr := prefetchsim.NewArray(space, 256, 64, 64)
		return prefetchsim.NewProgram("custom", 2, func(p int, g *prefetchsim.Gen) {
			for i := p; i < 256; i += 2 {
				g.Read(prefetchsim.PC(1), arr.Elem(i), 3)
			}
			g.Barrier()
		})
	}
	base, err := prefetchsim.Run(prefetchsim.Config{
		Program: build(), Processors: 2, Scheme: prefetchsim.Baseline,
		CollectCharacteristics: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 64-byte records, interleaved ownership: each processor strides by
	// 4 blocks.
	if d := base.Chars.Dominant(); d.Stride != 4 {
		t.Fatalf("custom program dominant stride = %d, want 4", d.Stride)
	}

	res, err := prefetchsim.Run(prefetchsim.Config{
		Program: build(), Processors: 2, Scheme: prefetchsim.IDet,
		CollectCharacteristics: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.TotalPrefetchesIssued() == 0 {
		t.Fatal("I-det silent on a pure stride workload")
	}
	if res.Stats.TotalReadMisses() >= base.Stats.TotalReadMisses() {
		t.Fatal("I-det did not remove stride misses")
	}
	// With prefetching active the residual misses are the page-boundary
	// restarts (prefetches never cross a page): the residual stream
	// strides by one page, 128 blocks.
	if d := res.Chars.Dominant(); d.Stride != 128 {
		t.Fatalf("residual dominant stride = %d, want 128 (page-bounded prefetching)", d.Stride)
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := prefetchsim.Run(small("mp3d", prefetchsim.Seq))
	if err != nil {
		t.Fatal(err)
	}
	b, err := prefetchsim.Run(small("mp3d", prefetchsim.Seq))
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats.ExecTime != b.Stats.ExecTime ||
		a.Stats.TotalReadMisses() != b.Stats.TotalReadMisses() ||
		a.Stats.TotalPrefetchesIssued() != b.Stats.TotalPrefetchesIssued() {
		t.Fatalf("runs diverged:\n%v\nvs\n%v", a.Stats, b.Stats)
	}
}

func TestExperimentRowsFormat(t *testing.T) {
	row := prefetchsim.Fig6Row{App: "lu", Scheme: prefetchsim.Seq,
		RelMisses: 0.5, Efficiency: 0.9, RelStall: 0.6, RelTraffic: 1.1}
	s := row.String()
	for _, want := range []string{"lu", "Seq", "50.0%", "90.0%"} {
		if !strings.Contains(s, want) {
			t.Errorf("Fig6Row.String() missing %q: %s", want, s)
		}
	}
}

func TestTable2SmallMachine(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-application sweep")
	}
	rows, err := prefetchsim.Table2(prefetchsim.ExpOptions{
		Procs: 4, Apps: []string{"water", "pthor"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].App != "water" || rows[0].Dominant[0].Stride != 21 {
		t.Fatalf("water row = %+v", rows[0])
	}
	if rows[1].InStrideFrac > 0.3 {
		t.Fatalf("pthor in-stride = %v, want low", rows[1].InStrideFrac)
	}
}

func TestFigure6SmallMachine(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-scheme sweep")
	}
	rows, err := prefetchsim.Figure6(prefetchsim.ExpOptions{
		Procs: 4, Apps: []string{"water"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3 schemes", len(rows))
	}
	// The paper's Water result: stride prefetching removes most misses
	// (long 21-block strides), and I-det has high efficiency.
	for _, r := range rows {
		if r.Scheme == prefetchsim.IDet {
			if r.RelMisses > 0.6 {
				t.Errorf("I-det on water: relative misses %.2f, want < 0.6", r.RelMisses)
			}
			if r.Efficiency < 0.8 {
				t.Errorf("I-det efficiency %.2f, want >= 0.8", r.Efficiency)
			}
		}
	}
}

func TestDegreeSweepRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	rows, err := prefetchsim.DegreeSweep("water", prefetchsim.Seq, []int{1, 2}, prefetchsim.ExpOptions{Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
}

func TestExtensionSchemesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	base, err := prefetchsim.Run(small("water", prefetchsim.Baseline))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []prefetchsim.Scheme{
		prefetchsim.IDetLA, prefetchsim.DDetLA, prefetchsim.Hybrid,
	} {
		res, err := prefetchsim.Run(small("water", s))
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.TotalPrefetchesIssued() == 0 {
			t.Errorf("%s issued no prefetches", s)
		}
		if res.Stats.TotalReadMisses() >= base.Stats.TotalReadMisses() {
			t.Errorf("%s did not reduce water misses", s)
		}
	}
}

func TestHybridOnCustomProgramNeedsHints(t *testing.T) {
	mk := func() *prefetchsim.Program {
		space := prefetchsim.NewSpace()
		arr := prefetchsim.NewArray(space, 128, 96, 96)
		return prefetchsim.NewProgram("hinted", 1, func(p int, g *prefetchsim.Gen) {
			for i := 0; i < 128; i++ {
				g.Read(prefetchsim.PC(5), arr.Elem(i), 40)
			}
		})
	}
	// Without hints the hybrid scheme is inert.
	noHints, err := prefetchsim.Run(prefetchsim.Config{
		Program: mk(), Processors: 1, Scheme: prefetchsim.Hybrid,
	})
	if err != nil {
		t.Fatal(err)
	}
	if noHints.Stats.TotalPrefetchesIssued() != 0 {
		t.Fatal("hybrid prefetched without hints")
	}
	// With the record stride supplied, it covers the stream.
	hinted, err := prefetchsim.Run(prefetchsim.Config{
		Program: mk(), Processors: 1, Scheme: prefetchsim.Hybrid,
		StrideHints: map[prefetchsim.PC]int64{5: 96},
	})
	if err != nil {
		t.Fatal(err)
	}
	if hinted.Stats.TotalReadMisses() >= noHints.Stats.TotalReadMisses() {
		t.Fatal("hinted hybrid did not reduce misses")
	}
}

func TestSequentialConsistencyConfig(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	cfg := small("mp3d", prefetchsim.Baseline)
	rc, err := prefetchsim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.SequentialConsistency = true
	sc, err := prefetchsim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Stats.ExecTime <= rc.Stats.ExecTime {
		t.Fatalf("SC exec time %d not above RC %d", sc.Stats.ExecTime, rc.Stats.ExecTime)
	}
}

func TestBandwidthFactorSlowsBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	full, err := prefetchsim.Run(small("mp3d", prefetchsim.Baseline))
	if err != nil {
		t.Fatal(err)
	}
	cfg := small("mp3d", prefetchsim.Baseline)
	cfg.BandwidthFactor = 4
	quarter, err := prefetchsim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if quarter.Stats.ExecTime <= full.Stats.ExecTime {
		t.Fatalf("quarter-bandwidth exec %d not above full %d",
			quarter.Stats.ExecTime, full.Stats.ExecTime)
	}
	// Miss counts are nearly bandwidth-independent (only coherence
	// races move with timing).
	fm, qm := full.Stats.TotalReadMisses(), quarter.Stats.TotalReadMisses()
	if diff := qm - fm; diff < -fm/100 || diff > fm/100 {
		t.Fatalf("bandwidth changed miss count by >1%%: %d vs %d", qm, fm)
	}
}

func TestBandwidthSweepShowsSeqErosion(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	rows, err := prefetchsim.BandwidthSweep("mp3d", []int{1, 4}, prefetchsim.ExpOptions{Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	// §7: sequential prefetching's stall advantage must erode as
	// bandwidth tightens (its useless prefetches congest the system).
	if rows[1].SeqRelStall <= rows[0].SeqRelStall {
		t.Fatalf("Seq stall advantage did not erode: %.3f → %.3f",
			rows[0].SeqRelStall, rows[1].SeqRelStall)
	}
}

func TestAssociativeSLC(t *testing.T) {
	// A surgical conflict workload: two blocks one SLC-span apart map to
	// the same direct-mapped set but coexist in a 2-way set. The 16 KB
	// SLC has 512 sets.
	build := func() *prefetchsim.Program {
		return prefetchsim.NewProgram("conflict", 1, func(p int, g *prefetchsim.Gen) {
			a := prefetchsim.Addr(4096)
			b := a + 512*32
			for i := 0; i < 200; i++ {
				g.Read(prefetchsim.PC(1), a, 200) // gaps defeat the FLC? no: FLC holds both
				g.Read(prefetchsim.PC(2), b, 200)
			}
		})
	}
	run := func(ways int) int64 {
		res, err := prefetchsim.Run(prefetchsim.Config{
			Program: build(), Processors: 1,
			SLCBytes: prefetchsim.FiniteSLCBytes, SLCWays: ways,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.TotalReadMisses()
	}
	dm, twoWay := run(1), run(2)
	// Direct-mapped: both blocks fit the FLC, so after its two cold
	// misses everything hits the FLC — force SLC visibility by FLC
	// conflict: a and b are also 4 KB-multiple apart, sharing an FLC
	// set, so every access reaches the SLC. Direct-mapped SLC thrashes;
	// 2-way holds both.
	if dm < 100 {
		t.Fatalf("direct-mapped conflict workload missed only %d times; test premise broken", dm)
	}
	if twoWay > 4 {
		t.Fatalf("2-way SLC still missed %d times on a 2-block conflict set", twoWay)
	}
}

func TestMatmulWorkloadRegistered(t *testing.T) {
	res, err := prefetchsim.Run(prefetchsim.Config{
		App: "matmul", Scheme: prefetchsim.IDet, Processors: 4,
		CollectCharacteristics: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.TotalPrefetchesIssued() == 0 {
		t.Fatal("matmul produced no prefetching activity")
	}
	// But it must not be part of the paper's default sweeps.
	for _, name := range prefetchsim.Apps() {
		if name == "matmul" {
			t.Fatal("matmul leaked into the paper's application list")
		}
	}
}

func TestRecordReplayThroughAPI(t *testing.T) {
	prog, err := prefetchsim.BuildApp("matmul", prefetchsim.Params{Procs: 2, Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := prefetchsim.WriteProgram(&buf, prog); err != nil {
		t.Fatal(err)
	}
	replayed, err := prefetchsim.ReadProgram(&buf)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := prefetchsim.Run(prefetchsim.Config{
		Program: mustBuild(t, "matmul", 2), Processors: 2, Scheme: prefetchsim.Seq,
	})
	if err != nil {
		t.Fatal(err)
	}
	fromTrace, err := prefetchsim.Run(prefetchsim.Config{
		Program: replayed, Processors: 2, Scheme: prefetchsim.Seq,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Replaying the recorded trace must reproduce the generator run
	// exactly (the simulation is deterministic).
	if direct.Stats.ExecTime != fromTrace.Stats.ExecTime ||
		direct.Stats.TotalReadMisses() != fromTrace.Stats.TotalReadMisses() {
		t.Fatalf("trace replay diverged: exec %d vs %d, misses %d vs %d",
			direct.Stats.ExecTime, fromTrace.Stats.ExecTime,
			direct.Stats.TotalReadMisses(), fromTrace.Stats.TotalReadMisses())
	}
}

func mustBuild(t *testing.T, app string, procs int) *prefetchsim.Program {
	t.Helper()
	p, err := prefetchsim.BuildApp(app, prefetchsim.Params{Procs: procs, Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRepresentativeness(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	row, err := prefetchsim.Representativeness("lu", prefetchsim.ExpOptions{Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	// The paper's §5.1 claim: processor 0 is representative. The
	// in-stride fraction spread across processors must be tight.
	if row.MaxFrac-row.MinFrac > 0.1 {
		t.Fatalf("in-stride fraction spread %.3f–%.3f too wide; node 0 not representative",
			row.MinFrac, row.MaxFrac)
	}
	if row.Node0Frac < row.MinFrac || row.Node0Frac > row.MaxFrac {
		t.Fatal("node 0 outside the machine-wide range")
	}
}

func TestResultIncludesPerSiteBreakdown(t *testing.T) {
	cfg := small("ocean", prefetchsim.Baseline)
	cfg.CollectCharacteristics = true
	res, err := prefetchsim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sites) == 0 {
		t.Fatal("no per-site breakdown")
	}
	// Ordered by descending miss count; totals must match the overall
	// analysis.
	total := 0
	for i, s := range res.Sites {
		if i > 0 && s.Misses > res.Sites[i-1].Misses {
			t.Fatal("sites not ordered by miss count")
		}
		total += s.Misses
	}
	if total != res.Chars.TotalMisses {
		t.Fatalf("per-site misses sum %d != total %d", total, res.Chars.TotalMisses)
	}
}
